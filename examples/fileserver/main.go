// Fileserver plays out the paper's motivating design exercise: a network
// of machines gives up its local disks for one shared file server. How
// should the server's cache be provisioned, and is pooling memory in one
// place actually better than leaving it distributed?
//
// The example merges the three traced machines' workloads onto one server
// (with identifier remapping, so files and users stay distinct), then
// compares the shared cache against per-machine caches at equal total
// memory, and finally sweeps the server cache up to the "use almost all of
// the server's memory" sizing the paper's Section 6 recommends.
//
//	go run ./examples/fileserver
package main

import (
	"fmt"
	"log"
	"os"

	"bsdtrace/internal/cachesim"
	"bsdtrace/internal/report"
	"bsdtrace/internal/trace"
	"bsdtrace/internal/workload"
)

func main() {
	const (
		blockSize  = 8192
		perMachine = 2 << 20
		duration   = 2 * trace.Hour
	)

	// One trace per machine, then the server's merged view.
	names := []string{"A5", "E3", "C4"}
	var machines [][]trace.Event
	for _, name := range names {
		res, err := workload.Generate(workload.Config{
			Profile: name, Seed: 99, Duration: duration,
		})
		if err != nil {
			log.Fatal(err)
		}
		machines = append(machines, res.Events)
	}
	merged := trace.Merge(machines...)
	fmt.Printf("merged %d machines into one server trace: %d events\n\n",
		len(machines), len(merged))

	sim := func(events []trace.Event, cacheBytes int64) *cachesim.Result {
		r, err := cachesim.Simulate(events, cachesim.Config{
			BlockSize: blockSize,
			CacheSize: cacheBytes,
			Write:     cachesim.FlushBack,
			// A server wants bounded crash loss: 5-minute flushes, the
			// compromise the paper's conclusions recommend.
			FlushInterval: 5 * trace.Minute,
		})
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	t := &report.Table{
		Title:  "Provisioning one file server for three machines (8-kbyte blocks, 5-minute flush-back)",
		Header: []string{"Configuration", "Total memory", "Disk I/Os", "Miss ratio"},
	}
	var splitIOs, splitAcc int64
	for i, events := range machines {
		r := sim(events, perMachine)
		splitIOs += r.DiskIOs()
		splitAcc += r.LogicalAccesses
		t.AddRow("private cache, "+names[i], report.Size(perMachine),
			report.Count(r.DiskIOs()), report.Pct(r.MissRatio()))
	}
	t.AddRow("private caches combined", report.Size(int64(len(machines))*perMachine),
		report.Count(splitIOs), report.Pct(float64(splitIOs)/float64(splitAcc)))
	for _, cs := range []int64{6 << 20, 12 << 20, 24 << 20} {
		r := sim(merged, cs)
		t.AddRow("shared server cache", report.Size(cs),
			report.Count(r.DiskIOs()), report.Pct(r.MissRatio()))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	shared := sim(merged, 6<<20)
	split := float64(splitIOs) / float64(splitAcc)
	fmt.Printf("At equal memory (6 MB), the shared cache's miss ratio is %.1f%% vs %.1f%% split:\n",
		100*shared.MissRatio(), 100*split)
	fmt.Println("the machines' bursts interleave, so pooled memory multiplexes better —")
	fmt.Println("the paper's case for dedicated file servers with large block caches.")
}
