// Diskless answers the paper's motivating question: how much network
// bandwidth does a diskless workstation need, and how many such
// workstations can share one 10 Mbit/second Ethernet?
//
// The paper's answer (§5.1): an active user moves only a few hundred bytes
// per second on average, so "a network-based file system using a single 10
// Mbit/second network can support many hundreds of users", even allowing
// for bursts of tens of kilobytes per second.
//
//	go run ./examples/diskless
package main

import (
	"fmt"
	"log"

	"bsdtrace/internal/analyzer"
	"bsdtrace/internal/trace"
	"bsdtrace/internal/workload"
)

func main() {
	// Trace a development machine for four simulated hours.
	res, err := workload.Generate(workload.Config{
		Profile:  "A5",
		Seed:     7,
		Duration: 4 * trace.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	a := analyzer.Analyze(res.Events, analyzer.Options{})

	long := a.Activity.Long.PerUserThroughput   // 10-minute windows
	short := a.Activity.Short.PerUserThroughput // 10-second windows

	fmt.Println("Per-user file system bandwidth (what a diskless workstation would put on the wire):")
	fmt.Printf("  sustained (10-min windows): mean %.0f B/s, sd %.0f, max burst %.0f B/s\n",
		long.Mean(), long.StdDev(), long.Max())
	fmt.Printf("  bursty    (10-sec windows): mean %.0f B/s, sd %.0f, max burst %.0f B/s\n",
		short.Mean(), short.StdDev(), short.Max())

	// Capacity estimate against a 10 Mbit/s Ethernet at 60% usable
	// capacity (1985 rule of thumb).
	const usable = 10_000_000 / 8 * 0.6 // bytes/sec
	sustained := long.Mean()
	// Provision for the mean plus two standard deviations of sustained
	// load per user, so simultaneous bursts fit statistically.
	perUser := sustained + 2*long.StdDev()
	fmt.Printf("\n10 Mbit/s Ethernet, 60%% usable => %.0f KB/s of file traffic\n", usable/1024)
	fmt.Printf("  at mean sustained load (%.0f B/s/user):      ~%d users\n", sustained, int(usable/sustained))
	fmt.Printf("  provisioned at mean + 2 sd (%.0f B/s/user):  ~%d users\n", perUser, int(usable/perUser))
	fmt.Printf("  worst 10-second burst seen (%.0f B/s) is %.1f%% of the network\n",
		short.Max(), 100*short.Max()/usable)
	fmt.Println("\nConclusion (matches the paper): network bandwidth is not the limiting")
	fmt.Println("factor for diskless workstations; hundreds of users fit on one Ethernet.")
}
