// Quickstart: generate a synthetic 4.2 BSD trace, analyze it, and simulate
// a disk block cache over it — the whole pipeline of the paper in about
// sixty lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bsdtrace/internal/analyzer"
	"bsdtrace/internal/cachesim"
	"bsdtrace/internal/trace"
	"bsdtrace/internal/workload"
)

func main() {
	// 1. Generate one simulated hour of the A5 machine (Ucbarpa:
	// program development and document formatting, ~28 users).
	res, err := workload.Generate(workload.Config{
		Profile:  "A5",
		Seed:     42,
		Duration: 1 * trace.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d trace events for %d users\n",
		len(res.Events), res.Profile.Users())

	// 2. Reference-pattern analysis (the paper's Section 5).
	a := analyzer.Analyze(res.Events, analyzer.Options{})
	fmt.Printf("data transferred: %.1f MB (%.0f bytes/sec per active user over 10-minute intervals)\n",
		float64(a.Overall.BytesTransferred)/(1<<20),
		a.Activity.Long.PerUserThroughput.Mean())
	fmt.Printf("whole-file read accesses: %.0f%%   opens under 0.5s: %.0f%%\n",
		100*a.Sequentiality.WholeFileFraction(analyzer.ClassReadOnly),
		100*a.OpenTimes.FractionAtOrBelow(0.5))
	fmt.Printf("new files dead within 3 minutes: %.0f%%\n",
		100*a.Lifetimes.ByFiles.FractionAtOrBelow(180))

	// 3. Cache simulation (the paper's Section 6): a 4-Mbyte LRU cache
	// of 4-kbyte blocks under the delayed-write policy.
	r, err := cachesim.Simulate(res.Events, cachesim.Config{
		BlockSize: 4096,
		CacheSize: 4 << 20,
		Write:     cachesim.DelayedWrite,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4MB delayed-write cache: miss ratio %.1f%% (%d disk I/Os for %d block accesses)\n",
		100*r.MissRatio(), r.DiskIOs(), r.LogicalAccesses)
	fmt.Printf("dirty blocks that died in cache and never reached disk: %.0f%%\n",
		100*r.NeverWrittenFraction())
}
