// Tracestats demonstrates the trace file API: it writes a trace to disk in
// both the binary and text formats, reads it back with the streaming
// reader, validates it, and prints per-kind statistics — the workflow for
// inspecting any trace file this repository produces.
//
//	go run ./examples/tracestats [trace.bin]
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/workload"
)

func main() {
	var path string
	if len(os.Args) > 1 {
		path = os.Args[1]
	} else {
		// No trace given: make a small one in a temp directory.
		dir, err := os.MkdirTemp("", "tracestats")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		path = filepath.Join(dir, "c4.trace")
		res, err := workload.Generate(workload.Config{
			Profile:  "C4",
			Seed:     1,
			Duration: 30 * trace.Minute,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.WriteFile(path, res.Events); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d events)\n", path, len(res.Events))
	}

	// Stream the file: the Reader decodes one event at a time, so even
	// multi-gigabyte traces need constant memory.
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		log.Fatal(err)
	}

	var counts trace.Counts
	v := trace.NewValidator(0)
	var first, last trace.Time
	n := 0
	for {
		e, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		if n == 0 {
			first = e.Time
		}
		last = e.Time
		n++
		counts.Add(e)
		v.Check(e)
		if n <= 5 {
			fmt.Printf("  %s\n", e) // the text format, one event per line
		}
	}
	fmt.Printf("  ... %d more events\n", n-5)

	fmt.Printf("\nspan %v .. %v (%.1f minutes)\n", first, last, (last-first).Seconds()/60)
	for k := trace.KindCreate; k <= trace.KindExec; k++ {
		fmt.Printf("%-9s %7d (%.1f%%)\n", k, counts.ByKind[k], 100*counts.Fraction(k))
	}
	if errs := v.Errs(); len(errs) > 0 {
		fmt.Printf("%d validation errors; first: %v\n", len(errs), errs[0])
	} else {
		fmt.Printf("trace is well-formed; %d opens still open at end of trace\n", v.Finish())
	}
}
