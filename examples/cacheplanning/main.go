// Cacheplanning sizes a file server's disk block cache the way the paper's
// Section 6 suggests: sweep cache sizes and write policies over a trace of
// the intended workload, then weigh disk I/O savings against the
// crash-loss exposure of delaying writes.
//
//	go run ./examples/cacheplanning
package main

import (
	"fmt"
	"log"
	"os"

	"bsdtrace/internal/cachesim"
	"bsdtrace/internal/report"
	"bsdtrace/internal/trace"
	"bsdtrace/internal/workload"
)

func main() {
	// The server will host a CAD group: trace profile C4 (Ucbcad).
	res, err := workload.Generate(workload.Config{
		Profile:  "C4",
		Seed:     3,
		Duration: 4 * trace.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	events := res.Events

	sizes := []int64{512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20}
	policies := []cachesim.PolicySpec{
		{Name: "write-through", Write: cachesim.WriteThrough},
		{Name: "30s flush", Write: cachesim.FlushBack, Interval: 30 * trace.Second},
		{Name: "5min flush", Write: cachesim.FlushBack, Interval: 5 * trace.Minute},
		{Name: "delayed", Write: cachesim.DelayedWrite},
	}
	sweep, err := cachesim.PolicySweep(events, 8192, sizes, policies)
	if err != nil {
		log.Fatal(err)
	}

	t := &report.Table{
		Title:  "Server cache plan: miss ratio by size and write policy (8-kbyte blocks, C4 workload)",
		Header: []string{"Cache", "write-through", "30s flush", "5min flush", "delayed", "dirty>20min (delayed)"},
	}
	for i, cs := range sizes {
		row := []string{report.Size(cs)}
		for j := range policies {
			row = append(row, report.Pct(sweep[i][j].MissRatio()))
		}
		row = append(row, report.Pct(sweep[i][3].ResidencyOver))
		t.AddRow(row...)
	}
	t.Note = "The last column is the crash-exposure proxy the paper uses in §6.2: " +
		"the fraction of blocks resident longer than 20 minutes under delayed-write."
	t.Render(os.Stdout)

	// Find the smallest cache within 10% of the 16MB delayed-write miss
	// ratio: the knee of the curve.
	best := sweep[len(sizes)-1][3].MissRatio()
	knee := sizes[len(sizes)-1]
	for i := range sizes {
		if sweep[i][3].MissRatio() <= best*1.1+0.01 {
			knee = sizes[i]
			break
		}
	}
	fmt.Printf("Recommendation: a %s cache captures nearly all of the benefit;\n", report.Size(knee))
	fmt.Printf("use a 5-minute flush-back rather than pure delayed-write to bound crash loss\n")
	fmt.Printf("(costing %.1f%% vs %.1f%% miss ratio at that size, per the sweep above),\n",
		100*missAt(sweep, sizes, knee, 2), 100*missAt(sweep, sizes, knee, 3))
	fmt.Printf("exactly the compromise the paper's conclusions recommend.\n")
}

func missAt(sweep [][]*cachesim.Result, sizes []int64, size int64, policy int) float64 {
	for i, cs := range sizes {
		if cs == size {
			return sweep[i][policy].MissRatio()
		}
	}
	return 0
}
