//go:build race

package bsdtrace

// raceEnabled reports whether the race detector is compiled in. The
// memory-guard tests skip under -race: the detector's shadow-memory
// instrumentation inflates heap allocation, so B/event thresholds
// calibrated against the plain allocator are meaningless there.
const raceEnabled = true
