// Package bsdtrace's benchmark suite regenerates every table and figure in
// the paper's evaluation, one benchmark per artifact, as DESIGN.md's
// experiment index specifies. Each benchmark measures the cost of
// regenerating its table or figure from a fixed pre-generated trace (trace
// generation itself is benchmarked separately), and reports a few headline
// numbers as custom metrics so `go test -bench` output doubles as a
// compact reproduction record.
//
// Run everything:
//
//	go test -bench=. -benchmem
package bsdtrace

import (
	"io"
	"sync"
	"testing"

	"bsdtrace/internal/analyzer"
	"bsdtrace/internal/cachesim"
	"bsdtrace/internal/ffs"
	"bsdtrace/internal/namei"
	"bsdtrace/internal/report"
	"bsdtrace/internal/trace"
	"bsdtrace/internal/workload"
	"bsdtrace/internal/xfer"
)

// benchDuration keeps each benchmark iteration around a second on a
// laptop while leaving the distributions well-populated; cmd/fsreport
// defaults to 8-hour traces for the recorded experiments.
const benchDuration = 2 * trace.Hour

var (
	benchOnce   sync.Once
	benchTraces report.Traces
	benchA5     []trace.Event
)

// benchSetup generates the three machine traces once per test binary.
// Every benchmark that uses it exercises the simulators, so allocation
// counts are reported alongside time without needing -benchmem.
func benchSetup(b *testing.B) {
	b.Helper()
	b.ReportAllocs()
	benchOnce.Do(func() {
		for _, name := range []string{"A5", "E3", "C4"} {
			res, err := workload.Generate(workload.Config{
				Profile:  name,
				Seed:     1,
				Duration: benchDuration,
			})
			if err != nil {
				panic(err)
			}
			if name == "A5" {
				benchA5 = res.Events
			}
			benchTraces.Names = append(benchTraces.Names, name)
			benchTraces.Analyses = append(benchTraces.Analyses, analyzer.Analyze(res.Events, analyzer.Options{}))
		}
	})
	b.ResetTimer()
}

// BenchmarkGenerate measures trace generation itself (events/sec of
// synthetic machine time).
func BenchmarkGenerate(b *testing.B) {
	var events int64
	for i := 0; i < b.N; i++ {
		res, err := workload.Generate(workload.Config{Profile: "A5", Seed: int64(i + 1), Duration: trace.Hour})
		if err != nil {
			b.Fatal(err)
		}
		events = int64(len(res.Events))
	}
	b.ReportMetric(float64(events), "events/trace-hour")
}

// BenchmarkAnalyze measures the full Section-5 analysis pass.
func BenchmarkAnalyze(b *testing.B) {
	benchSetup(b)
	for i := 0; i < b.N; i++ {
		analyzer.Analyze(benchA5, analyzer.Options{})
	}
	b.ReportMetric(float64(len(benchA5))/float64(1), "events")
}

// BenchmarkTableI regenerates the paper's selected-results summary
// (Table I), which depends on the Table VI and VII sweeps.
func BenchmarkTableI(b *testing.B) {
	benchSetup(b)
	for i := 0; i < b.N; i++ {
		policy, err := cachesim.PolicySweep(benchA5, 4096,
			[]int64{cachesim.UnixCacheSize, 1 << 20, 2 << 20, 4 << 20}, cachesim.PaperPolicies())
		if err != nil {
			b.Fatal(err)
		}
		block, err := cachesim.BlockSizeSweep(benchA5,
			[]int64{4096, 8192, 16384}, []int64{400 << 10, 2 << 20, 4 << 20})
		if err != nil {
			b.Fatal(err)
		}
		if err := report.TableI(benchTraces.Analyses[0], policy, block).Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIII regenerates the overall trace statistics.
func BenchmarkTableIII(b *testing.B) {
	benchSetup(b)
	for i := 0; i < b.N; i++ {
		if err := report.TableIII(benchTraces).Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*benchTraces.Analyses[0].Overall.Counts.Fraction(trace.KindSeek), "seek-%")
}

// BenchmarkTableIV regenerates the activity table and reports the paper's
// headline per-user throughput.
func BenchmarkTableIV(b *testing.B) {
	benchSetup(b)
	for i := 0; i < b.N; i++ {
		if err := report.TableIV(benchTraces).Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(benchTraces.Analyses[0].Activity.Long.PerUserThroughput.Mean(), "B/s/user-10min")
}

// BenchmarkTableV regenerates the sequentiality table.
func BenchmarkTableV(b *testing.B) {
	benchSetup(b)
	for i := 0; i < b.N; i++ {
		if err := report.TableV(benchTraces).Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*benchTraces.Analyses[0].Sequentiality.WholeFileFraction(analyzer.ClassReadOnly), "wholefile-read-%")
}

// BenchmarkEventIntervals regenerates the §3.1 inter-event interval
// measurement.
func BenchmarkEventIntervals(b *testing.B) {
	benchSetup(b)
	for i := 0; i < b.N; i++ {
		if err := report.EventIntervalTable(benchTraces).Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*benchTraces.Analyses[0].EventIntervals.FractionAtOrBelow(0.5), "gaps<=0.5s-%")
}

// BenchmarkFigure1 regenerates the sequential-run-length CDFs.
func BenchmarkFigure1(b *testing.B) {
	benchSetup(b)
	for i := 0; i < b.N; i++ {
		for _, c := range report.Figure1(benchTraces) {
			if err := c.Render(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(100*benchTraces.Analyses[0].RunLengthsByRuns.FractionAtOrBelow(4096), "runs<=4KB-%")
}

// BenchmarkFigure2 regenerates the file-size CDFs.
func BenchmarkFigure2(b *testing.B) {
	benchSetup(b)
	for i := 0; i < b.N; i++ {
		for _, c := range report.Figure2(benchTraces) {
			if err := c.Render(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(100*benchTraces.Analyses[0].FileSizesByFiles.FractionAtOrBelow(10240), "files<=10KB-%")
}

// BenchmarkFigure3 regenerates the open-duration CDF.
func BenchmarkFigure3(b *testing.B) {
	benchSetup(b)
	for i := 0; i < b.N; i++ {
		if err := report.Figure3(benchTraces).Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*benchTraces.Analyses[0].OpenTimes.FractionAtOrBelow(0.5), "opens<=0.5s-%")
}

// BenchmarkFigure4 regenerates the lifetime CDFs.
func BenchmarkFigure4(b *testing.B) {
	benchSetup(b)
	for i := 0; i < b.N; i++ {
		for _, c := range report.Figure4(benchTraces) {
			if err := c.Render(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
	lf := benchTraces.Analyses[0].Lifetimes.ByFiles
	b.ReportMetric(100*(lf.FractionAtOrBelow(182)-lf.FractionAtOrBelow(178)), "180s-spike-%")
}

// BenchmarkTableVI regenerates the cache-size x write-policy sweep
// (Table VI / Figure 5).
func BenchmarkTableVI(b *testing.B) {
	benchSetup(b)
	var dw4 float64
	for i := 0; i < b.N; i++ {
		sizes := cachesim.PaperCacheSizes()
		pols := cachesim.PaperPolicies()
		res, err := cachesim.PolicySweep(benchA5, 4096, sizes, pols)
		if err != nil {
			b.Fatal(err)
		}
		if err := report.TableVI(sizes, pols, res).Render(io.Discard); err != nil {
			b.Fatal(err)
		}
		dw4 = res[3][3].MissRatio()
	}
	b.ReportMetric(100*dw4, "4MB-DW-miss-%")
}

// BenchmarkFigure5 regenerates the chart form of Table VI.
func BenchmarkFigure5(b *testing.B) {
	benchSetup(b)
	for i := 0; i < b.N; i++ {
		sizes := cachesim.PaperCacheSizes()
		pols := cachesim.PaperPolicies()
		res, err := cachesim.PolicySweep(benchA5, 4096, sizes, pols)
		if err != nil {
			b.Fatal(err)
		}
		if err := report.Figure5(sizes, pols, res).Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableVII regenerates the block-size x cache-size sweep
// (Table VII / Figure 6).
func BenchmarkTableVII(b *testing.B) {
	benchSetup(b)
	var best16 int64
	for i := 0; i < b.N; i++ {
		res, err := cachesim.BlockSizeSweep(benchA5, cachesim.PaperBlockSizes(), cachesim.PaperBlockCacheSizes())
		if err != nil {
			b.Fatal(err)
		}
		if err := report.TableVII(res).Render(io.Discard); err != nil {
			b.Fatal(err)
		}
		best16 = res.Results[4][2].DiskIOs() // 16 KB blocks, 4 MB cache
	}
	b.ReportMetric(float64(best16), "IOs-16KB-4MB")
}

// BenchmarkFigure6 regenerates the chart form of Table VII.
func BenchmarkFigure6(b *testing.B) {
	benchSetup(b)
	for i := 0; i < b.N; i++ {
		res, err := cachesim.BlockSizeSweep(benchA5, cachesim.PaperBlockSizes(), cachesim.PaperBlockCacheSizes())
		if err != nil {
			b.Fatal(err)
		}
		if err := report.Figure6(res).Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7 regenerates the page-in experiment.
func BenchmarkFigure7(b *testing.B) {
	benchSetup(b)
	var with, without float64
	for i := 0; i < b.N; i++ {
		sizes := cachesim.PaperCacheSizes()
		res, err := cachesim.PagingSweep(benchA5, 4096, sizes)
		if err != nil {
			b.Fatal(err)
		}
		if err := report.Figure7(sizes, res).Render(io.Discard); err != nil {
			b.Fatal(err)
		}
		without, with = res[3][0].MissRatio(), res[3][1].MissRatio()
	}
	b.ReportMetric(100*without, "4MB-nopage-miss-%")
	b.ReportMetric(100*with, "4MB-paging-miss-%")
}

// BenchmarkResidency regenerates the §6.2 residency measurement.
func BenchmarkResidency(b *testing.B) {
	benchSetup(b)
	var over float64
	for i := 0; i < b.N; i++ {
		r, err := cachesim.Simulate(benchA5, cachesim.Config{
			BlockSize: 4096, CacheSize: 4 << 20, Write: cachesim.DelayedWrite,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := report.ResidencyTable(r).Render(io.Discard); err != nil {
			b.Fatal(err)
		}
		over = r.ResidencyOver
	}
	b.ReportMetric(100*over, "resident>20min-%")
}

// BenchmarkAblationReplacement compares replacement policies (A1).
func BenchmarkAblationReplacement(b *testing.B) {
	benchSetup(b)
	var lru, fifo float64
	for i := 0; i < b.N; i++ {
		res, err := cachesim.ReplacementSweep(benchA5, 4096, 2<<20, 1)
		if err != nil {
			b.Fatal(err)
		}
		lru = res[cachesim.LRU].MissRatio()
		fifo = res[cachesim.FIFO].MissRatio()
	}
	b.ReportMetric(100*lru, "LRU-miss-%")
	b.ReportMetric(100*fifo, "FIFO-miss-%")
}

// BenchmarkAblationFlushInterval sweeps flush-back intervals (A2).
func BenchmarkAblationFlushInterval(b *testing.B) {
	benchSetup(b)
	intervals := []trace.Time{trace.Second, 30 * trace.Second, 5 * trace.Minute, trace.Hour}
	var first, last float64
	for i := 0; i < b.N; i++ {
		res, err := cachesim.FlushIntervalSweep(benchA5, 4096, 2<<20, intervals)
		if err != nil {
			b.Fatal(err)
		}
		first, last = res[0].MissRatio(), res[len(res)-1].MissRatio()
	}
	b.ReportMetric(100*first, "1s-flush-miss-%")
	b.ReportMetric(100*last, "1h-flush-miss-%")
}

// BenchmarkAblationBilling compares billing transfers at run start versus
// run end (A3) under a flush-back policy, where wall-clock time matters.
func BenchmarkAblationBilling(b *testing.B) {
	benchSetup(b)
	var end, start float64
	for i := 0; i < b.N; i++ {
		for _, billStart := range []bool{false, true} {
			r, err := cachesim.Simulate(benchA5, cachesim.Config{
				BlockSize: 4096, CacheSize: 2 << 20,
				Write: cachesim.FlushBack, FlushInterval: 30 * trace.Second,
				BillAtStart: billStart,
			})
			if err != nil {
				b.Fatal(err)
			}
			if billStart {
				start = r.MissRatio()
			} else {
				end = r.MissRatio()
			}
		}
	}
	b.ReportMetric(100*end, "bill-at-end-miss-%")
	b.ReportMetric(100*start, "bill-at-start-miss-%")
}

// BenchmarkAblationPurge isolates the death-before-ejection effect (A4).
func BenchmarkAblationPurge(b *testing.B) {
	benchSetup(b)
	var purge, noPurge float64
	for i := 0; i < b.N; i++ {
		for _, np := range []bool{false, true} {
			r, err := cachesim.Simulate(benchA5, cachesim.Config{
				BlockSize: 4096, CacheSize: 2 << 20, Write: cachesim.DelayedWrite,
				NoPurge: np,
			})
			if err != nil {
				b.Fatal(err)
			}
			if np {
				noPurge = r.MissRatio()
			} else {
				purge = r.MissRatio()
			}
		}
	}
	b.ReportMetric(100*purge, "purge-miss-%")
	b.ReportMetric(100*noPurge, "nopurge-miss-%")
}

// BenchmarkCodec measures binary trace encode+decode throughput.
func BenchmarkCodec(b *testing.B) {
	benchSetup(b)
	var bytesPerEvent float64
	for i := 0; i < b.N; i++ {
		cw := &countWriter{}
		w := trace.NewWriter(cw)
		for _, e := range benchA5 {
			if err := w.Write(e); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
		bytesPerEvent = float64(cw.n) / float64(len(benchA5))
	}
	b.ReportMetric(bytesPerEvent, "bytes/event")
}

type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// BenchmarkMetadata regenerates the §3.2/conclusion metadata experiment:
// the A5 workload with the name, i-node, and directory caches simulated.
func BenchmarkMetadata(b *testing.B) {
	benchSetup(b)
	var nameHit, share float64
	for i := 0; i < b.N; i++ {
		sim := namei.New(namei.Config{})
		if _, err := workload.Generate(workload.Config{
			Profile: "A5", Seed: 1, Duration: benchDuration, Meta: sim,
		}); err != nil {
			b.Fatal(err)
		}
		data, err := cachesim.Simulate(benchA5, cachesim.Config{
			BlockSize: 4096, CacheSize: cachesim.UnixCacheSize,
			Write: cachesim.FlushBack, FlushInterval: 30 * trace.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		nameHit = sim.Stats.NameHitRatio()
		meta := sim.Stats.DiskIOs()
		share = float64(meta) / float64(meta+data.DiskIOs())
	}
	b.ReportMetric(100*nameHit, "name-hit-%")
	b.ReportMetric(100*share, "meta-share-%")
}

// BenchmarkAblationFragmentation regenerates the §6.3 disk-space-waste
// experiment over the FFS allocator.
func BenchmarkAblationFragmentation(b *testing.B) {
	benchSetup(b)
	var noFrag, withFrag float64
	for i := 0; i < b.N; i++ {
		rows, err := ffs.WasteSweep(benchA5, []int64{4096, 16384})
		if err != nil {
			b.Fatal(err)
		}
		noFrag = rows[1].NoFragWaste
		withFrag = rows[1].FragWaste
	}
	b.ReportMetric(100*noFrag, "16KB-waste-noFrag-%")
	b.ReportMetric(100*withFrag, "16KB-waste-FFS-%")
}

// BenchmarkStackDistance measures the one-pass Mattson analysis that
// produces the whole LRU miss-ratio curve at once.
func BenchmarkStackDistance(b *testing.B) {
	benchSetup(b)
	var at4MB float64
	for i := 0; i < b.N; i++ {
		r, err := cachesim.StackDistances(benchA5, 4096)
		if err != nil {
			b.Fatal(err)
		}
		at4MB = r.MissRatio(4 << 20)
	}
	b.ReportMetric(100*at4MB, "4MB-ref-miss-%")
}

// BenchmarkServerConsolidation runs the shared-file-server experiment:
// the three machine traces merged onto one server cache versus private
// per-machine caches of the same total memory.
func BenchmarkServerConsolidation(b *testing.B) {
	benchSetup(b)
	// Regenerate E3 and C4 event slices (benchSetup keeps only analyses
	// plus A5 events); cached across iterations.
	var machines [][]trace.Event
	for _, name := range []string{"A5", "E3", "C4"} {
		res, err := workload.Generate(workload.Config{Profile: name, Seed: 1, Duration: benchDuration})
		if err != nil {
			b.Fatal(err)
		}
		machines = append(machines, res.Events)
	}
	b.ResetTimer()
	var split, shared float64
	for i := 0; i < b.N; i++ {
		merged := trace.Merge(machines...)
		var splitIOs, splitAcc int64
		for _, events := range machines {
			r, err := cachesim.Simulate(events, cachesim.Config{
				BlockSize: 4096, CacheSize: 2 << 20, Write: cachesim.DelayedWrite,
			})
			if err != nil {
				b.Fatal(err)
			}
			splitIOs += r.DiskIOs()
			splitAcc += r.LogicalAccesses
		}
		split = float64(splitIOs) / float64(splitAcc)
		r, err := cachesim.Simulate(merged, cachesim.Config{
			BlockSize: 4096, CacheSize: 6 << 20, Write: cachesim.DelayedWrite,
		})
		if err != nil {
			b.Fatal(err)
		}
		shared = r.MissRatio()
	}
	b.ReportMetric(100*split, "split-3x2MB-miss-%")
	b.ReportMetric(100*shared, "shared-6MB-miss-%")
}

// BenchmarkDiskless runs the two-level client/server simulation (the
// diskless-workstation architecture from the paper's introduction).
func BenchmarkDiskless(b *testing.B) {
	benchSetup(b)
	var machines [][]trace.Event
	for _, name := range []string{"A5", "E3", "C4"} {
		res, err := workload.Generate(workload.Config{Profile: name, Seed: 1, Duration: benchDuration})
		if err != nil {
			b.Fatal(err)
		}
		machines = append(machines, res.Events)
	}
	b.ResetTimer()
	var hit, endToEnd float64
	for i := 0; i < b.N; i++ {
		r, err := cachesim.TwoLevelSimulate(machines, cachesim.TwoLevelConfig{
			BlockSize: 4096, ClientCache: 512 << 10, ServerCache: 8 << 20,
			Write: cachesim.DelayedWrite,
		})
		if err != nil {
			b.Fatal(err)
		}
		hit = r.ClientHitRatio()
		endToEnd = r.EndToEndMissRatio()
	}
	b.ReportMetric(100*hit, "client-hit-%")
	b.ReportMetric(100*endToEnd, "end-to-end-miss-%")
}

// benchPaperConfigs returns the combined Table VI + Table VII + Figure 7
// configuration set: the 60 cache configurations the paper's Section 6
// evaluates.
func benchPaperConfigs() []cachesim.Config {
	var cfgs []cachesim.Config
	for _, cs := range cachesim.PaperCacheSizes() {
		for _, p := range cachesim.PaperPolicies() {
			cfgs = append(cfgs, cachesim.Config{
				BlockSize: 4096, CacheSize: cs, Write: p.Write, FlushInterval: p.Interval,
			})
		}
	}
	for _, bs := range cachesim.PaperBlockSizes() {
		for _, cs := range cachesim.PaperBlockCacheSizes() {
			cfgs = append(cfgs, cachesim.Config{BlockSize: bs, CacheSize: cs, Write: cachesim.DelayedWrite})
		}
	}
	for _, cs := range cachesim.PaperCacheSizes() {
		for j := 0; j < 2; j++ {
			cfgs = append(cfgs, cachesim.Config{
				BlockSize: 4096, CacheSize: cs, Write: cachesim.DelayedWrite, SimulatePaging: j == 1,
			})
		}
	}
	return cfgs
}

// BenchmarkNaiveSweep runs the combined Section-6 sweep the
// pre-tape way: every configuration re-reconstructs the transfer stream
// from the raw events (Simulate builds a private tape per call). The
// configurations still run on parallel workers, so the comparison with
// BenchmarkTapeReuse isolates the cost of re-reconstruction, not of
// serial execution.
func BenchmarkNaiveSweep(b *testing.B) {
	benchSetup(b)
	cfgs := benchPaperConfigs()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range next {
					if _, err := cachesim.Simulate(benchA5, cfgs[j]); err != nil {
						b.Error(err)
						return
					}
				}
			}()
		}
		for j := range cfgs {
			next <- j
		}
		close(next)
		wg.Wait()
	}
	b.ReportMetric(float64(len(cfgs)), "configs")
}

// BenchmarkTapeReuse runs the same combined sweep through the transfer
// tape: one reconstruction of the event stream, replayed into all 60
// configurations by MultiSimulate. The tape build is inside the timed
// loop, so the speedup over BenchmarkNaiveSweep is the end-to-end one.
func BenchmarkTapeReuse(b *testing.B) {
	benchSetup(b)
	cfgs := benchPaperConfigs()
	for i := 0; i < b.N; i++ {
		tape, err := xfer.NewTape(benchA5)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cachesim.MultiSimulate(tape, cfgs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(cfgs)), "configs")
}

// BenchmarkWorkingSet computes Denning's W(T) curve over the A5 trace.
func BenchmarkWorkingSet(b *testing.B) {
	benchSetup(b)
	var tenMin float64
	for i := 0; i < b.N; i++ {
		ws, err := cachesim.WorkingSet(benchA5, 4096, []trace.Time{
			10 * trace.Second, trace.Minute, 10 * trace.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		tenMin = ws[2].MeanBytes / (1 << 20)
	}
	b.ReportMetric(tenMin, "10min-WS-MB")
}
