module bsdtrace

go 1.22
