// Command fsbench measures the streaming scale engine's throughput and
// writes a machine-readable benchmark record (BENCH_scale.json). For each
// user-population scale it times the stages of the streaming pipeline in
// isolation:
//
//   - generate: serial workload generation (one shard, one goroutine),
//     streamed to a discarding sink — the per-core baseline;
//   - parallel-generate: sharded generation across worker goroutines
//     with batched channels and the deterministic k-way merge — the
//     multi-core hot path;
//   - merge: the k-way merge over 8 pre-split strands of the trace;
//   - stream-analyze: the incremental Section-5 analyzer consuming the
//     trace in batches;
//   - tape-build: the incremental transfer-tape builder doing the same;
//   - recover: the self-healing repair pass (the -lenient ingestion
//     tax) streaming the same trace;
//   - policy-sweep-lru: the Figure 5 cache-size grid replayed LRU-only
//     (events = logical accesses, summed over the grid);
//   - policy-sweep-zoo: the same grid across all nine replacement
//     policies — the bookkeeping tax of the adaptive policies, which
//     -smoke bounds to 1.5x of the LRU-only row per access.
//
// Each stage reports events/second plus the GOMAXPROCS it ran at and its
// worker count, so serial and parallel rows land in one file and a
// regression in any layer shows up in its own row rather than hiding in
// an end-to-end number. The -procs flag sweeps GOMAXPROCS so one run can
// record the scaling curve of the parallel stages.
//
// Every stage is timed by an obs span — the same instrument the run
// manifest snapshots — so BENCH_scale.json and the -manifest output are
// two views of one measurement and can never disagree.
//
// Usage:
//
//	fsbench                          # scales 1, 4, 16; 1h traces
//	fsbench -scales 1,8 -duration 30m
//	fsbench -procs 1,4 -o BENCH_scale.json
//	fsbench -smoke                   # CI: assert the parallel rows
//	fsbench -manifest run.json -progress
//	fsbench -debug-addr :6060        # live expvar + pprof during the run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"bsdtrace/internal/analyzer"
	"bsdtrace/internal/cachesim"
	"bsdtrace/internal/obs"
	"bsdtrace/internal/trace"
	"bsdtrace/internal/workload"
	"bsdtrace/internal/xfer"
)

// benchRecord is the file-level JSON shape.
type benchRecord struct {
	Config  benchConfig   `json:"config"`
	Results []stageResult `json:"results"`
}

type benchConfig struct {
	Profile    string    `json:"profile"`
	Seed       int64     `json:"seed"`
	DurationMS int64     `json:"duration_ms"`
	Scales     []float64 `json:"scales"`
	Procs      []int     `json:"procs"`
	Workers    int       `json:"workers"`
	GoMaxProcs int       `json:"go_max_procs"`
	GoVersion  string    `json:"go_version"`
}

type stageResult struct {
	Scale        float64 `json:"scale"`
	Stage        string  `json:"stage"`
	Procs        int     `json:"procs"`
	Workers      int     `json:"workers"`
	Events       int64   `json:"events"`
	Seconds      float64 `json:"seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// row converts a closed stage span into a benchmark row: the span is
// the single source of truth for both this JSON record and the run
// manifest. procs is the GOMAXPROCS the stage ran at; workers is its
// own concurrency (generation shards, merge strands — 1 for the serial
// stages).
func row(scale float64, stage string, procs, workers int, sp *obs.Span) stageResult {
	secs := sp.Wall().Seconds()
	events := sp.Events()
	eps := 0.0
	if secs > 0 {
		eps = float64(events) / secs
	}
	return stageResult{Scale: scale, Stage: stage, Procs: procs, Workers: workers,
		Events: events, Seconds: secs, EventsPerSec: eps}
}

func main() {
	var (
		duration  = flag.Duration("duration", time.Hour, "simulated time span per trace")
		seed      = flag.Int64("seed", 1, "random seed")
		scalesF   = flag.String("scales", "1,4,16", "comma-separated user-population scales")
		procsF    = flag.String("procs", "", "comma-separated GOMAXPROCS sweep (default: the real GOMAXPROCS, one pass)")
		workersN  = flag.Int("workers", 0, "parallel-generate shard count (default: the pass's GOMAXPROCS, minimum 2)")
		out       = flag.String("o", "BENCH_scale.json", "output file")
		smoke     = flag.Bool("smoke", false, "verify the record after the run: a parallel-generate row must exist, and on multi-proc passes must not be slower than serial generate")
		manifest  = flag.String("manifest", "", "also write the run manifest (config, stage spans, metrics) to this file")
		progress  = flag.Bool("progress", false, "live per-stage progress line on stderr (TTY only)")
		debugAddr = flag.String("debug-addr", "", "serve expvar and pprof on this address for live inspection")
	)
	flag.Parse()

	var scales []float64
	for _, s := range strings.Split(*scalesF, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "fsbench: bad scale %q\n", s)
			os.Exit(2)
		}
		scales = append(scales, v)
	}
	realProcs := runtime.GOMAXPROCS(0)
	procs := []int{realProcs}
	if *procsF != "" {
		procs = procs[:0]
		for _, s := range strings.Split(*procsF, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v <= 0 {
				fmt.Fprintf(os.Stderr, "fsbench: bad procs %q\n", s)
				os.Exit(2)
			}
			procs = append(procs, v)
		}
	}

	// The benchmark rows are read off obs spans, so the registry is
	// always on here; -manifest only controls whether it is written out.
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	if *debugAddr != "" {
		addr, err := obs.ServeDebug(*debugAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fsbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "fsbench: debug server on http://%s/debug/vars\n", addr)
	}
	var prog *obs.Progress
	if *progress {
		prog = obs.StartProgress(os.Stderr, reg)
	}

	rec := benchRecord{
		Config: benchConfig{
			Profile:    "A5",
			Seed:       *seed,
			DurationMS: duration.Milliseconds(),
			Scales:     scales,
			Procs:      procs,
			Workers:    *workersN,
			GoMaxProcs: realProcs,
			GoVersion:  runtime.Version(),
		},
	}

	for _, p := range procs {
		runtime.GOMAXPROCS(p)
		for _, scale := range scales {
			results, err := benchScale(reg, *seed, trace.Time(duration.Milliseconds()), scale, p, *workersN)
			if err != nil {
				runtime.GOMAXPROCS(realProcs)
				prog.Stop()
				fmt.Fprintln(os.Stderr, "fsbench:", err)
				os.Exit(1)
			}
			rec.Results = append(rec.Results, results...)
			for _, r := range results {
				fmt.Printf("scale %4g  p%-2d w%-2d  %-17s %9d events  %8.3fs  %12.0f events/sec\n",
					r.Scale, r.Procs, r.Workers, r.Stage, r.Events, r.Seconds, r.EventsPerSec)
			}
		}
	}
	runtime.GOMAXPROCS(realProcs)
	prog.Stop()

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fsbench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)

	if *manifest != "" {
		m := reg.Manifest(obs.RunInfo{
			Command: "fsbench",
			Seed:    *seed,
			Config: map[string]string{
				"profile":  "A5",
				"duration": duration.String(),
				"scales":   *scalesF,
				"procs":    *procsF,
			},
		})
		if err := m.WriteFile(*manifest); err != nil {
			fmt.Fprintln(os.Stderr, "fsbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *manifest)
	}

	if *smoke {
		if err := smokeCheck(rec); err != nil {
			fmt.Fprintln(os.Stderr, "fsbench: smoke check failed:", err)
			os.Exit(1)
		}
		fmt.Println("smoke check ok")
	}
}

// smokeCheck is the CI assertion over a finished record: every
// (procs, scale) pass has a parallel-generate row, and on passes with
// more than one proc — backed by more than one physical core — the
// parallel row's throughput is at least the serial generate row's:
// parallelism must never cost throughput when there are cores to use.
// Single-proc passes, and sweeps that raise GOMAXPROCS past
// runtime.NumCPU on a small machine, only assert existence: with one
// core there is nothing for the shards to run on, so those rows
// document overhead rather than speedup.
func smokeCheck(rec benchRecord) error {
	cores := runtime.NumCPU()
	type key struct {
		procs int
		scale float64
	}
	serial := map[key]float64{}
	par := map[key]float64{}
	lru := map[key]float64{}
	zoo := map[key]float64{}
	for _, r := range rec.Results {
		k := key{r.Procs, r.Scale}
		switch r.Stage {
		case "generate":
			serial[k] = r.EventsPerSec
		case "parallel-generate":
			par[k] = r.EventsPerSec
		case "policy-sweep-lru":
			lru[k] = r.EventsPerSec
		case "policy-sweep-zoo":
			zoo[k] = r.EventsPerSec
		}
	}
	for k, s := range serial {
		p, ok := par[k]
		if !ok {
			return fmt.Errorf("no parallel-generate row for procs=%d scale=%g", k.procs, k.scale)
		}
		if k.procs > 1 && cores > 1 && p < s {
			return fmt.Errorf("parallel-generate slower than serial at procs=%d scale=%g: %.0f < %.0f events/sec",
				k.procs, k.scale, p, s)
		}
	}
	if len(serial) == 0 {
		return fmt.Errorf("no generate rows in record")
	}
	// The zoo replay counts one event per logical access per config, the
	// same unit as the LRU-only row, so per-access throughput across the
	// nine policies must stay within 1.5x of the LRU-only baseline — the
	// adaptive policies' bookkeeping tax, bounded.
	for k, l := range lru {
		z, ok := zoo[k]
		if !ok {
			return fmt.Errorf("no policy-sweep-zoo row for procs=%d scale=%g", k.procs, k.scale)
		}
		if z*1.5 < l {
			return fmt.Errorf("policy-sweep-zoo more than 1.5x slower than LRU-only at procs=%d scale=%g: %.0f vs %.0f accesses/sec",
				k.procs, k.scale, z, l)
		}
	}
	if len(lru) == 0 {
		return fmt.Errorf("no policy-sweep-lru rows in record")
	}
	return nil
}

// benchScale times the pipeline stages at one population scale, one obs
// span per stage, at the current GOMAXPROCS.
func benchScale(reg *obs.Registry, seed int64, duration trace.Time, scale float64, procs, workers int) ([]stageResult, error) {
	if workers <= 0 {
		workers = procs
	}
	if workers < 2 {
		workers = 2
	}
	serialCfg := workload.Config{
		Profile: "A5", Seed: seed, Duration: duration,
		UserScale: scale, Shards: 1,
	}
	parCfg := serialCfg
	parCfg.Shards = workers
	label := func(stage string) string { return fmt.Sprintf("%s/x%g/p%d", stage, scale, procs) }

	// Stage 1: serial generation, events discarded at the sink — one
	// shard, one goroutine, the per-core baseline nothing throttles.
	sp := reg.StartSpan(label("generate"))
	res, err := workload.GenerateStream(serialCfg, func(trace.Event) error { sp.AddOut(1); return nil })
	if err != nil {
		return nil, err
	}
	sp.End()
	workload.PublishStats(reg, label("kernel"), res.KernelStats)
	results := []stageResult{row(scale, "generate", procs, 1, sp)}

	// Stage 2: parallel sharded generation — worker goroutines pushing
	// batched channels through the deterministic merge. On one proc this
	// prices the coordination overhead; on many it shows the speedup.
	sp = reg.StartSpan(label("parallel-generate"))
	if _, err := workload.GenerateStream(parCfg, func(trace.Event) error { sp.AddOut(1); return nil }); err != nil {
		return nil, err
	}
	sp.End()
	results = append(results, row(scale, "parallel-generate", procs, workers, sp))

	// The remaining stages consume a materialized copy of the same trace
	// so each stage's cost is measured alone.
	memres, err := workload.Generate(serialCfg)
	if err != nil {
		return nil, err
	}
	events := memres.Events

	// Stage 3: 8-way merge over pre-split strands.
	const strands = 8
	split := make([][]trace.Event, strands)
	for i, e := range events {
		split[i%strands] = append(split[i%strands], e)
	}
	sources := make([]trace.Source, strands)
	for i := range split {
		sources[i] = trace.NewSliceSource(split[i])
	}
	sp = reg.StartSpan(label("merge"))
	m := obs.SpanSource(sp, trace.NewMergeSource(sources...))
	buf := trace.GetBatch()
	for {
		n, err := trace.ReadBatch(m, buf)
		if n == 0 && err != nil {
			break
		}
	}
	trace.PutBatch(buf)
	sp.End()
	results = append(results, row(scale, "merge", procs, strands, sp))

	// Stage 4: incremental analyzer, consuming through an instrumented
	// source so the span sees exactly what the analyzer does.
	sp = reg.StartSpan(label("stream-analyze"))
	if _, err := analyzer.AnalyzeSource(obs.SpanSource(sp, trace.NewSliceSource(events)), analyzer.Options{}); err != nil {
		return nil, err
	}
	sp.End()
	results = append(results, row(scale, "stream-analyze", procs, 1, sp))

	// Stage 5: incremental tape builder.
	sp = reg.StartSpan(label("tape-build"))
	tape, err := xfer.BuildTape(obs.SpanSource(sp, trace.NewSliceSource(events)))
	if err != nil {
		return nil, err
	}
	sp.End()
	tape.PublishMetrics(reg, label("tape"))
	results = append(results, row(scale, "tape-build", procs, 1, sp))

	// Stage 6: self-healing recovery pass over the same trace — the tax
	// the -lenient ingestion path adds on top of a plain stream read.
	sp = reg.StartSpan(label("recover"))
	rec := obs.SpanSource(sp, trace.NewRecoverSource(trace.NewSliceSource(events)))
	buf = trace.GetBatch()
	for {
		n, err := trace.ReadBatch(rec, buf)
		if n == 0 && err != nil {
			break
		}
	}
	trace.PutBatch(buf)
	sp.End()
	results = append(results, row(scale, "recover", procs, 1, sp))

	// Stage 7: the Figure 5 cache sweep replayed LRU-only — the
	// single-policy baseline. Events are the logical block accesses
	// replayed, summed over every configuration in the grid, so the
	// events/sec of this row and the zoo row below are directly
	// comparable per unit of replay work.
	sizes := cachesim.PaperCacheSizes()
	lruCfgs := make([]cachesim.Config, 0, len(sizes))
	for _, cs := range sizes {
		lruCfgs = append(lruCfgs, cachesim.Config{
			BlockSize: 4096, CacheSize: cs,
			Write: cachesim.DelayedWrite, Replacement: cachesim.LRU, Seed: seed,
		})
	}
	sp = reg.StartSpan(label("policy-sweep-lru"))
	rs, err := cachesim.MultiSimulate(tape, lruCfgs)
	if err != nil {
		return nil, err
	}
	for _, r := range rs {
		sp.AddOut(r.LogicalAccesses)
	}
	sp.End()
	results = append(results, row(scale, "policy-sweep-lru", procs, len(lruCfgs), sp))

	// Stage 8: the same grid across the whole replacement-policy zoo.
	// The adaptive policies (ARC, LIRS, TinyLFU) do more bookkeeping per
	// access than LRU's list splice; the smoke check bounds that tax.
	sp = reg.StartSpan(label("policy-sweep-zoo"))
	zoo, err := cachesim.ZooSweepTape(tape, 4096, sizes, seed)
	if err != nil {
		return nil, err
	}
	for _, zr := range zoo {
		for _, r := range zr {
			sp.AddOut(r.LogicalAccesses)
		}
	}
	sp.End()
	results = append(results, row(scale, "policy-sweep-zoo", procs,
		len(sizes)*len(cachesim.AllReplacements()), sp))

	return results, nil
}
