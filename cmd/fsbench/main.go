// Command fsbench measures the streaming scale engine's throughput and
// writes a machine-readable benchmark record (BENCH_scale.json). For each
// user-population scale it times the five stages of the streaming
// pipeline in isolation:
//
//   - generate: sharded workload generation (one shard per core),
//     streamed to a discarding sink;
//   - merge: the k-way merge over 8 pre-split strands of the trace;
//   - stream-analyze: the incremental Section-5 analyzer consuming the
//     trace one event at a time;
//   - tape-build: the incremental transfer-tape builder doing the same;
//   - recover: the self-healing repair pass (the -lenient ingestion
//     tax) streaming the same trace.
//
// Each stage reports events/second, so regressions in any layer of the
// pipeline show up as a drop in its own row rather than hiding in an
// end-to-end number.
//
// Usage:
//
//	fsbench                          # scales 1, 4, 16; 1h traces
//	fsbench -scales 1,8 -duration 30m
//	fsbench -o BENCH_scale.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"bsdtrace/internal/analyzer"
	"bsdtrace/internal/trace"
	"bsdtrace/internal/workload"
	"bsdtrace/internal/xfer"
)

// benchRecord is the file-level JSON shape.
type benchRecord struct {
	Config  benchConfig   `json:"config"`
	Results []stageResult `json:"results"`
}

type benchConfig struct {
	Profile    string    `json:"profile"`
	Seed       int64     `json:"seed"`
	DurationMS int64     `json:"duration_ms"`
	Scales     []float64 `json:"scales"`
	Shards     int       `json:"shards"`
	GoMaxProcs int       `json:"go_max_procs"`
	GoVersion  string    `json:"go_version"`
}

type stageResult struct {
	Scale        float64 `json:"scale"`
	Stage        string  `json:"stage"`
	Events       int64   `json:"events"`
	Seconds      float64 `json:"seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
}

func main() {
	var (
		duration = flag.Duration("duration", time.Hour, "simulated time span per trace")
		seed     = flag.Int64("seed", 1, "random seed")
		scalesF  = flag.String("scales", "1,4,16", "comma-separated user-population scales")
		shards   = flag.Int("shards", runtime.GOMAXPROCS(0), "generation shards (sharded generate stage)")
		out      = flag.String("o", "BENCH_scale.json", "output file")
	)
	flag.Parse()

	var scales []float64
	for _, s := range strings.Split(*scalesF, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "fsbench: bad scale %q\n", s)
			os.Exit(2)
		}
		scales = append(scales, v)
	}

	rec := benchRecord{
		Config: benchConfig{
			Profile:    "A5",
			Seed:       *seed,
			DurationMS: duration.Milliseconds(),
			Scales:     scales,
			Shards:     *shards,
			GoMaxProcs: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
		},
	}

	for _, scale := range scales {
		results, err := benchScale(*seed, trace.Time(duration.Milliseconds()), scale, *shards)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fsbench:", err)
			os.Exit(1)
		}
		rec.Results = append(rec.Results, results...)
		for _, r := range results {
			fmt.Printf("scale %4g  %-15s %9d events  %8.3fs  %12.0f events/sec\n",
				r.Scale, r.Stage, r.Events, r.Seconds, r.EventsPerSec)
		}
	}

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fsbench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}

// benchScale times the five pipeline stages at one population scale.
func benchScale(seed int64, duration trace.Time, scale float64, shards int) ([]stageResult, error) {
	cfg := workload.Config{
		Profile: "A5", Seed: seed, Duration: duration,
		UserScale: scale, Shards: shards,
	}
	row := func(stage string, events int64, elapsed time.Duration) stageResult {
		secs := elapsed.Seconds()
		eps := 0.0
		if secs > 0 {
			eps = float64(events) / secs
		}
		return stageResult{Scale: scale, Stage: stage, Events: events, Seconds: secs, EventsPerSec: eps}
	}

	// Stage 1: sharded generation, events discarded at the sink. This is
	// the producer's peak rate — nothing downstream throttles it.
	var n int64
	start := time.Now()
	if _, err := workload.GenerateStream(cfg, func(trace.Event) error { n++; return nil }); err != nil {
		return nil, err
	}
	results := []stageResult{row("generate", n, time.Since(start))}

	// The remaining stages consume a materialized copy of the same trace
	// so each stage's cost is measured alone.
	res, err := workload.Generate(cfg)
	if err != nil {
		return nil, err
	}
	events := res.Events

	// Stage 2: 8-way merge over pre-split strands.
	const strands = 8
	split := make([][]trace.Event, strands)
	for i, e := range events {
		split[i%strands] = append(split[i%strands], e)
	}
	sources := make([]trace.Source, strands)
	for i := range split {
		sources[i] = trace.NewSliceSource(split[i])
	}
	var merged int64
	start = time.Now()
	m := trace.NewMergeSource(sources...)
	for {
		if _, err := m.Next(); err != nil {
			break
		}
		merged++
	}
	results = append(results, row("merge", merged, time.Since(start)))

	// Stage 3: incremental analyzer.
	start = time.Now()
	if _, err := analyzer.AnalyzeSource(trace.NewSliceSource(events), analyzer.Options{}); err != nil {
		return nil, err
	}
	results = append(results, row("stream-analyze", int64(len(events)), time.Since(start)))

	// Stage 4: incremental tape builder.
	start = time.Now()
	if _, err := xfer.BuildTape(trace.NewSliceSource(events)); err != nil {
		return nil, err
	}
	results = append(results, row("tape-build", int64(len(events)), time.Since(start)))

	// Stage 5: self-healing recovery pass over the same trace — the tax
	// the -lenient ingestion path adds on top of a plain stream read.
	var recovered int64
	start = time.Now()
	rec := trace.NewRecoverSource(trace.NewSliceSource(events))
	for {
		if _, err := rec.Next(); err != nil {
			break
		}
		recovered++
	}
	results = append(results, row("recover", recovered, time.Since(start)))

	return results, nil
}
