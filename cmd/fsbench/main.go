// Command fsbench measures the streaming scale engine's throughput and
// writes a machine-readable benchmark record (BENCH_scale.json). For each
// user-population scale it times the five stages of the streaming
// pipeline in isolation:
//
//   - generate: sharded workload generation (one shard per core),
//     streamed to a discarding sink;
//   - merge: the k-way merge over 8 pre-split strands of the trace;
//   - stream-analyze: the incremental Section-5 analyzer consuming the
//     trace one event at a time;
//   - tape-build: the incremental transfer-tape builder doing the same;
//   - recover: the self-healing repair pass (the -lenient ingestion
//     tax) streaming the same trace.
//
// Each stage reports events/second, so regressions in any layer of the
// pipeline show up as a drop in its own row rather than hiding in an
// end-to-end number.
//
// Every stage is timed by an obs span — the same instrument the run
// manifest snapshots — so BENCH_scale.json and the -manifest output are
// two views of one measurement and can never disagree.
//
// Usage:
//
//	fsbench                          # scales 1, 4, 16; 1h traces
//	fsbench -scales 1,8 -duration 30m
//	fsbench -o BENCH_scale.json
//	fsbench -manifest run.json -progress
//	fsbench -debug-addr :6060        # live expvar + pprof during the run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"bsdtrace/internal/analyzer"
	"bsdtrace/internal/obs"
	"bsdtrace/internal/trace"
	"bsdtrace/internal/workload"
	"bsdtrace/internal/xfer"
)

// benchRecord is the file-level JSON shape.
type benchRecord struct {
	Config  benchConfig   `json:"config"`
	Results []stageResult `json:"results"`
}

type benchConfig struct {
	Profile    string    `json:"profile"`
	Seed       int64     `json:"seed"`
	DurationMS int64     `json:"duration_ms"`
	Scales     []float64 `json:"scales"`
	Shards     int       `json:"shards"`
	GoMaxProcs int       `json:"go_max_procs"`
	GoVersion  string    `json:"go_version"`
}

type stageResult struct {
	Scale        float64 `json:"scale"`
	Stage        string  `json:"stage"`
	Events       int64   `json:"events"`
	Seconds      float64 `json:"seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// row converts a closed stage span into a benchmark row: the span is
// the single source of truth for both this JSON record and the run
// manifest.
func row(scale float64, stage string, sp *obs.Span) stageResult {
	secs := sp.Wall().Seconds()
	events := sp.Events()
	eps := 0.0
	if secs > 0 {
		eps = float64(events) / secs
	}
	return stageResult{Scale: scale, Stage: stage, Events: events, Seconds: secs, EventsPerSec: eps}
}

func main() {
	var (
		duration  = flag.Duration("duration", time.Hour, "simulated time span per trace")
		seed      = flag.Int64("seed", 1, "random seed")
		scalesF   = flag.String("scales", "1,4,16", "comma-separated user-population scales")
		shards    = flag.Int("shards", runtime.GOMAXPROCS(0), "generation shards (sharded generate stage)")
		out       = flag.String("o", "BENCH_scale.json", "output file")
		manifest  = flag.String("manifest", "", "also write the run manifest (config, stage spans, metrics) to this file")
		progress  = flag.Bool("progress", false, "live per-stage progress line on stderr (TTY only)")
		debugAddr = flag.String("debug-addr", "", "serve expvar and pprof on this address for live inspection")
	)
	flag.Parse()

	var scales []float64
	for _, s := range strings.Split(*scalesF, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "fsbench: bad scale %q\n", s)
			os.Exit(2)
		}
		scales = append(scales, v)
	}

	// The benchmark rows are read off obs spans, so the registry is
	// always on here; -manifest only controls whether it is written out.
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	if *debugAddr != "" {
		addr, err := obs.ServeDebug(*debugAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fsbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "fsbench: debug server on http://%s/debug/vars\n", addr)
	}
	var prog *obs.Progress
	if *progress {
		prog = obs.StartProgress(os.Stderr, reg)
	}

	rec := benchRecord{
		Config: benchConfig{
			Profile:    "A5",
			Seed:       *seed,
			DurationMS: duration.Milliseconds(),
			Scales:     scales,
			Shards:     *shards,
			GoMaxProcs: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
		},
	}

	for _, scale := range scales {
		results, err := benchScale(reg, *seed, trace.Time(duration.Milliseconds()), scale, *shards)
		if err != nil {
			prog.Stop()
			fmt.Fprintln(os.Stderr, "fsbench:", err)
			os.Exit(1)
		}
		rec.Results = append(rec.Results, results...)
		for _, r := range results {
			fmt.Printf("scale %4g  %-15s %9d events  %8.3fs  %12.0f events/sec\n",
				r.Scale, r.Stage, r.Events, r.Seconds, r.EventsPerSec)
		}
	}
	prog.Stop()

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fsbench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)

	if *manifest != "" {
		m := reg.Manifest(obs.RunInfo{
			Command: "fsbench",
			Seed:    *seed,
			Config: map[string]string{
				"profile":  "A5",
				"duration": duration.String(),
				"scales":   *scalesF,
				"shards":   strconv.Itoa(*shards),
			},
		})
		if err := m.WriteFile(*manifest); err != nil {
			fmt.Fprintln(os.Stderr, "fsbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *manifest)
	}
}

// benchScale times the five pipeline stages at one population scale,
// one obs span per stage.
func benchScale(reg *obs.Registry, seed int64, duration trace.Time, scale float64, shards int) ([]stageResult, error) {
	cfg := workload.Config{
		Profile: "A5", Seed: seed, Duration: duration,
		UserScale: scale, Shards: shards,
	}
	label := func(stage string) string { return fmt.Sprintf("%s/x%g", stage, scale) }

	// Stage 1: sharded generation, events discarded at the sink. This is
	// the producer's peak rate — nothing downstream throttles it.
	sp := reg.StartSpan(label("generate"))
	res, err := workload.GenerateStream(cfg, func(trace.Event) error { sp.AddOut(1); return nil })
	if err != nil {
		return nil, err
	}
	sp.End()
	workload.PublishStats(reg, label("kernel"), res.KernelStats)
	results := []stageResult{row(scale, "generate", sp)}

	// The remaining stages consume a materialized copy of the same trace
	// so each stage's cost is measured alone.
	memres, err := workload.Generate(cfg)
	if err != nil {
		return nil, err
	}
	events := memres.Events

	// Stage 2: 8-way merge over pre-split strands.
	const strands = 8
	split := make([][]trace.Event, strands)
	for i, e := range events {
		split[i%strands] = append(split[i%strands], e)
	}
	sources := make([]trace.Source, strands)
	for i := range split {
		sources[i] = trace.NewSliceSource(split[i])
	}
	sp = reg.StartSpan(label("merge"))
	m := trace.NewMergeSource(sources...)
	for {
		if _, err := m.Next(); err != nil {
			break
		}
		sp.AddOut(1)
	}
	sp.End()
	results = append(results, row(scale, "merge", sp))

	// Stage 3: incremental analyzer, consuming through an instrumented
	// source so the span sees exactly what the analyzer does.
	sp = reg.StartSpan(label("stream-analyze"))
	if _, err := analyzer.AnalyzeSource(obs.SpanSource(sp, trace.NewSliceSource(events)), analyzer.Options{}); err != nil {
		return nil, err
	}
	sp.End()
	results = append(results, row(scale, "stream-analyze", sp))

	// Stage 4: incremental tape builder.
	sp = reg.StartSpan(label("tape-build"))
	tape, err := xfer.BuildTape(obs.SpanSource(sp, trace.NewSliceSource(events)))
	if err != nil {
		return nil, err
	}
	sp.End()
	tape.PublishMetrics(reg, label("tape"))
	results = append(results, row(scale, "tape-build", sp))

	// Stage 5: self-healing recovery pass over the same trace — the tax
	// the -lenient ingestion path adds on top of a plain stream read.
	sp = reg.StartSpan(label("recover"))
	rec := trace.NewRecoverSource(trace.NewSliceSource(events))
	for {
		if _, err := rec.Next(); err != nil {
			break
		}
		sp.AddOut(1)
	}
	sp.End()
	obs.PublishRepair(reg, label("repair"), rec.Stats())
	results = append(results, row(scale, "recover", sp))

	return results, nil
}
