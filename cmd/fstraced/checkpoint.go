package main

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sort"

	"bsdtrace/internal/analyzer"
	"bsdtrace/internal/obs"
	"bsdtrace/internal/stats"
	"bsdtrace/internal/trace"
)

// The daemon checkpoint file (-state): everything a restarted fstraced
// needs to continue its run as if it never stopped. See DESIGN.md §12.
//
// Layout, CRC32(IEEE)-protected end to end and written atomically
// (temp file + rename, like the manifest):
//
//	magic "FSDCKPT1"
//	version        uvarint
//	fingerprint    profile, seed, duration, scale (exact bits), shards,
//	               checkpoint interval — resume refuses a mismatch, since
//	               a different configuration generates a different trace
//	position       events analyzed (N), time of the last analyzed event
//	stream         analyzer.Stream blob (length-prefixed)
//	validator      trace.Validator blob (length-prefixed)
//	ingest log     total, name sequence, recent summaries (JSON)
//	counters       registry counters, sorted by name
//	crc32          of all preceding bytes, little-endian
//
// A resumed daemon regenerates the deterministic workload, fast-forwards
// past the first N events, and continues analysis from the restored
// stream — the final report is byte-identical to an uninterrupted run.
// Everything is bounds-checked; a corrupt or truncated file yields an
// error, never a panic (FuzzDecodeCheckpoint).

var ckptMagic = [8]byte{'F', 'S', 'D', 'C', 'K', 'P', 'T', '1'}

const ckptVersion = 1

// errCkptFinished reports a checkpoint attempt after the analysis
// finished: a finished run has nothing left to resume.
var errCkptFinished = errors.New("fstraced: analysis finished; nothing to checkpoint")

// daemonState is a decoded daemon checkpoint.
type daemonState struct {
	events    int64
	lastTime  trace.Time
	stream    *analyzer.Stream
	validator *trace.Validator
	ingTotal  int64
	ingSeq    int64
	ingRecent []ingestSummary
	counters  map[string]int64
}

func appendCkptBytes(buf, b []byte) []byte {
	buf = stats.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func decodeCkptBytes(buf []byte) ([]byte, []byte, error) {
	n, buf, err := stats.DecodeUvarint(buf)
	if err != nil {
		return nil, nil, err
	}
	if uint64(len(buf)) < n {
		return nil, nil, stats.ErrCorruptState
	}
	return buf[:n], buf[n:], nil
}

// checkpointBytes serializes the daemon's resumable state. It fails
// with errCkptFinished once the analysis has finished.
func (d *daemon) checkpointBytes() ([]byte, error) {
	d.live.mu.Lock()
	defer d.live.mu.Unlock()
	if d.live.final != nil {
		return nil, errCkptFinished
	}
	streamBlob, err := d.live.stream.MarshalBinary()
	if err != nil {
		return nil, err
	}
	vBlob := d.live.validator.AppendState(nil)
	events := d.live.events
	lastTime := d.live.stream.LastTime()
	ingTotal, ingSeq, recent := d.ing.state()
	counters := d.reg.Manifest(obs.RunInfo{}).Counters

	buf := append([]byte(nil), ckptMagic[:]...)
	buf = stats.AppendUvarint(buf, ckptVersion)
	buf = appendCkptBytes(buf, []byte(d.cfg.profile))
	buf = stats.AppendVarint(buf, d.cfg.seed)
	buf = stats.AppendVarint(buf, int64(d.cfg.duration))
	buf = stats.AppendFloat(buf, d.cfg.scale)
	buf = stats.AppendVarint(buf, int64(d.cfg.shards))
	buf = stats.AppendVarint(buf, int64(d.cfg.interval))
	buf = stats.AppendVarint(buf, events)
	buf = stats.AppendVarint(buf, int64(lastTime))
	buf = appendCkptBytes(buf, streamBlob)
	buf = appendCkptBytes(buf, vBlob)
	buf = stats.AppendVarint(buf, ingTotal)
	buf = stats.AppendVarint(buf, ingSeq)
	buf = stats.AppendUvarint(buf, uint64(len(recent)))
	for _, s := range recent {
		js, err := json.Marshal(s)
		if err != nil {
			return nil, err
		}
		buf = appendCkptBytes(buf, js)
	}
	buf = stats.AppendUvarint(buf, uint64(len(counters)))
	names := make([]string, 0, len(counters))
	for k := range counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		buf = appendCkptBytes(buf, []byte(k))
		buf = stats.AppendVarint(buf, counters[k])
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf)), nil
}

// writeCheckpoint writes the state file atomically. A finished analysis
// is not an error to the callers' loops: it reports errCkptFinished and
// leaves the last resumable checkpoint in place.
func (d *daemon) writeCheckpoint() error {
	if d.cfg.state == "" {
		return nil
	}
	buf, err := d.checkpointBytes()
	if err != nil {
		return err
	}
	tmp := d.cfg.state + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, d.cfg.state); err != nil {
		return err
	}
	d.reg.Counter("fstraced.checkpoint.writes").Inc()
	return nil
}

// decodeCheckpoint decodes and verifies a checkpoint against the
// daemon's configuration. It never panics on corrupt input.
func decodeCheckpoint(data []byte, cfg config) (*daemonState, error) {
	if len(data) < len(ckptMagic)+4 {
		return nil, fmt.Errorf("fstraced: checkpoint too short (%d bytes)", len(data))
	}
	payload, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, errors.New("fstraced: checkpoint CRC mismatch")
	}
	if string(payload[:len(ckptMagic)]) != string(ckptMagic[:]) {
		return nil, errors.New("fstraced: not a daemon checkpoint")
	}
	buf := payload[len(ckptMagic):]
	ver, buf, err := stats.DecodeUvarint(buf)
	if err != nil {
		return nil, err
	}
	if ver != ckptVersion {
		return nil, fmt.Errorf("fstraced: checkpoint version %d, want %d", ver, ckptVersion)
	}

	profile, buf, err := decodeCkptBytes(buf)
	if err != nil {
		return nil, err
	}
	var seed, duration, shards, interval int64
	var scale float64
	if seed, buf, err = stats.DecodeVarint(buf); err != nil {
		return nil, err
	}
	if duration, buf, err = stats.DecodeVarint(buf); err != nil {
		return nil, err
	}
	if scale, buf, err = stats.DecodeFloat(buf); err != nil {
		return nil, err
	}
	if shards, buf, err = stats.DecodeVarint(buf); err != nil {
		return nil, err
	}
	if interval, buf, err = stats.DecodeVarint(buf); err != nil {
		return nil, err
	}
	if string(profile) != cfg.profile || seed != cfg.seed ||
		trace.Time(duration) != cfg.duration ||
		math.Float64bits(scale) != math.Float64bits(cfg.scale) ||
		int(shards) != cfg.shards || int(interval) != cfg.interval {
		return nil, fmt.Errorf("fstraced: checkpoint is for profile=%s seed=%d duration=%v scale=%g shards=%d checkpoint=%d; flags differ — refusing to resume a different run",
			profile, seed, trace.Time(duration), scale, shards, interval)
	}

	st := &daemonState{}
	var x int64
	if st.events, buf, err = stats.DecodeVarint(buf); err != nil {
		return nil, err
	}
	if st.events < 0 {
		return nil, stats.ErrCorruptState
	}
	if x, buf, err = stats.DecodeVarint(buf); err != nil {
		return nil, err
	}
	st.lastTime = trace.Time(x)

	streamBlob, buf, err := decodeCkptBytes(buf)
	if err != nil {
		return nil, err
	}
	if st.stream, err = analyzer.RestoreStream(streamBlob, analyzer.Options{}); err != nil {
		return nil, err
	}
	if st.stream.Events() != st.events {
		return nil, fmt.Errorf("fstraced: checkpoint position %d disagrees with stream state %d", st.events, st.stream.Events())
	}
	vBlob, buf, err := decodeCkptBytes(buf)
	if err != nil {
		return nil, err
	}
	st.validator = trace.NewValidator(16)
	rest, err := st.validator.DecodeState(vBlob)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, stats.ErrCorruptState
	}

	if st.ingTotal, buf, err = stats.DecodeVarint(buf); err != nil {
		return nil, err
	}
	if st.ingSeq, buf, err = stats.DecodeVarint(buf); err != nil {
		return nil, err
	}
	n, buf, err := stats.DecodeUvarint(buf)
	if err != nil {
		return nil, err
	}
	if n > 1<<16 {
		return nil, stats.ErrCorruptState
	}
	for i := uint64(0); i < n; i++ {
		var js []byte
		if js, buf, err = decodeCkptBytes(buf); err != nil {
			return nil, err
		}
		var sum ingestSummary
		if err := json.Unmarshal(js, &sum); err != nil {
			return nil, fmt.Errorf("fstraced: checkpoint ingest summary: %w", err)
		}
		st.ingRecent = append(st.ingRecent, sum)
	}

	if n, buf, err = stats.DecodeUvarint(buf); err != nil {
		return nil, err
	}
	if n > 1<<16 {
		return nil, stats.ErrCorruptState
	}
	st.counters = make(map[string]int64, n)
	for i := uint64(0); i < n; i++ {
		var name []byte
		var v int64
		if name, buf, err = decodeCkptBytes(buf); err != nil {
			return nil, err
		}
		if v, buf, err = stats.DecodeVarint(buf); err != nil {
			return nil, err
		}
		st.counters[string(name)] = v
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("fstraced: %d trailing bytes in checkpoint", len(buf))
	}
	return st, nil
}

// loadCheckpoint reads and decodes the state file.
func loadCheckpoint(path string, cfg config) (*daemonState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeCheckpoint(data, cfg)
}

// restore primes a not-yet-started daemon with checkpointed state: the
// analysis continues from the restored stream, the producer will
// fast-forward past the first st.events regenerated events, and the
// recorder will frame its output as a resumed v2 stream whose first
// checkpoint announces the resume position to joining readers.
func (d *daemon) restore(st *daemonState) {
	d.resumeFrom = st.events
	d.resumeTime = st.lastTime
	d.live.stream = st.stream
	d.live.validator = st.validator
	d.live.events = st.events
	d.ing.mu.Lock()
	d.ing.total = st.ingTotal
	d.ing.seq = st.ingSeq
	d.ing.recent = append([]ingestSummary(nil), st.ingRecent...)
	d.ing.mu.Unlock()
	for k, v := range st.counters {
		d.reg.Counter(k).Set(v)
	}
	d.reg.Counter("fstraced.checkpoint.restores").Inc()
}
