package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bsdtrace/internal/analyzer"
	"bsdtrace/internal/obs"
	"bsdtrace/internal/report"
	"bsdtrace/internal/trace"
	"bsdtrace/internal/workload"
)

// config is the daemon's effective configuration.
type config struct {
	profile   string
	seed      int64
	duration  trace.Time
	scale     float64
	shards    int
	interval  int     // records per checkpoint segment == per stream chunk
	retain    int     // sealed chunks retained for late joiners
	pace      float64 // simulated seconds per wall second; 0 = full speed
	manifest  string
	snapshot  time.Duration
	state     string        // daemon checkpoint file; "" disables checkpointing
	stall     time.Duration // slow-consumer stall budget before eviction
	maxIngest int           // concurrent ingests before load shedding
}

// name is the trace name the report renders under, fsanalyze-style.
func (c config) name() string { return strings.ToLower(c.profile) }

// errStopped aborts generation from the sink when the daemon shuts down.
var errStopped = errors.New("fstraced: stopped")

// ingestSummary is the JSON result of one POST /ingest.
type ingestSummary struct {
	Name             string  `json:"name"`
	Lenient          bool    `json:"lenient"`
	Events           int64   `json:"events"`
	DurationMS       int64   `json:"duration_ms"`
	BytesRead        int64   `json:"bytes_read"`
	BytesWritten     int64   `json:"bytes_written"`
	Users            int     `json:"users"`
	UnclosedOpens    int     `json:"unclosed_opens"`
	ValidationErrors int     `json:"validation_errors"`
	SkippedBytes     int64   `json:"skipped_bytes,omitempty"`
	SkippedRecords   int64   `json:"skipped_records,omitempty"`
	SkippedSegments  int64   `json:"skipped_segments,omitempty"`
	RepairedDropped  int64   `json:"repaired_dropped,omitempty"`
	RepairedSynth    int64   `json:"repaired_synthesized,omitempty"`
	RepairedRewrites int64   `json:"repaired_rewritten,omitempty"`
	Truncated        string  `json:"truncated,omitempty"`
	AvgThroughput    float64 `json:"avg_throughput_bps"`
}

// ingestLog keeps the recent upload summaries for /stats.
type ingestLog struct {
	mu     sync.Mutex
	total  int64
	seq    int64
	recent []ingestSummary
}

func (l *ingestLog) add(s ingestSummary) {
	l.mu.Lock()
	l.total++
	l.recent = append(l.recent, s)
	if len(l.recent) > 16 {
		l.recent = l.recent[1:]
	}
	l.mu.Unlock()
}

func (l *ingestLog) nextName() string {
	l.mu.Lock()
	l.seq++
	n := l.seq
	l.mu.Unlock()
	return fmt.Sprintf("upload-%d", n)
}

func (l *ingestLog) snapshot() (int64, []ingestSummary) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total, append([]ingestSummary(nil), l.recent...)
}

// state returns the full resumable state, for the daemon checkpoint.
func (l *ingestLog) state() (total, seq int64, recent []ingestSummary) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total, l.seq, append([]ingestSummary(nil), l.recent...)
}

// liveState is the rolling online analysis of the generated stream,
// fed by the analysis subscriber and read by /stats and /report.
type liveState struct {
	mu        sync.Mutex
	stream    *analyzer.Stream
	validator *trace.Validator
	events    int64
	final     *analyzer.Analysis // set once the stream ends
	unclosed  int
	genErr    error
	done      bool
	aborted   bool // generation stopped early: analysis left unfinished, resumable
}

// analysis returns the rolling (or, after end of stream, final)
// analysis and whether the stream has ended.
func (l *liveState) analysis() (*analyzer.Analysis, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.final != nil {
		return l.final, true
	}
	return l.stream.Snapshot(), false
}

type daemon struct {
	cfg  config
	reg  *obs.Registry
	fan  *trace.Fanout
	hub  *streamHub
	live *liveState
	ing  *ingestLog
	mux  *http.ServeMux

	// Resume position: the restored run continues after the first
	// resumeFrom regenerated events, whose last timestamp is resumeTime.
	resumeFrom int64
	resumeTime trace.Time

	ingSem chan struct{} // bounded ingest admission; full = shed with 429

	started     time.Time
	stopped     atomic.Bool
	genComplete atomic.Bool // generation ran to its natural end
	stopOnce    sync.Once
	stopCh      chan struct{}
	genDone     chan struct{} // closed when the analysis subscriber finishes
	done        chan struct{} // closed when every daemon goroutine has exited
	wg          sync.WaitGroup
}

func newDaemon(cfg config) *daemon {
	if cfg.interval <= 0 {
		cfg.interval = trace.DefaultCheckpointInterval
	}
	if cfg.maxIngest <= 0 {
		cfg.maxIngest = 4
	}
	d := &daemon{
		cfg: cfg,
		reg: obs.NewRegistry(),
		fan: trace.NewFanout(0),
		hub: newStreamHub(cfg.retain, cfg.stall),
		live: &liveState{
			stream:    analyzer.NewStream(analyzer.Options{}),
			validator: trace.NewValidator(16),
		},
		ing:     &ingestLog{},
		ingSem:  make(chan struct{}, cfg.maxIngest),
		stopCh:  make(chan struct{}),
		genDone: make(chan struct{}),
		done:    make(chan struct{}),
	}
	d.reg.SetEnabled(true)
	d.mux = http.NewServeMux()
	d.mux.HandleFunc("/", d.handleIndex)
	d.mux.HandleFunc("/healthz", d.handleHealthz)
	d.mux.HandleFunc("/stream", d.handleStream)
	d.mux.HandleFunc("/events", d.handleEvents)
	d.mux.HandleFunc("/ingest", d.handleIngest)
	d.mux.HandleFunc("/stats", d.handleStats)
	d.mux.HandleFunc("/report", d.handleReport)
	d.mux.Handle("/debug/", obs.DebugMux(d.reg))
	return d
}

// start launches the pipeline: producer -> fan-out -> {recorder,
// analysis} plus the manifest and checkpoint snapshotters.
func (d *daemon) start() {
	d.started = time.Now()
	recSub := d.fan.Subscribe()
	anSub := d.fan.Subscribe()
	// Capture the stream header synchronously, before the first client
	// can possibly subscribe: a subscriber must never see a headerless
	// prefix. On a resumed run the preamble also carries the resume
	// checkpoint, so a fresh reader of the new stream accounts the
	// pre-resume records as skipped — exact loss accounting at the
	// client, not a silent gap.
	var buf bytes.Buffer
	var w *trace.Writer
	if d.resumeFrom > 0 {
		w = trace.NewResumedWriterV2(&buf, d.cfg.interval, d.resumeFrom, d.resumeTime)
	} else {
		w = trace.NewWriterV2(&buf, d.cfg.interval)
	}
	if err := w.Flush(); err == nil {
		d.hub.setHeader(append([]byte(nil), buf.Bytes()...))
		buf.Reset()
	}
	d.wg.Add(3)
	go d.recorder(recSub, w, &buf)
	go d.analysisLoop(anSub)
	go d.producer()
	if d.cfg.manifest != "" {
		d.wg.Add(1)
		go d.manifestLoop()
	}
	if d.cfg.state != "" {
		d.wg.Add(1)
		go d.checkpointLoop()
	}
	go func() {
		d.wg.Wait()
		close(d.done)
	}()
}

// stop aborts generation and waits for every daemon goroutine. The
// caller must first take down the HTTP server (or drain the clients) so
// stream backpressure cannot hold the pipeline open.
func (d *daemon) stop() {
	d.stopped.Store(true)
	d.stopOnce.Do(func() { close(d.stopCh) })
	<-d.done
}

// paceSleep throttles generation to cfg.pace simulated seconds per wall
// second, in short slices so shutdown stays responsive.
func (d *daemon) paceSleep(t trace.Time, start time.Time) {
	if d.cfg.pace <= 0 {
		return
	}
	target := time.Duration(t.Seconds() / d.cfg.pace * float64(time.Second))
	for {
		ahead := target - time.Since(start)
		if ahead <= 0 || d.stopped.Load() {
			return
		}
		if ahead > 200*time.Millisecond {
			ahead = 200 * time.Millisecond
		}
		select {
		case <-d.stopCh:
			return
		case <-time.After(ahead):
		}
	}
}

func (d *daemon) producer() {
	defer d.wg.Done()
	start := time.Now()
	genEvents := d.reg.Counter("fstraced.gen.events")
	wcfg := workload.Config{
		Profile:   d.cfg.profile,
		Seed:      d.cfg.seed,
		Duration:  d.cfg.duration,
		UserScale: d.cfg.scale,
		Shards:    d.cfg.shards,
	}
	// On a resumed run the deterministic workload is regenerated from
	// the same seed, and the already-analyzed prefix is fast-forwarded
	// past at full speed: not paced, not fanned out, not counted again
	// (the gen.events counter was restored from the checkpoint).
	var idx int64
	sink := func(e trace.Event) error {
		if d.stopped.Load() {
			return errStopped
		}
		if idx < d.resumeFrom {
			idx++
			return nil
		}
		idx++
		d.paceSleep(e.Time-d.resumeTime, start)
		if err := d.fan.Write(e); err != nil {
			return err
		}
		genEvents.Inc()
		return nil
	}
	_, err := workload.GenerateStream(wcfg, sink)
	if err == nil {
		// Natural end of the trace: the analysis loop may finalize.
		// Ordered before fan.Close, so subscribers observing EOF see it.
		d.genComplete.Store(true)
	}
	if err == errStopped || errors.Is(err, trace.ErrFanoutDone) {
		err = nil
	}
	d.fan.Close(err)
}

// recorder encodes the stream once into v2 framing and cuts it into
// checkpoint-aligned chunks for the hub. The chunk boundary trick: the
// writer checkpoints every cfg.interval records, and a Flush right
// after the checkpoint adds no bytes (the open segment is empty), so
// flushing there drains exactly one whole segment into the buffer.
func (d *daemon) recorder(sub *trace.FanoutSub, w *trace.Writer, buf *bytes.Buffer) {
	defer d.wg.Done()
	defer sub.Cancel()
	chunks := d.reg.Counter("fstraced.stream.chunks")
	streamBytes := d.reg.Counter("fstraced.stream.bytes")
	batch := trace.GetBatch()
	defer trace.PutBatch(batch)
	first := d.resumeFrom // a resumed stream's first sealed record index
	inSeg := 0
	seal := func() bool {
		if err := w.Flush(); err != nil {
			return false
		}
		c := &chunk{data: append([]byte(nil), buf.Bytes()...), first: first, n: inSeg}
		buf.Reset()
		first += int64(inSeg)
		inSeg = 0
		chunks.Inc()
		streamBytes.Add(int64(len(c.data)))
		d.hub.seal(c)
		return true
	}
	for {
		n, err := trace.ReadBatch(sub, batch)
		for _, e := range batch[:n] {
			if w.Write(e) != nil {
				d.hub.close()
				return
			}
			if inSeg++; inSeg == d.cfg.interval {
				if !seal() {
					d.hub.close()
					return
				}
			}
		}
		if n == 0 {
			if err != io.EOF {
				// Generation failed; what was sealed stays servable.
				d.hub.close()
				return
			}
			break
		}
	}
	if inSeg > 0 {
		seal() // final partial segment, checkpointed by Flush
	}
	d.hub.close()
}

// analysisLoop is the online analysis subscriber: it feeds the rolling
// analyzer.Stream and Validator, and finalizes both at end of stream —
// but only when generation actually completed. An aborted run (shutdown
// mid-stream) must leave the stream unfinished: Finish is destructive
// (censored lifetimes, flushed intervals), and the final checkpoint has
// to stay resumable.
func (d *daemon) analysisLoop(sub *trace.FanoutSub) {
	defer d.wg.Done()
	defer sub.Cancel()
	defer close(d.genDone)
	anEvents := d.reg.Counter("fstraced.analysis.events")
	batch := trace.GetBatch()
	defer trace.PutBatch(batch)
	for {
		n, err := trace.ReadBatch(sub, batch)
		if n > 0 {
			d.live.mu.Lock()
			for _, e := range batch[:n] {
				d.live.stream.Feed(e)
				d.live.validator.Check(e)
			}
			d.live.events += int64(n)
			d.live.mu.Unlock()
			anEvents.Add(int64(n))
			continue
		}
		d.live.mu.Lock()
		if err != io.EOF {
			d.live.genErr = err
		}
		if d.genComplete.Load() {
			d.live.unclosed = d.live.validator.Finish()
			d.live.final = d.live.stream.Finish()
			d.live.done = true
		} else {
			d.live.aborted = true
		}
		d.live.mu.Unlock()
		return
	}
}

// checkpointLoop writes periodic daemon checkpoints so a crash or kill
// loses at most one snapshot interval of analysis progress. The final
// graceful-shutdown checkpoint is written by the caller of stop, after
// the pipeline has quiesced.
func (d *daemon) checkpointLoop() {
	defer d.wg.Done()
	t := time.NewTicker(d.cfg.snapshot)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := d.writeCheckpoint(); err != nil && err != errCkptFinished {
				d.reg.Counter("fstraced.checkpoint.errors").Inc()
			}
		case <-d.stopCh:
			return
		}
	}
}

// manifestLoop writes periodic run-manifest snapshots (and a final one
// at shutdown) so a crashed or killed daemon leaves its last progress
// on disk.
func (d *daemon) manifestLoop() {
	defer d.wg.Done()
	t := time.NewTicker(d.cfg.snapshot)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			d.writeManifest()
		case <-d.stopCh:
			d.writeManifest()
			return
		}
	}
}

// writeManifest snapshots the registry to cfg.manifest atomically
// (write-temp-then-rename), so a reader never sees a torn manifest.
func (d *daemon) writeManifest() error {
	d.updateGauges()
	m := d.reg.Manifest(obs.RunInfo{
		Command: "fstraced",
		Seed:    d.cfg.seed,
		Config: map[string]string{
			"profile":    d.cfg.profile,
			"duration":   d.cfg.duration.String(),
			"scale":      fmt.Sprintf("%g", d.cfg.scale),
			"shards":     strconv.Itoa(d.cfg.shards),
			"checkpoint": strconv.Itoa(d.cfg.interval),
			"retain":     strconv.Itoa(d.cfg.retain),
			"pace":       fmt.Sprintf("%g", d.cfg.pace),
		},
	})
	data, err := m.JSON()
	if err != nil {
		return err
	}
	tmp := d.cfg.manifest + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, d.cfg.manifest)
}

// updateGauges publishes the rolling analysis headline into the
// registry, for the manifest and /debug/vars.
func (d *daemon) updateGauges() {
	d.live.mu.Lock()
	events := d.live.events
	errs := len(d.live.validator.Errs())
	done := d.live.done
	d.live.mu.Unlock()
	records, chunks, bytes, subscribers, _ := d.hub.stats()
	d.reg.Gauge("fstraced.analysis.rolling_events").Set(events)
	d.reg.Gauge("fstraced.validator.errors").Set(int64(errs))
	d.reg.Gauge("fstraced.stream.records_sealed").Set(records)
	d.reg.Gauge("fstraced.stream.chunks_sealed").Set(chunks)
	d.reg.Gauge("fstraced.stream.bytes_sealed").Set(bytes)
	d.reg.Gauge("fstraced.stream.subscribers").Set(int64(subscribers))
	d.reg.Gauge("fstraced.stream.evictions").Set(d.hub.evictedCount())
	if done {
		d.reg.Gauge("fstraced.gen.done").Set(1)
	}
}

func (d *daemon) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprintf(w, `fstraced: live %s trace service (seed %d, %s simulated)
GET  /stream?replay=all|live  v2-framed binary trace stream (chunked; late joiners resync via checkpoints)
GET  /events?n=N              next N live events, text format
POST /ingest?lenient=1        upload a binary trace for online analysis (lenient repairs damage)
GET  /stats                   rolling analysis, validator, ingest log, metrics registry (JSON)
GET  /report                  Section-5 tables and figures of the stream so far
GET  /healthz                 liveness
GET  /debug/vars, /debug/pprof/
`, d.cfg.profile, d.cfg.seed, d.cfg.duration)
}

func (d *daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}

// handleStream serves the shared v2 byte stream. A client joining
// mid-stream receives the header plus the retained chunk ring
// (?replay=live skips the ring); its reader discards the first retained
// segment at checkpoint verification and decodes everything after with
// exact absolute times — the v2 resync path, reused as a join protocol.
func (d *daemon) handleStream(w http.ResponseWriter, r *http.Request) {
	clients := d.reg.Gauge("fstraced.stream.clients")
	total := d.reg.Counter("fstraced.stream.clients_total")
	prefix, sub := d.hub.subscribe(r.URL.Query().Get("replay") == "live")
	defer d.hub.unsubscribe(sub)
	clients.Add(1)
	total.Inc()
	defer clients.Add(-1)

	// Per-chunk write deadline: a client whose TCP window stays shut
	// past the budget fails its write and the handler exits, instead of
	// pinning a goroutine (and its queue) forever. The budget is several
	// hub stall windows, so eviction (pipeline protection) fires before
	// the deadline (goroutine reaping) does.
	rc := http.NewResponseController(w)
	writeBudget := 4 * d.hub.stall

	w.Header().Set("Content-Type", "application/octet-stream")
	fl, _ := w.(http.Flusher)
	rc.SetWriteDeadline(time.Now().Add(writeBudget))
	if _, err := w.Write(prefix); err != nil {
		return
	}
	if fl != nil {
		fl.Flush()
	}
	ctx := r.Context()
	for {
		select {
		case c, ok := <-sub.ch:
			if !ok {
				return // end of stream: the response ends, the client reader sees EOF
			}
			rc.SetWriteDeadline(time.Now().Add(writeBudget))
			if _, err := w.Write(c.data); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		case <-sub.evicted:
			// The hub gave up on us: we stalled past the budget while
			// chunks backed up. Hang up; the client can rejoin and
			// resync off the checkpoint protocol.
			d.reg.Counter("fstraced.stream.evicted").Inc()
			return
		case <-ctx.Done():
			return
		}
	}
}

// handleEvents streams the next n live events in the text format, via a
// dynamic fan-out subscriber that joins and cancels mid-production.
func (d *daemon) handleEvents(w http.ResponseWriter, r *http.Request) {
	n := 64
	if s := r.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = v
	}
	if n > 100000 {
		n = 100000
	}
	sub := d.fan.Subscribe()
	defer sub.Cancel()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fl, _ := w.(http.Flusher)
	for i := 0; i < n; i++ {
		e, err := sub.Next()
		if err != nil {
			return // EOF: generation is over
		}
		if _, err := fmt.Fprintf(w, "%s\n", e); err != nil {
			return
		}
		if fl != nil {
			fl.Flush()
		}
	}
}

// handleIngest accepts a binary trace upload and runs it through the
// online analysis pipeline: strict mode rejects any damage, lenient
// mode (?lenient=1) repairs what it can via trace.LenientSource and
// reports the damage budget alongside the analysis headline.
func (d *daemon) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a binary trace", http.StatusMethodNotAllowed)
		return
	}
	// Bounded admission: at most cfg.maxIngest uploads analyze
	// concurrently; beyond that the daemon sheds load with 429 and a
	// Retry-After hint rather than queueing unboundedly. fault.Retry on
	// the client side honors the hint.
	select {
	case d.ingSem <- struct{}{}:
		defer func() { <-d.ingSem }()
	default:
		d.reg.Counter("fstraced.ingest.shed").Inc()
		w.Header().Set("Retry-After", "1")
		http.Error(w, "ingest capacity exhausted; retry later", http.StatusTooManyRequests)
		return
	}
	// An upload that stops sending bytes must not hold its admission
	// slot forever: budget the whole body read.
	http.NewResponseController(w).SetReadDeadline(time.Now().Add(2 * time.Minute))
	lenient := r.URL.Query().Get("lenient") == "1"
	name := r.URL.Query().Get("name")
	if name == "" {
		name = d.ing.nextName()
	}
	fail := func(code int, format string, args ...any) {
		d.reg.Counter("fstraced.ingest.rejected").Inc()
		http.Error(w, fmt.Sprintf(format, args...), code)
	}
	rdr, err := trace.NewReader(r.Body)
	if err != nil {
		fail(http.StatusBadRequest, "not a trace stream: %v", err)
		return
	}
	var src trace.Source = rdr
	var ls *trace.LenientSource
	if lenient {
		ls = trace.NewLenientSource(rdr)
		src = ls
	}
	s := analyzer.NewStream(analyzer.Options{})
	v := trace.NewValidator(16)
	var events int64
	batch := trace.GetBatch()
	defer trace.PutBatch(batch)
	for {
		n, err := trace.ReadBatch(src, batch)
		for _, e := range batch[:n] {
			s.Feed(e)
			v.Check(e)
		}
		events += int64(n)
		if n == 0 {
			if err == io.EOF {
				break
			}
			fail(http.StatusBadRequest, "%s: decode failed after %d events: %v; retry with ?lenient=1", name, events, err)
			return
		}
	}
	skip := rdr.Skipped()
	if !lenient && !skip.Zero() {
		fail(http.StatusBadRequest, "%s: partial ingest (%v); retry with ?lenient=1", name, skip)
		return
	}
	an := s.Finish()
	sum := ingestSummary{
		Name:             name,
		Lenient:          lenient,
		Events:           events,
		DurationMS:       int64(an.Overall.Duration),
		BytesRead:        an.Overall.BytesRead,
		BytesWritten:     an.Overall.BytesWritten,
		Users:            an.Activity.TotalUsers,
		UnclosedOpens:    v.Finish(),
		ValidationErrors: len(v.Errs()),
		SkippedBytes:     skip.Bytes,
		SkippedRecords:   skip.Records,
		SkippedSegments:  skip.Segments,
		AvgThroughput:    an.Activity.AvgThroughput,
	}
	if ls != nil {
		st := ls.Stats()
		sum.RepairedDropped = st.Dropped
		sum.RepairedSynth = st.Synthesized
		sum.RepairedRewrites = st.Rewritten
		if terr := ls.Truncated(); terr != nil {
			sum.Truncated = terr.Error()
		}
		obs.PublishRepair(d.reg, "fstraced.ingest.repair", st)
	}
	obs.PublishSkip(d.reg, "fstraced.ingest.skip", skip)
	d.reg.Counter("fstraced.ingest.accepted").Inc()
	d.reg.Counter("fstraced.ingest.events").Add(events)
	d.ing.add(sum)
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(sum)
}

// statsPayload is the GET /stats JSON document.
type statsPayload struct {
	Service struct {
		UptimeMS   int64   `json:"uptime_ms"`
		Profile    string  `json:"profile"`
		Seed       int64   `json:"seed"`
		DurationMS int64   `json:"duration_ms"`
		Scale      float64 `json:"scale"`
		Shards     int     `json:"shards"`
		Checkpoint int     `json:"checkpoint_interval"`
		Retain     int     `json:"retain_chunks"`
		ResumedAt  int64   `json:"resumed_at_record,omitempty"`
	} `json:"service"`
	Generation struct {
		Events        int64  `json:"events"`
		Done          bool   `json:"done"`
		Aborted       bool   `json:"aborted,omitempty"`
		Err           string `json:"err,omitempty"`
		RecordsSealed int64  `json:"records_sealed"`
		ChunksSealed  int64  `json:"chunks_sealed"`
		BytesSealed   int64  `json:"bytes_sealed"`
		Clients       int64  `json:"stream_clients"`
		ClientsTotal  int64  `json:"stream_clients_total"`
	} `json:"generation"`
	Analysis struct {
		Events        int64   `json:"events"`
		Final         bool    `json:"final"`
		DurationMS    int64   `json:"trace_duration_ms"`
		Users         int     `json:"users"`
		BytesRead     int64   `json:"bytes_read"`
		BytesWritten  int64   `json:"bytes_written"`
		EncodedSize   int64   `json:"encoded_size"`
		UnclosedOpens int     `json:"unclosed_opens"`
		AvgThroughput float64 `json:"avg_throughput_bps"`
	} `json:"analysis"`
	Validator struct {
		Errors   int    `json:"errors"`
		FirstBad string `json:"first_bad,omitempty"`
	} `json:"validator"`
	Ingests struct {
		Total  int64           `json:"total"`
		Recent []ingestSummary `json:"recent,omitempty"`
	} `json:"ingests"`
	Metrics *obs.Manifest `json:"metrics"`
}

func (d *daemon) handleStats(w http.ResponseWriter, r *http.Request) {
	var p statsPayload
	p.Service.UptimeMS = time.Since(d.started).Milliseconds()
	p.Service.Profile = d.cfg.profile
	p.Service.Seed = d.cfg.seed
	p.Service.DurationMS = int64(d.cfg.duration)
	p.Service.Scale = d.cfg.scale
	p.Service.Shards = d.cfg.shards
	p.Service.Checkpoint = d.cfg.interval
	p.Service.Retain = d.cfg.retain
	p.Service.ResumedAt = d.resumeFrom

	records, chunks, bytes, _, _ := d.hub.stats()
	p.Generation.Events = d.reg.Counter("fstraced.gen.events").Value()
	p.Generation.RecordsSealed = records
	p.Generation.ChunksSealed = chunks
	p.Generation.BytesSealed = bytes
	p.Generation.Clients = d.reg.Gauge("fstraced.stream.clients").Value()
	p.Generation.ClientsTotal = d.reg.Counter("fstraced.stream.clients_total").Value()

	d.live.mu.Lock()
	p.Analysis.Events = d.live.events
	p.Generation.Done = d.live.done
	p.Generation.Aborted = d.live.aborted
	if d.live.genErr != nil {
		p.Generation.Err = d.live.genErr.Error()
	}
	p.Validator.Errors = len(d.live.validator.Errs())
	if fb := d.live.validator.FirstBad(); fb != nil {
		p.Validator.FirstBad = fb.String()
	}
	var an *analyzer.Analysis
	if d.live.final != nil {
		an, p.Analysis.Final = d.live.final, true
	} else {
		an = d.live.stream.Snapshot()
	}
	d.live.mu.Unlock()

	p.Analysis.DurationMS = int64(an.Overall.Duration)
	p.Analysis.Users = an.Activity.TotalUsers
	p.Analysis.BytesRead = an.Overall.BytesRead
	p.Analysis.BytesWritten = an.Overall.BytesWritten
	p.Analysis.EncodedSize = an.Overall.EncodedSize
	p.Analysis.UnclosedOpens = an.Overall.UnclosedOpens
	p.Analysis.AvgThroughput = an.Activity.AvgThroughput

	p.Ingests.Total, p.Ingests.Recent = d.ing.snapshot()

	d.updateGauges()
	p.Metrics = d.reg.Manifest(obs.RunInfo{Command: "fstraced", Seed: d.cfg.seed})

	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(&p)
}

// renderReport writes the full fsanalyze output sequence — Tables
// III-V, the §3.1 intervals, the sharing extension, Figures 1-4 — so
// the daemon's report is byte-comparable with the batch tool's.
func renderReport(w io.Writer, name string, an *analyzer.Analysis) {
	tr := report.Traces{Names: []string{name}, Analyses: []*analyzer.Analysis{an}}
	report.TableIII(tr).Render(w)
	report.TableIV(tr).Render(w)
	report.TableV(tr).Render(w)
	report.EventIntervalTable(tr).Render(w)
	report.SharingTable(tr).Render(w)
	for _, c := range report.Figure1(tr) {
		c.Render(w)
	}
	for _, c := range report.Figure2(tr) {
		c.Render(w)
	}
	report.Figure3(tr).Render(w)
	for _, c := range report.Figure4(tr) {
		c.Render(w)
	}
}

func (d *daemon) handleReport(w http.ResponseWriter, r *http.Request) {
	an, final := d.live.analysis()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !final {
		fmt.Fprintf(w, "(rolling analysis: stream still live)\n\n")
	}
	renderReport(w, d.cfg.name(), an)
}
