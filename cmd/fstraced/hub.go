package main

import (
	"sync"
	"time"
)

// The stream hub fans the recorder's byte stream out to HTTP clients.
//
// One recorder goroutine encodes the live trace exactly once, cutting
// the v2 byte stream into chunks at checkpoint-segment boundaries: each
// chunk is one whole segment (its records plus the closing checkpoint),
// so any concatenation of a header and a run of consecutive chunks is a
// well-formed v2 stream. That is what makes mid-stream join cheap — a
// late client gets the 5-byte header plus the retained ring of recent
// chunks, and the v2 reader's checkpoint verification resynchronizes it
// (see DESIGN.md §10 for the protocol).
//
// Every subscriber has a small bounded chunk queue. The hub's broadcast
// blocks on a full queue, which stalls the recorder, which stalls the
// producer through the fan-out — per-client backpressure all the way to
// generation, no unbounded buffering anywhere. The blocking has a
// budget, though: a consumer that stays stalled past the hub's stall
// window is evicted — its handler is told to hang up — so one dead
// client cannot hold the whole pipeline hostage. Backpressure is for
// slow clients; eviction is for gone ones.

// chunk is one sealed checkpoint segment of the shared byte stream.
type chunk struct {
	data  []byte // immutable once sealed
	first int64  // absolute record index of the first record
	n     int    // records in this chunk
}

// hubChanBuffer is a subscriber's queue capacity in chunks.
const hubChanBuffer = 8

// defaultStall is the stall budget when the hub is built with none: how
// long seal waits on one full subscriber queue before evicting it.
const defaultStall = 5 * time.Second

type hubSub struct {
	ch      chan *chunk
	gone    chan struct{} // closed by the subscriber's handler on exit
	evicted chan struct{} // closed by the hub when the stall budget runs out
	once    sync.Once
	evOnce  sync.Once
}

// leave marks the subscriber gone so a blocked broadcast releases.
func (s *hubSub) leave() { s.once.Do(func() { close(s.gone) }) }

type streamHub struct {
	mu     sync.Mutex
	header []byte
	retain int
	stall  time.Duration
	ring   []*chunk // most recent sealed chunks, oldest first
	subs   map[*hubSub]struct{}
	closed bool

	// Sealed-stream accounting, all under mu.
	records   int64
	chunks    int64
	bytes     int64
	evictions int64
}

func newStreamHub(retain int, stall time.Duration) *streamHub {
	if retain < 1 {
		retain = 1
	}
	if stall <= 0 {
		stall = defaultStall
	}
	return &streamHub{retain: retain, stall: stall, subs: make(map[*hubSub]struct{})}
}

// setHeader installs the stream preamble every subscriber's reply
// starts with. The recorder calls it once, before any chunk seals.
func (h *streamHub) setHeader(b []byte) {
	h.mu.Lock()
	h.header = b
	h.mu.Unlock()
}

// subscribe registers a subscriber and returns the replay prefix its
// response must start with: the header plus, unless fromLatest, the
// retained chunk ring. Registration and prefix snapshot are atomic, so
// a chunk is either in the prefix or delivered live, never both or
// neither. On a closed hub the returned channel is already closed: the
// client gets the prefix (the final state of the stream) and EOF.
func (h *streamHub) subscribe(fromLatest bool) ([]byte, *hubSub) {
	s := &hubSub{
		ch:      make(chan *chunk, hubChanBuffer),
		gone:    make(chan struct{}),
		evicted: make(chan struct{}),
	}
	h.mu.Lock()
	prefix := append([]byte(nil), h.header...)
	if !fromLatest {
		for _, c := range h.ring {
			prefix = append(prefix, c.data...)
		}
	}
	if h.closed {
		close(s.ch)
	} else {
		h.subs[s] = struct{}{}
	}
	h.mu.Unlock()
	return prefix, s
}

// unsubscribe removes a subscriber; chunks still queued are dropped for
// the garbage collector (chunk bytes are not pooled).
func (h *streamHub) unsubscribe(s *hubSub) {
	s.leave()
	h.mu.Lock()
	delete(h.subs, s)
	h.mu.Unlock()
}

// seal publishes one finished chunk: appends it to the retained ring
// and delivers it to every subscriber, blocking on full queues (that
// blocking is the backpressure contract) — but only up to the stall
// budget. A subscriber whose queue stays full that long is evicted:
// removed from the hub and told to hang up, so the recorder, and
// through the fan-out the producer, never stalls longer than one
// budget per dead client. Only the recorder calls seal, and never
// after close.
func (h *streamHub) seal(c *chunk) {
	h.mu.Lock()
	h.ring = append(h.ring, c)
	if len(h.ring) > h.retain {
		h.ring = h.ring[1:]
	}
	h.records += int64(c.n)
	h.chunks++
	h.bytes += int64(len(c.data))
	subs := make([]*hubSub, 0, len(h.subs))
	for s := range h.subs {
		subs = append(subs, s)
	}
	h.mu.Unlock()
	var timer *time.Timer
	for _, s := range subs {
		select {
		case s.ch <- c:
			continue
		case <-s.gone:
			continue
		default:
		}
		if timer == nil {
			timer = time.NewTimer(h.stall)
		} else {
			timer.Reset(h.stall)
		}
		select {
		case s.ch <- c:
		case <-s.gone:
		case <-timer.C:
			h.evict(s)
			continue // timer already drained
		}
		if !timer.Stop() {
			<-timer.C
		}
	}
}

// evict removes a stalled subscriber and signals its handler to hang
// up. The subscriber's channel is left open (close remains hub.close's
// job); the handler exits on the evicted signal instead.
func (h *streamHub) evict(s *hubSub) {
	h.mu.Lock()
	if _, ok := h.subs[s]; ok {
		delete(h.subs, s)
		h.evictions++
	}
	h.mu.Unlock()
	s.evOnce.Do(func() { close(s.evicted) })
}

// close ends the stream: every subscriber's channel is closed after its
// queued chunks, and future subscribers get the retained state plus an
// immediate EOF.
func (h *streamHub) close() {
	h.mu.Lock()
	h.closed = true
	subs := make([]*hubSub, 0, len(h.subs))
	for s := range h.subs {
		subs = append(subs, s)
	}
	h.mu.Unlock()
	for _, s := range subs {
		close(s.ch)
	}
}

// stats returns the sealed-stream accounting.
func (h *streamHub) stats() (records, chunks, bytes int64, subscribers int, closed bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.records, h.chunks, h.bytes, len(h.subs), h.closed
}

// evictedCount returns how many subscribers the hub has evicted for
// exhausting their stall budget.
func (h *streamHub) evictedCount() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.evictions
}
