package main

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"bsdtrace/internal/analyzer"
	"bsdtrace/internal/fault"
	"bsdtrace/internal/trace"
)

// TestDaemonChaosSoak is the issue's soak scenario: a daemon serves its
// stream through a fault-injecting listener (seeded resets, partial
// writes, latency) to a pool of retrying clients, is killed abruptly
// mid-run — no graceful checkpoint, only the periodic one on disk —
// and a second daemon resumes from that file. Three properties are
// pinned: zero corruption (every chaos connection decoded a contiguous
// byte-exact window of the golden trace, because only checkpoint-
// verified segments ever reach a decoder), exact loss accounting (a
// fresh client of the resumed stream sees precisely the pre-crash
// records as skipped, in one segment), and byte-exact completion (the
// final analysis and report equal an uninterrupted batch run's).
func TestDaemonChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak in -short mode")
	}
	golden := goldenEvents(t)
	goldenAn := analyzer.Analyze(golden, analyzer.Options{})
	baseGoroutines := runtime.NumGoroutine()
	state := filepath.Join(t.TempDir(), "fstraced.state")
	cfg := config{
		profile:  "A5",
		seed:     1,
		duration: 8 * trace.Hour,
		scale:    1,
		shards:   1,
		interval: 256,
		retain:   1 << 20,
		pace:     (8 * trace.Hour).Seconds() / 4.0, // ~4s wall if never killed
		snapshot: 25 * time.Millisecond,
		state:    state,
		stall:    250 * time.Millisecond,
	}
	d1 := newDaemon(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	fl := fault.NewFaultyListener(ln, fault.NetConfig{
		Seed:         42,
		Reset:        0.01,
		PartialWrite: 0.005,
		Latency:      200 * time.Microsecond,
	})
	srv1 := &http.Server{Handler: d1.mux, ReadHeaderTimeout: 5 * time.Second}
	serveDone := make(chan struct{})
	go func() {
		srv1.Serve(fl)
		close(serveDone)
	}()
	base := "http://" + ln.Addr().String()
	d1.start()

	// Chaos clients hammer /stream through the faulty listener,
	// collecting whatever each connection decoded before its fault.
	type connResult struct {
		events []trace.Event
		skip   trace.SkipStats
	}
	var (
		resMu   sync.Mutex
		results []connResult
	)
	stopClients := make(chan struct{})
	var cwg sync.WaitGroup
	for i := 0; i < 3; i++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			tr := &http.Transport{}
			defer tr.CloseIdleConnections()
			client := &http.Client{Transport: tr}
			for {
				select {
				case <-stopClients:
					return
				default:
				}
				resp, err := client.Get(base + "/stream")
				if err != nil {
					time.Sleep(5 * time.Millisecond)
					continue
				}
				events, skip, _ := readStream(resp.Body) // mid-body faults are the point
				resp.Body.Close()
				resMu.Lock()
				results = append(results, connResult{events, skip})
				resMu.Unlock()
			}
		}()
	}

	// Soak until a periodic checkpoint lands mid-stream, then kill the
	// daemon the way a crash would: no final checkpoint written.
	waitUntil(t, 20*time.Second, "a mid-stream periodic checkpoint", func() bool {
		st, err := loadCheckpoint(state, cfg)
		return err == nil && st.events > 20000 // a real soak window: ~1s of faulted streaming
	})
	close(stopClients)
	srv1.Close()
	cwg.Wait()
	d1.stop()

	// Zero corruption across every chaos connection: each replays from
	// record 0 and the injected faults only truncate, so whatever a
	// connection decoded must be exactly a prefix of the golden trace —
	// checkpoint verification never lets a damaged event through. (A
	// nonzero skip here is tail accounting: records decoded but cut off
	// before their segment's checkpoint verified, hence not emitted.)
	resMu.Lock()
	conns := append([]connResult(nil), results...)
	resMu.Unlock()
	windows := 0
	for i, res := range conns {
		if len(res.events) == 0 {
			continue
		}
		if len(res.events) > len(golden) {
			t.Fatalf("conn %d decoded %d events, more than the %d generated", i, len(res.events), len(golden))
		}
		if !reflect.DeepEqual(res.events, golden[:len(res.events)]) {
			t.Fatalf("conn %d decoded a corrupt prefix (%d events, skip %+v)", i, len(res.events), res.skip)
		}
		windows++
	}
	if windows == 0 {
		t.Fatal("no chaos connection decoded any events; the soak exercised nothing")
	}

	// Crash recovery: resume from the periodic checkpoint at full speed.
	st, err := loadCheckpoint(state, cfg)
	if err != nil {
		t.Fatalf("reload checkpoint after kill: %v", err)
	}
	if st.events <= 0 || st.events >= int64(len(golden)) {
		t.Fatalf("checkpoint at %d of %d; not mid-stream", st.events, len(golden))
	}
	cfg2 := cfg
	cfg2.pace = 0
	d2 := newDaemon(cfg2)
	d2.restore(st)
	srv2 := httptest.NewServer(d2.mux)
	client2 := srv2.Client()
	d2.start()

	// A fresh client (with the retrying helper, as a shed or reset
	// client would use it) reads the resumed stream.
	var events []trace.Event
	var skip trace.SkipStats
	err = fault.Retry(fault.RetryConfig{Seed: 7, Attempts: 5}, func(int) (time.Duration, error) {
		resp, err := client2.Get(srv2.URL + "/stream")
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		events, skip, err = readStream(resp.Body)
		return 0, err
	})
	if err != nil {
		t.Fatalf("read resumed stream: %v", err)
	}
	if skip.Records != st.events || skip.Segments != 1 {
		t.Fatalf("resumed skip = %+v, want exactly %d records in 1 segment", skip, st.events)
	}
	if !reflect.DeepEqual(events, golden[st.events:]) {
		t.Fatalf("resumed stream diverged from the golden suffix at record %d", st.events)
	}

	<-d2.genDone
	d2.live.mu.Lock()
	final, verrs := d2.live.final, len(d2.live.validator.Errs())
	d2.live.mu.Unlock()
	if verrs != 0 {
		t.Fatalf("validator flagged %d errors across the crash", verrs)
	}
	if final == nil || !reflect.DeepEqual(final, goldenAn) {
		t.Fatal("post-crash final analysis differs from an uninterrupted batch run")
	}
	resp, err := client2.Get(srv2.URL + "/report")
	if err != nil {
		t.Fatalf("GET /report: %v", err)
	}
	served, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var local bytes.Buffer
	renderReport(&local, "a5", goldenAn)
	if !bytes.Equal(served, local.Bytes()) {
		t.Fatal("post-crash report differs from the batch-rendered report")
	}

	srv2.Close()
	client2.CloseIdleConnections()
	d2.stop()
	<-serveDone
	goroutineFence(t, baseGoroutines)
}

// smallBufListener clamps the send buffer of every accepted connection,
// so a non-reading peer stalls the server's writes after a few KB
// instead of letting the kernel absorb the whole stream.
type smallBufListener struct{ net.Listener }

func (l smallBufListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetWriteBuffer(8192)
		}
	}
	return c, err
}

// TestDaemonEvictsStalledStreamClient: a client that connects and never
// reads a byte must not hold the pipeline hostage. Its receive buffer
// fills, the handler's writes stall, its hub queue fills, and the hub
// evicts it after the stall budget — generation still runs to
// completion and every goroutine is reaped.
func TestDaemonEvictsStalledStreamClient(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload generation in -short mode")
	}
	baseGoroutines := runtime.NumGoroutine()
	cfg := config{
		profile:  "A5",
		seed:     2,
		duration: 8 * trace.Hour, // ~1 MB encoded: far beyond what the clamped sockets absorb
		scale:    1,
		shards:   1,
		interval: 128,
		retain:   8,
		pace:     0,
		snapshot: time.Second,
		stall:    50 * time.Millisecond,
	}
	d := newDaemon(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := &http.Server{Handler: d.mux}
	serveDone := make(chan struct{})
	go func() {
		srv.Serve(smallBufListener{ln})
		close(serveDone)
	}()

	// The dead client subscribes before generation starts, so it is
	// guaranteed to be in the hub's way when chunks begin to seal.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetReadBuffer(4096)
	}
	if _, err := io.WriteString(conn, "GET /stream HTTP/1.1\r\nHost: fstraced\r\n\r\n"); err != nil {
		t.Fatalf("send request: %v", err)
	}
	waitUntil(t, 10*time.Second, "the dead client's subscription", func() bool {
		_, _, _, subs, _ := d.hub.stats()
		return subs >= 1
	})
	d.start()

	waitUntil(t, 20*time.Second, "the stalled subscriber's eviction", func() bool {
		return d.hub.evictedCount() >= 1
	})
	select {
	case <-d.genDone:
	case <-time.After(30 * time.Second):
		t.Fatal("generation did not complete after evicting the stalled client")
	}
	d.live.mu.Lock()
	done := d.live.done
	d.live.mu.Unlock()
	if !done {
		t.Fatal("analysis did not finalize after the eviction")
	}

	conn.Close()
	srv.Close()
	d.stop()
	<-serveDone
	goroutineFence(t, baseGoroutines)
}

// TestIngestShedding: with the single ingest slot held by a stalled
// upload, the next upload is shed with 429 and a Retry-After hint, the
// shed counter moves, and a client retrying through fault.Retry (which
// honors the hint) gets through once the slot frees.
func TestIngestShedding(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()
	cfg := config{
		profile:   "A5",
		seed:      9,
		duration:  trace.Hour,
		scale:     1,
		shards:    1,
		interval:  256,
		retain:    4,
		pace:      0,
		snapshot:  time.Second,
		maxIngest: 1,
	}
	d := newDaemon(cfg)
	srv := httptest.NewServer(d.mux)
	client := srv.Client()
	d.start()

	// The smallest valid upload: one open event.
	var tiny bytes.Buffer
	w := trace.NewWriter(&tiny)
	if err := w.Write(trace.Event{Time: 1, Kind: trace.KindOpen, OpenID: 1, File: 1, User: 1, Mode: trace.ReadOnly, Size: 64}); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	// Occupy the single slot with an upload that stalls mid-body.
	pr, pw := io.Pipe()
	slowDone := make(chan error, 1)
	go func() {
		resp, err := client.Post(srv.URL+"/ingest?name=slow", "application/octet-stream", pr)
		if err != nil {
			slowDone <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			slowDone <- fmt.Errorf("slow upload: status %d: %s", resp.StatusCode, b)
			return
		}
		slowDone <- nil
	}()
	if _, err := pw.Write(tiny.Bytes()); err != nil {
		t.Fatalf("feed slow body: %v", err)
	}

	// With the slot held, the next upload is shed.
	var retryAfter string
	waitUntil(t, 10*time.Second, "load shedding to kick in", func() bool {
		resp, err := client.Post(srv.URL+"/ingest?name=probe", "application/octet-stream", bytes.NewReader(tiny.Bytes()))
		if err != nil {
			return false
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			retryAfter = resp.Header.Get("Retry-After")
			return true
		}
		return false
	})
	if retryAfter != "1" {
		t.Fatalf("shed response Retry-After = %q, want \"1\"", retryAfter)
	}
	if n := d.reg.Counter("fstraced.ingest.shed").Value(); n < 1 {
		t.Fatalf("shed counter = %d, want >= 1", n)
	}

	// Release the slot; the held upload completes cleanly...
	pw.Close()
	if err := <-slowDone; err != nil {
		t.Fatal(err)
	}
	// ...and a shed client retrying with the helper gets through.
	err := fault.Retry(fault.RetryConfig{Seed: 2, Attempts: 5, Base: 10 * time.Millisecond}, func(int) (time.Duration, error) {
		resp, err := client.Post(srv.URL+"/ingest?name=retry", "application/octet-stream", bytes.NewReader(tiny.Bytes()))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode == http.StatusTooManyRequests {
			var hint time.Duration
			if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
				hint = time.Duration(sec) * time.Second
			}
			return hint, fmt.Errorf("shed")
		}
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("status %d", resp.StatusCode)
		}
		return 0, nil
	})
	if err != nil {
		t.Fatalf("retrying upload: %v", err)
	}

	srv.Close()
	client.CloseIdleConnections()
	d.stop()
	goroutineFence(t, baseGoroutines)
}
