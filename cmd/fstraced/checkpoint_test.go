package main

import (
	"bytes"
	"io"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"bsdtrace/internal/analyzer"
	"bsdtrace/internal/trace"
	"bsdtrace/internal/workload"
)

// waitUntil polls cond until it holds or the deadline expires.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// goroutineFence fails the test if the goroutine count does not return
// to near base within ten seconds.
func goroutineFence(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+3 {
			return
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d live, started with %d\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDaemonCheckpointResumeRoundTrip is the tentpole's acceptance test
// for the clean path: a daemon is stopped mid-run, writes its graceful
// final checkpoint, and a second daemon resumes from it. The resumed
// stream announces the pre-stop records to a fresh client via the
// resume checkpoint (exact loss accounting: skip.Records equals the
// resume position, in exactly one segment), the remainder decodes
// byte-exactly, and the final analysis and report are byte-identical to
// an uninterrupted batch run.
func TestDaemonCheckpointResumeRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("8h workload generation in -short mode")
	}
	golden := goldenEvents(t)
	goldenAn := analyzer.Analyze(golden, analyzer.Options{})
	baseGoroutines := runtime.NumGoroutine()
	state := filepath.Join(t.TempDir(), "fstraced.state")
	cfg := config{
		profile:  "A5",
		seed:     1,
		duration: 8 * trace.Hour,
		scale:    1,
		shards:   1,
		interval: 512,
		retain:   1 << 20,                          // effectively unbounded: the resumed stream replays in full
		pace:     (8 * trace.Hour).Seconds() / 3.0, // ~3s wall if never stopped
		snapshot: 25 * time.Millisecond,
		state:    state,
	}
	d1 := newDaemon(cfg)
	d1.start()
	waitUntil(t, 20*time.Second, "a mid-run periodic checkpoint", func() bool {
		st, err := loadCheckpoint(state, cfg)
		return err == nil && st.events > 1000
	})
	d1.stop()
	d1.live.mu.Lock()
	aborted, stoppedAt := d1.live.aborted, d1.live.events
	d1.live.mu.Unlock()
	if !aborted {
		t.Fatal("daemon stopped mid-run did not mark the analysis aborted")
	}
	if stoppedAt <= 0 || stoppedAt >= int64(len(golden)) {
		t.Fatalf("stopped at %d of %d events; not mid-run", stoppedAt, len(golden))
	}
	// The graceful-shutdown checkpoint captures the exact stop position.
	if err := d1.writeCheckpoint(); err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	st, err := loadCheckpoint(state, cfg)
	if err != nil {
		t.Fatalf("load final checkpoint: %v", err)
	}
	if st.events != stoppedAt {
		t.Fatalf("final checkpoint at %d, analysis stopped at %d", st.events, stoppedAt)
	}

	// Resume at full speed and stream the remainder to a fresh client.
	cfg2 := cfg
	cfg2.pace = 0
	d2 := newDaemon(cfg2)
	d2.restore(st)
	srv := httptest.NewServer(d2.mux)
	client := srv.Client()
	d2.start()
	resp, err := client.Get(srv.URL + "/stream")
	if err != nil {
		t.Fatalf("GET /stream: %v", err)
	}
	events, skip, err := readStream(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read resumed stream: %v", err)
	}
	if skip.Records != st.events || skip.Segments != 1 {
		t.Fatalf("resumed stream skip = %+v, want exactly %d records in 1 segment", skip, st.events)
	}
	if !reflect.DeepEqual(events, golden[st.events:]) {
		t.Fatalf("resumed stream: got %d events, want the %d-event suffix from record %d",
			len(events), len(golden)-int(st.events), st.events)
	}

	<-d2.genDone
	d2.live.mu.Lock()
	final, done, verrs := d2.live.final, d2.live.done, len(d2.live.validator.Errs())
	d2.live.mu.Unlock()
	if !done || final == nil {
		t.Fatal("resumed run did not finish")
	}
	if verrs != 0 {
		t.Fatalf("validator flagged %d errors across the stop boundary", verrs)
	}
	if !reflect.DeepEqual(final, goldenAn) {
		t.Fatal("resumed final analysis differs from an uninterrupted batch Analyze")
	}
	resp, err = client.Get(srv.URL + "/report")
	if err != nil {
		t.Fatalf("GET /report: %v", err)
	}
	served, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var local bytes.Buffer
	renderReport(&local, "a5", goldenAn)
	if !bytes.Equal(served, local.Bytes()) {
		t.Fatalf("resumed report (%d bytes) differs from batch report (%d bytes)",
			len(served), local.Len())
	}
	resp, err = client.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	stats, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(stats), `"resumed_at_record"`) {
		t.Fatalf("GET /stats does not report the resume position:\n%s", stats)
	}
	// The stop-time drain means analysis position equals events produced,
	// so the restored counter plus the resumed suffix covers the trace
	// exactly once.
	if n := d2.reg.Counter("fstraced.gen.events").Value(); n != int64(len(golden)) {
		t.Fatalf("gen.events = %d after resume, want %d", n, len(golden))
	}
	// A finished run has nothing left to checkpoint; the last resumable
	// file stays in place.
	if err := d2.writeCheckpoint(); err != errCkptFinished {
		t.Fatalf("checkpoint after finish: %v, want errCkptFinished", err)
	}

	srv.Close()
	client.CloseIdleConnections()
	d2.stop()
	goroutineFence(t, baseGoroutines)
}

// ckptBlob builds a valid mid-run checkpoint without running a full
// daemon: a few hundred generated events fed straight into the live
// analysis, then serialized.
func ckptBlob(t testing.TB, cfg config) []byte {
	d := newDaemon(cfg)
	fed := 0
	workload.GenerateStream(
		workload.Config{
			Profile:   cfg.profile,
			Seed:      cfg.seed,
			Duration:  cfg.duration,
			UserScale: cfg.scale,
			Shards:    cfg.shards,
		},
		func(e trace.Event) error {
			d.live.stream.Feed(e)
			d.live.validator.Check(e)
			d.live.events++
			if fed++; fed >= 500 {
				return errStopped
			}
			return nil
		})
	if fed == 0 {
		t.Fatalf("workload generated no events")
	}
	blob, err := d.checkpointBytes()
	if err != nil {
		t.Fatalf("checkpointBytes: %v", err)
	}
	return blob
}

// TestDecodeCheckpointRejects: resume refuses a checkpoint from a
// different run configuration, and corrupt or truncated files error out
// without panicking — and without a wrong accept.
func TestDecodeCheckpointRejects(t *testing.T) {
	cfg := config{profile: "A5", seed: 5, duration: trace.Hour, scale: 1, shards: 1, interval: 64}
	blob := ckptBlob(t, cfg)
	if _, err := decodeCheckpoint(blob, cfg); err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}
	mismatches := map[string]config{
		"profile":  {profile: "A4", seed: 5, duration: trace.Hour, scale: 1, shards: 1, interval: 64},
		"seed":     {profile: "A5", seed: 6, duration: trace.Hour, scale: 1, shards: 1, interval: 64},
		"duration": {profile: "A5", seed: 5, duration: 2 * trace.Hour, scale: 1, shards: 1, interval: 64},
		"scale":    {profile: "A5", seed: 5, duration: trace.Hour, scale: 2, shards: 1, interval: 64},
		"shards":   {profile: "A5", seed: 5, duration: trace.Hour, scale: 1, shards: 2, interval: 64},
		"interval": {profile: "A5", seed: 5, duration: trace.Hour, scale: 1, shards: 1, interval: 128},
	}
	for name, bad := range mismatches {
		if _, err := decodeCheckpoint(blob, bad); err == nil || !strings.Contains(err.Error(), "refusing") {
			t.Fatalf("%s mismatch not refused: %v", name, err)
		}
	}
	for cut := 0; cut < len(blob); cut += 13 {
		if _, err := decodeCheckpoint(blob[:cut], cfg); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for i := 0; i < len(blob); i += 17 {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x20
		if _, err := decodeCheckpoint(mut, cfg); err == nil {
			t.Fatalf("bit flip at %d accepted past the CRC", i)
		}
	}
}

// FuzzDecodeCheckpoint: arbitrary bytes must never panic the decoder.
func FuzzDecodeCheckpoint(f *testing.F) {
	cfg := config{profile: "A5", seed: 5, duration: trace.Hour, scale: 1, shards: 1, interval: 64}
	blob := ckptBlob(f, cfg)
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add([]byte("FSDCKPT1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		decodeCheckpoint(data, cfg)
	})
}
