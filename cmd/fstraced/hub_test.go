package main

import (
	"bytes"
	"testing"
	"time"
)

func mkChunk(first int64, n int) *chunk {
	return &chunk{data: bytes.Repeat([]byte{byte(first)}, 8), first: first, n: n}
}

// TestHubBackpressureBlocksAndReleases pins the backpressure contract:
// a subscriber that stops reading stalls the broadcaster once its queue
// fills, and the stall releases the moment the subscriber leaves.
func TestHubBackpressureBlocksAndReleases(t *testing.T) {
	h := newStreamHub(2, time.Minute) // stall budget far beyond the test's windows
	h.setHeader([]byte("HDR"))
	_, stalled := h.subscribe(false)

	sealed := make(chan struct{})
	go func() {
		for i := 0; i <= hubChanBuffer; i++ { // one more than the queue holds
			h.seal(mkChunk(int64(i), 1))
		}
		close(sealed)
	}()
	select {
	case <-sealed:
		t.Fatalf("sealed %d chunks into an unread queue of %d without blocking",
			hubChanBuffer+1, hubChanBuffer)
	case <-time.After(50 * time.Millisecond):
		// Blocked, as the contract requires.
	}
	h.unsubscribe(stalled)
	select {
	case <-sealed:
	case <-time.After(5 * time.Second):
		t.Fatal("broadcast still blocked after the stalled subscriber left")
	}
}

// TestHubEvictsStalledSubscriber: a subscriber stalled past the budget
// is evicted — seal completes, the evicted signal fires, the sub is
// gone from the hub — while a healthy subscriber still receives every
// chunk.
func TestHubEvictsStalledSubscriber(t *testing.T) {
	h := newStreamHub(64, 30*time.Millisecond)
	h.setHeader([]byte("HDR"))
	_, stalled := h.subscribe(false)
	_, healthy := h.subscribe(false)

	drained := make(chan int)
	go func() {
		n := 0
		for range healthy.ch {
			n++
		}
		drained <- n
	}()

	total := hubChanBuffer + 4 // overflow the stalled queue by several chunks
	start := time.Now()
	for i := 0; i < total; i++ {
		h.seal(mkChunk(int64(i), 1))
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("sealing %d chunks past a dead subscriber took %v", total, elapsed)
	}
	if n := h.evictedCount(); n != 1 {
		t.Fatalf("evictions = %d, want exactly 1", n)
	}
	select {
	case <-stalled.evicted:
	default:
		t.Fatal("evicted subscriber's signal channel not closed")
	}
	if _, _, _, subs, _ := h.stats(); subs != 1 {
		t.Fatalf("subscribers = %d after eviction, want 1", subs)
	}

	h.close()
	if n := <-drained; n != total {
		t.Fatalf("healthy subscriber got %d of %d chunks", n, total)
	}
}

// TestHubSubscribeReplayAndClose: the prefix is atomic with
// registration (every chunk exactly once, replayed or live), the ring
// retains only the newest chunks, and post-close subscribers get the
// final state plus immediate EOF.
func TestHubSubscribeReplayAndClose(t *testing.T) {
	h := newStreamHub(2, 0)
	h.setHeader([]byte("HDR"))
	for i := 0; i < 5; i++ {
		h.seal(mkChunk(int64(i), 1))
	}

	prefix, sub := h.subscribe(false)
	want := append([]byte("HDR"), append(mkChunk(3, 1).data, mkChunk(4, 1).data...)...)
	if !bytes.Equal(prefix, want) {
		t.Fatalf("replay prefix = %q, want header plus the 2 retained chunks %q", prefix, want)
	}
	h.seal(mkChunk(5, 1))
	if c := <-sub.ch; c.first != 5 {
		t.Fatalf("live chunk first = %d, want 5", c.first)
	}
	h.unsubscribe(sub)

	livePrefix, liveSub := h.subscribe(true)
	if !bytes.Equal(livePrefix, []byte("HDR")) {
		t.Fatalf("live prefix = %q, want bare header", livePrefix)
	}
	h.unsubscribe(liveSub)

	h.close()
	prefix, sub = h.subscribe(false)
	if !bytes.Equal(prefix[:3], []byte("HDR")) {
		t.Fatalf("post-close prefix lost the header: %q", prefix)
	}
	if _, ok := <-sub.ch; ok {
		t.Fatal("post-close subscriber channel not closed")
	}

	records, chunks, bytesSealed, subscribers, closed := h.stats()
	if records != 6 || chunks != 6 || bytesSealed != 48 || subscribers != 0 || !closed {
		t.Fatalf("stats = (%d, %d, %d, %d, %v), want (6, 6, 48, 0, true)",
			records, chunks, bytesSealed, subscribers, closed)
	}
}
