package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"bsdtrace/internal/analyzer"
	"bsdtrace/internal/fault"
	"bsdtrace/internal/trace"
	"bsdtrace/internal/workload"
)

// goldenEvents generates the 8h seed-1 A5 trace the daemon under test
// will serve, as the ground truth every client's bytes decode back to.
// Several tests need it, so it is generated once and never mutated.
var (
	goldenOnce   sync.Once
	goldenCached []trace.Event
	goldenErr    error
)

func goldenEvents(t *testing.T) []trace.Event {
	t.Helper()
	goldenOnce.Do(func() {
		_, goldenErr = workload.GenerateStream(
			workload.Config{Profile: "A5", Seed: 1, Duration: 8 * trace.Hour},
			func(e trace.Event) error { goldenCached = append(goldenCached, e); return nil })
	})
	if goldenErr != nil {
		t.Fatalf("golden generate: %v", goldenErr)
	}
	return goldenCached
}

// readStream decodes a full v2 HTTP response body.
func readStream(body io.Reader) ([]trace.Event, trace.SkipStats, error) {
	r, err := trace.NewReader(body)
	if err != nil {
		return nil, trace.SkipStats{}, err
	}
	var events []trace.Event
	batch := trace.GetBatch()
	defer trace.PutBatch(batch)
	for {
		n, err := trace.ReadBatch(r, batch)
		events = append(events, batch[:n]...)
		if n == 0 {
			if err == io.EOF {
				return events, r.Skipped(), nil
			}
			return events, r.Skipped(), err
		}
	}
}

// encodeV2 frames events with the given checkpoint interval.
func encodeV2(t *testing.T, events []trace.Event, interval int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := trace.NewWriterV2(&buf, interval)
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatalf("encode: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return buf.Bytes()
}

// TestDaemonEndToEnd is the issue's acceptance scenario in one run:
// eight concurrent HTTP clients stream the full 8h seed-1 trace
// byte-exactly, a ninth joins mid-stream and resynchronizes through the
// v2 checkpoint protocol, uploads (clean, semantically mangled lenient,
// byte-corrupted strict and lenient) flow through online ingest
// analysis concurrently, and at end of stream the daemon's rolling
// analysis and rendered report match the batch analyzer byte-for-byte.
// Afterwards every daemon and handler goroutine is gone.
func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("8h workload generation in -short mode")
	}
	golden := goldenEvents(t)
	goldenAn := analyzer.Analyze(golden, analyzer.Options{})

	baseGoroutines := runtime.NumGoroutine()
	cfg := config{
		profile:  "A5",
		seed:     1,
		duration: 8 * trace.Hour,
		scale:    1,
		shards:   1,
		interval: 512,
		retain:   1024, // larger than the total chunk count: joiners at any time can replay from record 0
		// Pace generation to take at least ~2 wall seconds, so the
		// mid-stream joiner below deterministically lands mid-stream.
		pace:     (8 * trace.Hour).Seconds() / 2.0,
		snapshot: time.Second,
	}
	d := newDaemon(cfg)
	srv := httptest.NewServer(d.mux)
	client := srv.Client()
	d.start()

	// Eight concurrent full-stream clients.
	type streamResult struct {
		events []trace.Event
		skip   trace.SkipStats
		err    error
	}
	const nClients = 8
	full := make(chan streamResult, nClients)
	for i := 0; i < nClients; i++ {
		go func() {
			resp, err := client.Get(srv.URL + "/stream")
			if err != nil {
				full <- streamResult{err: err}
				return
			}
			defer resp.Body.Close()
			events, skip, err := readStream(resp.Body)
			full <- streamResult{events: events, skip: skip, err: err}
		}()
	}

	// Wait until all eight are connected and enough chunks have sealed
	// that a live joiner starts well past record 0, while generation
	// (paced to ~2s) is still running.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, chunks, _, _, closed := d.hub.stats()
		clients := d.reg.Gauge("fstraced.stream.clients").Value()
		if chunks >= 5 && clients >= nClients {
			break
		}
		if closed {
			t.Fatalf("stream closed before the mid-join window (chunks %d, clients %d)", chunks, clients)
		}
		if time.Now().After(deadline) {
			t.Fatalf("no mid-join window: chunks %d, clients %d", chunks, clients)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The mid-stream joiner: live replay only, so its first chunk starts
	// at a nonzero record index and the v2 reader must resync off the
	// chunk's checkpoint, discarding exactly that one segment.
	joiner := make(chan streamResult, 1)
	go func() {
		resp, err := client.Get(srv.URL + "/stream?replay=live")
		if err != nil {
			joiner <- streamResult{err: err}
			return
		}
		defer resp.Body.Close()
		events, skip, err := readStream(resp.Body)
		joiner <- streamResult{events: events, skip: skip, err: err}
	}()

	// Live text tap through a dynamic fan-out subscriber.
	resp, err := client.Get(srv.URL + "/events?n=5")
	if err != nil {
		t.Fatalf("GET /events: %v", err)
	}
	sc := bufio.NewScanner(resp.Body)
	lines := 0
	for sc.Scan() {
		if !strings.Contains(sc.Text(), " ") {
			t.Fatalf("GET /events: malformed line %q", sc.Text())
		}
		lines++
	}
	resp.Body.Close()
	if lines != 5 {
		t.Fatalf("GET /events?n=5 returned %d lines", lines)
	}

	// Concurrent ingest traffic while the stream is still being served.
	var ingests sync.WaitGroup
	upload := golden[:20000]
	post := func(path string, body []byte) (*http.Response, string) {
		resp, err := client.Post(srv.URL+path, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Errorf("POST %s: %v", path, err)
			return nil, ""
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, string(b)
	}
	ingests.Add(3)
	go func() { // semantically mangled upload, repaired leniently
		defer ingests.Done()
		m := fault.NewTraceMangler(trace.NewSliceSource(upload),
			fault.MangleConfig{Seed: 6, Drop: 0.02, Duplicate: 0.02, BitFlip: 0.02, Jitter: 0.02})
		var buf bytes.Buffer
		w := trace.NewWriter(&buf)
		for {
			e, err := m.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Errorf("mangle: %v", err)
				return
			}
			w.Write(e)
		}
		w.Flush()
		resp, body := post("/ingest?lenient=1&name=mangled", buf.Bytes())
		if resp == nil {
			return
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("lenient mangled ingest: status %d: %s", resp.StatusCode, body)
			return
		}
		if !strings.Contains(body, `"name": "mangled"`) {
			t.Errorf("lenient mangled ingest: summary missing name: %s", body)
		}
		// 2% damage on 20k events must have tripped the repair budget.
		if !strings.Contains(body, "repaired_") {
			t.Errorf("lenient mangled ingest reported no repairs: %s", body)
		}
	}()
	corrupt := encodeV2(t, upload, 256)
	corrupt = append([]byte(nil), corrupt...)
	for i := len(corrupt) / 3; i < len(corrupt)/3+16; i++ {
		corrupt[i] ^= 0xFF
	}
	go func() { // byte corruption, strict: rejected
		defer ingests.Done()
		resp, body := post("/ingest?name=corrupt-strict", corrupt)
		if resp == nil {
			return
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("strict corrupted ingest: status %d, want 400: %s", resp.StatusCode, body)
		}
	}()
	go func() { // byte corruption, lenient: accepted with skip accounting
		defer ingests.Done()
		resp, body := post("/ingest?lenient=1&name=corrupt-lenient", corrupt)
		if resp == nil {
			return
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("lenient corrupted ingest: status %d: %s", resp.StatusCode, body)
			return
		}
		if !strings.Contains(body, "skipped_") && !strings.Contains(body, "truncated") {
			t.Errorf("lenient corrupted ingest reported no damage: %s", body)
		}
	}()

	// Collect the streaming clients: each must hold the exact trace.
	for i := 0; i < nClients; i++ {
		res := <-full
		if res.err != nil {
			t.Fatalf("full client %d: %v", i, res.err)
		}
		if !res.skip.Zero() {
			t.Fatalf("full client %d skipped data: %+v", i, res.skip)
		}
		if !reflect.DeepEqual(res.events, golden) {
			t.Fatalf("full client %d: got %d events, want %d, or contents differ",
				i, len(res.events), len(golden))
		}
	}
	jr := <-joiner
	if jr.err != nil {
		t.Fatalf("mid-stream joiner: %v", jr.err)
	}
	if jr.skip.Segments != 1 {
		t.Fatalf("mid-stream joiner resync: skipped %+v, want exactly 1 segment", jr.skip)
	}
	if len(jr.events) == 0 || len(jr.events) >= len(golden) {
		t.Fatalf("mid-stream joiner got %d of %d events, want a proper suffix", len(jr.events), len(golden))
	}
	if suffix := golden[len(golden)-len(jr.events):]; !reflect.DeepEqual(jr.events, suffix) {
		t.Fatalf("mid-stream joiner suffix mismatch after resync (%d events)", len(jr.events))
	}
	ingests.Wait()

	// End of stream: the online analysis must equal the batch analyzer's
	// result exactly, and the served report must match a locally
	// rendered one byte-for-byte.
	<-d.genDone
	d.live.mu.Lock()
	final, genErr, verrs := d.live.final, d.live.genErr, len(d.live.validator.Errs())
	d.live.mu.Unlock()
	if genErr != nil {
		t.Fatalf("generation error: %v", genErr)
	}
	if verrs != 0 {
		t.Fatalf("validator flagged %d errors on the generated stream", verrs)
	}
	if !reflect.DeepEqual(final, goldenAn) {
		t.Fatalf("online analysis at end of stream differs from batch Analyze")
	}
	resp, err = client.Get(srv.URL + "/report")
	if err != nil {
		t.Fatalf("GET /report: %v", err)
	}
	served, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var local bytes.Buffer
	renderReport(&local, "a5", goldenAn)
	if !bytes.Equal(served, local.Bytes()) {
		t.Fatalf("served report (%d bytes) differs from batch-rendered report (%d bytes)",
			len(served), local.Len())
	}
	resp, err = client.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	stats, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{`"done": true`, `"final": true`, fmt.Sprintf(`"events": %d`, len(golden))} {
		if !strings.Contains(string(stats), want) {
			t.Fatalf("GET /stats missing %q:\n%s", want, stats)
		}
	}

	// Shutdown, then the goroutine fence: everything the daemon and its
	// handlers started must exit.
	srv.Close()
	client.CloseIdleConnections()
	d.stop()
	fence := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseGoroutines+3 {
			break
		} else if time.Now().After(fence) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d live, started with %d\n%s",
				n, baseGoroutines, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDaemonStopMidStream: stopping the daemon while clients are
// connected and generation is running must terminate cleanly — the
// producer aborts, streams end, and no goroutine survives.
func TestDaemonStopMidStream(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()
	cfg := config{
		profile:  "A5",
		seed:     3,
		duration: 8 * trace.Hour,
		scale:    1,
		shards:   1,
		interval: 256,
		retain:   8,
		pace:     (8 * trace.Hour).Seconds() / 30.0, // ~30s if never stopped
		snapshot: time.Second,
	}
	d := newDaemon(cfg)
	srv := httptest.NewServer(d.mux)
	client := srv.Client()
	d.start()

	done := make(chan error, 1)
	go func() {
		resp, err := client.Get(srv.URL + "/stream")
		if err != nil {
			done <- err
			return
		}
		defer resp.Body.Close()
		_, err = io.Copy(io.Discard, resp.Body)
		done <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, chunks, _, _, _ := d.hub.stats(); chunks >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no chunks sealed")
		}
		time.Sleep(2 * time.Millisecond)
	}

	d.stopped.Store(true) // abort generation: the stream ends early but cleanly
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("client read: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not end after stop")
	}
	srv.Close()
	client.CloseIdleConnections()
	d.stop()
	fence := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseGoroutines+3 {
			break
		} else if time.Now().After(fence) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d live, started with %d\n%s",
				n, baseGoroutines, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
