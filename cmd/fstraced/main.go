// Command fstraced is a long-running trace service: it generates a
// v2-framed BSD trace stream from the sharded workload engine and
// serves it live to any number of HTTP clients (with per-client
// backpressure and checkpoint-based mid-stream join), accepts trace
// uploads for online analysis, and publishes rolling Section-5 results
// and pipeline metrics while it runs. See DESIGN.md §10.
//
// The daemon is crash-recoverable and self-protecting (DESIGN.md §12):
// with -state it checkpoints the online analysis periodically and at
// graceful shutdown, and -resume continues a killed run from the last
// checkpoint with a final report byte-identical to an uninterrupted
// one. Slow stream consumers are evicted after -stall, excess ingest
// load is shed with 429, and all HTTP I/O is under deadlines.
//
// Usage:
//
//	fstraced [-addr host:port] [-profile A5|E3|C4] [-seed N]
//	         [-duration 8h] [-scale F] [-shards N]
//	         [-checkpoint N] [-retain N] [-pace F]
//	         [-manifest FILE] [-snapshot 5s] [-debug-addr host:port]
//	         [-state FILE] [-resume] [-stall 5s] [-max-ingest N]
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bsdtrace/internal/obs"
	"bsdtrace/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, stdout *os.File) int {
	fs := flag.NewFlagSet("fstraced", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8324", "listen address for the service")
	debugAddr := fs.String("debug-addr", "", "optional extra address for /debug/vars and /debug/pprof (also mounted on -addr)")
	profile := fs.String("profile", "A5", "workload profile: A5, E3, or C4")
	seed := fs.Int64("seed", 1, "workload RNG seed")
	duration := fs.Duration("duration", 8*time.Hour, "simulated trace duration")
	scale := fs.Float64("scale", 1.0, "user population scale factor")
	shards := fs.Int("shards", 1, "workload generator shards")
	checkpoint := fs.Int("checkpoint", 1024, "records per checkpoint segment (= per stream chunk)")
	retain := fs.Int("retain", 16, "sealed chunks retained for late joiners")
	pace := fs.Float64("pace", 0, "simulated seconds generated per wall second (0 = full speed)")
	manifest := fs.String("manifest", "", "write periodic run-manifest snapshots to this file")
	snapshot := fs.Duration("snapshot", 5*time.Second, "manifest and state checkpoint interval")
	state := fs.String("state", "", "checkpoint resumable daemon state to this file")
	resume := fs.Bool("resume", false, "resume from the -state checkpoint if present")
	stall := fs.Duration("stall", 5*time.Second, "stall budget before a slow stream client is evicted")
	maxIngest := fs.Int("max-ingest", 4, "concurrent ingest uploads before load is shed with 429")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *pace < 0 || *shards < 1 || *scale <= 0 || *duration <= 0 || *checkpoint < 1 || *retain < 1 {
		fmt.Fprintln(os.Stderr, "fstraced: -pace, -shards, -scale, -duration, -checkpoint, -retain must be positive")
		return 2
	}
	if *stall <= 0 || *maxIngest < 1 {
		fmt.Fprintln(os.Stderr, "fstraced: -stall and -max-ingest must be positive")
		return 2
	}
	if *resume && *state == "" {
		fmt.Fprintln(os.Stderr, "fstraced: -resume requires -state")
		return 2
	}

	cfg := config{
		profile:   *profile,
		seed:      *seed,
		duration:  trace.Time(duration.Milliseconds()),
		scale:     *scale,
		shards:    *shards,
		interval:  *checkpoint,
		retain:    *retain,
		pace:      *pace,
		manifest:  *manifest,
		snapshot:  *snapshot,
		state:     *state,
		stall:     *stall,
		maxIngest: *maxIngest,
	}
	d := newDaemon(cfg)
	if *resume {
		switch st, err := loadCheckpoint(*state, cfg); {
		case err == nil:
			d.restore(st)
			fmt.Fprintf(stdout, "fstraced: resuming at record %d (t=%v) from %s\n",
				st.events, st.lastTime, *state)
		case os.IsNotExist(err):
			fmt.Fprintf(stdout, "fstraced: no checkpoint at %s, starting fresh\n", *state)
		default:
			// A corrupt or mismatched checkpoint must not be silently
			// discarded by starting over: the operator decides.
			fmt.Fprintf(os.Stderr, "fstraced: resume: %v\n", err)
			return 1
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fstraced: listen %s: %v\n", *addr, err)
		return 1
	}
	if *debugAddr != "" {
		dbg, err := obs.ServeDebug(*debugAddr, d.reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fstraced: debug server on %s: %v\n", *debugAddr, err)
			return 1
		}
		fmt.Fprintf(stdout, "fstraced: debug on http://%s/debug/vars\n", dbg)
	}

	d.start()
	// Global read/write timeouts would kill the long-lived /stream
	// responses; instead the server bounds header reads and idle
	// keep-alives here, and the handlers set per-I/O deadlines via
	// ResponseController.
	srv := &http.Server{
		Handler:           d.mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(stdout, "fstraced: serving %s seed %d (%s simulated) on http://%s/\n",
		cfg.profile, cfg.seed, cfg.duration, ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(stdout, "fstraced: %v, shutting down\n", s)
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "fstraced: serve: %v\n", err)
		d.stop()
		return 1
	}

	// Shutdown order matters: stop generation first so streams can end,
	// give in-flight responses a grace period, then force-close anything
	// still connected (a stalled client would otherwise hold the
	// backpressured pipeline open forever), and only then wait for the
	// pipeline goroutines. Once the pipeline has quiesced, flush the
	// final state checkpoint: an interrupted run leaves its exact resume
	// point on disk.
	d.stopped.Store(true)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
	}
	d.stop()
	if cfg.state != "" {
		switch err := d.writeCheckpoint(); err {
		case nil:
			fmt.Fprintf(stdout, "fstraced: state checkpointed to %s\n", cfg.state)
		case errCkptFinished:
			fmt.Fprintln(stdout, "fstraced: run complete; checkpoint not needed")
		default:
			fmt.Fprintf(os.Stderr, "fstraced: final checkpoint: %v\n", err)
		}
	}
	fmt.Fprintln(stdout, "fstraced: stopped")
	return 0
}
