// Command fstrace generates a synthetic 4.2 BSD file system trace using
// one of the three machine profiles from the paper (A5, E3, C4) and writes
// it in the binary trace format (or, with -text, the human-readable text
// format).
//
// A comma-separated profile list generates each machine's trace and merges
// them, with identifier remapping, into one stream — the shared file
// server's view of the workload.
//
// Usage:
//
//	fstrace -profile A5 -duration 8h -seed 1 -o a5.trace
//	fstrace -profile C4 -duration 2h -text -o c4.txt
//	fstrace -profile A5,E3,C4 -o server.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/workload"
)

func main() {
	var (
		profile  = flag.String("profile", "A5", "machine profile (A5, E3, or C4), or a comma-separated list to merge")
		seed     = flag.Int64("seed", 1, "random seed (same seed, same trace)")
		duration = flag.Duration("duration", 8*time.Hour, "simulated time span")
		scale    = flag.Float64("scale", 1.0, "user population multiplier")
		out      = flag.String("o", "trace.bin", "output file")
		text     = flag.Bool("text", false, "write the text format instead of binary")
		diurnal  = flag.Bool("diurnal", false, "apply a day/night load cycle (use with -duration 24h or more)")
		quiet    = flag.Bool("q", false, "suppress the summary")
	)
	flag.Parse()

	profiles := strings.Split(*profile, ",")
	var res *workload.Result
	var sources [][]trace.Event
	for _, name := range profiles {
		r, err := workload.Generate(workload.Config{
			Profile:   strings.TrimSpace(name),
			Seed:      *seed,
			Duration:  trace.Time(duration.Milliseconds()),
			UserScale: *scale,
			Diurnal:   *diurnal,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "fstrace:", err)
			os.Exit(1)
		}
		res = r
		sources = append(sources, r.Events)
	}
	if len(sources) > 1 {
		res = &workload.Result{Events: trace.Merge(sources...), Profile: res.Profile}
	}

	if *text {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fstrace:", err)
			os.Exit(1)
		}
		if err := trace.WriteText(f, res.Events); err != nil {
			fmt.Fprintln(os.Stderr, "fstrace:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "fstrace:", err)
			os.Exit(1)
		}
	} else if err := trace.WriteFile(*out, res.Events); err != nil {
		fmt.Fprintln(os.Stderr, "fstrace:", err)
		os.Exit(1)
	}

	if !*quiet {
		var c trace.Counts
		for _, e := range res.Events {
			c.Add(e)
		}
		if len(sources) > 1 {
			fmt.Printf("wrote %s: %d merged profiles (%s), %v simulated each\n",
				*out, len(sources), *profile, *duration)
		} else {
			fmt.Printf("wrote %s: profile %s (%s), %d users, %v simulated\n",
				*out, res.Profile.Name, res.Profile.Machine, res.Profile.Users(), *duration)
		}
		fmt.Printf("%d events:", c.Total)
		for k := trace.KindCreate; k <= trace.KindExec; k++ {
			fmt.Printf(" %s %d (%.1f%%)", k, c.ByKind[k], 100*c.Fraction(k))
		}
		fmt.Println()
		if len(sources) == 1 {
			fmt.Printf("kernel moved %d bytes read, %d bytes written\n",
				res.KernelStats.BytesRead, res.KernelStats.BytesWritten)
		}
	}
}
