// Command fstrace generates a synthetic 4.2 BSD file system trace using
// one of the three machine profiles from the paper (A5, E3, C4) and writes
// it in the binary trace format (or, with -text, the human-readable text
// format).
//
// A comma-separated profile list generates each machine's trace and merges
// them, with identifier remapping, into one stream — the shared file
// server's view of the workload.
//
// -shards N splits a profile's (scaled) user population into N
// independent shards that generate concurrently on all cores and merge
// into one time-ordered stream. Events flow from the generators through
// the merge straight into the output file, so memory stays bounded no
// matter how long the trace or how large the fleet: the trace is never
// materialized.
//
// Usage:
//
//	fstrace -profile A5 -duration 8h -seed 1 -o a5.trace
//	fstrace -profile C4 -duration 2h -text -o c4.txt
//	fstrace -profile A5,E3,C4 -o server.trace
//	fstrace -profile A5 -scale 16 -shards 8 -o fleet.trace
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"bsdtrace/internal/obs"
	"bsdtrace/internal/trace"
	"bsdtrace/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fstrace:", err)
		os.Exit(1)
	}
}

// eventWriter is the sink both output formats share: binary via
// trace.Writer, text one formatted line per event.
type eventWriter struct {
	bin    *trace.Writer
	txt    *bufio.Writer
	counts trace.Counts
}

func (w *eventWriter) write(e trace.Event) error {
	w.counts.Add(e)
	if w.bin != nil {
		return w.bin.Write(e)
	}
	if _, err := w.txt.WriteString(e.String()); err != nil {
		return err
	}
	return w.txt.WriteByte('\n')
}

func (w *eventWriter) flush() error {
	if w.bin != nil {
		return w.bin.Flush()
	}
	return w.txt.Flush()
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fstrace", flag.ContinueOnError)
	var (
		profile  = fs.String("profile", "A5", "machine profile (A5, E3, or C4), or a comma-separated list to merge")
		seed     = fs.Int64("seed", 1, "random seed (same seed, same trace)")
		duration = fs.Duration("duration", 8*time.Hour, "simulated time span")
		scale    = fs.Float64("scale", 1.0, "user population multiplier")
		shards   = fs.Int("shards", 1, "generate the population as N concurrent shards (deterministic per seed+N)")
		out      = fs.String("o", "trace.bin", "output file")
		text     = fs.Bool("text", false, "write the text format instead of binary")
		v2       = fs.Bool("v2", false, "write the checkpointed version-2 binary framing (damage-resilient)")
		ckpt     = fs.Int("checkpoint", 0, "with -v2, records per resync checkpoint (0 = default)")
		lenient  = fs.Bool("lenient", false, "repair damaged spill streams on the merge path instead of failing")
		diurnal  = fs.Bool("diurnal", false, "apply a day/night load cycle (use with -duration 24h or more)")
		quiet    = fs.Bool("q", false, "suppress the summary")
		manifest = fs.String("manifest", "", "write the run manifest (config, stage spans, metrics) to this file")
		progress = fs.Bool("progress", false, "live per-stage progress line on stderr (TTY only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}

	reg := obs.NewRegistry()
	reg.SetEnabled(*manifest != "" || *progress)
	var prog *obs.Progress
	if *progress {
		prog = obs.StartProgress(os.Stderr, reg)
	}
	defer prog.Stop()

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := &eventWriter{}
	switch {
	case *text:
		w.txt = bufio.NewWriterSize(f, 1<<16)
	case *v2:
		w.bin = trace.NewWriterV2(f, *ckpt)
	default:
		w.bin = trace.NewWriter(f)
	}

	cfg := func(name string) workload.Config {
		return workload.Config{
			Profile:   strings.TrimSpace(name),
			Seed:      *seed,
			Duration:  trace.Time(duration.Milliseconds()),
			UserScale: *scale,
			Shards:    *shards,
			Diurnal:   *diurnal,
		}
	}

	profiles := strings.Split(*profile, ",")
	var res *workload.Result
	if len(profiles) == 1 {
		// Single machine (possibly sharded): generate straight into the
		// output file.
		name := strings.TrimSpace(profiles[0])
		sink := w.write
		var sp *obs.Span
		if reg.Enabled() {
			sp = reg.StartSpan("generate/" + name)
			sink = func(e trace.Event) error { sp.AddOut(1); return w.write(e) }
		}
		if res, err = workload.GenerateStream(cfg(profiles[0]), sink); err != nil {
			return err
		}
		sp.End()
		workload.PublishStats(reg, "kernel."+name, res.KernelStats)
	} else {
		// Several machines: each generates into a spill file, then a
		// k-way merge streams them into the output with identifier
		// remapping. Memory stays bounded by the merge's one-event-per-
		// source buffer.
		spillDir, err := os.MkdirTemp("", "fstrace-merge")
		if err != nil {
			return err
		}
		defer os.RemoveAll(spillDir)
		sources := make([]trace.Source, len(profiles))
		for i, name := range profiles {
			path := filepath.Join(spillDir, fmt.Sprintf("m%d.trace", i))
			if res, err = generateToFile(cfg(name), path, reg); err != nil {
				return err
			}
			sf, err := os.Open(path)
			if err != nil {
				return err
			}
			defer sf.Close()
			r, err := trace.NewReader(sf)
			if err != nil {
				return err
			}
			sources[i] = r
		}
		var merged trace.Source = trace.NewMergeSource(sources...)
		var ls *trace.LenientSource
		if *lenient {
			ls = trace.NewLenientSource(merged)
			merged = ls
		}
		merged = reg.Instrument("merge", merged)
		for {
			e, err := merged.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			if err := w.write(e); err != nil {
				return err
			}
		}
		if ls != nil {
			if trunc := ls.Truncated(); trunc != nil {
				fmt.Fprintf(os.Stderr, "fstrace: merge truncated at decode error: %v\n", trunc)
			}
			if st := ls.Stats(); !st.Zero() {
				fmt.Fprintf(os.Stderr, "fstrace: degraded merge: repaired: %v\n", st)
			}
			obs.PublishRepair(reg, "repair.merge", ls.Stats())
		}
	}

	if err := w.flush(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	if reg.Enabled() {
		c := w.counts
		reg.Counter("events.total").Set(c.Total)
		for k := trace.KindCreate; k <= trace.KindExec; k++ {
			reg.Counter("events." + k.String()).Set(c.ByKind[k])
		}
		if st, err := os.Stat(*out); err == nil {
			reg.Counter("output.bytes").Set(st.Size())
		}
	}
	if *manifest != "" {
		m := reg.Manifest(obs.RunInfo{
			Command: "fstrace",
			Seed:    *seed,
			Config: map[string]string{
				"profile":  *profile,
				"duration": duration.String(),
				"scale":    fmt.Sprintf("%g", *scale),
				"shards":   fmt.Sprintf("%d", *shards),
				"text":     fmt.Sprintf("%t", *text),
				"v2":       fmt.Sprintf("%t", *v2),
				"lenient":  fmt.Sprintf("%t", *lenient),
				"diurnal":  fmt.Sprintf("%t", *diurnal),
			},
		})
		if err := m.WriteFile(*manifest); err != nil {
			return err
		}
	}

	if !*quiet {
		c := w.counts
		if len(profiles) > 1 {
			fmt.Fprintf(stdout, "wrote %s: %d merged profiles (%s), %v simulated each\n",
				*out, len(profiles), *profile, *duration)
		} else {
			fmt.Fprintf(stdout, "wrote %s: profile %s (%s), %d users, %v simulated\n",
				*out, res.Profile.Name, res.Profile.Machine, res.Profile.Users(), *duration)
		}
		fmt.Fprintf(stdout, "%d events:", c.Total)
		for k := trace.KindCreate; k <= trace.KindExec; k++ {
			fmt.Fprintf(stdout, " %s %d (%.1f%%)", k, c.ByKind[k], 100*c.Fraction(k))
		}
		fmt.Fprintln(stdout)
		if len(profiles) == 1 {
			fmt.Fprintf(stdout, "kernel moved %d bytes read, %d bytes written\n",
				res.KernelStats.BytesRead, res.KernelStats.BytesWritten)
		}
	}
	return nil
}

// generateToFile streams one machine's trace into a binary spill file,
// under a per-profile generation span when observation is on.
func generateToFile(cfg workload.Config, path string, reg *obs.Registry) (*workload.Result, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := trace.NewWriter(f)
	sink := w.Write
	var sp *obs.Span
	if reg.Enabled() {
		sp = reg.StartSpan("generate/" + cfg.Profile)
		sink = func(e trace.Event) error { sp.AddOut(1); return w.Write(e) }
	}
	res, err := workload.GenerateStream(cfg, sink)
	if err != nil {
		f.Close()
		return nil, err
	}
	sp.End()
	workload.PublishStats(reg, "kernel."+cfg.Profile, res.KernelStats)
	if err := w.Flush(); err != nil {
		f.Close()
		return nil, err
	}
	return res, f.Close()
}
