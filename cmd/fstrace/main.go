// Command fstrace generates a synthetic 4.2 BSD file system trace using
// one of the three machine profiles from the paper (A5, E3, C4) and writes
// it in the binary trace format (or, with -text, the human-readable text
// format).
//
// A comma-separated profile list generates each machine's trace and merges
// them, with identifier remapping, into one stream — the shared file
// server's view of the workload.
//
// Usage:
//
//	fstrace -profile A5 -duration 8h -seed 1 -o a5.trace
//	fstrace -profile C4 -duration 2h -text -o c4.txt
//	fstrace -profile A5,E3,C4 -o server.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fstrace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fstrace", flag.ContinueOnError)
	var (
		profile  = fs.String("profile", "A5", "machine profile (A5, E3, or C4), or a comma-separated list to merge")
		seed     = fs.Int64("seed", 1, "random seed (same seed, same trace)")
		duration = fs.Duration("duration", 8*time.Hour, "simulated time span")
		scale    = fs.Float64("scale", 1.0, "user population multiplier")
		out      = fs.String("o", "trace.bin", "output file")
		text     = fs.Bool("text", false, "write the text format instead of binary")
		diurnal  = fs.Bool("diurnal", false, "apply a day/night load cycle (use with -duration 24h or more)")
		quiet    = fs.Bool("q", false, "suppress the summary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}

	profiles := strings.Split(*profile, ",")
	var res *workload.Result
	var sources [][]trace.Event
	for _, name := range profiles {
		r, err := workload.Generate(workload.Config{
			Profile:   strings.TrimSpace(name),
			Seed:      *seed,
			Duration:  trace.Time(duration.Milliseconds()),
			UserScale: *scale,
			Diurnal:   *diurnal,
		})
		if err != nil {
			return err
		}
		res = r
		sources = append(sources, r.Events)
	}
	if len(sources) > 1 {
		res = &workload.Result{Events: trace.Merge(sources...), Profile: res.Profile}
	}

	if *text {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := trace.WriteText(f, res.Events); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	} else if err := trace.WriteFile(*out, res.Events); err != nil {
		return err
	}

	if !*quiet {
		var c trace.Counts
		for _, e := range res.Events {
			c.Add(e)
		}
		if len(sources) > 1 {
			fmt.Fprintf(stdout, "wrote %s: %d merged profiles (%s), %v simulated each\n",
				*out, len(sources), *profile, *duration)
		} else {
			fmt.Fprintf(stdout, "wrote %s: profile %s (%s), %d users, %v simulated\n",
				*out, res.Profile.Name, res.Profile.Machine, res.Profile.Users(), *duration)
		}
		fmt.Fprintf(stdout, "%d events:", c.Total)
		for k := trace.KindCreate; k <= trace.KindExec; k++ {
			fmt.Fprintf(stdout, " %s %d (%.1f%%)", k, c.ByKind[k], 100*c.Fraction(k))
		}
		fmt.Fprintln(stdout)
		if len(sources) == 1 {
			fmt.Fprintf(stdout, "kernel moved %d bytes read, %d bytes written\n",
				res.KernelStats.BytesRead, res.KernelStats.BytesWritten)
		}
	}
	return nil
}
