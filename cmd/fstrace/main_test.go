package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"bsdtrace/internal/trace"
)

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	for _, args := range [][]string{
		{"-profile", "nope"},          // unknown machine profile
		{"-bogus"},                    // unknown flag
		{"-duration", "not-a-time"},   // unparsable duration
		{"stray-positional-argument"}, // no positional args accepted
		{"-o", t.TempDir(), "-q"},     // output path is a directory
		{"-profile", "A5,nope", "-q"}, // bad profile inside a merge list
	} {
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%q) accepted", args)
		}
	}
}

// The binary path: whatever fstrace writes, trace.ReadFile reads back
// verbatim, and the summary describes it.
func TestRunBinaryRoundTrip(t *testing.T) {
	out := filepath.Join(t.TempDir(), "a5.trace")
	var buf bytes.Buffer
	if err := run([]string{"-profile", "A5", "-duration", "5m", "-seed", "3", "-o", out}, &buf); err != nil {
		t.Fatal(err)
	}
	events, err := trace.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty trace written")
	}
	for i := 1; i < len(events); i++ {
		if events[i].Time < events[i-1].Time {
			t.Fatalf("event %d out of order", i)
		}
	}
	summary := buf.String()
	for _, want := range []string{"wrote " + out, "profile A5", "events:", "kernel moved"} {
		if !strings.Contains(summary, want) {
			t.Errorf("summary missing %q in %q", want, summary)
		}
	}

	// Same seed, same trace — the determinism the -seed flag promises.
	out2 := filepath.Join(t.TempDir(), "again.trace")
	if err := run([]string{"-profile", "A5", "-duration", "5m", "-seed", "3", "-o", out2, "-q"}, &buf); err != nil {
		t.Fatal(err)
	}
	events2, err := trace.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, events2) {
		t.Error("same seed produced different traces")
	}
}

// The text path: -text output parses back to the same events the binary
// format carries.
func TestRunTextMatchesBinary(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "t.bin")
	txt := filepath.Join(dir, "t.txt")
	var buf bytes.Buffer
	if err := run([]string{"-profile", "C4", "-duration", "5m", "-seed", "7", "-o", bin, "-q"}, &buf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-profile", "C4", "-duration", "5m", "-seed", "7", "-text", "-o", txt, "-q"}, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("-q still printed: %q", buf.String())
	}
	binEvents, err := trace.ReadFile(bin)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(txt)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	txtEvents, err := trace.ReadText(f)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(binEvents, txtEvents) {
		t.Errorf("text trace (%d events) differs from binary (%d events)", len(txtEvents), len(binEvents))
	}
}

// The -v2 path: the checkpointed framing carries the same events as the
// version-1 encoding, and the file really is version 2.
func TestRunV2MatchesV1(t *testing.T) {
	dir := t.TempDir()
	v1 := filepath.Join(dir, "t1.bin")
	v2 := filepath.Join(dir, "t2.bin")
	var buf bytes.Buffer
	if err := run([]string{"-profile", "C4", "-duration", "5m", "-seed", "7", "-o", v1, "-q"}, &buf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-profile", "C4", "-duration", "5m", "-seed", "7", "-v2", "-checkpoint", "1000", "-o", v2, "-q"}, &buf); err != nil {
		t.Fatal(err)
	}
	e1, err := trace.ReadFile(v1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(v2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != 2 {
		t.Fatalf("-v2 wrote version %d", r.Version())
	}
	e2, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e1, e2) {
		t.Errorf("v2 trace (%d events) differs from v1 (%d events)", len(e2), len(e1))
	}
	if !r.Skipped().Zero() {
		t.Errorf("undamaged v2 trace reported skips: %v", r.Skipped())
	}
}

// The merge path: a profile list produces one time-ordered stream and a
// merged-summary line.
func TestRunMergesProfiles(t *testing.T) {
	out := filepath.Join(t.TempDir(), "server.trace")
	var buf bytes.Buffer
	if err := run([]string{"-profile", "A5,E3", "-duration", "5m", "-o", out}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2 merged profiles") {
		t.Errorf("merge summary missing: %q", buf.String())
	}
	merged, err := trace.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	single := filepath.Join(t.TempDir(), "a5.trace")
	if err := run([]string{"-profile", "A5", "-duration", "5m", "-o", single, "-q"}, &buf); err != nil {
		t.Fatal(err)
	}
	a5, err := trace.ReadFile(single)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) <= len(a5) {
		t.Errorf("merged trace has %d events, single A5 has %d", len(merged), len(a5))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].Time < merged[i-1].Time {
			t.Fatalf("merged event %d out of order", i)
		}
	}
}
