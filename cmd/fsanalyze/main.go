// Command fsanalyze runs the paper's Section-5 reference-pattern analysis
// over one or more trace files and prints Tables III-V, the §3.1
// inter-event intervals, the sharing extension, and Figures 1-4.
//
// Usage:
//
//	fsanalyze a5.trace e3.trace c4.trace
//	fsanalyze -only tableV a5.trace
//	fsanalyze -validate a5.trace
//	fsanalyze -text c4.txt            # text-format input
//	fsanalyze -top 10 a5.trace        # busiest files
//	fsanalyze -from 1h -to 2h a5.trace  # analyze one window
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"bsdtrace/internal/analyzer"
	"bsdtrace/internal/report"
	"bsdtrace/internal/trace"
)

type options struct {
	only     string
	validate bool
	text     bool
	top      int
	from, to time.Duration
}

func main() {
	var opts options
	flag.StringVar(&opts.only, "only", "", "print only one result: tableIII, tableIV, tableV, intervals, sharing, fig1..fig4")
	flag.BoolVar(&opts.validate, "validate", false, "validate the trace(s) and exit")
	flag.BoolVar(&opts.text, "text", false, "read the text trace format instead of binary")
	flag.IntVar(&opts.top, "top", 0, "also list the N busiest files per trace")
	flag.DurationVar(&opts.from, "from", 0, "analyze only events at or after this offset")
	flag.DurationVar(&opts.to, "to", 0, "analyze only events before this offset (0 = end of trace)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: fsanalyze [flags] trace.bin...")
		os.Exit(2)
	}
	if err := run(os.Stdout, flag.Args(), opts); err != nil {
		fmt.Fprintln(os.Stderr, "fsanalyze:", err)
		os.Exit(1)
	}
}

func load(path string, text bool) ([]trace.Event, error) {
	if text {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.ReadText(f)
	}
	return trace.ReadFile(path)
}

func run(w io.Writer, paths []string, opts options) error {
	tr := report.Traces{}
	var allEvents [][]trace.Event
	for _, path := range paths {
		events, err := load(path, opts.text)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if opts.from > 0 || opts.to > 0 {
			to := trace.Time(opts.to.Milliseconds())
			if opts.to == 0 && len(events) > 0 {
				to = events[len(events)-1].Time + 1
			}
			events = trace.Window(events, trace.Time(opts.from.Milliseconds()), to)
		}
		if opts.validate {
			errs, unclosed := trace.Validate(events)
			for _, e := range errs {
				fmt.Fprintf(w, "%s: %v\n", path, e)
			}
			fmt.Fprintf(w, "%s: %d events, %d validation errors, %d unclosed opens\n",
				path, len(events), len(errs), unclosed)
			continue
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		tr.Names = append(tr.Names, name)
		tr.Analyses = append(tr.Analyses, analyzer.Analyze(events, analyzer.Options{}))
		allEvents = append(allEvents, events)
	}
	if opts.validate {
		return nil
	}

	want := func(name string) bool {
		return opts.only == "" || strings.EqualFold(opts.only, name)
	}
	if want("tableIII") {
		report.TableIII(tr).Render(w)
	}
	if want("tableIV") {
		report.TableIV(tr).Render(w)
	}
	if want("tableV") {
		report.TableV(tr).Render(w)
	}
	if want("intervals") {
		report.EventIntervalTable(tr).Render(w)
	}
	if want("sharing") {
		report.SharingTable(tr).Render(w)
	}
	if want("fig1") {
		for _, c := range report.Figure1(tr) {
			c.Render(w)
		}
	}
	if want("fig2") {
		for _, c := range report.Figure2(tr) {
			c.Render(w)
		}
	}
	if want("fig3") {
		report.Figure3(tr).Render(w)
	}
	if want("fig4") {
		for _, c := range report.Figure4(tr) {
			c.Render(w)
		}
	}

	if opts.top > 0 {
		for i, events := range allEvents {
			t := &report.Table{
				Title:  fmt.Sprintf("Busiest files in %s (top %d by opens+execs).", tr.Names[i], opts.top),
				Header: []string{"File ID", "Opens", "Execs", "Bytes moved", "Last size", "Shared"},
				Note: "Files are identified only by trace id, as in the 1985 traces. The " +
					"megabyte-scale entries at the top are the administrative files of the " +
					"paper's Figure 2 tail; the heavily executed ones are shared commands.",
			}
			for _, f := range analyzer.TopFiles(events, opts.top) {
				shared := "no"
				if f.Users > 1 {
					shared = "yes"
				}
				t.AddRow(fmt.Sprintf("%d", f.File), report.Count(f.Opens), report.Count(f.Execs),
					report.Count(f.Bytes), report.Size(f.LastSize), shared)
			}
			t.Render(w)
		}
	}
	return nil
}
