// Command fsanalyze runs the paper's Section-5 reference-pattern analysis
// over one or more trace files and prints Tables III-V, the §3.1
// inter-event intervals, the sharing extension, and Figures 1-4.
//
// Binary traces are consumed as streams: each file is read once, event by
// event, through the analyzer's incremental state machine, so the trace
// never needs to fit in memory.
//
// Usage:
//
//	fsanalyze a5.trace e3.trace c4.trace
//	fsanalyze -only tableV a5.trace
//	fsanalyze -validate a5.trace
//	fsanalyze -text c4.txt            # text-format input
//	fsanalyze -top 10 a5.trace        # busiest files
//	fsanalyze -from 1h -to 2h a5.trace  # analyze one window
//
// Foreign traces import through the adapt package. Their class decides
// which half of the metric battery applies: strace logs carry real
// open/close structure and get the full Section-5 analysis, while block
// and page traces only support the transfer-level sections.
//
//	fsanalyze -format strace app.strace
//	fsanalyze -format blockcsv volume.csv
//	fsanalyze -format pageref refs.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"bsdtrace/internal/analyzer"
	"bsdtrace/internal/obs"
	"bsdtrace/internal/report"
	"bsdtrace/internal/trace"
	"bsdtrace/internal/trace/adapt"
	"bsdtrace/internal/xfer"
)

type options struct {
	only     string
	format   string
	validate bool
	text     bool
	lenient  bool
	top      int
	from, to time.Duration
	manifest string
	progress bool
}

func main() {
	var opts options
	flag.StringVar(&opts.only, "only", "", "print only one result: tableIII, tableIV, tableV, intervals, sharing, fig1..fig4, transfers")
	flag.StringVar(&opts.format, "format", "bsd", "trace format: bsd, blockcsv, pageref, strace")
	flag.BoolVar(&opts.validate, "validate", false, "validate the trace(s) and exit")
	flag.BoolVar(&opts.text, "text", false, "read the text trace format instead of binary")
	flag.BoolVar(&opts.lenient, "lenient", false, "repair damaged traces and analyze what survives instead of failing on partial ingest")
	flag.IntVar(&opts.top, "top", 0, "also list the N busiest files per trace")
	flag.DurationVar(&opts.from, "from", 0, "analyze only events at or after this offset")
	flag.DurationVar(&opts.to, "to", 0, "analyze only events before this offset (0 = end of trace)")
	flag.StringVar(&opts.manifest, "manifest", "", "write the run manifest (config, stage spans, metrics) to this file")
	flag.BoolVar(&opts.progress, "progress", false, "live per-stage progress line on stderr (TTY only)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: fsanalyze [flags] trace.bin...")
		os.Exit(2)
	}
	if err := run(os.Stdout, flag.Args(), opts); err != nil {
		fmt.Fprintln(os.Stderr, "fsanalyze:", err)
		os.Exit(1)
	}
}

// open returns a stream over one trace file. Binary traces stream straight
// off the file; the text format is line-oriented and small, so it is read
// whole and replayed from memory. The returned Reader is non-nil for
// binary input, so the caller can check Skipped() after the stream ends.
func open(path string, opts options) (trace.Source, *trace.Reader, io.Closer, error) {
	var src trace.Source
	var rdr *trace.Reader
	var closer io.Closer
	if opts.text {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, nil, err
		}
		events, err := trace.ReadText(f)
		f.Close()
		if err != nil {
			return nil, nil, nil, err
		}
		src = trace.NewSliceSource(events)
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, nil, err
		}
		r, err := trace.NewReader(f)
		if err != nil {
			f.Close()
			return nil, nil, nil, err
		}
		src, rdr, closer = r, r, f
	}
	if opts.from > 0 || opts.to > 0 {
		to := trace.Time(math.MaxInt64)
		if opts.to > 0 {
			to = trace.Time(opts.to.Milliseconds())
		}
		src = trace.WindowSource(src, trace.Time(opts.from.Milliseconds()), to)
	}
	return src, rdr, closer, nil
}

// ingestDamage enforces the partial-ingest contract once a stream has
// been consumed: a strict run fails on any skipped bytes (non-zero exit
// from main), a lenient run reports the damage budget to stderr and
// carries on with what survived.
func ingestDamage(path string, rdr *trace.Reader, ls *trace.LenientSource, lenient bool) error {
	var skip trace.SkipStats
	if rdr != nil {
		skip = rdr.Skipped()
	}
	if !lenient {
		if !skip.Zero() {
			return fmt.Errorf("%s: partial ingest (%v); rerun with -lenient to repair and continue", path, skip)
		}
		return nil
	}
	if ls == nil {
		return nil
	}
	if trunc := ls.Truncated(); trunc != nil {
		fmt.Fprintf(os.Stderr, "fsanalyze: %s: stream truncated at decode error: %v\n", path, trunc)
	}
	if st := ls.Stats(); !st.Zero() || !skip.Zero() {
		fmt.Fprintf(os.Stderr, "fsanalyze: %s: degraded ingest: %v; repaired: %v\n", path, skip, st)
	}
	return nil
}

// want reports whether the named section should print under -only.
func (o options) want(name string) bool {
	return o.only == "" || strings.EqualFold(o.only, name)
}

func run(w io.Writer, paths []string, opts options) error {
	if opts.format == "" {
		opts.format = "bsd"
	}
	format, err := adapt.ParseFormat(opts.format)
	if err != nil {
		return err
	}
	if opts.only != "" && analyzer.SectionMetrics(opts.only) == nil {
		return fmt.Errorf("unknown section %q", opts.only)
	}
	reg := obs.NewRegistry()
	reg.SetEnabled(opts.manifest != "" || opts.progress)
	var prog *obs.Progress
	if opts.progress {
		prog = obs.StartProgress(os.Stderr, reg)
	}
	defer prog.Stop()
	writeManifest := func() error {
		if opts.manifest == "" {
			return nil
		}
		m := reg.Manifest(obs.RunInfo{
			Command: "fsanalyze",
			Config: map[string]string{
				"traces":   strings.Join(paths, ","),
				"only":     opts.only,
				"format":   format.String(),
				"validate": fmt.Sprintf("%t", opts.validate),
				"text":     fmt.Sprintf("%t", opts.text),
				"lenient":  fmt.Sprintf("%t", opts.lenient),
				"top":      fmt.Sprintf("%d", opts.top),
				"from":     opts.from.String(),
				"to":       opts.to.String(),
			},
		})
		return m.WriteFile(opts.manifest)
	}

	if format != adapt.FormatBSD {
		if err := runForeign(w, paths, format, opts, reg); err != nil {
			return err
		}
		return writeManifest()
	}

	tr := report.Traces{}
	var tops []*analyzer.TopAccum
	for _, path := range paths {
		src, rdr, closer, err := open(path, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))

		if opts.validate {
			src = reg.Instrument("validate/"+name, src)
			v := trace.NewValidator(0)
			var n int
			for {
				e, err := src.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					return fmt.Errorf("%s: %w", path, err)
				}
				v.Check(e)
				n++
			}
			unclosed := v.Finish()
			for _, e := range v.Errs() {
				fmt.Fprintf(w, "%s: %v\n", path, e)
			}
			if fb := v.FirstBad(); fb != nil {
				fmt.Fprintf(w, "%s: first failing event: %s\n", path, fb)
			}
			c := v.Stats()
			var kinds []string
			for k := trace.KindCreate; int(k) <= trace.NumKinds; k++ {
				kinds = append(kinds, fmt.Sprintf("%d %s", c.ByKind[k], k))
			}
			fmt.Fprintf(w, "%s: seen %s\n", path, strings.Join(kinds, ", "))
			fmt.Fprintf(w, "%s: %d events, %d validation errors, %d unclosed opens\n",
				path, n, len(v.Errs()), unclosed)
			if reg.Enabled() {
				reg.Counter("validate." + name + ".events").Set(int64(n))
				reg.Counter("validate." + name + ".errors").Set(int64(len(v.Errs())))
				reg.Counter("validate." + name + ".unclosed").Set(int64(unclosed))
			}
			if closer != nil {
				closer.Close()
			}
			continue
		}

		var ls *trace.LenientSource
		if opts.lenient {
			ls = trace.NewLenientSource(src)
			src = ls
		}
		src = reg.Instrument("analyze/"+name, src)

		// One pass feeds the analyzer and, when asked for, the busiest-file
		// accumulator.
		s := analyzer.NewStream(analyzer.Options{})
		var top *analyzer.TopAccum
		if opts.top > 0 {
			top = analyzer.NewTopAccum()
		}
		for {
			e, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			s.Feed(e)
			if top != nil {
				top.Feed(e)
			}
		}
		if closer != nil {
			closer.Close()
		}
		if err := ingestDamage(path, rdr, ls, opts.lenient); err != nil {
			return err
		}
		if rdr != nil {
			obs.PublishSkip(reg, "skip."+name, rdr.Skipped())
		}
		if ls != nil {
			obs.PublishRepair(reg, "repair."+name, ls.Stats())
		}
		tr.Names = append(tr.Names, name)
		tr.Analyses = append(tr.Analyses, s.Finish())
		tops = append(tops, top)
	}
	if opts.validate {
		return writeManifest()
	}

	renderSections(w, tr, tops, opts)
	return writeManifest()
}

// renderSections prints the logical battery (and any -top listings) for
// analyzed logical-class traces.
func renderSections(w io.Writer, tr report.Traces, tops []*analyzer.TopAccum, opts options) {
	want := opts.want
	if want("tableIII") {
		report.TableIII(tr).Render(w)
	}
	if want("tableIV") {
		report.TableIV(tr).Render(w)
	}
	if want("tableV") {
		report.TableV(tr).Render(w)
	}
	if want("intervals") {
		report.EventIntervalTable(tr).Render(w)
	}
	if want("sharing") {
		report.SharingTable(tr).Render(w)
	}
	if want("fig1") {
		for _, c := range report.Figure1(tr) {
			c.Render(w)
		}
	}
	if want("fig2") {
		for _, c := range report.Figure2(tr) {
			c.Render(w)
		}
	}
	if want("fig3") {
		report.Figure3(tr).Render(w)
	}
	if want("fig4") {
		for _, c := range report.Figure4(tr) {
			c.Render(w)
		}
	}

	if opts.top > 0 {
		for i, top := range tops {
			t := &report.Table{
				Title:  fmt.Sprintf("Busiest files in %s (top %d by opens+execs).", tr.Names[i], opts.top),
				Header: []string{"File ID", "Opens", "Execs", "Bytes moved", "Last size", "Shared"},
				Note: "Files are identified only by trace id, as in the 1985 traces. The " +
					"megabyte-scale entries at the top are the administrative files of the " +
					"paper's Figure 2 tail; the heavily executed ones are shared commands.",
			}
			for _, f := range top.Top(opts.top) {
				shared := "no"
				if f.Users > 1 {
					shared = "yes"
				}
				t.AddRow(fmt.Sprintf("%d", f.File), report.Count(f.Opens), report.Count(f.Execs),
					report.Count(f.Bytes), report.Size(f.LastSize), shared)
			}
			t.Render(w)
		}
	}
}

// runForeign analyzes foreign traces imported through the adapt package.
// The adapter's class gates the battery: logical-class imports (strace)
// get the full Section-5 analysis, block- and page-class imports only
// the transfer-level sections — asking for a logical section fails with
// analyzer.ErrUnsupportedClass instead of printing numbers whose
// open/close structure is adapter scaffolding.
func runForeign(w io.Writer, paths []string, format adapt.Format, opts options, reg *obs.Registry) error {
	if opts.text {
		return fmt.Errorf("-text applies only to -format bsd")
	}
	if opts.lenient {
		return fmt.Errorf("-lenient applies only to -format bsd (foreign adapters fail on damaged lines)")
	}
	class := format.Class()
	if opts.only != "" {
		if err := analyzer.CheckSection(opts.only, class); err != nil {
			return err
		}
	}
	if opts.top > 0 && class != trace.ClassLogical {
		return fmt.Errorf("-top needs logical structure: %w",
			&analyzer.UnsupportedClassError{Metric: "busiest files", Class: class})
	}

	tr := report.Traces{}
	var (
		names []string
		tops  []*analyzer.TopAccum
		sums  []xfer.Summary
		stats []adapt.Stats
	)
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		asrc, err := adapt.NewSource(format, f)
		if err != nil {
			f.Close()
			return err
		}
		var src trace.Source = asrc
		if opts.from > 0 || opts.to > 0 {
			to := trace.Time(math.MaxInt64)
			if opts.to > 0 {
				to = trace.Time(opts.to.Milliseconds())
			}
			src = trace.WindowSource(src, trace.Time(opts.from.Milliseconds()), to)
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		src = reg.Instrument("analyze/"+name, src)

		if opts.validate {
			v := trace.NewValidator(0)
			var n int
			for {
				e, err := src.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					f.Close()
					return fmt.Errorf("%s: %w", path, err)
				}
				v.Check(e)
				n++
			}
			f.Close()
			unclosed := v.Finish()
			for _, e := range v.Errs() {
				fmt.Fprintf(w, "%s: %v\n", path, e)
			}
			st := asrc.Stats()
			fmt.Fprintf(w, "%s: %s import: %s\n", path, format, st.String())
			fmt.Fprintf(w, "%s: %d events, %d validation errors, %d unclosed opens\n",
				path, n, len(v.Errs()), unclosed)
			continue
		}

		// One pass feeds the tape builder (every class) and, for logical
		// imports, the Section-5 analyzer.
		tb := xfer.NewTapeBuilder()
		var s *analyzer.Stream
		var top *analyzer.TopAccum
		if class == trace.ClassLogical {
			s = analyzer.NewStream(analyzer.Options{})
			if opts.top > 0 {
				top = analyzer.NewTopAccum()
			}
		}
		for {
			e, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				f.Close()
				return fmt.Errorf("%s: %w", path, err)
			}
			tb.Add(e)
			if s != nil {
				s.Feed(e)
			}
			if top != nil {
				top.Feed(e)
			}
		}
		f.Close()
		tape, err := tb.Finish()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if s != nil {
			tr.Names = append(tr.Names, name)
			tr.Analyses = append(tr.Analyses, s.Finish())
			tops = append(tops, top)
		}
		sums = append(sums, xfer.Summarize(tape))
		stats = append(stats, asrc.Stats())
		names = append(names, name)
	}
	if opts.validate {
		return nil
	}

	if class == trace.ClassLogical {
		renderSections(w, tr, tops, opts)
	}
	if opts.want("transfers") {
		report.TransferSummaryTable(names, sums).Render(w)
	}
	if opts.only == "" {
		report.AdapterStatsTable(names, stats).Render(w)
	}
	return nil
}
