// Command fsanalyze runs the paper's Section-5 reference-pattern analysis
// over one or more trace files and prints Tables III-V, the §3.1
// inter-event intervals, the sharing extension, and Figures 1-4.
//
// Binary traces are consumed as streams: each file is read once, event by
// event, through the analyzer's incremental state machine, so the trace
// never needs to fit in memory.
//
// Usage:
//
//	fsanalyze a5.trace e3.trace c4.trace
//	fsanalyze -only tableV a5.trace
//	fsanalyze -validate a5.trace
//	fsanalyze -text c4.txt            # text-format input
//	fsanalyze -top 10 a5.trace        # busiest files
//	fsanalyze -from 1h -to 2h a5.trace  # analyze one window
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"bsdtrace/internal/analyzer"
	"bsdtrace/internal/report"
	"bsdtrace/internal/trace"
)

type options struct {
	only     string
	validate bool
	text     bool
	top      int
	from, to time.Duration
}

func main() {
	var opts options
	flag.StringVar(&opts.only, "only", "", "print only one result: tableIII, tableIV, tableV, intervals, sharing, fig1..fig4")
	flag.BoolVar(&opts.validate, "validate", false, "validate the trace(s) and exit")
	flag.BoolVar(&opts.text, "text", false, "read the text trace format instead of binary")
	flag.IntVar(&opts.top, "top", 0, "also list the N busiest files per trace")
	flag.DurationVar(&opts.from, "from", 0, "analyze only events at or after this offset")
	flag.DurationVar(&opts.to, "to", 0, "analyze only events before this offset (0 = end of trace)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: fsanalyze [flags] trace.bin...")
		os.Exit(2)
	}
	if err := run(os.Stdout, flag.Args(), opts); err != nil {
		fmt.Fprintln(os.Stderr, "fsanalyze:", err)
		os.Exit(1)
	}
}

// open returns a stream over one trace file. Binary traces stream straight
// off the file; the text format is line-oriented and small, so it is read
// whole and replayed from memory.
func open(path string, opts options) (trace.Source, io.Closer, error) {
	var src trace.Source
	var closer io.Closer
	if opts.text {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		events, err := trace.ReadText(f)
		f.Close()
		if err != nil {
			return nil, nil, err
		}
		src = trace.NewSliceSource(events)
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		r, err := trace.NewReader(f)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		src, closer = r, f
	}
	if opts.from > 0 || opts.to > 0 {
		to := trace.Time(math.MaxInt64)
		if opts.to > 0 {
			to = trace.Time(opts.to.Milliseconds())
		}
		src = trace.WindowSource(src, trace.Time(opts.from.Milliseconds()), to)
	}
	return src, closer, nil
}

func run(w io.Writer, paths []string, opts options) error {
	tr := report.Traces{}
	var tops []*analyzer.TopAccum
	for _, path := range paths {
		src, closer, err := open(path, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}

		if opts.validate {
			v := trace.NewValidator(0)
			var n int
			for {
				e, err := src.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					return fmt.Errorf("%s: %w", path, err)
				}
				v.Check(e)
				n++
			}
			unclosed := v.Finish()
			for _, e := range v.Errs() {
				fmt.Fprintf(w, "%s: %v\n", path, e)
			}
			fmt.Fprintf(w, "%s: %d events, %d validation errors, %d unclosed opens\n",
				path, n, len(v.Errs()), unclosed)
			if closer != nil {
				closer.Close()
			}
			continue
		}

		// One pass feeds the analyzer and, when asked for, the busiest-file
		// accumulator.
		s := analyzer.NewStream(analyzer.Options{})
		var top *analyzer.TopAccum
		if opts.top > 0 {
			top = analyzer.NewTopAccum()
		}
		for {
			e, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			s.Feed(e)
			if top != nil {
				top.Feed(e)
			}
		}
		if closer != nil {
			closer.Close()
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		tr.Names = append(tr.Names, name)
		tr.Analyses = append(tr.Analyses, s.Finish())
		tops = append(tops, top)
	}
	if opts.validate {
		return nil
	}

	want := func(name string) bool {
		return opts.only == "" || strings.EqualFold(opts.only, name)
	}
	if want("tableIII") {
		report.TableIII(tr).Render(w)
	}
	if want("tableIV") {
		report.TableIV(tr).Render(w)
	}
	if want("tableV") {
		report.TableV(tr).Render(w)
	}
	if want("intervals") {
		report.EventIntervalTable(tr).Render(w)
	}
	if want("sharing") {
		report.SharingTable(tr).Render(w)
	}
	if want("fig1") {
		for _, c := range report.Figure1(tr) {
			c.Render(w)
		}
	}
	if want("fig2") {
		for _, c := range report.Figure2(tr) {
			c.Render(w)
		}
	}
	if want("fig3") {
		report.Figure3(tr).Render(w)
	}
	if want("fig4") {
		for _, c := range report.Figure4(tr) {
			c.Render(w)
		}
	}

	if opts.top > 0 {
		for i, top := range tops {
			t := &report.Table{
				Title:  fmt.Sprintf("Busiest files in %s (top %d by opens+execs).", tr.Names[i], opts.top),
				Header: []string{"File ID", "Opens", "Execs", "Bytes moved", "Last size", "Shared"},
				Note: "Files are identified only by trace id, as in the 1985 traces. The " +
					"megabyte-scale entries at the top are the administrative files of the " +
					"paper's Figure 2 tail; the heavily executed ones are shared commands.",
			}
			for _, f := range top.Top(opts.top) {
				shared := "no"
				if f.Users > 1 {
					shared = "yes"
				}
				t.AddRow(fmt.Sprintf("%d", f.File), report.Count(f.Opens), report.Count(f.Execs),
					report.Count(f.Bytes), report.Size(f.LastSize), shared)
			}
			t.Render(w)
		}
	}
	return nil
}
