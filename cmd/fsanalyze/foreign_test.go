package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bsdtrace/internal/analyzer"
)

// The committed adapter fixtures double as CLI test inputs.
func fixturePath(name string) string {
	return filepath.Join("..", "..", "internal", "trace", "adapt", "testdata", name)
}

func TestRunForeignBlockCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{fixturePath("msr-sample.csv")}, options{format: "blockcsv"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Transfer summary.", "Foreign-trace import."} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// No logical section may render for a block-class trace.
	for _, banned := range []string{"Table III.", "Table IV.", "Table V."} {
		if strings.Contains(out, banned) {
			t.Errorf("block-class output rendered logical section %q", banned)
		}
	}
}

func TestRunForeignLogicalSectionRefused(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, []string{fixturePath("msr-sample.csv")}, options{format: "blockcsv", only: "tableV"})
	if !errors.Is(err, analyzer.ErrUnsupportedClass) {
		t.Fatalf("run(-only tableV, blockcsv) = %v, want ErrUnsupportedClass", err)
	}
	var uce *analyzer.UnsupportedClassError
	if !errors.As(err, &uce) {
		t.Fatalf("error %v is not a typed UnsupportedClassError", err)
	}
	// -top interprets opens, so it is refused too.
	err = run(&buf, []string{fixturePath("zipf-sample.txt")}, options{format: "pageref", top: 5})
	if !errors.Is(err, analyzer.ErrUnsupportedClass) {
		t.Fatalf("run(-top, pageref) = %v, want ErrUnsupportedClass", err)
	}
}

func TestRunForeignStraceFullBattery(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{fixturePath("strace-sample.txt")}, options{format: "strace"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Strace imports carry real logical structure: the full battery plus
	// the transfer and import tables all render.
	for _, want := range []string{"Table III.", "Table V.", "Transfer summary.", "Foreign-trace import."} {
		if !strings.Contains(out, want) {
			t.Errorf("strace output missing %q", want)
		}
	}
}

func TestRunForeignOnlyTransfers(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{fixturePath("zipf-sample.txt")}, options{format: "pageref", only: "transfers"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Transfer summary.") {
		t.Error("-only transfers printed no transfer summary")
	}
	if strings.Contains(out, "Foreign-trace import.") {
		t.Error("-only transfers printed more than the requested section")
	}
}

func TestRunForeignValidate(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{fixturePath("msr-sample.csv")}, options{format: "blockcsv", validate: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0 validation errors") {
		t.Errorf("adapter stream failed validation:\n%s", buf.String())
	}
}

func TestRunForeignMalformed(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, []string{fixturePath("msr-truncated.csv")}, options{format: "blockcsv"})
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("malformed fixture error = %v, want positioned line-2 failure", err)
	}
}

func TestRunUnknownFormatAndSection(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{os.DevNull}, options{format: "parquet"}); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run(&buf, []string{os.DevNull}, options{only: "tableIX"}); err == nil {
		t.Error("unknown section accepted")
	}
}
