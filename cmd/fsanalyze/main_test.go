package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/workload"
)

func writeTestTrace(t *testing.T, text bool) string {
	t.Helper()
	res, err := workload.Generate(workload.Config{Profile: "C4", Seed: 8, Duration: 20 * trace.Minute})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "c4.trace")
	if text {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteText(f, res.Events); err != nil {
			t.Fatal(err)
		}
		f.Close()
	} else if err := trace.WriteFile(path, res.Events); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAnalysis(t *testing.T) {
	path := writeTestTrace(t, false)
	var buf bytes.Buffer
	if err := run(&buf, []string{path}, options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table III.", "Table IV.", "Table V.", "Figure 3.", "Cross-user"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunTextInput(t *testing.T) {
	path := writeTestTrace(t, true)
	var buf bytes.Buffer
	if err := run(&buf, []string{path}, options{text: true, only: "tableIII"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table III.") {
		t.Errorf("text input analysis failed:\n%s", buf.String())
	}
	// Binary loader on a text file errors cleanly.
	if err := run(&buf, []string{path}, options{}); err == nil {
		t.Errorf("binary loader accepted text input")
	}
}

func TestRunValidate(t *testing.T) {
	path := writeTestTrace(t, false)
	var buf bytes.Buffer
	if err := run(&buf, []string{path}, options{validate: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0 validation errors") {
		t.Errorf("validate output: %s", buf.String())
	}
}

func TestRunTopFiles(t *testing.T) {
	path := writeTestTrace(t, false)
	var buf bytes.Buffer
	if err := run(&buf, []string{path}, options{only: "tableIII", top: 5}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Busiest files") {
		t.Errorf("top files table missing")
	}
}

func TestRunWindow(t *testing.T) {
	path := writeTestTrace(t, false)
	var full, half bytes.Buffer
	if err := run(&full, []string{path}, options{only: "tableIII"}); err != nil {
		t.Fatal(err)
	}
	if err := run(&half, []string{path}, options{only: "tableIII", from: 5 * time.Minute, to: 15 * time.Minute}); err != nil {
		t.Fatal(err)
	}
	if full.String() == half.String() {
		t.Errorf("windowing had no effect")
	}
	if !strings.Contains(half.String(), "Table III.") {
		t.Errorf("windowed analysis failed")
	}
}

func TestRunMissingFile(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"/nonexistent.trace"}, options{}); err == nil {
		t.Errorf("missing file accepted")
	}
}

// writeDamagedV2Trace writes a checkpointed trace with one segment
// destroyed, so strict ingestion sees a partial read and lenient
// ingestion repairs around it.
func writeDamagedV2Trace(t *testing.T) string {
	t.Helper()
	res, err := workload.Generate(workload.Config{Profile: "C4", Seed: 8, Duration: 20 * trace.Minute})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := trace.NewWriterV2(&buf, 512)
	for _, e := range res.Events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for i := len(data) / 2; i < len(data)/2+16; i++ {
		data[i] = 0xAA
	}
	path := filepath.Join(t.TempDir(), "damaged.trace")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunPartialIngestExit: the satellite exit-path contract — a damaged
// trace fails a strict run and succeeds (with repairs) under -lenient.
func TestRunPartialIngestExit(t *testing.T) {
	path := writeDamagedV2Trace(t)
	var buf bytes.Buffer
	err := run(&buf, []string{path}, options{only: "tableIII"})
	if err == nil {
		t.Fatal("strict run accepted a partial ingest")
	}
	if !strings.Contains(err.Error(), "partial ingest") || !strings.Contains(err.Error(), "-lenient") {
		t.Fatalf("partial-ingest error not actionable: %v", err)
	}
	buf.Reset()
	if err := run(&buf, []string{path}, options{only: "tableIII", lenient: true}); err != nil {
		t.Fatalf("lenient run failed: %v", err)
	}
	if !strings.Contains(buf.String(), "Table III.") {
		t.Errorf("lenient run produced no analysis:\n%s", buf.String())
	}
}

// TestRunLenientTruncatedV1: a truncated v1 stream (no checkpoints to
// resync at) still analyzes under -lenient, ending at the damage.
func TestRunLenientTruncatedV1(t *testing.T) {
	full := writeTestTrace(t, false)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "truncated.trace")
	if err := os.WriteFile(path, data[:len(data)*3/4], 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, []string{path}, options{only: "tableIII"}); err == nil {
		t.Fatal("strict run accepted a truncated v1 trace")
	}
	buf.Reset()
	if err := run(&buf, []string{path}, options{only: "tableIII", lenient: true}); err != nil {
		t.Fatalf("lenient run failed: %v", err)
	}
	if !strings.Contains(buf.String(), "Table III.") {
		t.Errorf("lenient run produced no analysis:\n%s", buf.String())
	}
}

// TestRunValidateReportsFirstBad: -validate shows the offending record
// verbatim and the per-kind tally.
func TestRunValidateReportsFirstBad(t *testing.T) {
	events := []trace.Event{
		{Time: 0, Kind: trace.KindOpen, OpenID: 1, File: 1, Mode: trace.ReadOnly, Size: 10},
		{Time: 5, Kind: trace.KindClose, OpenID: 42, NewPos: 7},
	}
	path := filepath.Join(t.TempDir(), "bad.trace")
	if err := trace.WriteFile(path, events); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, []string{path}, options{validate: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "first failing event") || !strings.Contains(out, "close") {
		t.Errorf("first failing event not reported verbatim:\n%s", out)
	}
	if !strings.Contains(out, "1 open") || !strings.Contains(out, "1 close") {
		t.Errorf("per-kind tally missing:\n%s", out)
	}
	if !strings.Contains(out, "1 validation errors") {
		t.Errorf("validation summary missing:\n%s", out)
	}
}
