package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/workload"
)

func writeTestTrace(t *testing.T, text bool) string {
	t.Helper()
	res, err := workload.Generate(workload.Config{Profile: "C4", Seed: 8, Duration: 20 * trace.Minute})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "c4.trace")
	if text {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteText(f, res.Events); err != nil {
			t.Fatal(err)
		}
		f.Close()
	} else if err := trace.WriteFile(path, res.Events); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAnalysis(t *testing.T) {
	path := writeTestTrace(t, false)
	var buf bytes.Buffer
	if err := run(&buf, []string{path}, options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table III.", "Table IV.", "Table V.", "Figure 3.", "Cross-user"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunTextInput(t *testing.T) {
	path := writeTestTrace(t, true)
	var buf bytes.Buffer
	if err := run(&buf, []string{path}, options{text: true, only: "tableIII"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table III.") {
		t.Errorf("text input analysis failed:\n%s", buf.String())
	}
	// Binary loader on a text file errors cleanly.
	if err := run(&buf, []string{path}, options{}); err == nil {
		t.Errorf("binary loader accepted text input")
	}
}

func TestRunValidate(t *testing.T) {
	path := writeTestTrace(t, false)
	var buf bytes.Buffer
	if err := run(&buf, []string{path}, options{validate: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0 validation errors") {
		t.Errorf("validate output: %s", buf.String())
	}
}

func TestRunTopFiles(t *testing.T) {
	path := writeTestTrace(t, false)
	var buf bytes.Buffer
	if err := run(&buf, []string{path}, options{only: "tableIII", top: 5}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Busiest files") {
		t.Errorf("top files table missing")
	}
}

func TestRunWindow(t *testing.T) {
	path := writeTestTrace(t, false)
	var full, half bytes.Buffer
	if err := run(&full, []string{path}, options{only: "tableIII"}); err != nil {
		t.Fatal(err)
	}
	if err := run(&half, []string{path}, options{only: "tableIII", from: 5 * time.Minute, to: 15 * time.Minute}); err != nil {
		t.Fatal(err)
	}
	if full.String() == half.String() {
		t.Errorf("windowing had no effect")
	}
	if !strings.Contains(half.String(), "Table III.") {
		t.Errorf("windowed analysis failed")
	}
}

func TestRunMissingFile(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"/nonexistent.trace"}, options{}); err == nil {
		t.Errorf("missing file accepted")
	}
}
