package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bsdtrace/internal/cachesim"
)

func TestBuildTapeForeign(t *testing.T) {
	path := filepath.Join("..", "..", "internal", "trace", "adapt", "testdata", "msr-sample.csv")
	tape, err := buildTape(path, "blockcsv", false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tape.Transfers) == 0 {
		t.Fatal("foreign tape carries no transfers")
	}

	// A fitted Table VI sweep over the imported tape renders without NaN.
	sizes := cachesim.FitCacheSizes(tape, 4096, 4)
	f, err := os.Create(filepath.Join(t.TempDir(), "vi.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if err := runSweep(f, tape, "tableVI", 4, nil); err != nil {
		t.Fatal(err)
	}
	f.Close()
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if strings.Contains(out, "NaN") {
		t.Errorf("fitted sweep output contains NaN:\n%s", out)
	}
	if len(sizes) == 0 || sizes[len(sizes)-1] < cachesim.Footprint(tape, 4096) {
		t.Errorf("fitted ladder %v does not reach footprint %d", sizes, cachesim.Footprint(tape, 4096))
	}

	// Unknown formats and lenient foreign builds are refused.
	if _, err := buildTape(path, "parquet", false, nil); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := buildTape(path, "blockcsv", true, nil); err == nil {
		t.Error("lenient foreign build accepted")
	}
}
