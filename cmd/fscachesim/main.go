// Command fscachesim runs the paper's Section-6 disk block cache
// simulations over a trace file.
//
// Single runs:
//
//	fscachesim -cache 4M -block 4K -policy delayed a5.trace
//	fscachesim -cache 390K -policy flush -flush 30s a5.trace
//
// Paper sweeps and ablations:
//
//	fscachesim -sweep tableVI a5.trace     # cache size x write policy
//	fscachesim -sweep tableVII a5.trace    # block size x cache size
//	fscachesim -sweep fig7 a5.trace        # page-in simulated vs ignored
//	fscachesim -sweep replacement a5.trace # LRU vs FIFO vs Clock vs Random
//	fscachesim -sweep zoo a5.trace         # Figures 5-7 across the whole policy zoo
//	fscachesim -sweep tiers a5.trace       # RAM/flash/disk hierarchy with latency and wear
//	fscachesim -sweep flush a5.trace       # flush-back interval sweep
//
// Crash injection (the reliability side of the write-policy trade):
//
//	fscachesim -crash-sweep 64 a5.trace            # expected loss per policy
//	fscachesim -crash-at 2h -policy flush a5.trace # one crash instant
//
// Foreign traces import through the adapt package; every simulation
// consumes reconstructed transfers, so all of them run for any class.
// The paper's fixed cache-size ladder was chosen for the 1985 traces;
// -fit rescales it to the trace's own footprint:
//
//	fscachesim -format blockcsv -sweep tableVI -fit 6 volume.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"bsdtrace/internal/cachesim"
	"bsdtrace/internal/fault"
	"bsdtrace/internal/obs"
	"bsdtrace/internal/report"
	"bsdtrace/internal/trace"
	"bsdtrace/internal/trace/adapt"
	"bsdtrace/internal/xfer"
)

func parseSize(s string) (int64, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, strings.TrimSuffix(s, "K")
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

func main() {
	var (
		cache    = flag.String("cache", "4M", "cache size (e.g. 390K, 4M)")
		block    = flag.String("block", "4K", "block size")
		policy   = flag.String("policy", "delayed", "write policy: through, flush, delayed")
		flush    = flag.Duration("flush", 30*time.Second, "flush-back interval (with -policy flush)")
		replace  = flag.String("replace", "lru", "replacement: lru, fifo, clock, random, arc, 2q, slru, lirs, tinylfu")
		paging   = flag.Bool("paging", false, "simulate program page-in as whole-file reads")
		format   = flag.String("format", "bsd", "trace format: bsd, blockcsv, pageref, strace")
		sweep    = flag.String("sweep", "", "run a paper sweep instead: tableVI, tableVII, fig7, replacement, zoo, tiers, flush")
		fit      = flag.Int("fit", 0, "with -sweep tableVI/fig7: N-rung cache-size ladder fitted to the trace's footprint instead of the paper's sizes")
		crashN   = flag.Int("crash-sweep", 0, "sample N crash points; report expected loss per write policy at -cache/-block")
		crashAt  = flag.Duration("crash-at", 0, "report the data a crash at this trace time would lose (single run)")
		lenient  = flag.Bool("lenient", false, "repair damaged traces and simulate what survives instead of failing on partial ingest")
		manifest = flag.String("manifest", "", "write the run manifest (config, stage spans, metrics) to this file")
		progress = flag.Bool("progress", false, "live per-stage progress line on stderr (TTY only)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fscachesim [flags] trace.bin")
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	reg.SetEnabled(*manifest != "" || *progress)
	var prog *obs.Progress
	if *progress {
		prog = obs.StartProgress(os.Stderr, reg)
	}
	// finish closes out the run on every success path: stops the
	// progress line and writes the manifest when one was asked for.
	finish := func() {
		prog.Stop()
		if *manifest == "" {
			return
		}
		m := reg.Manifest(obs.RunInfo{
			Command: "fscachesim",
			Config: map[string]string{
				"trace":   flag.Arg(0),
				"cache":   *cache,
				"block":   *block,
				"policy":  *policy,
				"flush":   flush.String(),
				"replace": *replace,
				"paging":  fmt.Sprintf("%t", *paging),
				"format":  *format,
				"sweep":   *sweep,
				"fit":     fmt.Sprintf("%d", *fit),
				"lenient": fmt.Sprintf("%t", *lenient),
			},
		})
		if err := m.WriteFile(*manifest); err != nil {
			fmt.Fprintln(os.Stderr, "fscachesim:", err)
			os.Exit(1)
		}
	}

	// Reconstruct the transfer tape once, streaming the trace file event
	// by event (the raw events are never materialized); every
	// configuration below — single run or sweep — replays the same tape.
	tape, err := buildTape(flag.Arg(0), *format, *lenient, reg)
	if err != nil {
		prog.Stop()
		fmt.Fprintln(os.Stderr, "fscachesim:", err)
		os.Exit(1)
	}
	w := os.Stdout

	if *sweep != "" {
		if err := runSweep(w, tape, *sweep, *fit, reg); err != nil {
			prog.Stop()
			fmt.Fprintln(os.Stderr, "fscachesim:", err)
			os.Exit(1)
		}
		finish()
		return
	}

	cfg := cachesim.Config{SimulatePaging: *paging}
	if cfg.BlockSize, err = parseSize(*block); err != nil {
		fmt.Fprintln(os.Stderr, "fscachesim:", err)
		os.Exit(1)
	}
	if cfg.CacheSize, err = parseSize(*cache); err != nil {
		fmt.Fprintln(os.Stderr, "fscachesim:", err)
		os.Exit(1)
	}
	switch strings.ToLower(*policy) {
	case "through", "write-through", "wt":
		cfg.Write = cachesim.WriteThrough
	case "flush", "flush-back", "fb":
		cfg.Write = cachesim.FlushBack
		cfg.FlushInterval = trace.Time((*flush).Milliseconds())
	case "delayed", "delayed-write", "dw":
		cfg.Write = cachesim.DelayedWrite
	default:
		fmt.Fprintf(os.Stderr, "fscachesim: unknown policy %q\n", *policy)
		os.Exit(1)
	}
	if cfg.Replacement, err = cachesim.ParseReplacement(*replace); err != nil {
		fmt.Fprintln(os.Stderr, "fscachesim:", err)
		os.Exit(1)
	}

	if *crashN > 0 {
		if err := runCrashSweep(w, tape, cfg.BlockSize, cfg.CacheSize, *crashN, reg); err != nil {
			prog.Stop()
			fmt.Fprintln(os.Stderr, "fscachesim:", err)
			os.Exit(1)
		}
		finish()
		return
	}
	if *crashAt > 0 {
		if err := runCrashAt(w, tape, cfg, trace.Time((*crashAt).Milliseconds()), reg); err != nil {
			prog.Stop()
			fmt.Fprintln(os.Stderr, "fscachesim:", err)
			os.Exit(1)
		}
		finish()
		return
	}

	r, err := cachesim.SimulateTape(tape, cfg)
	if err != nil {
		prog.Stop()
		fmt.Fprintln(os.Stderr, "fscachesim:", err)
		os.Exit(1)
	}
	cachesim.PublishResults(reg, "sim", r)
	fmt.Fprintf(w, "cache %s, blocks %s, %v, %v replacement\n",
		report.Size(cfg.CacheSize), report.Size(cfg.BlockSize), cfg.Write, cfg.Replacement)
	fmt.Fprintf(w, "logical block accesses: %s (%s writes)\n",
		report.Count(r.LogicalAccesses), report.Pct(r.WriteFraction()))
	fmt.Fprintf(w, "disk I/Os: %s (%s reads + %s writes), miss ratio %s\n",
		report.Count(r.DiskIOs()), report.Count(r.DiskReads), report.Count(r.DiskWrites),
		report.Pct(r.MissRatio()))
	fmt.Fprintf(w, "dirty blocks that died in cache: %s (%s of dirtied)\n",
		report.Count(r.DirtyDiscarded), report.Pct(r.NeverWrittenFraction()))
	fmt.Fprintf(w, "blocks resident > %v: %s\n", r.Config.ResidencyThreshold, report.Pct(r.ResidencyOver))
	finish()
}

// buildTape streams a trace file into a transfer tape, under a
// tape-build span when observation is on. A strict build fails on any
// damage; a lenient one repairs the stream first and reports the
// budget to stderr. Foreign formats import through the adapt package:
// their transfers are faithful for every trace class, so the resulting
// tape feeds any simulation below.
func buildTape(path, format string, lenient bool, reg *obs.Registry) (*xfer.Tape, error) {
	ff, err := adapt.ParseFormat(format)
	if err != nil {
		return nil, err
	}
	if ff != adapt.FormatBSD {
		if lenient {
			return nil, fmt.Errorf("-lenient applies only to -format bsd (foreign adapters fail on damaged lines)")
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		src, err := adapt.NewSource(ff, f)
		if err != nil {
			return nil, err
		}
		tape, err := xfer.BuildTape(reg.Instrument("tape-build", src))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		tape.PublishMetrics(reg, "tape")
		return tape, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return nil, err
	}
	var src trace.Source = r
	var ls *trace.LenientSource
	if lenient {
		ls = trace.NewLenientSource(r)
		src = ls
	}
	src = reg.Instrument("tape-build", src)
	tape, err := xfer.BuildTape(src)
	if err != nil {
		if skip := r.Skipped(); !lenient && !skip.Zero() {
			// The reader skipped damage and the orphaned events it left
			// behind broke the tape build downstream.
			return nil, fmt.Errorf("malformed trace after partial ingest (%v): %v; rerun with -lenient to repair and continue", skip, err)
		}
		return nil, fmt.Errorf("malformed trace: %w", err)
	}
	if skip := r.Skipped(); !lenient && !skip.Zero() {
		return nil, fmt.Errorf("%s: partial ingest (%v); rerun with -lenient to repair and continue", path, skip)
	} else if lenient {
		if trunc := ls.Truncated(); trunc != nil {
			fmt.Fprintf(os.Stderr, "fscachesim: %s: stream truncated at decode error: %v\n", path, trunc)
		}
		if st := ls.Stats(); !st.Zero() || !skip.Zero() {
			fmt.Fprintf(os.Stderr, "fscachesim: %s: degraded ingest: %v; repaired: %v\n", path, skip, st)
		}
	}
	obs.PublishSkip(reg, "skip", r.Skipped())
	if ls != nil {
		obs.PublishRepair(reg, "repair", ls.Stats())
	}
	tape.PublishMetrics(reg, "tape")
	return tape, nil
}

func runSweep(w *os.File, tape *xfer.Tape, name string, fit int, reg *obs.Registry) error {
	// ladder picks the cache sizes a sweep runs at: the paper's fixed
	// ladder by default, or one fitted to the tape's footprint when the
	// trace (typically a foreign import) lives at a different scale.
	ladder := func() []int64 {
		if fit > 0 {
			return cachesim.FitCacheSizes(tape, 4096, fit)
		}
		return cachesim.PaperCacheSizes()
	}
	switch strings.ToLower(name) {
	case "tablevi", "vi":
		sizes := ladder()
		pols := cachesim.PaperPolicies()
		res, err := cachesim.PolicySweepTape(tape, 4096, sizes, pols)
		if err != nil {
			return err
		}
		for _, row := range res {
			cachesim.PublishResults(reg, "sim", row...)
		}
		report.TableVI(sizes, pols, res).Render(w)
		return report.Figure5(sizes, pols, res).Render(w)
	case "tablevii", "vii":
		res, err := cachesim.BlockSizeSweepTape(tape, cachesim.PaperBlockSizes(), cachesim.PaperBlockCacheSizes())
		if err != nil {
			return err
		}
		for _, row := range res.Results {
			cachesim.PublishResults(reg, "sim", row...)
		}
		report.TableVII(res).Render(w)
		return report.Figure6(res).Render(w)
	case "fig7", "paging":
		sizes := ladder()
		res, err := cachesim.PagingSweepTape(tape, 4096, sizes)
		if err != nil {
			return err
		}
		for _, pair := range res {
			cachesim.PublishResults(reg, "sim", pair[0], pair[1])
		}
		return report.Figure7(sizes, res).Render(w)
	case "replacement":
		res, err := cachesim.ReplacementSweepTape(tape, 4096, 2<<20, 1)
		if err != nil {
			return err
		}
		for _, rp := range []cachesim.Replacement{cachesim.LRU, cachesim.Clock, cachesim.FIFO, cachesim.Random} {
			cachesim.PublishResults(reg, "sim", res[rp])
		}
		t := &report.Table{
			Title:  "Ablation A1. Replacement policy at a 2-Mbyte delayed-write cache.",
			Header: []string{"Policy", "Disk I/Os", "Miss Ratio"},
			Note:   "The paper's simulator is LRU-only; this quantifies that choice.",
		}
		for _, rp := range []cachesim.Replacement{cachesim.LRU, cachesim.Clock, cachesim.FIFO, cachesim.Random} {
			r := res[rp]
			t.AddRow(rp.String(), report.Count(r.DiskIOs()), report.Pct(r.MissRatio()))
		}
		return t.Render(w)
	case "zoo":
		sizes := cachesim.PaperCacheSizes()
		res, err := cachesim.ZooSweepTape(tape, 4096, sizes, 1)
		if err != nil {
			return err
		}
		for _, row := range res {
			cachesim.PublishResults(reg, "sim", row...)
		}
		if err := report.ZooTable(sizes, res).Render(w); err != nil {
			return err
		}
		bres, err := cachesim.ZooBlockSizeSweepTape(tape, cachesim.PaperBlockSizes(), 2<<20, 1)
		if err != nil {
			return err
		}
		if err := report.ZooBlockTable(cachesim.PaperBlockSizes(), 2<<20, bres).Render(w); err != nil {
			return err
		}
		pres, err := cachesim.ZooPagingSweepTape(tape, 4096, sizes, 1)
		if err != nil {
			return err
		}
		return report.ZooPagingTable(sizes, pres).Render(w)
	case "tiers":
		res, err := cachesim.HierarchySimulateTapes([]*xfer.Tape{tape}, cachesim.HierarchyConfig{
			BlockSize: 4096,
			Tiers: []cachesim.Tier{
				{Name: "ram", Size: cachesim.UnixCacheSize, Replacement: cachesim.LRU,
					Write: cachesim.WriteThrough},
				{Name: "flash", Size: 4 << 20, Replacement: cachesim.ARC, Seed: 1,
					Write: cachesim.DelayedWrite,
					ReadLatency: trace.Millisecond, WriteLatency: 2 * trace.Millisecond,
					EnduranceWrites: 100_000},
				{Name: "disk", ReadLatency: 10 * trace.Millisecond,
					WriteLatency: 10 * trace.Millisecond},
			},
		})
		if err != nil {
			return err
		}
		t := &report.Table{
			Title:  "Three-tier hierarchy: 390-kbyte RAM over 4-Mbyte flash (ARC) over disk.",
			Header: []string{"Tier", "Size", "Reads", "Writes", "Hit Ratio", "Busy", "Max Wear"},
			Note: "The paper's diskless-workstation question with a flash tier in the " +
				"middle: each tier's read misses and write-backs become the traffic of " +
				"the tier below. Busy is device service time; Max Wear the heaviest " +
				"per-block write count (flash budget 100,000 writes).",
		}
		for i := range res.Tiers {
			tr := &res.Tiers[i]
			size := report.Size(tr.Size)
			if tr.Size <= 0 {
				size = "unbounded"
			}
			t.AddRow(tr.Name, size, report.Count(tr.Reads), report.Count(tr.Writes),
				report.Pct(tr.HitRatio()), tr.BusyTime.String(), report.Count(tr.MaxBlockWrites))
		}
		if err := t.Render(w); err != nil {
			return err
		}
		fmt.Fprintf(w, "end-to-end miss ratio %s; network blocks %s; disk I/Os %s\n\n",
			report.Pct(res.EndToEndMissRatio()), report.Count(res.NetworkBlocks()),
			report.Count(res.DiskReads()+res.DiskWrites()))
		return nil
	case "stack":
		r, err := cachesim.StackDistancesTape(tape, 4096)
		if err != nil {
			return err
		}
		if reg.Enabled() {
			reg.Counter("stack.distinct_blocks").Set(r.DistinctBlocks())
		}
		t := &report.Table{
			Title:  "One-pass LRU stack-distance analysis (4-kbyte blocks).",
			Header: []string{"Cache Size", "Reference Miss Ratio"},
			Note: "Mattson's algorithm: the pure LRU locality profile of the block " +
				"reference string, computed for all cache sizes in one pass. Unlike " +
				"Table VI this counts reference misses, not disk I/Os: it has no " +
				"write-backs, and cold whole-block overwrites count as misses here " +
				"but cost no disk read in the full simulator.",
		}
		for _, cs := range cachesim.PaperCacheSizes() {
			t.AddRow(report.Size(cs), report.Pct(r.MissRatio(cs)))
		}
		t.AddRow("distinct blocks", report.Count(r.DistinctBlocks()))
		return t.Render(w)
	case "flush":
		intervals := []trace.Time{
			1 * trace.Second, 5 * trace.Second, 30 * trace.Second,
			trace.Minute, 5 * trace.Minute, 15 * trace.Minute, trace.Hour,
		}
		res, err := cachesim.FlushIntervalSweepTape(tape, 4096, 2<<20, intervals)
		if err != nil {
			return err
		}
		cachesim.PublishResults(reg, "sim", res...)
		t := &report.Table{
			Title:  "Ablation A2. Flush-back interval sweep at a 2-Mbyte cache.",
			Header: []string{"Interval", "Disk Writes", "Miss Ratio"},
			Note: "Write-through is the interval->0 limit and delayed-write the " +
				"interval->infinity limit; the paper evaluates only 30 s and 5 min.",
		}
		for i, iv := range intervals {
			t.AddRow(iv.String(), report.Count(res[i].DiskWrites), report.Pct(res[i].MissRatio()))
		}
		return t.Render(w)
	}
	return fmt.Errorf("unknown sweep %q", name)
}

// runCrashSweep samples n crash points across the trace and reports, for
// each of the paper's write policies, what a crash would lose — one tape
// replay per policy, all points sampled in the same pass.
func runCrashSweep(w *os.File, tape *xfer.Tape, blockSize, cacheSize int64, n int, reg *obs.Registry) error {
	points := fault.Points(tape, n)
	pols := cachesim.PaperPolicies()
	reps, err := fault.PolicySweepTape(tape, blockSize, cacheSize, pols, points)
	if err != nil {
		return err
	}
	fault.PublishReports(reg, "crash", reps)
	report.Reliability(pols, reps, cacheSize, blockSize, len(points)).Render(w)
	return nil
}

// runCrashAt reports the loss of a single crash instant under one
// configuration.
func runCrashAt(w *os.File, tape *xfer.Tape, cfg cachesim.Config, at trace.Time, reg *obs.Registry) error {
	rep, err := fault.CrashReplayTape(tape, cfg, []trace.Time{at})
	if err != nil {
		return err
	}
	fault.PublishReports(reg, "crash", []*fault.Report{rep})
	p := rep.Points[0]
	fmt.Fprintf(w, "crash at %v under %v (cache %s, blocks %s):\n",
		p.Time, cfg.Write, report.Size(cfg.CacheSize), report.Size(cfg.BlockSize))
	fmt.Fprintf(w, "lost: %s in %s dirty blocks\n", report.Size(p.Bytes), report.Count(p.Blocks))
	if p.Blocks > 0 {
		fmt.Fprintf(w, "oldest lost data: %v unflushed; mean %v\n", p.MaxAge, p.MeanAge)
	}
	return nil
}
