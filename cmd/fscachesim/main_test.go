package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bsdtrace/internal/cachesim"
	"bsdtrace/internal/trace"
	"bsdtrace/internal/workload"
	"bsdtrace/internal/xfer"
)

func TestParseSize(t *testing.T) {
	cases := map[string]int64{
		"4096": 4096,
		"4K":   4096,
		"4k":   4096,
		"2M":   2 << 20,
		"390K": 390 << 10,
		" 1M ": 1 << 20,
	}
	for in, want := range cases {
		got, err := parseSize(in)
		if err != nil || got != want {
			t.Errorf("parseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "x", "4G4", "K"} {
		if _, err := parseSize(bad); err == nil {
			t.Errorf("parseSize(%q) accepted", bad)
		}
	}
}

func TestRunSweeps(t *testing.T) {
	res, err := workload.Generate(workload.Config{Profile: "A5", Seed: 6, Duration: 15 * trace.Minute})
	if err != nil {
		t.Fatal(err)
	}
	tape, err := xfer.NewTape(res.Events)
	if err != nil {
		t.Fatal(err)
	}
	// runSweep writes to an *os.File; use a temp file and read it back.
	for _, sweep := range []string{"tableVI", "tableVII", "fig7", "replacement", "zoo", "tiers", "flush", "stack"} {
		f, err := os.Create(filepath.Join(t.TempDir(), sweep+".txt"))
		if err != nil {
			t.Fatal(err)
		}
		if err := runSweep(f, tape, sweep, 0, nil); err != nil {
			t.Fatalf("%s: %v", sweep, err)
		}
		f.Close()
		data, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		if len(data) < 100 {
			t.Errorf("%s produced only %d bytes", sweep, len(data))
		}
		if strings.Contains(string(data), "NaN") {
			t.Errorf("%s output contains NaN", sweep)
		}
	}
	if err := runSweep(os.Stdout, tape, "nope", 0, nil); err == nil {
		t.Errorf("unknown sweep accepted")
	}
}

// TestBuildTapeDamaged: the satellite exit-path contract at the tape
// layer — strict builds fail on damage, lenient builds repair and finish.
func TestBuildTapeDamaged(t *testing.T) {
	res, err := workload.Generate(workload.Config{Profile: "A5", Seed: 6, Duration: 15 * trace.Minute})
	if err != nil {
		t.Fatal(err)
	}

	clean := filepath.Join(t.TempDir(), "clean.trace")
	if err := trace.WriteFile(clean, res.Events); err != nil {
		t.Fatal(err)
	}
	if _, err := buildTape(clean, "bsd", false, nil); err != nil {
		t.Fatalf("strict build failed on a clean trace: %v", err)
	}

	f, err := os.Create(filepath.Join(t.TempDir(), "damaged.trace"))
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewWriterV2(f, 512)
	for _, e := range res.Events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	for i := len(data) / 3; i < len(data)/3+16; i++ {
		data[i] ^= 0x55
	}
	if err := os.WriteFile(f.Name(), data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := buildTape(f.Name(), "bsd", false, nil); err == nil {
		t.Fatal("strict build accepted a damaged trace")
	} else if !strings.Contains(err.Error(), "-lenient") {
		t.Fatalf("strict error not actionable: %v", err)
	}
	tape, err := buildTape(f.Name(), "bsd", true, nil)
	if err != nil {
		t.Fatalf("lenient build failed: %v", err)
	}
	if _, err := cachesim.SimulateTape(tape, cachesim.Config{
		BlockSize: 4096, CacheSize: 2 << 20, Write: cachesim.DelayedWrite,
	}); err != nil {
		t.Fatalf("simulation over repaired tape failed: %v", err)
	}
}

func TestRunCrashSweepAndCrashAt(t *testing.T) {
	res, err := workload.Generate(workload.Config{Profile: "A5", Seed: 8, Duration: 15 * trace.Minute})
	if err != nil {
		t.Fatal(err)
	}
	tape, err := xfer.NewTape(res.Events)
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.Create(filepath.Join(t.TempDir(), "crash.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if err := runCrashSweep(f, tape, 4096, 2<<20, 16, nil); err != nil {
		t.Fatal(err)
	}
	if err := runCrashAt(f, tape, cachesim.Config{
		BlockSize: 4096, CacheSize: 2 << 20, Write: cachesim.DelayedWrite,
	}, 10*trace.Minute, nil); err != nil {
		t.Fatal(err)
	}
	f.Close()
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{
		"Reliability.", "Write-Through", "Delayed Write", "crash at 10m0s", "dirty blocks",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("crash output missing %q", want)
		}
	}
	if strings.Contains(out, "NaN") {
		t.Errorf("crash output contains NaN")
	}
}
