package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"
)

// TestRunFullReport drives the complete report path on short traces and
// checks every section appears.
func TestRunFullReport(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, reportConfig{duration: 20 * time.Minute, seed: 1, ablations: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table I.", "Table III.", "Table IV.", "Table V.",
		"Inter-event intervals", "Cross-user file sharing",
		"Figure 1(a)", "Figure 2(a)", "Figure 3.", "Figure 4(b)",
		"Table VI.", "Figure 5.", "Table VII.", "Figure 6.", "Figure 7.",
		"Block residency", "Reliability.", "Metadata I/O", "Disk space waste",
		"Shared file server", "Diskless workstations", "Working set W(T)",
		"Ablation A1.", "Ablation A2.", "Ablation A3.", "Ablation A4.",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// TestRunOnly checks section filtering.
func TestRunOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, reportConfig{duration: 10 * time.Minute, seed: 2, only: "tableV"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table V.") {
		t.Errorf("tableV missing")
	}
	if strings.Contains(out, "Table VI.") || strings.Contains(out, "Figure 3.") {
		t.Errorf("-only leaked other sections")
	}
}

// TestRunDataExport writes the CSV data set.
func TestRunDataExport(t *testing.T) {
	dir := t.TempDir() + "/data"
	var buf bytes.Buffer
	if err := run(&buf, reportConfig{duration: 10 * time.Minute, seed: 1, only: "tableIII", dataDir: dir}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 12 {
		t.Errorf("only %d CSV files written", len(entries))
	}
}

// TestRunDeterministic: same seed, same bytes.
func TestRunDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(&a, reportConfig{duration: 10 * time.Minute, seed: 3, only: "tableIV"}); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, reportConfig{duration: 10 * time.Minute, seed: 3, only: "tableIV"}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("report not deterministic")
	}
}

// TestRunStability exercises the seed-spread mode.
func TestRunStability(t *testing.T) {
	var buf bytes.Buffer
	if err := runStability(&buf, 10*time.Minute, 1, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Seed stability", "whole-file read accesses", "mean ± sd"} {
		if !strings.Contains(out, want) {
			t.Errorf("stability output missing %q", want)
		}
	}
}

// TestRunDegrade exercises the loss-sensitivity sweep: both tables
// render, the clean row carries a zero repair budget, and the lossy rows
// show the mangler actually discarding records.
func TestRunDegrade(t *testing.T) {
	var buf bytes.Buffer
	if err := runDegrade(&buf, 20*time.Minute, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Loss sensitivity", "Repair budget",
		"clean", "0.01%", "0.1%", "1%", "5%",
		"Write-Through", "Delayed Write",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("degrade output missing %q", want)
		}
	}
	if strings.Contains(out, "NaN") {
		t.Errorf("degrade output contains NaN")
	}
	// The clean baseline row must show an untouched repair budget —
	// the no-op guarantee surfacing in the report.
	budget := out[strings.Index(out, "Repair budget"):]
	for _, line := range strings.Split(budget, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 || fields[0] != "clean" {
			continue
		}
		// clean | events-in | lost | dropped | synthesized | rewritten | bytes unit
		for _, f := range fields[2:7] {
			if f != "0" {
				t.Errorf("clean repair-budget row not all-zero: %q", line)
				break
			}
		}
	}
}

// TestRunLenientFlagPassesClean: -lenient over undamaged spills is a
// no-op — the report renders the same sections as strict mode.
func TestRunLenientFlagPassesClean(t *testing.T) {
	var strict, lenient bytes.Buffer
	if err := run(&strict, reportConfig{duration: 10 * time.Minute, seed: 4, only: "tableIV"}); err != nil {
		t.Fatal(err)
	}
	if err := run(&lenient, reportConfig{duration: 10 * time.Minute, seed: 4, only: "tableIV", lenient: true}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(strict.Bytes(), lenient.Bytes()) {
		t.Errorf("-lenient changed the report over clean traces")
	}
}

// TestRunReliability renders the crash-injection section alone and
// checks the paper's qualitative ordering survives into the report:
// write-through is never vulnerable, and every policy column renders.
func TestRunReliability(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, reportConfig{duration: 20 * time.Minute, seed: 1, only: "reliability"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Reliability.", "Write-Through", "30 sec Flush", "5 min Flush", "Delayed Write",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("reliability section missing %q", want)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "Write-Through") && !strings.Contains(line, "0.0%") {
			t.Errorf("write-through row should be 0%% vulnerable: %q", line)
		}
	}
	if strings.Contains(out, "Table VI.") {
		t.Errorf("-only reliability leaked other sections")
	}
}
