package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
	"time"

	"bsdtrace/internal/obs"
)

// manifestGoldenPath is the committed canonical run manifest of the
// full 8-hour seed-1 report: every stage's event counts, every
// deterministic counter the pipeline publishes, every histogram's
// bucket counts. A regression anywhere in the pipeline — generator,
// merge, repair, tape builder, any cache sweep — moves one of these
// numbers and names itself in the diff.
const manifestGoldenPath = "../../docs/manifest-8h-seed1.json"

// goldenManifest runs the report pipeline with an enabled registry and
// returns the canonical (volatile-fields-stripped) manifest.
func goldenManifest(t *testing.T, w io.Writer, cfg reportConfig) *obs.Manifest {
	t.Helper()
	cfg.reg = obs.NewRegistry()
	cfg.reg.SetEnabled(true)
	if err := run(w, cfg); err != nil {
		t.Fatal(err)
	}
	return reportManifest(cfg).Canonical()
}

// TestManifestGolden regenerates the 8-hour seed-1 manifest and holds
// its deterministic surface to the committed golden file byte for
// byte. Regenerate with BSDTRACE_REGEN_MANIFEST=1 after an intentional
// pipeline change, and review the diff as part of the change.
func TestManifestGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("8-hour manifest regeneration skipped in -short mode")
	}
	m := goldenManifest(t, io.Discard, reportConfig{duration: 8 * time.Hour, seed: 1, ablations: true})
	got, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if os.Getenv("BSDTRACE_REGEN_MANIFEST") == "1" {
		if err := os.WriteFile(manifestGoldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", manifestGoldenPath)
		return
	}
	want, err := os.ReadFile(manifestGoldenPath)
	if err != nil {
		t.Fatalf("golden manifest: %v (regenerate with BSDTRACE_REGEN_MANIFEST=1)", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	gotLines := strings.Split(string(got), "\n")
	wantLines := strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
		if gotLines[i] != wantLines[i] {
			t.Fatalf("manifest drifted from %s at line %d:\n got: %q\nwant: %q",
				manifestGoldenPath, i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("manifest drifted from %s: %d lines generated, %d in golden",
		manifestGoldenPath, len(gotLines), len(wantLines))
}

// stripConfig drops the knobs map so manifests from deliberately
// different configurations (unsharded vs -shards 1) can be compared on
// their measured surface alone.
func stripConfig(m *obs.Manifest) *obs.Manifest {
	c := *m
	c.Config = nil
	return &c
}

// TestManifestShardInvariance: -shards 1 must produce the same
// canonical manifest — same stage event counts, same counters, same
// histogram buckets — as unsharded generation. This is the shard
// determinism contract restated over the full metrics surface, not
// just the rendered report.
func TestManifestShardInvariance(t *testing.T) {
	cfg := reportConfig{duration: 20 * time.Minute, seed: 1, only: "tableVI"}
	base := goldenManifest(t, io.Discard, cfg)
	cfg.shards = 1
	cfg.scale = 1
	sharded := goldenManifest(t, io.Discard, cfg)
	a, err := stripConfig(base).JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := stripConfig(sharded).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("-shards 1 changed the canonical manifest relative to unsharded generation:\n%s\nvs\n%s", a, b)
	}
}

// TestManifestRerunDeterminism: two runs at the same (seed, shards)
// must produce byte-identical canonical manifests even with sharded
// generation and parallel stage execution — scheduling may reorder the
// work, never the measurements.
func TestManifestRerunDeterminism(t *testing.T) {
	cfg := reportConfig{duration: 20 * time.Minute, seed: 1, only: "tableVI", shards: 2, scale: 1}
	first := goldenManifest(t, io.Discard, cfg)
	second := goldenManifest(t, io.Discard, cfg)
	a, err := first.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := second.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two identically configured runs produced different canonical manifests")
	}
}
