package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// foreignGolden pins the blockcsv foreign-mode report byte for byte: the
// import is deterministic (no seeds, no clocks), so the committed golden
// must reproduce exactly. Regenerate with BSDTRACE_REGEN_FIXTURES=1.
const foreignGolden = "testdata/foreign-blockcsv.golden.txt"

func foreignFixture(name string) string {
	return filepath.Join("..", "..", "internal", "trace", "adapt", "testdata", name)
}

func foreignBlockCSVReport(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	if err := runForeign(&buf, foreignFixture("msr-sample.csv"), "blockcsv", 6); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestRegenForeignGolden(t *testing.T) {
	if os.Getenv("BSDTRACE_REGEN_FIXTURES") != "1" {
		t.Skip("set BSDTRACE_REGEN_FIXTURES=1 to rewrite the foreign golden")
	}
	out := foreignBlockCSVReport(t)
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(foreignGolden, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestForeignGoldenBlockCSV holds the blockcsv report to the committed
// golden and asserts the class gate structurally: only transfer-level
// sections render, never the logical tables.
func TestForeignGoldenBlockCSV(t *testing.T) {
	out := foreignBlockCSVReport(t)

	for _, want := range []string{
		"block-class metrics",
		"Foreign-trace import.",
		"Transfer summary.",
		"Table VI analogue",
		"footprint",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("foreign report missing %q", want)
		}
	}
	// The logical battery must not render for a block-class trace.
	for _, banned := range []string{
		"Table III.", "Table IV.", "Table V.",
		"Figure 1.", "Figure 2.", "Figure 3.", "Figure 4.",
		"Sharing between users",
	} {
		if strings.Contains(out, banned) {
			t.Errorf("block-class report rendered logical content %q", banned)
		}
	}

	golden, err := os.ReadFile(foreignGolden)
	if err != nil {
		t.Fatalf("%v (regenerate with BSDTRACE_REGEN_FIXTURES=1)", err)
	}
	if out != string(golden) {
		t.Errorf("foreign report drifted from %s (regenerate with BSDTRACE_REGEN_FIXTURES=1 and review the diff)", foreignGolden)
	}

	// Same input must reproduce byte for byte within a run, too.
	if again := foreignBlockCSVReport(t); again != out {
		t.Error("foreign report is not deterministic across passes")
	}
}

// TestForeignStraceLogical: a logical-class import renders the Section-5
// tables alongside the transfer sections.
func TestForeignStraceLogical(t *testing.T) {
	var buf bytes.Buffer
	if err := runForeign(&buf, foreignFixture("strace-sample.txt"), "strace", 4); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"logical metrics and transfer metrics", "Table III.", "Table V.", "Transfer summary."} {
		if !strings.Contains(out, want) {
			t.Errorf("strace report missing %q", want)
		}
	}
}

func TestForeignRejectsBSD(t *testing.T) {
	var buf bytes.Buffer
	if err := runForeign(&buf, "whatever.trace", "bsd", 0); err == nil {
		t.Error("foreign mode accepted -format bsd")
	}
	if err := runForeign(&buf, foreignFixture("msr-truncated.csv"), "blockcsv", 0); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("malformed foreign input error = %v, want positioned line-2 failure", err)
	}
}
