package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"
)

// parsePctRows scans one rendered table: from the line beginning with
// title to the next blank line, it returns each data row (first field
// starts with a digit) as label -> the row's percentage cells in column
// order.
func parsePctRows(t *testing.T, out, title string) map[string][]string {
	t.Helper()
	rows := map[string][]string{}
	in := false
	for _, ln := range strings.Split(out, "\n") {
		if strings.HasPrefix(ln, title) {
			in = true
			continue
		}
		if !in {
			continue
		}
		if strings.TrimSpace(ln) == "" {
			break
		}
		fields := strings.Fields(ln)
		if len(fields) == 0 || fields[0][0] < '0' || fields[0][0] > '9' {
			continue
		}
		var label, pcts []string
		for _, f := range fields {
			if strings.HasSuffix(f, "%") {
				pcts = append(pcts, f)
			} else if len(pcts) == 0 {
				label = append(label, f)
			}
		}
		if len(pcts) > 0 {
			rows[strings.Join(label, " ")] = pcts
		}
	}
	if len(rows) == 0 {
		t.Fatalf("no data rows found under table %q", title)
	}
	return rows
}

const zooTableTitle = "Policy zoo: miss ratio vs. cache size"

// TestRunZoo drives -only zoo on a short trace: all three comparison
// tables render with every policy column, nothing else leaks, and the
// lru column agrees cell for cell with Table VI's delayed-write column
// from an identically seeded run — the LRU baseline cannot drift just
// because eight more policies ran beside it.
func TestRunZoo(t *testing.T) {
	var zoo bytes.Buffer
	if err := run(&zoo, reportConfig{duration: 10 * time.Minute, seed: 1, only: "zoo"}); err != nil {
		t.Fatal(err)
	}
	out := zoo.String()
	for _, want := range []string{
		zooTableTitle,
		"Policy zoo: disk I/Os vs. block size",
		"Policy zoo: miss ratio with paging simulated",
		"lru", "fifo", "clock", "random", "arc", "2q", "slru", "lirs", "tinylfu",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("zoo report missing %q", want)
		}
	}
	if strings.Contains(out, "Table VI.") || strings.Contains(out, "Figure 5.") {
		t.Error("-only zoo leaked other sections")
	}

	var six bytes.Buffer
	if err := run(&six, reportConfig{duration: 10 * time.Minute, seed: 1, only: "tableVI"}); err != nil {
		t.Fatal(err)
	}
	zooRows := parsePctRows(t, out, zooTableTitle)
	sixRows := parsePctRows(t, six.String(), "Table VI.")
	if len(zooRows) != len(sixRows) {
		t.Fatalf("zoo table has %d rows, Table VI %d", len(zooRows), len(sixRows))
	}
	for label, pcts := range sixRows {
		zp, ok := zooRows[label]
		if !ok {
			t.Errorf("zoo table missing row %q", label)
			continue
		}
		// Table VI's last column is delayed-write; the zoo's first is lru
		// (same policy, same write discipline, same seed).
		if zp[0] != pcts[len(pcts)-1] {
			t.Errorf("row %q: zoo lru %s, Table VI delayed-write %s", label, zp[0], pcts[len(pcts)-1])
		}
	}
}

// TestZooLRUColumnMatchesGolden regenerates the zoo comparison on the
// golden configuration (8-hour A5 trace, seed 1) and holds its lru
// column to the committed golden report's Table VI delayed-write
// column, byte for byte per cell.
func TestZooLRUColumnMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("8-hour zoo regeneration skipped in -short mode")
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden file: %v", err)
	}
	goldenRows := parsePctRows(t, string(golden), "Table VI.")

	var buf bytes.Buffer
	if err := run(&buf, reportConfig{duration: 8 * time.Hour, seed: 1, only: "zoo"}); err != nil {
		t.Fatal(err)
	}
	zooRows := parsePctRows(t, buf.String(), zooTableTitle)
	if len(zooRows) != len(goldenRows) {
		t.Fatalf("zoo table has %d rows, golden Table VI %d", len(zooRows), len(goldenRows))
	}
	for label, pcts := range goldenRows {
		zp, ok := zooRows[label]
		if !ok {
			t.Errorf("zoo table missing golden row %q", label)
			continue
		}
		if zp[0] != pcts[len(pcts)-1] {
			t.Errorf("row %q: zoo lru %s, golden delayed-write %s", label, zp[0], pcts[len(pcts)-1])
		}
	}
}
