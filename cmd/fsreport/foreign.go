package main

import (
	"fmt"
	"io"
	"os"

	"bsdtrace/internal/analyzer"
	"bsdtrace/internal/cachesim"
	"bsdtrace/internal/report"
	"bsdtrace/internal/trace"
	"bsdtrace/internal/trace/adapt"
	"bsdtrace/internal/xfer"
)

// runForeign reports on one foreign trace imported through the adapt
// package, instead of the synthetic fleet. The adapter's class gates the
// battery via the analyzer's metric sets: block- and page-class traces
// render only the transfer-level sections (import accounting, transfer
// summary, a footprint-fitted Table VI sweep) because their open/close
// events are adapter scaffolding; strace imports carry real logical
// structure and get the Section-5 tables too.
func runForeign(w io.Writer, path, formatName string, fit int) error {
	format, err := adapt.ParseFormat(formatName)
	if err != nil {
		return err
	}
	if format == adapt.FormatBSD {
		return fmt.Errorf("-input needs a foreign -format (blockcsv, pageref, strace); native traces go through fsanalyze/fscachesim")
	}
	if fit < 1 {
		fit = 6
	}
	class := format.Class()

	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	src, err := adapt.NewSource(format, f)
	if err != nil {
		return err
	}

	// One pass feeds the tape builder and, when the class supports it,
	// the Section-5 analyzer.
	tb := xfer.NewTapeBuilder()
	var s *analyzer.Stream
	if analyzer.LogicalMetrics.Supports(class) {
		s = analyzer.NewStream(analyzer.Options{})
	}
	for {
		e, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		tb.Add(e)
		if s != nil {
			s.Feed(e)
		}
	}
	tape, err := tb.Finish()
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}

	fmt.Fprintf(w, "Foreign-trace report: %s format, %s-class metrics\n", format, class)
	fmt.Fprintf(w, "Sections are gated by trace class: %s traces support %s only\n\n",
		class, supportedSets(class))

	name := path
	report.AdapterStatsTable([]string{name}, []adapt.Stats{src.Stats()}).Render(w)
	report.TransferSummaryTable([]string{name}, []xfer.Summary{xfer.Summarize(tape)}).Render(w)

	if s != nil {
		tr := report.Traces{Names: []string{name}, Analyses: []*analyzer.Analysis{s.Finish()}}
		report.TableIII(tr).Render(w)
		report.TableV(tr).Render(w)
	}

	// The Table VI experiment on the imported transfers, with the cache
	// ladder fitted to the trace's own footprint: foreign traces rarely
	// live at the 1985 traces' scale, and a fitted ladder keeps the sweep
	// in the regime where the miss ratio moves.
	sizes := cachesim.FitCacheSizes(tape, 4096, fit)
	pols := cachesim.PaperPolicies()
	res, err := cachesim.PolicySweepTape(tape, 4096, sizes, pols)
	if err != nil {
		return err
	}
	vi := report.TableVI(sizes, pols, res)
	vi.Title = "Table VI analogue: miss ratio vs. cache size and write policy (footprint-fitted ladder)."
	vi.Note = fmt.Sprintf("The paper's Table VI experiment replayed over the imported transfers "+
		"at 4-kbyte blocks. Cache sizes are fitted to the trace's %s footprint "+
		"rather than the paper's 390KB-16MB ladder.", report.Size(cachesim.Footprint(tape, 4096)))
	return vi.Render(w)
}

// supportedSets names the metric sets a class supports, for the report
// header.
func supportedSets(c trace.Class) string {
	if analyzer.LogicalMetrics.Supports(c) {
		return analyzer.LogicalMetrics.Name + " and " + analyzer.TransferMetrics.Name
	}
	return analyzer.TransferMetrics.Name
}
