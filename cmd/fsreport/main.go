// Command fsreport regenerates every table and figure in the paper's
// evaluation in one run: it generates synthetic traces for the three
// machine profiles (A5, E3, C4), runs the Section-5 reference-pattern
// analysis on all three, and runs the Section-6 cache simulations on A5
// (the paper reports cache results for A5 only; the three traces produce
// nearly indistinguishable results).
//
// The run is built for scale: each machine's trace is generated exactly
// once, streamed into a spill file in a temp directory, and every consumer
// — the reference-pattern analyzer, the transfer-tape builder, the
// fragmentation replay, the merged-server section — re-reads the spill
// file as a stream. No trace is ever materialized in memory, so -scale
// and -shards can push the fleet far past what a slice-of-events design
// could hold; -shards N additionally generates each machine's population
// as N concurrent shards merged into one deterministic stream. Every
// cache simulation replays the A5 transfer tape (xfer.Tape), built once
// during the analyzer's pass and shared by all configurations; -only runs
// only the simulations the requested item needs.
//
// Usage:
//
//	fsreport                      # full report, 8-hour traces
//	fsreport -duration 2h         # quicker
//	fsreport -only tableVI        # a single table or figure
//	fsreport -ablations           # include the beyond-the-paper ablations
//	fsreport -scale 16 -shards 8  # a 16x fleet, sharded generation
//	fsreport -cpuprofile cpu.pb.gz   # profile the run
//	fsreport -input volume.csv -format blockcsv  # report on a foreign trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"bsdtrace/internal/analyzer"
	"bsdtrace/internal/cachesim"
	"bsdtrace/internal/fault"
	"bsdtrace/internal/ffs"
	"bsdtrace/internal/namei"
	"bsdtrace/internal/obs"
	"bsdtrace/internal/report"
	"bsdtrace/internal/stats"
	"bsdtrace/internal/trace"
	"bsdtrace/internal/workload"
	"bsdtrace/internal/xfer"
)

// reportConfig carries the report run's knobs.
type reportConfig struct {
	duration  time.Duration
	seed      int64
	only      string
	ablations bool
	dataDir   string
	scale     float64
	shards    int
	lenient   bool
	reg       *obs.Registry // nil or disabled = no instrumentation
}

// reportManifest snapshots a report run's registry into the manifest
// shape the -manifest flag writes and the golden harness diffs.
func reportManifest(cfg reportConfig) *obs.Manifest {
	return cfg.reg.Manifest(obs.RunInfo{
		Command: "fsreport",
		Seed:    cfg.seed,
		Config: map[string]string{
			"duration":  cfg.duration.String(),
			"only":      cfg.only,
			"ablations": fmt.Sprintf("%t", cfg.ablations),
			"scale":     fmt.Sprintf("%g", cfg.scale),
			"shards":    fmt.Sprintf("%d", cfg.shards),
			"lenient":   fmt.Sprintf("%t", cfg.lenient),
		},
	})
}

func main() {
	var (
		duration   = flag.Duration("duration", 8*time.Hour, "simulated time span per trace")
		seed       = flag.Int64("seed", 1, "random seed")
		only       = flag.String("only", "", "render a single item: tableI, tableIII, tableIV, tableV, tableVI, tableVII, intervals, sharing, residency, reliability, metadata, fragmentation, server, diskless, workingset, static, zoo, fig1..fig7")
		ablations  = flag.Bool("ablations", false, "also run the beyond-the-paper ablations (A1, A2, A3, A4)")
		scale      = flag.Float64("scale", 1.0, "user population multiplier per machine")
		shards     = flag.Int("shards", 1, "generate each machine's population as N concurrent shards")
		outPath    = flag.String("o", "", "write the report to a file instead of stdout")
		dataDir    = flag.String("data", "", "also write every table and figure as CSV files into this directory")
		stability  = flag.Int("stability", 0, "instead of the report, run the headline metrics across N seeds and print mean ± sd")
		degrade    = flag.Bool("degrade", false, "instead of the report, run the loss-sensitivity sweep: mangle the A5 trace at increasing loss rates and table the drift of the headline values")
		lenient    = flag.Bool("lenient", false, "repair damaged traces and report what survives instead of failing on partial ingest")
		input      = flag.String("input", "", "instead of the synthetic fleet, report on this foreign trace file (requires -format)")
		format     = flag.String("format", "bsd", "trace format of -input: blockcsv, pageref, strace")
		fit        = flag.Int("fit", 0, "cache-size ladder rungs for the -input Table VI sweep (default 6, fitted to the trace footprint)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		manifest   = flag.String("manifest", "", "write the run manifest (config, stage spans, metrics) to this file")
		progress   = flag.Bool("progress", false, "live per-stage progress line on stderr (TTY only)")
		debugAddr  = flag.String("debug-addr", "", "serve expvar and pprof on this address for live inspection")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fsreport:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fsreport:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "fsreport:", err)
			os.Exit(1)
		}
	}

	reg := obs.NewRegistry()
	reg.SetEnabled(*manifest != "" || *progress || *debugAddr != "")
	if *debugAddr != "" {
		addr, derr := obs.ServeDebug(*debugAddr, reg)
		if derr != nil {
			fmt.Fprintln(os.Stderr, "fsreport:", derr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "fsreport: debug server on http://%s/debug/vars\n", addr)
	}
	var prog *obs.Progress
	if *progress {
		prog = obs.StartProgress(os.Stderr, reg)
	}

	cfg := reportConfig{
		duration:  *duration,
		seed:      *seed,
		only:      *only,
		ablations: *ablations,
		dataDir:   *dataDir,
		scale:     *scale,
		shards:    *shards,
		lenient:   *lenient,
		reg:       reg,
	}
	var err error
	switch {
	case *input != "":
		err = runForeign(w, *input, *format, *fit)
	case *stability > 0:
		err = runStability(w, *duration, *seed, *stability)
	case *degrade:
		err = runDegrade(w, *duration, *seed)
	default:
		err = run(w, cfg)
	}
	prog.Stop()
	if err == nil && *manifest != "" {
		err = reportManifest(cfg).WriteFile(*manifest)
	}

	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, ferr := os.Create(*memprofile)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "fsreport:", ferr)
			os.Exit(1)
		}
		runtime.GC()
		if werr := pprof.WriteHeapProfile(f); werr != nil {
			fmt.Fprintln(os.Stderr, "fsreport:", werr)
			os.Exit(1)
		}
		f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsreport:", err)
		os.Exit(1)
	}
}

// parallel runs jobs 0..n-1 on up to GOMAXPROCS workers and returns the
// first error. Jobs write into index-ordered slots, so parallelism never
// changes any output.
func parallel(n int, job func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := job(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}

// generateSpill streams one machine's trace into a binary spill file,
// under a per-machine generation span when observation is on, and
// returns the generation result (Events nil — the trace lives on disk).
func generateSpill(cfg workload.Config, path string, reg *obs.Registry) (*workload.Result, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := trace.NewWriter(f)
	sink := w.Write
	var sp *obs.Span
	if reg.Enabled() {
		sp = reg.StartSpan("generate/" + cfg.Profile)
		sink = func(e trace.Event) error { sp.AddOut(1); return w.Write(e) }
	}
	res, err := workload.GenerateStream(cfg, sink)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	if sp != nil {
		if st, err := os.Stat(path); err == nil {
			sp.AddBytes(st.Size())
		}
		sp.End()
	}
	workload.PublishStats(reg, "kernel."+cfg.Profile, res.KernelStats)
	return res, nil
}

// openTrace opens a spill file for one streaming pass. The caller closes
// the file when the pass ends.
func openTrace(path string) (*trace.Reader, *os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	r, err := trace.NewReader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return r, f, nil
}

// runStability regenerates the A5 workload with n different seeds on
// parallel workers and reports the spread of the headline metrics: the
// reproduction's shapes are properties of the workload model, not of one
// lucky seed. Each seed's trace streams straight from the generator into
// the analyzer and tape builder — never materialized. Per-seed values
// aggregate in seed order, so the output is identical at any worker count.
func runStability(w io.Writer, duration time.Duration, baseSeed int64, n int) error {
	metrics := []struct {
		name string
		agg  *stats.Welford
	}{
		{name: "whole-file read accesses (%)"},
		{name: "opens under 0.5 s (%)"},
		{name: "179-182 s lifetime spike (% of new files)"},
		{name: "per-user throughput, 10-min (B/s)"},
		{name: "2-MB delayed-write miss ratio (%)"},
		{name: "4-MB delayed-write miss ratio (%)"},
	}
	for i := range metrics {
		metrics[i].agg = &stats.Welford{}
	}
	seedVals := make([][]float64, n)
	err := parallel(n, func(i int) error {
		seed := baseSeed + int64(i)
		s := analyzer.NewStream(analyzer.Options{})
		tb := xfer.NewTapeBuilder()
		if _, err := workload.GenerateStream(workload.Config{
			Profile: "A5", Seed: seed, Duration: trace.Time(duration.Milliseconds()),
		}, func(e trace.Event) error {
			s.Feed(e)
			tb.Add(e)
			return nil
		}); err != nil {
			return err
		}
		a := s.Finish()
		lf := a.Lifetimes.ByFiles
		vals := []float64{
			100 * a.Sequentiality.WholeFileFraction(analyzer.ClassReadOnly),
			100 * a.OpenTimes.FractionAtOrBelow(0.5),
			100 * (lf.FractionAtOrBelow(182) - lf.FractionAtOrBelow(178)),
			a.Activity.Long.PerUserThroughput.Mean(),
		}
		tape, err := tb.Finish()
		if err != nil {
			return fmt.Errorf("cachesim: malformed trace: %v", err)
		}
		rs, err := cachesim.MultiSimulate(tape, []cachesim.Config{
			{BlockSize: 4096, CacheSize: 2 << 20, Write: cachesim.DelayedWrite},
			{BlockSize: 4096, CacheSize: 4 << 20, Write: cachesim.DelayedWrite},
		})
		if err != nil {
			return err
		}
		for _, r := range rs {
			vals = append(vals, 100*r.MissRatio())
		}
		seedVals[i] = vals
		return nil
	})
	if err != nil {
		return err
	}
	for _, vals := range seedVals {
		for j, v := range vals {
			metrics[j].agg.Add(v)
		}
	}
	t := &report.Table{
		Title:  fmt.Sprintf("Seed stability: headline metrics across %d seeds (%v A5 traces).", n, duration),
		Header: []string{"Metric", "mean ± sd", "min", "max"},
		Note:   "Every metric should be tight around its EXPERIMENTS.md value; a wide spread would mean the reproduction depends on a lucky seed.",
	}
	for _, m := range metrics {
		t.AddRow(m.name, m.agg.String(),
			fmt.Sprintf("%.1f", m.agg.Min()), fmt.Sprintf("%.1f", m.agg.Max()))
	}
	return t.Render(w)
}

// runDegrade is the loss-sensitivity sweep: how much trace damage can
// the headline numbers absorb? The A5 trace is generated once into a
// spill file; each sweep rate re-reads it through the fault-injecting
// mangler (drop-only — silently discarded records, the damage mode a
// real degraded tracer produces) and the self-healing recovery layer,
// then re-runs the reference-pattern analyzer and the four Table VI
// write-policy simulations. The table reports each headline value's
// drift against the clean baseline, plus the repair budget the recovery
// layer spent getting there. Rates run on parallel workers; results
// land in rate-ordered slots, so the output is deterministic.
func runDegrade(w io.Writer, duration time.Duration, seed int64) error {
	rates := []float64{0, 0.0001, 0.001, 0.01, 0.05}
	policies := cachesim.PaperPolicies()

	spillDir, err := os.MkdirTemp("", "fsreport-degrade")
	if err != nil {
		return err
	}
	defer os.RemoveAll(spillDir)
	path := filepath.Join(spillDir, "a5.trace")
	if _, err := generateSpill(workload.Config{
		Profile: "A5", Seed: seed, Duration: trace.Time(duration.Milliseconds()),
	}, path, nil); err != nil {
		return err
	}

	type degradeRow struct {
		seq    float64 // sequential runs among read-only accesses (%)
		whole  float64 // whole-file read accesses (%)
		small  float64 // dynamic file sizes: files at or below 10 kbytes (%)
		miss   []float64
		mangle fault.MangleStats
		repair trace.RepairStats
	}
	rows := make([]*degradeRow, len(rates))
	if err := parallel(len(rates), func(i int) error {
		r, f, err := openTrace(path)
		if err != nil {
			return err
		}
		defer f.Close()
		var src trace.Source = r
		var mg *fault.TraceMangler
		if rates[i] > 0 {
			// Per-rate seed: each rate damages different records, so the
			// sweep measures the loss rate, not one unlucky pattern.
			mg = fault.NewTraceMangler(src, fault.MangleConfig{
				Seed: seed + int64(i), Drop: rates[i],
			})
			src = mg
		}
		rec := trace.NewRecoverSource(src)
		s := analyzer.NewStream(analyzer.Options{})
		tb := xfer.NewTapeBuilder()
		for {
			e, err := rec.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			s.Feed(e)
			tb.Add(e)
		}
		a := s.Finish()
		tape, err := tb.Finish()
		if err != nil {
			return fmt.Errorf("rate %g: malformed trace after repair: %v", rates[i], err)
		}
		cfgs := make([]cachesim.Config, len(policies))
		for j, p := range policies {
			cfgs[j] = cachesim.Config{
				BlockSize: 4096, CacheSize: 2 << 20,
				Write: p.Write, FlushInterval: p.Interval,
			}
		}
		rs, err := cachesim.MultiSimulate(tape, cfgs)
		if err != nil {
			return err
		}
		row := &degradeRow{
			seq:    100 * a.Sequentiality.SequentialFraction(analyzer.ClassReadOnly),
			whole:  100 * a.Sequentiality.WholeFileFraction(analyzer.ClassReadOnly),
			small:  100 * a.FileSizesByFiles.FractionAtOrBelow(10*1024),
			repair: rec.Stats(),
		}
		if mg != nil {
			row.mangle = mg.Stats()
		}
		for _, r := range rs {
			row.miss = append(row.miss, 100*r.MissRatio())
		}
		rows[i] = row
		return nil
	}); err != nil {
		return err
	}

	rateLabel := func(rate float64) string {
		if rate == 0 {
			return "clean"
		}
		return fmt.Sprintf("%g%%", 100*rate)
	}
	base := rows[0]
	drift := func(v, b float64) string {
		if v == b {
			return fmt.Sprintf("%.2f", v)
		}
		return fmt.Sprintf("%.2f (%+.2f)", v, v-b)
	}

	t := &report.Table{
		Title: fmt.Sprintf("Loss sensitivity: headline values vs. record-loss rate (%v A5 trace, repaired ingest).", duration),
		Header: []string{"Loss rate", "Seq. runs RO (%)", "Whole-file RO (%)", "Files <=10KB (%)",
			policies[0].Name + " miss (%)", policies[1].Name + " miss (%)",
			policies[2].Name + " miss (%)", policies[3].Name + " miss (%)"},
		Note: "Each row drops the given fraction of trace records uniformly at random, " +
			"repairs the stream through the self-healing recovery layer, and re-runs the " +
			"analysis and the four Table VI write policies (2-Mbyte cache, 4-kbyte blocks). " +
			"Parenthesized deltas are drift against the clean baseline.",
	}
	for i, rate := range rates {
		row := rows[i]
		cells := []string{rateLabel(rate),
			drift(row.seq, base.seq), drift(row.whole, base.whole), drift(row.small, base.small)}
		for j := range policies {
			cells = append(cells, drift(row.miss[j], base.miss[j]))
		}
		t.AddRow(cells...)
	}
	if err := t.Render(w); err != nil {
		return err
	}

	bt := &report.Table{
		Title:  "Repair budget per loss rate: what the recovery layer spent.",
		Header: []string{"Loss rate", "Events in", "Lost by fault", "Dropped", "Synthesized", "Rewritten", "Est. bytes lost"},
		Note: "\"Lost by fault\" is records the mangler silently discarded; the remaining " +
			"columns are the recovery layer's repairs — orphaned handles dropped, missing " +
			"closes synthesized, fields clamped — that keep the damaged stream valid.",
	}
	for i, rate := range rates {
		row := rows[i]
		bt.AddRow(rateLabel(rate),
			report.Count(row.repair.Events),
			report.Count(row.mangle.Dropped),
			report.Count(row.repair.Dropped),
			report.Count(row.repair.Synthesized),
			report.Count(row.repair.Rewritten),
			report.Size(row.repair.EstBytesLost))
	}
	return bt.Render(w)
}

func run(w io.Writer, cfg reportConfig) error {
	want := func(name string) bool {
		return cfg.only == "" || strings.EqualFold(cfg.only, name)
	}
	if cfg.scale <= 0 {
		cfg.scale = 1
	}

	fmt.Fprintf(w, "Reproduction of \"A Trace-Driven Analysis of the UNIX 4.2 BSD File System\" (SOSP 1985)\n")
	fmt.Fprintf(w, "Synthetic traces: %v per machine, seed %d (see DESIGN.md for the substitution rationale)\n", cfg.duration, cfg.seed)
	if cfg.scale != 1 || cfg.shards > 1 {
		fmt.Fprintf(w, "Scaled fleet: %gx user population, %d generation shards per machine\n", cfg.scale, cfg.shards)
	}
	fmt.Fprintln(w)

	names := []string{"A5", "E3", "C4"}

	// Which Section-6 sweeps do the requested items need? (-data exports
	// them all.)
	cacheSizes := cachesim.PaperCacheSizes()
	policies := cachesim.PaperPolicies()
	needPolicy := cfg.dataDir != "" || want("tableI") || want("tableVI") || want("fig5") ||
		want("residency") || want("metadata")
	needBlock := cfg.dataDir != "" || want("tableI") || want("tableVII") || want("fig6")
	needPaging := cfg.dataDir != "" || want("fig7")
	// The zoo comparison renders only on explicit request: it multiplies
	// every figure by nine policies, which the default report (and the
	// golden file) does not carry.
	needZoo := strings.EqualFold(cfg.only, "zoo")
	needTape := needPolicy || needBlock || needPaging || needZoo ||
		want("workingset") || want("reliability") || cfg.ablations
	needMachineTapes := want("server") || want("diskless")
	needFrag := want("fragmentation")
	needMerge := want("server")

	// Generate each machine's trace exactly once and tee it to every
	// consumer concurrently: the reference-pattern analyzer (every
	// machine, with A5's pass also building the shared transfer tape),
	// the per-machine tape builders, the fragmentation population scan,
	// and the merged-server leg all read the same generation through
	// bounded channels of shared event batches (trace.Fanout). Nothing
	// is spilled to disk and nothing is ever generated twice; a fanout's
	// bounded channels throttle the generator to its slowest consumer,
	// so memory stays O(consumers * batch) no matter the scale. Every
	// subscriber is drained by its own goroutine — that, not worker
	// count, is what makes the tee deadlock-free.
	statics := make([][]int64, len(names))
	analyses := make([]*analyzer.Analysis, len(names))
	var a5Tape *xfer.Tape
	var machineTapes []*xfer.Tape
	var mergedTape *xfer.Tape
	var fragRows []ffs.WasteSweepRow
	if needMachineTapes {
		machineTapes = make([]*xfer.Tape, len(names))
	}

	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	spawn := func(job func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := job(); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
		}()
	}
	// wrap applies the lenient repair layer when asked. Generated
	// streams are pristine, so the repair pass is a provable no-op; it
	// runs anyway so a -lenient report exercises exactly the ingestion
	// stack a damaged-trace rerun would use.
	wrap := func(src trace.Source) trace.Source {
		if cfg.lenient {
			return trace.NewLenientSource(src)
		}
		return src
	}

	mergeLegs := make([]trace.Source, len(names))
	for i := range names {
		subs := 1 // the analyzer
		if needMachineTapes && (i > 0 || !needTape) {
			subs++
		}
		if needFrag && i == 0 {
			subs++
		}
		if needMerge {
			subs++
		}
		f := trace.NewFanout(subs)
		next := 0
		takeSub := func() *trace.FanoutSub { s := f.Source(next); next++; return s }

		// The generator: one machine's full simulation, pushed into the
		// tee. All machines generate concurrently regardless of
		// GOMAXPROCS — consumers block on channels, not on workers.
		i := i
		spawn(func() error {
			sink := workload.Sink(f.Write)
			var sp *obs.Span
			if cfg.reg.Enabled() {
				sp = cfg.reg.StartSpan("generate/" + names[i])
				sink = func(e trace.Event) error { sp.AddOut(1); return f.Write(e) }
			}
			res, err := workload.GenerateStream(workload.Config{
				Profile:   names[i],
				Seed:      cfg.seed,
				Duration:  trace.Time(cfg.duration.Milliseconds()),
				UserScale: cfg.scale,
				Shards:    cfg.shards,
			}, sink)
			if err == trace.ErrFanoutDone {
				// Every consumer stopped early (each has already
				// reported its own error); an abandoned generation is
				// not itself a failure.
				err = nil
			}
			f.Close(err)
			if sp != nil {
				sp.End()
			}
			if err != nil {
				return err
			}
			statics[i] = res.StaticSizes
			if cfg.reg.Enabled() {
				cfg.reg.Counter("static." + names[i] + ".files").Set(int64(len(res.StaticSizes)))
			}
			workload.PublishStats(cfg.reg, "kernel."+names[i], res.KernelStats)
			return nil
		})

		// The analyzer consumer; A5's builds the shared tape in the
		// same pass.
		analyzeSub := takeSub()
		spawn(func() error {
			defer analyzeSub.Cancel()
			src := cfg.reg.Instrument("analyze/"+names[i], wrap(analyzeSub))
			s := analyzer.NewStream(analyzer.Options{})
			var tb *xfer.TapeBuilder
			if i == 0 && needTape {
				tb = xfer.NewTapeBuilder()
			}
			buf := trace.GetBatch()
			defer trace.PutBatch(buf)
			for {
				n, err := trace.ReadBatch(src, buf)
				if n == 0 {
					if err == io.EOF {
						break
					}
					return err
				}
				for _, e := range buf[:n] {
					s.Feed(e)
					if tb != nil {
						tb.Add(e)
					}
				}
			}
			analyses[i] = s.Finish()
			if tb != nil {
				var err error
				if a5Tape, err = tb.Finish(); err != nil {
					return fmt.Errorf("cachesim: malformed trace: %v", err)
				}
				a5Tape.PublishMetrics(cfg.reg, "tape.A5")
			}
			return nil
		})

		// The standalone tape consumer, for machines whose analyzer pass
		// does not already build one.
		if needMachineTapes && (i > 0 || !needTape) {
			tapeSub := takeSub()
			spawn(func() error {
				defer tapeSub.Cancel()
				t, err := xfer.BuildTape(wrap(tapeSub))
				if err != nil {
					return fmt.Errorf("cachesim: malformed trace: %v", err)
				}
				machineTapes[i] = t
				return nil
			})
		}

		// The fragmentation consumer extracts A5's file-population
		// history during the pass and replays it against each disk
		// geometry after its stream ends.
		if needFrag && i == 0 {
			fragSub := takeSub()
			spawn(func() error {
				defer fragSub.Cancel()
				rows, err := ffs.WasteSweepSource(wrap(fragSub),
					[]int64{1 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10})
				if err != nil {
					return err
				}
				fragRows = rows
				return nil
			})
		}

		if needMerge {
			mergeLegs[i] = takeSub()
		}
	}

	// The merged-server consumer: a k-way merge over one leg of each
	// machine's tee, feeding the server tape builder — the same merge a
	// set of on-disk machine traces would get, without the disks.
	if needMerge {
		spawn(func() error {
			for _, leg := range mergeLegs {
				defer leg.(*trace.FanoutSub).Cancel()
			}
			merged := cfg.reg.Instrument("server-merge", wrap(trace.NewMergeSource(mergeLegs...)))
			t, err := xfer.BuildTape(merged)
			if err != nil {
				return fmt.Errorf("cachesim: malformed trace: %v", err)
			}
			mergedTape = t
			return nil
		})
	}

	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if needMachineTapes && needTape {
		machineTapes[0] = a5Tape
	}
	a5Static := statics[0]
	tr := report.Traces{Names: names, Analyses: analyses}
	var err error

	var policy [][]*cachesim.Result
	var block *cachesim.BlockSizeSweepResult
	var paging [][2]*cachesim.Result
	if needPolicy {
		if policy, err = cachesim.PolicySweepTape(a5Tape, 4096, cacheSizes, policies); err != nil {
			return err
		}
		for _, row := range policy {
			cachesim.PublishResults(cfg.reg, "sim", row...)
		}
	}
	if needBlock {
		if block, err = cachesim.BlockSizeSweepTape(a5Tape, cachesim.PaperBlockSizes(), cachesim.PaperBlockCacheSizes()); err != nil {
			return err
		}
		for _, row := range block.Results {
			cachesim.PublishResults(cfg.reg, "sim", row...)
		}
	}
	if needPaging {
		if paging, err = cachesim.PagingSweepTape(a5Tape, 4096, cacheSizes); err != nil {
			return err
		}
		for _, pair := range paging {
			cachesim.PublishResults(cfg.reg, "sim", pair[0], pair[1])
		}
	}

	if want("tableI") {
		report.TableI(tr.Analyses[0], policy, block).Render(w)
	}
	if want("tableIII") {
		report.TableIII(tr).Render(w)
	}
	if want("tableIV") {
		report.TableIV(tr).Render(w)
	}
	if want("tableV") {
		report.TableV(tr).Render(w)
	}
	if want("intervals") {
		report.EventIntervalTable(tr).Render(w)
	}
	if want("sharing") {
		report.SharingTable(tr).Render(w)
	}
	if want("fig1") {
		for _, c := range report.Figure1(tr) {
			c.Render(w)
		}
	}
	if want("fig2") {
		for _, c := range report.Figure2(tr) {
			c.Render(w)
		}
	}
	if want("fig3") {
		report.Figure3(tr).Render(w)
	}
	if want("fig4") {
		for _, c := range report.Figure4(tr) {
			c.Render(w)
		}
	}
	if want("tableVI") {
		report.TableVI(cacheSizes, policies, policy).Render(w)
	}
	if want("fig5") {
		report.Figure5(cacheSizes, policies, policy).Render(w)
	}
	if want("tableVII") {
		report.TableVII(block).Render(w)
	}
	if want("fig6") {
		report.Figure6(block).Render(w)
	}
	if want("fig7") {
		report.Figure7(cacheSizes, paging).Render(w)
	}
	if want("residency") {
		// 4-Mbyte delayed-write cache, as in the paper's §6.2 remark.
		report.ResidencyTable(policy[3][3]).Render(w)
	}
	if want("reliability") {
		if err := runReliability(w, a5Tape, cfg.reg); err != nil {
			return err
		}
	}

	if cfg.dataDir != "" {
		var d report.DataSet
		d.AddTable("tableIII", report.TableIII(tr))
		d.AddTable("tableIV", report.TableIV(tr))
		d.AddTable("tableV", report.TableV(tr))
		d.AddTable("tableVI", report.TableVI(cacheSizes, policies, policy))
		d.AddTable("tableVII", report.TableVII(block))
		d.AddTable("sharing", report.SharingTable(tr))
		for i, c := range report.Figure1(tr) {
			d.AddChart(fmt.Sprintf("fig1%c", 'a'+i), c)
		}
		for i, c := range report.Figure2(tr) {
			d.AddChart(fmt.Sprintf("fig2%c", 'a'+i), c)
		}
		d.AddChart("fig3", report.Figure3(tr))
		for i, c := range report.Figure4(tr) {
			d.AddChart(fmt.Sprintf("fig4%c", 'a'+i), c)
		}
		d.AddChart("fig5", report.Figure5(cacheSizes, policies, policy))
		d.AddChart("fig6", report.Figure6(block))
		d.AddChart("fig7", report.Figure7(cacheSizes, paging))
		dataPaths, err := d.WriteDir(cfg.dataDir)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %d CSV files to %s\n\n", len(dataPaths), cfg.dataDir)
	}

	if want("metadata") {
		if err := runMetadata(w, cfg.duration, cfg.seed, cfg.scale, policy[0][1]); err != nil {
			return err
		}
	}
	if want("fragmentation") {
		if err := runFragmentation(w, fragRows); err != nil {
			return err
		}
	}

	// The server and diskless sections replay all three machines off the
	// tapes the fan-out pass already built (A5's is the sweep tape).
	if want("server") {
		if err := runServer(w, names, machineTapes, mergedTape, cfg.reg); err != nil {
			return err
		}
	}
	if want("diskless") {
		if err := runDiskless(w, cfg.duration, machineTapes); err != nil {
			return err
		}
	}
	if want("workingset") {
		if err := runWorkingSet(w, a5Tape); err != nil {
			return err
		}
	}
	if needZoo {
		if err := runZoo(w, a5Tape, cfg.seed); err != nil {
			return err
		}
	}
	if want("static") {
		if err := runStatic(w, a5Static, tr.Analyses[0]); err != nil {
			return err
		}
	}

	if cfg.ablations {
		if err := runAblations(w, a5Tape); err != nil {
			return err
		}
	}
	return nil
}

// runMetadata regenerates the A5 workload with the namei metadata
// simulator attached and sets metadata disk I/O against the data-block
// I/O of the UNIX-sized cache — the paper's concluding estimate that
// "more than half of all disk block references could come from these
// other accesses" (i-nodes, directories, and paging, which Figure 7
// covers separately). The three cache scales regenerate on parallel
// workers (each run drives its own simulator); the events themselves are
// discarded as they are generated — only the simulator's counters matter.
func runMetadata(w io.Writer, duration time.Duration, seed int64, scale float64, unixCache *cachesim.Result) error {
	t := &report.Table{
		Title:  "Metadata I/O: name lookup, i-nodes, and directories (paper §3.2 and conclusion).",
		Header: []string{"Name cache", "Name hit ratio", "Inode hit ratio", "Meta disk I/Os", "Meta share of all disk I/O"},
		Note: "Each row regenerates the A5 workload with the 4.2 BSD-style name, i-node, " +
			"and directory caches simulated at a different scale; the share column compares " +
			"against the data-block I/Os of the 390-kbyte UNIX cache with 30-second flushes. " +
			"Leffler et al. measured an 85% directory cache hit ratio; the paper estimates " +
			"metadata plus paging could exceed half of all disk block references.",
	}
	scales := []int{40, 120, 400}
	sims := make([]*namei.Simulator, len(scales))
	if err := parallel(len(scales), func(i int) error {
		sim := namei.New(namei.Config{
			NameEntries:  scales[i],
			InodeEntries: scales[i] / 2,
			DirBlocks:    scales[i] / 6,
		})
		// The Meta hook needs the single-kernel path, so this regeneration
		// is never sharded (shards own separate kernels).
		if _, err := workload.GenerateStream(workload.Config{
			Profile: "A5", Seed: seed,
			Duration:  trace.Time(duration.Milliseconds()),
			UserScale: scale,
			Meta:      sim,
		}, nil); err != nil {
			return err
		}
		sims[i] = sim
		return nil
	}); err != nil {
		return err
	}
	for i, entries := range scales {
		sim := sims[i]
		meta := sim.Stats.DiskIOs()
		share := float64(meta) / float64(meta+unixCache.DiskIOs())
		t.AddRow(
			fmt.Sprintf("%d entries", entries),
			report.Pct(sim.Stats.NameHitRatio()),
			report.Pct(sim.Stats.InodeHitRatio()),
			report.Count(meta),
			report.Pct(share),
		)
	}
	return t.Render(w)
}

// runFragmentation quantifies the paper's §6.3 remark: large blocks waste
// disk space on small files, and FFS fragments recover it. The rows were
// computed by the fan-out pass's fragmentation consumer, which extracted
// the file population while the A5 trace was generated.
func runFragmentation(w io.Writer, rows []ffs.WasteSweepRow) error {
	t := &report.Table{
		Title:  "Disk space waste vs. block size (paper §6.3), A5 file population.",
		Header: []string{"Block Size", "Waste, whole blocks only", "Waste, with FFS fragments"},
		Note: "Internal fragmentation of the live file population replayed against the " +
			"FFS allocator. \"A scheme like the one in 4.2 BSD, which uses multiple block " +
			"sizes on disk to avoid wasted space for small files, works well in " +
			"conjunction with a fixed-block-size cache.\"",
	}
	for _, row := range rows {
		t.AddRow(report.Size(row.BlockSize), report.Pct(row.NoFragWaste), report.Pct(row.FragWaste))
	}
	return t.Render(w)
}

// runServer answers the paper's motivating design question directly: the
// three machines' traces are merged onto one shared file server, and a
// single server cache is compared against per-machine caches of the same
// total memory. Statistical multiplexing — machines are bursty at
// different moments — is the shared cache's advantage. The merged tape
// was built by the fan-out pass's merge consumer: a k-way merge over one
// live leg of each machine's generation, never materialized.
func runServer(w io.Writer, names []string, tapes []*xfer.Tape, mergedTape *xfer.Tape, reg *obs.Registry) error {
	const blockSize = 4096
	perMachine := int64(2 << 20)

	t := &report.Table{
		Title:  "Shared file server vs. per-machine caches (delayed-write, 4-kbyte blocks).",
		Header: []string{"Configuration", "Total memory", "Disk I/Os", "Miss Ratio"},
		Note: "The three machine traces are merged (with identifier remapping) onto one " +
			"server. The paper's goal was \"designing a shared file system for a network " +
			"of personal workstations\"; pooling the same memory in one server cache " +
			"beats splitting it across machines because bursts interleave.",
	}

	// Split: one private cache per machine, summed; and the merged trace
	// against shared caches of increasing size. All configurations run
	// on parallel workers.
	sharedSizes := []int64{perMachine, perMachine * int64(len(tapes)), 16 << 20}
	private := make([]*cachesim.Result, len(tapes))
	shared := make([]*cachesim.Result, len(sharedSizes))
	jobs := len(tapes) + 1
	if err := parallel(jobs, func(i int) error {
		if i < len(tapes) {
			r, err := cachesim.SimulateTape(tapes[i], cachesim.Config{
				BlockSize: blockSize, CacheSize: perMachine, Write: cachesim.DelayedWrite,
			})
			if err != nil {
				return err
			}
			private[i] = r
			return nil
		}
		cfgs := make([]cachesim.Config, len(sharedSizes))
		for j, cs := range sharedSizes {
			cfgs[j] = cachesim.Config{BlockSize: blockSize, CacheSize: cs, Write: cachesim.DelayedWrite}
		}
		rs, err := cachesim.MultiSimulate(mergedTape, cfgs)
		if err != nil {
			return err
		}
		copy(shared, rs)
		cachesim.PublishResults(reg, "server.shared", rs...)
		return nil
	}); err != nil {
		return err
	}

	// Private caches share one Config, so their labels would collide;
	// the machine name keys them apart.
	for i, r := range private {
		cachesim.PublishResults(reg, "server.private."+names[i], r)
	}

	var splitIOs, splitAccesses int64
	for i, r := range private {
		splitIOs += r.DiskIOs()
		splitAccesses += r.LogicalAccesses
		t.AddRow(fmt.Sprintf("private cache, %s", names[i]), report.Size(perMachine),
			report.Count(r.DiskIOs()), report.Pct(r.MissRatio()))
	}
	t.AddRow("private caches combined", report.Size(perMachine*int64(len(tapes))),
		report.Count(splitIOs), report.Pct(float64(splitIOs)/float64(splitAccesses)))

	for i, cs := range sharedSizes {
		t.AddRow("shared server cache", report.Size(cs),
			report.Count(shared[i].DiskIOs()), report.Pct(shared[i].MissRatio()))
	}
	return t.Render(w)
}

// runDiskless runs the two-level simulation: diskless workstations with
// local block caches writing through to one file server. It answers the
// paper's two introduction questions at once — how much network bandwidth
// a diskless workstation needs, and what the server's cache does to disk
// traffic.
func runDiskless(w io.Writer, duration time.Duration, tapes []*xfer.Tape) error {
	t := &report.Table{
		Title:  "Diskless workstations: client cache x one file server (4-kbyte blocks, 8-Mbyte delayed-write server).",
		Header: []string{"Client cache", "Client hit ratio", "Network blocks", "Avg network B/s", "Server disk I/Os", "End-to-end miss"},
		Note: "Every machine runs a local write-through cache; misses and writes cross " +
			"the network to the server. Even the smallest client cache keeps average " +
			"network demand orders of magnitude below a 10 Mbit/s Ethernet (~750 KB/s " +
			"usable), the paper's §5.1 conclusion; the server's delayed-write cache " +
			"then removes most residual disk traffic.",
	}
	secs := duration.Seconds()
	clientSizes := []int64{128 << 10, 512 << 10, 1 << 20, 2 << 20}
	results := make([]*cachesim.TwoLevelResult, len(clientSizes))
	if err := parallel(len(clientSizes), func(i int) error {
		r, err := cachesim.TwoLevelSimulateTapes(tapes, cachesim.TwoLevelConfig{
			BlockSize:   4096,
			ClientCache: clientSizes[i],
			ServerCache: 8 << 20,
			Write:       cachesim.DelayedWrite,
		})
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	}); err != nil {
		return err
	}
	for i, cc := range clientSizes {
		r := results[i]
		netBps := float64(r.NetworkBlocks) * 4096 / secs
		t.AddRow(report.Size(cc),
			report.Pct(r.ClientHitRatio()),
			report.Count(r.NetworkBlocks),
			fmt.Sprintf("%.0f", netBps),
			report.Count(r.ServerDiskIOs()),
			report.Pct(r.EndToEndMissRatio()))
	}
	return t.Render(w)
}

// runZoo renders the policy-zoo comparison: the Figure 5, 6, and 7
// experiments re-run with one column per replacement policy in the
// simulator's zoo. The lru column of the first table reproduces Table
// VI's delayed-write column cell for cell (the golden tests pin this).
func runZoo(w io.Writer, tape *xfer.Tape, seed int64) error {
	cacheSizes := cachesim.PaperCacheSizes()
	zoo, err := cachesim.ZooSweepTape(tape, 4096, cacheSizes, seed)
	if err != nil {
		return err
	}
	if err := report.ZooTable(cacheSizes, zoo).Render(w); err != nil {
		return err
	}
	const zooCache = 2 << 20
	blocks, err := cachesim.ZooBlockSizeSweepTape(tape, cachesim.PaperBlockSizes(), zooCache, seed)
	if err != nil {
		return err
	}
	if err := report.ZooBlockTable(cachesim.PaperBlockSizes(), zooCache, blocks).Render(w); err != nil {
		return err
	}
	paging, err := cachesim.ZooPagingSweepTape(tape, 4096, cacheSizes, seed)
	if err != nil {
		return err
	}
	return report.ZooPagingTable(cacheSizes, paging).Render(w)
}

// runWorkingSet prints Denning's W(T): the distinct data touched per
// window of each length. It is the mechanistic explanation for Table VI's
// knee — the miss-ratio curve bends where the cache first covers the
// working set of the reuse horizon that matters.
func runWorkingSet(w io.Writer, tape *xfer.Tape) error {
	windows := []trace.Time{
		10 * trace.Second, trace.Minute, 10 * trace.Minute, trace.Hour,
	}
	ws, err := cachesim.WorkingSetTape(tape, 4096, windows)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:  "Working set W(T): distinct data touched per window (4-kbyte blocks, trace A5).",
		Header: []string{"Window", "Mean blocks", "Mean data", "Peak blocks", "Peak data"},
		Note: "Denning's working-set curve. Compare the 10-minute row against Table VI: " +
			"the miss-ratio knee sits where the cache size first covers the working set " +
			"of the trace's dominant reuse horizon.",
	}
	for _, p := range ws {
		t.AddRow(p.Window.String(),
			fmt.Sprintf("%.0f", p.MeanBlocks),
			report.Size(int64(p.MeanBytes)),
			report.Count(p.MaxBlocks),
			report.Size(p.MaxBytes))
	}
	return t.Render(w)
}

// runStatic compares the static file-size distribution (a disk scan of
// the live population at the end of the trace, Satyanarayanan's method)
// against the dynamic distribution of accesses (the paper's Figure 2).
// The paper notes the two are "roughly comparable" — about half the files
// under a few kilobytes either way — because small files dominate both
// the disk and the access stream.
func runStatic(w io.Writer, staticSizes []int64, a *analyzer.Analysis) error {
	h := stats.NewLogHistogram(64, 1.3, 60)
	for _, sz := range staticSizes {
		h.Add(float64(sz), 1)
	}
	static := h.CDF()
	t := &report.Table{
		Title:  "Static disk scan vs. dynamic accesses: fraction of files at or below each size (A5).",
		Header: []string{"Size", "Static scan (live files)", "Dynamic (accesses, Fig 2a)"},
		Note: "The static column scans the simulated disk at end of trace, the method " +
			"Satyanarayanan used; the dynamic column weights by accesses, the paper's " +
			"method. The paper calls the two roughly comparable, with the dynamic " +
			"distribution skewed further toward small files (hot files are small).",
	}
	for _, kb := range []float64{1, 4, 10, 100, 1024} {
		t.AddRow(report.Size(int64(kb*1024)),
			report.Pct(static.FractionAtOrBelow(kb*1024)),
			report.Pct(a.FileSizesByFiles.FractionAtOrBelow(kb*1024)))
	}
	t.AddRow("files scanned", report.Count(int64(len(staticSizes))), "")
	return t.Render(w)
}

// runReliability prices each Table VI write policy in the currency the
// paper argues about but never measures: the data a crash destroys.
// Crash points are sampled across the trace in a single replay per
// policy (internal/fault), off the same shared tape as every other sweep.
func runReliability(w io.Writer, tape *xfer.Tape, reg *obs.Registry) error {
	const (
		cacheSize = 2 << 20
		blockSize = 4096
		nPoints   = 64
	)
	policies := cachesim.PaperPolicies()
	points := fault.Points(tape, nPoints)
	reps, err := fault.PolicySweepTape(tape, blockSize, cacheSize, policies, points)
	if err != nil {
		return err
	}
	fault.PublishReports(reg, "crash", reps)
	return report.Reliability(policies, reps, cacheSize, blockSize, len(points)).Render(w)
}

func runAblations(w io.Writer, tape *xfer.Tape) error {
	// A1: replacement policy.
	rep, err := cachesim.ReplacementSweepTape(tape, 4096, 2<<20, 1)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:  "Ablation A1. Replacement policy (2-Mbyte delayed-write cache, 4-kbyte blocks).",
		Header: []string{"Policy", "Disk I/Os", "Miss Ratio"},
		Note:   "The paper fixes LRU without comparison; this quantifies the choice.",
	}
	for _, rp := range []cachesim.Replacement{cachesim.LRU, cachesim.Clock, cachesim.FIFO, cachesim.Random} {
		r := rep[rp]
		t.AddRow(rp.String(), report.Count(r.DiskIOs()), report.Pct(r.MissRatio()))
	}
	t.Render(w)

	// A2: flush interval continuum.
	intervals := []trace.Time{
		1 * trace.Second, 5 * trace.Second, 30 * trace.Second,
		trace.Minute, 5 * trace.Minute, 15 * trace.Minute, trace.Hour,
	}
	fl, err := cachesim.FlushIntervalSweepTape(tape, 4096, 2<<20, intervals)
	if err != nil {
		return err
	}
	t = &report.Table{
		Title:  "Ablation A2. Flush-back interval (2-Mbyte cache, 4-kbyte blocks).",
		Header: []string{"Interval", "Disk Writes", "Miss Ratio"},
		Note:   "Bridges the paper's two flush points toward its write-through and delayed-write limits.",
	}
	for i, iv := range intervals {
		t.AddRow(iv.String(), report.Count(fl[i].DiskWrites), report.Pct(fl[i].MissRatio()))
	}
	t.Render(w)

	// A3: billing time sensitivity. The cache replays accesses in event
	// order either way, so billing only matters where wall-clock time
	// does: under a flush-back policy, whose periodic scans may catch or
	// miss a write depending on when it is billed.
	t = &report.Table{
		Title:  "Ablation A3. Transfer billing time (2-Mbyte cache, 30-second flush-back).",
		Header: []string{"Billing", "Disk I/Os", "Miss Ratio"},
		Note: "The no-read-write tracer only bounds transfer times; the paper bills " +
			"each run at the event that ends it. Billing at the event that starts it " +
			"bounds the error from the other side.",
	}
	for _, bill := range []struct {
		name  string
		start bool
	}{{"at run end (paper)", false}, {"at run start", true}} {
		r, err := cachesim.SimulateTape(tape, cachesim.Config{
			BlockSize: 4096, CacheSize: 2 << 20,
			Write: cachesim.FlushBack, FlushInterval: 30 * trace.Second,
			BillAtStart: bill.start,
		})
		if err != nil {
			return err
		}
		t.AddRow(bill.name, report.Count(r.DiskIOs()), report.Pct(r.MissRatio()))
	}
	t.Render(w)

	// A4: purge-on-death.
	t = &report.Table{
		Title:  "Ablation A4. Purging dead blocks (2-Mbyte delayed-write cache).",
		Header: []string{"Variant", "Disk Writes", "Miss Ratio"},
		Note: "Without purging, blocks of deleted and overwritten files are written " +
			"back at eviction: this isolates how much of delayed-write's win is " +
			"data dying before ejection.",
	}
	for _, v := range []struct {
		name    string
		noPurge bool
	}{{"purge on unlink/overwrite (paper)", false}, {"no purge", true}} {
		r, err := cachesim.SimulateTape(tape, cachesim.Config{
			BlockSize: 4096, CacheSize: 2 << 20, Write: cachesim.DelayedWrite,
			NoPurge: v.noPurge,
		})
		if err != nil {
			return err
		}
		t.AddRow(v.name, report.Count(r.DiskWrites), report.Pct(r.MissRatio()))
	}
	return t.Render(w)
}
