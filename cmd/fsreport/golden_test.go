package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"
)

// goldenPath is the committed 8-hour seed-1 report every release of the
// pipeline must reproduce byte for byte.
const goldenPath = "../../docs/report-8h-seed1.txt"

// goldenNumbers pins the report's headline values individually, so a
// drift failure names the number that moved instead of only "bytes
// differ". Each needle is a full line (or unambiguous fragment) of
// docs/report-8h-seed1.txt.
var goldenNumbers = []struct {
	what   string
	needle string
}{
	{"Table I whole-file transfer share", "Whole-file transfers: 68.1% of accesses (paper: ~70%)"},
	{"Table I bytes in whole-file transfers", "Bytes moved in whole-file transfers: 55.4% (paper: ~50%)"},
	{"Table I open durations", "Files open < 0.5 sec: 78.2% (paper: 75%); < 10 sec: 95.0% (paper: 90%)"},
	{"Table I data lifetimes", "New bytes dead within 30 sec: 23.3% (paper: 20-30%); within 5 min: 49.1% (paper: ~50%)"},
	{"Table I 4MB cache effectiveness", "4-Mbyte cache eliminates 64.7%-80.3% of disk accesses by write policy (paper: 65-90%)"},
	{"Table III A5 record count", "Number of trace records                 125,283         134,734          54,220"},
	{"Table IV per-user throughput", "Bytes/sec per active user (10-min intervals): 650 (paper: ~300-570)"},
	{"Table V A5 whole-file reads", "Whole-file read transfers (% of read-only accesses)     23,397 (68.3%)   24,924 (68.1%)   8,536 (67.5%)"},
	{"Table VI 2MB row", "2 Mbytes                   42.7%         36.9%        32.9%          29.3%"},
	{"Table VI 4MB row", "4 Mbytes                   35.3%         29.5%        25.4%          19.7%"},
	{"server section A5 private cache", "private cache, A5            2 Mbytes     28,434       29.3%"},
	{"ablation A1 LRU row", "lru        28,434       29.3%"},
}

// TestGoldenReport regenerates the full 8-hour seed-1 report — on the
// streaming spill-file path — and holds it to the committed golden file.
// The spot checks run first so a drift names the value that moved; the
// byte comparison then catches everything else, including formatting.
func TestGoldenReport(t *testing.T) {
	if testing.Short() {
		t.Skip("8-hour golden regeneration skipped in -short mode")
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden file: %v", err)
	}
	for _, g := range goldenNumbers {
		if !bytes.Contains(golden, []byte(g.needle)) {
			t.Fatalf("golden file no longer contains the pinned %s line %q; "+
				"regenerate docs/report-8h-seed1.txt and update goldenNumbers together", g.what, g.needle)
		}
	}

	var buf bytes.Buffer
	if err := run(&buf, reportConfig{duration: 8 * time.Hour, seed: 1, ablations: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, g := range goldenNumbers {
		if !strings.Contains(out, g.needle) {
			t.Errorf("%s drifted: report no longer contains %q", g.what, g.needle)
		}
	}
	if t.Failed() {
		return // the named drifts explain the byte mismatch below
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		gotLines := strings.Split(out, "\n")
		wantLines := strings.Split(string(golden), "\n")
		for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
			if gotLines[i] != wantLines[i] {
				t.Fatalf("report drifted from %s at line %d:\n got: %q\nwant: %q",
					goldenPath, i+1, gotLines[i], wantLines[i])
			}
		}
		t.Fatalf("report drifted from %s: %d lines generated, %d in golden",
			goldenPath, len(gotLines), len(wantLines))
	}
}

// TestGoldenShardInvariance: -shards 1 must not move a single byte of
// the report relative to unsharded generation — the anchor of the shard
// determinism contract at the command level.
func TestGoldenShardInvariance(t *testing.T) {
	var unsharded, oneShard bytes.Buffer
	if err := run(&unsharded, reportConfig{duration: 20 * time.Minute, seed: 1, only: "tableV"}); err != nil {
		t.Fatal(err)
	}
	if err := run(&oneShard, reportConfig{duration: 20 * time.Minute, seed: 1, only: "tableV", shards: 1, scale: 1}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(unsharded.Bytes(), oneShard.Bytes()) {
		t.Fatal("-shards 1 changed the report relative to unsharded generation")
	}
}
