package vfs

// content stores a regular file's materialized bytes in fixed-size chunks
// keyed by chunk index. Only chunks that have actually been written exist;
// everything else reads as zeros. This mirrors how FFS stores sparse files
// and keeps simulated multi-gigabyte workloads cheap when the workload
// never materializes data.

const chunkSize = 8192

type content struct {
	chunks map[int64][]byte
}

func newContent() *content {
	return &content{chunks: make(map[int64][]byte)}
}

func (c *content) writeAt(b []byte, off int64) {
	for len(b) > 0 {
		ci := off / chunkSize
		co := off % chunkSize
		n := chunkSize - co
		if int64(len(b)) < n {
			n = int64(len(b))
		}
		chunk, ok := c.chunks[ci]
		if !ok {
			chunk = make([]byte, chunkSize)
			c.chunks[ci] = chunk
		}
		copy(chunk[co:co+n], b[:n])
		b = b[n:]
		off += n
	}
}

func (c *content) readAt(b []byte, off int64) {
	for len(b) > 0 {
		ci := off / chunkSize
		co := off % chunkSize
		n := chunkSize - co
		if int64(len(b)) < n {
			n = int64(len(b))
		}
		if chunk, ok := c.chunks[ci]; ok {
			copy(b[:n], chunk[co:co+n])
		}
		// Missing chunks are holes; the caller pre-zeroed the buffer.
		b = b[n:]
		off += n
	}
}

// truncate discards chunks entirely beyond the new size and zeroes the
// tail of the boundary chunk, so a later re-extension reads zeros rather
// than stale data.
func (c *content) truncate(size int64) {
	boundary := size / chunkSize
	for ci, chunk := range c.chunks {
		switch {
		case ci > boundary:
			delete(c.chunks, ci)
		case ci == boundary:
			from := size % chunkSize
			if from == 0 {
				delete(c.chunks, ci)
				continue
			}
			for i := from; i < chunkSize; i++ {
				chunk[i] = 0
			}
		}
	}
}
