// Package vfs implements the in-memory hierarchical file system that stands
// in for the 4.2 BSD fast file system in the simulated kernel.
//
// The file system provides the semantics the trace study depends on:
// inodes with stable, never-reused identifiers (the trace's file ids),
// hierarchical directories, unlink with link counts, truncation, and sparse
// file content. Content is stored in lazily allocated fixed-size chunks so
// that workloads which only care about sizes (the common case in the
// simulator) pay nothing for data they never materialize: SetSize extends
// or shrinks a file without allocating, and reads of unmaterialized ranges
// return zero bytes, exactly like reading a hole in an FFS file.
//
// The package is deliberately not safe for concurrent use; the simulated
// kernel is single-goroutine, like a 1985 VAX.
package vfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Ino is an inode number. Inode numbers are never reused, so an Ino
// identifies one incarnation of a file for the life of the file system,
// which is what the trace format's FileID requires.
type Ino uint64

// FileType distinguishes regular files from directories.
type FileType uint8

// File types.
const (
	TypeRegular FileType = iota
	TypeDir
)

// String returns "file" or "dir".
func (t FileType) String() string {
	if t == TypeDir {
		return "dir"
	}
	return "file"
}

// Errors returned by file system operations.
var (
	ErrNotExist = errors.New("vfs: file does not exist")
	ErrExist    = errors.New("vfs: file already exists")
	ErrIsDir    = errors.New("vfs: is a directory")
	ErrNotDir   = errors.New("vfs: not a directory")
	ErrNotEmpty = errors.New("vfs: directory not empty")
	ErrInvalid  = errors.New("vfs: invalid argument")
)

// Inode is one file or directory. Exported fields are read-only to
// callers; all mutation goes through FS and Inode methods so invariants
// (sizes, link counts, chunk maps) stay consistent.
type Inode struct {
	ino      Ino
	typ      FileType
	size     int64
	nlink    int
	children map[string]*Inode // directories only
	content  *content          // regular files only, nil until materialized
}

// Ino returns the inode number.
func (n *Inode) Ino() Ino { return n.ino }

// Type returns the file type.
func (n *Inode) Type() FileType { return n.typ }

// Size returns the current file size in bytes (0 for directories).
func (n *Inode) Size() int64 { return n.size }

// Nlink returns the link count. A regular file with Nlink 0 has been
// unlinked and survives only while something holds a reference (an open
// file descriptor in the kernel layer).
func (n *Inode) Nlink() int { return n.nlink }

// IsDir reports whether the inode is a directory.
func (n *Inode) IsDir() bool { return n.typ == TypeDir }

// FS is an in-memory file system rooted at "/".
type FS struct {
	root    *Inode
	nextIno Ino
	nfiles  int64 // live regular files (nlink > 0)
	ndirs   int64 // live directories, including root
}

// New creates an empty file system containing only the root directory.
// The root has inode number 1; inode 0 is reserved as "no inode".
func New() *FS {
	fs := &FS{nextIno: 1}
	fs.root = fs.newInode(TypeDir)
	fs.root.nlink = 1
	fs.ndirs = 1
	return fs
}

func (fs *FS) newInode(t FileType) *Inode {
	n := &Inode{ino: fs.nextIno, typ: t}
	fs.nextIno++
	if t == TypeDir {
		n.children = make(map[string]*Inode)
	}
	return n
}

// NumFiles returns the number of live regular files.
func (fs *FS) NumFiles() int64 { return fs.nfiles }

// NumDirs returns the number of live directories, including the root.
func (fs *FS) NumDirs() int64 { return fs.ndirs }

// split cleans an absolute path into its components. It rejects relative
// and empty paths; the simulated kernel always works with absolute paths.
// Only cold setup paths (MkdirAll) use it; the hot resolution path is
// walk, which scans components in place without allocating.
func split(path string) ([]string, error) {
	if !strings.HasPrefix(path, "/") {
		return nil, fmt.Errorf("%w: path %q is not absolute", ErrInvalid, path)
	}
	raw := strings.Split(path, "/")
	parts := raw[:0]
	for _, p := range raw {
		switch p {
		case "", ".":
			// skip
		case "..":
			return nil, fmt.Errorf("%w: path %q contains ..", ErrInvalid, path)
		default:
			parts = append(parts, p)
		}
	}
	return parts, nil
}

// walk resolves all but the last component of path, returning the parent
// directory and the final name. A path naming the root returns (root, "").
// Components are scanned in place — name resolution is the single hottest
// operation the simulated kernel performs, and this path allocates
// nothing (the returned name is a substring of path).
func (fs *FS) walk(path string) (dir *Inode, name string, err error) {
	if len(path) == 0 || path[0] != '/' {
		return nil, "", fmt.Errorf("%w: path %q is not absolute", ErrInvalid, path)
	}
	cur := fs.root
	i := 1
	for i < len(path) {
		j := i
		for j < len(path) && path[j] != '/' {
			j++
		}
		seg := path[i:j]
		i = j + 1
		switch seg {
		case "", ".":
			continue
		case "..":
			return nil, "", fmt.Errorf("%w: path %q contains ..", ErrInvalid, path)
		}
		if name != "" {
			next, ok := cur.children[name]
			if !ok {
				return nil, "", fmt.Errorf("%w: %q (component %q)", ErrNotExist, path, name)
			}
			if !next.IsDir() {
				return nil, "", fmt.Errorf("%w: %q (component %q)", ErrNotDir, path, name)
			}
			cur = next
		}
		name = seg
	}
	return cur, name, nil
}

// Lookup resolves a path to its inode.
func (fs *FS) Lookup(path string) (*Inode, error) {
	dir, name, err := fs.walk(path)
	if err != nil {
		return nil, err
	}
	if name == "" {
		return dir, nil // the root
	}
	n, ok := dir.children[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotExist, path)
	}
	return n, nil
}

// Exists reports whether the path resolves.
func (fs *FS) Exists(path string) bool {
	_, err := fs.Lookup(path)
	return err == nil
}

// Create makes a regular file at path. If the file already exists it is
// truncated to zero length and (inode unchanged) returned with created ==
// false; this mirrors O_CREAT|O_TRUNC, which is the "create" system call
// the tracer logs. Creating over a directory is an error.
func (fs *FS) Create(path string) (n *Inode, created bool, err error) {
	dir, name, err := fs.walk(path)
	if err != nil {
		return nil, false, err
	}
	if name == "" {
		return nil, false, fmt.Errorf("%w: cannot create root", ErrInvalid)
	}
	if existing, ok := dir.children[name]; ok {
		if existing.IsDir() {
			return nil, false, fmt.Errorf("%w: %q", ErrIsDir, path)
		}
		existing.truncate(0)
		return existing, false, nil
	}
	n = fs.newInode(TypeRegular)
	n.nlink = 1
	dir.children[name] = n
	fs.nfiles++
	return n, true, nil
}

// Mkdir creates a directory at path. The parent must exist.
func (fs *FS) Mkdir(path string) (*Inode, error) {
	dir, name, err := fs.walk(path)
	if err != nil {
		return nil, err
	}
	if name == "" {
		return nil, fmt.Errorf("%w: root already exists", ErrExist)
	}
	if _, ok := dir.children[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrExist, path)
	}
	n := fs.newInode(TypeDir)
	n.nlink = 1
	dir.children[name] = n
	fs.ndirs++
	return n, nil
}

// MkdirAll creates a directory and any missing parents.
func (fs *FS) MkdirAll(path string) (*Inode, error) {
	parts, err := split(path)
	if err != nil {
		return nil, err
	}
	cur := fs.root
	for _, p := range parts {
		next, ok := cur.children[p]
		if !ok {
			next = fs.newInode(TypeDir)
			next.nlink = 1
			cur.children[p] = next
			fs.ndirs++
		} else if !next.IsDir() {
			return nil, fmt.Errorf("%w: %q (component %q)", ErrNotDir, path, p)
		}
		cur = next
	}
	return cur, nil
}

// Unlink removes the directory entry for a regular file. The inode's link
// count is decremented; its content survives until the last reference
// (kernel-held open files) is gone, matching UNIX semantics — the paper's
// short-lifetime temp files are routinely deleted while still open.
func (fs *FS) Unlink(path string) (*Inode, error) {
	dir, name, err := fs.walk(path)
	if err != nil {
		return nil, err
	}
	if name == "" {
		return nil, fmt.Errorf("%w: cannot unlink root", ErrInvalid)
	}
	n, ok := dir.children[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotExist, path)
	}
	if n.IsDir() {
		return nil, fmt.Errorf("%w: %q", ErrIsDir, path)
	}
	delete(dir.children, name)
	n.nlink--
	if n.nlink == 0 {
		fs.nfiles--
	}
	return n, nil
}

// Rmdir removes an empty directory.
func (fs *FS) Rmdir(path string) error {
	dir, name, err := fs.walk(path)
	if err != nil {
		return err
	}
	if name == "" {
		return fmt.Errorf("%w: cannot remove root", ErrInvalid)
	}
	n, ok := dir.children[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotExist, path)
	}
	if !n.IsDir() {
		return fmt.Errorf("%w: %q", ErrNotDir, path)
	}
	if len(n.children) != 0 {
		return fmt.Errorf("%w: %q", ErrNotEmpty, path)
	}
	delete(dir.children, name)
	n.nlink--
	fs.ndirs--
	return nil
}

// Link creates a hard link: a new directory entry at newPath naming the
// inode at oldPath. Directories cannot be hard-linked.
func (fs *FS) Link(oldPath, newPath string) error {
	n, err := fs.Lookup(oldPath)
	if err != nil {
		return err
	}
	if n.IsDir() {
		return fmt.Errorf("%w: %q", ErrIsDir, oldPath)
	}
	dir, name, err := fs.walk(newPath)
	if err != nil {
		return err
	}
	if name == "" {
		return fmt.Errorf("%w: cannot link over root", ErrInvalid)
	}
	if _, ok := dir.children[name]; ok {
		return fmt.Errorf("%w: %q", ErrExist, newPath)
	}
	dir.children[name] = n
	n.nlink++
	return nil
}

// Rename moves a file or directory. The destination must not exist.
func (fs *FS) Rename(oldPath, newPath string) error {
	oldDir, oldName, err := fs.walk(oldPath)
	if err != nil {
		return err
	}
	if oldName == "" {
		return fmt.Errorf("%w: cannot rename root", ErrInvalid)
	}
	n, ok := oldDir.children[oldName]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotExist, oldPath)
	}
	newDir, newName, err := fs.walk(newPath)
	if err != nil {
		return err
	}
	if newName == "" {
		return fmt.Errorf("%w: cannot rename over root", ErrInvalid)
	}
	if _, ok := newDir.children[newName]; ok {
		return fmt.Errorf("%w: %q", ErrExist, newPath)
	}
	delete(oldDir.children, oldName)
	newDir.children[newName] = n
	return nil
}

// Truncate changes the size of the regular file at path. Growing a file
// creates a hole; shrinking discards content beyond the new length.
func (fs *FS) Truncate(path string, size int64) (*Inode, error) {
	if size < 0 {
		return nil, fmt.Errorf("%w: negative size %d", ErrInvalid, size)
	}
	n, err := fs.Lookup(path)
	if err != nil {
		return nil, err
	}
	if n.IsDir() {
		return nil, fmt.Errorf("%w: %q", ErrIsDir, path)
	}
	n.truncate(size)
	return n, nil
}

// ReadDir returns the sorted names in the directory at path.
func (fs *FS) ReadDir(path string) ([]string, error) {
	n, err := fs.Lookup(path)
	if err != nil {
		return nil, err
	}
	if !n.IsDir() {
		return nil, fmt.Errorf("%w: %q", ErrNotDir, path)
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// truncate implements size changes on a regular file's inode.
func (n *Inode) truncate(size int64) {
	if n.content != nil {
		n.content.truncate(size)
	}
	n.size = size
}

// SetSize sets the file size without materializing content. It is the
// fast path the simulated kernel uses for workload writes, where only the
// byte counts matter. Shrinking discards materialized content beyond the
// new size, like truncate.
func (n *Inode) SetSize(size int64) {
	if size < 0 {
		panic("vfs: SetSize with negative size")
	}
	n.truncate(size)
}

// WriteAt writes b at offset off, extending the file as needed.
func (n *Inode) WriteAt(b []byte, off int64) (int, error) {
	if n.IsDir() {
		return 0, ErrIsDir
	}
	if off < 0 {
		return 0, fmt.Errorf("%w: negative offset", ErrInvalid)
	}
	if len(b) == 0 {
		return 0, nil
	}
	if n.content == nil {
		n.content = newContent()
	}
	n.content.writeAt(b, off)
	if end := off + int64(len(b)); end > n.size {
		n.size = end
	}
	return len(b), nil
}

// ReadAt reads into b from offset off. Reads of holes and unmaterialized
// ranges return zero bytes. Reading at or past the end of file returns
// (0, io.EOF-like short count): the returned count is the bytes available.
func (n *Inode) ReadAt(b []byte, off int64) (int, error) {
	if n.IsDir() {
		return 0, ErrIsDir
	}
	if off < 0 {
		return 0, fmt.Errorf("%w: negative offset", ErrInvalid)
	}
	if off >= n.size {
		return 0, nil
	}
	avail := n.size - off
	if int64(len(b)) > avail {
		b = b[:avail]
	}
	for i := range b {
		b[i] = 0
	}
	if n.content != nil {
		n.content.readAt(b, off)
	}
	return len(b), nil
}

// Walk visits every inode in the file system in depth-first order with
// deterministic (sorted) traversal, calling fn with each absolute path.
// The root is visited as "/". It is how the static-scan analyses (in the
// style of Satyanarayanan's disk scans, which the paper compares against)
// enumerate the live file population.
func (fs *FS) Walk(fn func(path string, n *Inode)) {
	var walk func(path string, n *Inode)
	walk = func(path string, n *Inode) {
		fn(path, n)
		if !n.IsDir() {
			return
		}
		names := make([]string, 0, len(n.children))
		for name := range n.children {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			child := n.children[name]
			childPath := path + "/" + name
			if path == "/" {
				childPath = "/" + name
			}
			walk(childPath, child)
		}
	}
	walk("/", fs.root)
}
