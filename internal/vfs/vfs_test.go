package vfs

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCreateLookup(t *testing.T) {
	fs := New()
	n, created, err := fs.Create("/a")
	if err != nil || !created {
		t.Fatalf("Create: %v created=%v", err, created)
	}
	if n.Type() != TypeRegular || n.Size() != 0 || n.Nlink() != 1 {
		t.Errorf("new file state wrong: %v %d %d", n.Type(), n.Size(), n.Nlink())
	}
	got, err := fs.Lookup("/a")
	if err != nil || got != n {
		t.Fatalf("Lookup: %v", err)
	}
	if fs.NumFiles() != 1 {
		t.Errorf("NumFiles = %d, want 1", fs.NumFiles())
	}
}

func TestCreateTruncatesExisting(t *testing.T) {
	fs := New()
	n, _, err := fs.Create("/a")
	if err != nil {
		t.Fatal(err)
	}
	n.SetSize(1000)
	ino := n.Ino()
	n2, created, err := fs.Create("/a")
	if err != nil {
		t.Fatal(err)
	}
	if created {
		t.Errorf("re-create reported created")
	}
	if n2.Ino() != ino {
		t.Errorf("re-create changed inode: %d -> %d", ino, n2.Ino())
	}
	if n2.Size() != 0 {
		t.Errorf("re-create did not truncate: size %d", n2.Size())
	}
}

func TestInodeNumbersNeverReused(t *testing.T) {
	fs := New()
	seen := map[Ino]bool{}
	for i := 0; i < 100; i++ {
		n, _, err := fs.Create("/f")
		if err != nil {
			t.Fatal(err)
		}
		// A fresh create only happens after unlink; re-creates reuse the
		// inode, so unlink each round to force fresh inodes.
		if seen[n.Ino()] && i > 0 {
			t.Fatalf("inode %d reused", n.Ino())
		}
		seen[n.Ino()] = true
		if _, err := fs.Unlink("/f"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMkdirAndNesting(t *testing.T) {
	fs := New()
	if _, err := fs.Mkdir("/usr"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Mkdir("/usr/include"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fs.Create("/usr/include/stdio.h"); err != nil {
		t.Fatal(err)
	}
	n, err := fs.Lookup("/usr/include/stdio.h")
	if err != nil {
		t.Fatal(err)
	}
	if n.IsDir() {
		t.Errorf("file reported as dir")
	}
	if fs.NumDirs() != 3 { // root, usr, include
		t.Errorf("NumDirs = %d, want 3", fs.NumDirs())
	}
}

func TestMkdirAll(t *testing.T) {
	fs := New()
	if _, err := fs.MkdirAll("/a/b/c/d"); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/a/b/c/d") {
		t.Errorf("MkdirAll path missing")
	}
	// Idempotent.
	if _, err := fs.MkdirAll("/a/b/c/d"); err != nil {
		t.Errorf("MkdirAll not idempotent: %v", err)
	}
	// Through a file is an error.
	if _, _, err := fs.Create("/a/file"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.MkdirAll("/a/file/x"); !errors.Is(err, ErrNotDir) {
		t.Errorf("MkdirAll through file = %v, want ErrNotDir", err)
	}
}

func TestPathErrors(t *testing.T) {
	fs := New()
	cases := []struct {
		op   func() error
		want error
	}{
		{func() error { _, err := fs.Lookup("relative"); return err }, ErrInvalid},
		{func() error { _, err := fs.Lookup("/a/../b"); return err }, ErrInvalid},
		{func() error { _, err := fs.Lookup("/missing"); return err }, ErrNotExist},
		{func() error { _, _, err := fs.Create("/"); return err }, ErrInvalid},
		{func() error { _, err := fs.Mkdir("/"); return err }, ErrExist},
		{func() error { _, err := fs.Unlink("/"); return err }, ErrInvalid},
		{func() error { _, err := fs.Unlink("/missing"); return err }, ErrNotExist},
		{func() error { return fs.Rmdir("/missing") }, ErrNotExist},
		{func() error { _, err := fs.Truncate("/missing", 0); return err }, ErrNotExist},
		{func() error { _, err := fs.Truncate("/", 0); return err }, ErrIsDir},
	}
	for i, c := range cases {
		if err := c.op(); !errors.Is(err, c.want) {
			t.Errorf("case %d: err = %v, want %v", i, err, c.want)
		}
	}
}

func TestLookupRoot(t *testing.T) {
	fs := New()
	n, err := fs.Lookup("/")
	if err != nil || !n.IsDir() || n.Ino() != 1 {
		t.Fatalf("root lookup: %v %v", n, err)
	}
}

func TestCreateOverDirFails(t *testing.T) {
	fs := New()
	if _, err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fs.Create("/d"); !errors.Is(err, ErrIsDir) {
		t.Errorf("Create over dir = %v, want ErrIsDir", err)
	}
}

func TestUnlinkSemantics(t *testing.T) {
	fs := New()
	n, _, err := fs.Create("/tmp1")
	if err != nil {
		t.Fatal(err)
	}
	removed, err := fs.Unlink("/tmp1")
	if err != nil {
		t.Fatal(err)
	}
	if removed != n {
		t.Errorf("Unlink returned wrong inode")
	}
	if n.Nlink() != 0 {
		t.Errorf("Nlink = %d after unlink, want 0", n.Nlink())
	}
	if fs.Exists("/tmp1") {
		t.Errorf("file still visible after unlink")
	}
	if fs.NumFiles() != 0 {
		t.Errorf("NumFiles = %d, want 0", fs.NumFiles())
	}
	// The inode is still usable by holders of a reference (open fds).
	if _, err := n.WriteAt([]byte("x"), 0); err != nil {
		t.Errorf("write to unlinked inode failed: %v", err)
	}
}

func TestUnlinkDirFails(t *testing.T) {
	fs := New()
	if _, err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Unlink("/d"); !errors.Is(err, ErrIsDir) {
		t.Errorf("Unlink dir = %v, want ErrIsDir", err)
	}
}

func TestRmdir(t *testing.T) {
	fs := New()
	if _, err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fs.Create("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir("/d"); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("Rmdir non-empty = %v, want ErrNotEmpty", err)
	}
	if _, err := fs.Unlink("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir("/d"); err != nil {
		t.Fatalf("Rmdir: %v", err)
	}
	if fs.Exists("/d") {
		t.Errorf("dir still exists")
	}
	if fs.NumDirs() != 1 {
		t.Errorf("NumDirs = %d, want 1 (root)", fs.NumDirs())
	}
	// Rmdir of a file is ErrNotDir.
	if _, _, err := fs.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir("/f"); !errors.Is(err, ErrNotDir) {
		t.Errorf("Rmdir file = %v, want ErrNotDir", err)
	}
}

func TestLink(t *testing.T) {
	fs := New()
	n, _, err := fs.Create("/a")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Link("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	if n.Nlink() != 2 {
		t.Errorf("Nlink = %d, want 2", n.Nlink())
	}
	b, err := fs.Lookup("/b")
	if err != nil || b != n {
		t.Fatalf("link does not alias: %v", err)
	}
	if _, err := fs.Unlink("/a"); err != nil {
		t.Fatal(err)
	}
	if n.Nlink() != 1 {
		t.Errorf("Nlink after one unlink = %d, want 1", n.Nlink())
	}
	if fs.NumFiles() != 1 {
		t.Errorf("NumFiles = %d, want 1 (still linked at /b)", fs.NumFiles())
	}
	// Linking a directory fails.
	if _, err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Link("/d", "/d2"); !errors.Is(err, ErrIsDir) {
		t.Errorf("Link dir = %v, want ErrIsDir", err)
	}
	// Linking over an existing name fails.
	if err := fs.Link("/b", "/b"); !errors.Is(err, ErrExist) {
		t.Errorf("Link over existing = %v, want ErrExist", err)
	}
}

func TestRename(t *testing.T) {
	fs := New()
	n, _, err := fs.Create("/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/a", "/d/b"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/a") {
		t.Errorf("old name still exists")
	}
	got, err := fs.Lookup("/d/b")
	if err != nil || got != n {
		t.Fatalf("rename target wrong: %v", err)
	}
	// Destination exists.
	if _, _, err := fs.Create("/c"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/c", "/d/b"); !errors.Is(err, ErrExist) {
		t.Errorf("Rename over existing = %v, want ErrExist", err)
	}
	// Missing source.
	if err := fs.Rename("/missing", "/x"); !errors.Is(err, ErrNotExist) {
		t.Errorf("Rename missing = %v, want ErrNotExist", err)
	}
}

func TestReadDir(t *testing.T) {
	fs := New()
	for _, p := range []string{"/c", "/a", "/b"} {
		if _, _, err := fs.Create(p); err != nil {
			t.Fatal(err)
		}
	}
	names, err := fs.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names, []string{"a", "b", "c"}) {
		t.Errorf("ReadDir = %v", names)
	}
	if _, err := fs.ReadDir("/a"); !errors.Is(err, ErrNotDir) {
		t.Errorf("ReadDir on file = %v, want ErrNotDir", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := New()
	n, _, err := fs.Create("/data")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello, 4.2 BSD")
	if _, err := n.WriteAt(msg, 100); err != nil {
		t.Fatal(err)
	}
	if n.Size() != 100+int64(len(msg)) {
		t.Errorf("Size = %d", n.Size())
	}
	buf := make([]byte, len(msg))
	nr, err := n.ReadAt(buf, 100)
	if err != nil || nr != len(msg) {
		t.Fatalf("ReadAt: %d %v", nr, err)
	}
	if !bytes.Equal(buf, msg) {
		t.Errorf("ReadAt = %q, want %q", buf, msg)
	}
	// The hole before offset 100 reads as zeros.
	hole := make([]byte, 100)
	nr, err = n.ReadAt(hole, 0)
	if err != nil || nr != 100 {
		t.Fatalf("ReadAt hole: %d %v", nr, err)
	}
	for i, b := range hole {
		if b != 0 {
			t.Fatalf("hole byte %d = %d, want 0", i, b)
		}
	}
}

func TestWriteAcrossChunks(t *testing.T) {
	fs := New()
	n, _, err := fs.Create("/big")
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 3*chunkSize+17)
	rng := rand.New(rand.NewSource(1))
	rng.Read(data)
	off := int64(chunkSize - 5)
	if _, err := n.WriteAt(data, off); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := n.ReadAt(got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("cross-chunk round trip mismatch")
	}
}

func TestReadPastEOF(t *testing.T) {
	fs := New()
	n, _, _ := fs.Create("/f")
	n.SetSize(10)
	buf := make([]byte, 20)
	nr, err := n.ReadAt(buf, 5)
	if err != nil || nr != 5 {
		t.Errorf("short read = %d %v, want 5 nil", nr, err)
	}
	nr, err = n.ReadAt(buf, 10)
	if err != nil || nr != 0 {
		t.Errorf("read at EOF = %d %v, want 0 nil", nr, err)
	}
	if _, err := n.ReadAt(buf, -1); err == nil {
		t.Errorf("negative offset accepted")
	}
}

func TestTruncateZeroesStaleData(t *testing.T) {
	fs := New()
	n, _, _ := fs.Create("/f")
	data := bytes.Repeat([]byte{0xAB}, 2*chunkSize)
	if _, err := n.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Truncate("/f", 100); err != nil {
		t.Fatal(err)
	}
	if n.Size() != 100 {
		t.Errorf("Size = %d, want 100", n.Size())
	}
	// Re-extend and confirm the formerly-written region reads zero.
	n.SetSize(2 * chunkSize)
	buf := make([]byte, 50)
	if _, err := n.ReadAt(buf, 100); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("stale byte at %d: %d", i, b)
		}
	}
	// Bytes before the truncation point survive.
	if _, err := n.ReadAt(buf[:1], 50); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xAB {
		t.Errorf("surviving byte = %d, want 0xAB", buf[0])
	}
}

func TestSetSizeDoesNotMaterialize(t *testing.T) {
	fs := New()
	n, _, _ := fs.Create("/sparse")
	n.SetSize(1 << 30) // a gigabyte, instantly
	if n.content != nil && len(n.content.chunks) != 0 {
		t.Errorf("SetSize materialized chunks")
	}
	buf := make([]byte, 10)
	nr, err := n.ReadAt(buf, 1<<20)
	if err != nil || nr != 10 {
		t.Fatalf("ReadAt sparse: %d %v", nr, err)
	}
}

func TestDirWriteReadFails(t *testing.T) {
	fs := New()
	d, _ := fs.Mkdir("/d")
	if _, err := d.WriteAt([]byte("x"), 0); !errors.Is(err, ErrIsDir) {
		t.Errorf("WriteAt on dir = %v", err)
	}
	if _, err := d.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrIsDir) {
		t.Errorf("ReadAt on dir = %v", err)
	}
}

// Property: WriteAt then ReadAt returns what was written, for arbitrary
// offsets and lengths within a bounded window.
func TestWriteReadProperty(t *testing.T) {
	f := func(seed int64, rawOff uint32, rawLen uint16) bool {
		fs := New()
		n, _, _ := fs.Create("/f")
		off := int64(rawOff % (4 * chunkSize))
		length := int(rawLen%2048) + 1
		data := make([]byte, length)
		rng := rand.New(rand.NewSource(seed))
		rng.Read(data)
		if _, err := n.WriteAt(data, off); err != nil {
			return false
		}
		got := make([]byte, length)
		nr, err := n.ReadAt(got, off)
		return err == nil && nr == length && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: a random sequence of creates/unlinks keeps NumFiles equal to
// the count of distinct visible paths.
func TestNumFilesInvariant(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		fs := New()
		rng := rand.New(rand.NewSource(seed))
		paths := []string{"/a", "/b", "/c", "/d"}
		for _, op := range ops {
			p := paths[rng.Intn(len(paths))]
			if op%2 == 0 {
				fs.Create(p)
			} else {
				fs.Unlink(p)
			}
		}
		visible := int64(0)
		for _, p := range paths {
			if fs.Exists(p) {
				visible++
			}
		}
		return fs.NumFiles() == visible
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWalk(t *testing.T) {
	fs := New()
	fs.MkdirAll("/a/b")
	fs.Create("/a/b/f1")
	fs.Create("/a/f2")
	fs.Create("/z")
	var paths []string
	fs.Walk(func(path string, n *Inode) {
		paths = append(paths, path)
	})
	want := []string{"/", "/a", "/a/b", "/a/b/f1", "/a/f2", "/z"}
	if !reflect.DeepEqual(paths, want) {
		t.Errorf("Walk order = %v, want %v", paths, want)
	}
	// Deterministic across runs.
	var again []string
	fs.Walk(func(path string, n *Inode) { again = append(again, path) })
	if !reflect.DeepEqual(paths, again) {
		t.Errorf("Walk not deterministic")
	}
}
