package ffs

import (
	"fmt"
	"io"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/xfer"
)

// Replay drives the allocator with the file population implied by a
// trace: files are (re)allocated at each close to the size the transfer
// reconstruction derives, resized on truncate, and freed on unlink. The
// result quantifies the paper's §6.3 remark about disk-space waste as a
// function of block size.
//
// Files that exist before the trace begins are allocated when first seen
// (at their size-at-open), so the steady-state population — not just the
// trace's new files — occupies the disk.
type ReplayResult struct {
	Geometry Geometry
	// Final is the utilization when the trace ends; PeakAllocated and
	// PeakData track the high-water marks.
	Final         Usage
	PeakAllocated int64
	PeakData      int64
	// LiveFiles is the file population at the end; Failed counts
	// allocations refused for lack of space (zero unless the disk
	// geometry is too small for the trace).
	LiveFiles int
	Failed    int64
}

// popOp is one step of a trace's file-population history: place (id is
// (re)allocated at size) or, with place false, free. The history is a
// pure function of the trace — no disk geometry enters into it — so one
// extraction serves every geometry a sweep replays.
type popOp struct {
	place bool
	id    trace.FileID
	size  int64
}

// populationOps extracts the file-population history of a trace: files
// are (re)sized at each close to the size the transfer reconstruction
// derives, at first sight (pre-existing files, at their size-at-open),
// and on truncate; unlinks free them. Closes that leave a file's size
// unchanged emit nothing.
func populationOps(src trace.Source) ([]popOp, error) {
	var ops []popOp
	sizes := make(map[trace.FileID]int64)
	place := func(id trace.FileID, size int64) {
		ops = append(ops, popOp{place: true, id: id, size: size})
		sizes[id] = size
	}
	sc := xfer.NewScanner()
	sc.OnOpenEnd = func(o xfer.OpenSummary) {
		if cur, ok := sizes[o.File]; ok && cur == o.SizeAtClose {
			return // unchanged
		}
		place(o.File, o.SizeAtClose)
	}
	feed := func(e trace.Event) {
		switch e.Kind {
		case trace.KindOpen:
			// First sight of a pre-existing file: allocate it.
			if _, ok := sizes[e.File]; !ok && e.Size > 0 {
				place(e.File, e.Size)
			}
		case trace.KindTruncate:
			if sz, ok := sizes[e.File]; ok && sz != e.Size {
				place(e.File, e.Size)
			}
		case trace.KindUnlink:
			if _, ok := sizes[e.File]; ok {
				ops = append(ops, popOp{id: e.File})
				delete(sizes, e.File)
			}
		}
		sc.Feed(e)
	}
	buf := trace.GetBatch()
	defer trace.PutBatch(buf)
	for {
		n, err := trace.ReadBatch(src, buf)
		if n == 0 {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		for _, e := range buf[:n] {
			feed(e)
		}
	}
	sc.Finish()
	if errs := sc.Errs(); len(errs) > 0 {
		return nil, fmt.Errorf("ffs: malformed trace: %v", errs[0])
	}
	return ops, nil
}

// replayPop drives a population history against a fresh disk.
func replayPop(ops []popOp, geo Geometry) (*ReplayResult, error) {
	disk, err := NewDisk(geo)
	if err != nil {
		return nil, err
	}
	res := &ReplayResult{Geometry: geo}
	files := make(map[trace.FileID]*File)
	for _, op := range ops {
		if !op.place {
			if f, ok := files[op.id]; ok {
				disk.Free(f)
				delete(files, op.id)
			}
			continue
		}
		f, err := disk.Realloc(files[op.id], op.size)
		if err != nil {
			res.Failed++
			delete(files, op.id)
			continue
		}
		files[op.id] = f
		if disk.allocated > res.PeakAllocated {
			res.PeakAllocated = disk.allocated
		}
		if disk.dataBytes > res.PeakData {
			res.PeakData = disk.dataBytes
		}
	}
	res.Final = disk.Usage()
	res.LiveFiles = len(files)
	return res, nil
}

// Replay runs a trace's file population against a fresh disk with the
// given geometry.
func Replay(events []trace.Event, geo Geometry) (*ReplayResult, error) {
	ops, err := populationOps(trace.NewSliceSource(events))
	if err != nil {
		return nil, err
	}
	return replayPop(ops, geo)
}

// WasteSweep replays the trace across block sizes, with fragments (FFS
// style, 8 per block where the block size allows) and without (the old
// file system's whole-block allocation), reporting the internal
// fragmentation of each configuration. The geometry is sized from the
// trace's own peak so no run fails for space.
type WasteSweepRow struct {
	BlockSize   int64
	FragWaste   float64 // waste fraction with FFS fragments
	NoFragWaste float64 // waste fraction with whole-block allocation
	FragAlloc   int64
	NoFragAlloc int64
	DataBytes   int64
}

// WasteSweep runs the §6.3 experiment over an in-memory trace. It is
// WasteSweepSource over a slice.
func WasteSweep(events []trace.Event, blockSizes []int64) ([]WasteSweepRow, error) {
	return WasteSweepSource(trace.NewSliceSource(events), blockSizes)
}

// WasteSweepSource runs the §6.3 experiment over an event stream. The
// population history is geometry-independent, so it is extracted from the
// stream once — one pass, no event materialization — and replayed against
// each of the sweep's disks.
func WasteSweepSource(src trace.Source, blockSizes []int64) ([]WasteSweepRow, error) {
	ops, err := populationOps(src)
	if err != nil {
		return nil, err
	}
	rows := make([]WasteSweepRow, 0, len(blockSizes))
	for _, bs := range blockSizes {
		frag := bs / 8
		if frag < 512 {
			frag = 512
		}
		if frag > bs {
			frag = bs
		}
		geo := Geometry{BlockSize: bs, FragSize: frag, Groups: 16, BlocksPerGroup: int(64 << 20 / bs)}
		withFrag, err := replayPop(ops, geo)
		if err != nil {
			return nil, err
		}
		geo.FragSize = bs
		without, err := replayPop(ops, geo)
		if err != nil {
			return nil, err
		}
		if withFrag.Failed > 0 || without.Failed > 0 {
			return nil, fmt.Errorf("ffs: disk too small at block size %d (%d failed allocations)",
				bs, withFrag.Failed+without.Failed)
		}
		rows = append(rows, WasteSweepRow{
			BlockSize:   bs,
			FragWaste:   withFrag.Final.WasteFraction,
			NoFragWaste: without.Final.WasteFraction,
			FragAlloc:   withFrag.Final.AllocatedBytes,
			NoFragAlloc: without.Final.AllocatedBytes,
			DataBytes:   withFrag.Final.DataBytes,
		})
	}
	return rows, nil
}
