// Package ffs implements the 4.2 BSD Fast File System's disk allocation
// scheme — full blocks plus block fragments — at the level of detail the
// paper's §6.3 discussion needs.
//
// The paper observes a tension: large blocks are attractive for the cache
// (Table VII) but waste disk space on small files, and then notes that the
// FFS design resolves it: "a scheme like the one in 4.2 BSD, which uses
// multiple block sizes on disk to avoid wasted space for small files,
// works well in conjunction with a fixed-block-size cache." This package
// makes that remark quantitative: a disk is divided into cylinder groups;
// a file's data occupies whole blocks except for its tail, which is packed
// into a run of contiguous fragments (at most 8 per block, as in FFS)
// shared with other files' tails. Replaying a trace's file population
// against the allocator measures internal fragmentation as a function of
// block size, with and without fragments (see Replay).
package ffs

import (
	"errors"
	"fmt"
)

// Geometry describes a simulated disk.
type Geometry struct {
	// BlockSize is the full block size in bytes; FragSize divides it
	// evenly (FFS allows 1, 2, 4, or 8 fragments per block). Setting
	// FragSize == BlockSize disables sub-block allocation, modeling the
	// old file system the FFS design replaced.
	BlockSize int64
	FragSize  int64
	// Groups and BlocksPerGroup size the disk: cylinder groups spread
	// allocations so related data stays together and free space stays
	// spread out.
	Groups         int
	BlocksPerGroup int
}

// Validate checks the geometry's internal consistency.
func (g Geometry) Validate() error {
	if g.BlockSize <= 0 || g.FragSize <= 0 {
		return errors.New("ffs: block and fragment sizes must be positive")
	}
	if g.BlockSize%g.FragSize != 0 {
		return fmt.Errorf("ffs: block size %d not a multiple of fragment size %d", g.BlockSize, g.FragSize)
	}
	if n := g.BlockSize / g.FragSize; n > 8 {
		return fmt.Errorf("ffs: %d fragments per block exceeds the FFS maximum of 8", n)
	}
	if g.Groups <= 0 || g.BlocksPerGroup <= 0 {
		return errors.New("ffs: need at least one cylinder group with at least one block")
	}
	return nil
}

// Capacity returns the disk's data capacity in bytes.
func (g Geometry) Capacity() int64 {
	return int64(g.Groups) * int64(g.BlocksPerGroup) * g.BlockSize
}

// ErrNoSpace is returned when an allocation cannot be satisfied.
var ErrNoSpace = errors.New("ffs: out of space")

// fragRange addresses a run of fragments within one block: a global
// fragment index plus a count.
type fragRange struct {
	start int64
	count int64
}

// File is an allocated file's on-disk footprint.
type File struct {
	size    int64   // logical bytes
	blocks  []int64 // full block indexes
	tail    fragRange
	hasTail bool
}

// Size returns the logical size.
func (f *File) Size() int64 { return f.size }

// Blocks returns the number of full blocks plus tail fragments the file
// occupies.
func (f *File) Blocks() (full int, tailFrags int64) {
	return len(f.blocks), f.tail.count
}

// group bookkeeping: a stack of (candidate) wholly free blocks with lazy
// validation, plus the set of partially used blocks whose free fragments
// can hold tails.
type group struct {
	freeStack []int64
	partial   map[int64]struct{}
}

// Disk is the allocator state.
type Disk struct {
	geo      Geometry
	fragsPer int64 // fragments per block
	bitmap   []uint64
	used     []int8 // used fragment count per block
	groups   []group

	freeFrags int64
	dataBytes int64 // logical bytes stored
	allocated int64 // fragment bytes allocated
	nextGroup int
}

// NewDisk creates an empty disk.
func NewDisk(geo Geometry) (*Disk, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	fragsPer := geo.BlockSize / geo.FragSize
	totalBlocks := int64(geo.Groups) * int64(geo.BlocksPerGroup)
	d := &Disk{
		geo:       geo,
		fragsPer:  fragsPer,
		bitmap:    make([]uint64, (totalBlocks*fragsPer+63)/64),
		used:      make([]int8, totalBlocks),
		groups:    make([]group, geo.Groups),
		freeFrags: totalBlocks * fragsPer,
	}
	for g := range d.groups {
		d.groups[g].partial = make(map[int64]struct{})
		base := int64(g) * int64(geo.BlocksPerGroup)
		// Push in reverse so low block numbers pop first.
		for b := int64(geo.BlocksPerGroup) - 1; b >= 0; b-- {
			d.groups[g].freeStack = append(d.groups[g].freeStack, base+b)
		}
	}
	return d, nil
}

// Geometry returns the disk's geometry.
func (d *Disk) Geometry() Geometry { return d.geo }

// FreeBytes returns the free space in bytes.
func (d *Disk) FreeBytes() int64 { return d.freeFrags * d.geo.FragSize }

func (d *Disk) isFree(frag int64) bool {
	return d.bitmap[frag/64]&(1<<(frag%64)) == 0
}

func (d *Disk) groupOf(block int64) *group {
	return &d.groups[block/int64(d.geo.BlocksPerGroup)]
}

// setRange marks a fragment range used or free and maintains the per-block
// counters and group indexes.
func (d *Disk) setRange(r fragRange, use bool) {
	block := r.start / d.fragsPer
	g := d.groupOf(block)
	wasUsed := d.used[block]
	for f, end := r.start, r.start+r.count; f < end; {
		lo := f % 64
		n := 64 - lo
		if end-f < n {
			n = end - f
		}
		mask := (^uint64(0) >> (64 - n)) << lo
		if use {
			d.bitmap[f/64] |= mask
		} else {
			d.bitmap[f/64] &^= mask
		}
		f += n
	}
	if use {
		d.used[block] += int8(r.count)
		d.freeFrags -= r.count
	} else {
		d.used[block] -= int8(r.count)
		d.freeFrags += r.count
	}
	nowUsed := d.used[block]
	switch {
	case nowUsed == 0:
		delete(g.partial, block)
		if wasUsed != 0 {
			g.freeStack = append(g.freeStack, block)
		}
	case nowUsed == int8(d.fragsPer):
		delete(g.partial, block)
	default:
		g.partial[block] = struct{}{}
	}
}

// popFreeBlock takes a wholly free block, preferring the given group. The
// free stacks may hold stale entries (a block pushed on free can be taken
// for a tail later), so entries are validated on pop.
func (d *Disk) popFreeBlock(pref int) (int64, bool) {
	for gi := 0; gi < d.geo.Groups; gi++ {
		g := &d.groups[(pref+gi)%d.geo.Groups]
		for len(g.freeStack) > 0 {
			b := g.freeStack[len(g.freeStack)-1]
			g.freeStack = g.freeStack[:len(g.freeStack)-1]
			if d.used[b] == 0 {
				return b, true
			}
		}
	}
	return 0, false
}

// runInBlock finds a run of n contiguous free fragments inside block b,
// returning its start or -1.
func (d *Disk) runInBlock(b, n int64) int64 {
	start := b * d.fragsPer
	run, runStart := int64(0), int64(-1)
	for i := int64(0); i < d.fragsPer; i++ {
		if d.isFree(start + i) {
			if runStart < 0 {
				runStart = start + i
			}
			run++
			if run >= n {
				return runStart
			}
		} else {
			run, runStart = 0, -1
		}
	}
	return -1
}

// allocTail places n fragments, preferring partially used blocks (so tails
// pack together, the FFS policy) and falling back to breaking a free block.
func (d *Disk) allocTail(pref int, n int64) (fragRange, bool) {
	for gi := 0; gi < d.geo.Groups; gi++ {
		g := &d.groups[(pref+gi)%d.geo.Groups]
		for b := range g.partial {
			if s := d.runInBlock(b, n); s >= 0 {
				return fragRange{start: s, count: n}, true
			}
		}
	}
	if b, ok := d.popFreeBlock(pref); ok {
		return fragRange{start: b * d.fragsPer, count: n}, true
	}
	return fragRange{}, false
}

// Alloc places a file of the given size and returns its footprint.
// A zero-size file occupies no fragments.
func (d *Disk) Alloc(size int64) (*File, error) {
	if size < 0 {
		return nil, fmt.Errorf("ffs: negative size %d", size)
	}
	f := &File{size: size}
	fullBlocks := size / d.geo.BlockSize
	tailBytes := size % d.geo.BlockSize
	tailFrags := (tailBytes + d.geo.FragSize - 1) / d.geo.FragSize

	pref := d.nextGroup
	d.nextGroup = (d.nextGroup + 1) % d.geo.Groups

	for i := int64(0); i < fullBlocks; i++ {
		b, ok := d.popFreeBlock(pref)
		if !ok {
			d.release(f)
			return nil, ErrNoSpace
		}
		d.setRange(fragRange{start: b * d.fragsPer, count: d.fragsPer}, true)
		f.blocks = append(f.blocks, b)
	}
	if tailFrags > 0 {
		tail, ok := d.allocTail(pref, tailFrags)
		if !ok {
			d.release(f)
			return nil, ErrNoSpace
		}
		d.setRange(tail, true)
		f.tail = tail
		f.hasTail = true
	}
	d.dataBytes += size
	d.allocated += (fullBlocks*d.fragsPer + tailFrags) * d.geo.FragSize
	return f, nil
}

// release returns a file's fragments without touching the byte accounting.
func (d *Disk) release(f *File) {
	for _, b := range f.blocks {
		d.setRange(fragRange{start: b * d.fragsPer, count: d.fragsPer}, false)
	}
	f.blocks = nil
	if f.hasTail {
		d.setRange(f.tail, false)
		f.hasTail = false
	}
}

// Free releases a file's space.
func (d *Disk) Free(f *File) {
	if f == nil || (len(f.blocks) == 0 && !f.hasTail && f.size == 0) {
		return
	}
	frags := int64(len(f.blocks)) * d.fragsPer
	if f.hasTail {
		frags += f.tail.count
	}
	d.release(f)
	d.dataBytes -= f.size
	d.allocated -= frags * d.geo.FragSize
	f.size = 0
}

// Realloc resizes a file, returning its new footprint. FFS rewrites a
// growing tail into a larger fragment run or a full block; freeing and
// reallocating has the same space accounting.
func (d *Disk) Realloc(f *File, size int64) (*File, error) {
	if f != nil {
		d.Free(f)
	}
	return d.Alloc(size)
}

// Usage is a snapshot of disk utilization.
type Usage struct {
	// Capacity is the disk's data capacity; DataBytes the logical bytes
	// stored; AllocatedBytes the fragment bytes consumed.
	Capacity       int64
	DataBytes      int64
	AllocatedBytes int64
	FreeBytes      int64
	// WasteFraction is internal fragmentation: allocated bytes beyond
	// the logical data, as a fraction of allocated bytes.
	WasteFraction float64
	// FreeBlockFraction is the fraction of free fragments that form
	// whole free blocks — when it drops, large files can no longer be
	// placed even though space remains (external fragmentation).
	FreeBlockFraction float64
}

// Usage computes the current utilization snapshot.
func (d *Disk) Usage() Usage {
	u := Usage{
		Capacity:       d.geo.Capacity(),
		DataBytes:      d.dataBytes,
		AllocatedBytes: d.allocated,
		FreeBytes:      d.freeFrags * d.geo.FragSize,
	}
	if d.allocated > 0 {
		u.WasteFraction = float64(d.allocated-d.dataBytes) / float64(d.allocated)
	}
	var freeBlockFrags int64
	for b := range d.used {
		if d.used[b] == 0 {
			freeBlockFrags += d.fragsPer
		}
	}
	if d.freeFrags > 0 {
		u.FreeBlockFraction = float64(freeBlockFrags) / float64(d.freeFrags)
	}
	return u
}

// checkInvariants verifies the bitmap, counters, and accounting agree; it
// is used by tests.
func (d *Disk) checkInvariants() error {
	var usedFrags int64
	for b := range d.used {
		count := int8(0)
		start := int64(b) * d.fragsPer
		for i := int64(0); i < d.fragsPer; i++ {
			if !d.isFree(start + i) {
				count++
			}
		}
		if count != d.used[b] {
			return fmt.Errorf("block %d: counter %d != bitmap %d", b, d.used[b], count)
		}
		usedFrags += int64(count)
	}
	total := int64(len(d.used)) * d.fragsPer
	if d.freeFrags != total-usedFrags {
		return fmt.Errorf("freeFrags %d != %d", d.freeFrags, total-usedFrags)
	}
	if d.allocated != usedFrags*d.geo.FragSize {
		return fmt.Errorf("allocated %d != used frag bytes %d", d.allocated, usedFrags*d.geo.FragSize)
	}
	return nil
}
