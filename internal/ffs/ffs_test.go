package ffs

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/workload"
)

func mustDisk(t *testing.T, geo Geometry) *Disk {
	t.Helper()
	d, err := NewDisk(geo)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

var smallGeo = Geometry{BlockSize: 4096, FragSize: 512, Groups: 2, BlocksPerGroup: 16}

func TestGeometryValidate(t *testing.T) {
	cases := map[string]Geometry{
		"zeroBlock":    {FragSize: 512, Groups: 1, BlocksPerGroup: 1},
		"zeroFrag":     {BlockSize: 4096, Groups: 1, BlocksPerGroup: 1},
		"notMultiple":  {BlockSize: 4096, FragSize: 1000, Groups: 1, BlocksPerGroup: 1},
		"tooManyFrags": {BlockSize: 8192, FragSize: 512, Groups: 1, BlocksPerGroup: 1},
		"noGroups":     {BlockSize: 4096, FragSize: 512, BlocksPerGroup: 1},
	}
	for name, geo := range cases {
		if err := geo.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := smallGeo.Validate(); err != nil {
		t.Errorf("valid geometry rejected: %v", err)
	}
	if got := smallGeo.Capacity(); got != 2*16*4096 {
		t.Errorf("Capacity = %d", got)
	}
}

func TestAllocAccounting(t *testing.T) {
	d := mustDisk(t, smallGeo)
	// 5000 bytes = 1 full block + 2 fragments (5000-4096=904 -> 2x512).
	f, err := d.Alloc(5000)
	if err != nil {
		t.Fatal(err)
	}
	full, tail := f.Blocks()
	if full != 1 || tail != 2 {
		t.Errorf("footprint = %d blocks + %d frags, want 1+2", full, tail)
	}
	u := d.Usage()
	if u.DataBytes != 5000 {
		t.Errorf("DataBytes = %d", u.DataBytes)
	}
	if u.AllocatedBytes != 4096+1024 {
		t.Errorf("AllocatedBytes = %d, want 5120", u.AllocatedBytes)
	}
	wantWaste := float64(5120-5000) / 5120
	if u.WasteFraction != wantWaste {
		t.Errorf("WasteFraction = %v, want %v", u.WasteFraction, wantWaste)
	}
	if err := d.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	d.Free(f)
	u = d.Usage()
	if u.DataBytes != 0 || u.AllocatedBytes != 0 || u.FreeBytes != smallGeo.Capacity() {
		t.Errorf("after free: %+v", u)
	}
	if err := d.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroSizeFile(t *testing.T) {
	d := mustDisk(t, smallGeo)
	f, err := d.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if full, tail := f.Blocks(); full != 0 || tail != 0 {
		t.Errorf("zero-size footprint: %d+%d", full, tail)
	}
	d.Free(f)
	if err := d.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeSize(t *testing.T) {
	d := mustDisk(t, smallGeo)
	if _, err := d.Alloc(-1); err == nil {
		t.Errorf("negative size accepted")
	}
}

func TestTailsShareBlocks(t *testing.T) {
	d := mustDisk(t, smallGeo)
	// Four 512-byte files should pack into one block's fragments.
	for i := 0; i < 4; i++ {
		if _, err := d.Alloc(512); err != nil {
			t.Fatal(err)
		}
	}
	u := d.Usage()
	if u.AllocatedBytes != 4*512 {
		t.Errorf("AllocatedBytes = %d, want 2048", u.AllocatedBytes)
	}
	// All four tails share one block, so only one block is partially
	// used: free fragments outside it all form whole blocks.
	freeBlocks := (smallGeo.Capacity() - 4096) / 4096 * 4096
	wantFrac := float64(freeBlocks/512) / float64((smallGeo.Capacity()-2048)/512)
	if u.FreeBlockFraction < wantFrac-1e-9 {
		t.Errorf("FreeBlockFraction = %v, want >= %v (tails should pack)", u.FreeBlockFraction, wantFrac)
	}
}

func TestNoFragmentsMode(t *testing.T) {
	geo := smallGeo
	geo.FragSize = geo.BlockSize
	d := mustDisk(t, geo)
	f, err := d.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	u := d.Usage()
	if u.AllocatedBytes != 4096 {
		t.Errorf("whole-block mode allocated %d for 100 bytes", u.AllocatedBytes)
	}
	d.Free(f)
}

func TestOutOfSpace(t *testing.T) {
	d := mustDisk(t, smallGeo) // 128 KB
	if _, err := d.Alloc(smallGeo.Capacity() + 1); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("oversize alloc: %v", err)
	}
	// The failed allocation must not leak space.
	if err := d.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if d.Usage().AllocatedBytes != 0 {
		t.Errorf("failed alloc leaked space")
	}
	// Fill the disk exactly, then overflow.
	f, err := d.Alloc(smallGeo.Capacity())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Alloc(1); !errors.Is(err, ErrNoSpace) {
		t.Errorf("overfull alloc: %v", err)
	}
	d.Free(f)
	if _, err := d.Alloc(1); err != nil {
		t.Errorf("alloc after free: %v", err)
	}
}

func TestRealloc(t *testing.T) {
	d := mustDisk(t, smallGeo)
	f, err := d.Alloc(1000)
	if err != nil {
		t.Fatal(err)
	}
	f, err = d.Realloc(f, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 10000 || d.Usage().DataBytes != 10000 {
		t.Errorf("realloc grow wrong: %+v", d.Usage())
	}
	f, err = d.Realloc(f, 100)
	if err != nil {
		t.Fatal(err)
	}
	if d.Usage().AllocatedBytes != 512 {
		t.Errorf("realloc shrink allocated %d", d.Usage().AllocatedBytes)
	}
	if err := d.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// Realloc from nil behaves like Alloc.
	if _, err := d.Realloc(nil, 100); err != nil {
		t.Errorf("Realloc(nil): %v", err)
	}
}

func TestDoubleFreeHarmless(t *testing.T) {
	d := mustDisk(t, smallGeo)
	f, err := d.Alloc(3000)
	if err != nil {
		t.Fatal(err)
	}
	d.Free(f)
	d.Free(f) // second free is a no-op
	d.Free(nil)
	if err := d.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if d.Usage().AllocatedBytes != 0 {
		t.Errorf("double free corrupted accounting")
	}
}

// Property: any sequence of random allocs and frees keeps the bitmap,
// counters, and byte accounting consistent, and never double-allocates a
// fragment (checkInvariants recomputes from the bitmap).
func TestAllocFreeInvariants(t *testing.T) {
	f := func(seed int64, ops []uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		d, err := NewDisk(Geometry{BlockSize: 4096, FragSize: 512, Groups: 4, BlocksPerGroup: 32})
		if err != nil {
			return false
		}
		var live []*File
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 {
				size := int64(op) * 37 % 30000
				file, err := d.Alloc(size)
				if err == nil {
					live = append(live, file)
				} else if !errors.Is(err, ErrNoSpace) {
					return false
				}
			} else {
				i := rng.Intn(len(live))
				d.Free(live[i])
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		return d.checkInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: waste with fragments is never worse than without, and both
// waste fractions shrink as blocks shrink.
func TestFragmentsNeverWorse(t *testing.T) {
	res, err := workload.Generate(workload.Config{Profile: "A5", Seed: 5, Duration: 30 * trace.Minute})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := WasteSweep(res.Events, []int64{4096, 8192, 16384})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r.FragWaste > r.NoFragWaste+1e-9 {
			t.Errorf("block %d: fragments made waste worse (%.3f > %.3f)", r.BlockSize, r.FragWaste, r.NoFragWaste)
		}
		if i > 0 && r.NoFragWaste < rows[i-1].NoFragWaste-1e-9 {
			t.Errorf("whole-block waste should grow with block size: %v then %v", rows[i-1].NoFragWaste, r.NoFragWaste)
		}
		if r.DataBytes <= 0 {
			t.Errorf("block %d: no data allocated", r.BlockSize)
		}
	}
	// The paper's point: with fragments, even 16-KB blocks waste little.
	last := rows[len(rows)-1]
	if last.FragWaste > 0.25 {
		t.Errorf("FFS fragments should bound waste: %.3f at 16KB", last.FragWaste)
	}
	if last.NoFragWaste < last.FragWaste+0.1 {
		t.Errorf("whole-block allocation should waste much more at 16KB: %.3f vs %.3f",
			last.NoFragWaste, last.FragWaste)
	}
}

func TestReplayTracksPopulation(t *testing.T) {
	events := []trace.Event{
		// Pre-existing file seen at open: allocated at its size.
		{Time: 0, Kind: trace.KindOpen, OpenID: 1, File: 1, Mode: trace.ReadOnly, Size: 6000},
		{Time: 10, Kind: trace.KindClose, OpenID: 1, NewPos: 6000},
		// New file written then deleted.
		{Time: 20, Kind: trace.KindCreate, OpenID: 2, File: 2, Mode: trace.WriteOnly},
		{Time: 30, Kind: trace.KindClose, OpenID: 2, NewPos: 3000},
		{Time: 40, Kind: trace.KindUnlink, File: 2},
		// Truncation shrinks in place.
		{Time: 50, Kind: trace.KindTruncate, File: 1, Size: 1000},
	}
	res, err := Replay(events, Geometry{BlockSize: 4096, FragSize: 512, Groups: 2, BlocksPerGroup: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.LiveFiles != 1 {
		t.Errorf("LiveFiles = %d, want 1", res.LiveFiles)
	}
	if res.Final.DataBytes != 1000 {
		t.Errorf("final data = %d, want 1000", res.Final.DataBytes)
	}
	if res.PeakData != 9000 {
		t.Errorf("peak data = %d, want 9000", res.PeakData)
	}
	if res.Failed != 0 {
		t.Errorf("Failed = %d", res.Failed)
	}
}

func TestReplayRejectsMalformed(t *testing.T) {
	events := []trace.Event{
		{Time: 0, Kind: trace.KindClose, OpenID: 9, NewPos: 0},
	}
	if _, err := Replay(events, smallGeo); err == nil {
		t.Errorf("malformed trace accepted")
	}
}
