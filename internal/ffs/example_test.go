package ffs_test

import (
	"fmt"
	"log"

	"bsdtrace/internal/ffs"
)

// A 5000-byte file on a 4-KB-block, 512-byte-fragment disk occupies one
// full block plus two fragments: 5120 allocated bytes for 5000 of data.
func ExampleDisk_Alloc() {
	disk, err := ffs.NewDisk(ffs.Geometry{
		BlockSize: 4096, FragSize: 512, Groups: 2, BlocksPerGroup: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	f, err := disk.Alloc(5000)
	if err != nil {
		log.Fatal(err)
	}
	full, tail := f.Blocks()
	u := disk.Usage()
	fmt.Printf("%d full block(s) + %d fragment(s)\n", full, tail)
	fmt.Printf("allocated %d bytes for %d bytes of data (%.1f%% waste)\n",
		u.AllocatedBytes, u.DataBytes, 100*u.WasteFraction)
	// Output:
	// 1 full block(s) + 2 fragment(s)
	// allocated 5120 bytes for 5000 bytes of data (2.3% waste)
}

// Without fragments (FragSize == BlockSize, the pre-FFS file system), the
// same file wastes most of a block.
func ExampleDisk_Alloc_wholeBlocks() {
	disk, err := ffs.NewDisk(ffs.Geometry{
		BlockSize: 4096, FragSize: 4096, Groups: 2, BlocksPerGroup: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := disk.Alloc(5000); err != nil {
		log.Fatal(err)
	}
	u := disk.Usage()
	fmt.Printf("allocated %d bytes for %d bytes of data (%.1f%% waste)\n",
		u.AllocatedBytes, u.DataBytes, 100*u.WasteFraction)
	// Output:
	// allocated 8192 bytes for 5000 bytes of data (39.0% waste)
}
