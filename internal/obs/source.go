package obs

import (
	"io"

	"bsdtrace/internal/trace"
)

// InstrumentedSource wraps a trace.Source in a counting span: every
// event that flows through increments the span's events-out total, and
// a clean EOF ends the span, so the span's wall time covers exactly the
// stage's consumption window. Next adds one predictable branch and one
// atomic increment per event and never allocates (the overhead guard in
// source_test.go pins this).
type InstrumentedSource struct {
	src  trace.Source
	span *Span
}

// Instrument wraps src in an event-counting span registered under name.
// When the registry is nil or disabled it returns src unchanged — the
// disabled path adds nothing at all to the pipeline.
func (r *Registry) Instrument(name string, src trace.Source) trace.Source {
	if !r.Enabled() {
		return src
	}
	return &InstrumentedSource{src: src, span: r.StartSpan(name)}
}

// SpanSource wraps src so every event it yields counts into an existing
// span's events-out total and a clean EOF ends the span. It is
// Instrument for callers that already hold the stage span (and want,
// say, AddBytes or AddIn on the same record). Returns src unchanged
// when sp is nil.
func SpanSource(sp *Span, src trace.Source) trace.Source {
	if sp == nil {
		return src
	}
	return &InstrumentedSource{src: src, span: sp}
}

// Next returns the next event from the wrapped source, counting it.
func (s *InstrumentedSource) Next() (trace.Event, error) {
	e, err := s.src.Next()
	if err == nil {
		s.span.eventsOut.Add(1)
	} else if err == io.EOF {
		s.span.End()
	}
	return e, err
}

// NextBatch counts a whole batch with one atomic add, so instrumentation
// overhead on the batched paths is amortized to nothing.
func (s *InstrumentedSource) NextBatch(buf []trace.Event) (int, error) {
	n, err := trace.ReadBatch(s.src, buf)
	if n > 0 {
		s.span.eventsOut.Add(int64(n))
	} else if err == io.EOF {
		s.span.End()
	}
	return n, err
}

// Span returns the span counting this source's events.
func (s *InstrumentedSource) Span() *Span { return s.span }
