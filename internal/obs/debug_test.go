package obs

import (
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
)

// TestServeDebugBindErrorSurfaces: a bad address or an occupied port
// must fail loudly at startup, not produce a silently dead endpoint.
func TestServeDebugBindErrorSurfaces(t *testing.T) {
	if _, err := ServeDebug("not-an-address:-1", NewRegistry()); err == nil {
		t.Fatalf("ServeDebug on a bad address returned no error")
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	if _, err := ServeDebug(ln.Addr().String(), NewRegistry()); err == nil {
		t.Fatalf("ServeDebug on an occupied port returned no error")
	}
}

// TestServeDebugServesRegistry: the live registry is visible through
// /debug/vars as the "obs" variable.
func TestServeDebugServesRegistry(t *testing.T) {
	reg := NewRegistry()
	reg.SetEnabled(true)
	reg.Counter("debugtest.events").Set(42)
	addr, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("ServeDebug: %v", err)
	}
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatalf("GET /debug/vars: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if !strings.Contains(string(body), "debugtest.events") {
		t.Fatalf("/debug/vars does not expose the registry:\n%s", body)
	}
}
