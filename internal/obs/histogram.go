package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram of nonnegative values with a
// quantile readout. Bucket i counts values in (bounds[i-1], bounds[i]]
// (bucket 0 starts at zero); values above the last bound land in an
// overflow bucket. Recording is a binary search plus one atomic add, so
// histograms are safe for concurrent recording, and bucket counts are
// order-independent: the same multiset of values always produces the
// same counts, which is what lets histograms appear in the canonical
// manifest. The mean is kept from an exact running sum; because float
// addition is order-sensitive under concurrency, the mean is volatile
// and canonical manifests carry only the bucket counts.
//
// A nil Histogram ignores all operations.
type Histogram struct {
	bounds   []float64
	counts   []atomic.Int64 // len(bounds)+1; last is overflow
	count    atomic.Int64
	sumBits  atomic.Uint64 // float64 bits of the running sum
	overflow atomic.Int64
}

// NewHistogram creates a histogram with the given ascending bucket upper
// bounds. Panics if bounds is empty or not strictly increasing — bucket
// layout is part of a metric's identity, so a malformed layout is a
// programming error, not a runtime condition.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	if bounds[0] <= 0 {
		panic("obs: histogram bounds must be positive")
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	return h
}

// LinearBuckets returns n bounds start, start+width, ....
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns n bounds start, start*factor, start*factor², ....
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Record adds one observation. Negative values clamp to zero.
func (h *Histogram) Record(v float64) {
	if h == nil {
		return
	}
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Mean returns the mean of recorded observations (0 if none). Exact up
// to float addition order; volatile under concurrent recording.
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load()) / float64(n)
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) by linear
// interpolation inside the bucket holding the target rank. The estimate
// is within one bucket width of the exact order statistic for values at
// or below the last bound; values in the overflow bucket report the last
// bound (the histogram cannot see past it).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if cum+n >= target {
			if i == len(h.bounds) {
				// Overflow bucket: the last bound is the histogram's
				// horizon.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := float64(target-cum) / float64(n)
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// BucketCounts returns a copy of the bucket counts; the last entry is
// the overflow bucket.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Bounds returns the bucket upper bounds.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}
