// Package obs is the pipeline's observability layer: a dependency-free
// metrics registry whose contents snapshot to a deterministic JSON run
// manifest.
//
// The pipeline — generate → merge → recover → analyze → tape → simulate
// — is a chain of trace.Source stages, and obs instruments it at exactly
// that seam: Registry.Instrument wraps any Source in an event-counting
// span, stages publish their closing statistics (repair budgets, tape
// shapes, per-configuration cache counters) as named counters, and the
// whole registry renders either live (the -progress stderr line, the
// -debug-addr expvar endpoint) or post-hoc (the -manifest run manifest,
// whose deterministic fields are the structural fingerprint of a run).
//
// Everything is nil-safe and off by default: a nil or disabled Registry
// hands back typed nil metrics whose methods return immediately, and
// Instrument returns its source untouched, so an uninstrumented run pays
// zero allocations and no atomic traffic per event (the overhead guard
// in source_test.go holds the disabled path to exactly that).
//
// The determinism contract (DESIGN.md §8): counter values, span event
// counts, span byte payloads, histogram bucket counts, and the
// name-sorted order of all three are pure functions of (config, seed) —
// byte-identical across runs, worker counts, and scheduling. Wall times,
// rates, allocation deltas, and toolchain versions are volatile;
// Manifest.Canonical strips them, and the manifest golden test holds
// the remainder to a committed fingerprint.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is usable; a nil Counter ignores all operations.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Set replaces the counter's value. Publishing hooks use it to copy a
// stage's closing statistics into the registry in one step.
func (c *Counter) Set(n int64) {
	if c == nil {
		return
	}
	c.v.Store(n)
}

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value. A nil Gauge ignores all
// operations.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge's value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 for a nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a named collection of metrics. Metrics are created on
// first use and live for the registry's lifetime; all methods are safe
// for concurrent use. A nil or disabled registry is a no-op factory:
// every getter returns nil, which every metric method tolerates, so
// instrumented code never branches on whether observation is on.
type Registry struct {
	enabled atomic.Bool

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    []*Span
}

// NewRegistry returns an empty, disabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// SetEnabled turns metric collection on or off. Metrics created while
// enabled keep their values if the registry is later disabled.
func (r *Registry) SetEnabled(on bool) {
	if r == nil {
		return
	}
	r.enabled.Store(on)
}

// Enabled reports whether the registry is collecting.
func (r *Registry) Enabled() bool { return r != nil && r.enabled.Load() }

// Counter returns the named counter, creating it if needed. Returns nil
// (a no-op counter) when the registry is nil or disabled.
func (r *Registry) Counter(name string) *Counter {
	if !r.Enabled() {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed. Returns nil when
// the registry is nil or disabled.
func (r *Registry) Gauge(name string) *Gauge {
	if !r.Enabled() {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds if needed (later calls ignore bounds). Returns nil when
// the registry is nil or disabled.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if !r.Enabled() {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// snapshotNames returns the registered metric names in sorted order —
// the manifest's deterministic iteration order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
