package obs

import (
	"io"
	"testing"

	"bsdtrace/internal/trace"
)

func makeEvents(n int) []trace.Event {
	events := make([]trace.Event, n)
	for i := range events {
		events[i] = trace.Event{
			Time:   trace.Time(i),
			Kind:   trace.KindSeek,
			OpenID: trace.OpenID(1),
			Size:   int64(i),
		}
	}
	return events
}

func TestInstrumentDisabledReturnsSourceUnchanged(t *testing.T) {
	src := trace.NewSliceSource(makeEvents(4))
	if got := NewRegistry().Instrument("stage", src); got != trace.Source(src) {
		t.Fatal("disabled registry wrapped the source instead of returning it unchanged")
	}
	var nilReg *Registry
	if got := nilReg.Instrument("stage", src); got != trace.Source(src) {
		t.Fatal("nil registry wrapped the source instead of returning it unchanged")
	}
}

func TestInstrumentCountsAndEndsOnEOF(t *testing.T) {
	const n = 1000
	reg := NewRegistry()
	reg.SetEnabled(true)
	src := reg.Instrument("stage", trace.NewSliceSource(makeEvents(n)))
	is, ok := src.(*InstrumentedSource)
	if !ok {
		t.Fatalf("enabled registry returned %T, want *InstrumentedSource", src)
	}
	for {
		if _, err := src.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	sp := is.Span()
	if got := sp.EventsOut(); got != n {
		t.Fatalf("span counted %d events, want %d", got, n)
	}
	spans := reg.Spans()
	if len(spans) != 1 || spans[0] != sp {
		t.Fatalf("registry spans = %v, want the one instrument span", spans)
	}
	// EOF must have ended the span: its wall time is frozen.
	w1, w2 := sp.Wall(), sp.Wall()
	if w1 != w2 {
		t.Fatal("span still running after EOF: wall time not frozen")
	}
}

func TestSpanSourceNilPassThrough(t *testing.T) {
	src := trace.NewSliceSource(makeEvents(1))
	if got := SpanSource(nil, src); got != trace.Source(src) {
		t.Fatal("SpanSource(nil, src) wrapped the source")
	}
}

// TestInstrumentDisabledZeroAllocs pins the disabled path's overhead
// contract: consuming events through a disabled registry's Instrument
// allocates nothing per event.
func TestInstrumentDisabledZeroAllocs(t *testing.T) {
	events := makeEvents(1 << 16)
	src := NewRegistry().Instrument("stage", trace.NewSliceSource(events))
	if avg := testing.AllocsPerRun(10000, func() {
		if _, err := src.Next(); err != nil {
			t.Fatal("source exhausted mid-measurement")
		}
	}); avg != 0 {
		t.Fatalf("disabled instrumented Next allocates %.2f per event, want 0", avg)
	}
}

// TestInstrumentEnabledZeroAllocs pins the enabled path too: the wrapper
// adds an atomic increment, never an allocation.
func TestInstrumentEnabledZeroAllocs(t *testing.T) {
	events := makeEvents(1 << 16)
	reg := NewRegistry()
	reg.SetEnabled(true)
	src := reg.Instrument("stage", trace.NewSliceSource(events))
	if avg := testing.AllocsPerRun(10000, func() {
		if _, err := src.Next(); err != nil {
			t.Fatal("source exhausted mid-measurement")
		}
	}); avg != 0 {
		t.Fatalf("enabled instrumented Next allocates %.2f per event, want 0", avg)
	}
}

// BenchmarkBareSliceSource is the baseline for
// BenchmarkInstrumentedSource: the same drain loop with no wrapper.
func BenchmarkBareSliceSource(b *testing.B) {
	events := makeEvents(1 << 16)
	src := trace.NewSliceSource(events)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := src.Next(); err != nil {
			src = trace.NewSliceSource(events)
		}
	}
}

// BenchmarkInstrumentedSource measures the per-event cost of the
// counting wrapper against BenchmarkBareSliceSource.
func BenchmarkInstrumentedSource(b *testing.B) {
	events := makeEvents(1 << 16)
	reg := NewRegistry()
	reg.SetEnabled(true)
	src := reg.Instrument("bench", trace.NewSliceSource(events))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := src.Next(); err != nil {
			src = reg.Instrument("bench", trace.NewSliceSource(events))
		}
	}
}

// BenchmarkInstrumentedSourceDisabled measures the disabled path, which
// should be indistinguishable from the bare baseline.
func BenchmarkInstrumentedSourceDisabled(b *testing.B) {
	events := makeEvents(1 << 16)
	reg := NewRegistry()
	src := reg.Instrument("bench", trace.NewSliceSource(events))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := src.Next(); err != nil {
			src = reg.Instrument("bench", trace.NewSliceSource(events))
		}
	}
}
