package obs

import "bsdtrace/internal/trace"

// PublishRepair copies a RecoverSource's closing repair budget into
// counters under prefix: the manifest's record of what self-healing
// ingestion cost a run. The accounting identity Emitted == Events -
// Dropped + Synthesized survives into the counters, so a manifest
// reader can reconcile stage event counts against the damage report.
func PublishRepair(r *Registry, prefix string, st trace.RepairStats) {
	if !r.Enabled() {
		return
	}
	r.Counter(prefix + ".events").Set(st.Events)
	r.Counter(prefix + ".emitted").Set(st.Emitted)
	r.Counter(prefix + ".dropped").Set(st.Dropped)
	r.Counter(prefix + ".synthesized").Set(st.Synthesized)
	r.Counter(prefix + ".rewritten").Set(st.Rewritten)
	r.Counter(prefix + ".est_bytes_lost").Set(st.EstBytesLost)
}

// PublishSkip copies a Reader's damage-skip accounting into counters
// under prefix (bytes, records, and segments the framing layer stepped
// past).
func PublishSkip(r *Registry, prefix string, sk trace.SkipStats) {
	if !r.Enabled() {
		return
	}
	r.Counter(prefix + ".bytes").Set(sk.Bytes)
	r.Counter(prefix + ".records").Set(sk.Records)
	r.Counter(prefix + ".segments").Set(sk.Segments)
}
