package obs

import (
	"fmt"
	"testing"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/trace/sourcetest"
)

// TestInstrumentedSourceConformance: the counting wrapper must be
// invisible to the stream — same events, same EOF behavior, through
// both access paths.
func TestInstrumentedSourceConformance(t *testing.T) {
	want := make([]trace.Event, 600)
	for i := range want {
		want[i] = trace.Event{Time: trace.Time(i), Kind: trace.KindOpen,
			OpenID: trace.OpenID(i + 1), File: 1, User: 1}
	}
	reg := NewRegistry()
	reg.SetEnabled(true)
	n := 0
	mk := func(t *testing.T) trace.Source {
		n++
		return reg.Instrument(fmt.Sprintf("conformance/%d", n), trace.NewSliceSource(want))
	}
	sourcetest.Run(t, mk, want)
}
