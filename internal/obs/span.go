package obs

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span measures one pipeline stage: wall time from StartSpan to End,
// events in and out, an optional payload byte count, and the process's
// allocation delta over the stage (runtime.ReadMemStats, so the numbers
// are process-wide — exact for serial stages, an attribution
// approximation when stages overlap).
//
// Event and byte totals are deterministic; wall time and allocation
// deltas are volatile. A nil Span ignores all operations, which is how
// the disabled path stays free.
type Span struct {
	name string

	startWall    time.Time
	startAllocs  uint64
	startMallocs uint64

	eventsIn  atomic.Int64
	eventsOut atomic.Int64
	bytes     atomic.Int64

	mu         sync.Mutex
	ended      bool
	wall       time.Duration
	allocBytes int64
	allocs     int64
}

// StartSpan registers and starts a named stage span. Returns nil when
// the registry is nil or disabled. Span names are expected to be unique
// per run; starting the same name twice records two spans.
func (r *Registry) StartSpan(name string) *Span {
	if !r.Enabled() {
		return nil
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := &Span{
		name:         name,
		startWall:    time.Now(),
		startAllocs:  ms.TotalAlloc,
		startMallocs: ms.Mallocs,
	}
	r.mu.Lock()
	r.spans = append(r.spans, s)
	r.mu.Unlock()
	return s
}

// AddIn counts events consumed by the stage.
func (s *Span) AddIn(n int64) {
	if s == nil {
		return
	}
	s.eventsIn.Add(n)
}

// AddOut counts events emitted by the stage.
func (s *Span) AddOut(n int64) {
	if s == nil {
		return
	}
	s.eventsOut.Add(n)
}

// AddBytes counts payload bytes attributed to the stage (e.g. the size
// of a spill file it wrote). Deterministic, unlike the allocation
// deltas End records.
func (s *Span) AddBytes(n int64) {
	if s == nil {
		return
	}
	s.bytes.Add(n)
}

// End closes the span, freezing its wall time and allocation deltas.
// Idempotent; spans never ended report their live elapsed time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.ended = true
	s.wall = time.Since(s.startWall)
	s.allocBytes = int64(ms.TotalAlloc - s.startAllocs)
	s.allocs = int64(ms.Mallocs - s.startMallocs)
}

// Name returns the span's stage name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// EventsIn returns the events-consumed total.
func (s *Span) EventsIn() int64 {
	if s == nil {
		return 0
	}
	return s.eventsIn.Load()
}

// EventsOut returns the events-emitted total.
func (s *Span) EventsOut() int64 {
	if s == nil {
		return 0
	}
	return s.eventsOut.Load()
}

// Bytes returns the payload byte total.
func (s *Span) Bytes() int64 {
	if s == nil {
		return 0
	}
	return s.bytes.Load()
}

// Wall returns the stage's wall time: frozen if ended, live otherwise.
func (s *Span) Wall() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.wall
	}
	return time.Since(s.startWall)
}

// Events returns the span's headline event count: events out if any
// were recorded, else events in. Progress lines and rate readouts use
// it so a stage that only consumes still shows motion.
func (s *Span) Events() int64 {
	if s == nil {
		return 0
	}
	if out := s.eventsOut.Load(); out > 0 {
		return out
	}
	return s.eventsIn.Load()
}

// EventsPerSec returns the headline event rate over the span's wall
// time so far (0 for an instant span).
func (s *Span) EventsPerSec() float64 {
	secs := s.Wall().Seconds()
	if s == nil || secs <= 0 {
		return 0
	}
	return float64(s.Events()) / secs
}

// AllocsPerEvent returns the stage's heap allocations per headline
// event — the per-event efficiency gauge the batched hot paths are
// tuned against. After End it uses the frozen deltas; while the span
// runs it reads live process-wide counters, so for overlapping stages
// the live number is an attribution approximation, like the deltas
// themselves. Returns 0 before any events flow.
func (s *Span) AllocsPerEvent() float64 {
	if s == nil {
		return 0
	}
	events := s.Events()
	if events == 0 {
		return 0
	}
	s.mu.Lock()
	ended, frozen := s.ended, s.allocs
	start := s.startMallocs
	s.mu.Unlock()
	allocs := frozen
	if !ended {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		allocs = int64(ms.Mallocs - start)
	}
	return float64(allocs) / float64(events)
}

// running reports whether the span is still open.
func (s *Span) running() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.ended
}

// allocStats returns the frozen allocation deltas (0, 0 until End).
func (s *Span) allocStats() (bytes, allocs int64) {
	if s == nil {
		return 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.allocBytes, s.allocs
}

// Spans returns a snapshot of the registry's spans sorted by name —
// the manifest's deterministic stage order.
func (r *Registry) Spans() []*Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]*Span(nil), r.spans...)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// lastRunning returns the most recently started span that has not
// ended (nil if none) — what the progress line shows.
func (r *Registry) lastRunning() *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.spans) - 1; i >= 0; i-- {
		if r.spans[i].running() {
			return r.spans[i]
		}
	}
	return nil
}
