package obs

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Progress is a live, rate-limited stderr status line: the most recent
// running stage span with its event count and rate, redrawn in place a
// few times a second. It exists for the long runs — a scaled fsreport
// fleet or an fsbench sweep — where silence is indistinguishable from a
// hang. A nil Progress ignores Stop, so callers never branch on whether
// progress is on.
type Progress struct {
	w        io.Writer
	reg      *Registry
	interval time.Duration

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	wrote    bool
}

// StartProgress begins a progress line on f for reg. It returns nil —
// progress off — when f is not a terminal: a redrawn line is pure noise
// in a log file or a pipe, so the flag only takes effect interactively.
func StartProgress(f *os.File, reg *Registry) *Progress {
	if f == nil || !isTerminal(f) {
		return nil
	}
	return startProgress(f, reg, 250*time.Millisecond)
}

// startProgress is the testable core: any writer, any interval.
func startProgress(w io.Writer, reg *Registry, interval time.Duration) *Progress {
	p := &Progress{
		w:        w,
		reg:      reg,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go p.loop()
	return p
}

func (p *Progress) loop() {
	defer close(p.done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.draw()
		}
	}
}

func (p *Progress) draw() {
	s := p.reg.lastRunning()
	if s == nil {
		return
	}
	// \r + erase-to-end redraws in place; no newline until Stop.
	fmt.Fprintf(p.w, "\r\x1b[K%s: %d events, %.0f/s, %.1f allocs/event",
		s.Name(), s.Events(), s.EventsPerSec(), s.AllocsPerEvent())
	p.wrote = true
}

// Stop halts the ticker and clears the line. Safe on nil and safe to
// call more than once.
func (p *Progress) Stop() {
	if p == nil {
		return
	}
	p.stopOnce.Do(func() {
		close(p.stop)
		<-p.done
		if p.wrote {
			fmt.Fprint(p.w, "\r\x1b[K")
		}
	})
}

// isTerminal reports whether f is a character device (a TTY).
func isTerminal(f *os.File) bool {
	st, err := f.Stat()
	if err != nil {
		return false
	}
	return st.Mode()&os.ModeCharDevice != 0
}
