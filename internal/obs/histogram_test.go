package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile is the sort-based oracle: the order statistic at rank
// ceil(q*n) of the recorded multiset, after the same clamping Record
// applies (negatives and NaN to zero).
func exactQuantile(values []float64, q float64) float64 {
	s := make([]float64, len(values))
	for i, v := range values {
		if v < 0 || math.IsNaN(v) {
			v = 0
		}
		s[i] = v
	}
	sort.Float64s(s)
	target := int(math.Ceil(q * float64(len(s))))
	if target < 1 {
		target = 1
	}
	return s[target-1]
}

// maxBucketWidth returns the widest bucket of a bounds layout,
// including the implicit (0, bounds[0]] first bucket.
func maxBucketWidth(bounds []float64) float64 {
	w := bounds[0]
	for i := 1; i < len(bounds); i++ {
		if d := bounds[i] - bounds[i-1]; d > w {
			w = d
		}
	}
	return w
}

// checkQuantiles holds a histogram's quantile and mean readout to the
// sort oracle: every quantile estimate must land within one bucket
// width of the exact order statistic, and the mean must be exact up to
// float summation error. Values past the last bound are excluded by the
// callers — the overflow bucket clamps to the histogram's horizon,
// which is documented, not an approximation error.
func checkQuantiles(t *testing.T, h *Histogram, values []float64, bounds []float64) {
	t.Helper()
	width := maxBucketWidth(bounds)
	for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		got := h.Quantile(q)
		want := exactQuantile(values, q)
		if math.Abs(got-want) > width {
			t.Fatalf("Quantile(%g) = %g, exact %g: error exceeds one bucket width (%g)",
				q, got, want, width)
		}
	}
	var sum float64
	for _, v := range values {
		if v < 0 || math.IsNaN(v) {
			v = 0
		}
		sum += v
	}
	wantMean := sum / float64(len(values))
	if got := h.Mean(); math.Abs(got-wantMean) > 1e-9*math.Max(1, math.Abs(wantMean)) {
		t.Fatalf("Mean() = %g, exact %g", got, wantMean)
	}
}

// TestHistogramQuantileProperty drives seeded random workloads with
// several bucket layouts through the oracle comparison.
func TestHistogramQuantileProperty(t *testing.T) {
	layouts := []struct {
		name   string
		bounds []float64
	}{
		{"linear", LinearBuckets(10, 10, 50)},
		{"exp", ExpBuckets(1, 2, 16)},
		{"single", []float64{100}},
	}
	for _, layout := range layouts {
		for seed := int64(1); seed <= 5; seed++ {
			rng := rand.New(rand.NewSource(seed))
			last := layout.bounds[len(layout.bounds)-1]
			n := 1 + rng.Intn(2000)
			values := make([]float64, n)
			h := NewHistogram(layout.bounds)
			for i := range values {
				// Mix of in-range values and exact bound hits; cap at
				// the last bound so the oracle property applies.
				v := rng.Float64() * last
				if rng.Intn(10) == 0 {
					v = layout.bounds[rng.Intn(len(layout.bounds))]
				}
				values[i] = v
				h.Record(v)
			}
			checkQuantiles(t, h, values, layout.bounds)
			if h.Count() != int64(n) {
				t.Fatalf("%s seed %d: Count() = %d, want %d", layout.name, seed, h.Count(), n)
			}
		}
	}
}

func TestHistogramOverflowAndClamp(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	h.Record(100) // overflow
	h.Record(-5)  // clamps to 0, lands in bucket (0,1]
	h.Record(math.NaN())
	if got := h.Count(); got != 3 {
		t.Fatalf("Count() = %d, want 3", got)
	}
	if got := h.Quantile(1); got != 4 {
		t.Fatalf("Quantile(1) with overflow = %g, want the last bound 4", got)
	}
	counts := h.BucketCounts()
	if counts[0] != 2 || counts[len(counts)-1] != 1 {
		t.Fatalf("bucket counts = %v, want clamped values in bucket 0 and one overflow", counts)
	}
}

func TestHistogramEmptyAndNil(t *testing.T) {
	var nilH *Histogram
	nilH.Record(1)
	if nilH.Count() != 0 || nilH.Quantile(0.5) != 0 || nilH.Mean() != 0 {
		t.Fatal("nil histogram must no-op")
	}
	h := NewHistogram([]float64{1})
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zero")
	}
}

func TestHistogramMalformedBoundsPanic(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}, {0, 1}, {-1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

// FuzzHistogramQuantile feeds arbitrary byte-derived value streams and
// quantiles through the oracle comparison. Runs in the CI fuzz smoke.
func FuzzHistogramQuantile(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 0.5)
	f.Add([]byte{255, 0, 128}, 0.99)
	f.Add([]byte{0}, 0.0)
	bounds := LinearBuckets(8, 8, 32)
	last := bounds[len(bounds)-1]
	f.Fuzz(func(t *testing.T, data []byte, q float64) {
		if len(data) == 0 {
			return
		}
		if math.IsNaN(q) || q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		values := make([]float64, len(data))
		h := NewHistogram(bounds)
		for i, b := range data {
			// Bytes scale onto [0, last] so every value is within the
			// histogram's horizon and the oracle property applies.
			v := float64(b) / 255 * last
			values[i] = v
			h.Record(v)
		}
		got := h.Quantile(q)
		want := exactQuantile(values, q)
		if width := maxBucketWidth(bounds); math.Abs(got-want) > width {
			t.Fatalf("Quantile(%g) = %g, exact %g: error exceeds one bucket width (%g)",
				q, got, want, width)
		}
	})
}
