package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
)

// debugRegistry is the registry the /debug/vars "obs" variable reads.
// expvar.Publish is once-per-process, so the variable indirects through
// this pointer and ServeDebug swaps it.
var debugRegistry atomic.Pointer[Registry]

func init() {
	expvar.Publish("obs", expvar.Func(func() any {
		r := debugRegistry.Load()
		if r == nil {
			return nil
		}
		return r.Manifest(RunInfo{Command: "live"})
	}))
}

// ServeDebug starts an HTTP server on addr exposing the stdlib
// observability surface for live inspection of long runs:
//
//	/debug/vars    — expvar, including the full live registry as "obs"
//	/debug/pprof/  — net/http/pprof profiles (heap, goroutine, CPU, ...)
//
// It returns the bound address (useful with ":0") and never blocks; the
// server runs until the process exits. Long sweeps are exactly when a
// profile is worth taking, and this endpoint means taking one needs no
// restart with -cpuprofile.
func ServeDebug(addr string, reg *Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	debugRegistry.Store(reg)
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go http.Serve(ln, mux)
	return ln.Addr().String(), nil
}
