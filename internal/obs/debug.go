package obs

import (
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync/atomic"
)

// debugRegistry is the registry the /debug/vars "obs" variable reads.
// expvar.Publish is once-per-process, so the variable indirects through
// this pointer and DebugMux swaps it.
var debugRegistry atomic.Pointer[Registry]

func init() {
	expvar.Publish("obs", expvar.Func(func() any {
		r := debugRegistry.Load()
		if r == nil {
			return nil
		}
		return r.Manifest(RunInfo{Command: "live"})
	}))
}

// DebugMux returns the stdlib observability surface as a mux, for
// embedding in a server the caller owns (fstraced mounts it next to its
// own endpoints):
//
//	/debug/vars    — expvar, including the full live registry as "obs"
//	/debug/pprof/  — net/http/pprof profiles (heap, goroutine, CPU, ...)
//
// The registry becomes the one /debug/vars reports; pass nil to keep
// the current one.
func DebugMux(reg *Registry) *http.ServeMux {
	if reg != nil {
		debugRegistry.Store(reg)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts an HTTP server on addr exposing DebugMux for live
// inspection of long runs. It returns the bound address (useful with
// ":0") and never blocks; the server runs until the process exits.
// Long sweeps are exactly when a profile is worth taking, and this
// endpoint means taking one needs no restart with -cpuprofile.
//
// Bind errors (bad address, occupied port) surface synchronously in the
// returned error because the listen happens here, before the serve loop
// starts. A failure of the background serve loop itself — which used to
// be silently discarded, leaving a dead debug endpoint with no trace of
// why — is reported to stderr.
func ServeDebug(addr string, reg *Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := DebugMux(reg)
	go func() {
		if err := http.Serve(ln, mux); err != nil && !errors.Is(err, net.ErrClosed) {
			fmt.Fprintf(os.Stderr, "obs: debug server on %s stopped: %v\n", ln.Addr(), err)
		}
	}()
	return ln.Addr().String(), nil
}
