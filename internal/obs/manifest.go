package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
)

// ManifestSchema is the run-manifest schema version; it bumps whenever
// a deterministic field changes meaning, so two manifests are only
// comparable at equal schema.
const ManifestSchema = 1

// RunInfo identifies one pipeline run for its manifest.
type RunInfo struct {
	// Command is the tool that ran (fstrace, fsanalyze, fscachesim,
	// fsreport, fsbench).
	Command string
	// Seed is the run's random seed — with Config, the full input of
	// every deterministic field.
	Seed int64
	// Config is the run's effective configuration, one string per knob.
	Config map[string]string
}

// StageRecord is one pipeline stage in the manifest's stage table.
// Name, events, and bytes are deterministic; seconds, rate, and the
// allocation deltas are volatile.
type StageRecord struct {
	Name         string  `json:"name"`
	EventsIn     int64   `json:"events_in"`
	EventsOut    int64   `json:"events_out"`
	Bytes        int64   `json:"bytes,omitempty"`
	Seconds      float64 `json:"seconds,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	AllocBytes   int64   `json:"alloc_bytes,omitempty"`
	Allocs       int64   `json:"allocs,omitempty"`
}

// HistogramRecord is one histogram's manifest entry. Bounds and counts
// are deterministic (order-independent under concurrent recording);
// the mean is volatile.
type HistogramRecord struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Mean   float64   `json:"mean,omitempty"`
}

// VersionInfo records the toolchain a manifest came from. Volatile by
// definition: the same run on a newer toolchain must canonicalize
// identically.
type VersionInfo struct {
	Go   string `json:"go,omitempty"`
	OS   string `json:"os,omitempty"`
	Arch string `json:"arch,omitempty"`
}

// Manifest is the JSON run manifest: the full configuration and
// telemetry record of one pipeline run. Stage records are sorted by
// name and metric maps marshal with sorted keys (encoding/json's map
// behavior), so equal runs produce byte-identical JSON.
type Manifest struct {
	Schema     int                        `json:"schema"`
	Command    string                     `json:"command"`
	Seed       int64                      `json:"seed"`
	Config     map[string]string          `json:"config,omitempty"`
	Stages     []StageRecord              `json:"stages,omitempty"`
	Counters   map[string]int64           `json:"counters,omitempty"`
	Gauges     map[string]int64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramRecord `json:"histograms,omitempty"`
	Versions   VersionInfo                `json:"versions"`
}

// Manifest snapshots the registry into a run manifest. Open spans are
// reported with their live elapsed time and zero allocation deltas.
func (r *Registry) Manifest(info RunInfo) *Manifest {
	m := &Manifest{
		Schema:  ManifestSchema,
		Command: info.Command,
		Seed:    info.Seed,
		Config:  info.Config,
		Versions: VersionInfo{
			Go:   runtime.Version(),
			OS:   runtime.GOOS,
			Arch: runtime.GOARCH,
		},
	}
	if r == nil {
		return m
	}
	for _, s := range r.Spans() {
		ab, an := s.allocStats()
		m.Stages = append(m.Stages, StageRecord{
			Name:         s.Name(),
			EventsIn:     s.EventsIn(),
			EventsOut:    s.EventsOut(),
			Bytes:        s.Bytes(),
			Seconds:      s.Wall().Seconds(),
			EventsPerSec: s.EventsPerSec(),
			AllocBytes:   ab,
			Allocs:       an,
		})
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		m.Counters = make(map[string]int64, len(r.counters))
		for _, k := range sortedKeys(r.counters) {
			m.Counters[k] = r.counters[k].Value()
		}
	}
	if len(r.gauges) > 0 {
		m.Gauges = make(map[string]int64, len(r.gauges))
		for _, k := range sortedKeys(r.gauges) {
			m.Gauges[k] = r.gauges[k].Value()
		}
	}
	if len(r.hists) > 0 {
		m.Histograms = make(map[string]HistogramRecord, len(r.hists))
		for _, k := range sortedKeys(r.hists) {
			h := r.hists[k]
			m.Histograms[k] = HistogramRecord{
				Bounds: h.Bounds(),
				Counts: h.BucketCounts(),
				Count:  h.Count(),
				Mean:   h.Mean(),
			}
		}
	}
	return m
}

// Canonical returns a copy of the manifest with every volatile field
// zeroed: stage wall times, rates, and allocation deltas; histogram
// means; toolchain versions. What remains — stage order and event/byte
// counts, counter and gauge values, histogram bucket counts — is a pure
// function of (config, seed), and the manifest golden test holds it to
// a committed file byte for byte.
func (m *Manifest) Canonical() *Manifest {
	c := *m
	c.Versions = VersionInfo{}
	c.Stages = make([]StageRecord, len(m.Stages))
	for i, s := range m.Stages {
		s.Seconds = 0
		s.EventsPerSec = 0
		s.AllocBytes = 0
		s.Allocs = 0
		c.Stages[i] = s
	}
	if m.Histograms != nil {
		c.Histograms = make(map[string]HistogramRecord, len(m.Histograms))
		for k, h := range m.Histograms {
			h.Mean = 0
			c.Histograms[k] = h
		}
	}
	return &c
}

// JSON renders the manifest as indented JSON with a trailing newline.
func (m *Manifest) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteFile writes the manifest to path as indented JSON.
func (m *Manifest) WriteFile(path string) error {
	data, err := m.JSON()
	if err != nil {
		return fmt.Errorf("obs: marshal manifest: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}
