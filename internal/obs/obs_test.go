package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"bsdtrace/internal/trace"
)

func TestDisabledRegistryIsNoOpFactory(t *testing.T) {
	for name, reg := range map[string]*Registry{"disabled": NewRegistry(), "nil": nil} {
		if reg.Enabled() {
			t.Fatalf("%s registry reports enabled", name)
		}
		c := reg.Counter("c")
		c.Add(5)
		c.Set(9)
		if c.Value() != 0 {
			t.Fatalf("%s registry counter is live", name)
		}
		g := reg.Gauge("g")
		g.Set(7)
		if g.Value() != 0 {
			t.Fatalf("%s registry gauge is live", name)
		}
		h := reg.Histogram("h", []float64{1})
		h.Record(3)
		if h.Count() != 0 {
			t.Fatalf("%s registry histogram is live", name)
		}
		sp := reg.StartSpan("s")
		sp.AddIn(1)
		sp.AddOut(1)
		sp.AddBytes(1)
		sp.End()
		if sp.EventsIn() != 0 || sp.Name() != "" {
			t.Fatalf("%s registry span is live", name)
		}
		if spans := reg.Spans(); len(spans) != 0 {
			t.Fatalf("%s registry recorded spans: %v", name, spans)
		}
	}
}

func TestRegistryMetricsIdentityAndValues(t *testing.T) {
	reg := NewRegistry()
	reg.SetEnabled(true)
	c := reg.Counter("events")
	c.Add(2)
	c.Add(3)
	if reg.Counter("events") != c {
		t.Fatal("same name returned a different counter")
	}
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	c.Set(11)
	if c.Value() != 11 {
		t.Fatalf("counter after Set = %d, want 11", c.Value())
	}
	g := reg.Gauge("depth")
	g.Set(4)
	g.Add(-1)
	if g.Value() != 3 {
		t.Fatalf("gauge = %d, want 3", g.Value())
	}
	if reg.Histogram("h", []float64{1, 2}) != reg.Histogram("h", []float64{99}) {
		t.Fatal("same name returned a different histogram")
	}
}

func TestSpanLifecycle(t *testing.T) {
	reg := NewRegistry()
	reg.SetEnabled(true)
	sp := reg.StartSpan("stage")
	sp.AddIn(10)
	sp.AddOut(7)
	sp.AddBytes(4096)
	sp.End()
	w := sp.Wall()
	sp.End() // idempotent: wall stays frozen
	if sp.Wall() != w {
		t.Fatal("second End moved the frozen wall time")
	}
	if sp.EventsIn() != 10 || sp.EventsOut() != 7 || sp.Bytes() != 4096 {
		t.Fatalf("span totals = %d/%d/%d", sp.EventsIn(), sp.EventsOut(), sp.Bytes())
	}
	if sp.Events() != 7 {
		t.Fatalf("Events() = %d, want events-out when nonzero", sp.Events())
	}
	in := reg.StartSpan("input-only")
	in.AddIn(3)
	in.End()
	if in.Events() != 3 {
		t.Fatalf("Events() = %d, want events-in fallback", in.Events())
	}
}

func TestSpanAllocsPerEvent(t *testing.T) {
	reg := NewRegistry()
	reg.SetEnabled(true)
	sp := reg.StartSpan("alloc-stage")
	if got := sp.AllocsPerEvent(); got != 0 {
		t.Fatalf("AllocsPerEvent before any events = %v, want 0", got)
	}
	sp.AddOut(100)
	sink := make([][]byte, 0, 50)
	for i := 0; i < 50; i++ {
		sink = append(sink, make([]byte, 64))
	}
	_ = sink
	if got := sp.AllocsPerEvent(); got <= 0 {
		t.Fatalf("live AllocsPerEvent = %v, want > 0 after allocating", got)
	}
	sp.End()
	frozen := sp.AllocsPerEvent()
	if frozen <= 0 {
		t.Fatalf("frozen AllocsPerEvent = %v, want > 0", frozen)
	}
	if again := sp.AllocsPerEvent(); again != frozen {
		t.Fatalf("frozen AllocsPerEvent moved: %v then %v", frozen, again)
	}
	var nilSpan *Span
	if nilSpan.AllocsPerEvent() != 0 {
		t.Fatal("nil span AllocsPerEvent != 0")
	}
}

func TestSpansSortedByName(t *testing.T) {
	reg := NewRegistry()
	reg.SetEnabled(true)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		reg.StartSpan(n).End()
	}
	var names []string
	for _, s := range reg.Spans() {
		names = append(names, s.Name())
	}
	if strings.Join(names, ",") != "alpha,mid,zeta" {
		t.Fatalf("Spans() order = %v, want sorted by name", names)
	}
}

// fillRegistry performs one fixed sequence of instrumentation; two
// fills must canonicalize identically.
func fillRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	reg.SetEnabled(true)
	sp := reg.StartSpan("stage/a")
	sp.AddOut(42)
	sp.AddBytes(1 << 20)
	sp.End()
	reg.Counter("events.total").Set(42)
	reg.Gauge("depth").Set(3)
	h := reg.Histogram("sizes", ExpBuckets(1, 2, 8))
	for i := 0; i < 100; i++ {
		h.Record(float64(i))
	}
	return reg
}

func TestManifestCanonicalDeterminism(t *testing.T) {
	info := RunInfo{Command: "test", Seed: 7, Config: map[string]string{"k": "v"}}
	a, err := fillRegistry(t).Manifest(info).Canonical().JSON()
	if err != nil {
		t.Fatal(err)
	}
	// Sleep so the second fill's wall times differ — Canonical must
	// erase the difference.
	time.Sleep(2 * time.Millisecond)
	b, err := fillRegistry(t).Manifest(info).Canonical().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("canonical manifests differ:\n%s\nvs\n%s", a, b)
	}
}

func TestManifestCanonicalStripsVolatile(t *testing.T) {
	reg := fillRegistry(t)
	m := reg.Manifest(RunInfo{Command: "test"})
	if m.Versions.Go == "" {
		t.Fatal("raw manifest missing toolchain version")
	}
	if m.Stages[0].Seconds == 0 {
		t.Fatal("raw manifest stage missing wall time")
	}
	c := m.Canonical()
	if c.Versions != (VersionInfo{}) {
		t.Fatal("Canonical kept toolchain versions")
	}
	for _, s := range c.Stages {
		if s.Seconds != 0 || s.EventsPerSec != 0 || s.AllocBytes != 0 || s.Allocs != 0 {
			t.Fatalf("Canonical kept volatile stage fields: %+v", s)
		}
	}
	for k, h := range c.Histograms {
		if h.Mean != 0 {
			t.Fatalf("Canonical kept histogram mean for %s", k)
		}
	}
	// The raw manifest is untouched.
	if m.Stages[0].Seconds == 0 || m.Versions.Go == "" {
		t.Fatal("Canonical mutated the raw manifest")
	}
	if c.Stages[0].EventsOut != 42 || c.Counters["events.total"] != 42 {
		t.Fatal("Canonical dropped deterministic fields")
	}
}

func TestPublishRepairAndSkip(t *testing.T) {
	reg := NewRegistry()
	reg.SetEnabled(true)
	PublishRepair(reg, "repair", trace.RepairStats{Events: 10, Emitted: 9, Dropped: 1})
	PublishSkip(reg, "skip", trace.SkipStats{Bytes: 64, Records: 2, Segments: 1})
	if got := reg.Counter("repair.events").Value(); got != 10 {
		t.Fatalf("repair.events = %d, want 10", got)
	}
	if got := reg.Counter("skip.bytes").Value(); got != 64 {
		t.Fatalf("skip.bytes = %d, want 64", got)
	}
	// Disabled: publishing must not create metrics.
	off := NewRegistry()
	PublishRepair(off, "repair", trace.RepairStats{Events: 1})
	off.SetEnabled(true)
	if m := off.Manifest(RunInfo{}); len(m.Counters) != 0 {
		t.Fatal("publishing to a disabled registry created counters")
	}
}

func TestProgressDrawsAndClears(t *testing.T) {
	reg := NewRegistry()
	reg.SetEnabled(true)
	sp := reg.StartSpan("working")
	sp.AddOut(123)
	var buf syncBuffer
	p := startProgress(&buf, reg, time.Millisecond)
	deadline := time.Now().Add(time.Second)
	for buf.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	p.Stop()
	p.Stop() // safe twice
	out := buf.String()
	if !strings.Contains(out, "working") || !strings.Contains(out, "123 events") {
		t.Fatalf("progress line %q missing stage or count", out)
	}
	if !strings.HasSuffix(out, "\r\x1b[K") {
		t.Fatalf("Stop did not clear the line: %q", out)
	}
	var nilP *Progress
	nilP.Stop() // nil-safe
}

// syncBuffer is a mutex-guarded bytes.Buffer: the progress goroutine
// writes while the test polls.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Len()
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
