package cachesim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bsdtrace/internal/trace"
)

// tb is a tiny trace builder for cache tests.
type tb struct {
	events []trace.Event
	now    trace.Time
	nextID trace.OpenID
}

func newTB() *tb { return &tb{nextID: 1} }

func (b *tb) tick() trace.Time {
	b.now += 10 * trace.Millisecond
	return b.now
}

// write appends a create-write-close of length n to file f.
func (b *tb) write(f trace.FileID, n int64) {
	id := b.nextID
	b.nextID++
	b.events = append(b.events,
		trace.Event{Time: b.tick(), Kind: trace.KindCreate, OpenID: id, File: f, User: 1, Mode: trace.WriteOnly},
		trace.Event{Time: b.tick(), Kind: trace.KindClose, OpenID: id, NewPos: n},
	)
}

// read appends an open-read-close of the whole file (size n).
func (b *tb) read(f trace.FileID, n int64) {
	id := b.nextID
	b.nextID++
	b.events = append(b.events,
		trace.Event{Time: b.tick(), Kind: trace.KindOpen, OpenID: id, File: f, User: 1, Mode: trace.ReadOnly, Size: n},
		trace.Event{Time: b.tick(), Kind: trace.KindClose, OpenID: id, NewPos: n},
	)
}

// overwrite appends an open(WriteOnly)-write-close that rewrites the first
// n bytes of existing file f of size sz without truncating it.
func (b *tb) overwrite(f trace.FileID, sz, n int64) {
	id := b.nextID
	b.nextID++
	b.events = append(b.events,
		trace.Event{Time: b.tick(), Kind: trace.KindOpen, OpenID: id, File: f, User: 1, Mode: trace.WriteOnly, Size: sz},
		trace.Event{Time: b.tick(), Kind: trace.KindClose, OpenID: id, NewPos: n},
	)
}

func (b *tb) unlink(f trace.FileID) {
	b.events = append(b.events, trace.Event{Time: b.tick(), Kind: trace.KindUnlink, File: f})
}

func (b *tb) truncate(f trace.FileID, n int64) {
	b.events = append(b.events, trace.Event{Time: b.tick(), Kind: trace.KindTruncate, File: f, Size: n})
}

func (b *tb) exec(f trace.FileID, size int64) {
	b.events = append(b.events, trace.Event{Time: b.tick(), Kind: trace.KindExec, File: f, User: 1, Size: size})
}

func mustSim(t *testing.T, events []trace.Event, cfg Config) *Result {
	t.Helper()
	r, err := Simulate(events, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestColdReadMisses(t *testing.T) {
	b := newTB()
	b.write(1, 8192) // 2 blocks of new data: no fetches
	b.read(1, 8192)  // 2 block reads: hits (just written)
	r := mustSim(t, b.events, Config{BlockSize: 4096, CacheSize: 1 << 20, Write: DelayedWrite})
	if r.LogicalAccesses != 4 || r.WriteAccesses != 2 || r.ReadAccesses != 2 {
		t.Fatalf("accesses: %+v", r)
	}
	if r.DiskReads != 0 {
		t.Errorf("DiskReads = %d, want 0 (writes were new data; reads hit)", r.DiskReads)
	}
	if r.DiskWrites != 0 {
		t.Errorf("DiskWrites = %d, want 0 (delayed write, nothing ejected)", r.DiskWrites)
	}
	if r.DirtyAtEnd != 2 {
		t.Errorf("DirtyAtEnd = %d, want 2", r.DirtyAtEnd)
	}
}

func TestReadMissFetches(t *testing.T) {
	b := newTB()
	// File exists before the trace: the open records size 8192 without a
	// preceding create, so its blocks are cold.
	b.read(7, 8192)
	r := mustSim(t, b.events, Config{BlockSize: 4096, CacheSize: 1 << 20, Write: DelayedWrite})
	if r.DiskReads != 2 {
		t.Errorf("DiskReads = %d, want 2", r.DiskReads)
	}
	// Re-read hits.
	b.read(7, 8192)
	r = mustSim(t, b.events, Config{BlockSize: 4096, CacheSize: 1 << 20, Write: DelayedWrite})
	if r.DiskReads != 2 {
		t.Errorf("DiskReads after re-read = %d, want 2 (second read hits)", r.DiskReads)
	}
}

func TestWriteThroughCountsEveryWrite(t *testing.T) {
	b := newTB()
	b.write(1, 4096)
	b.write(1, 4096) // re-create: overwrites
	r := mustSim(t, b.events, Config{BlockSize: 4096, CacheSize: 1 << 20, Write: WriteThrough})
	if r.DiskWrites != 2 {
		t.Errorf("DiskWrites = %d, want 2", r.DiskWrites)
	}
	if r.DirtyAtEnd != 0 {
		t.Errorf("write-through left dirty blocks")
	}
}

func TestDelayedWriteDiscardsDeadDirty(t *testing.T) {
	b := newTB()
	b.write(1, 8192)
	b.unlink(1)
	r := mustSim(t, b.events, Config{BlockSize: 4096, CacheSize: 1 << 20, Write: DelayedWrite})
	if r.DiskWrites != 0 {
		t.Errorf("DiskWrites = %d, want 0 (file died in cache)", r.DiskWrites)
	}
	if r.DirtyDiscarded != 2 || r.Purged != 2 {
		t.Errorf("DirtyDiscarded = %d, Purged = %d, want 2, 2", r.DirtyDiscarded, r.Purged)
	}
	if got := r.NeverWrittenFraction(); got != 1 {
		t.Errorf("NeverWrittenFraction = %v, want 1", got)
	}
}

func TestOverwritePurges(t *testing.T) {
	b := newTB()
	b.write(1, 8192)
	b.write(1, 4096) // re-create purges old blocks, writes one new block
	r := mustSim(t, b.events, Config{BlockSize: 4096, CacheSize: 1 << 20, Write: DelayedWrite})
	if r.Purged != 2 || r.DirtyDiscarded != 2 {
		t.Errorf("Purged=%d DirtyDiscarded=%d, want 2,2", r.Purged, r.DirtyDiscarded)
	}
	if r.DirtyAtEnd != 1 {
		t.Errorf("DirtyAtEnd = %d, want 1", r.DirtyAtEnd)
	}
}

func TestTruncatePartialPurge(t *testing.T) {
	b := newTB()
	b.write(1, 16384) // blocks 0..3
	b.truncate(1, 6000)
	r := mustSim(t, b.events, Config{BlockSize: 4096, CacheSize: 1 << 20, Write: DelayedWrite})
	// Blocks 2 and 3 start at/beyond 6000? Block 1 spans 4096..8191 and
	// still holds valid bytes; blocks 2 (8192+) and 3 (12288+) die.
	if r.Purged != 2 {
		t.Errorf("Purged = %d, want 2", r.Purged)
	}
}

func TestNoPurgeAblation(t *testing.T) {
	b := newTB()
	b.write(1, 8192)
	b.unlink(1)
	r := mustSim(t, b.events, Config{BlockSize: 4096, CacheSize: 1 << 20, Write: DelayedWrite, NoPurge: true})
	if r.Purged != 0 || r.DirtyDiscarded != 0 {
		t.Errorf("NoPurge still purged: %+v", r)
	}
	if r.DirtyAtEnd != 2 {
		t.Errorf("DirtyAtEnd = %d, want 2", r.DirtyAtEnd)
	}
}

func TestFlushBack(t *testing.T) {
	b := newTB()
	b.write(1, 4096) // dirty at ~20 ms
	// Advance time past one 30-second flush interval with unrelated
	// activity.
	b.now = 31 * trace.Second
	b.read(9, 4096)
	r := mustSim(t, b.events, Config{
		BlockSize: 4096, CacheSize: 1 << 20,
		Write: FlushBack, FlushInterval: 30 * trace.Second,
	})
	if r.DiskWrites != 1 {
		t.Errorf("DiskWrites = %d, want 1 (flushed at 30 s)", r.DiskWrites)
	}
	if r.DirtyAtEnd != 0 {
		t.Errorf("DirtyAtEnd = %d, want 0", r.DirtyAtEnd)
	}
}

func TestFlushBackSkipsDeadBlocks(t *testing.T) {
	b := newTB()
	b.write(1, 4096)
	b.unlink(1) // dies ~30 ms, long before the first flush
	b.now = 31 * trace.Second
	b.read(9, 4096)
	r := mustSim(t, b.events, Config{
		BlockSize: 4096, CacheSize: 1 << 20,
		Write: FlushBack, FlushInterval: 30 * trace.Second,
	})
	if r.DiskWrites != 0 {
		t.Errorf("DiskWrites = %d, want 0 (block died before flush)", r.DiskWrites)
	}
}

func TestFullBlockOverwriteNeedsNoFetch(t *testing.T) {
	b := newTB()
	b.overwrite(1, 8192, 8192) // rewrite both blocks of a cold file entirely
	r := mustSim(t, b.events, Config{BlockSize: 4096, CacheSize: 1 << 20, Write: DelayedWrite})
	if r.DiskReads != 0 {
		t.Errorf("DiskReads = %d, want 0 (full-block overwrites)", r.DiskReads)
	}
}

func TestPartialOverwriteFetches(t *testing.T) {
	b := newTB()
	b.overwrite(1, 8192, 2000) // rewrite the first 2000 bytes of a cold 8 KB file
	r := mustSim(t, b.events, Config{BlockSize: 4096, CacheSize: 1 << 20, Write: DelayedWrite})
	if r.DiskReads != 1 {
		t.Errorf("DiskReads = %d, want 1 (partial block holds live data)", r.DiskReads)
	}
}

func TestAppendToFreshSpaceNeedsNoFetch(t *testing.T) {
	// Open a 100-byte file read-write, seek to end, append 50 bytes. The
	// tail of block 0 beyond byte 100 is not valid data, so no fetch of
	// the *written* portion is needed beyond the head bytes 0..99, which
	// ARE valid: the block holds live data, so this does fetch.
	b := newTB()
	id := b.nextID
	b.nextID++
	b.events = append(b.events,
		trace.Event{Time: b.tick(), Kind: trace.KindOpen, OpenID: id, File: 1, User: 1, Mode: trace.ReadWrite, Size: 100},
		trace.Event{Time: b.tick(), Kind: trace.KindSeek, OpenID: id, OldPos: 0, NewPos: 100},
		trace.Event{Time: b.tick(), Kind: trace.KindClose, OpenID: id, NewPos: 150},
	)
	r := mustSim(t, b.events, Config{BlockSize: 4096, CacheSize: 1 << 20, Write: DelayedWrite})
	if r.DiskReads != 1 {
		t.Errorf("DiskReads = %d, want 1 (head of block holds bytes 0..99)", r.DiskReads)
	}
	// Appending to a block-aligned fresh file needs nothing.
	b2 := newTB()
	b2.write(2, 4096)           // create block 0
	b2.overwrite(2, 4096, 4096) // full overwrite, no fetch, hit anyway
	r2 := mustSim(t, b2.events, Config{BlockSize: 4096, CacheSize: 1 << 20, Write: DelayedWrite})
	if r2.DiskReads != 0 {
		t.Errorf("DiskReads = %d, want 0", r2.DiskReads)
	}
}

func TestLRUEviction(t *testing.T) {
	// Cache of 2 blocks. Touch files 1, 2, re-touch 1, then 3: FIFO
	// would evict 1; LRU evicts 2.
	b := newTB()
	b.read(1, 4096)
	b.read(2, 4096)
	b.read(1, 4096)
	b.read(3, 4096)
	b.read(1, 4096) // hit under LRU, miss under FIFO
	lru := mustSim(t, b.events, Config{BlockSize: 4096, CacheSize: 8192, Write: DelayedWrite, Replacement: LRU})
	fifo := mustSim(t, b.events, Config{BlockSize: 4096, CacheSize: 8192, Write: DelayedWrite, Replacement: FIFO})
	if lru.DiskReads != 3 {
		t.Errorf("LRU DiskReads = %d, want 3", lru.DiskReads)
	}
	if fifo.DiskReads != 4 {
		t.Errorf("FIFO DiskReads = %d, want 4", fifo.DiskReads)
	}
}

func TestEvictionWritesDirty(t *testing.T) {
	b := newTB()
	b.write(1, 4096)
	b.read(2, 4096)
	b.read(3, 4096) // evicts file 1's dirty block from a 2-block cache
	r := mustSim(t, b.events, Config{BlockSize: 4096, CacheSize: 8192, Write: DelayedWrite})
	if r.DiskWrites != 1 {
		t.Errorf("DiskWrites = %d, want 1 (dirty eviction)", r.DiskWrites)
	}
	if r.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", r.Evictions)
	}
}

func TestClockAndRandomRun(t *testing.T) {
	b := newTB()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		f := trace.FileID(rng.Intn(20) + 1)
		if rng.Intn(2) == 0 {
			b.write(f, int64(rng.Intn(20000)+1))
		} else {
			b.read(f, 4096)
		}
	}
	for _, rp := range []Replacement{Clock, Random} {
		r := mustSim(t, b.events, Config{BlockSize: 4096, CacheSize: 16384, Write: DelayedWrite, Replacement: rp, Seed: 1})
		if r.LogicalAccesses == 0 {
			t.Errorf("%v: no accesses", rp)
		}
		if r.DiskIOs() > r.LogicalAccesses+r.WriteAccesses {
			t.Errorf("%v: impossible I/O count %d for %d accesses", rp, r.DiskIOs(), r.LogicalAccesses)
		}
	}
}

func TestPagingMode(t *testing.T) {
	b := newTB()
	b.exec(50, 100000)
	off := mustSim(t, b.events, Config{BlockSize: 4096, CacheSize: 1 << 20, Write: DelayedWrite})
	on := mustSim(t, b.events, Config{BlockSize: 4096, CacheSize: 1 << 20, Write: DelayedWrite, SimulatePaging: true})
	if off.LogicalAccesses != 0 {
		t.Errorf("paging off still accessed blocks: %d", off.LogicalAccesses)
	}
	want := int64((100000 + 4095) / 4096)
	if on.LogicalAccesses != want || on.DiskReads != want {
		t.Errorf("paging on: accesses=%d reads=%d, want %d", on.LogicalAccesses, on.DiskReads, want)
	}
	// A second exec of the same program hits in the cache.
	b.exec(50, 100000)
	on2 := mustSim(t, b.events, Config{BlockSize: 4096, CacheSize: 1 << 20, Write: DelayedWrite, SimulatePaging: true})
	if on2.DiskReads != want {
		t.Errorf("second exec missed: reads=%d, want %d", on2.DiskReads, want)
	}
}

func TestResidency(t *testing.T) {
	b := newTB()
	b.write(1, 4096)
	b.now = 25 * trace.Minute
	b.unlink(1)
	r := mustSim(t, b.events, Config{BlockSize: 4096, CacheSize: 1 << 20, Write: DelayedWrite})
	if r.ResidencyOver != 1 {
		t.Errorf("ResidencyOver = %v, want 1 (block resident 25 min > 20 min)", r.ResidencyOver)
	}
}

func TestConfigValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"zeroBlock":     {CacheSize: 1 << 20},
		"zeroCache":     {BlockSize: 4096},
		"flushNoPeriod": {BlockSize: 4096, CacheSize: 1 << 20, Write: FlushBack},
	} {
		if _, err := Simulate(nil, cfg); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}

func TestMalformedTraceRejected(t *testing.T) {
	events := []trace.Event{
		{Time: 0, Kind: trace.KindClose, OpenID: 5, NewPos: 100},
	}
	if _, err := Simulate(events, Config{BlockSize: 4096, CacheSize: 1 << 20, Write: DelayedWrite}); err == nil {
		t.Errorf("malformed trace accepted")
	}
}

func TestCountBlockAccesses(t *testing.T) {
	b := newTB()
	b.write(1, 10000)
	b.read(1, 10000)
	n, err := CountBlockAccesses(b.events, 4096, false)
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 { // 3 write blocks + 3 read blocks
		t.Errorf("CountBlockAccesses = %d, want 6", n)
	}
	n2, err := CountBlockAccesses(b.events, 8192, false)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 4 {
		t.Errorf("8K CountBlockAccesses = %d, want 4", n2)
	}
}

func TestStrings(t *testing.T) {
	if WriteThrough.String() != "write-through" || DelayedWrite.String() != "delayed-write" {
		t.Errorf("write policy names wrong")
	}
	if LRU.String() != "lru" || Random.String() != "random" {
		t.Errorf("replacement names wrong")
	}
}

// randomTrace builds a structurally valid random workload trace.
func randomTrace(seed int64, n int) []trace.Event {
	rng := rand.New(rand.NewSource(seed))
	b := newTB()
	for i := 0; i < n; i++ {
		f := trace.FileID(rng.Intn(30) + 1)
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			b.read(f, int64(rng.Intn(50000)+1))
		case 4, 5, 6:
			b.write(f, int64(rng.Intn(50000)+1))
		case 7:
			b.unlink(f)
		case 8:
			b.truncate(f, int64(rng.Intn(10000)))
		case 9:
			b.exec(f, int64(rng.Intn(200000)+1))
		}
		if rng.Intn(4) == 0 {
			b.now += trace.Time(rng.Intn(60000))
		}
	}
	return b.events
}

// Property: for LRU, miss ratio is non-increasing in cache size (the LRU
// stack inclusion property, which purging preserves).
func TestLRUMonotoneInCacheSize(t *testing.T) {
	f := func(seed int64) bool {
		events := randomTrace(seed, 200)
		prev := int64(-1)
		for _, cs := range []int64{8192, 32768, 131072, 1 << 20} {
			r, err := Simulate(events, Config{BlockSize: 4096, CacheSize: cs, Write: DelayedWrite})
			if err != nil {
				return false
			}
			if prev >= 0 && r.DiskIOs() > prev {
				return false
			}
			prev = r.DiskIOs()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: write-through always costs at least as many I/Os as flush-back,
// which costs at least as much as delayed-write; and accesses are policy-
// independent.
func TestWritePolicyOrdering(t *testing.T) {
	f := func(seed int64) bool {
		events := randomTrace(seed, 200)
		cfg := Config{BlockSize: 4096, CacheSize: 131072}
		cfg.Write = WriteThrough
		wt, err := Simulate(events, cfg)
		if err != nil {
			return false
		}
		cfg.Write = FlushBack
		cfg.FlushInterval = 30 * trace.Second
		fb, err := Simulate(events, cfg)
		if err != nil {
			return false
		}
		cfg.Write = DelayedWrite
		cfg.FlushInterval = 0
		dw, err := Simulate(events, cfg)
		if err != nil {
			return false
		}
		if wt.LogicalAccesses != fb.LogicalAccesses || fb.LogicalAccesses != dw.LogicalAccesses {
			return false
		}
		return wt.DiskWrites >= fb.DiskWrites && fb.DiskWrites+fb.DirtyAtEnd >= dw.DiskWrites
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: reads never exceed read accesses; writes never exceed write
// accesses + flush rewrites; totals are internally consistent.
func TestResultConsistency(t *testing.T) {
	f := func(seed int64) bool {
		events := randomTrace(seed, 300)
		r, err := Simulate(events, Config{BlockSize: 4096, CacheSize: 65536, Write: DelayedWrite})
		if err != nil {
			return false
		}
		if r.ReadAccesses+r.WriteAccesses != r.LogicalAccesses {
			return false
		}
		if r.DiskReads > r.LogicalAccesses {
			return false
		}
		// Under delayed-write each dirty block writes at most once per
		// residency, so writes cannot exceed write accesses.
		return r.DiskWrites <= r.WriteAccesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
