package cachesim

import (
	"fmt"

	"bsdtrace/internal/obs"
)

// Label renders a deterministic metric-name identifier for one
// configuration: block size, cache size, write policy (with its flush
// interval), plus any non-default replacement or paging setting. Two
// configs that simulate identically get equal labels, and the label
// never depends on map order or scheduling, so per-config counters sort
// stably in the run manifest.
func (c Config) Label() string {
	s := fmt.Sprintf("bs%d/cs%d/%v", c.BlockSize, c.CacheSize, c.Write)
	if c.Write == FlushBack {
		s += "@" + c.FlushInterval.String()
	}
	if c.Replacement != LRU {
		s += fmt.Sprintf("/%v", c.Replacement)
	}
	if c.SimulatePaging {
		s += "+paging"
	}
	if c.NoPurge {
		s += "+nopurge"
	}
	if c.BillAtStart {
		s += "+billstart"
	}
	return s
}

// PublishResults copies each simulation result's closing counters into
// the registry as "<prefix>.<config label>.<counter>": logical accesses
// split by direction, the disk I/O (miss and write-back) traffic, and
// the purge/eviction lifecycle. All deterministic replay outcomes —
// they belong to the manifest's canonical surface. Nil results are
// skipped; no-op when reg is nil or disabled.
func PublishResults(reg *obs.Registry, prefix string, results ...*Result) {
	if !reg.Enabled() {
		return
	}
	for _, r := range results {
		if r == nil {
			continue
		}
		p := prefix + "." + r.Config.Label()
		reg.Counter(p + ".logical_accesses").Set(r.LogicalAccesses)
		reg.Counter(p + ".read_accesses").Set(r.ReadAccesses)
		reg.Counter(p + ".write_accesses").Set(r.WriteAccesses)
		reg.Counter(p + ".disk_reads").Set(r.DiskReads)
		reg.Counter(p + ".disk_writes").Set(r.DiskWrites)
		reg.Counter(p + ".evictions").Set(r.Evictions)
		reg.Counter(p + ".purged").Set(r.Purged)
		reg.Counter(p + ".dirty_discarded").Set(r.DirtyDiscarded)
		reg.Counter(p + ".dirty_at_end").Set(r.DirtyAtEnd)
	}
}
