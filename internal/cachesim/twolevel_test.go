package cachesim

import (
	"math"
	"testing"

	"bsdtrace/internal/trace"
)

func twoMachines() [][]trace.Event {
	a := newTB()
	a.write(1, 8192)
	a.read(1, 8192)
	a.read(2, 4096) // cold: client miss -> server miss -> disk
	b := newTB()
	b.read(5, 4096) // cold on machine B
	b.read(5, 4096) // client hit
	return [][]trace.Event{a.events, b.events}
}

func TestTwoLevelBasics(t *testing.T) {
	r, err := TwoLevelSimulate(twoMachines(), TwoLevelConfig{
		BlockSize: 4096, ClientCache: 1 << 20, ServerCache: 4 << 20,
		Write: DelayedWrite,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Machine A: 2 write accesses (forwarded), 2 read hits (just
	// written), 1 cold read (forward). Machine B: 1 cold read (forward),
	// 1 hit. Total accesses 7.
	if r.ClientAccesses != 7 {
		t.Errorf("ClientAccesses = %d, want 7", r.ClientAccesses)
	}
	if r.WriteForwards != 2 {
		t.Errorf("WriteForwards = %d, want 2", r.WriteForwards)
	}
	if r.ClientReadMisses != 2 {
		t.Errorf("ClientReadMisses = %d, want 2", r.ClientReadMisses)
	}
	if r.NetworkBlocks != 4 {
		t.Errorf("NetworkBlocks = %d, want 4", r.NetworkBlocks)
	}
	// Server: 2 cold reads hit the disk; the 2 forwarded writes stay
	// dirty in the delayed-write server cache.
	if r.ServerDiskReads != 2 {
		t.Errorf("ServerDiskReads = %d, want 2", r.ServerDiskReads)
	}
	if r.ServerDiskWrites != 0 {
		t.Errorf("ServerDiskWrites = %d, want 0 (delayed)", r.ServerDiskWrites)
	}
	if got, want := r.ClientHitRatio(), 3.0/7; math.Abs(got-want) > 1e-12 {
		t.Errorf("ClientHitRatio = %v, want %v", got, want)
	}
	if got, want := r.EndToEndMissRatio(), 2.0/7; got != want {
		t.Errorf("EndToEndMissRatio = %v, want %v", got, want)
	}
}

func TestTwoLevelServerWriteThrough(t *testing.T) {
	r, err := TwoLevelSimulate(twoMachines(), TwoLevelConfig{
		BlockSize: 4096, ClientCache: 1 << 20, ServerCache: 4 << 20,
		Write: WriteThrough,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.ServerDiskWrites != 2 {
		t.Errorf("ServerDiskWrites = %d, want 2 under write-through", r.ServerDiskWrites)
	}
}

func TestTwoLevelPurgePropagates(t *testing.T) {
	// A file written on machine A and deleted: its dirty blocks must die
	// at the server too, costing no disk write even though the client
	// wrote them through.
	a := newTB()
	a.write(1, 8192)
	a.unlink(1)
	r, err := TwoLevelSimulate([][]trace.Event{a.events}, TwoLevelConfig{
		BlockSize: 4096, ClientCache: 1 << 20, ServerCache: 4 << 20,
		Write: DelayedWrite,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.ServerDiskIOs() != 0 {
		t.Errorf("server disk I/O = %d, want 0 (data died at the server)", r.ServerDiskIOs())
	}
}

func TestTwoLevelTinyClientForwardsMore(t *testing.T) {
	machines := [][]trace.Event{randomTrace(5, 300)}
	small, err := TwoLevelSimulate(machines, TwoLevelConfig{
		BlockSize: 4096, ClientCache: 8192, ServerCache: 8 << 20, Write: DelayedWrite,
	})
	if err != nil {
		t.Fatal(err)
	}
	big, err := TwoLevelSimulate(machines, TwoLevelConfig{
		BlockSize: 4096, ClientCache: 4 << 20, ServerCache: 8 << 20, Write: DelayedWrite,
	})
	if err != nil {
		t.Fatal(err)
	}
	if small.NetworkBlocks <= big.NetworkBlocks {
		t.Errorf("smaller client cache should forward more: %d vs %d",
			small.NetworkBlocks, big.NetworkBlocks)
	}
	if small.ClientAccesses != big.ClientAccesses {
		t.Errorf("client accesses should not depend on cache size")
	}
}

func TestTwoLevelMachinesDoNotCollide(t *testing.T) {
	// Two machines use the same file id for different files; the server
	// must keep them separate (two distinct cold reads).
	a := newTB()
	a.read(1, 4096)
	b := newTB()
	b.read(1, 4096)
	r, err := TwoLevelSimulate([][]trace.Event{a.events, b.events}, TwoLevelConfig{
		BlockSize: 4096, ClientCache: 1 << 20, ServerCache: 4 << 20, Write: DelayedWrite,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.ServerDiskReads != 2 {
		t.Errorf("ServerDiskReads = %d, want 2 (no aliasing across machines)", r.ServerDiskReads)
	}
}

func TestTwoLevelErrors(t *testing.T) {
	if _, err := TwoLevelSimulate(nil, TwoLevelConfig{BlockSize: 4096, ClientCache: 1, ServerCache: 1}); err == nil {
		t.Errorf("no machines accepted")
	}
	good := [][]trace.Event{{{Time: 0, Kind: trace.KindUnlink, File: 1}}}
	if _, err := TwoLevelSimulate(good, TwoLevelConfig{ClientCache: 1 << 20, ServerCache: 1 << 20}); err == nil {
		t.Errorf("zero block size accepted")
	}
	bad := [][]trace.Event{{{Time: 0, Kind: trace.KindClose, OpenID: 9}}}
	if _, err := TwoLevelSimulate(bad, TwoLevelConfig{BlockSize: 4096, ClientCache: 1 << 20, ServerCache: 1 << 20, Write: DelayedWrite}); err == nil {
		t.Errorf("malformed trace accepted")
	}
}
