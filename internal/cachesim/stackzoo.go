package cachesim

// Generalized stack analysis and the miss-curve front end for the policy
// zoo. Mattson's one-pass algorithm is not LRU-specific: it applies to
// any policy that ranks blocks by a priority independent of cache
// capacity, because such a policy's cache of C blocks always holds
// exactly the C highest-priority blocks (the inclusion property). The
// classic instance is LRU (priority = recency); this file adds the
// perfect-LFU instance (priority = lifetime frequency, recency breaking
// ties) and a MissCurveTape front end that silently falls back to
// per-size tape replay for the zoo policies, whose adaptive state (ARC's
// p, LIRS's ghosts, TinyLFU's sketch duels) breaks inclusion.

import (
	"fmt"

	"bsdtrace/internal/xfer"
)

// StackInclusion reports whether the policy satisfies the stack
// inclusion property — the contents of a cache of C blocks are always a
// subset of a cache of C+1 blocks on the same reference string — so that
// one Mattson pass yields its exact miss count at every size at once.
// Among the shipped policies only LRU qualifies: FIFO and Clock order by
// insertion (a capacity-dependent event), Random is randomized, and the
// zoo policies all carry capacity-scaled internal structure (segment
// sizes, ghost lists, sketch widths) that changes relative block ranking
// as the cache grows. For those, MissCurveTape replays the tape once per
// size instead.
func (r Replacement) StackInclusion() bool { return r == LRU }

// StackPolicy selects the priority ordering of the generalized stack
// analysis.
type StackPolicy uint8

const (
	// StackLRU ranks by recency alone — Mattson's classic instance,
	// identical to StackDistancesTape (which computes it faster with a
	// Fenwick tree; this path exists as its differential oracle).
	StackLRU StackPolicy = iota
	// StackLFU ranks by lifetime reference frequency, recency breaking
	// ties ("perfect LFU": counts survive eviction). The induced cache
	// policy both evicts and *admits* by priority — a referenced block
	// whose frequency is still below every resident block's is counted a
	// miss and not cached, exactly as a priority stack demands.
	StackLFU
)

func (p StackPolicy) String() string {
	switch p {
	case StackLRU:
		return "stack-lru"
	case StackLFU:
		return "stack-lfu"
	}
	return "stackpolicy(?)"
}

// StackDistancesPolicyTape runs the generalized Mattson analysis over a
// tape's reference string: one pass maintaining the priority stack,
// where a reference at stack depth d+1 hits in a cache of more than d
// blocks. The returned StackResult answers Misses/MissRatio/Curve for
// every cache size, under the stack-managed variant of the policy.
//
// The stack is a plain slice scanned linearly (O(references x distinct
// blocks) worst case) — fine for analysis and oracle duty; the
// production LRU path is StackDistancesTape's Fenwick tree.
func StackDistancesPolicyTape(tape *xfer.Tape, blockSize int64, pol StackPolicy) (*StackResult, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("cachesim: block size %d must be positive", blockSize)
	}
	if pol != StackLRU && pol != StackLFU {
		return nil, fmt.Errorf("cachesim: unknown stack policy %d", pol)
	}
	r := resolvedFor(tape, blockSize)
	refs := referenceString(tape, r)

	res := &StackResult{BlockSize: blockSize, References: int64(len(refs))}
	freq := make([]int64, r.nBlocks())
	// stack holds block IDs in priority order, highest first. For LRU
	// that is pure recency; for LFU it is frequency descending with the
	// most recently referenced block first within each frequency class.
	stack := make([]int32, 0, 1024)
	var maxDist int
	distCount := make(map[int]int64)
	for _, x := range refs {
		// Depth before this reference decides hit or miss at each size.
		at := -1
		for i, b := range stack {
			if b == x {
				at = i
				break
			}
		}
		if at >= 0 {
			distCount[at]++
			if at > maxDist {
				maxDist = at
			}
			copy(stack[at:], stack[at+1:])
			stack = stack[:len(stack)-1]
		} else {
			res.ColdMisses++
		}
		freq[x]++
		// Reinsert at the top of x's priority class: for LRU the very
		// top; for LFU below every strictly more frequent block (x is
		// the most recent of its own frequency class by construction).
		ins := 0
		if pol == StackLFU {
			for ins < len(stack) && freq[stack[ins]] > freq[x] {
				ins++
			}
		}
		stack = append(stack, 0)
		copy(stack[ins+1:], stack[ins:])
		stack[ins] = x
	}
	res.hist = make([]int64, maxDist+1)
	for d, c := range distCount {
		res.hist[d] = c
	}
	return res, nil
}

// MissCurveTape returns the reference miss count of the given
// replacement policy at each cache size, in the order given. For
// policies with the stack inclusion property (LRU) this is one Mattson
// pass; for the rest the tape's reference string is replayed once per
// size through the real policy under the simulator's victim-then-insert
// discipline, in parallel across sizes. Like the stack analysis — and
// unlike SimulateTape — this counts pure reference misses: no write
// policy, no purges, no synthesized exec page-ins.
func MissCurveTape(tape *xfer.Tape, blockSize int64, rep Replacement, cacheSizes []int64, seed int64) ([]int64, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("cachesim: block size %d must be positive", blockSize)
	}
	if rep >= numReplacements {
		return nil, fmt.Errorf("cachesim: unknown replacement policy %d", rep)
	}
	for _, cs := range cacheSizes {
		if cs <= 0 {
			return nil, fmt.Errorf("cachesim: cache size %d must be positive", cs)
		}
	}
	out := make([]int64, len(cacheSizes))
	if rep.StackInclusion() {
		sr, err := StackDistancesTape(tape, blockSize)
		if err != nil {
			return nil, err
		}
		for i, cs := range cacheSizes {
			out[i] = sr.Misses(cs)
		}
		return out, nil
	}
	r := resolvedFor(tape, blockSize)
	refs := referenceString(tape, r)
	err := runParallel(len(cacheSizes), func(i int) error {
		capBlocks := int(cacheSizes[i] / blockSize)
		if capBlocks < 1 {
			// A cache that cannot hold one block misses every reference,
			// matching StackResult.Misses at the same degenerate size.
			out[i] = int64(len(refs))
			return nil
		}
		p := NewPolicy(rep, capBlocks, seed)
		resident := make([]bool, r.nBlocks())
		var misses int64
		for _, id := range refs {
			if resident[id] {
				p.Access(id)
				continue
			}
			misses++
			for p.Len() >= capBlocks {
				v, ok := p.Victim()
				if !ok {
					return fmt.Errorf("cachesim: %v victim failed with %d resident", rep, p.Len())
				}
				p.Remove(v)
				resident[v] = false
			}
			p.Insert(id)
			resident[id] = true
		}
		out[i] = misses
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
