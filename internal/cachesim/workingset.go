package cachesim

import (
	"fmt"

	"bsdtrace/internal/stats"
	"bsdtrace/internal/trace"
	"bsdtrace/internal/xfer"
)

// Working-set analysis (Denning's W(T)): how many distinct blocks a trace
// touches in windows of a given length. It is the classical explanation
// for where a miss-ratio curve bends — the Table VI knee sits where the
// cache first holds the working set of the reuse horizon that matters —
// and later disk trace studies (e.g. Ruemmler & Wilkes) report exactly
// this curve.

// WorkingSetPoint summarizes W(T) for one window length: the mean and
// maximum number of distinct blocks (and bytes) touched per non-
// overlapping window of length T.
type WorkingSetPoint struct {
	Window     trace.Time
	MeanBlocks float64
	MaxBlocks  int64
	// MeanBytes and MaxBytes are the block counts scaled by block size.
	MeanBytes float64
	MaxBytes  int64
	Windows   int64
}

// WorkingSetTape computes W(T) for each window length over the tape's
// block reference string (reads and writes alike; windows with no
// references count as empty windows if they fall inside the trace's
// span).
func WorkingSetTape(tape *xfer.Tape, blockSize int64, windows []trace.Time) ([]WorkingSetPoint, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("cachesim: block size %d must be positive", blockSize)
	}
	for _, w := range windows {
		if w <= 0 {
			return nil, fmt.Errorf("cachesim: window %v must be positive", w)
		}
	}
	r := resolvedFor(tape, blockSize)
	// The timed reference string: each true transfer's blocks at the
	// transfer's billing time. Op times are nondecreasing, so the last
	// op's time is the trace's span.
	type ref struct {
		t  trace.Time
		id int32
	}
	refs := make([]ref, 0, len(r.accessIDs))
	var last trace.Time
	for i := range tape.Ops {
		op := &tape.Ops[i]
		if op.Time > last {
			last = op.Time
		}
		if op.Kind != xfer.OpTransfer {
			continue
		}
		t := tape.Transfers[op.Xfer].Time
		for _, id := range r.accessIDs[r.accessOff[op.Xfer]:r.accessOff[op.Xfer+1]] {
			refs = append(refs, ref{t: t, id: id})
		}
	}

	// seen stamps each block with the last window that touched it,
	// avoiding a per-window clear.
	seen := make([]int64, r.nBlocks())
	for i := range seen {
		seen[i] = -1
	}
	out := make([]WorkingSetPoint, 0, len(windows))
	for wi, w := range windows {
		p := WorkingSetPoint{Window: w}
		var agg stats.Welford
		cur := int64(0)
		var n int64
		stamp := int64(wi)<<32 | 0 // unique per (window length, window index)
		flushTo := func(idx int64) {
			for cur < idx {
				agg.Add(float64(n))
				if n > p.MaxBlocks {
					p.MaxBlocks = n
				}
				n = 0
				cur++
				stamp++
			}
		}
		for _, rf := range refs {
			flushTo(int64(rf.t / w))
			if seen[rf.id] != stamp {
				seen[rf.id] = stamp
				n++
			}
		}
		flushTo(int64(last/w) + 1)
		p.Windows = agg.N()
		p.MeanBlocks = agg.Mean()
		p.MeanBytes = p.MeanBlocks * float64(blockSize)
		p.MaxBytes = p.MaxBlocks * blockSize
		out = append(out, p)
	}
	return out, nil
}

// WorkingSet runs WorkingSetTape on a freshly built tape.
func WorkingSet(events []trace.Event, blockSize int64, windows []trace.Time) ([]WorkingSetPoint, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("cachesim: block size %d must be positive", blockSize)
	}
	for _, w := range windows {
		if w <= 0 {
			return nil, fmt.Errorf("cachesim: window %v must be positive", w)
		}
	}
	tape, err := xfer.NewTape(events)
	if err != nil {
		return nil, err
	}
	return WorkingSetTape(tape, blockSize, windows)
}
