package cachesim

import (
	"fmt"

	"bsdtrace/internal/stats"
	"bsdtrace/internal/trace"
	"bsdtrace/internal/xfer"
)

// Working-set analysis (Denning's W(T)): how many distinct blocks a trace
// touches in windows of a given length. It is the classical explanation
// for where a miss-ratio curve bends — the Table VI knee sits where the
// cache first holds the working set of the reuse horizon that matters —
// and later disk trace studies (e.g. Ruemmler & Wilkes) report exactly
// this curve.

// WorkingSetPoint summarizes W(T) for one window length: the mean and
// maximum number of distinct blocks (and bytes) touched per non-
// overlapping window of length T.
type WorkingSetPoint struct {
	Window     trace.Time
	MeanBlocks float64
	MaxBlocks  int64
	// MeanBytes and MaxBytes are the block counts scaled by block size.
	MeanBytes float64
	MaxBytes  int64
	Windows   int64
}

// WorkingSet computes W(T) for each window length over the trace's block
// reference string (reads and writes alike; windows with no references
// count as empty windows if they fall inside the trace's span).
func WorkingSet(events []trace.Event, blockSize int64, windows []trace.Time) ([]WorkingSetPoint, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("cachesim: block size %d must be positive", blockSize)
	}
	for _, w := range windows {
		if w <= 0 {
			return nil, fmt.Errorf("cachesim: window %v must be positive", w)
		}
	}
	// Collect the timed reference string once.
	type ref struct {
		t   trace.Time
		key blockKey
	}
	var refs []ref
	var last trace.Time
	sc := xfer.NewScanner()
	sc.OnTransfer = func(t xfer.Transfer) {
		first := t.Offset / blockSize
		lastIdx := (t.End() - 1) / blockSize
		for idx := first; idx <= lastIdx; idx++ {
			refs = append(refs, ref{t: t.Time, key: blockKey{file: t.File, idx: idx}})
		}
	}
	for _, e := range events {
		sc.Feed(e)
		if e.Time > last {
			last = e.Time
		}
	}
	sc.Finish()
	if errs := sc.Errs(); len(errs) > 0 {
		return nil, errs[0]
	}

	out := make([]WorkingSetPoint, 0, len(windows))
	for _, w := range windows {
		p := WorkingSetPoint{Window: w}
		var agg stats.Welford
		cur := int64(0)
		set := make(map[blockKey]struct{})
		flushTo := func(idx int64) {
			for cur < idx {
				n := int64(len(set))
				agg.Add(float64(n))
				if n > p.MaxBlocks {
					p.MaxBlocks = n
				}
				clear(set)
				cur++
			}
		}
		for _, r := range refs {
			flushTo(int64(r.t / w))
			set[r.key] = struct{}{}
		}
		flushTo(int64(last/w) + 1)
		p.Windows = agg.N()
		p.MeanBlocks = agg.Mean()
		p.MeanBytes = p.MeanBlocks * float64(blockSize)
		p.MaxBytes = p.MaxBlocks * blockSize
		out = append(out, p)
	}
	return out, nil
}
