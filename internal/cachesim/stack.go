package cachesim

import (
	"fmt"
	"sort"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/xfer"
)

// StackResult holds a one-pass LRU stack-distance analysis (Mattson et
// al.'s classic algorithm) over a trace's block reference string.
//
// Where Simulate replays one cache configuration with full write-policy
// and purge semantics, the stack analysis computes the pure LRU reference
// miss ratio for *every* cache size simultaneously: by LRU's inclusion
// property, a reference hits in a cache of C blocks exactly when its reuse
// distance (the number of distinct blocks touched since the last reference
// to this block) is at most C. The resulting curve is how the trace-study
// literature summarizes a workload's locality, and bounds Table VI from
// below (the real simulator adds write-backs and subtracts purged dead
// blocks and whole-block overwrites). It also serves as an independent
// oracle for the transfer tape: an LRU cache of any size replaying the
// tape's reference string must miss exactly Misses times (see the
// tests).
type StackResult struct {
	BlockSize int64
	// References is the length of the block reference string;
	// ColdMisses the number of first-touches (infinite distance).
	References int64
	ColdMisses int64
	// hist[d] counts references with reuse distance d+1 (d distinct
	// blocks fit a hit in a cache of d+1 blocks... see MissRatio).
	hist []int64
}

// fenwick is a binary indexed tree over reference positions, counting the
// current "most recent position" markers of each block.
type fenwick struct {
	tree []int64
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int64, n+1)} }

func (f *fenwick) add(i int, delta int64) {
	for i++; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// sum returns the count of markers at positions <= i.
func (f *fenwick) sum(i int) int64 {
	var s int64
	for i++; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// StackDistancesTape computes the reuse-distance profile of a tape's
// block reference string at the given block size. Both read and write
// accesses count as references; deletions, overwrites, and synthesized
// exec page-ins are ignored (this is the pure locality profile, not the
// I/O count — see SimulateTape for that).
func StackDistancesTape(tape *xfer.Tape, blockSize int64) (*StackResult, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("cachesim: block size %d must be positive", blockSize)
	}
	r := resolvedFor(tape, blockSize)
	refs := referenceString(tape, r)

	res := &StackResult{BlockSize: blockSize, References: int64(len(refs))}
	// Mattson via a Fenwick tree over positions. last[b] is the position
	// of b's previous reference; the number of distinct blocks referenced
	// since is the count of "latest position" markers after it.
	last := make([]int, r.nBlocks())
	for i := range last {
		last[i] = -1
	}
	f := newFenwick(len(refs))
	var maxDist int
	distCount := make(map[int]int64)
	for pos, b := range refs {
		if prev := last[b]; prev >= 0 {
			dist := int(f.sum(len(refs)-1) - f.sum(prev))
			// dist counts distinct blocks referenced strictly after
			// prev, excluding b itself (b's marker sits at prev).
			distCount[dist]++
			if dist > maxDist {
				maxDist = dist
			}
			f.add(prev, -1)
		} else {
			res.ColdMisses++
		}
		f.add(pos, 1)
		last[b] = pos
	}
	res.hist = make([]int64, maxDist+1)
	for d, c := range distCount {
		res.hist[d] = c
	}
	return res, nil
}

// referenceString extracts a tape's block reference string at the
// resolution's block size: the dense block IDs of every true transfer,
// in tape order (exec page-ins are synthetic, not references).
func referenceString(tape *xfer.Tape, r *resolved) []int32 {
	refs := make([]int32, 0, len(r.accessIDs))
	for i := range tape.Ops {
		op := &tape.Ops[i]
		if op.Kind == xfer.OpTransfer {
			refs = append(refs, r.accessIDs[r.accessOff[op.Xfer]:r.accessOff[op.Xfer+1]]...)
		}
	}
	return refs
}

// StackDistances runs StackDistancesTape on a freshly built tape.
func StackDistances(events []trace.Event, blockSize int64) (*StackResult, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("cachesim: block size %d must be positive", blockSize)
	}
	tape, err := xfer.NewTape(events)
	if err != nil {
		return nil, err
	}
	return StackDistancesTape(tape, blockSize)
}

// Misses returns the LRU reference miss count for a cache of the given
// byte capacity: a reference with reuse distance d hits iff the cache
// holds more than d blocks (the referenced block is at stack depth d+1).
func (r *StackResult) Misses(cacheBytes int64) int64 {
	capBlocks := int(cacheBytes / r.BlockSize)
	misses := r.ColdMisses
	for d := capBlocks; d < len(r.hist); d++ {
		misses += r.hist[d]
	}
	return misses
}

// MissRatio returns the LRU reference miss ratio at the given byte
// capacity.
func (r *StackResult) MissRatio(cacheBytes int64) float64 {
	if r.References == 0 {
		return 0
	}
	return float64(r.Misses(cacheBytes)) / float64(r.References)
}

// Curve evaluates the miss ratio at each cache size, sorted ascending.
func (r *StackResult) Curve(cacheSizes []int64) []float64 {
	sizes := append([]int64(nil), cacheSizes...)
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	out := make([]float64, len(sizes))
	for i, cs := range sizes {
		out[i] = r.MissRatio(cs)
	}
	return out
}

// DistinctBlocks returns the number of distinct blocks referenced (the
// cold-miss count).
func (r *StackResult) DistinctBlocks() int64 { return r.ColdMisses }
