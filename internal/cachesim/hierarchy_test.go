package cachesim

import (
	"testing"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/xfer"
)

func hierarchyMachines(t *testing.T) []*xfer.Tape {
	t.Helper()
	tapes := make([]*xfer.Tape, 3)
	for m, seed := range []int64{5, 9, 13} {
		tapes[m] = mustTape(t, randomTrace(seed, 400))
	}
	return tapes
}

// TestHierarchyMatchesTwoLevel is the equivalence oracle for the N-tier
// engine: a hierarchy of [write-through client, server, disk] is by
// construction the same machine as TwoLevelSimulateTapes, so every
// count must agree exactly — client misses, write forwards, and the
// server's disk reads and writes — under each server write policy.
func TestHierarchyMatchesTwoLevel(t *testing.T) {
	tapes := hierarchyMachines(t)
	cases := []struct {
		name  string
		write WritePolicy
		flush trace.Time
	}{
		{"write-through", WriteThrough, 0},
		{"delayed-write", DelayedWrite, 0},
		{"flush-back", FlushBack, 30 * trace.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			two, err := TwoLevelSimulateTapes(tapes, TwoLevelConfig{
				BlockSize:   4096,
				ClientCache: 64 * 4096,
				ServerCache: 1 << 20,
				Write:       tc.write, FlushInterval: tc.flush,
			})
			if err != nil {
				t.Fatal(err)
			}
			h, err := HierarchySimulateTapes(tapes, HierarchyConfig{
				BlockSize: 4096,
				Tiers: []Tier{
					{Name: "client", Size: 64 * 4096, Replacement: LRU, Write: WriteThrough},
					{Name: "server", Size: 1 << 20, Replacement: LRU, Write: tc.write, FlushInterval: tc.flush},
					{Name: "disk"},
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if h.ClientAccesses != two.ClientAccesses {
				t.Errorf("client accesses %d, two-level %d", h.ClientAccesses, two.ClientAccesses)
			}
			if h.Tiers[0].ReadMisses != two.ClientReadMisses {
				t.Errorf("client read misses %d, two-level %d", h.Tiers[0].ReadMisses, two.ClientReadMisses)
			}
			if h.Tiers[0].WriteBacks != two.WriteForwards {
				t.Errorf("write forwards %d, two-level %d", h.Tiers[0].WriteBacks, two.WriteForwards)
			}
			if h.NetworkBlocks() != two.NetworkBlocks {
				t.Errorf("network blocks %d, two-level %d", h.NetworkBlocks(), two.NetworkBlocks)
			}
			if h.DiskReads() != two.ServerDiskReads {
				t.Errorf("disk reads %d, two-level %d", h.DiskReads(), two.ServerDiskReads)
			}
			if h.DiskWrites() != two.ServerDiskWrites {
				t.Errorf("disk writes %d, two-level %d", h.DiskWrites(), two.ServerDiskWrites)
			}
			if h.EndToEndMissRatio() != two.EndToEndMissRatio() {
				t.Errorf("end-to-end miss ratio %v, two-level %v", h.EndToEndMissRatio(), two.EndToEndMissRatio())
			}
		})
	}
}

// TestHierarchyThreeTier exercises a RAM/flash/disk stack with a zoo
// policy in the middle and checks the flow-conservation invariants:
// every operation a tier forwards arrives at the tier below, busy time
// follows the latency model, wear tracks media writes, and reruns are
// bit-identical.
func TestHierarchyThreeTier(t *testing.T) {
	tapes := hierarchyMachines(t)
	cfg := HierarchyConfig{
		BlockSize: 4096,
		Tiers: []Tier{
			{Name: "ram", Size: 32 * 4096, Replacement: LRU, Write: WriteThrough},
			{Name: "flash", Size: 1 << 20, Replacement: ARC, Seed: 1, Write: DelayedWrite,
				ReadLatency: 1 * trace.Millisecond, WriteLatency: 2 * trace.Millisecond,
				EnduranceWrites: 1000},
			{Name: "disk",
				ReadLatency: 10 * trace.Millisecond, WriteLatency: 10 * trace.Millisecond},
		},
	}
	h, err := HierarchySimulateTapes(tapes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ram, flash, disk := &h.Tiers[0], &h.Tiers[1], &h.Tiers[2]
	if flash.Reads != ram.ReadMisses {
		t.Errorf("flash saw %d reads, ram forwarded %d", flash.Reads, ram.ReadMisses)
	}
	if flash.Writes != ram.WriteBacks {
		t.Errorf("flash saw %d writes, ram forwarded %d", flash.Writes, ram.WriteBacks)
	}
	if disk.Reads != flash.ReadMisses {
		t.Errorf("disk saw %d reads, flash forwarded %d", disk.Reads, flash.ReadMisses)
	}
	if disk.Writes != flash.WriteBacks {
		t.Errorf("disk saw %d writes, flash forwarded %d", disk.Writes, flash.WriteBacks)
	}
	if flash.Fills != flash.ReadMisses {
		t.Errorf("flash fills %d, read misses %d", flash.Fills, flash.ReadMisses)
	}
	if hr := flash.HitRatio(); hr < 0 || hr > 1 {
		t.Errorf("flash hit ratio %v out of range", hr)
	}
	wantBusy := cfg.Tiers[1].ReadLatency*trace.Time(flash.Reads) +
		cfg.Tiers[1].WriteLatency*trace.Time(flash.Writes+flash.Fills)
	if flash.BusyTime != wantBusy {
		t.Errorf("flash busy time %v, want %v", flash.BusyTime, wantBusy)
	}
	if flash.Writes+flash.Fills > 0 {
		if flash.MaxBlockWrites < 1 {
			t.Error("flash media written but MaxBlockWrites = 0")
		}
		if flash.MeanBlockWrites <= 0 || flash.MeanBlockWrites > float64(flash.MaxBlockWrites) {
			t.Errorf("flash mean block writes %v vs max %d", flash.MeanBlockWrites, flash.MaxBlockWrites)
		}
		want := float64(flash.MaxBlockWrites) / float64(cfg.Tiers[1].EnduranceWrites)
		if flash.WearFraction != want {
			t.Errorf("flash wear fraction %v, want %v", flash.WearFraction, want)
		}
	}
	if disk.Writes > 0 && disk.WearFraction != 0 {
		t.Errorf("disk has no endurance budget but wear fraction %v", disk.WearFraction)
	}
	if ram.MaxBlockWrites != 0 {
		t.Errorf("tier 0 wear tracked (%d), want untracked", ram.MaxBlockWrites)
	}

	again, err := HierarchySimulateTapes(tapes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range h.Tiers {
		a, b := h.Tiers[i], again.Tiers[i]
		if a != b {
			t.Errorf("tier %d rerun differs: %+v vs %+v", i, a, b)
		}
	}
}

// TestHierarchyZooTiers runs every policy as the shared-tier policy of
// a three-tier stack: the engine must accept the whole zoo.
func TestHierarchyZooTiers(t *testing.T) {
	tapes := hierarchyMachines(t)[:1]
	for _, rep := range AllReplacements() {
		h, err := HierarchySimulateTapes(tapes, HierarchyConfig{
			BlockSize: 4096,
			Tiers: []Tier{
				{Name: "ram", Size: 16 * 4096, Replacement: LRU, Write: WriteThrough},
				{Name: "mid", Size: 256 * 4096, Replacement: rep, Seed: 1, Write: DelayedWrite},
				{Name: "disk"},
			},
		})
		if err != nil {
			t.Fatalf("%v: %v", rep, err)
		}
		if h.DiskReads() > h.Tiers[1].Reads {
			t.Errorf("%v: disk reads %d exceed mid-tier reads %d", rep, h.DiskReads(), h.Tiers[1].Reads)
		}
	}
}

// TestHierarchyValidation: malformed tier stacks must be rejected up
// front.
func TestHierarchyValidation(t *testing.T) {
	tapes := hierarchyMachines(t)[:1]
	bad := []HierarchyConfig{
		{BlockSize: 4096, Tiers: []Tier{{Name: "disk"}}}, // one tier
		{BlockSize: 4096, Tiers: []Tier{ // finite final tier
			{Name: "ram", Size: 1 << 20}, {Name: "disk", Size: 1 << 20}}},
		{BlockSize: 4096, Tiers: []Tier{ // unbounded middle tier
			{Name: "ram", Size: 1 << 20}, {Name: "mid"}, {Name: "disk"}}},
		{BlockSize: 4096, Tiers: []Tier{ // unknown policy
			{Name: "ram", Size: 1 << 20, Replacement: numReplacements}, {Name: "disk"}}},
		{BlockSize: 0, Tiers: []Tier{ // bad block size
			{Name: "ram", Size: 1 << 20}, {Name: "disk"}}},
	}
	for i, cfg := range bad {
		if _, err := HierarchySimulateTapes(tapes, cfg); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
	if _, err := HierarchySimulateTapes(nil, bad[0]); err == nil {
		t.Error("zero machines accepted")
	}
	if _, err := HierarchySimulate(nil, bad[0]); err == nil {
		t.Error("HierarchySimulate with zero machines accepted")
	}
}
