package cachesim

import (
	"bsdtrace/internal/trace"
	"bsdtrace/internal/xfer"
)

// The dirty-set observer: the reliability side of the write-policy trade.
//
// The paper's Table VI weighs write policies only by disk traffic; the
// other half of the trade is what a crash would lose — every block that
// has been modified in the cache but not yet written back. An Observer
// receives exactly those lifecycle transitions during a replay, stamped
// with the simulated clock, so a consumer (internal/fault) can maintain a
// shadow dirty set with dirtied-since timestamps and answer "what would a
// crash at time t have lost?" without a second replay.
//
// Callback times are nondecreasing: the replay clock never moves
// backwards, and overdue flush-back scans execute at their scheduled
// times (see cache.advance), so a CleanFlushed notification carries the
// flush boundary the write actually happened at, not the time of the
// event that caught the clock up.

// CleanReason says why a dirty block ceased to be dirty.
type CleanReason uint8

const (
	// CleanFlushed: a flush-back scan wrote the block at a flush boundary.
	CleanFlushed CleanReason = iota
	// CleanWriteBack: the block was written back when it left the cache
	// (eviction, or the NoPurge ablation writing back dead blocks).
	CleanWriteBack
	// CleanDiscarded: the block's data died in the cache (unlink,
	// truncate, overwrite) and never reached the disk.
	CleanDiscarded
)

// String names the reason.
func (r CleanReason) String() string {
	switch r {
	case CleanFlushed:
		return "flushed"
	case CleanWriteBack:
		return "write-back"
	case CleanDiscarded:
		return "discarded"
	}
	return "clean-reason(?)"
}

// Observer receives the dirty-set lifecycle of one replay. BlockDirtied
// fires when a clean (or absent) block becomes dirty; BlockCleaned fires
// when a dirty block is written back or discarded. Under WriteThrough no
// block is ever dirty, so neither callback fires. Blocks still dirty when
// the trace ends get no final callback (they are the Result's DirtyAtEnd).
// Callbacks arrive in nondecreasing time order from a single goroutine.
type Observer interface {
	BlockDirtied(id int32, now trace.Time)
	BlockCleaned(id int32, now trace.Time, reason CleanReason)
}

// SimulateTapeObserved runs one cache simulation over a tape with an
// Observer attached. A nil observer makes it identical to SimulateTape.
func SimulateTapeObserved(tape *xfer.Tape, cfg Config, obs Observer) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	c := newCache(tape, resolvedFor(tape, cfg.BlockSize), cfg)
	c.obs = obs
	c.run()
	return c.finish(), nil
}

// MultiSimulateObserved is MultiSimulate with per-configuration
// observers: configuration i gets obs(i) attached (obs itself may be nil,
// and so may any value it returns). The observer factory is called before
// the parallel replay starts, in configuration order; each observer then
// sees only its own configuration's replay, single-goroutine.
func MultiSimulateObserved(tape *xfer.Tape, cfgs []Config, obs func(i int) Observer) ([]*Result, error) {
	filled := make([]Config, len(cfgs))
	for i, cfg := range cfgs {
		if err := cfg.fill(); err != nil {
			return nil, err
		}
		filled[i] = cfg
	}
	observers := make([]Observer, len(cfgs))
	if obs != nil {
		for i := range observers {
			observers[i] = obs(i)
		}
	}
	out := make([]*Result, len(cfgs))
	runParallel(len(filled), func(i int) error {
		c := newCache(tape, resolvedFor(tape, filled[i].BlockSize), filled[i])
		c.obs = observers[i]
		c.run()
		out[i] = c.finish()
		return nil
	})
	return out, nil
}
