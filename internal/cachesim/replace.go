package cachesim

import "bsdtrace/internal/dist"

// Replacement selects the cache replacement policy. The paper's simulator
// uses LRU exclusively; the others are ablations quantifying how much of
// the cache's benefit depends on that choice.
type Replacement uint8

// Replacement policies.
const (
	// LRU evicts the least recently used block (the paper's policy).
	LRU Replacement = iota
	// FIFO evicts the oldest-inserted block regardless of use.
	FIFO
	// Clock is the one-bit second-chance approximation of LRU.
	Clock
	// Random evicts a uniformly random block.
	Random
)

// String names the policy.
func (r Replacement) String() string {
	switch r {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case Clock:
		return "clock"
	case Random:
		return "random"
	}
	return "replacement(?)"
}

// replacer is the internal interface a replacement policy implements. The
// cache calls insert on fill, access on every hit, remove on purge, and
// victim to choose an eviction candidate (which the cache then removes).
type replacer interface {
	insert(b *block)
	access(b *block)
	remove(b *block)
	victim() *block
	len() int
}

func newReplacer(r Replacement, seed int64) replacer {
	switch r {
	case LRU:
		return &listPolicy{moveOnAccess: true}
	case FIFO:
		return &listPolicy{}
	case Clock:
		return &clockPolicy{}
	case Random:
		return &randomPolicy{src: dist.NewSource(seed)}
	default:
		panic("cachesim: unknown replacement policy")
	}
}

// blockList is an intrusive doubly-linked list of cache blocks with a
// sentinel-free head/tail representation. Intrusive links avoid a separate
// allocation per cached block on the simulator's hottest path.
type blockList struct {
	head, tail *block
	n          int
}

func (l *blockList) pushFront(b *block) {
	b.prev = nil
	b.next = l.head
	if l.head != nil {
		l.head.prev = b
	}
	l.head = b
	if l.tail == nil {
		l.tail = b
	}
	l.n++
}

func (l *blockList) remove(b *block) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		l.head = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		l.tail = b.prev
	}
	b.prev, b.next = nil, nil
	l.n--
}

func (l *blockList) moveToFront(b *block) {
	if l.head == b {
		return
	}
	l.remove(b)
	l.pushFront(b)
}

// listPolicy implements LRU (moveOnAccess) and FIFO (insertion order).
// The victim is always the list tail.
type listPolicy struct {
	list         blockList
	moveOnAccess bool
}

func (p *listPolicy) insert(b *block) { p.list.pushFront(b) }
func (p *listPolicy) access(b *block) {
	if p.moveOnAccess {
		p.list.moveToFront(b)
	}
}
func (p *listPolicy) remove(b *block) { p.list.remove(b) }
func (p *listPolicy) victim() *block  { return p.list.tail }
func (p *listPolicy) len() int        { return p.list.n }

// clockPolicy approximates LRU with a reference bit per block and a
// sweeping hand. Blocks live on the same intrusive list; the hand walks
// from the tail toward the head, giving referenced blocks a second chance.
type clockPolicy struct {
	list blockList
	hand *block
}

func (p *clockPolicy) insert(b *block) { p.list.pushFront(b) }
func (p *clockPolicy) access(b *block) { b.referenced = true }
func (p *clockPolicy) remove(b *block) {
	if p.hand == b {
		p.hand = b.prev
		if p.hand == nil {
			p.hand = p.list.tail
		}
		if p.hand == b {
			p.hand = nil
		}
	}
	p.list.remove(b)
}
func (p *clockPolicy) victim() *block {
	if p.list.n == 0 {
		return nil
	}
	if p.hand == nil {
		p.hand = p.list.tail
	}
	// Two sweeps suffice: the first clears every referenced bit on the
	// way, so the second finds an unreferenced block.
	for i := 0; i < 2*p.list.n; i++ {
		b := p.hand
		if !b.referenced {
			return b
		}
		b.referenced = false
		p.hand = b.prev
		if p.hand == nil {
			p.hand = p.list.tail
		}
	}
	return p.list.tail
}
func (p *clockPolicy) len() int { return p.list.n }

// randomPolicy evicts a uniformly random block. Blocks are kept in a
// slice with back-swap deletion; each block remembers its slot.
type randomPolicy struct {
	blocks []*block
	src    *dist.Source
}

func (p *randomPolicy) insert(b *block) {
	b.slot = len(p.blocks)
	p.blocks = append(p.blocks, b)
}
func (p *randomPolicy) access(*block) {}
func (p *randomPolicy) remove(b *block) {
	last := len(p.blocks) - 1
	p.blocks[b.slot] = p.blocks[last]
	p.blocks[b.slot].slot = b.slot
	p.blocks[last] = nil
	p.blocks = p.blocks[:last]
}
func (p *randomPolicy) victim() *block {
	if len(p.blocks) == 0 {
		return nil
	}
	return p.blocks[p.src.Intn(len(p.blocks))]
}
func (p *randomPolicy) len() int { return len(p.blocks) }
