package cachesim

import (
	"fmt"
	"strings"

	"bsdtrace/internal/dist"
)

// Replacement selects the cache replacement policy. The paper's simulator
// uses LRU exclusively; the classic alternatives (FIFO, Clock, Random) are
// ablations quantifying how much of the cache's benefit depends on that
// choice, and the modern zoo (ARC, 2Q, SLRU, LIRS, TinyLFU) asks how far a
// smarter policy could have pushed the 1985 curves.
type Replacement uint8

// Replacement policies.
const (
	// LRU evicts the least recently used block (the paper's policy).
	LRU Replacement = iota
	// FIFO evicts the oldest-inserted block regardless of use.
	FIFO
	// Clock is the one-bit second-chance approximation of LRU.
	Clock
	// Random evicts a uniformly random block.
	Random
	// ARC adapts the split between a recency list and a frequency list
	// using ghosts of recently evicted blocks (Megiddo & Modha).
	ARC
	// TwoQ keeps first-touch blocks in a probationary FIFO and promotes
	// only on a second miss that hits the ghost queue (Johnson & Shasha).
	TwoQ
	// SLRU segments the cache into a probationary and a protected LRU
	// list; only a second access promotes into the protected segment.
	SLRU
	// LIRS ranks blocks by inter-reference recency rather than recency
	// alone, keeping low-IRR blocks resident (Jiang & Zhang).
	LIRS
	// TinyLFU fronts an SLRU main cache with a tiny admission window and
	// a count-min frequency sketch: a window victim displaces the main
	// victim only if its estimated frequency is higher (Einziger et al.).
	TinyLFU

	// numReplacements is the exhaustive-iteration sentinel; every policy
	// above it must be handled by String, ParseReplacement, and
	// newReplacer (the round-trip test walks 0..numReplacements-1).
	numReplacements
)

// String names the policy; ParseReplacement accepts every name it emits.
func (r Replacement) String() string {
	switch r {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case Clock:
		return "clock"
	case Random:
		return "random"
	case ARC:
		return "arc"
	case TwoQ:
		return "2q"
	case SLRU:
		return "slru"
	case LIRS:
		return "lirs"
	case TinyLFU:
		return "tinylfu"
	}
	return "replacement(?)"
}

// ParseReplacement maps a policy name to its Replacement value. It is the
// inverse of String and additionally accepts a few common aliases
// ("twoq", "segmented-lru", "tiny-lfu"), case-insensitively.
func ParseReplacement(name string) (Replacement, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "lru":
		return LRU, nil
	case "fifo":
		return FIFO, nil
	case "clock":
		return Clock, nil
	case "random":
		return Random, nil
	case "arc":
		return ARC, nil
	case "2q", "twoq":
		return TwoQ, nil
	case "slru", "segmented-lru":
		return SLRU, nil
	case "lirs":
		return LIRS, nil
	case "tinylfu", "tiny-lfu":
		return TinyLFU, nil
	}
	return 0, fmt.Errorf("cachesim: unknown replacement policy %q (want one of %s)", name, replacementNames())
}

// AllReplacements returns every replacement policy in canonical order
// (the classic four first, then the modern zoo).
func AllReplacements() []Replacement {
	all := make([]Replacement, numReplacements)
	for i := range all {
		all[i] = Replacement(i)
	}
	return all
}

func replacementNames() string {
	names := make([]string, 0, numReplacements)
	for _, r := range AllReplacements() {
		names = append(names, r.String())
	}
	return strings.Join(names, ", ")
}

// replacer is the internal interface a replacement policy implements. The
// cache calls insert on fill, access on every hit, remove on both purges
// and evictions (a policy cannot tell the two apart), and victim to choose
// an eviction candidate (which the cache then removes). victim may
// rearrange internal state (TinyLFU moves an admitted window block into
// the main cache) but must never change len or residency, and must return
// a currently resident block whenever len > 0.
type replacer interface {
	insert(b *block)
	access(b *block)
	remove(b *block)
	victim() *block
	len() int
}

// newReplacer builds the policy. capacity is the cache's block capacity:
// the classic policies ignore it, but the zoo policies size their internal
// segments and ghost lists from it.
func newReplacer(r Replacement, capacity int, seed int64) replacer {
	switch r {
	case LRU:
		return &listPolicy{moveOnAccess: true}
	case FIFO:
		return &listPolicy{}
	case Clock:
		return &clockPolicy{}
	case Random:
		return &randomPolicy{src: dist.NewSource(seed)}
	case ARC:
		return newARCPolicy(capacity)
	case TwoQ:
		return newTwoQPolicy(capacity)
	case SLRU:
		return newSLRUPolicy(capacity)
	case LIRS:
		return newLIRSPolicy(capacity)
	case TinyLFU:
		return newTinyLFUPolicy(capacity)
	default:
		panic("cachesim: unknown replacement policy")
	}
}

// ghostList is a bounded recency list of block IDs that are no longer
// resident — the "history" state the zoo policies consult on re-insertion
// (ARC's B1/B2, 2Q's A1out). Entries are kept in insertion order with a
// map for O(1) membership and removal.
type ghostEntry struct {
	id         int32
	prev, next *ghostEntry // prev = toward most recent
}

type ghostList struct {
	byID       map[int32]*ghostEntry
	head, tail *ghostEntry // head = most recent, tail = oldest
}

func (g *ghostList) len() int { return len(g.byID) }

func (g *ghostList) has(id int32) bool {
	_, ok := g.byID[id]
	return ok
}

func (g *ghostList) pushFront(id int32) {
	if g.byID == nil {
		g.byID = make(map[int32]*ghostEntry)
	}
	e := &ghostEntry{id: id}
	e.next = g.head
	if g.head != nil {
		g.head.prev = e
	}
	g.head = e
	if g.tail == nil {
		g.tail = e
	}
	g.byID[id] = e
}

// remove deletes id from the list, reporting whether it was present.
func (g *ghostList) remove(id int32) bool {
	e, ok := g.byID[id]
	if !ok {
		return false
	}
	g.unlink(e)
	return true
}

func (g *ghostList) unlink(e *ghostEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		g.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		g.tail = e.prev
	}
	delete(g.byID, e.id)
}

// dropOldest evicts the least recently inserted ghost.
func (g *ghostList) dropOldest() {
	if g.tail != nil {
		g.unlink(g.tail)
	}
}

// blockList is an intrusive doubly-linked list of cache blocks with a
// sentinel-free head/tail representation. Intrusive links avoid a separate
// allocation per cached block on the simulator's hottest path.
type blockList struct {
	head, tail *block
	n          int
}

func (l *blockList) pushFront(b *block) {
	b.prev = nil
	b.next = l.head
	if l.head != nil {
		l.head.prev = b
	}
	l.head = b
	if l.tail == nil {
		l.tail = b
	}
	l.n++
}

func (l *blockList) remove(b *block) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		l.head = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		l.tail = b.prev
	}
	b.prev, b.next = nil, nil
	l.n--
}

func (l *blockList) moveToFront(b *block) {
	if l.head == b {
		return
	}
	l.remove(b)
	l.pushFront(b)
}

// listPolicy implements LRU (moveOnAccess) and FIFO (insertion order).
// The victim is always the list tail.
type listPolicy struct {
	list         blockList
	moveOnAccess bool
}

func (p *listPolicy) insert(b *block) { p.list.pushFront(b) }
func (p *listPolicy) access(b *block) {
	if p.moveOnAccess {
		p.list.moveToFront(b)
	}
}
func (p *listPolicy) remove(b *block) { p.list.remove(b) }
func (p *listPolicy) victim() *block  { return p.list.tail }
func (p *listPolicy) len() int        { return p.list.n }

// clockPolicy approximates LRU with a reference bit per block and a
// sweeping hand. Blocks live on the same intrusive list; the hand walks
// from the tail toward the head, giving referenced blocks a second chance.
type clockPolicy struct {
	list blockList
	hand *block
}

func (p *clockPolicy) insert(b *block) { p.list.pushFront(b) }
func (p *clockPolicy) access(b *block) { b.referenced = true }
func (p *clockPolicy) remove(b *block) {
	if p.hand == b {
		p.hand = b.prev
		if p.hand == nil {
			p.hand = p.list.tail
		}
		if p.hand == b {
			p.hand = nil
		}
	}
	p.list.remove(b)
}
func (p *clockPolicy) victim() *block {
	if p.list.n == 0 {
		return nil
	}
	if p.hand == nil {
		p.hand = p.list.tail
	}
	// Two sweeps suffice: the first clears every referenced bit on the
	// way, so the second finds an unreferenced block.
	for i := 0; i < 2*p.list.n; i++ {
		b := p.hand
		if !b.referenced {
			return b
		}
		b.referenced = false
		p.hand = b.prev
		if p.hand == nil {
			p.hand = p.list.tail
		}
	}
	return p.list.tail
}
func (p *clockPolicy) len() int { return p.list.n }

// randomPolicy evicts a uniformly random block. Blocks are kept in a
// slice with back-swap deletion; each block remembers its slot.
type randomPolicy struct {
	blocks []*block
	src    *dist.Source
}

func (p *randomPolicy) insert(b *block) {
	b.slot = len(p.blocks)
	p.blocks = append(p.blocks, b)
}
func (p *randomPolicy) access(*block) {}
func (p *randomPolicy) remove(b *block) {
	last := len(p.blocks) - 1
	p.blocks[b.slot] = p.blocks[last]
	p.blocks[b.slot].slot = b.slot
	p.blocks[last] = nil
	p.blocks = p.blocks[:last]
}
func (p *randomPolicy) victim() *block {
	if len(p.blocks) == 0 {
		return nil
	}
	return p.blocks[p.src.Intn(len(p.blocks))]
}
func (p *randomPolicy) len() int { return len(p.blocks) }
