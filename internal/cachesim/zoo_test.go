package cachesim_test

// The policy-zoo test battery: every replacement policy through the
// shared replacertest conformance suite, differential oracles pinning the
// production policies against the naive reference implementations, the
// String/ParseReplacement round trip, and end-to-end zoo simulations on a
// generated trace. This file is an external test package on purpose:
// replacertest cannot be imported from inside package cachesim (import
// cycle through the package under test).

import (
	"testing"

	"bsdtrace/internal/cachesim"
	"bsdtrace/internal/cachesim/replacertest"
	"bsdtrace/internal/trace"
	"bsdtrace/internal/workload"
	"bsdtrace/internal/xfer"
)

// TestReplacerConformance runs every shipped policy through the shared
// conformance suite.
func TestReplacerConformance(t *testing.T) {
	for _, r := range cachesim.AllReplacements() {
		r := r
		t.Run(r.String(), func(t *testing.T) {
			replacertest.Run(t, func(capacity int, seed int64) replacertest.Policy {
				return cachesim.NewPolicy(r, capacity, seed)
			})
		})
	}
}

// TestReplacementRoundTrip pins the String/ParseReplacement symmetry: a
// policy added without wiring both sides (or newReplacer, via NewPolicy)
// fails here, not in some command's flag parsing.
func TestReplacementRoundTrip(t *testing.T) {
	all := cachesim.AllReplacements()
	if len(all) < 9 {
		t.Fatalf("AllReplacements returned %d policies, want at least 9", len(all))
	}
	seen := map[string]bool{}
	for _, r := range all {
		name := r.String()
		if name == "" || name == "replacement(?)" {
			t.Fatalf("policy %d has no String name", r)
		}
		if seen[name] {
			t.Fatalf("duplicate policy name %q", name)
		}
		seen[name] = true
		got, err := cachesim.ParseReplacement(name)
		if err != nil {
			t.Fatalf("ParseReplacement(%q): %v", name, err)
		}
		if got != r {
			t.Fatalf("ParseReplacement(%q) = %v, want %v", name, got, r)
		}
		// newReplacer must know the policy too; NewPolicy panics if not.
		p := cachesim.NewPolicy(r, 4, 1)
		p.Insert(1)
		if p.Len() != 1 {
			t.Fatalf("%v: Len after insert = %d", r, p.Len())
		}
	}
	// The sentinel just past the last policy is unknown on both sides.
	bogus := cachesim.Replacement(len(all))
	if s := bogus.String(); s != "replacement(?)" {
		t.Fatalf("out-of-range String = %q", s)
	}
	if _, err := cachesim.ParseReplacement("no-such-policy"); err == nil {
		t.Fatal("ParseReplacement accepted garbage")
	}
	for _, alias := range []string{"twoq", "segmented-lru", "tiny-lfu", " LRU ", "ARC"} {
		if _, err := cachesim.ParseReplacement(alias); err != nil {
			t.Errorf("ParseReplacement(%q): %v", alias, err)
		}
	}
}

// TestConfigRejectsUnknownReplacement: a Config carrying an out-of-range
// policy must fail validation, not panic mid-replay.
func TestConfigRejectsUnknownReplacement(t *testing.T) {
	cfg := cachesim.Config{
		BlockSize:   4096,
		CacheSize:   1 << 20,
		Write:       cachesim.DelayedWrite,
		Replacement: cachesim.Replacement(len(cachesim.AllReplacements())),
	}
	if _, err := cachesim.Simulate(nil, cfg); err == nil {
		t.Fatal("Simulate accepted an unknown replacement policy")
	}
}

// TestZooDifferential replays the suite workloads through each production
// policy and its naive reference side by side, requiring identical hit
// counts and identical eviction sequences — the differential oracle that
// lets the intrusive-list implementations be trusted.
func TestZooDifferential(t *testing.T) {
	policies := map[string]cachesim.Replacement{
		"lru":  cachesim.LRU,
		"fifo": cachesim.FIFO,
		"arc":  cachesim.ARC,
		"2q":   cachesim.TwoQ,
		"slru": cachesim.SLRU,
		"lirs": cachesim.LIRS,
	}
	for _, name := range []string{"lru", "fifo", "arc", "2q", "slru", "lirs"} {
		r := policies[name]
		t.Run(name, func(t *testing.T) {
			for _, wl := range replacertest.Workloads() {
				for _, capacity := range []int{1, 2, 3, 7, 25, 64, 300} {
					prod := cachesim.NewPolicy(r, capacity, 1)
					ref := replacertest.NewReference(name, capacity)
					if ref == nil {
						t.Fatalf("no reference implementation for %q", name)
					}
					ph, pe := replacertest.Drive(t, prod, capacity, wl.Refs)
					rh, re := replacertest.Drive(t, ref, capacity, wl.Refs)
					if ph != rh {
						t.Fatalf("%s cap %d: production %d hits, reference %d", wl.Name, capacity, ph, rh)
					}
					if len(pe) != len(re) {
						t.Fatalf("%s cap %d: production %d evictions, reference %d", wl.Name, capacity, len(pe), len(re))
					}
					for i := range pe {
						if pe[i] != re[i] {
							t.Fatalf("%s cap %d: eviction %d is %d in production, %d in reference",
								wl.Name, capacity, i, pe[i], re[i])
						}
					}
				}
			}
		})
	}
}

// TestTinyLFUScanResistance pins the admission filter's defining
// behavior: a frequently referenced working set survives a long one-shot
// scan that would wipe out an LRU cache of the same size.
func TestTinyLFUScanResistance(t *testing.T) {
	const capacity = 100
	workloadRefs := func() []int32 {
		var refs []int32
		for round := 0; round < 10; round++ {
			for id := int32(0); id < 50; id++ {
				refs = append(refs, id)
			}
		}
		for i := int32(0); i < 2000; i++ { // the scan: each block once
			refs = append(refs, 1000+i)
		}
		return refs
	}
	survivors := func(p replacertest.Policy) int {
		resident := 0
		for id := int32(0); id < 50; id++ {
			if p.(*cachesim.Policy).Resident(id) {
				resident++
			}
		}
		return resident
	}

	tiny := cachesim.NewPolicy(cachesim.TinyLFU, capacity, 1)
	replacertest.Drive(t, tiny, capacity, workloadRefs())
	if n := survivors(tiny); n < 45 {
		t.Errorf("TinyLFU kept %d/50 hot blocks through the scan, want >= 45", n)
	}

	lru := cachesim.NewPolicy(cachesim.LRU, capacity, 1)
	replacertest.Drive(t, lru, capacity, workloadRefs())
	if n := survivors(lru); n != 0 {
		t.Errorf("LRU kept %d/50 hot blocks through the scan, want 0 (sanity check)", n)
	}
}

// zooTape builds a short generated trace for end-to-end zoo simulations.
func zooTape(t *testing.T) *xfer.Tape {
	t.Helper()
	res, err := workload.Generate(workload.Config{Profile: "A5", Seed: 6, Duration: 15 * trace.Minute})
	if err != nil {
		t.Fatal(err)
	}
	tape, err := xfer.NewTape(res.Events)
	if err != nil {
		t.Fatal(err)
	}
	return tape
}

// TestZooSimulateTape runs every policy end to end through the full
// simulator (write policies, purges, flush clocks) and checks the
// structural invariants hold for the zoo exactly as for the classics.
func TestZooSimulateTape(t *testing.T) {
	tape := zooTape(t)
	all := cachesim.AllReplacements()
	cfgs := make([]cachesim.Config, 0, len(all))
	for _, r := range all {
		cfgs = append(cfgs, cachesim.Config{
			BlockSize:   4096,
			CacheSize:   2 << 20,
			Write:       cachesim.DelayedWrite,
			Replacement: r,
			Seed:        1,
		})
	}
	rs, err := cachesim.MultiSimulate(tape, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	rs2, err := cachesim.MultiSimulate(tape, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	base := rs[0]
	for i, r := range rs {
		name := all[i]
		if r.LogicalAccesses != base.LogicalAccesses {
			t.Errorf("%v: %d logical accesses, want %d (policy cannot change the reference string)",
				name, r.LogicalAccesses, base.LogicalAccesses)
		}
		if r.DiskReads > r.ReadAccesses+r.WriteAccesses {
			t.Errorf("%v: %d disk reads exceed %d accesses", name, r.DiskReads, r.LogicalAccesses)
		}
		if mr := r.MissRatio(); mr <= 0 || mr >= 1 {
			t.Errorf("%v: miss ratio %.3f out of range", name, mr)
		}
		if r.DiskReads != rs2[i].DiskReads || r.DiskWrites != rs2[i].DiskWrites {
			t.Errorf("%v: rerun differs: reads %d vs %d, writes %d vs %d",
				name, r.DiskReads, rs2[i].DiskReads, r.DiskWrites, rs2[i].DiskWrites)
		}
	}
}
