package cachesim

// Policy is the exported, block-ID-level face of a replacement policy,
// the seam the differential test harness (replacertest), the fuzz
// targets, and the multi-replay miss-curve fallback drive. It wraps the
// internal replacer behind a residency directory, so callers speak in
// plain block IDs and never see cache frames.
//
// Invalid operations are ignored rather than rejected: inserting a
// resident ID, or accessing/removing a non-resident one, is a no-op.
// That makes any operation sequence safe (the fuzz targets rely on it)
// while keeping valid sequences bit-deterministic.
//
// Policy does not evict by itself — like the simulator's cache, the
// caller runs the victim-then-remove discipline:
//
//	for p.Len() >= capacity {
//		v, ok := p.Victim()
//		if !ok {
//			break
//		}
//		p.Remove(v)
//	}
//	p.Insert(id)
type Policy struct {
	r        replacer
	capacity int
	frames   map[int32]*block
}

// NewPolicy builds a policy instance for capacity blocks. The seed feeds
// the Random policy and is ignored by the deterministic ones.
func NewPolicy(r Replacement, capacity int, seed int64) *Policy {
	if capacity < 1 {
		capacity = 1
	}
	return &Policy{
		r:        newReplacer(r, capacity, seed),
		capacity: capacity,
		frames:   make(map[int32]*block),
	}
}

// Capacity returns the block capacity the policy was built for.
func (p *Policy) Capacity() int { return p.capacity }

// Len returns the number of resident blocks.
func (p *Policy) Len() int { return p.r.len() }

// Resident reports whether id is currently resident.
func (p *Policy) Resident(id int32) bool {
	_, ok := p.frames[id]
	return ok
}

// Insert makes id resident. Inserting a resident id is a no-op.
func (p *Policy) Insert(id int32) {
	if _, ok := p.frames[id]; ok {
		return
	}
	b := &block{id: id}
	p.frames[id] = b
	p.r.insert(b)
}

// Access records a hit on a resident id; non-resident ids are ignored.
func (p *Policy) Access(id int32) {
	if b, ok := p.frames[id]; ok {
		p.r.access(b)
	}
}

// Remove evicts or purges a resident id; non-resident ids are ignored.
func (p *Policy) Remove(id int32) {
	if b, ok := p.frames[id]; ok {
		p.r.remove(b)
		delete(p.frames, id)
	}
}

// Victim returns the policy's current eviction candidate, or ok=false on
// an empty cache. The caller decides whether to Remove it.
func (p *Policy) Victim() (int32, bool) {
	b := p.r.victim()
	if b == nil {
		return 0, false
	}
	return b.id, true
}
