package cachesim

// N-tier cache hierarchy simulation, the generalization of the
// two-level client/server network. The paper's diskless-workstation
// architecture is RAM over disk; modern replays of the same question
// add a flash tier in the middle (RAM over flash over disk), where two
// new costs appear: per-tier access latency and flash write endurance.
// This simulation replays the trace through an arbitrary stack of
// tiers — tier 0 is each machine's local cache, every lower tier is
// shared — and accounts blocks, busy time, and per-block write wear at
// every level.
//
// Traffic flows exactly as in the two-level case: a tier's read misses
// become reads against the tier below, its write policy's write-backs
// become writes below, and data-death purges are forwarded all the way
// down so no tier caches dead blocks. The bottom tier is the backing
// store (unbounded, usually "the disk"): everything arriving there is
// a real device I/O.

import (
	"fmt"
	"sort"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/xfer"
)

// Tier describes one level of the hierarchy.
type Tier struct {
	// Name labels the tier in results ("client", "flash", "disk").
	Name string
	// Size is the tier's capacity in bytes. The final tier must be the
	// backing store (Size <= 0, unbounded); every other tier must have
	// a positive size. Tier 0 is per machine; the rest are shared.
	Size int64
	// Replacement and Seed configure the tier's eviction policy (any
	// member of the zoo).
	Replacement Replacement
	Seed        int64
	// Write is the tier's write policy toward the tier below;
	// FlushInterval applies to FlushBack. The backing store ignores
	// both.
	Write         WritePolicy
	FlushInterval trace.Time
	// ReadLatency and WriteLatency are the device's per-block service
	// times, used for busy-time accounting (zero means free).
	ReadLatency  trace.Time
	WriteLatency trace.Time
	// EnduranceWrites, if positive, is the per-block write budget of
	// the tier's media (flash wear-out); WearFraction reports against
	// it.
	EnduranceWrites int64
}

// HierarchyConfig parameterizes an N-tier simulation.
type HierarchyConfig struct {
	// BlockSize is shared by every tier.
	BlockSize int64
	// Tiers, top to bottom. At least two: one cache over one backing
	// store.
	Tiers []Tier
}

// TierResult reports one tier's traffic, busy time, and wear.
type TierResult struct {
	Name string
	Size int64
	// Reads and Writes count block operations arriving at this tier
	// from above (for tier 0: the logical accesses themselves).
	Reads  int64
	Writes int64
	// ReadMisses counts reads this tier could not serve and forwarded
	// down; Fills the blocks written into this tier by the resulting
	// fetches (equal to ReadMisses for caches, zero for the backing
	// store); WriteBacks the writes this tier's policy pushed down.
	ReadMisses int64
	Fills      int64
	WriteBacks int64
	// BusyTime is the tier's total device service time:
	// ReadLatency x Reads + WriteLatency x (Writes + Fills).
	BusyTime trace.Time
	// Wear statistics over the tier's media writes (incoming writes
	// plus fills), tracked for shared tiers only — tier 0 is
	// per-machine RAM, where endurance is not the question.
	MaxBlockWrites  int64
	MeanBlockWrites float64
	// WearFraction is MaxBlockWrites over the tier's EnduranceWrites
	// budget (zero when no budget is set).
	WearFraction float64
}

// HitRatio returns the fraction of arriving reads served by this tier.
func (t *TierResult) HitRatio() float64 {
	if t.Reads == 0 {
		return 0
	}
	return 1 - float64(t.ReadMisses)/float64(t.Reads)
}

// HierarchyResult reports an N-tier simulation, top to bottom.
type HierarchyResult struct {
	Config HierarchyConfig
	// ClientAccesses counts logical block accesses at tier 0.
	ClientAccesses int64
	Tiers          []TierResult
}

// NetworkBlocks returns the traffic crossing from the per-machine tier
// to the first shared tier: tier 0's read misses plus write-backs.
func (r *HierarchyResult) NetworkBlocks() int64 {
	return r.Tiers[0].ReadMisses + r.Tiers[0].WriteBacks
}

// DiskReads and DiskWrites report the backing store's device I/O.
func (r *HierarchyResult) DiskReads() int64  { return r.Tiers[len(r.Tiers)-1].Reads }
func (r *HierarchyResult) DiskWrites() int64 { return r.Tiers[len(r.Tiers)-1].Writes }

// EndToEndMissRatio returns backing-store I/Os per logical access.
func (r *HierarchyResult) EndToEndMissRatio() float64 {
	if r.ClientAccesses == 0 {
		return 0
	}
	return float64(r.DiskReads()+r.DiskWrites()) / float64(r.ClientAccesses)
}

// tierConfigs validates the hierarchy and builds each cache tier's
// simulator Config (the final, backing tier has none).
func (cfg *HierarchyConfig) tierConfigs() ([]Config, error) {
	if len(cfg.Tiers) < 2 {
		return nil, fmt.Errorf("cachesim: hierarchy needs at least two tiers (a cache over a backing store)")
	}
	out := make([]Config, len(cfg.Tiers)-1)
	for i, t := range cfg.Tiers {
		if i == len(cfg.Tiers)-1 {
			if t.Size > 0 {
				return nil, fmt.Errorf("cachesim: final tier %q must be the backing store (Size <= 0)", t.Name)
			}
			break
		}
		if t.Size <= 0 {
			return nil, fmt.Errorf("cachesim: tier %q: only the final tier may be unbounded", t.Name)
		}
		c := Config{
			BlockSize: cfg.BlockSize, CacheSize: t.Size,
			Write: t.Write, FlushInterval: t.FlushInterval,
			Replacement: t.Replacement, Seed: t.Seed,
		}
		if err := c.fill(); err != nil {
			return nil, fmt.Errorf("cachesim: tier %q: %v", t.Name, err)
		}
		out[i] = c
	}
	return out, nil
}

// mergeResolved concatenates per-machine tape resolutions into the
// shared tiers' global ID space: machine m's dense block ID i becomes
// blockBase[m]+i, and likewise for file slots.
func mergeResolved(machineRes []*resolved, blockBase []int32, blockSize int64, nBlocks, nFiles int32) *resolved {
	merged := &resolved{
		blockSize:  blockSize,
		blockIdx:   make([]int64, 0, nBlocks),
		fileBlocks: make([][]int32, 0, nFiles),
	}
	for m, r := range machineRes {
		merged.blockIdx = append(merged.blockIdx, r.blockIdx...)
		for _, fb := range r.fileBlocks {
			global := make([]int32, len(fb))
			for i, id := range fb {
				global[i] = blockBase[m] + id
			}
			merged.fileBlocks = append(merged.fileBlocks, global)
		}
	}
	return merged
}

// replayTierOps drives a time-ordered operation stream into one shared
// cache tier. Read misses and write-backs surface through onDisk (they
// are this tier's traffic to the tier below); purges are applied and,
// when onPurge is non-nil, forwarded down as well. Writes arrive with
// their data, so a write miss needs no fetch.
func replayTierOps(ops []serverOp, r *resolved, cfg Config,
	onDisk func(id int32, write bool, t trace.Time),
	onPurge func(fs int32, size int64, t trace.Time)) *Result {
	c := newCache(&xfer.Tape{}, r, cfg)
	c.onDisk = onDisk
	for i := range ops {
		op := &ops[i]
		c.advance(op.time)
		switch op.kind {
		case opPurge:
			c.purge(op.fs, op.size)
			if onPurge != nil {
				onPurge(op.fs, op.size, op.time)
			}
		case opRead:
			c.res.LogicalAccesses++
			c.res.ReadAccesses++
			if b := c.blocks[op.id]; b != nil {
				c.pol.access(b)
				continue
			}
			c.diskRead(op.id)
			c.insert(op.id)
		case opWrite:
			c.res.LogicalAccesses++
			c.res.WriteAccesses++
			if b := c.blocks[op.id]; b != nil {
				c.pol.access(b)
				c.markDirty(b)
				continue
			}
			b := c.insert(op.id)
			c.markDirty(b)
		}
	}
	return c.finish()
}

// HierarchySimulateTapes replays one tape per machine through the tier
// stack. Tier 0 runs per machine on parallel workers; each shared
// tier then replays the tier above's traffic interleaved by time (ties
// broken in machine order, then emission order), so results are
// deterministic regardless of scheduling.
func HierarchySimulateTapes(tapes []*xfer.Tape, cfg HierarchyConfig) (*HierarchyResult, error) {
	if len(tapes) == 0 {
		return nil, fmt.Errorf("cachesim: hierarchy simulation needs at least one machine")
	}
	tierCfgs, err := cfg.tierConfigs()
	if err != nil {
		return nil, err
	}

	machineRes := make([]*resolved, len(tapes))
	runParallel(len(tapes), func(m int) error {
		machineRes[m] = resolvedFor(tapes[m], cfg.BlockSize)
		return nil
	})
	blockBase := make([]int32, len(tapes))
	fileBase := make([]int32, len(tapes))
	var nBlocks, nFiles int32
	for m, r := range machineRes {
		blockBase[m] = nBlocks
		fileBase[m] = nFiles
		nBlocks += int32(r.nBlocks())
		nFiles += int32(len(r.fileBlocks))
	}

	// Tier 0: every machine's private cache.
	passes := make([]*clientPass, len(tapes))
	runParallel(len(tapes), func(m int) error {
		passes[m] = runClient(tapes[m], machineRes[m], tierCfgs[0], blockBase[m], fileBase[m])
		return nil
	})

	res := &HierarchyResult{Config: cfg, Tiers: make([]TierResult, len(cfg.Tiers))}
	t0 := &res.Tiers[0]
	t0.Name, t0.Size = cfg.Tiers[0].Name, cfg.Tiers[0].Size
	var ops []serverOp
	for _, p := range passes {
		res.ClientAccesses += p.res.LogicalAccesses
		t0.Reads += p.res.ReadAccesses
		t0.Writes += p.res.WriteAccesses
		t0.ReadMisses += p.res.DiskReads
		t0.WriteBacks += p.res.DiskWrites
		ops = append(ops, p.ops...)
	}
	t0.Fills = t0.ReadMisses
	t0.BusyTime = cfg.Tiers[0].ReadLatency*trace.Time(t0.Reads) +
		cfg.Tiers[0].WriteLatency*trace.Time(t0.Writes+t0.Fills)

	merged := mergeResolved(machineRes, blockBase, cfg.BlockSize, nBlocks, nFiles)
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].time < ops[j].time })

	// Shared cache tiers, top to bottom.
	for i := 1; i < len(cfg.Tiers)-1; i++ {
		tier := cfg.Tiers[i]
		tr := &res.Tiers[i]
		tr.Name, tr.Size = tier.Name, tier.Size
		wear := make([]int64, nBlocks)
		var next []serverOp
		out := replayTierOps(ops, merged, tierCfgs[i],
			func(id int32, write bool, t trace.Time) {
				kind := opRead
				if !write {
					// A fetch from below fills a block into this tier:
					// one media write here, one read below.
					wear[id]++
				} else {
					kind = opWrite
				}
				next = append(next, serverOp{time: t, kind: kind, id: id})
			},
			func(fs int32, size int64, t trace.Time) {
				next = append(next, serverOp{time: t, kind: opPurge, fs: fs, size: size})
			})
		for j := range ops {
			if ops[j].kind == opWrite {
				wear[ops[j].id]++
			}
		}
		tr.Reads, tr.Writes = out.ReadAccesses, out.WriteAccesses
		tr.ReadMisses, tr.WriteBacks = out.DiskReads, out.DiskWrites
		tr.Fills = out.DiskReads
		tr.BusyTime = tier.ReadLatency*trace.Time(tr.Reads) +
			tier.WriteLatency*trace.Time(tr.Writes+tr.Fills)
		tallyWear(tr, wear, tier.EnduranceWrites)
		sort.SliceStable(next, func(a, b int) bool { return next[a].time < next[b].time })
		ops = next
	}

	// Backing store: everything arriving is a device I/O.
	last := len(cfg.Tiers) - 1
	tier := cfg.Tiers[last]
	tr := &res.Tiers[last]
	tr.Name, tr.Size = tier.Name, tier.Size
	wear := make([]int64, nBlocks)
	for i := range ops {
		switch ops[i].kind {
		case opRead:
			tr.Reads++
		case opWrite:
			tr.Writes++
			wear[ops[i].id]++
		}
	}
	tr.BusyTime = tier.ReadLatency*trace.Time(tr.Reads) + tier.WriteLatency*trace.Time(tr.Writes)
	tallyWear(tr, wear, tier.EnduranceWrites)
	return res, nil
}

// tallyWear summarizes a tier's per-block media-write counts.
func tallyWear(tr *TierResult, wear []int64, endurance int64) {
	var written, total int64
	for _, w := range wear {
		if w == 0 {
			continue
		}
		written++
		total += w
		if w > tr.MaxBlockWrites {
			tr.MaxBlockWrites = w
		}
	}
	if written > 0 {
		tr.MeanBlockWrites = float64(total) / float64(written)
	}
	if endurance > 0 {
		tr.WearFraction = float64(tr.MaxBlockWrites) / float64(endurance)
	}
}

// HierarchySimulate builds one tape per machine trace and runs
// HierarchySimulateTapes.
func HierarchySimulate(machines [][]trace.Event, cfg HierarchyConfig) (*HierarchyResult, error) {
	if len(machines) == 0 {
		return nil, fmt.Errorf("cachesim: hierarchy simulation needs at least one machine")
	}
	tapes := make([]*xfer.Tape, len(machines))
	errs := make([]error, len(machines))
	runParallel(len(machines), func(m int) error {
		tapes[m], errs[m] = xfer.NewTape(machines[m])
		return nil
	})
	for m, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cachesim: machine %d trace malformed: %v", m, err)
		}
	}
	return HierarchySimulateTapes(tapes, cfg)
}
