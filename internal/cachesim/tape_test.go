package cachesim

import (
	"fmt"
	"reflect"
	"testing"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/xfer"
)

// paperConfigs returns every cache configuration the paper's Section-6
// tables evaluate: Table VI (cache size × write policy at 4-kbyte
// blocks), Table VII (block size × cache size under delayed-write), and
// Figure 7 (cache size × paging treatment).
func paperConfigs() []Config {
	var cfgs []Config
	for _, cs := range PaperCacheSizes() {
		for _, p := range PaperPolicies() {
			cfgs = append(cfgs, Config{BlockSize: 4096, CacheSize: cs, Write: p.Write, FlushInterval: p.Interval})
		}
	}
	for _, bs := range PaperBlockSizes() {
		for _, cs := range PaperBlockCacheSizes() {
			cfgs = append(cfgs, Config{BlockSize: bs, CacheSize: cs, Write: DelayedWrite})
		}
	}
	for _, cs := range PaperCacheSizes() {
		for j := 0; j < 2; j++ {
			cfgs = append(cfgs, Config{BlockSize: 4096, CacheSize: cs, Write: DelayedWrite, SimulatePaging: j == 1})
		}
	}
	return cfgs
}

// TestMultiSimulateMatchesSimulate is the tape engine's equivalence
// oracle: for every paper configuration, replaying a shared tape through
// MultiSimulate must produce field-for-field the same Result as an
// independent Simulate call on the raw events (which builds and resolves
// its own private tape).
func TestMultiSimulateMatchesSimulate(t *testing.T) {
	events := randomTrace(7, 600)
	tape, err := xfer.NewTape(events)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := paperConfigs()
	if len(cfgs) != 60 {
		t.Fatalf("expected the paper's 60 configurations, got %d", len(cfgs))
	}
	multi, err := MultiSimulate(tape, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		want, err := Simulate(events, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(multi[i], want) {
			t.Errorf("config %d (%+v): MultiSimulate %+v != Simulate %+v", i, cfg, multi[i], want)
		}
	}
}

// TestMultiSimulateDeterministic re-runs the same sweep on fresh tapes
// and demands identical results: worker scheduling must not leak into
// any field.
func TestMultiSimulateDeterministic(t *testing.T) {
	events := randomTrace(11, 400)
	cfgs := paperConfigs()
	var prev []*Result
	for round := 0; round < 3; round++ {
		tape, err := xfer.NewTape(events)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := MultiSimulate(tape, cfgs)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && !reflect.DeepEqual(rs, prev) {
			t.Fatalf("round %d differs from previous", round)
		}
		prev = rs
	}
}

func TestMultiSimulateValidatesAllConfigs(t *testing.T) {
	events := randomTrace(3, 50)
	tape, err := xfer.NewTape(events)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []Config{
		{BlockSize: 4096, CacheSize: 1 << 20, Write: DelayedWrite},
		{BlockSize: 0, CacheSize: 1 << 20, Write: DelayedWrite},
	}
	if _, err := MultiSimulate(tape, cfgs); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// simpleLRU is an independent LRU cache used as an oracle: a plain
// map + doubly-linked-list implementation with none of the simulator's
// machinery.
type simpleLRU struct {
	cap    int
	blocks map[int32]*lruNode
	head   *lruNode // most recent
	tail   *lruNode
}

type lruNode struct {
	id         int32
	prev, next *lruNode
}

func (c *simpleLRU) touch(n *lruNode) {
	if c.head == n {
		return
	}
	// unlink
	if n.prev != nil {
		n.prev.next = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	}
	if c.tail == n {
		c.tail = n.prev
	}
	// push front
	n.prev, n.next = nil, c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

// access references a block, returning true on hit.
func (c *simpleLRU) access(id int32) bool {
	if n, ok := c.blocks[id]; ok {
		c.touch(n)
		return true
	}
	if len(c.blocks) >= c.cap {
		victim := c.tail
		c.tail = victim.prev
		if c.tail != nil {
			c.tail.next = nil
		} else {
			c.head = nil
		}
		delete(c.blocks, victim.id)
	}
	n := &lruNode{id: id}
	c.blocks[id] = n
	c.touch(n)
	return false
}

// TestStackOracleAgainstLRUCache checks Mattson's one-pass analysis
// against brute force: for several cache sizes, an independent LRU cache
// replaying the tape's block reference string must miss exactly
// StackResult.Misses times.
func TestStackOracleAgainstLRUCache(t *testing.T) {
	events := randomTrace(19, 500)
	tape, err := xfer.NewTape(events)
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range []int64{1024, 4096, 8192} {
		sr, err := StackDistancesTape(tape, bs)
		if err != nil {
			t.Fatal(err)
		}
		// Rebuild the same reference string the analysis consumed.
		r := resolvedFor(tape, bs)
		var refs []int32
		for i := range tape.Ops {
			op := &tape.Ops[i]
			if op.Kind == xfer.OpTransfer {
				refs = append(refs, r.accessIDs[r.accessOff[op.Xfer]:r.accessOff[op.Xfer+1]]...)
			}
		}
		for _, capBlocks := range []int{1, 2, 7, 64, 1024} {
			lru := &simpleLRU{cap: capBlocks, blocks: make(map[int32]*lruNode)}
			var misses int64
			for _, id := range refs {
				if !lru.access(id) {
					misses++
				}
			}
			if got := sr.Misses(int64(capBlocks) * bs); got != misses {
				t.Errorf("bs %d cap %d: stack misses %d, LRU cache missed %d", bs, capBlocks, got, misses)
			}
		}
	}
}

// TestCountTapeAccessesMatchesSimulate: the arithmetic access count must
// agree with what a simulation actually bills.
func TestCountTapeAccessesMatchesSimulate(t *testing.T) {
	events := randomTrace(23, 300)
	tape, err := xfer.NewTape(events)
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range PaperBlockSizes() {
		for _, paging := range []bool{false, true} {
			want, err := CountBlockAccesses(events, bs, paging)
			if err != nil {
				t.Fatal(err)
			}
			if got := CountTapeAccesses(tape, bs, paging); got != want {
				t.Errorf("bs %d paging %v: tape count %d != event count %d", bs, paging, got, want)
			}
			r, err := SimulateTape(tape, Config{BlockSize: bs, CacheSize: 1 << 20, Write: DelayedWrite, SimulatePaging: paging})
			if err != nil {
				t.Fatal(err)
			}
			if r.LogicalAccesses != want {
				t.Errorf("bs %d paging %v: simulated accesses %d != count %d", bs, paging, r.LogicalAccesses, want)
			}
		}
	}
}

// TestTwoLevelTapesMatchEvents: the tape-based two-level entry point
// must agree with the event-slice one.
func TestTwoLevelTapesMatchEvents(t *testing.T) {
	machines := [][]trace.Event{
		randomTrace(31, 200),
		randomTrace(37, 200),
		randomTrace(41, 200),
	}
	cfg := TwoLevelConfig{
		BlockSize: 4096, ClientCache: 256 << 10, ServerCache: 2 << 20,
		Write: DelayedWrite,
	}
	want, err := TwoLevelSimulate(machines, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tapes := make([]*xfer.Tape, len(machines))
	for m, ev := range machines {
		if tapes[m], err = xfer.NewTape(ev); err != nil {
			t.Fatal(err)
		}
	}
	got, err := TwoLevelSimulateTapes(tapes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TwoLevelSimulateTapes %+v != TwoLevelSimulate %+v", got, want)
	}
}

// TestSweepTapeVariantsMatch: each event-slice sweep is a thin wrapper
// over its tape variant; both must agree when handed the same trace.
func TestSweepTapeVariantsMatch(t *testing.T) {
	events := randomTrace(43, 300)
	tape, err := xfer.NewTape(events)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int64{390 << 10, 2 << 20}
	pols := PaperPolicies()[:2]

	a, err := PolicySweep(events, 4096, sizes, pols)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PolicySweepTape(tape, 4096, sizes, pols)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("PolicySweep != PolicySweepTape")
	}

	ba, err := BlockSizeSweep(events, []int64{4096, 8192}, sizes)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := BlockSizeSweepTape(tape, []int64{4096, 8192}, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ba, bb) {
		t.Error("BlockSizeSweep != BlockSizeSweepTape")
	}
}

// ExampleMultiSimulate demonstrates sweeping many configurations over
// one tape.
func ExampleMultiSimulate() {
	b := newTB()
	b.write(1, 16384)
	for i := 0; i < 4; i++ {
		b.read(1, 16384)
	}
	tape, _ := xfer.NewTape(b.events)
	rs, _ := MultiSimulate(tape, []Config{
		{BlockSize: 4096, CacheSize: 8192, Write: DelayedWrite},
		{BlockSize: 4096, CacheSize: 1 << 20, Write: DelayedWrite},
	})
	for _, r := range rs {
		fmt.Printf("cache %7d: %d disk I/Os\n", r.Config.CacheSize, r.DiskIOs())
	}
	// Output:
	// cache    8192: 20 disk I/Os
	// cache 1048576: 0 disk I/Os
}
