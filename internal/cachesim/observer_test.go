package cachesim

import (
	"reflect"
	"testing"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/xfer"
)

// recorder is a test Observer that logs every callback.
type recorder struct {
	events []obsEvent
}

type obsEvent struct {
	id     int32
	time   trace.Time
	clean  bool
	reason CleanReason
}

func (r *recorder) BlockDirtied(id int32, now trace.Time) {
	r.events = append(r.events, obsEvent{id: id, time: now})
}

func (r *recorder) BlockCleaned(id int32, now trace.Time, reason CleanReason) {
	r.events = append(r.events, obsEvent{id: id, time: now, clean: true, reason: reason})
}

func mustTape(t *testing.T, events []trace.Event) *xfer.Tape {
	t.Helper()
	tape, err := xfer.NewTape(events)
	if err != nil {
		t.Fatal(err)
	}
	return tape
}

// Regression test for the flush-clock drift: a flush-back scan that
// comes due during an idle gap must execute at its scheduled boundary,
// not at the time of the event that catches the clock up. Dirty a block,
// go idle for many intervals, then touch the trace again — the flush
// notification must carry the first boundary after the write.
func TestOverdueFlushRunsAtScheduledTime(t *testing.T) {
	const interval = 30 * trace.Second
	b := newTB()
	b.write(1, 4096) // dirtied at ~20ms
	dirtyTime := b.now
	b.now = 10 * trace.Minute // idle gap spanning 19 flush boundaries
	b.read(2, 4096)           // the catching-up event

	rec := &recorder{}
	tape := mustTape(t, b.events)
	_, err := SimulateTapeObserved(tape, Config{
		BlockSize: 4096, CacheSize: 1 << 20,
		Write: FlushBack, FlushInterval: interval,
	}, rec)
	if err != nil {
		t.Fatal(err)
	}

	wantFlush := (dirtyTime/interval + 1) * interval
	var sawClean bool
	for _, e := range rec.events {
		if !e.clean {
			continue
		}
		sawClean = true
		if e.reason != CleanFlushed {
			t.Errorf("block %d cleaned by %v, want flush scan", e.id, e.reason)
		}
		if e.time != wantFlush {
			t.Errorf("flush notification at %v, want scheduled boundary %v", e.time, wantFlush)
		}
		if e.time%interval != 0 {
			t.Errorf("flush time %v not on a flush boundary", e.time)
		}
	}
	if !sawClean {
		t.Fatal("no flush notification observed")
	}
}

// Observer callbacks must arrive in nondecreasing time order — the
// contract internal/fault's single-pass crash sweep depends on.
func TestObserverTimesNondecreasing(t *testing.T) {
	for _, seed := range []int64{7, 19, 23} {
		tape := mustTape(t, randomTrace(seed, 400))
		for _, cfg := range []Config{
			{BlockSize: 4096, CacheSize: 64 << 10, Write: FlushBack, FlushInterval: 30 * trace.Second},
			{BlockSize: 4096, CacheSize: 64 << 10, Write: DelayedWrite},
		} {
			rec := &recorder{}
			if _, err := SimulateTapeObserved(tape, cfg, rec); err != nil {
				t.Fatal(err)
			}
			var last trace.Time
			for i, e := range rec.events {
				if e.time < last {
					t.Fatalf("seed %d cfg %+v: callback %d at %v after one at %v", seed, cfg, i, e.time, last)
				}
				last = e.time
			}
		}
	}
}

// Under write-through no block is ever dirty, so the observer must stay
// silent.
func TestWriteThroughObserverSilent(t *testing.T) {
	tape := mustTape(t, randomTrace(11, 300))
	rec := &recorder{}
	if _, err := SimulateTapeObserved(tape, Config{
		BlockSize: 4096, CacheSize: 64 << 10, Write: WriteThrough,
	}, rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.events) != 0 {
		t.Fatalf("write-through fired %d observer callbacks", len(rec.events))
	}
}

// Attaching an observer must not perturb the simulation, and
// MultiSimulateObserved must agree with MultiSimulate.
func TestObserverDoesNotPerturbResults(t *testing.T) {
	tape := mustTape(t, randomTrace(13, 300))
	cfgs := []Config{
		{BlockSize: 4096, CacheSize: 64 << 10, Write: FlushBack, FlushInterval: 30 * trace.Second},
		{BlockSize: 4096, CacheSize: 64 << 10, Write: DelayedWrite},
	}
	plain, err := MultiSimulate(tape, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	observed, err := MultiSimulateObserved(tape, cfgs, func(i int) Observer { return &recorder{} })
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if !reflect.DeepEqual(plain[i], observed[i]) {
			t.Errorf("cfg %d: observed result differs from plain", i)
		}
	}
}

// Every dirtied block is eventually accounted for: cleaned (flushed,
// written back, or discarded) or still dirty at the end.
func TestObserverBalancesDirtyLifecycle(t *testing.T) {
	tape := mustTape(t, randomTrace(17, 400))
	cfg := Config{BlockSize: 4096, CacheSize: 64 << 10, Write: FlushBack, FlushInterval: 30 * trace.Second}
	rec := &recorder{}
	res, err := SimulateTapeObserved(tape, cfg, rec)
	if err != nil {
		t.Fatal(err)
	}
	dirty := make(map[int32]bool)
	for _, e := range rec.events {
		if e.clean {
			if !dirty[e.id] {
				t.Fatalf("block %d cleaned while not dirty", e.id)
			}
			delete(dirty, e.id)
		} else {
			if dirty[e.id] {
				t.Fatalf("block %d dirtied twice without a clean", e.id)
			}
			dirty[e.id] = true
		}
	}
	if int64(len(dirty)) != res.DirtyAtEnd {
		t.Errorf("observer leaves %d dirty, result says %d", len(dirty), res.DirtyAtEnd)
	}
}

// The two-level regression for the flush-clock fix: with a flush-back
// server cache big enough that nothing is ever evicted, every server
// disk write is a flush-scan write and must land exactly on a flush
// boundary — even when the scan came due during an idle gap in the
// merged client traffic.
func TestTwoLevelServerWritesOnFlushBoundaries(t *testing.T) {
	const interval = 30 * trace.Second
	machines := [][]trace.Event{randomTrace(31, 200), randomTrace(37, 200)}
	tapes := make([]*xfer.Tape, len(machines))
	for m, events := range machines {
		tapes[m] = mustTape(t, events)
	}
	var writes []trace.Time
	cfg := TwoLevelConfig{
		BlockSize:   4096,
		ClientCache: 64 << 10,
		ServerCache: 1 << 30, // no evictions: all disk writes are flushes
		Write:       FlushBack, FlushInterval: interval,
		OnServerDisk: func(id int32, write bool, tm trace.Time) {
			if write {
				writes = append(writes, tm)
			}
		},
	}
	res, err := TwoLevelSimulateTapes(tapes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(writes) == 0 {
		t.Fatal("no server disk writes observed; trace too weak")
	}
	if int64(len(writes)) != res.ServerDiskWrites {
		t.Fatalf("observed %d writes, result counted %d", len(writes), res.ServerDiskWrites)
	}
	for _, tm := range writes {
		if tm%interval != 0 {
			t.Errorf("server write at %v, not on a %v flush boundary", tm, interval)
		}
	}
}

// A stray flush interval on a non-flushing policy is a configuration
// mixup and must be rejected, not silently ignored.
func TestFillRejectsStrayFlushInterval(t *testing.T) {
	base := Config{BlockSize: 4096, CacheSize: 1 << 20}
	for _, w := range []WritePolicy{WriteThrough, DelayedWrite} {
		cfg := base
		cfg.Write = w
		cfg.FlushInterval = 30 * trace.Second
		if _, err := SimulateTape(&xfer.Tape{}, cfg); err == nil {
			t.Errorf("%v with a flush interval accepted", w)
		}
	}
	cfg := base
	cfg.Write = FlushBack
	if _, err := SimulateTape(&xfer.Tape{}, cfg); err == nil {
		t.Error("flush-back without an interval accepted")
	}
	cfg.FlushInterval = 30 * trace.Second
	if _, err := SimulateTape(&xfer.Tape{}, cfg); err != nil {
		t.Errorf("valid flush-back rejected: %v", err)
	}
}
