package cachesim

// TinyLFU-style admission (Einziger, Friedman & Manes, 2015) in its
// W-TinyLFU arrangement: a small LRU window (1% of capacity) absorbs new
// arrivals, the remaining capacity is a segmented-LRU main cache, and a
// count-min sketch estimates each block's reference frequency. When the
// window overflows, its tail duels the main cache's eviction candidate:
// the window block is admitted (displacing the candidate) only if the
// sketch says it is the more frequently referenced of the two. One-hit
// wonders therefore die in the window without ever touching the proven
// working set.
//
// The duel happens inside victim(): deciding who to evict is exactly the
// admission decision. Because the cache evicts before inserting, the
// incoming block is never visible at victim time; the window tail — the
// least recently used arrival — is the standing admission candidate
// instead. victim() may migrate window blocks into the main probation
// segment (filling spare main capacity, or moving an admitted duel
// winner) before returning the loser: a state rearrangement, never a
// change of residency or len (the sketch is only updated on insert and
// access, not in the duel).
//
// The sketch is 4 rows of 4-bit-saturating counters (stored one counter
// per byte for simplicity; the simulator optimizes replay time, not
// simulator memory), halved every 10x-capacity increments so stale
// popularity decays (the "reset" operation of the paper).

const (
	tWindow = iota
	tProbation
	tProtected
)

type tinyLFUPolicy struct {
	window    blockList
	probation blockList
	protected blockList
	winCap    int
	mainCap   int
	protCap   int
	sketch    cmSketch
}

func newTinyLFUPolicy(capacity int) *tinyLFUPolicy {
	if capacity < 1 {
		capacity = 1
	}
	winCap := capacity / 100
	if winCap < 1 {
		winCap = 1
	}
	mainCap := capacity - winCap
	protCap := mainCap * 4 / 5
	p := &tinyLFUPolicy{winCap: winCap, mainCap: mainCap, protCap: protCap}
	p.sketch.init(capacity)
	return p
}

func (p *tinyLFUPolicy) insert(b *block) {
	p.sketch.add(b.id)
	b.slot = tWindow
	p.window.pushFront(b)
}

func (p *tinyLFUPolicy) access(b *block) {
	p.sketch.add(b.id)
	switch b.slot {
	case tWindow:
		p.window.moveToFront(b)
	case tProtected:
		p.protected.moveToFront(b)
	default:
		// Probation hit: promote, demoting protected overflow back to
		// probation (same discipline as the standalone SLRU policy).
		p.probation.remove(b)
		b.slot = tProtected
		p.protected.pushFront(b)
		for p.protected.n > p.protCap {
			d := p.protected.tail
			p.protected.remove(d)
			d.slot = tProbation
			p.probation.pushFront(d)
		}
	}
}

func (p *tinyLFUPolicy) remove(b *block) {
	switch b.slot {
	case tWindow:
		p.window.remove(b)
	case tProtected:
		p.protected.remove(b)
	default:
		p.probation.remove(b)
	}
}

func (p *tinyLFUPolicy) mainVictim() *block {
	if p.probation.tail != nil {
		return p.probation.tail
	}
	return p.protected.tail
}

func (p *tinyLFUPolicy) victim() *block {
	// Window overflow drains into spare main capacity without a duel
	// (this is how the main cache bootstraps: before the first eviction
	// every block sits in the window).
	for p.window.n > p.winCap && p.probation.n+p.protected.n < p.mainCap {
		w := p.window.tail
		p.window.remove(w)
		w.slot = tProbation
		p.probation.pushFront(w)
	}
	if p.window.n >= p.winCap && p.window.tail != nil {
		w := p.window.tail
		m := p.mainVictim()
		if m == nil {
			return w
		}
		// The admission duel. Strict inequality: on a tie the incumbent
		// wins, keeping a scan of never-repeated blocks out of the main
		// cache.
		if p.sketch.estimate(w.id) > p.sketch.estimate(m.id) {
			p.window.remove(w)
			w.slot = tProbation
			p.probation.pushFront(w)
			return m
		}
		return w
	}
	if m := p.mainVictim(); m != nil {
		return m
	}
	return p.window.tail
}

func (p *tinyLFUPolicy) len() int { return p.window.n + p.probation.n + p.protected.n }

// cmSketch is a count-min sketch of reference frequencies: sketchRows
// hash rows of saturating counters, the estimate being the row minimum.
// All hashing is fixed odd-constant multiplicative mixing, so replays
// are bit-deterministic.
const (
	sketchRows     = 4
	sketchMaxCount = 15
)

type cmSketch struct {
	rows  [sketchRows][]uint8
	mask  uint32
	adds  int
	reset int
}

// sketchSeeds are arbitrary odd 32-bit constants (splitmix64 outputs).
var sketchSeeds = [sketchRows]uint32{0x9e3779b9, 0x85ebca6b, 0xc2b2ae35, 0x27d4eb2f}

func (s *cmSketch) init(capacity int) {
	// Width: the next power of two above 8x capacity, clamped so tiny
	// caches still get enough spread and huge ones stay affordable.
	width := 64
	for width < 8*capacity && width < 1<<17 {
		width <<= 1
	}
	s.mask = uint32(width - 1)
	for r := range s.rows {
		s.rows[r] = make([]uint8, width)
	}
	s.reset = 10 * capacity
	if s.reset < 640 {
		s.reset = 640
	}
}

func (s *cmSketch) index(id int32, row int) uint32 {
	h := uint32(id)*sketchSeeds[row] + sketchSeeds[row]>>1
	h ^= h >> 15
	h *= 0x2c1b3c6d
	h ^= h >> 12
	return h & s.mask
}

func (s *cmSketch) add(id int32) {
	for r := 0; r < sketchRows; r++ {
		c := &s.rows[r][s.index(id, r)]
		if *c < sketchMaxCount {
			*c++
		}
	}
	s.adds++
	if s.adds >= s.reset {
		s.adds = 0
		for r := range s.rows {
			row := s.rows[r]
			for i := range row {
				row[i] >>= 1
			}
		}
	}
}

func (s *cmSketch) estimate(id int32) uint8 {
	min := uint8(sketchMaxCount)
	for r := 0; r < sketchRows; r++ {
		if c := s.rows[r][s.index(id, r)]; c < min {
			min = c
		}
	}
	return min
}
