package cachesim

// ARC (Megiddo & Modha, FAST 2003), adapted to the replacer seam. The
// resident blocks are split between T1 (seen once recently) and T2 (seen
// at least twice); B1 and B2 remember the identities of blocks recently
// evicted from each side. The adaptation parameter p is T1's target size:
// a re-insertion that hits B1 (the recency ghost) grows p, one that hits
// B2 (the frequency ghost) shrinks it, so the split continuously tracks
// which side is turning ghosts into hits.
//
// Two deliberate departures from the textbook REPLACE routine, forced by
// the seam (the policy never sees the incoming block ID at victim time
// and cannot tell evictions from purges apart):
//
//   - the "x in B2 and |T1| == p" tie-break evicts from T2 in the paper;
//     here the tie always evicts from T1 (the adaptation of p dominates
//     the curves, the tie-break does not);
//   - every remove ghosts the departed block (a purged block's ghost is
//     dead weight but harmless — dead data is never re-referenced).
//
// The reference implementation in replacertest mirrors exactly this
// variant, and the conformance + differential tests pin it.

const (
	aT1 = iota
	aT2
)

type arcPolicy struct {
	t1, t2 blockList // resident: front = most recent
	b1, b2 ghostList
	c      int // capacity in blocks
	p      int // target size of T1, 0..c
}

func newARCPolicy(capacity int) *arcPolicy {
	if capacity < 1 {
		capacity = 1
	}
	return &arcPolicy{c: capacity}
}

func (a *arcPolicy) insert(b *block) {
	switch {
	case a.b1.has(b.id):
		// B1 hit: recency side deserves more room.
		delta := 1
		if a.b2.len() > a.b1.len() {
			delta = a.b2.len() / a.b1.len()
		}
		a.p += delta
		if a.p > a.c {
			a.p = a.c
		}
		a.b1.remove(b.id)
		b.slot = aT2
		a.t2.pushFront(b)
	case a.b2.has(b.id):
		// B2 hit: frequency side deserves more room.
		delta := 1
		if a.b1.len() > a.b2.len() {
			delta = a.b1.len() / a.b2.len()
		}
		a.p -= delta
		if a.p < 0 {
			a.p = 0
		}
		a.b2.remove(b.id)
		b.slot = aT2
		a.t2.pushFront(b)
	default:
		b.slot = aT1
		a.t1.pushFront(b)
	}
	a.trimGhosts()
}

// trimGhosts bounds the history: |T1|+|B1| <= c (the paper's L1 bound)
// and total directory size <= 2c.
func (a *arcPolicy) trimGhosts() {
	for a.t1.n+a.b1.len() > a.c && a.b1.len() > 0 {
		a.b1.dropOldest()
	}
	for a.t1.n+a.t2.n+a.b1.len()+a.b2.len() > 2*a.c {
		if a.b2.len() > 0 {
			a.b2.dropOldest()
		} else if a.b1.len() > 0 {
			a.b1.dropOldest()
		} else {
			break
		}
	}
}

func (a *arcPolicy) access(b *block) {
	if b.slot == aT1 {
		a.t1.remove(b)
		b.slot = aT2
		a.t2.pushFront(b)
		return
	}
	a.t2.moveToFront(b)
}

func (a *arcPolicy) remove(b *block) {
	if b.slot == aT1 {
		a.t1.remove(b)
		a.b1.pushFront(b.id)
	} else {
		a.t2.remove(b)
		a.b2.pushFront(b.id)
	}
	a.trimGhosts()
}

// victim evicts the T1 tail while T1 exceeds its target p (or T2 is
// empty), otherwise the T2 tail.
func (a *arcPolicy) victim() *block {
	if a.t1.n > 0 && (a.t1.n > a.p || a.t2.n == 0) {
		return a.t1.tail
	}
	if a.t2.tail != nil {
		return a.t2.tail
	}
	return a.t1.tail
}

func (a *arcPolicy) len() int { return a.t1.n + a.t2.n }
