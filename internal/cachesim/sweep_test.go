package cachesim

import (
	"errors"
	"testing"

	"bsdtrace/internal/trace"
)

func sweepTrace() []trace.Event {
	b := newTB()
	for i := 0; i < 100; i++ {
		f := trace.FileID(i%10 + 1)
		b.write(f, int64(i*137%20000+1))
		b.read(f, int64(i*137%20000+1))
		if i%7 == 0 {
			b.unlink(f)
		}
		b.now += trace.Time(i%5) * trace.Second
	}
	return b.events
}

func TestPolicySweepShape(t *testing.T) {
	events := sweepTrace()
	sizes := []int64{64 << 10, 1 << 20}
	pols := PaperPolicies()
	res, err := PolicySweep(events, 4096, sizes, pols)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || len(res[0]) != 4 {
		t.Fatalf("shape = %dx%d", len(res), len(res[0]))
	}
	for i := range sizes {
		for j := range pols {
			if res[i][j] == nil {
				t.Fatalf("nil result at %d,%d", i, j)
			}
			if res[i][j].Config.CacheSize != sizes[i] {
				t.Errorf("result %d,%d has cache %d", i, j, res[i][j].Config.CacheSize)
			}
		}
		// Accesses are policy-invariant.
		for j := 1; j < len(pols); j++ {
			if res[i][j].LogicalAccesses != res[i][0].LogicalAccesses {
				t.Errorf("accesses differ across policies")
			}
		}
	}
}

func TestPolicySweepPropagatesErrors(t *testing.T) {
	events := sweepTrace()
	bad := []PolicySpec{{Name: "broken", Write: FlushBack}} // missing interval
	if _, err := PolicySweep(events, 4096, []int64{1 << 20}, bad); err == nil {
		t.Errorf("invalid policy accepted")
	}
	if _, err := PolicySweep(events, 0, []int64{1 << 20}, PaperPolicies()); err == nil {
		t.Errorf("zero block size accepted")
	}
}

func TestBlockSizeSweepShape(t *testing.T) {
	events := sweepTrace()
	res, err := BlockSizeSweep(events, []int64{4096, 8192}, []int64{128 << 10, 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses[0] <= res.Accesses[1] {
		t.Errorf("smaller blocks should produce more accesses: %v", res.Accesses)
	}
	for i := range res.BlockSizes {
		if res.Results[i][0].DiskIOs() < res.Results[i][1].DiskIOs() {
			t.Errorf("bigger cache should not cost more I/Os")
		}
	}
	if _, err := BlockSizeSweep(events, []int64{0}, []int64{1 << 20}); err == nil {
		t.Errorf("zero block size accepted")
	}
}

func TestPagingSweepShape(t *testing.T) {
	b := newTB()
	b.exec(1, 50000)
	b.read(2, 8192)
	res, err := PagingSweep(b.events, 4096, []int64{1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if res[0][1].LogicalAccesses <= res[0][0].LogicalAccesses {
		t.Errorf("paging mode should add accesses: %d vs %d",
			res[0][1].LogicalAccesses, res[0][0].LogicalAccesses)
	}
	if _, err := PagingSweep(b.events, 0, []int64{1 << 20}); err == nil {
		t.Errorf("zero block size accepted")
	}
}

func TestReplacementSweepCoversAll(t *testing.T) {
	res, err := ReplacementSweep(sweepTrace(), 4096, 128<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("policies covered: %d", len(res))
	}
	for _, rp := range []Replacement{LRU, FIFO, Clock, Random} {
		if res[rp] == nil {
			t.Errorf("%v missing", rp)
		}
	}
	// LRU should not lose to FIFO on a workload with reuse.
	if res[LRU].DiskIOs() > res[FIFO].DiskIOs() {
		t.Logf("note: FIFO beat LRU on this toy trace (%d vs %d)", res[FIFO].DiskIOs(), res[LRU].DiskIOs())
	}
	if _, err := ReplacementSweep(sweepTrace(), 0, 1<<20, 1); err == nil {
		t.Errorf("zero block size accepted")
	}
}

func TestFlushIntervalSweepMonotone(t *testing.T) {
	intervals := []trace.Time{trace.Second, 30 * trace.Second, 5 * trace.Minute}
	res, err := FlushIntervalSweep(sweepTrace(), 4096, 256<<10, intervals)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res); i++ {
		if res[i].DiskWrites > res[i-1].DiskWrites {
			t.Errorf("longer flush interval increased writes: %d then %d",
				res[i-1].DiskWrites, res[i].DiskWrites)
		}
	}
	if _, err := FlushIntervalSweep(sweepTrace(), 4096, 1<<20, []trace.Time{0}); err == nil {
		t.Errorf("zero interval accepted")
	}
}

func TestRunParallelErrorAndOrder(t *testing.T) {
	// All indexes run exactly once.
	seen := make([]int, 100)
	err := runParallel(100, func(i int) error {
		seen[i]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
	// Errors are surfaced.
	wantErr := errors.New("boom")
	err = runParallel(10, func(i int) error {
		if i == 7 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Errorf("error not propagated: %v", err)
	}
	// n = 1 uses the serial path.
	ran := false
	if err := runParallel(1, func(int) error { ran = true; return nil }); err != nil || !ran {
		t.Errorf("serial path failed")
	}
	// n = 0 is a no-op.
	if err := runParallel(0, func(int) error { t.Fatal("ran"); return nil }); err != nil {
		t.Errorf("empty parallel failed: %v", err)
	}
}
