package cachesim

// Fuzz targets for the policy seam and the stack analysis. Both run in
// CI's fuzz smoke (see .github/workflows/ci.yml): a short -fuzztime pass
// over the generated corpus, looking for panics and invariant breaks
// rather than deep exploration.

import (
	"testing"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/xfer"
)

// FuzzReplacer interprets the input as an operation stream over a
// fuzzer-chosen policy and capacity, mirroring the adversarial
// conformance check: byte 0 picks the policy, byte 1 the capacity, and
// every following byte is one operation (top two bits) on one block ID
// (low six bits). The policy must never panic, Len must track a model
// residency map exactly, occupancy must never exceed capacity, and
// victim probes must return resident blocks without disturbing state.
func FuzzReplacer(f *testing.F) {
	f.Add([]byte{0, 3, 0x01, 0x02, 0x03, 0x01, 0xc0, 0x04})
	f.Add([]byte{4, 7, 0x01, 0x41, 0x81, 0xc1, 0x02, 0x03, 0x04, 0x05})
	f.Add([]byte{8, 63, 0x1f, 0x5f, 0x9f, 0xdf, 0x20, 0x60, 0xa0, 0xe0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		if len(data) > 2048 {
			data = data[:2048]
		}
		rep := Replacement(data[0]) % numReplacements
		capacity := int(data[1]%64) + 1
		p := NewPolicy(rep, capacity, 1)
		model := map[int32]bool{}
		for i, b := range data[2:] {
			id := int32(b & 0x3f)
			switch b >> 6 {
			case 0: // disciplined insert
				if !model[id] {
					for p.Len() >= capacity {
						v, ok := p.Victim()
						if !ok {
							t.Fatalf("op %d: Victim ok=false with %d resident", i, p.Len())
						}
						if !model[v] {
							t.Fatalf("op %d: Victim returned non-resident %d", i, v)
						}
						p.Remove(v)
						delete(model, v)
					}
				}
				p.Insert(id)
				model[id] = true
			case 1: // access, resident or not
				p.Access(id)
			case 2: // remove, resident or not (a purge)
				p.Remove(id)
				delete(model, id)
			default: // victim probe
				v, ok := p.Victim()
				if ok && !model[v] {
					t.Fatalf("op %d: Victim returned non-resident %d", i, v)
				}
				if !ok && len(model) > 0 {
					t.Fatalf("op %d: Victim ok=false with %d resident", i, len(model))
				}
			}
			if n := p.Len(); n != len(model) {
				t.Fatalf("op %d: Len = %d, want %d", i, n, len(model))
			}
			if n := p.Len(); n > capacity {
				t.Fatalf("op %d: occupancy %d exceeds capacity %d", i, n, capacity)
			}
		}
	})
}

// FuzzStackDistances builds a syntactically valid trace from the input
// bytes (via the same builder the unit tests use) and checks the stack
// analysis invariants: the miss curve is monotone non-increasing in
// cache size, pinned at References for a zero-block cache and at
// ColdMisses for an infinite one; and an independent LRU cache replaying
// the reference string reproduces Misses exactly at a spot-check size,
// as does the generalized priority-stack path.
func FuzzStackDistances(f *testing.F) {
	f.Add([]byte{0x21, 0x04, 0x41, 0x04, 0x22, 0x08, 0x61, 0x01})
	f.Add([]byte{0x01, 0x10, 0x81, 0x02, 0xa1, 0x00, 0xc1, 0x03, 0xe1, 0x05})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		if len(data) > 512 {
			data = data[:512]
		}
		b := newTB()
		for i := 0; i+1 < len(data); i += 2 {
			op := data[i] >> 5
			file := trace.FileID(data[i]&0x1f) + 1
			size := (int64(data[i+1]) + 1) * 512
			switch op {
			case 0, 1:
				b.write(file, size)
			case 2, 3, 4:
				b.read(file, size)
			case 5:
				b.truncate(file, size/2)
			case 6:
				b.unlink(file)
			default:
				b.exec(file, size)
			}
		}
		if len(b.events) == 0 {
			return
		}
		tape, err := xfer.NewTape(b.events)
		if err != nil {
			t.Fatalf("builder produced invalid trace: %v", err)
		}
		for _, bs := range []int64{512, 4096} {
			sr, err := StackDistancesTape(tape, bs)
			if err != nil {
				t.Fatal(err)
			}
			if sr.References < sr.ColdMisses {
				t.Fatalf("bs %d: %d cold misses exceed %d references", bs, sr.ColdMisses, sr.References)
			}
			if got := sr.Misses(0); got != sr.References {
				t.Fatalf("bs %d: Misses(0) = %d, want all %d references", bs, got, sr.References)
			}
			prev := sr.References
			for cap := 1; cap <= 128; cap *= 2 {
				m := sr.Misses(int64(cap) * bs)
				if m > prev {
					t.Fatalf("bs %d: miss curve not monotone: %d blocks -> %d misses, fewer blocks -> %d", bs, cap, m, prev)
				}
				if m < sr.ColdMisses {
					t.Fatalf("bs %d cap %d: %d misses below %d cold misses", bs, cap, m, sr.ColdMisses)
				}
				prev = m
			}
			if got := sr.Misses(1 << 40); got != sr.ColdMisses {
				t.Fatalf("bs %d: infinite cache misses %d, want cold %d", bs, got, sr.ColdMisses)
			}
			// Spot-check against an independent LRU cache and against the
			// generalized stack path (same algorithm, different engine).
			refs := referenceString(tape, resolvedFor(tape, bs))
			const capBlocks = 5
			lru := &simpleLRU{cap: capBlocks, blocks: make(map[int32]*lruNode)}
			var misses int64
			for _, id := range refs {
				if !lru.access(id) {
					misses++
				}
			}
			if got := sr.Misses(capBlocks * bs); got != misses {
				t.Fatalf("bs %d: stack misses %d, LRU cache missed %d", bs, got, misses)
			}
			gen, err := StackDistancesPolicyTape(tape, bs, StackLRU)
			if err != nil {
				t.Fatal(err)
			}
			if gen.ColdMisses != sr.ColdMisses || gen.Misses(capBlocks*bs) != sr.Misses(capBlocks*bs) {
				t.Fatalf("bs %d: generalized stack disagrees with Fenwick path", bs)
			}
		}
	})
}
