package cachesim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/xfer"
)

func TestStackDistanceSmall(t *testing.T) {
	// Reference string over files 1,2,3 (one block each): 1 2 3 1 2 3.
	b := newTB()
	for round := 0; round < 2; round++ {
		for f := trace.FileID(1); f <= 3; f++ {
			b.read(f, 100)
		}
	}
	r, err := StackDistances(b.events, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if r.References != 6 || r.ColdMisses != 3 {
		t.Fatalf("refs=%d cold=%d", r.References, r.ColdMisses)
	}
	// Second-round references each have reuse distance 2: they hit only
	// with >= 3 blocks of cache.
	if got := r.MissRatio(3 * 4096); got != 0.5 {
		t.Errorf("miss at 3 blocks = %v, want 0.5 (cold only)", got)
	}
	if got := r.MissRatio(2 * 4096); got != 1.0 {
		t.Errorf("miss at 2 blocks = %v, want 1.0", got)
	}
	if r.DistinctBlocks() != 3 {
		t.Errorf("DistinctBlocks = %d", r.DistinctBlocks())
	}
}

func TestStackDistanceRepeats(t *testing.T) {
	// 1 1 1 1: distance 0 after the first; hits with any cache.
	b := newTB()
	for i := 0; i < 4; i++ {
		b.read(1, 100)
	}
	r, err := StackDistances(b.events, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.MissRatio(4096); got != 0.25 {
		t.Errorf("miss at 1 block = %v, want 0.25", got)
	}
}

func TestStackDistanceBadInput(t *testing.T) {
	if _, err := StackDistances(nil, 0); err == nil {
		t.Errorf("zero block size accepted")
	}
	bad := []trace.Event{{Time: 0, Kind: trace.KindClose, OpenID: 7}}
	if _, err := StackDistances(bad, 4096); err == nil {
		t.Errorf("malformed trace accepted")
	}
}

func TestStackCurveMonotone(t *testing.T) {
	events := randomTrace(3, 400)
	r, err := StackDistances(events, 4096)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int64{4096, 8 * 4096, 64 * 4096, 1 << 20, 16 << 20}
	curve := r.Curve(sizes)
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1]+1e-12 {
			t.Fatalf("curve not monotone: %v", curve)
		}
	}
	// At infinite capacity only cold misses remain.
	if got, want := r.MissRatio(1<<40), float64(r.ColdMisses)/float64(r.References); got != want {
		t.Errorf("asymptotic miss = %v, want cold ratio %v", got, want)
	}
}

// refLRU is an oracle: a direct LRU simulation over the same block
// reference string, counting reference misses.
func refLRU(events []trace.Event, blockSize int64, capBlocks int) (misses, refs int64) {
	type key = blockKey
	pos := make(map[key]int)
	var stack []key
	sc := xfer.NewScanner()
	sc.OnTransfer = func(t xfer.Transfer) {
		first := t.Offset / blockSize
		last := (t.End() - 1) / blockSize
		for idx := first; idx <= last; idx++ {
			k := key{file: t.File, idx: idx}
			refs++
			if at, ok := pos[k]; ok {
				stack = append(stack[:at], stack[at+1:]...)
				for i := at; i < len(stack); i++ {
					pos[stack[i]] = i
				}
			} else {
				misses++
			}
			if !containsKey(pos, k) && len(stack) >= capBlocks {
				victim := stack[0]
				stack = stack[1:]
				delete(pos, victim)
				for i := range stack {
					pos[stack[i]] = i
				}
			}
			stack = append(stack, k)
			pos[k] = len(stack) - 1
		}
	}
	for _, e := range events {
		sc.Feed(e)
	}
	sc.Finish()
	return misses, refs
}

func containsKey(m map[blockKey]int, k blockKey) bool {
	_, ok := m[k]
	return ok
}

// Property: the one-pass stack analysis agrees exactly with a direct LRU
// simulation at arbitrary cache sizes. This is the inclusion property that
// justifies the algorithm.
func TestStackMatchesDirectLRU(t *testing.T) {
	f := func(seed int64, rawCap uint8) bool {
		events := randomTrace(seed, 150)
		capBlocks := int(rawCap%32) + 1
		r, err := StackDistances(events, 4096)
		if err != nil {
			return false
		}
		oracleMisses, oracleRefs := refLRU(events, 4096, capBlocks)
		if oracleRefs != r.References {
			return false
		}
		want := 0.0
		if oracleRefs > 0 {
			want = float64(oracleMisses) / float64(oracleRefs)
		}
		return r.MissRatio(int64(capBlocks)*4096) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// The stack analysis bounds the full simulator from... neither side
// exactly (the simulator skips reads for whole-block overwrites but adds
// write-backs), but on a read-only workload with no deletions, Simulate
// under write-through equals the stack reference misses plus nothing.
func TestStackAgreesWithSimulatorReadOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := newTB()
	for i := 0; i < 300; i++ {
		b.read(trace.FileID(rng.Intn(25)+1), int64(rng.Intn(30000)+1))
	}
	const capBytes = 64 * 4096
	r, err := StackDistances(b.events, 4096)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Simulate(b.events, Config{BlockSize: 4096, CacheSize: capBytes, Write: WriteThrough})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r.MissRatio(capBytes), sim.MissRatio(); got != want {
		t.Errorf("stack %v != simulator %v on read-only workload", got, want)
	}
}

func TestWorkingSetSmall(t *testing.T) {
	b := newTB()
	// Three distinct blocks touched within the first second, then the
	// same one block touched repeatedly a minute later.
	for f := trace.FileID(1); f <= 3; f++ {
		b.read(f, 100)
	}
	b.now = 60 * trace.Second
	b.read(1, 100)
	b.read(1, 100)
	ws, err := WorkingSet(b.events, 4096, []trace.Time{10 * trace.Second})
	if err != nil {
		t.Fatal(err)
	}
	p := ws[0]
	if p.MaxBlocks != 3 {
		t.Errorf("MaxBlocks = %d, want 3", p.MaxBlocks)
	}
	// Windows: [0,10s) has 3 blocks, four empty windows, [60,70) has 1.
	if p.Windows != 7 {
		t.Errorf("Windows = %d, want 7", p.Windows)
	}
	if want := (3.0 + 1.0) / 7; p.MeanBlocks != want {
		t.Errorf("MeanBlocks = %v, want %v", p.MeanBlocks, want)
	}
	if p.MaxBytes != 3*4096 {
		t.Errorf("MaxBytes = %d", p.MaxBytes)
	}
}

func TestWorkingSetGrowsWithWindow(t *testing.T) {
	events := randomTrace(11, 400)
	ws, err := WorkingSet(events, 4096, []trace.Time{10 * trace.Second, trace.Minute, 10 * trace.Minute})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ws); i++ {
		if ws[i].MeanBlocks < ws[i-1].MeanBlocks {
			t.Errorf("W(T) should grow with T: %v then %v", ws[i-1].MeanBlocks, ws[i].MeanBlocks)
		}
		if ws[i].MaxBlocks < ws[i-1].MaxBlocks {
			t.Errorf("max W(T) should grow with T")
		}
	}
}

func TestWorkingSetErrors(t *testing.T) {
	if _, err := WorkingSet(nil, 0, []trace.Time{trace.Second}); err == nil {
		t.Errorf("zero block size accepted")
	}
	if _, err := WorkingSet(nil, 4096, []trace.Time{0}); err == nil {
		t.Errorf("zero window accepted")
	}
	bad := []trace.Event{{Time: 0, Kind: trace.KindClose, OpenID: 9}}
	if _, err := WorkingSet(bad, 4096, []trace.Time{trace.Second}); err == nil {
		t.Errorf("malformed trace accepted")
	}
}
