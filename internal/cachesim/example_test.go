package cachesim_test

import (
	"fmt"
	"log"

	"bsdtrace/internal/cachesim"
	"bsdtrace/internal/trace"
)

// A file is written, deleted while its blocks are still cached, and —
// under the delayed-write policy — never reaches the disk at all: the
// paper's headline mechanism.
func ExampleSimulate() {
	events := []trace.Event{
		{Time: 0, Kind: trace.KindCreate, OpenID: 1, File: 5, User: 1, Mode: trace.WriteOnly},
		{Time: 50, Kind: trace.KindClose, OpenID: 1, NewPos: 8192},
		{Time: 30_000, Kind: trace.KindUnlink, File: 5},
	}
	r, err := cachesim.Simulate(events, cachesim.Config{
		BlockSize: 4096,
		CacheSize: 1 << 20,
		Write:     cachesim.DelayedWrite,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("block accesses: %d\n", r.LogicalAccesses)
	fmt.Printf("disk I/Os: %d\n", r.DiskIOs())
	fmt.Printf("dirty blocks that died in cache: %d\n", r.DirtyDiscarded)
	// Output:
	// block accesses: 2
	// disk I/Os: 0
	// dirty blocks that died in cache: 2
}

// The same trace under write-through pays for every modified block.
func ExampleSimulate_writeThrough() {
	events := []trace.Event{
		{Time: 0, Kind: trace.KindCreate, OpenID: 1, File: 5, User: 1, Mode: trace.WriteOnly},
		{Time: 50, Kind: trace.KindClose, OpenID: 1, NewPos: 8192},
		{Time: 30_000, Kind: trace.KindUnlink, File: 5},
	}
	r, err := cachesim.Simulate(events, cachesim.Config{
		BlockSize: 4096,
		CacheSize: 1 << 20,
		Write:     cachesim.WriteThrough,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("disk I/Os: %d (miss ratio %.0f%%)\n", r.DiskIOs(), 100*r.MissRatio())
	// Output:
	// disk I/Os: 2 (miss ratio 100%)
}

// StackDistances computes the LRU miss-ratio curve for every cache size
// in one pass.
func ExampleStackDistances() {
	var events []trace.Event
	id := trace.OpenID(1)
	tm := trace.Time(0)
	// Cycle through three one-block files twice: the second round's
	// reuse distance is 2, so it hits only with three or more blocks.
	for round := 0; round < 2; round++ {
		for f := trace.FileID(1); f <= 3; f++ {
			events = append(events,
				trace.Event{Time: tm, Kind: trace.KindOpen, OpenID: id, File: f, Mode: trace.ReadOnly, Size: 100},
				trace.Event{Time: tm + 10, Kind: trace.KindClose, OpenID: id, NewPos: 100},
			)
			id++
			tm += 100
		}
	}
	r, err := cachesim.StackDistances(events, 4096)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2 blocks: %.0f%% miss\n", 100*r.MissRatio(2*4096))
	fmt.Printf("3 blocks: %.0f%% miss\n", 100*r.MissRatio(3*4096))
	// Output:
	// 2 blocks: 100% miss
	// 3 blocks: 50% miss
}
