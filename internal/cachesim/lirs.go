package cachesim

// LIRS (Jiang & Zhang, SIGMETRICS 2002). Blocks are classified by
// inter-reference recency (IRR): LIR blocks (low IRR, re-referenced
// within a stack's worth of history) own almost all of the cache, and a
// small queue Q of HIR (high IRR) blocks absorbs the churn. The LIRS
// stack S orders LIR blocks, resident HIR blocks, and non-resident HIR
// ghosts by recency; a HIR block re-referenced while still on S has, by
// construction, an IRR smaller than the current maximum LIR recency and
// is promoted to LIR, demoting the stack-bottom LIR block to HIR.
//
// Sizing follows the paper: Q holds 1% of the capacity (at least one
// block), the LIR set the rest. Ghost entries (non-resident HIR) are
// bounded at 2x capacity; because a ghost never moves within S while it
// remains a ghost, a separate FIFO threaded through the entries yields
// the oldest ghost in O(1) without scanning S.
//
// Victims come from the front (oldest end) of Q; if purges have emptied
// Q, the bottommost LIR block on S stands in.

const (
	lirBlock uint8 = iota
	hirResident
	hirGhost
)

// lirsEntry is one identity's standing in the LIRS history: every block
// on stack S or queue Q has one, including non-resident ghosts.
type lirsEntry struct {
	id           int32
	state        uint8
	b            *block // resident frame; nil for ghosts
	inS          bool
	sPrev, sNext *lirsEntry // stack S links; sPrev = toward the top
	gPrev, gNext *lirsEntry // ghost FIFO links (hirGhost only)
}

type lirsPolicy struct {
	byID map[int32]*lirsEntry
	// Stack S: sTop is the most recently referenced entry.
	sTop, sBot *lirsEntry
	// Queue Q of resident HIR blocks, as an intrusive block list:
	// front = most recently queued, tail = eviction candidate.
	q blockList
	// Ghost FIFO: gHead is the oldest ghost.
	gHead, gTail *lirsEntry

	lirCap   int // target LIR population (capacity - Q share)
	nLIR     int
	ghostCap int
	nGhost   int
	resident int
}

func newLIRSPolicy(capacity int) *lirsPolicy {
	if capacity < 1 {
		capacity = 1
	}
	hirCap := capacity / 100
	if hirCap < 1 {
		hirCap = 1
	}
	return &lirsPolicy{
		byID:     make(map[int32]*lirsEntry),
		lirCap:   capacity - hirCap,
		ghostCap: 2 * capacity,
	}
}

// Stack S primitives.

func (p *lirsPolicy) stackPush(e *lirsEntry) {
	e.sPrev = nil
	e.sNext = p.sTop
	if p.sTop != nil {
		p.sTop.sPrev = e
	}
	p.sTop = e
	if p.sBot == nil {
		p.sBot = e
	}
	e.inS = true
}

func (p *lirsPolicy) stackRemove(e *lirsEntry) {
	if e.sPrev != nil {
		e.sPrev.sNext = e.sNext
	} else {
		p.sTop = e.sNext
	}
	if e.sNext != nil {
		e.sNext.sPrev = e.sPrev
	} else {
		p.sBot = e.sPrev
	}
	e.sPrev, e.sNext = nil, nil
	e.inS = false
}

func (p *lirsPolicy) stackMoveToTop(e *lirsEntry) {
	if e.inS {
		if p.sTop == e {
			return
		}
		p.stackRemove(e)
	}
	p.stackPush(e)
}

// prune pops non-LIR entries off the stack bottom until a LIR block (or
// nothing) anchors it — the stack-bottom LIR block defines the maximum
// IRR worth remembering, so deeper history is useless.
func (p *lirsPolicy) prune() {
	for p.sBot != nil && p.sBot.state != lirBlock {
		e := p.sBot
		p.stackRemove(e)
		if e.state == hirGhost {
			p.ghostUnlink(e)
			delete(p.byID, e.id)
		}
		// A resident HIR entry stays in Q and byID; it merely loses its
		// chance at promotion.
	}
}

// Ghost FIFO primitives.

func (p *lirsPolicy) ghostPush(e *lirsEntry) {
	e.gPrev = p.gTail
	e.gNext = nil
	if p.gTail != nil {
		p.gTail.gNext = e
	}
	p.gTail = e
	if p.gHead == nil {
		p.gHead = e
	}
	p.nGhost++
}

func (p *lirsPolicy) ghostUnlink(e *lirsEntry) {
	if e.gPrev != nil {
		e.gPrev.gNext = e.gNext
	} else {
		p.gHead = e.gNext
	}
	if e.gNext != nil {
		e.gNext.gPrev = e.gPrev
	} else {
		p.gTail = e.gPrev
	}
	e.gPrev, e.gNext = nil, nil
	p.nGhost--
}

func (p *lirsPolicy) dropOldestGhost() {
	e := p.gHead
	if e == nil {
		return
	}
	p.ghostUnlink(e)
	if e.inS {
		p.stackRemove(e)
	}
	delete(p.byID, e.id)
	p.prune()
}

// demoteBottomLIR turns the stack-bottom LIR block into a resident HIR
// block at the fresh end of Q.
func (p *lirsPolicy) demoteBottomLIR() {
	e := p.sBot
	for e != nil && e.state != lirBlock {
		e = e.sPrev
	}
	if e == nil {
		return
	}
	p.stackRemove(e)
	e.state = hirResident
	p.nLIR--
	p.q.pushFront(e.b)
	p.prune()
}

func (p *lirsPolicy) insert(b *block) {
	if e := p.byID[b.id]; e != nil && e.state == hirGhost {
		// Ghost hit: the re-reference happened within stack history, so
		// the block's IRR is low — it enters as LIR.
		p.ghostUnlink(e)
		e.b = b
		e.state = lirBlock
		p.nLIR++
		p.resident++
		p.stackMoveToTop(e)
		if p.nLIR > p.lirCap {
			p.demoteBottomLIR()
		}
		p.prune()
		return
	}
	e := &lirsEntry{id: b.id, b: b}
	p.byID[b.id] = e
	p.resident++
	if p.nLIR < p.lirCap {
		// Warmup: the LIR set fills first.
		e.state = lirBlock
		p.nLIR++
		p.stackPush(e)
		return
	}
	e.state = hirResident
	p.stackPush(e)
	p.q.pushFront(b)
}

func (p *lirsPolicy) access(b *block) {
	e := p.byID[b.id]
	if e == nil {
		return
	}
	switch e.state {
	case lirBlock:
		wasBottom := e == p.sBot
		p.stackMoveToTop(e)
		if wasBottom {
			p.prune()
		}
	case hirResident:
		if e.inS {
			// IRR below the LIR threshold: promote.
			e.state = lirBlock
			p.nLIR++
			p.stackMoveToTop(e)
			p.q.remove(b)
			if p.nLIR > p.lirCap {
				p.demoteBottomLIR()
			}
			p.prune()
			return
		}
		// Referenced but with high IRR: refresh both recency orders.
		p.stackPush(e)
		p.q.moveToFront(b)
	}
}

func (p *lirsPolicy) remove(b *block) {
	e := p.byID[b.id]
	if e == nil {
		return
	}
	if e.state == hirResident {
		p.q.remove(b)
		p.resident--
		if e.inS {
			// Keep the identity as a ghost: a quick re-reference still
			// proves low IRR.
			e.state = hirGhost
			e.b = nil
			p.ghostPush(e)
			if p.nGhost > p.ghostCap {
				p.dropOldestGhost()
			}
			return
		}
		delete(p.byID, b.id)
		return
	}
	// A LIR block leaving the cache (purge, or the empty-Q fallback
	// eviction) takes its history with it.
	p.stackRemove(e)
	delete(p.byID, b.id)
	p.nLIR--
	p.resident--
	p.prune()
}

func (p *lirsPolicy) victim() *block {
	if p.q.tail != nil {
		return p.q.tail
	}
	// Q drained (purges, or a tiny cache that is all LIR): fall back to
	// the coldest LIR block.
	for e := p.sBot; e != nil; e = e.sPrev {
		if e.state == lirBlock {
			return e.b
		}
	}
	return nil
}

func (p *lirsPolicy) len() int { return p.resident }
