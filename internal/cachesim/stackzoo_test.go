package cachesim

import (
	"math/rand"
	"testing"

	"bsdtrace/internal/trace"
)

// TestGeneralStackLRUMatchesFenwick: the generalized priority-stack
// engine instantiated with recency priority is the same analysis as the
// Fenwick-tree fast path, so the two must agree everywhere — cold
// misses, reference count, and miss count at every capacity.
func TestGeneralStackLRUMatchesFenwick(t *testing.T) {
	tape := mustTape(t, randomTrace(19, 500))
	for _, bs := range []int64{1024, 4096, 8192} {
		fast, err := StackDistancesTape(tape, bs)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := StackDistancesPolicyTape(tape, bs, StackLRU)
		if err != nil {
			t.Fatal(err)
		}
		if gen.References != fast.References || gen.ColdMisses != fast.ColdMisses {
			t.Fatalf("bs %d: general (%d refs, %d cold) vs fenwick (%d refs, %d cold)",
				bs, gen.References, gen.ColdMisses, fast.References, fast.ColdMisses)
		}
		for capBlocks := 0; capBlocks <= 2048; capBlocks++ {
			g, f := gen.Misses(int64(capBlocks)*bs), fast.Misses(int64(capBlocks)*bs)
			if g != f {
				t.Fatalf("bs %d cap %d: general %d misses, fenwick %d", bs, capBlocks, g, f)
			}
		}
	}
}

// stackLFU is the per-size oracle for the generalized analysis: a naive
// stack-managed perfect-LFU cache. Eviction and admission both pick the
// minimum of (frequency, last use) over the cache plus the incoming
// block — the incoming block is refused when it is itself the minimum —
// which is exactly the policy a priority stack induces.
type stackLFU struct {
	cap     int
	cache   map[int32]bool
	freq    map[int32]int64
	lastUse map[int32]int
}

func (c *stackLFU) access(x int32, now int) bool {
	hit := c.cache[x]
	c.freq[x]++
	c.lastUse[x] = now
	if hit {
		return true
	}
	if len(c.cache) < c.cap {
		c.cache[x] = true
		return false
	}
	worse := func(a, b int32) bool {
		if c.freq[a] != c.freq[b] {
			return c.freq[a] < c.freq[b]
		}
		return c.lastUse[a] < c.lastUse[b]
	}
	min := x
	for b := range c.cache {
		if worse(b, min) {
			min = b
		}
	}
	if min != x {
		delete(c.cache, min)
		c.cache[x] = true
	}
	return false
}

// TestStackLFUOracle pins the one-pass LFU curve against brute force:
// for each cache size, a naive stack-managed LFU cache replaying the
// reference string must miss exactly Misses times. The curve must also
// be monotone — that is what having the inclusion property means.
func TestStackLFUOracle(t *testing.T) {
	tape := mustTape(t, randomTrace(31, 400))
	for _, bs := range []int64{1024, 4096} {
		sr, err := StackDistancesPolicyTape(tape, bs, StackLFU)
		if err != nil {
			t.Fatal(err)
		}
		refs := referenceString(tape, resolvedFor(tape, bs))
		prev := sr.References
		for _, capBlocks := range []int{1, 2, 3, 7, 25, 64, 300, 1024} {
			lfu := &stackLFU{
				cap:     capBlocks,
				cache:   map[int32]bool{},
				freq:    map[int32]int64{},
				lastUse: map[int32]int{},
			}
			var misses int64
			for i, id := range refs {
				if !lfu.access(id, i) {
					misses++
				}
			}
			got := sr.Misses(int64(capBlocks) * bs)
			if got != misses {
				t.Errorf("bs %d cap %d: stack LFU misses %d, naive cache missed %d", bs, capBlocks, got, misses)
			}
			if got > prev {
				t.Errorf("bs %d cap %d: LFU curve not monotone (%d > %d)", bs, capBlocks, got, prev)
			}
			prev = got
		}
	}
}

// gridSizes is the full sweep grid's cache-size axis: Table VI's sizes
// united with Table VII's.
func gridSizes() []int64 {
	seen := map[int64]bool{}
	var out []int64
	for _, cs := range append(PaperCacheSizes(), PaperBlockCacheSizes()...) {
		if !seen[cs] {
			seen[cs] = true
			out = append(out, cs)
		}
	}
	return out
}

// TestStackOracleFullGrid extends the LRU stack oracle to the full sweep
// grid: at every paper block size and every paper cache size, an
// independent LRU cache replaying the reference string must miss exactly
// StackResult.Misses times.
func TestStackOracleFullGrid(t *testing.T) {
	tape := mustTape(t, randomTrace(19, 500))
	for _, bs := range PaperBlockSizes() {
		sr, err := StackDistancesTape(tape, bs)
		if err != nil {
			t.Fatal(err)
		}
		refs := referenceString(tape, resolvedFor(tape, bs))
		for _, cs := range gridSizes() {
			capBlocks := int(cs / bs)
			lru := &simpleLRU{cap: capBlocks, blocks: make(map[int32]*lruNode)}
			var misses int64
			for _, id := range refs {
				if !lru.access(id) {
					misses++
				}
			}
			if got := sr.Misses(cs); got != misses {
				t.Errorf("bs %d cache %d: stack misses %d, LRU cache missed %d", bs, cs, got, misses)
			}
		}
	}
}

// TestStackMatchesSimulateReadOnly: on a read-only trace the full
// simulator has nothing but reference misses to bill — no write-backs,
// no purges, no flushes — so at every grid cell the LRU stack analysis
// must predict Simulate's disk reads exactly. This ties the one-pass
// analysis to the production replay engine end to end.
func TestStackMatchesSimulateReadOnly(t *testing.T) {
	b := newTB()
	nFiles := 12
	sizes := make([]int64, nFiles+1)
	for f := 1; f <= nFiles; f++ {
		sizes[f] = int64(f*7+3)*1024 + 137 // odd sizes: last block partial
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		f := 1 + rng.Intn(nFiles)
		b.read(trace.FileID(f), sizes[f])
	}
	tape := mustTape(t, b.events)

	for _, bs := range PaperBlockSizes() {
		sr, err := StackDistancesTape(tape, bs)
		if err != nil {
			t.Fatal(err)
		}
		for _, cs := range gridSizes() {
			res, err := SimulateTape(tape, Config{
				BlockSize:   bs,
				CacheSize:   cs,
				Write:       WriteThrough,
				Replacement: LRU,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.DiskWrites != 0 {
				t.Fatalf("bs %d cache %d: read-only trace produced %d disk writes", bs, cs, res.DiskWrites)
			}
			if want := sr.Misses(cs); res.DiskReads != want {
				t.Errorf("bs %d cache %d: Simulate read %d blocks, stack analysis predicts %d",
					bs, cs, res.DiskReads, want)
			}
		}
	}
}

// TestMissCurveTape checks the zoo-wide miss-curve front end: the LRU
// path must match the Mattson analysis exactly, every policy's curve
// must sit between cold misses and total references, reruns must be
// bit-identical, and malformed arguments must be rejected.
func TestMissCurveTape(t *testing.T) {
	tape := mustTape(t, randomTrace(43, 400))
	const bs = 4096
	sizes := []int64{bs, 3 * bs, 7 * bs, 64 * bs, 2 << 20}
	sr, err := StackDistancesTape(tape, bs)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range AllReplacements() {
		curve, err := MissCurveTape(tape, bs, rep, sizes, 1)
		if err != nil {
			t.Fatalf("%v: %v", rep, err)
		}
		if len(curve) != len(sizes) {
			t.Fatalf("%v: curve has %d points, want %d", rep, len(curve), len(sizes))
		}
		for i, m := range curve {
			if m < sr.ColdMisses || m > sr.References {
				t.Errorf("%v size %d: %d misses outside [%d cold, %d refs]",
					rep, sizes[i], m, sr.ColdMisses, sr.References)
			}
			if rep == LRU && m != sr.Misses(sizes[i]) {
				t.Errorf("lru size %d: curve %d, stack analysis %d", sizes[i], m, sr.Misses(sizes[i]))
			}
		}
		again, err := MissCurveTape(tape, bs, rep, sizes, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range curve {
			if curve[i] != again[i] {
				t.Errorf("%v size %d: rerun differs (%d vs %d)", rep, sizes[i], curve[i], again[i])
			}
		}
	}
	if _, err := MissCurveTape(tape, 0, LRU, sizes, 1); err == nil {
		t.Error("zero block size accepted")
	}
	if _, err := MissCurveTape(tape, bs, numReplacements, sizes, 1); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := MissCurveTape(tape, bs, LRU, []int64{0}, 1); err == nil {
		t.Error("zero cache size accepted")
	}
	if _, err := StackDistancesPolicyTape(tape, bs, StackPolicy(9)); err == nil {
		t.Error("unknown stack policy accepted")
	}
	if got := StackLFU.String(); got != "stack-lfu" {
		t.Errorf("StackLFU.String() = %q", got)
	}
}
