// Package cachesim implements the trace-driven disk block cache simulator
// of Section 6 of the paper.
//
// The simulated cache holds fixed-size blocks of file data, replaced LRU
// (other policies are available as ablations). Reconstructed transfers are
// divided into block accesses; a referenced block absent from the cache
// costs a disk read unless the access is about to overwrite the block's
// every valid byte, and modified blocks cost disk writes according to the
// write policy:
//
//   - write-through: every modification writes the block to disk at once;
//   - flush-back: the cache is scanned at a fixed interval and every block
//     modified since the last scan is written (the paper evaluates 30-second
//     and 5-minute intervals; the classic UNIX sync daemon is the 30-second
//     point);
//   - delayed-write: a dirty block is written only when it is ejected.
//
// Unlinks, truncations, and overwriting creates purge the dead blocks from
// the cache; a dirty block that dies in the cache never reaches the disk at
// all, which is the mechanism behind the paper's headline result that large
// delayed-write caches eliminate most write traffic.
//
// The principal metric is the miss ratio: disk I/O operations divided by
// logical block accesses (paper §6.1).
//
// # The transfer tape
//
// Reconstructing transfers from the event stream costs as much as
// simulating them, and the paper's evaluation replays the same trace into
// dozens of configurations (four write policies × six cache sizes in
// Table VI alone). The simulator therefore runs off an xfer.Tape: the
// transfer stream plus its interleaved control operations, materialized
// once per trace. Transfers are expressed in bytes, so one tape serves
// every block size; per block size the tape is "resolved" once into dense
// integer block IDs (shared read-only by all configurations at that
// size), and each configuration replays array-indexed — no event
// scanning, no hashing. MultiSimulate runs many configurations over one
// tape on parallel workers; Simulate remains as the convenience wrapper
// that builds a throwaway tape from raw events.
package cachesim

import (
	"fmt"
	"sort"

	"bsdtrace/internal/stats"
	"bsdtrace/internal/trace"
	"bsdtrace/internal/xfer"
)

// WritePolicy selects when modified blocks are written to disk.
type WritePolicy uint8

// Write policies (paper §6.2).
const (
	WriteThrough WritePolicy = iota
	FlushBack
	DelayedWrite
)

// String names the policy as the paper's Table VI does.
func (p WritePolicy) String() string {
	switch p {
	case WriteThrough:
		return "write-through"
	case FlushBack:
		return "flush-back"
	case DelayedWrite:
		return "delayed-write"
	}
	return "write-policy(?)"
}

// UnixCacheSize is the paper's "typical 4.2 BSD" configuration: about 10%
// of a VAX's main memory, 390 kbytes.
const UnixCacheSize = 390 * 1024

// Config parameterizes one simulation.
type Config struct {
	// BlockSize is the cache block size in bytes (paper default 4096).
	BlockSize int64
	// CacheSize is the cache capacity in bytes; the block count is
	// CacheSize/BlockSize, rounded down, minimum one block.
	CacheSize int64
	// Write is the write policy; FlushInterval applies to FlushBack.
	Write         WritePolicy
	FlushInterval trace.Time
	// Replacement selects the eviction policy (default LRU, as in the
	// paper).
	Replacement Replacement
	// Seed feeds the Random replacement policy.
	Seed int64
	// SimulatePaging approximates program loading by forcing a
	// whole-file read of each executed file at exec time (Figure 7).
	SimulatePaging bool
	// NoPurge disables the removal of dead blocks on unlink, truncate,
	// and overwrite; dirty dead blocks then get written at eviction as
	// if they were live. Ablation A4: how much of delayed-write's win is
	// death-before-ejection?
	NoPurge bool
	// BillAtStart bills each transfer at the beginning of its run
	// (the open or previous seek) instead of the paper's choice of the
	// ending event. Ablation A3: sensitivity to the no-read-write time
	// imprecision.
	BillAtStart bool
	// ResidencyThreshold is the residency cutoff reported by
	// Result.ResidencyOver (paper §6.2 reports blocks resident longer
	// than 20 minutes). Default 20 minutes.
	ResidencyThreshold trace.Time
}

func (c *Config) fill() error {
	if c.BlockSize <= 0 {
		return fmt.Errorf("cachesim: block size %d must be positive", c.BlockSize)
	}
	if c.CacheSize <= 0 {
		return fmt.Errorf("cachesim: cache size %d must be positive", c.CacheSize)
	}
	if c.Replacement >= numReplacements {
		return fmt.Errorf("cachesim: unknown replacement policy %d", c.Replacement)
	}
	if c.Write == FlushBack && c.FlushInterval <= 0 {
		return fmt.Errorf("cachesim: flush-back needs a positive interval")
	}
	if c.Write != FlushBack && c.FlushInterval != 0 {
		// A stray interval on a non-flushing policy is a config mixup
		// (most likely a sweep reusing a flush-back Config); accepting it
		// silently would let two configs that look different simulate
		// identically.
		return fmt.Errorf("cachesim: %v takes no flush interval (got %v)", c.Write, c.FlushInterval)
	}
	if c.ResidencyThreshold <= 0 {
		c.ResidencyThreshold = 20 * trace.Minute
	}
	return nil
}

// Result is the outcome of one simulation.
type Result struct {
	Config Config
	// LogicalAccesses counts block accesses; ReadAccesses and
	// WriteAccesses split them by direction.
	LogicalAccesses int64
	ReadAccesses    int64
	WriteAccesses   int64
	// DiskReads counts block fetches from disk; DiskWrites counts block
	// write-backs (or write-throughs).
	DiskReads  int64
	DiskWrites int64
	// Evictions counts capacity evictions; Purged counts blocks removed
	// because their data died; DirtyDiscarded counts purged blocks that
	// were dirty — writes the disk never saw.
	Evictions      int64
	Purged         int64
	DirtyDiscarded int64
	// DirtyAtEnd counts blocks still dirty when the trace ended.
	DirtyAtEnd int64
	// Residency is the CDF of block cache residency times in seconds
	// (blocks still cached at the end contribute their elapsed
	// residency). ResidencyOver is the fraction resident longer than
	// Config.ResidencyThreshold.
	Residency     stats.CDF
	ResidencyOver float64
}

// DiskIOs returns the total disk operations.
func (r *Result) DiskIOs() int64 { return r.DiskReads + r.DiskWrites }

// MissRatio returns disk I/Os per logical block access (paper §6.1), or 0
// for an empty trace.
func (r *Result) MissRatio() float64 {
	if r.LogicalAccesses == 0 {
		return 0
	}
	return float64(r.DiskIOs()) / float64(r.LogicalAccesses)
}

// WriteFraction returns the fraction of logical accesses that were writes
// (the paper observes about one third).
func (r *Result) WriteFraction() float64 {
	if r.LogicalAccesses == 0 {
		return 0
	}
	return float64(r.WriteAccesses) / float64(r.LogicalAccesses)
}

// NeverWrittenFraction returns the fraction of dirtied blocks whose data
// died in the cache and so never reached the disk. Blocks still dirty at
// the end of the trace count as eventual writes, so a big cache cannot
// claim credit merely for outliving the trace. The paper reports about
// 75% for a 16-Mbyte delayed-write cache.
func (r *Result) NeverWrittenFraction() float64 {
	total := r.DirtyDiscarded + r.DiskWrites + r.DirtyAtEnd
	if total == 0 {
		return 0
	}
	return float64(r.DirtyDiscarded) / float64(total)
}

// blockKey identifies one block of one file; the resolution maps these
// to dense integer IDs, which is what the replay engine works in.
type blockKey struct {
	file trace.FileID
	idx  int64
}

// block is one cache frame. The intrusive fields (prev/next/slot/
// referenced) belong to the replacement policy.
type block struct {
	id         int32
	dirty      bool
	referenced bool
	slot       int
	enteredAt  trace.Time
	prev, next *block
}

// cache is the live replay state of one configuration over one resolved
// tape.
type cache struct {
	cfg      Config
	tape     *xfer.Tape
	r        *resolved
	capacity int
	res      *Result

	// blocks is the cache directory, indexed by dense block ID (nil =
	// not cached).
	blocks []*block
	pol    replacer
	// dirties are flush-back scan candidates in the order they were
	// dirtied. Entries can go stale (the block was evicted or purged, and
	// its frame possibly recycled); the authoritative bit is b.dirty, so
	// a scan flushes each dirty frame exactly once and skips the rest.
	// Maintained only under FlushBack.
	dirties []*block

	now       trace.Time
	nextFlush trace.Time
	// onDisk observes every disk operation (used by the two-level
	// simulation, where a client's "disk" is the server).
	onDisk func(id int32, write bool, t trace.Time)
	// obs observes the dirty-set lifecycle (used by the crash-injection
	// layer in internal/fault). Nil for plain simulations.
	obs Observer
	// freeList recycles evicted block frames; the simulator allocates at
	// most capacity+1 frames over its whole run, keeping long sweeps off
	// the garbage collector's back.
	freeList  *block
	residency *stats.Histogram
	resOver   int64
	resTotal  int64
}

func newCache(tape *xfer.Tape, r *resolved, cfg Config) *cache {
	capacity := int(cfg.CacheSize / cfg.BlockSize)
	if capacity < 1 {
		capacity = 1
	}
	c := &cache{
		cfg:      cfg,
		tape:     tape,
		r:        r,
		capacity: capacity,
		res:      &Result{Config: cfg},
		blocks:   make([]*block, r.nBlocks()),
		pol:      newReplacer(cfg.Replacement, capacity, cfg.Seed),
		// Residency spans 10 ms to days.
		residency: stats.NewLogHistogram(0.01, 1.35, 60),
	}
	if cfg.Write == FlushBack {
		c.nextFlush = cfg.FlushInterval
	}
	return c
}

// advance moves the clock forward, running any flush-back scans that came
// due. Overdue scans execute at their scheduled times, in order, before
// the clock catches up to t: a scan due at 30 s that is only discovered
// by an event at 100 s still writes its blocks at clock 30 s, so onDisk
// timestamps and crash-loss windows are exact. The clock never moves
// backwards (the BillAtStart ablation can present slightly out-of-order
// times; they are processed at the current clock).
func (c *cache) advance(t trace.Time) {
	if c.cfg.Write == FlushBack {
		for c.nextFlush <= t {
			if c.nextFlush > c.now {
				c.now = c.nextFlush
			}
			for _, b := range c.dirties {
				if b.dirty {
					b.dirty = false
					c.diskWrite(b.id)
					if c.obs != nil {
						c.obs.BlockCleaned(b.id, c.now, CleanFlushed)
					}
				}
			}
			c.dirties = c.dirties[:0]
			c.nextFlush += c.cfg.FlushInterval
		}
	}
	if t > c.now {
		c.now = t
	}
}

func (c *cache) recordResidency(b *block) {
	d := c.now - b.enteredAt
	c.residency.Add(d.Seconds(), 1)
	c.resTotal++
	if d > c.cfg.ResidencyThreshold {
		c.resOver++
	}
}

// diskWrite and diskRead count disk operations and notify the onDisk
// observer.
func (c *cache) diskWrite(id int32) {
	c.res.DiskWrites++
	if c.onDisk != nil {
		c.onDisk(id, true, c.now)
	}
}

func (c *cache) diskRead(id int32) {
	c.res.DiskReads++
	if c.onDisk != nil {
		c.onDisk(id, false, c.now)
	}
}

// drop removes a block from the cache. If writeBack is true and the
// block is dirty it costs a disk write; otherwise a dirty block is
// discarded and counted in DirtyDiscarded.
func (c *cache) drop(b *block, writeBack bool) {
	if b.dirty {
		if writeBack {
			c.diskWrite(b.id)
			if c.obs != nil {
				c.obs.BlockCleaned(b.id, c.now, CleanWriteBack)
			}
		} else {
			c.res.DirtyDiscarded++
			if c.obs != nil {
				c.obs.BlockCleaned(b.id, c.now, CleanDiscarded)
			}
		}
		b.dirty = false
	}
	c.recordResidency(b)
	c.blocks[b.id] = nil
	c.pol.remove(b)
	b.next = c.freeList
	c.freeList = b
}

// purge removes every cached block of the file slot whose byte range
// starts at or beyond size (size 0 purges the whole file), in ascending
// block order. Dirty purged blocks are dead data and cost no disk write.
func (c *cache) purge(fs int32, size int64) {
	if c.cfg.NoPurge || fs < 0 {
		return
	}
	ids := c.r.fileBlocks[fs]
	// Doomed blocks satisfy idx*blockSize >= size, i.e. idx >=
	// ceil(size/blockSize); they form a suffix of the sorted ID list.
	bound := (size + c.cfg.BlockSize - 1) / c.cfg.BlockSize
	lo := sort.Search(len(ids), func(k int) bool { return c.r.blockIdx[ids[k]] >= bound })
	for _, id := range ids[lo:] {
		if b := c.blocks[id]; b != nil {
			c.res.Purged++
			c.drop(b, false)
		}
	}
}

// insert adds a block, evicting a victim if the cache is full.
func (c *cache) insert(id int32) *block {
	for c.pol.len() >= c.capacity {
		v := c.pol.victim()
		if v == nil {
			break
		}
		c.res.Evictions++
		c.drop(v, true)
	}
	b := c.freeList
	if b != nil {
		c.freeList = b.next
		*b = block{id: id, enteredAt: c.now}
	} else {
		b = &block{id: id, enteredAt: c.now}
	}
	c.blocks[id] = b
	c.pol.insert(b)
	return b
}

// markDirty applies the write policy to a modified block.
func (c *cache) markDirty(b *block) {
	if c.cfg.Write == WriteThrough {
		c.diskWrite(b.id)
		return
	}
	if !b.dirty {
		b.dirty = true
		if c.cfg.Write == FlushBack {
			c.dirties = append(c.dirties, b)
		}
		if c.obs != nil {
			c.obs.BlockDirtied(b.id, c.now)
		}
	}
}

// transfer simulates the block accesses of tape transfer xi.
func (c *cache) transfer(xi int32) {
	t := &c.tape.Transfers[xi]
	when := t.Time
	if c.cfg.BillAtStart {
		when = t.Start
	}
	c.advance(when)

	bs := c.cfg.BlockSize
	oldSize := c.tape.OldSizes[xi]
	ids := c.r.accessIDs[c.r.accessOff[xi]:c.r.accessOff[xi+1]]
	for _, id := range ids {
		c.res.LogicalAccesses++
		if t.Write {
			c.res.WriteAccesses++
		} else {
			c.res.ReadAccesses++
		}
		if b := c.blocks[id]; b != nil {
			c.pol.access(b)
			if t.Write {
				c.markDirty(b)
			}
			continue
		}
		// Miss. A read always fetches. A write fetches only if the
		// block holds valid bytes outside the written range: the run
		// covers [t.Offset, t.End()) and bytes beyond oldSize are not
		// valid data, so a full-block overwrite or an append into
		// fresh space needs no read (paper §6.1).
		fetch := true
		if t.Write {
			blockStart := c.r.blockIdx[id] * bs
			blockEnd := blockStart + bs
			headValid := t.Offset > blockStart && oldSize > blockStart
			tailValid := t.End() < blockEnd && oldSize > t.End()
			fetch = headValid || tailValid
		}
		if fetch {
			c.diskRead(id)
		}
		b := c.insert(id)
		if t.Write {
			c.markDirty(b)
		}
	}
}

// run replays the whole tape.
func (c *cache) run() {
	ops := c.tape.Ops
	for i := range ops {
		op := &ops[i]
		c.advance(op.Time)
		switch op.Kind {
		case xfer.OpPurge:
			c.purge(c.r.opFile[i], op.Size)
		case xfer.OpTransfer:
			c.transfer(op.Xfer)
		case xfer.OpExec:
			if c.cfg.SimulatePaging {
				c.transfer(op.Xfer)
			}
		}
	}
}

// finish closes out the simulation, recording residency for blocks still
// cached and counting blocks still dirty.
func (c *cache) finish() *Result {
	for _, b := range c.blocks {
		if b == nil {
			continue
		}
		if b.dirty {
			c.res.DirtyAtEnd++
		}
		c.recordResidency(b)
	}
	c.res.Residency = c.residency.CDF()
	if c.resTotal > 0 {
		c.res.ResidencyOver = float64(c.resOver) / float64(c.resTotal)
	}
	return c.res
}

func simulateResolved(tape *xfer.Tape, r *resolved, cfg Config) *Result {
	c := newCache(tape, r, cfg)
	c.run()
	return c.finish()
}

// SimulateTape runs one cache simulation by replaying a transfer tape.
// The per-block-size resolution is memoized on the tape, so repeated
// calls (and MultiSimulate sweeps) against one tape share it.
func SimulateTape(tape *xfer.Tape, cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return simulateResolved(tape, resolvedFor(tape, cfg.BlockSize), cfg), nil
}

// MultiSimulate replays one tape into every configuration, sharded
// across parallel workers, and returns the results in configuration
// order. Each result is identical to what Simulate would produce on the
// tape's source events: replay order is fixed by the tape, so worker
// count and scheduling cannot affect any result. All configurations are
// validated before any work starts.
func MultiSimulate(tape *xfer.Tape, cfgs []Config) ([]*Result, error) {
	return MultiSimulateObserved(tape, cfgs, nil)
}

// Simulate runs one cache simulation over a time-ordered trace. It is
// the single-configuration convenience wrapper around SimulateTape; to
// run several configurations over one trace, build the tape once with
// xfer.NewTape and use MultiSimulate.
func Simulate(events []trace.Event, cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	tape, err := xfer.NewTape(events)
	if err != nil {
		return nil, fmt.Errorf("cachesim: malformed trace: %v", err)
	}
	return simulateResolved(tape, resolveTape(tape, cfg.BlockSize), cfg), nil
}

// CountBlockAccesses returns the number of logical block accesses a trace
// generates at the given block size — the "no cache" column of the paper's
// Table VII.
func CountBlockAccesses(events []trace.Event, blockSize int64, simulatePaging bool) (int64, error) {
	if blockSize <= 0 {
		return 0, fmt.Errorf("cachesim: block size %d must be positive", blockSize)
	}
	tape, err := xfer.NewTape(events)
	if err != nil {
		return 0, fmt.Errorf("cachesim: malformed trace: %v", err)
	}
	return CountTapeAccesses(tape, blockSize, simulatePaging), nil
}

// CountTapeAccesses returns the number of logical block accesses a tape
// generates at the given block size — pure arithmetic over the
// transfers, no simulation.
func CountTapeAccesses(tape *xfer.Tape, blockSize int64, simulatePaging bool) int64 {
	var n int64
	for i := range tape.Ops {
		op := &tape.Ops[i]
		if op.Kind == xfer.OpTransfer || (op.Kind == xfer.OpExec && simulatePaging) {
			t := &tape.Transfers[op.Xfer]
			if t.Length <= 0 {
				// xfer.NewTape never emits an empty run (see the tape
				// invariant test there), but the span arithmetic below
				// would count one access for a zero-length run whose
				// (End-1)/blockSize truncates into Offset's block, so
				// guard against hand-built tapes.
				continue
			}
			n += (t.End()-1)/blockSize - t.Offset/blockSize + 1
		}
	}
	return n
}
