package cachesim

import (
	"fmt"
	"sort"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/xfer"
)

// Two-level simulation: the diskless-workstation architecture the paper's
// introduction motivates. Each machine keeps a local block cache; misses
// and (write-through) modifications travel over the network to one file
// server, whose own large cache stands in front of the disk. The paper
// asks "how much network bandwidth is needed to support a diskless
// workstation?" and "how should disk block caches be organized?"; this
// simulation answers both at once: client hit ratios bound the network
// traffic, and the server cache bounds the disk traffic.
//
// Clients write through to the server (a client crash then loses nothing,
// which is why early network file systems made this choice); the server
// applies any of the usual write policies against its disk.

// TwoLevelConfig parameterizes the network.
type TwoLevelConfig struct {
	// BlockSize is shared by clients and server.
	BlockSize int64
	// ClientCache is each machine's local cache capacity; ServerCache
	// the file server's.
	ClientCache int64
	ServerCache int64
	// Write is the server's disk write policy (clients always write
	// through to the server); FlushInterval applies to FlushBack.
	Write         WritePolicy
	FlushInterval trace.Time
}

// TwoLevelResult reports the network's behavior at every level.
type TwoLevelResult struct {
	Config TwoLevelConfig
	// ClientAccesses counts block accesses at the clients;
	// ClientReadMisses those that had to fetch from the server.
	ClientAccesses   int64
	ClientReadMisses int64
	// WriteForwards counts blocks written through to the server.
	WriteForwards int64
	// NetworkBlocks is the total blocks crossing the network:
	// ClientReadMisses + WriteForwards.
	NetworkBlocks int64
	// ServerDiskReads and ServerDiskWrites are the server's disk I/O.
	ServerDiskReads  int64
	ServerDiskWrites int64
}

// ClientHitRatio returns the fraction of client accesses served locally.
func (r *TwoLevelResult) ClientHitRatio() float64 {
	if r.ClientAccesses == 0 {
		return 0
	}
	return 1 - float64(r.NetworkBlocks)/float64(r.ClientAccesses)
}

// ServerDiskIOs returns the server's total disk operations.
func (r *TwoLevelResult) ServerDiskIOs() int64 { return r.ServerDiskReads + r.ServerDiskWrites }

// EndToEndMissRatio returns server disk I/Os per client block access: the
// fraction of logical accesses that reach a disk at all.
func (r *TwoLevelResult) EndToEndMissRatio() float64 {
	if r.ClientAccesses == 0 {
		return 0
	}
	return float64(r.ServerDiskIOs()) / float64(r.ClientAccesses)
}

// serverOp is one operation arriving at the server, in time order.
type serverOp struct {
	time  trace.Time
	key   blockKey
	kind  serverOpKind
	size  int64 // for truncate purges
	order int64 // stable tiebreak
}

type serverOpKind uint8

const (
	opRead serverOpKind = iota
	opWrite
	opPurge
)

// TwoLevelSimulate runs one trace per machine through a local
// write-through client cache and forwards the resulting traffic to a
// shared server cache. Machine file identifiers are remapped (file*n+i, as
// trace.Merge does) so machines never collide.
func TwoLevelSimulate(machines [][]trace.Event, cfg TwoLevelConfig) (*TwoLevelResult, error) {
	if len(machines) == 0 {
		return nil, fmt.Errorf("cachesim: two-level simulation needs at least one machine")
	}
	clientCfg := Config{BlockSize: cfg.BlockSize, CacheSize: cfg.ClientCache, Write: WriteThrough}
	if err := clientCfg.fill(); err != nil {
		return nil, err
	}
	serverCfg := Config{
		BlockSize: cfg.BlockSize, CacheSize: cfg.ServerCache,
		Write: cfg.Write, FlushInterval: cfg.FlushInterval,
	}
	if err := serverCfg.fill(); err != nil {
		return nil, err
	}

	res := &TwoLevelResult{Config: cfg}
	n := int64(len(machines))
	var ops []serverOp
	var order int64

	// Pass 1: each client runs its own cache; its fetches and
	// write-throughs become server operations, as do the purges implied
	// by its metadata events.
	for m, events := range machines {
		m := int64(m)
		remap := func(f trace.FileID) trace.FileID { return f*trace.FileID(n) + trace.FileID(m) }
		c := newCache(clientCfg)
		c.onDisk = func(key blockKey, write bool, t trace.Time) {
			kind := opRead
			if write {
				kind = opWrite
			}
			ops = append(ops, serverOp{
				time: t, kind: kind, order: order,
				key: blockKey{file: remap(key.file), idx: key.idx},
			})
			order++
		}
		sc := xfer.NewScanner()
		sc.OnTransfer = c.transfer
		for _, e := range events {
			c.advance(e.Time)
			switch e.Kind {
			case trace.KindCreate:
				c.purge(e.File, 0)
				c.sizes[e.File] = 0
				ops = append(ops, serverOp{time: e.Time, kind: opPurge, key: blockKey{file: remap(e.File)}, order: order})
				order++
			case trace.KindOpen:
				c.sizes[e.File] = e.Size
			case trace.KindTruncate:
				c.purge(e.File, e.Size)
				c.sizes[e.File] = e.Size
				ops = append(ops, serverOp{time: e.Time, kind: opPurge, key: blockKey{file: remap(e.File)}, size: e.Size, order: order})
				order++
			case trace.KindUnlink:
				c.purge(e.File, 0)
				delete(c.sizes, e.File)
				ops = append(ops, serverOp{time: e.Time, kind: opPurge, key: blockKey{file: remap(e.File)}, order: order})
				order++
			}
			sc.Feed(e)
		}
		sc.Finish()
		if errs := sc.Errs(); len(errs) > 0 {
			return nil, fmt.Errorf("cachesim: machine %d trace malformed: %v", m, errs[0])
		}
		res.ClientAccesses += c.res.LogicalAccesses
		res.ClientReadMisses += c.res.DiskReads
		res.WriteForwards += c.res.DiskWrites
	}
	res.NetworkBlocks = res.ClientReadMisses + res.WriteForwards

	// Pass 2: replay the interleaved server traffic into the server
	// cache. Writes arrive with their data (the client has the block),
	// so a server write miss needs no disk read.
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].time != ops[j].time {
			return ops[i].time < ops[j].time
		}
		return ops[i].order < ops[j].order
	})
	srv := newCache(serverCfg)
	for _, op := range ops {
		srv.advance(op.time)
		switch op.kind {
		case opPurge:
			srv.purge(op.key.file, op.size)
		case opRead:
			srv.res.LogicalAccesses++
			srv.res.ReadAccesses++
			if b, ok := srv.blocks[op.key]; ok {
				srv.pol.access(b)
				continue
			}
			srv.res.DiskReads++
			srv.insert(op.key)
		case opWrite:
			srv.res.LogicalAccesses++
			srv.res.WriteAccesses++
			if b, ok := srv.blocks[op.key]; ok {
				srv.pol.access(b)
				srv.markDirty(b)
				continue
			}
			b := srv.insert(op.key)
			srv.markDirty(b)
		}
	}
	sres := srv.finish()
	res.ServerDiskReads = sres.DiskReads
	res.ServerDiskWrites = sres.DiskWrites
	return res, nil
}
