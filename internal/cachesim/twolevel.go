package cachesim

import (
	"fmt"
	"sort"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/xfer"
)

// Two-level simulation: the diskless-workstation architecture the paper's
// introduction motivates. Each machine keeps a local block cache; misses
// and (write-through) modifications travel over the network to one file
// server, whose own large cache stands in front of the disk. The paper
// asks "how much network bandwidth is needed to support a diskless
// workstation?" and "how should disk block caches be organized?"; this
// simulation answers both at once: client hit ratios bound the network
// traffic, and the server cache bounds the disk traffic.
//
// Clients write through to the server (a client crash then loses nothing,
// which is why early network file systems made this choice); the server
// applies any of the usual write policies against its disk.

// TwoLevelConfig parameterizes the network.
type TwoLevelConfig struct {
	// BlockSize is shared by clients and server.
	BlockSize int64
	// ClientCache is each machine's local cache capacity; ServerCache
	// the file server's.
	ClientCache int64
	ServerCache int64
	// Write is the server's disk write policy (clients always write
	// through to the server); FlushInterval applies to FlushBack.
	Write         WritePolicy
	FlushInterval trace.Time
	// OnServerDisk, if non-nil, observes every server disk operation:
	// the block id in the server's global dense ID space, the direction,
	// and the simulated time. Flush-back write-backs carry their exact
	// flush-boundary times (see cache.advance).
	OnServerDisk func(id int32, write bool, t trace.Time)
}

// TwoLevelResult reports the network's behavior at every level.
type TwoLevelResult struct {
	Config TwoLevelConfig
	// ClientAccesses counts block accesses at the clients;
	// ClientReadMisses those that had to fetch from the server.
	ClientAccesses   int64
	ClientReadMisses int64
	// WriteForwards counts blocks written through to the server.
	WriteForwards int64
	// NetworkBlocks is the total blocks crossing the network:
	// ClientReadMisses + WriteForwards.
	NetworkBlocks int64
	// ServerDiskReads and ServerDiskWrites are the server's disk I/O.
	ServerDiskReads  int64
	ServerDiskWrites int64
}

// ClientHitRatio returns the fraction of client accesses served locally.
func (r *TwoLevelResult) ClientHitRatio() float64 {
	if r.ClientAccesses == 0 {
		return 0
	}
	return 1 - float64(r.NetworkBlocks)/float64(r.ClientAccesses)
}

// ServerDiskIOs returns the server's total disk operations.
func (r *TwoLevelResult) ServerDiskIOs() int64 { return r.ServerDiskReads + r.ServerDiskWrites }

// EndToEndMissRatio returns server disk I/Os per client block access: the
// fraction of logical accesses that reach a disk at all.
func (r *TwoLevelResult) EndToEndMissRatio() float64 {
	if r.ClientAccesses == 0 {
		return 0
	}
	return float64(r.ServerDiskIOs()) / float64(r.ClientAccesses)
}

// serverOp is one operation arriving at the server. Block and file
// identities are in the server's global dense ID space (each machine's
// local IDs shifted by its base offset, so machines never collide —
// machine files are distinct by construction, as trace.Merge remaps
// them).
type serverOp struct {
	time trace.Time
	kind serverOpKind
	id   int32 // global block ID for opRead/opWrite
	fs   int32 // global file slot for opPurge
	size int64 // truncate purge boundary
}

type serverOpKind uint8

const (
	opRead serverOpKind = iota
	opWrite
	opPurge
)

// clientPass is one machine's contribution to the simulation: its local
// cache counters and the server traffic it generated, in emission order.
type clientPass struct {
	res *Result
	ops []serverOp
}

// runClient replays one machine's tape through a write-through client
// cache. Read misses, write-throughs, and data-death purges become
// server operations; blockBase and fileBase translate the machine's
// dense IDs into the server's global ID space.
func runClient(tape *xfer.Tape, r *resolved, cfg Config, blockBase, fileBase int32) *clientPass {
	p := &clientPass{}
	c := newCache(tape, r, cfg)
	c.onDisk = func(id int32, write bool, t trace.Time) {
		kind := opRead
		if write {
			kind = opWrite
		}
		p.ops = append(p.ops, serverOp{time: t, kind: kind, id: blockBase + id})
	}
	ops := tape.Ops
	for i := range ops {
		op := &ops[i]
		c.advance(op.Time)
		switch op.Kind {
		case xfer.OpPurge:
			c.purge(r.opFile[i], op.Size)
			if fs := r.opFile[i]; fs >= 0 {
				p.ops = append(p.ops, serverOp{time: op.Time, kind: opPurge, fs: fileBase + fs, size: op.Size})
			}
		case xfer.OpTransfer:
			c.transfer(op.Xfer)
		}
	}
	p.res = c.res
	return p
}

// TwoLevelSimulateTapes runs one tape per machine through a local
// write-through client cache and forwards the resulting traffic to a
// shared server cache. The client passes run on parallel workers; the
// server replay interleaves their traffic by time, with ties broken in
// machine order (then emission order), so the result is deterministic
// regardless of worker scheduling.
func TwoLevelSimulateTapes(tapes []*xfer.Tape, cfg TwoLevelConfig) (*TwoLevelResult, error) {
	if len(tapes) == 0 {
		return nil, fmt.Errorf("cachesim: two-level simulation needs at least one machine")
	}
	clientCfg := Config{BlockSize: cfg.BlockSize, CacheSize: cfg.ClientCache, Write: WriteThrough}
	if err := clientCfg.fill(); err != nil {
		return nil, err
	}
	serverCfg := Config{
		BlockSize: cfg.BlockSize, CacheSize: cfg.ServerCache,
		Write: cfg.Write, FlushInterval: cfg.FlushInterval,
	}
	if err := serverCfg.fill(); err != nil {
		return nil, err
	}

	// Resolve every machine's tape and lay the machines' dense block and
	// file IDs end to end: machine m's local ID i becomes global ID
	// blockBase[m]+i at the server.
	machineRes := make([]*resolved, len(tapes))
	runParallel(len(tapes), func(m int) error {
		machineRes[m] = resolvedFor(tapes[m], cfg.BlockSize)
		return nil
	})
	blockBase := make([]int32, len(tapes))
	fileBase := make([]int32, len(tapes))
	var nBlocks, nFiles int32
	for m, r := range machineRes {
		blockBase[m] = nBlocks
		fileBase[m] = nFiles
		nBlocks += int32(r.nBlocks())
		nFiles += int32(len(r.fileBlocks))
	}

	// Pass 1: each client runs its own cache.
	passes := make([]*clientPass, len(tapes))
	runParallel(len(tapes), func(m int) error {
		passes[m] = runClient(tapes[m], machineRes[m], clientCfg, blockBase[m], fileBase[m])
		return nil
	})

	res := &TwoLevelResult{Config: cfg}
	var ops []serverOp
	for _, p := range passes {
		res.ClientAccesses += p.res.LogicalAccesses
		res.ClientReadMisses += p.res.DiskReads
		res.WriteForwards += p.res.DiskWrites
		ops = append(ops, p.ops...)
	}
	res.NetworkBlocks = res.ClientReadMisses + res.WriteForwards

	// Pass 2: replay the interleaved server traffic into the server
	// cache. The server's "resolution" is the machines' concatenated:
	// per-block file indices for purge boundaries and per-file sorted
	// block lists, all in global IDs. Writes arrive with their data (the
	// client has the block), so a server write miss needs no disk read.
	srvRes := mergeResolved(machineRes, blockBase, cfg.BlockSize, nBlocks, nFiles)
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].time < ops[j].time })
	sres := replayServer(ops, srvRes, serverCfg, cfg.OnServerDisk)
	res.ServerDiskReads = sres.DiskReads
	res.ServerDiskWrites = sres.DiskWrites
	return res, nil
}

// replayServer drives the time-ordered server traffic into the server
// cache: the single-shared-tier instance of replayTierOps (the server
// is the bottom cache, so purges are not forwarded anywhere).
func replayServer(ops []serverOp, r *resolved, cfg Config, onDisk func(id int32, write bool, t trace.Time)) *Result {
	return replayTierOps(ops, r, cfg, onDisk, nil)
}

// TwoLevelSimulate builds one tape per machine trace and runs
// TwoLevelSimulateTapes.
func TwoLevelSimulate(machines [][]trace.Event, cfg TwoLevelConfig) (*TwoLevelResult, error) {
	if len(machines) == 0 {
		return nil, fmt.Errorf("cachesim: two-level simulation needs at least one machine")
	}
	tapes := make([]*xfer.Tape, len(machines))
	errs := make([]error, len(machines))
	runParallel(len(machines), func(m int) error {
		tapes[m], errs[m] = xfer.NewTape(machines[m])
		return nil
	})
	for m, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cachesim: machine %d trace malformed: %v", m, err)
		}
	}
	return TwoLevelSimulateTapes(tapes, cfg)
}
