package cachesim

// 2Q (Johnson & Shasha, VLDB 1994), the full version. First-touch blocks
// enter a probationary FIFO (A1in). When an A1in block leaves the cache,
// its identity is remembered in a ghost FIFO (A1out); a re-insertion that
// hits the ghost list goes straight onto the main LRU list (Am), so only
// blocks re-referenced beyond the probationary window earn LRU treatment.
// Hits inside A1in deliberately do not reorder it — a correlated burst of
// accesses to a brand-new block is not evidence of long-term value.
//
// Tuning constants follow the paper: Kin (A1in's nominal share) is 1/4 of
// the capacity, Kout (ghost memory) is 1/2.
//
// The cache cannot tell the policy whether a remove is an eviction or a
// purge, so 2Q records every removed A1in block in A1out. For purged
// (dead-data) blocks the ghost is useless but harmless: the dense block
// IDs of deleted file data are never referenced again.

const (
	qA1in = iota
	qAm
)

type twoQPolicy struct {
	a1in  blockList // probationary FIFO: front = newest
	am    blockList // main LRU list
	a1out ghostList // identities of departed A1in blocks
	kin   int
	kout  int
}

func newTwoQPolicy(capacity int) *twoQPolicy {
	if capacity < 1 {
		capacity = 1
	}
	kin := capacity / 4
	if kin < 1 {
		kin = 1
	}
	kout := capacity / 2
	if kout < 1 {
		kout = 1
	}
	return &twoQPolicy{kin: kin, kout: kout}
}

func (p *twoQPolicy) insert(b *block) {
	if p.a1out.remove(b.id) {
		b.slot = qAm
		p.am.pushFront(b)
		return
	}
	b.slot = qA1in
	p.a1in.pushFront(b)
}

func (p *twoQPolicy) access(b *block) {
	if b.slot == qAm {
		p.am.moveToFront(b)
	}
	// A1in hits do not reorder the FIFO (see the package comment).
}

func (p *twoQPolicy) remove(b *block) {
	if b.slot == qA1in {
		p.a1in.remove(b)
		p.a1out.pushFront(b.id)
		for p.a1out.len() > p.kout {
			p.a1out.dropOldest()
		}
		return
	}
	p.am.remove(b)
}

// victim drains A1in while it holds more than its Kin share (or while Am
// is empty), otherwise evicts the Am tail.
func (p *twoQPolicy) victim() *block {
	if (p.a1in.n > p.kin || p.am.n == 0) && p.a1in.tail != nil {
		return p.a1in.tail
	}
	if p.am.tail != nil {
		return p.am.tail
	}
	return p.a1in.tail
}

func (p *twoQPolicy) len() int { return p.a1in.n + p.am.n }
