package replacertest

// Naive reference implementations of the replacement policies, written
// against plain slices and maps — no intrusive lists, no frame recycling,
// nothing shared with the production code in package cachesim. They are
// deliberately O(n) per operation: the point is that they are easy to
// audit against the published algorithms, so a differential run against
// the production policy checks the fast data structures without trusting
// them. Each mirrors its production counterpart's documented parameter
// choices (segment shares, ghost bounds, adaptation deltas) exactly;
// anything less and the oracle tests could only compare curves loosely
// instead of pinning hit counts and eviction orders bit-for-bit.
//
// In every list the slice front (index 0) is the most recent end; victims
// come from the back.

// NewReference returns the naive implementation of the named policy, or
// nil if the policy has no reference (Clock, Random, and TinyLFU are
// covered by the conformance suite and behavioral tests instead; a
// reference TinyLFU would have to reimplement the exact sketch, which
// tests the constant, not the algorithm).
func NewReference(name string, capacity int) Policy {
	if capacity < 1 {
		capacity = 1
	}
	switch name {
	case "lru":
		return &refList{lru: true}
	case "fifo":
		return &refList{}
	case "arc":
		return newRefARC(capacity)
	case "2q":
		return newRef2Q(capacity)
	case "slru":
		return newRefSLRU(capacity)
	case "lirs":
		return newRefLIRS(capacity)
	}
	return nil
}

// slice helpers

func indexOf(s []int32, id int32) int {
	for i, v := range s {
		if v == id {
			return i
		}
	}
	return -1
}

func removeAt(s []int32, i int) []int32 {
	return append(s[:i], s[i+1:]...)
}

func removeID(s []int32, id int32) ([]int32, bool) {
	if i := indexOf(s, id); i >= 0 {
		return removeAt(s, i), true
	}
	return s, false
}

func prepend(s []int32, id int32) []int32 {
	return append([]int32{id}, s...)
}

func last(s []int32) (int32, bool) {
	if len(s) == 0 {
		return 0, false
	}
	return s[len(s)-1], true
}

// refList is LRU (move to front on access) or FIFO (insertion order).
type refList struct {
	items []int32
	lru   bool
}

func (p *refList) Insert(id int32) {
	if indexOf(p.items, id) < 0 {
		p.items = prepend(p.items, id)
	}
}

func (p *refList) Access(id int32) {
	if !p.lru {
		return
	}
	if s, ok := removeID(p.items, id); ok {
		p.items = prepend(s, id)
	}
}

func (p *refList) Remove(id int32) { p.items, _ = removeID(p.items, id) }

func (p *refList) Victim() (int32, bool) { return last(p.items) }

func (p *refList) Len() int { return len(p.items) }

// refSLRU: probationary + protected segments, protected capped at 4/5.
type refSLRU struct {
	prob, prot []int32
	protCap    int
}

func newRefSLRU(capacity int) *refSLRU {
	pc := capacity * 4 / 5
	if pc >= capacity {
		pc = capacity - 1
	}
	return &refSLRU{protCap: pc}
}

func (p *refSLRU) resident(id int32) bool {
	return indexOf(p.prob, id) >= 0 || indexOf(p.prot, id) >= 0
}

func (p *refSLRU) Insert(id int32) {
	if p.resident(id) {
		return
	}
	p.prob = prepend(p.prob, id)
}

func (p *refSLRU) Access(id int32) {
	if s, ok := removeID(p.prot, id); ok {
		p.prot = prepend(s, id)
		return
	}
	s, ok := removeID(p.prob, id)
	if !ok {
		return
	}
	p.prob = s
	p.prot = prepend(p.prot, id)
	for len(p.prot) > p.protCap {
		d := p.prot[len(p.prot)-1]
		p.prot = p.prot[:len(p.prot)-1]
		p.prob = prepend(p.prob, d)
	}
}

func (p *refSLRU) Remove(id int32) {
	if s, ok := removeID(p.prob, id); ok {
		p.prob = s
		return
	}
	p.prot, _ = removeID(p.prot, id)
}

func (p *refSLRU) Victim() (int32, bool) {
	if v, ok := last(p.prob); ok {
		return v, true
	}
	return last(p.prot)
}

func (p *refSLRU) Len() int { return len(p.prob) + len(p.prot) }

// ref2Q: probationary FIFO A1in, main LRU Am, ghost FIFO A1out;
// Kin = capacity/4, Kout = capacity/2 (each at least 1). Every removed
// A1in block is ghosted, as in the production policy.
type ref2Q struct {
	a1in, am, a1out []int32
	kin, kout       int
}

func newRef2Q(capacity int) *ref2Q {
	kin := capacity / 4
	if kin < 1 {
		kin = 1
	}
	kout := capacity / 2
	if kout < 1 {
		kout = 1
	}
	return &ref2Q{kin: kin, kout: kout}
}

func (p *ref2Q) resident(id int32) bool {
	return indexOf(p.a1in, id) >= 0 || indexOf(p.am, id) >= 0
}

func (p *ref2Q) Insert(id int32) {
	if p.resident(id) {
		return
	}
	if s, ok := removeID(p.a1out, id); ok {
		p.a1out = s
		p.am = prepend(p.am, id)
		return
	}
	p.a1in = prepend(p.a1in, id)
}

func (p *ref2Q) Access(id int32) {
	if s, ok := removeID(p.am, id); ok {
		p.am = prepend(s, id)
	}
	// A1in hits do not reorder the FIFO.
}

func (p *ref2Q) Remove(id int32) {
	if s, ok := removeID(p.a1in, id); ok {
		p.a1in = s
		p.a1out = prepend(p.a1out, id)
		for len(p.a1out) > p.kout {
			p.a1out = p.a1out[:len(p.a1out)-1]
		}
		return
	}
	p.am, _ = removeID(p.am, id)
}

func (p *ref2Q) Victim() (int32, bool) {
	if (len(p.a1in) > p.kin || len(p.am) == 0) && len(p.a1in) > 0 {
		return last(p.a1in)
	}
	if v, ok := last(p.am); ok {
		return v, true
	}
	return last(p.a1in)
}

func (p *ref2Q) Len() int { return len(p.a1in) + len(p.am) }

// refARC: T1/T2 resident lists, B1/B2 ghosts, adaptation target p, with
// the same seam-forced departures as the production policy (ties evict
// from T1; every remove ghosts the block).
type refARC struct {
	t1, t2, b1, b2 []int32
	c, p           int
}

func newRefARC(capacity int) *refARC { return &refARC{c: capacity} }

func (a *refARC) resident(id int32) bool {
	return indexOf(a.t1, id) >= 0 || indexOf(a.t2, id) >= 0
}

func (a *refARC) trimGhosts() {
	for len(a.t1)+len(a.b1) > a.c && len(a.b1) > 0 {
		a.b1 = a.b1[:len(a.b1)-1]
	}
	for len(a.t1)+len(a.t2)+len(a.b1)+len(a.b2) > 2*a.c {
		if len(a.b2) > 0 {
			a.b2 = a.b2[:len(a.b2)-1]
		} else if len(a.b1) > 0 {
			a.b1 = a.b1[:len(a.b1)-1]
		} else {
			break
		}
	}
}

func (a *refARC) Insert(id int32) {
	if a.resident(id) {
		return
	}
	// The adaptation delta is computed while the ghost list still holds
	// the hit entry, exactly as the production policy does.
	if i := indexOf(a.b1, id); i >= 0 {
		delta := 1
		if len(a.b2) > len(a.b1) {
			delta = len(a.b2) / len(a.b1)
		}
		if a.p += delta; a.p > a.c {
			a.p = a.c
		}
		a.b1 = removeAt(a.b1, i)
		a.t2 = prepend(a.t2, id)
	} else if i := indexOf(a.b2, id); i >= 0 {
		delta := 1
		if len(a.b1) > len(a.b2) {
			delta = len(a.b1) / len(a.b2)
		}
		if a.p -= delta; a.p < 0 {
			a.p = 0
		}
		a.b2 = removeAt(a.b2, i)
		a.t2 = prepend(a.t2, id)
	} else {
		a.t1 = prepend(a.t1, id)
	}
	a.trimGhosts()
}

func (a *refARC) Access(id int32) {
	if s, ok := removeID(a.t1, id); ok {
		a.t1 = s
		a.t2 = prepend(a.t2, id)
		return
	}
	if s, ok := removeID(a.t2, id); ok {
		a.t2 = prepend(s, id)
	}
}

func (a *refARC) Remove(id int32) {
	if s, ok := removeID(a.t1, id); ok {
		a.t1 = s
		a.b1 = prepend(a.b1, id)
	} else if s, ok := removeID(a.t2, id); ok {
		a.t2 = s
		a.b2 = prepend(a.b2, id)
	} else {
		return
	}
	a.trimGhosts()
}

func (a *refARC) Victim() (int32, bool) {
	if len(a.t1) > 0 && (len(a.t1) > a.p || len(a.t2) == 0) {
		return last(a.t1)
	}
	if v, ok := last(a.t2); ok {
		return v, true
	}
	return last(a.t1)
}

func (a *refARC) Len() int { return len(a.t1) + len(a.t2) }

// refLIRS: stack S (front = top), queue Q of resident HIR blocks
// (front = newest), ghost order list (front = oldest). LIR set sized
// capacity minus a 1% HIR share, ghosts bounded at 2x capacity.
type refLIRS struct {
	s, q, ghosts []int32
	state        map[int32]uint8 // rLIR/rHIRres/rGhost
	nLIR         int
	lirCap       int
	ghostCap     int
}

const (
	rLIR uint8 = iota
	rHIRres
	rGhost
)

func newRefLIRS(capacity int) *refLIRS {
	hirCap := capacity / 100
	if hirCap < 1 {
		hirCap = 1
	}
	return &refLIRS{
		state:    map[int32]uint8{},
		lirCap:   capacity - hirCap,
		ghostCap: 2 * capacity,
	}
}

func (p *refLIRS) resident(id int32) bool {
	st, ok := p.state[id]
	return ok && st != rGhost
}

func (p *refLIRS) prune() {
	for len(p.s) > 0 {
		bot := p.s[len(p.s)-1]
		if p.state[bot] == rLIR {
			return
		}
		p.s = p.s[:len(p.s)-1]
		if p.state[bot] == rGhost {
			delete(p.state, bot)
			p.ghosts, _ = removeID(p.ghosts, bot)
		}
	}
}

func (p *refLIRS) moveToTop(id int32) {
	p.s, _ = removeID(p.s, id)
	p.s = prepend(p.s, id)
}

func (p *refLIRS) demoteBottomLIR() {
	for i := len(p.s) - 1; i >= 0; i-- {
		id := p.s[i]
		if p.state[id] != rLIR {
			continue
		}
		p.s = removeAt(p.s, i)
		p.state[id] = rHIRres
		p.nLIR--
		p.q = prepend(p.q, id)
		p.prune()
		return
	}
}

func (p *refLIRS) dropOldestGhost() {
	if len(p.ghosts) == 0 {
		return
	}
	id := p.ghosts[0]
	p.ghosts = p.ghosts[1:]
	p.s, _ = removeID(p.s, id)
	delete(p.state, id)
	p.prune()
}

func (p *refLIRS) Insert(id int32) {
	if p.resident(id) {
		return
	}
	if p.state[id] == rGhost && indexOf(p.ghosts, id) >= 0 {
		p.ghosts, _ = removeID(p.ghosts, id)
		p.state[id] = rLIR
		p.nLIR++
		p.moveToTop(id)
		if p.nLIR > p.lirCap {
			p.demoteBottomLIR()
		}
		p.prune()
		return
	}
	if p.nLIR < p.lirCap {
		p.state[id] = rLIR
		p.nLIR++
		p.s = prepend(p.s, id)
		return
	}
	p.state[id] = rHIRres
	p.s = prepend(p.s, id)
	p.q = prepend(p.q, id)
}

func (p *refLIRS) Access(id int32) {
	switch st, ok := p.state[id], p.resident(id); {
	case !ok:
		return
	case st == rLIR:
		wasBottom := len(p.s) > 0 && p.s[len(p.s)-1] == id
		p.moveToTop(id)
		if wasBottom {
			p.prune()
		}
	case st == rHIRres:
		if indexOf(p.s, id) >= 0 {
			p.state[id] = rLIR
			p.nLIR++
			p.moveToTop(id)
			p.q, _ = removeID(p.q, id)
			if p.nLIR > p.lirCap {
				p.demoteBottomLIR()
			}
			p.prune()
			return
		}
		p.s = prepend(p.s, id)
		p.q, _ = removeID(p.q, id)
		p.q = prepend(p.q, id)
	}
}

func (p *refLIRS) Remove(id int32) {
	st, ok := p.state[id]
	if !ok || st == rGhost {
		return
	}
	if st == rHIRres {
		p.q, _ = removeID(p.q, id)
		if indexOf(p.s, id) >= 0 {
			p.state[id] = rGhost
			p.ghosts = append(p.ghosts, id)
			if len(p.ghosts) > p.ghostCap {
				p.dropOldestGhost()
			}
			return
		}
		delete(p.state, id)
		return
	}
	p.s, _ = removeID(p.s, id)
	delete(p.state, id)
	p.nLIR--
	p.prune()
}

func (p *refLIRS) Victim() (int32, bool) {
	if v, ok := last(p.q); ok {
		return v, true
	}
	for i := len(p.s) - 1; i >= 0; i-- {
		if p.state[p.s[i]] == rLIR {
			return p.s[i], true
		}
	}
	return 0, false
}

func (p *refLIRS) Len() int {
	n := 0
	for _, st := range p.state {
		if st != rGhost {
			n++
		}
	}
	return n
}
