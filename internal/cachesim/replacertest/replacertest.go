// Package replacertest is the shared conformance suite for cache
// replacement policies, the analogue of internal/trace/sourcetest for the
// replacer seam. Every policy the simulator ships — the classic four and
// the modern zoo — runs the same checks, so the policy contract is pinned
// in one place:
//
//   - Victim always returns a currently resident block (ok=false only on
//     an empty cache), and probing it never changes Len or residency of
//     any block the caller knows about;
//   - Len tracks Insert/Remove exactly: it equals the number of distinct
//     resident IDs after every operation;
//   - under the victim-then-insert discipline the policy never holds more
//     than capacity blocks, and no eviction is needed while under
//     capacity;
//   - two instances built with the same seed replay the same reference
//     string to identical hit counts and identical eviction sequences
//     (bit-determinism, the property every sweep in the repo leans on);
//   - adversarial operation orders — inserts of resident IDs, accesses
//     and removes of non-resident IDs, victim probes at arbitrary points
//     — never panic and never corrupt the invariants above.
//
// The package also carries naive reference implementations of the zoo
// policies (see reference.go), built on plain slices and maps with none
// of the intrusive-list machinery of the production policies; the
// differential oracle tests in package cachesim pin the production hit
// counts against them on seeded workloads.
package replacertest

import "testing"

// Policy is the operation-level face of a replacement policy, the
// structural interface of cachesim.Policy (declared here so the suite has
// no dependency on the package under test). Implementations must ignore
// invalid operations: inserting a resident ID, or accessing/removing a
// non-resident one, is a no-op.
type Policy interface {
	Insert(id int32)
	Access(id int32)
	Remove(id int32)
	Victim() (int32, bool)
	Len() int
}

// Factory builds a fresh policy instance for a cache of capacity blocks.
// The seed feeds randomized policies and must fully determine behavior.
type Factory func(capacity int, seed int64) Policy

// capacities exercised by every suite check: degenerate, tiny (forces
// constant eviction), and large enough that the zoo policies' segments
// and ghost lists all have room to mean something.
var capacities = []int{1, 2, 3, 7, 64, 300}

// Run drives policies built by mk through every conformance check.
func Run(t *testing.T, mk Factory) {
	t.Helper()

	t.Run("empty", func(t *testing.T) {
		p := mk(8, 1)
		if n := p.Len(); n != 0 {
			t.Fatalf("fresh policy Len = %d, want 0", n)
		}
		if v, ok := p.Victim(); ok {
			t.Fatalf("fresh policy Victim = (%d, true), want ok=false", v)
		}
		// Invalid operations on an empty policy must be no-ops.
		p.Access(3)
		p.Remove(7)
		if n := p.Len(); n != 0 {
			t.Fatalf("Len after invalid ops = %d, want 0", n)
		}
	})

	t.Run("under-capacity", func(t *testing.T) {
		// Fills never evict below capacity, and victim probes on a
		// partial cache return residents without changing occupancy.
		const cap = 16
		p := mk(cap, 1)
		resident := map[int32]bool{}
		for id := int32(0); id < cap; id++ {
			p.Insert(id)
			resident[id] = true
			if n := p.Len(); n != len(resident) {
				t.Fatalf("Len after %d inserts = %d, want %d", id+1, n, len(resident))
			}
			v, ok := p.Victim()
			if !ok {
				t.Fatalf("Victim with %d resident returned ok=false", len(resident))
			}
			if !resident[v] {
				t.Fatalf("Victim returned non-resident id %d", v)
			}
			if n := p.Len(); n != len(resident) {
				t.Fatalf("Victim probe changed Len: %d, want %d", n, len(resident))
			}
		}
	})

	for _, wl := range Workloads() {
		wl := wl
		t.Run("discipline/"+wl.Name, func(t *testing.T) {
			for _, cap := range capacities {
				Drive(t, mk(cap, 1), cap, wl.Refs)
			}
		})
	}

	t.Run("determinism", func(t *testing.T) {
		for _, wl := range Workloads() {
			for _, cap := range capacities {
				h1, e1 := Drive(t, mk(cap, 42), cap, wl.Refs)
				h2, e2 := Drive(t, mk(cap, 42), cap, wl.Refs)
				if h1 != h2 {
					t.Fatalf("%s cap %d: reseeded rerun hit counts differ: %d vs %d", wl.Name, cap, h1, h2)
				}
				if len(e1) != len(e2) {
					t.Fatalf("%s cap %d: eviction counts differ: %d vs %d", wl.Name, cap, len(e1), len(e2))
				}
				for i := range e1 {
					if e1[i] != e2[i] {
						t.Fatalf("%s cap %d: eviction %d differs: %d vs %d", wl.Name, cap, i, e1[i], e2[i])
					}
				}
			}
		}
	})

	t.Run("adversarial", func(t *testing.T) {
		for _, cap := range capacities {
			for seed := int64(1); seed <= 3; seed++ {
				adversarial(t, mk, cap, seed)
			}
		}
	})
}

// Drive replays a reference string through p under the simulator's
// victim-then-insert discipline, checking the residency and occupancy
// invariants at every step, and returns the hit count and the eviction
// sequence. It is exported so differential oracle tests can replay the
// same workload through a production policy and a reference one.
func Drive(tb testing.TB, p Policy, capacity int, refs []int32) (hits int64, evictions []int32) {
	tb.Helper()
	resident := map[int32]bool{}
	for i, id := range refs {
		if resident[id] {
			p.Access(id)
			hits++
		} else {
			for p.Len() >= capacity {
				v, ok := p.Victim()
				if !ok {
					tb.Fatalf("ref %d: Victim ok=false with %d resident", i, p.Len())
				}
				if !resident[v] {
					tb.Fatalf("ref %d: Victim returned non-resident id %d", i, v)
				}
				p.Remove(v)
				delete(resident, v)
				evictions = append(evictions, v)
			}
			p.Insert(id)
			resident[id] = true
		}
		if n := p.Len(); n != len(resident) {
			tb.Fatalf("ref %d: Len = %d, want %d", i, n, len(resident))
		}
		if n := p.Len(); n > capacity {
			tb.Fatalf("ref %d: occupancy %d exceeds capacity %d", i, n, capacity)
		}
	}
	return hits, evictions
}

// adversarial throws a seeded soup of operations at the policy — stale
// accesses and removes, double inserts, victim probes — and checks that
// nothing panics and the Len/residency bookkeeping holds throughout.
func adversarial(t *testing.T, mk Factory, capacity int, seed int64) {
	t.Helper()
	p := mk(capacity, seed)
	r := rng{s: uint64(seed)*0x9e3779b97f4a7c15 + uint64(capacity)}
	resident := map[int32]bool{}
	universe := int32(4 * capacity)
	for step := 0; step < 4000; step++ {
		id := int32(r.intn(int(universe)))
		switch r.intn(10) {
		case 0, 1, 2, 3: // insert (with discipline; may target a resident id)
			if !resident[id] {
				for p.Len() >= capacity {
					v, ok := p.Victim()
					if !ok || !resident[v] {
						t.Fatalf("step %d: bad victim (%d, %v)", step, v, ok)
					}
					p.Remove(v)
					delete(resident, v)
				}
			}
			p.Insert(id)
			resident[id] = true
		case 4, 5, 6: // access, resident or not
			p.Access(id)
		case 7, 8: // remove, resident or not
			p.Remove(id)
			delete(resident, id)
		default: // victim probe
			v, ok := p.Victim()
			if ok && !resident[v] {
				t.Fatalf("step %d: Victim returned non-resident id %d", step, v)
			}
			if !ok && len(resident) > 0 {
				t.Fatalf("step %d: Victim ok=false with %d resident", step, len(resident))
			}
		}
		if n := p.Len(); n != len(resident) {
			t.Fatalf("step %d: Len = %d, want %d", step, n, len(resident))
		}
	}
}

// Workload is a named deterministic reference string.
type Workload struct {
	Name string
	Refs []int32
}

// Workloads returns the suite's reference strings: a pure sequential
// loop (LRU's worst case), a hot/cold mix (the zoo's best case), and a
// working-set shift with a one-shot scan through the middle (what the
// scan-resistant policies exist for).
func Workloads() []Workload {
	const n = 6000
	loop := make([]int32, n)
	for i := range loop {
		loop[i] = int32(i % 96)
	}

	r := rng{s: 0x5eed}
	hot := make([]int32, n)
	for i := range hot {
		if r.intn(4) < 3 {
			hot[i] = int32(r.intn(24)) // hot set
		} else {
			hot[i] = 100 + int32(r.intn(900)) // cold tail
		}
	}

	shift := make([]int32, 0, n)
	for i := 0; i < 2000; i++ { // phase 1: small working set
		shift = append(shift, int32(r.intn(40)))
	}
	for i := 0; i < 1000; i++ { // one-shot scan
		shift = append(shift, 1000+int32(i))
	}
	for i := 0; i < 2000; i++ { // phase 2: shifted working set
		shift = append(shift, 40+int32(r.intn(40)))
	}

	return []Workload{
		{Name: "loop", Refs: loop},
		{Name: "hotcold", Refs: hot},
		{Name: "scanshift", Refs: shift},
	}
}

// rng is a tiny splitmix-style generator so the suite depends on nothing
// and every workload is bit-stable across runs.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int((r.next() >> 33) % uint64(n))
}
