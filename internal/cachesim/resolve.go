package cachesim

import (
	"sort"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/xfer"
)

// resolved is a tape's block-level view at one block size: every
// (file, block index) pair touched by any transfer is assigned a dense
// integer ID, and each transfer's accesses are flattened into one shared
// ID array. Replaying a configuration then needs no hashing at all — the
// cache is an array indexed by block ID — and the resolution is computed
// once per (tape, block size) and shared read-only by every
// configuration at that size (see Tape.Memo).
type resolved struct {
	blockSize int64
	// blockIdx and blockFile describe each dense block ID: the block
	// index within its file and the file's dense slot.
	blockIdx  []int64
	blockFile []int32
	// accessIDs[accessOff[i]:accessOff[i+1]] are the block IDs touched
	// by tape transfer i, in access order.
	accessOff []int64
	accessIDs []int32
	// fileBlocks lists each file slot's block IDs sorted ascending by
	// block index, so a purge scans only the doomed suffix — in a
	// deterministic order, unlike a map walk.
	fileBlocks [][]int32
	// opFile is parallel to the tape's ops: the file slot of an OpPurge,
	// or -1 when the purged file has no blocks on the tape at all (then
	// the purge cannot touch any cache).
	opFile []int32
}

// nBlocks returns the number of distinct blocks the tape references.
func (r *resolved) nBlocks() int { return len(r.blockIdx) }

// resolveTape computes the dense block-level view of a tape at one block
// size. blockSize must be positive.
func resolveTape(t *xfer.Tape, blockSize int64) *resolved {
	// The flattened access count is pure arithmetic over the transfers, so
	// accessIDs can be sized exactly up front.
	var nAccess int64
	for i := range t.Transfers {
		tr := &t.Transfers[i]
		nAccess += (tr.End()-1)/blockSize - tr.Offset/blockSize + 1
	}
	r := &resolved{
		blockSize: blockSize,
		accessOff: make([]int64, len(t.Transfers)+1),
		accessIDs: make([]int32, 0, nAccess),
	}
	ids := make(map[blockKey]int32)
	fileSlots := make(map[trace.FileID]int32)
	for i := range t.Transfers {
		tr := &t.Transfers[i]
		first := tr.Offset / blockSize
		last := (tr.End() - 1) / blockSize
		for idx := first; idx <= last; idx++ {
			key := blockKey{file: tr.File, idx: idx}
			id, ok := ids[key]
			if !ok {
				fs, ok := fileSlots[tr.File]
				if !ok {
					fs = int32(len(r.fileBlocks))
					fileSlots[tr.File] = fs
					r.fileBlocks = append(r.fileBlocks, nil)
				}
				id = int32(len(r.blockIdx))
				ids[key] = id
				r.blockIdx = append(r.blockIdx, idx)
				r.blockFile = append(r.blockFile, fs)
				r.fileBlocks[fs] = append(r.fileBlocks[fs], id)
			}
			r.accessIDs = append(r.accessIDs, id)
		}
		r.accessOff[i+1] = int64(len(r.accessIDs))
	}
	for _, fb := range r.fileBlocks {
		sort.Slice(fb, func(a, b int) bool { return r.blockIdx[fb[a]] < r.blockIdx[fb[b]] })
	}
	r.opFile = make([]int32, len(t.Ops))
	for i := range t.Ops {
		r.opFile[i] = -1
		if t.Ops[i].Kind == xfer.OpPurge {
			if fs, ok := fileSlots[t.Ops[i].File]; ok {
				r.opFile[i] = fs
			}
		}
	}
	return r
}

// resolvedFor returns the tape's resolution at blockSize, memoized on
// the tape so concurrent configurations share one copy.
func resolvedFor(t *xfer.Tape, blockSize int64) *resolved {
	return t.Memo(blockSize, func() any { return resolveTape(t, blockSize) }).(*resolved)
}
