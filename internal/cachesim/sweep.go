package cachesim

import (
	"runtime"
	"sync"

	"bsdtrace/internal/trace"
)

// runParallel executes jobs 0..n-1 on up to GOMAXPROCS workers and
// returns the first error. Simulations are pure functions of (events,
// config), so sweeps parallelize without affecting determinism.
func runParallel(n int, job func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := job(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}

// PolicySpec names one write-policy column of the paper's Table VI.
type PolicySpec struct {
	Name     string
	Write    WritePolicy
	Interval trace.Time
}

// PaperPolicies returns the four write policies of Table VI in the
// paper's column order: write-through, 30-second flush, 5-minute flush,
// delayed-write.
func PaperPolicies() []PolicySpec {
	return []PolicySpec{
		{Name: "Write-Through", Write: WriteThrough},
		{Name: "30 sec Flush", Write: FlushBack, Interval: 30 * trace.Second},
		{Name: "5 min Flush", Write: FlushBack, Interval: 5 * trace.Minute},
		{Name: "Delayed Write", Write: DelayedWrite},
	}
}

// PaperCacheSizes returns the cache sizes of Table VI: the 390-kbyte UNIX
// configuration and 1 through 16 megabytes.
func PaperCacheSizes() []int64 {
	return []int64{UnixCacheSize, 1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20}
}

// PaperBlockSizes returns the block sizes of Table VII: 1 through 32
// kbytes.
func PaperBlockSizes() []int64 {
	return []int64{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10}
}

// PaperBlockCacheSizes returns the cache sizes of Table VII: 400 kbytes
// and 2, 4, 8 megabytes.
func PaperBlockCacheSizes() []int64 {
	return []int64{400 << 10, 2 << 20, 4 << 20, 8 << 20}
}

// PolicySweep regenerates Table VI / Figure 5: miss ratio as a function of
// cache size and write policy at a fixed block size. The result is indexed
// [cacheSize][policy].
func PolicySweep(events []trace.Event, blockSize int64, cacheSizes []int64, policies []PolicySpec) ([][]*Result, error) {
	out := make([][]*Result, len(cacheSizes))
	for i := range out {
		out[i] = make([]*Result, len(policies))
	}
	err := runParallel(len(cacheSizes)*len(policies), func(k int) error {
		i, j := k/len(policies), k%len(policies)
		r, err := Simulate(events, Config{
			BlockSize:     blockSize,
			CacheSize:     cacheSizes[i],
			Write:         policies[j].Write,
			FlushInterval: policies[j].Interval,
		})
		if err != nil {
			return err
		}
		out[i][j] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BlockSizeSweep regenerates Table VII / Figure 6: disk I/Os as a function
// of block size and cache size under delayed-write. The result is indexed
// [blockSize][cacheSize]; Accesses[i] is the no-cache logical block access
// count for blockSizes[i] (the table's first column).
type BlockSizeSweepResult struct {
	BlockSizes []int64
	CacheSizes []int64
	Accesses   []int64
	Results    [][]*Result
}

// BlockSizeSweep runs the Table VII experiment.
func BlockSizeSweep(events []trace.Event, blockSizes, cacheSizes []int64) (*BlockSizeSweepResult, error) {
	out := &BlockSizeSweepResult{
		BlockSizes: blockSizes,
		CacheSizes: cacheSizes,
		Accesses:   make([]int64, len(blockSizes)),
		Results:    make([][]*Result, len(blockSizes)),
	}
	for i := range blockSizes {
		out.Results[i] = make([]*Result, len(cacheSizes))
	}
	err := runParallel(len(blockSizes)*len(cacheSizes), func(k int) error {
		i, j := k/len(cacheSizes), k%len(cacheSizes)
		r, err := Simulate(events, Config{
			BlockSize: blockSizes[i],
			CacheSize: cacheSizes[j],
			Write:     DelayedWrite,
		})
		if err != nil {
			return err
		}
		out.Results[i][j] = r
		out.Accesses[i] = r.LogicalAccesses
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PagingSweep regenerates Figure 7: delayed-write miss ratios across cache
// sizes with and without simulated program page-in. The result is indexed
// [cacheSize][0 = ignored, 1 = simulated].
func PagingSweep(events []trace.Event, blockSize int64, cacheSizes []int64) ([][2]*Result, error) {
	out := make([][2]*Result, len(cacheSizes))
	err := runParallel(len(cacheSizes)*2, func(k int) error {
		i, j := k/2, k%2
		r, err := Simulate(events, Config{
			BlockSize:      blockSize,
			CacheSize:      cacheSizes[i],
			Write:          DelayedWrite,
			SimulatePaging: j == 1,
		})
		if err != nil {
			return err
		}
		out[i][j] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ReplacementSweep runs ablation A1: all four replacement policies at one
// cache configuration, delayed-write.
func ReplacementSweep(events []trace.Event, blockSize, cacheSize int64, seed int64) (map[Replacement]*Result, error) {
	out := make(map[Replacement]*Result)
	for _, rp := range []Replacement{LRU, FIFO, Clock, Random} {
		r, err := Simulate(events, Config{
			BlockSize:   blockSize,
			CacheSize:   cacheSize,
			Write:       DelayedWrite,
			Replacement: rp,
			Seed:        seed,
		})
		if err != nil {
			return nil, err
		}
		out[rp] = r
	}
	return out, nil
}

// FlushIntervalSweep runs ablation A2: flush-back across a range of
// intervals, bracketed by write-through (interval → 0) and delayed-write
// (interval → ∞).
func FlushIntervalSweep(events []trace.Event, blockSize, cacheSize int64, intervals []trace.Time) ([]*Result, error) {
	out := make([]*Result, len(intervals))
	for i, iv := range intervals {
		r, err := Simulate(events, Config{
			BlockSize:     blockSize,
			CacheSize:     cacheSize,
			Write:         FlushBack,
			FlushInterval: iv,
		})
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}
