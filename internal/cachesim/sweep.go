package cachesim

import (
	"fmt"
	"runtime"
	"sync"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/xfer"
)

// runParallel executes jobs 0..n-1 on up to GOMAXPROCS workers and
// returns the first error. Simulations are pure functions of (tape,
// config), so sweeps parallelize without affecting determinism.
func runParallel(n int, job func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := job(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}

// sweepTape builds the throwaway tape behind the event-slice sweep
// entry points, wrapping scan errors the way Simulate does.
func sweepTape(events []trace.Event) (*xfer.Tape, error) {
	tape, err := xfer.NewTape(events)
	if err != nil {
		return nil, fmt.Errorf("cachesim: malformed trace: %v", err)
	}
	return tape, nil
}

// PolicySpec names one write-policy column of the paper's Table VI.
type PolicySpec struct {
	Name     string
	Write    WritePolicy
	Interval trace.Time
}

// PaperPolicies returns the four write policies of Table VI in the
// paper's column order: write-through, 30-second flush, 5-minute flush,
// delayed-write.
func PaperPolicies() []PolicySpec {
	return []PolicySpec{
		{Name: "Write-Through", Write: WriteThrough},
		{Name: "30 sec Flush", Write: FlushBack, Interval: 30 * trace.Second},
		{Name: "5 min Flush", Write: FlushBack, Interval: 5 * trace.Minute},
		{Name: "Delayed Write", Write: DelayedWrite},
	}
}

// PaperCacheSizes returns the cache sizes of Table VI: the 390-kbyte UNIX
// configuration and 1 through 16 megabytes.
func PaperCacheSizes() []int64 {
	return []int64{UnixCacheSize, 1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20}
}

// PaperBlockSizes returns the block sizes of Table VII: 1 through 32
// kbytes.
func PaperBlockSizes() []int64 {
	return []int64{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10}
}

// PaperBlockCacheSizes returns the cache sizes of Table VII: 400 kbytes
// and 2, 4, 8 megabytes.
func PaperBlockCacheSizes() []int64 {
	return []int64{400 << 10, 2 << 20, 4 << 20, 8 << 20}
}

// PolicySweepTape regenerates Table VI / Figure 5 from a tape: miss
// ratio as a function of cache size and write policy at a fixed block
// size. The result is indexed [cacheSize][policy].
func PolicySweepTape(tape *xfer.Tape, blockSize int64, cacheSizes []int64, policies []PolicySpec) ([][]*Result, error) {
	cfgs := make([]Config, 0, len(cacheSizes)*len(policies))
	for _, cs := range cacheSizes {
		for _, p := range policies {
			cfgs = append(cfgs, Config{
				BlockSize:     blockSize,
				CacheSize:     cs,
				Write:         p.Write,
				FlushInterval: p.Interval,
			})
		}
	}
	rs, err := MultiSimulate(tape, cfgs)
	if err != nil {
		return nil, err
	}
	out := make([][]*Result, len(cacheSizes))
	for i := range out {
		out[i] = rs[i*len(policies) : (i+1)*len(policies) : (i+1)*len(policies)]
	}
	return out, nil
}

// PolicySweep runs PolicySweepTape on a freshly built tape.
func PolicySweep(events []trace.Event, blockSize int64, cacheSizes []int64, policies []PolicySpec) ([][]*Result, error) {
	tape, err := sweepTape(events)
	if err != nil {
		return nil, err
	}
	return PolicySweepTape(tape, blockSize, cacheSizes, policies)
}

// BlockSizeSweepResult holds Table VII / Figure 6: disk I/Os as a
// function of block size and cache size under delayed-write. Results is
// indexed [blockSize][cacheSize]; Accesses[i] is the no-cache logical
// block access count for BlockSizes[i] (the table's first column).
type BlockSizeSweepResult struct {
	BlockSizes []int64
	CacheSizes []int64
	Accesses   []int64
	Results    [][]*Result
}

// BlockSizeSweepTape runs the Table VII experiment over a tape.
func BlockSizeSweepTape(tape *xfer.Tape, blockSizes, cacheSizes []int64) (*BlockSizeSweepResult, error) {
	cfgs := make([]Config, 0, len(blockSizes)*len(cacheSizes))
	for _, bs := range blockSizes {
		for _, cs := range cacheSizes {
			cfgs = append(cfgs, Config{BlockSize: bs, CacheSize: cs, Write: DelayedWrite})
		}
	}
	rs, err := MultiSimulate(tape, cfgs)
	if err != nil {
		return nil, err
	}
	out := &BlockSizeSweepResult{
		BlockSizes: blockSizes,
		CacheSizes: cacheSizes,
		Accesses:   make([]int64, len(blockSizes)),
		Results:    make([][]*Result, len(blockSizes)),
	}
	for i := range blockSizes {
		out.Results[i] = rs[i*len(cacheSizes) : (i+1)*len(cacheSizes) : (i+1)*len(cacheSizes)]
		out.Accesses[i] = out.Results[i][0].LogicalAccesses
	}
	return out, nil
}

// BlockSizeSweep runs BlockSizeSweepTape on a freshly built tape.
func BlockSizeSweep(events []trace.Event, blockSizes, cacheSizes []int64) (*BlockSizeSweepResult, error) {
	tape, err := sweepTape(events)
	if err != nil {
		return nil, err
	}
	return BlockSizeSweepTape(tape, blockSizes, cacheSizes)
}

// PagingSweepTape regenerates Figure 7 from a tape: delayed-write miss
// ratios across cache sizes with and without simulated program page-in.
// The result is indexed [cacheSize][0 = ignored, 1 = simulated].
func PagingSweepTape(tape *xfer.Tape, blockSize int64, cacheSizes []int64) ([][2]*Result, error) {
	cfgs := make([]Config, 0, len(cacheSizes)*2)
	for _, cs := range cacheSizes {
		for j := 0; j < 2; j++ {
			cfgs = append(cfgs, Config{
				BlockSize:      blockSize,
				CacheSize:      cs,
				Write:          DelayedWrite,
				SimulatePaging: j == 1,
			})
		}
	}
	rs, err := MultiSimulate(tape, cfgs)
	if err != nil {
		return nil, err
	}
	out := make([][2]*Result, len(cacheSizes))
	for i := range out {
		out[i][0] = rs[i*2]
		out[i][1] = rs[i*2+1]
	}
	return out, nil
}

// PagingSweep runs PagingSweepTape on a freshly built tape.
func PagingSweep(events []trace.Event, blockSize int64, cacheSizes []int64) ([][2]*Result, error) {
	tape, err := sweepTape(events)
	if err != nil {
		return nil, err
	}
	return PagingSweepTape(tape, blockSize, cacheSizes)
}

// replacementOrder fixes the policy order of ReplacementSweep.
var replacementOrder = []Replacement{LRU, FIFO, Clock, Random}

// ReplacementSweepTape runs ablation A1 over a tape: all four
// replacement policies at one cache configuration, delayed-write.
func ReplacementSweepTape(tape *xfer.Tape, blockSize, cacheSize int64, seed int64) (map[Replacement]*Result, error) {
	cfgs := make([]Config, 0, len(replacementOrder))
	for _, rp := range replacementOrder {
		cfgs = append(cfgs, Config{
			BlockSize:   blockSize,
			CacheSize:   cacheSize,
			Write:       DelayedWrite,
			Replacement: rp,
			Seed:        seed,
		})
	}
	rs, err := MultiSimulate(tape, cfgs)
	if err != nil {
		return nil, err
	}
	out := make(map[Replacement]*Result, len(replacementOrder))
	for i, rp := range replacementOrder {
		out[rp] = rs[i]
	}
	return out, nil
}

// ReplacementSweep runs ReplacementSweepTape on a freshly built tape.
func ReplacementSweep(events []trace.Event, blockSize, cacheSize int64, seed int64) (map[Replacement]*Result, error) {
	tape, err := sweepTape(events)
	if err != nil {
		return nil, err
	}
	return ReplacementSweepTape(tape, blockSize, cacheSize, seed)
}

// FlushIntervalSweepTape runs ablation A2 over a tape: flush-back across
// a range of intervals, bracketed by write-through (interval → 0) and
// delayed-write (interval → ∞).
func FlushIntervalSweepTape(tape *xfer.Tape, blockSize, cacheSize int64, intervals []trace.Time) ([]*Result, error) {
	cfgs := make([]Config, len(intervals))
	for i, iv := range intervals {
		cfgs[i] = Config{
			BlockSize:     blockSize,
			CacheSize:     cacheSize,
			Write:         FlushBack,
			FlushInterval: iv,
		}
	}
	return MultiSimulate(tape, cfgs)
}

// FlushIntervalSweep runs FlushIntervalSweepTape on a freshly built tape.
func FlushIntervalSweep(events []trace.Event, blockSize, cacheSize int64, intervals []trace.Time) ([]*Result, error) {
	tape, err := sweepTape(events)
	if err != nil {
		return nil, err
	}
	return FlushIntervalSweepTape(tape, blockSize, cacheSize, intervals)
}
