package cachesim

import "bsdtrace/internal/xfer"

// Footprint returns the tape's block footprint at one block size: the
// number of distinct bytes the cache could ever hold, counted in whole
// blocks. It is the natural upper rung for a cache-size sweep — any
// larger cache cannot miss less.
func Footprint(t *xfer.Tape, blockSize int64) int64 {
	return int64(resolvedFor(t, blockSize).nBlocks()) * blockSize
}

// FitCacheSizes builds a cache-size ladder scaled to the tape itself:
// the top rung is the smallest power-of-two multiple of blockSize that
// holds the tape's whole footprint, and each rung below halves it, down
// to at most n rungs (never below one block). The paper's fixed
// 390 KB..16 MB ladder suits the 1985 traces it was chosen for; a
// foreign trace imported through the adapt package may touch kilobytes
// or terabytes, and a fitted ladder keeps its Table VI sweep in the
// regime where the miss ratio actually moves.
func FitCacheSizes(t *xfer.Tape, blockSize int64, n int) []int64 {
	if n < 1 {
		n = 1
	}
	fp := Footprint(t, blockSize)
	top := blockSize
	for top < fp {
		top <<= 1
	}
	var down []int64
	for s := top; s >= blockSize && len(down) < n; s >>= 1 {
		down = append(down, s)
	}
	// Rungs were collected top-down; sweeps read small-to-large.
	for i, j := 0, len(down)-1; i < j; i, j = i+1, j-1 {
		down[i], down[j] = down[j], down[i]
	}
	return down
}
