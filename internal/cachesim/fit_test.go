package cachesim

import (
	"testing"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/xfer"
)

// fitTape builds a tape touching exactly the byte range [0, span) of one
// file, read sequentially.
func fitTape(t *testing.T, span int64) *xfer.Tape {
	t.Helper()
	tape, err := xfer.NewTape([]trace.Event{
		{Time: 0, Kind: trace.KindOpen, OpenID: 1, File: 1, User: 1, Mode: trace.ReadOnly, Size: span},
		{Time: 100, Kind: trace.KindClose, OpenID: 1, NewPos: span},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tape
}

func TestFootprint(t *testing.T) {
	// 10000 bytes at 4 KB blocks is three blocks.
	if got := Footprint(fitTape(t, 10000), 4096); got != 3*4096 {
		t.Errorf("Footprint = %d, want %d", got, 3*4096)
	}
	empty, err := xfer.NewTape(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := Footprint(empty, 4096); got != 0 {
		t.Errorf("empty Footprint = %d, want 0", got)
	}
}

func TestFitCacheSizes(t *testing.T) {
	// Footprint 3 blocks = 12288 bytes; top rung is the next power-of-two
	// multiple of the block size, 16384.
	tape := fitTape(t, 10000)
	got := FitCacheSizes(tape, 4096, 3)
	want := []int64{4096, 8192, 16384}
	if len(got) != len(want) {
		t.Fatalf("FitCacheSizes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FitCacheSizes = %v, want %v", got, want)
		}
	}

	// More rungs than the span allows: stops at one block.
	got = FitCacheSizes(tape, 4096, 10)
	if len(got) != 3 || got[0] != 4096 {
		t.Errorf("over-asked ladder = %v, want floor at one block with 3 rungs", got)
	}

	// The top rung always holds the whole footprint.
	big := fitTape(t, 1<<24) // 16 MB
	got = FitCacheSizes(big, 4096, 4)
	if top := got[len(got)-1]; top < Footprint(big, 4096) {
		t.Errorf("top rung %d below footprint %d", top, Footprint(big, 4096))
	}

	// An empty tape still yields a usable (single-block) ladder.
	empty, err := xfer.NewTape(nil)
	if err != nil {
		t.Fatal(err)
	}
	got = FitCacheSizes(empty, 4096, 4)
	if len(got) != 1 || got[0] != 4096 {
		t.Errorf("empty-tape ladder = %v, want [4096]", got)
	}
}

// TestFitCacheSizesSweep drives a fitted ladder through the Table VI
// sweep: the top rung must reach the compulsory-miss floor, and the miss
// ratio must be monotone nonincreasing up the ladder.
func TestFitCacheSizesSweep(t *testing.T) {
	// One file re-read three times: plenty of reuse for a cache to find.
	var events []trace.Event
	for i := 0; i < 3; i++ {
		events = append(events,
			trace.Event{Time: trace.Time(i * 1000), Kind: trace.KindOpen, OpenID: trace.OpenID(i + 1), File: 1, User: 1, Mode: trace.ReadOnly, Size: 1 << 16},
			trace.Event{Time: trace.Time(i*1000 + 500), Kind: trace.KindClose, OpenID: trace.OpenID(i + 1), NewPos: 1 << 16},
		)
	}
	tape, err := xfer.NewTape(events)
	if err != nil {
		t.Fatal(err)
	}
	sizes := FitCacheSizes(tape, 4096, 5)
	rs, err := PolicySweepTape(tape, 4096, sizes, []PolicySpec{{Name: "Delayed Write", Write: DelayedWrite}})
	if err != nil {
		t.Fatal(err)
	}
	prev := 2.0
	for i, row := range rs {
		mr := row[0].MissRatio()
		if mr > prev {
			t.Errorf("miss ratio rose from %v to %v at rung %d", prev, mr, i)
		}
		prev = mr
	}
	// 16 blocks read 3 times each = 48 accesses, 16 compulsory misses.
	if got, want := prev, 16.0/48; got != want {
		t.Errorf("top-rung miss ratio = %v, want compulsory floor %v", got, want)
	}
}
