package cachesim

// The policy-zoo sweeps: the Figure 5-7 experiments re-run across every
// replacement policy the simulator ships, instead of only the paper's
// LRU. Results are indexed [row][policy] with policies in
// AllReplacements order (classic four, then the modern zoo), so the
// first column of every sweep is the paper's own configuration.

import "bsdtrace/internal/xfer"

// ZooSweepTape re-runs the Figure 5 experiment across the zoo: miss
// ratio as a function of cache size under delayed-write, one column per
// replacement policy. Indexed [cacheSize][policy].
func ZooSweepTape(tape *xfer.Tape, blockSize int64, cacheSizes []int64, seed int64) ([][]*Result, error) {
	reps := AllReplacements()
	cfgs := make([]Config, 0, len(cacheSizes)*len(reps))
	for _, cs := range cacheSizes {
		for _, rp := range reps {
			cfgs = append(cfgs, Config{
				BlockSize:   blockSize,
				CacheSize:   cs,
				Write:       DelayedWrite,
				Replacement: rp,
				Seed:        seed,
			})
		}
	}
	rs, err := MultiSimulate(tape, cfgs)
	if err != nil {
		return nil, err
	}
	out := make([][]*Result, len(cacheSizes))
	for i := range out {
		out[i] = rs[i*len(reps) : (i+1)*len(reps) : (i+1)*len(reps)]
	}
	return out, nil
}

// ZooBlockSizeSweepTape re-runs the Figure 6 experiment across the zoo:
// disk I/Os as a function of block size at one cache size under
// delayed-write. Indexed [blockSize][policy].
func ZooBlockSizeSweepTape(tape *xfer.Tape, blockSizes []int64, cacheSize int64, seed int64) ([][]*Result, error) {
	reps := AllReplacements()
	cfgs := make([]Config, 0, len(blockSizes)*len(reps))
	for _, bs := range blockSizes {
		for _, rp := range reps {
			cfgs = append(cfgs, Config{
				BlockSize:   bs,
				CacheSize:   cacheSize,
				Write:       DelayedWrite,
				Replacement: rp,
				Seed:        seed,
			})
		}
	}
	rs, err := MultiSimulate(tape, cfgs)
	if err != nil {
		return nil, err
	}
	out := make([][]*Result, len(blockSizes))
	for i := range out {
		out[i] = rs[i*len(reps) : (i+1)*len(reps) : (i+1)*len(reps)]
	}
	return out, nil
}

// ZooPagingSweepTape re-runs the Figure 7 experiment across the zoo:
// miss ratio with program page-in simulated, under delayed-write.
// Indexed [cacheSize][policy].
func ZooPagingSweepTape(tape *xfer.Tape, blockSize int64, cacheSizes []int64, seed int64) ([][]*Result, error) {
	reps := AllReplacements()
	cfgs := make([]Config, 0, len(cacheSizes)*len(reps))
	for _, cs := range cacheSizes {
		for _, rp := range reps {
			cfgs = append(cfgs, Config{
				BlockSize:      blockSize,
				CacheSize:      cs,
				Write:          DelayedWrite,
				Replacement:    rp,
				Seed:           seed,
				SimulatePaging: true,
			})
		}
	}
	rs, err := MultiSimulate(tape, cfgs)
	if err != nil {
		return nil, err
	}
	out := make([][]*Result, len(cacheSizes))
	for i := range out {
		out[i] = rs[i*len(reps) : (i+1)*len(reps) : (i+1)*len(reps)]
	}
	return out, nil
}
