package cachesim

// Segmented LRU (Karedla, Love & Wherry, 1994). The cache is split into a
// probationary and a protected LRU segment. A block enters on probation;
// only a hit while on probation promotes it into the protected segment, so
// blocks referenced exactly once drain out of probation without ever
// displacing the proven re-reference set. The protected segment is capped
// at 4/5 of the capacity; overflow demotes its LRU tail back to the head
// of probation (it keeps a second chance, but competes with new arrivals
// again).
//
// Segment membership is tagged in the block's slot field (the intrusive
// field the random policy uses as a slice index; a block belongs to one
// policy at a time).

const (
	segProbation = iota
	segProtected
)

type slruPolicy struct {
	probation blockList
	protected blockList
	// protCap bounds the protected segment; capacity*4/5, and always at
	// least one below the total capacity so probation can hold a new
	// arrival.
	protCap int
}

func newSLRUPolicy(capacity int) *slruPolicy {
	if capacity < 1 {
		capacity = 1
	}
	pc := capacity * 4 / 5
	if pc >= capacity {
		pc = capacity - 1
	}
	return &slruPolicy{protCap: pc}
}

func (p *slruPolicy) insert(b *block) {
	b.slot = segProbation
	p.probation.pushFront(b)
}

func (p *slruPolicy) access(b *block) {
	if b.slot == segProtected {
		p.protected.moveToFront(b)
		return
	}
	// Promotion: probation hit moves to the protected head; protected
	// overflow demotes its tail to the probation head.
	p.probation.remove(b)
	b.slot = segProtected
	p.protected.pushFront(b)
	for p.protected.n > p.protCap {
		d := p.protected.tail
		p.protected.remove(d)
		d.slot = segProbation
		p.probation.pushFront(d)
	}
}

func (p *slruPolicy) remove(b *block) {
	if b.slot == segProtected {
		p.protected.remove(b)
	} else {
		p.probation.remove(b)
	}
}

// victim prefers the probation tail; an empty probation (everything
// promoted) falls back to the protected tail.
func (p *slruPolicy) victim() *block {
	if p.probation.tail != nil {
		return p.probation.tail
	}
	return p.protected.tail
}

func (p *slruPolicy) len() int { return p.probation.n + p.protected.n }
