package xfer

import "bsdtrace/internal/obs"

// transferSizeBuckets spans the transfer-size range the workload
// produces: a few hundred bytes (the administrative-file pokes) up to
// the megabyte-scale CAD listings. 256 B · 4ⁿ covers 256 B–64 MB in 10
// buckets.
var transferSizeBuckets = obs.ExpBuckets(256, 4, 10)

// PublishMetrics copies the tape's closing shape into the registry
// under prefix: op and transfer counts, outstanding opens, total bytes
// moved, and a transfer-size histogram. Every value is a deterministic
// function of the source trace, so tape metrics belong to the
// manifest's canonical (golden-diffed) surface. No-op when reg is nil
// or disabled.
func (t *Tape) PublishMetrics(reg *obs.Registry, prefix string) {
	if !reg.Enabled() {
		return
	}
	reg.Counter(prefix + ".ops").Set(int64(len(t.Ops)))
	reg.Counter(prefix + ".transfers").Set(int64(len(t.Transfers)))
	reg.Counter(prefix + ".unclosed").Set(int64(t.Unclosed))
	h := reg.Histogram(prefix+".transfer_bytes", transferSizeBuckets)
	var bytes int64
	for i := range t.Transfers {
		h.Record(float64(t.Transfers[i].Length))
		bytes += t.Transfers[i].Length
	}
	reg.Counter(prefix + ".bytes").Set(bytes)
}
