package xfer

import (
	"io"
	"sort"
	"sync"

	"bsdtrace/internal/trace"
)

// Tape is the reconstructed transfer stream of one trace, materialized as
// a reusable artifact: one Scanner pass over the events produces the
// complete sequence of transfers plus the interleaved control operations
// (clock advances and dead-data purges) that a consumer replaying the
// stream needs. Transfers are expressed in bytes, so a single tape is
// valid for every block size; the cache simulator builds a tape once and
// replays it into arbitrarily many cache configurations in parallel
// instead of re-reconstructing the same transfers for each one.
//
// The op sequence preserves the exact event order of the source trace:
// replaying the tape is observationally identical to feeding the events
// through a Scanner, with two reductions applied at build time. Events
// that produce no transfer or purge (opens, empty seeks and closes,
// zero-size execs) collapse into OpAdvance clock ticks, and consecutive
// clock ticks merge. An open's size information is not lost: the file
// size the cache layer would have known before each transfer is
// precomputed into OldSizes, so replay needs no per-file size tracking
// at all.
type Tape struct {
	// Ops is the replay sequence. Op times are nondecreasing.
	Ops []Op
	// Transfers holds the reconstructed runs (and synthesized exec
	// reads), indexed by Op.Xfer, in emission order.
	Transfers []Transfer
	// OldSizes is parallel to Transfers: the size of the transfer's file
	// as known just before the transfer, following the paper's cache
	// simulator rules (sizes are learned from open/create/truncate
	// events and from writes that extend a file; execs do not change
	// them). A write run ending beyond OldSizes[i] extends the file;
	// blocks wholly beyond it hold no valid data and need no fetch.
	OldSizes []int64
	// Unclosed is the number of opens still outstanding at the end of
	// the trace (their partial transfers are on the tape).
	Unclosed int

	mu   sync.Mutex
	memo map[int64]*memoEntry
}

type memoEntry struct {
	once sync.Once
	v    any
}

// OpKind discriminates tape operations.
type OpKind uint8

// Tape operations, in replay semantics:
const (
	// OpAdvance moves the clock to Op.Time. Every op implies a clock
	// advance; a bare OpAdvance stands for trace events that produced
	// nothing else, so that time-driven machinery (flush-back scans)
	// observes the same clock motion as the original event stream.
	OpAdvance OpKind = iota
	// OpPurge reports data death: every block of Op.File whose byte
	// range starts at or beyond Op.Size is dead (Size 0 kills the whole
	// file). Emitted for unlinks, truncations, and overwriting creates.
	OpPurge
	// OpTransfer replays Transfers[Op.Xfer].
	OpTransfer
	// OpExec replays Transfers[Op.Xfer], a synthesized whole-file read
	// of an executed binary, but only for consumers that simulate
	// program paging; others treat it as OpAdvance.
	OpExec
)

// Op is one tape operation.
type Op struct {
	Kind OpKind
	// Time is the operation's clock value (the source event's time).
	Time trace.Time
	// File is the dying file for OpPurge.
	File trace.FileID
	// Size is the survival boundary for OpPurge: bytes at or beyond it
	// are dead.
	Size int64
	// Xfer indexes Transfers for OpTransfer and OpExec.
	Xfer int32
}

// TapeBuilder constructs a Tape incrementally from a time-ordered event
// stream: Add each event as it arrives, then Finish. Its working state is
// one Scanner plus a per-file size map — bounded by the live file
// population, not the event count — so a tape can be built from a stream
// that never fits in memory. NewTape is exactly a TapeBuilder fed from a
// slice; the two produce identical tapes by construction.
type TapeBuilder struct {
	t     *Tape
	sizes map[trace.FileID]int64
	sc    *Scanner
	done  bool
}

// NewTapeBuilder creates an empty builder.
func NewTapeBuilder() *TapeBuilder {
	b := &TapeBuilder{
		t:     &Tape{},
		sizes: make(map[trace.FileID]int64),
		sc:    NewScanner(),
	}
	t := b.t
	b.sc.OnTransfer = func(tr Transfer) {
		t.Ops = append(t.Ops, Op{Kind: OpTransfer, Time: tr.Time, Xfer: int32(len(t.Transfers))})
		t.Transfers = append(t.Transfers, tr)
		old := b.sizes[tr.File]
		t.OldSizes = append(t.OldSizes, old)
		if tr.Write && tr.End() > old {
			b.sizes[tr.File] = tr.End()
		}
	}
	return b
}

// grow pre-sizes the tape for an expected event count. Ops is bounded by
// one per event plus one per transfer; a seek-free trace produces roughly
// one transfer per read/write pair, so half the event count is a close
// capacity guess for both slices.
func (b *TapeBuilder) grow(events int) {
	b.t.Ops = make([]Op, 0, events)
	b.t.Transfers = make([]Transfer, 0, events/2)
	b.t.OldSizes = make([]int64, 0, events/2)
}

// Add appends one event's tape operations. Events must arrive in time
// order.
func (b *TapeBuilder) Add(e trace.Event) {
	t := b.t
	n := len(t.Ops)
	switch e.Kind {
	case trace.KindCreate:
		// Overwrite: the file's previous blocks are dead.
		t.Ops = append(t.Ops, Op{Kind: OpPurge, Time: e.Time, File: e.File})
		b.sizes[e.File] = 0
	case trace.KindOpen:
		b.sizes[e.File] = e.Size
	case trace.KindTruncate:
		t.Ops = append(t.Ops, Op{Kind: OpPurge, Time: e.Time, File: e.File, Size: e.Size})
		b.sizes[e.File] = e.Size
	case trace.KindUnlink:
		t.Ops = append(t.Ops, Op{Kind: OpPurge, Time: e.Time, File: e.File})
		delete(b.sizes, e.File)
	case trace.KindExec:
		if e.Size > 0 {
			t.Ops = append(t.Ops, Op{Kind: OpExec, Time: e.Time, Xfer: int32(len(t.Transfers))})
			t.Transfers = append(t.Transfers, Transfer{
				Time: e.Time, Start: e.Time,
				File: e.File, User: e.User,
				Offset: 0, Length: e.Size,
				Mode: trace.ReadOnly,
			})
			t.OldSizes = append(t.OldSizes, b.sizes[e.File])
		}
	}
	b.sc.Feed(e)
	if len(t.Ops) == n {
		// The event produced nothing; keep its clock motion.
		if n > 0 && t.Ops[n-1].Kind == OpAdvance {
			t.Ops[n-1].Time = e.Time
		} else {
			t.Ops = append(t.Ops, Op{Kind: OpAdvance, Time: e.Time})
		}
	}
}

// Finish completes the tape. It returns the first malformed-stream
// complaint as an error, exactly as scanning would. Add calls after
// Finish are invalid; calling Finish again returns the same tape.
func (b *TapeBuilder) Finish() (*Tape, error) {
	if !b.done {
		b.done = true
		b.t.Unclosed = b.sc.Finish()
	}
	if errs := b.sc.Errs(); len(errs) > 0 {
		return nil, errs[0]
	}
	return b.t, nil
}

// NewTape reconstructs the transfer tape of a time-ordered trace. It
// returns the first malformed-stream complaint as an error, exactly as
// scanning would.
func NewTape(events []trace.Event) (*Tape, error) {
	b := NewTapeBuilder()
	b.grow(len(events))
	for _, e := range events {
		b.Add(e)
	}
	return b.Finish()
}

// BuildTape reconstructs the transfer tape of a time-ordered event
// stream, pulling one event at a time: the source's trace never needs to
// fit in memory (*trace.Reader is a Source, as is a merged shard stream).
func BuildTape(src trace.Source) (*Tape, error) {
	b := NewTapeBuilder()
	buf := trace.GetBatch()
	defer trace.PutBatch(buf)
	for {
		n, err := trace.ReadBatch(src, buf)
		if n == 0 {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		for _, e := range buf[:n] {
			b.Add(e)
		}
	}
	return b.Finish()
}

// Truncate returns the tape's prefix up to and including time at: every
// op with Time <= at, followed (if needed) by a bare clock advance to
// exactly at, so that time-driven machinery — flush-back scans scheduled
// at or before at — observes the same clock motion a full replay would
// have delivered by that instant. Replaying the truncated tape therefore
// reproduces the cache state of a crash at time at; the crash-injection
// layer uses independent truncated replays as the oracle for its
// single-pass sweep. Transfers and OldSizes are shared with the receiver
// (both are read-only); the memo cache and Unclosed are not carried over.
func (t *Tape) Truncate(at trace.Time) *Tape {
	n := sort.Search(len(t.Ops), func(i int) bool { return t.Ops[i].Time > at })
	ops := make([]Op, n, n+1)
	copy(ops, t.Ops[:n])
	if n == 0 || ops[n-1].Time < at {
		ops = append(ops, Op{Kind: OpAdvance, Time: at})
	}
	return &Tape{Ops: ops, Transfers: t.Transfers, OldSizes: t.OldSizes}
}

// Memo returns the value cached on the tape under key, building and
// caching it on first use. Consumers use it to attach derived read-only
// artifacts (the cache simulator keys per-block-size resolutions by
// block size) so that repeated sweeps over one tape pay the derivation
// cost once. Safe for concurrent use: concurrent callers with the same
// key share one build, while different keys build in parallel.
func (t *Tape) Memo(key int64, build func() any) any {
	t.mu.Lock()
	e := t.memo[key]
	if e == nil {
		if t.memo == nil {
			t.memo = make(map[int64]*memoEntry)
		}
		e = &memoEntry{}
		t.memo[key] = e
	}
	t.mu.Unlock()
	e.once.Do(func() { e.v = build() })
	return e.v
}
