package xfer

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"bsdtrace/internal/kernel"
	"bsdtrace/internal/trace"
	"bsdtrace/internal/vfs"
)

// collect runs events through a scanner and gathers everything.
type collected struct {
	transfers []Transfer
	opens     []OpenSummary
	deaths    []FileDeath
	gaps      []trace.Time
	unclosed  int
	errs      []error
}

func collect(t *testing.T, events []trace.Event) collected {
	t.Helper()
	var c collected
	s := NewScanner()
	s.OnTransfer = func(x Transfer) { c.transfers = append(c.transfers, x) }
	s.OnOpenEnd = func(o OpenSummary) { c.opens = append(c.opens, o) }
	s.OnDeath = func(d FileDeath) { c.deaths = append(c.deaths, d) }
	s.OnEventGap = func(g trace.Time) { c.gaps = append(c.gaps, g) }
	for _, e := range events {
		s.Feed(e)
	}
	c.unclosed = s.Finish()
	c.errs = s.Errs()
	return c
}

func TestWholeFileRead(t *testing.T) {
	events := []trace.Event{
		{Time: 100, Kind: trace.KindOpen, OpenID: 1, File: 5, User: 2, Mode: trace.ReadOnly, Size: 3000},
		{Time: 200, Kind: trace.KindClose, OpenID: 1, NewPos: 3000},
	}
	c := collect(t, events)
	if len(c.errs) != 0 {
		t.Fatalf("errs: %v", c.errs)
	}
	want := []Transfer{{
		Time: 200, Start: 100, File: 5, User: 2, OpenID: 1,
		Offset: 0, Length: 3000, Write: false, Mode: trace.ReadOnly,
	}}
	if !reflect.DeepEqual(c.transfers, want) {
		t.Errorf("transfers = %+v", c.transfers)
	}
	o := c.opens[0]
	if !o.WholeFile || !o.Sequential || o.Runs != 1 || o.Bytes != 3000 {
		t.Errorf("summary = %+v", o)
	}
	if o.SizeAtClose != 3000 {
		t.Errorf("SizeAtClose = %d", o.SizeAtClose)
	}
}

func TestPartialReadNotWholeFile(t *testing.T) {
	events := []trace.Event{
		{Time: 0, Kind: trace.KindOpen, OpenID: 1, File: 5, Mode: trace.ReadOnly, Size: 3000},
		{Time: 10, Kind: trace.KindClose, OpenID: 1, NewPos: 1000},
	}
	c := collect(t, events)
	o := c.opens[0]
	if o.WholeFile {
		t.Errorf("partial read classified whole-file")
	}
	if !o.Sequential {
		t.Errorf("partial sequential read not sequential")
	}
}

func TestSeekAppendIsSequentialNotWholeFile(t *testing.T) {
	// The mailbox-append idiom: open, seek to end, write, close.
	events := []trace.Event{
		{Time: 0, Kind: trace.KindOpen, OpenID: 1, File: 9, Mode: trace.WriteOnly, Size: 5000},
		{Time: 5, Kind: trace.KindSeek, OpenID: 1, OldPos: 0, NewPos: 5000},
		{Time: 10, Kind: trace.KindClose, OpenID: 1, NewPos: 5600},
	}
	c := collect(t, events)
	if len(c.transfers) != 1 {
		t.Fatalf("transfers = %+v", c.transfers)
	}
	x := c.transfers[0]
	if x.Offset != 5000 || x.Length != 600 || !x.Write {
		t.Errorf("transfer = %+v", x)
	}
	o := c.opens[0]
	if o.WholeFile || !o.Sequential || o.Runs != 1 || o.Seeks != 1 {
		t.Errorf("summary = %+v", o)
	}
	if o.SizeAtClose != 5600 {
		t.Errorf("SizeAtClose = %d, want extended 5600", o.SizeAtClose)
	}
}

func TestMultiRunNotSequential(t *testing.T) {
	events := []trace.Event{
		{Time: 0, Kind: trace.KindOpen, OpenID: 1, File: 9, Mode: trace.ReadOnly, Size: 10000},
		{Time: 5, Kind: trace.KindSeek, OpenID: 1, OldPos: 1000, NewPos: 8000},
		{Time: 10, Kind: trace.KindClose, OpenID: 1, NewPos: 9000},
	}
	c := collect(t, events)
	if len(c.transfers) != 2 {
		t.Fatalf("transfers = %+v", c.transfers)
	}
	if c.transfers[0].Offset != 0 || c.transfers[0].Length != 1000 {
		t.Errorf("run 1 = %+v", c.transfers[0])
	}
	if c.transfers[1].Offset != 8000 || c.transfers[1].Length != 1000 {
		t.Errorf("run 2 = %+v", c.transfers[1])
	}
	o := c.opens[0]
	if o.Sequential || o.WholeFile || o.Runs != 2 || o.Bytes != 2000 {
		t.Errorf("summary = %+v", o)
	}
}

func TestTrailingSeekKeepsSequential(t *testing.T) {
	events := []trace.Event{
		{Time: 0, Kind: trace.KindOpen, OpenID: 1, File: 9, Mode: trace.ReadOnly, Size: 10000},
		{Time: 5, Kind: trace.KindSeek, OpenID: 1, OldPos: 2000, NewPos: 9000},
		{Time: 10, Kind: trace.KindClose, OpenID: 1, NewPos: 9000},
	}
	c := collect(t, events)
	o := c.opens[0]
	if !o.Sequential || o.Runs != 1 {
		t.Errorf("trailing seek broke sequentiality: %+v", o)
	}
}

func TestCreateWholeFileWrite(t *testing.T) {
	events := []trace.Event{
		{Time: 0, Kind: trace.KindCreate, OpenID: 1, File: 3, User: 1, Mode: trace.WriteOnly},
		{Time: 50, Kind: trace.KindClose, OpenID: 1, NewPos: 2048},
	}
	c := collect(t, events)
	o := c.opens[0]
	if !o.WholeFile || !o.Created || o.Bytes != 2048 || o.SizeAtClose != 2048 {
		t.Errorf("summary = %+v", o)
	}
	if !c.transfers[0].Write {
		t.Errorf("create write classified as read")
	}
}

func TestZeroByteOpenClose(t *testing.T) {
	events := []trace.Event{
		{Time: 0, Kind: trace.KindOpen, OpenID: 1, File: 3, Mode: trace.ReadOnly, Size: 100},
		{Time: 1, Kind: trace.KindClose, OpenID: 1, NewPos: 0},
	}
	c := collect(t, events)
	if len(c.transfers) != 0 {
		t.Errorf("zero-byte open emitted transfers: %+v", c.transfers)
	}
	o := c.opens[0]
	if o.Runs != 0 || o.Bytes != 0 || o.WholeFile {
		t.Errorf("summary = %+v", o)
	}
	if !o.Sequential {
		t.Errorf("empty access should count as sequential")
	}
}

func TestReadWriteDirectionInference(t *testing.T) {
	events := []trace.Event{
		// Open read-write on a 1000-byte file; read it, then append.
		{Time: 0, Kind: trace.KindOpen, OpenID: 1, File: 3, Mode: trace.ReadWrite, Size: 1000},
		{Time: 5, Kind: trace.KindSeek, OpenID: 1, OldPos: 1000, NewPos: 1000},
		{Time: 10, Kind: trace.KindClose, OpenID: 1, NewPos: 1500},
	}
	c := collect(t, events)
	if len(c.transfers) != 2 {
		t.Fatalf("transfers = %+v", c.transfers)
	}
	if c.transfers[0].Write {
		t.Errorf("in-bounds rw run classified write: %+v", c.transfers[0])
	}
	if !c.transfers[1].Write {
		t.Errorf("extending rw run classified read: %+v", c.transfers[1])
	}
}

func TestDeaths(t *testing.T) {
	events := []trace.Event{
		{Time: 0, Kind: trace.KindCreate, OpenID: 1, File: 3, Mode: trace.WriteOnly},
		{Time: 10, Kind: trace.KindClose, OpenID: 1, NewPos: 500},
		// Overwrite by re-create.
		{Time: 100, Kind: trace.KindCreate, OpenID: 2, File: 3, Mode: trace.WriteOnly},
		{Time: 110, Kind: trace.KindClose, OpenID: 2, NewPos: 700},
		// Truncate to zero.
		{Time: 200, Kind: trace.KindTruncate, File: 3, Size: 0},
		// Unlink.
		{Time: 300, Kind: trace.KindUnlink, File: 3},
	}
	c := collect(t, events)
	if len(c.deaths) != 3 {
		t.Fatalf("deaths = %+v", c.deaths)
	}
	if c.deaths[0].Reason != "overwrite" || c.deaths[0].Time != 100 {
		t.Errorf("death 0 = %+v", c.deaths[0])
	}
	if c.deaths[1].Reason != "truncate" || c.deaths[1].Time != 200 {
		t.Errorf("death 1 = %+v", c.deaths[1])
	}
	if c.deaths[2].Reason != "unlink" || c.deaths[2].Time != 300 {
		t.Errorf("death 2 = %+v", c.deaths[2])
	}
}

func TestTruncateToZeroOfEmptyFileNoDeath(t *testing.T) {
	events := []trace.Event{
		{Time: 0, Kind: trace.KindCreate, OpenID: 1, File: 3, Mode: trace.WriteOnly},
		{Time: 10, Kind: trace.KindClose, OpenID: 1, NewPos: 0},
		{Time: 20, Kind: trace.KindTruncate, File: 3, Size: 0},
	}
	c := collect(t, events)
	if len(c.deaths) != 0 {
		t.Errorf("empty file truncation reported death: %+v", c.deaths)
	}
}

func TestEventGaps(t *testing.T) {
	events := []trace.Event{
		{Time: 0, Kind: trace.KindOpen, OpenID: 1, File: 3, Mode: trace.ReadOnly, Size: 100},
		{Time: 300, Kind: trace.KindSeek, OpenID: 1, OldPos: 50, NewPos: 60},
		{Time: 1000, Kind: trace.KindClose, OpenID: 1, NewPos: 100},
	}
	c := collect(t, events)
	want := []trace.Time{300, 700}
	if !reflect.DeepEqual(c.gaps, want) {
		t.Errorf("gaps = %v, want %v", c.gaps, want)
	}
}

func TestUnclosedOpens(t *testing.T) {
	events := []trace.Event{
		{Time: 0, Kind: trace.KindOpen, OpenID: 1, File: 3, Mode: trace.ReadOnly, Size: 100},
		{Time: 5, Kind: trace.KindSeek, OpenID: 1, OldPos: 40, NewPos: 50},
	}
	c := collect(t, events)
	if c.unclosed != 1 {
		t.Errorf("unclosed = %d, want 1", c.unclosed)
	}
	// The partial run up to the seek was still emitted.
	if len(c.transfers) != 1 || c.transfers[0].Length != 40 {
		t.Errorf("transfers = %+v", c.transfers)
	}
	if len(c.opens) != 0 {
		t.Errorf("unclosed open produced a summary")
	}
}

func TestScannerErrors(t *testing.T) {
	events := []trace.Event{
		{Time: 0, Kind: trace.KindClose, OpenID: 9, NewPos: 0},
		{Time: 1, Kind: trace.KindSeek, OpenID: 9, OldPos: 0, NewPos: 5},
		{Time: 2, Kind: trace.KindOpen, OpenID: 1, File: 1, Mode: trace.ReadOnly},
		{Time: 3, Kind: trace.KindOpen, OpenID: 1, File: 2, Mode: trace.ReadOnly},
	}
	c := collect(t, events)
	if len(c.errs) != 3 {
		t.Errorf("errs = %v, want 3", c.errs)
	}
}

func TestScanHelper(t *testing.T) {
	events := []trace.Event{
		{Time: 0, Kind: trace.KindOpen, OpenID: 1, File: 3, Mode: trace.ReadOnly, Size: 100},
		{Time: 5, Kind: trace.KindClose, OpenID: 1, NewPos: 100},
	}
	var n int
	unclosed, errs := Scan(events, func(Transfer) { n++ }, nil, nil)
	if unclosed != 0 || len(errs) != 0 || n != 1 {
		t.Errorf("Scan = %d %v, n=%d", unclosed, errs, n)
	}
}

// Integration: transfers reconstructed from a kernel-produced trace match
// the byte counts the kernel actually performed. This closes the loop on
// the paper's claim that positions alone identify the accessed ranges.
func TestReconstructionMatchesKernel(t *testing.T) {
	var events []trace.Event
	var now trace.Time
	k := kernel.New(vfs.New(), func() trace.Time { return now }, func(e trace.Event) { events = append(events, e) })
	p := k.NewProc(1)

	// A writing pass, a reading pass, a seek-heavy pass.
	fd, err := p.Create("/data", trace.WriteOnly)
	if err != nil {
		t.Fatal(err)
	}
	p.Write(fd, 10000)
	now += 100
	p.Close(fd)

	fd, _ = p.Open("/data", trace.ReadOnly)
	p.Read(fd, 4000)
	now += 100
	p.Seek(fd, 8000)
	p.Read(fd, 2000)
	now += 100
	p.Close(fd)

	fd, _ = p.Open("/data", trace.ReadWrite)
	p.Read(fd, 1000)
	now += 100
	p.SeekEnd(fd)
	p.Write(fd, 500)
	now += 100
	p.Close(fd)

	var readBytes, writeBytes int64
	unclosed, errs := Scan(events, func(x Transfer) {
		if x.Write {
			writeBytes += x.Length
		} else {
			readBytes += x.Length
		}
	}, nil, nil)
	if unclosed != 0 || len(errs) != 0 {
		t.Fatalf("unclosed=%d errs=%v", unclosed, errs)
	}
	if writeBytes != k.Stats.BytesWritten {
		t.Errorf("reconstructed writes = %d, kernel wrote %d", writeBytes, k.Stats.BytesWritten)
	}
	if readBytes != k.Stats.BytesRead {
		t.Errorf("reconstructed reads = %d, kernel read %d", readBytes, k.Stats.BytesRead)
	}
}

// Property: for ANY random sequence of kernel operations, the transfers
// reconstructed from the position-only trace account for exactly the
// bytes the kernel moved. This is the paper's central inference validated
// mechanically.
func TestReconstructionPropertyRandomOps(t *testing.T) {
	f := func(seed int64, opsRaw []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var events []trace.Event
		var now trace.Time
		k := kernel.New(vfs.New(), func() trace.Time { return now },
			func(e trace.Event) { events = append(events, e) })
		p := k.NewProc(1)
		paths := []string{"/a", "/b", "/c"}
		type openFD struct {
			fd       int
			canRead  bool
			canWrite bool
		}
		var fds []openFD
		for _, op := range opsRaw {
			now += trace.Time(rng.Intn(500))
			switch op % 7 {
			case 0: // create
				if fd, err := p.Create(paths[rng.Intn(len(paths))], trace.WriteOnly); err == nil {
					fds = append(fds, openFD{fd: fd, canWrite: true})
				}
			case 1: // open, any mode
				mode := trace.Mode(rng.Intn(3))
				if fd, err := p.Open(paths[rng.Intn(len(paths))], mode); err == nil {
					fds = append(fds, openFD{fd: fd, canRead: mode.CanRead(), canWrite: mode.CanWrite()})
				}
			case 2: // read
				if len(fds) > 0 {
					f := fds[rng.Intn(len(fds))]
					if f.canRead {
						p.Read(f.fd, int64(rng.Intn(10000)))
					}
				}
			case 3: // write
				if len(fds) > 0 {
					f := fds[rng.Intn(len(fds))]
					if f.canWrite {
						p.Write(f.fd, int64(rng.Intn(10000)))
					}
				}
			case 4: // seek
				if len(fds) > 0 {
					p.Seek(fds[rng.Intn(len(fds))].fd, int64(rng.Intn(20000)))
				}
			case 5: // close
				if len(fds) > 0 {
					i := rng.Intn(len(fds))
					p.Close(fds[i].fd)
					fds = append(fds[:i], fds[i+1:]...)
				}
			case 6: // unlink or truncate
				path := paths[rng.Intn(len(paths))]
				if rng.Intn(2) == 0 {
					p.Unlink(path)
				} else {
					p.Truncate(path, int64(rng.Intn(5000)))
				}
			}
		}
		p.CloseAll()

		// Reconstruct. Read-write opens have ambiguous direction, so
		// compare the total; for RO/WO opens compare per direction.
		var total, roBytes, woBytes int64
		_, errs := Scan(events, func(x Transfer) {
			total += x.Length
			switch x.Mode {
			case trace.ReadOnly:
				roBytes += x.Length
			case trace.WriteOnly:
				woBytes += x.Length
			}
		}, nil, nil)
		if len(errs) != 0 {
			return false
		}
		if total != k.Stats.BytesRead+k.Stats.BytesWritten {
			return false
		}
		// Each direction-pure class cannot exceed the kernel's totals.
		return roBytes <= k.Stats.BytesRead && woBytes <= k.Stats.BytesWritten
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
