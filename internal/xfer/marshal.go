package xfer

import (
	"fmt"
	"sort"

	"bsdtrace/internal/stats"
	"bsdtrace/internal/trace"
)

// Scanner state serialization, for the online-analysis checkpoint: a
// restored Scanner fed the remainder of a trace produces exactly the
// callbacks the original would have, so transfer reconstruction survives
// a daemon restart without rescanning the prefix. Maps are serialized in
// sorted key order, making the encoding a deterministic function of the
// scanner's state. Accumulated error strings are not preserved — a
// checkpointed stream has already validated clean — only their count is,
// so the 20-error cap keeps working across a restore.

const scannerStateVersion = 1

func appendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func decodeBool(buf []byte) (bool, []byte, error) {
	if len(buf) < 1 {
		return false, nil, stats.ErrCorruptState
	}
	return buf[0] != 0, buf[1:], nil
}

// AppendState appends the scanner's complete working state.
func (s *Scanner) AppendState(buf []byte) []byte {
	buf = stats.AppendUvarint(buf, scannerStateVersion)

	buf = stats.AppendUvarint(buf, uint64(len(s.opens)))
	ids := make([]trace.OpenID, 0, len(s.opens))
	for id := range s.opens {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		st := s.opens[id]
		sum := &st.summary
		buf = stats.AppendUvarint(buf, uint64(sum.OpenID))
		buf = stats.AppendUvarint(buf, uint64(sum.File))
		buf = stats.AppendUvarint(buf, uint64(sum.User))
		buf = stats.AppendUvarint(buf, uint64(sum.Mode))
		buf = appendBool(buf, sum.Created)
		buf = stats.AppendVarint(buf, int64(sum.OpenTime))
		buf = stats.AppendVarint(buf, int64(sum.CloseTime))
		buf = stats.AppendVarint(buf, sum.SizeAtOpen)
		buf = stats.AppendVarint(buf, sum.SizeAtClose)
		buf = stats.AppendVarint(buf, sum.Bytes)
		buf = stats.AppendVarint(buf, int64(sum.Runs))
		buf = stats.AppendVarint(buf, int64(sum.Seeks))
		buf = appendBool(buf, sum.WholeFile)
		buf = appendBool(buf, sum.Sequential)
		buf = stats.AppendVarint(buf, st.pos)
		buf = stats.AppendVarint(buf, int64(st.lastEvent))
		buf = appendBool(buf, st.seenBytes)
		buf = appendBool(buf, st.broken)
	}

	buf = stats.AppendUvarint(buf, uint64(len(s.sizes)))
	files := make([]trace.FileID, 0, len(s.sizes))
	for f := range s.sizes {
		files = append(files, f)
	}
	sort.Slice(files, func(i, j int) bool { return files[i] < files[j] })
	for _, f := range files {
		buf = stats.AppendUvarint(buf, uint64(f))
		buf = stats.AppendVarint(buf, s.sizes[f])
	}

	return stats.AppendUvarint(buf, uint64(len(s.errs)))
}

// maxStateEntries bounds map sizes claimed by a state blob so a corrupt
// length prefix cannot force a giant allocation before the decode fails.
const maxStateEntries = 1 << 28

// DecodeState replaces the scanner's state with one appended by
// AppendState, returning the remaining bytes. Callbacks are untouched.
func (s *Scanner) DecodeState(buf []byte) ([]byte, error) {
	v, buf, err := stats.DecodeUvarint(buf)
	if err != nil {
		return nil, err
	}
	if v != scannerStateVersion {
		return nil, fmt.Errorf("xfer: scanner state version %d, want %d", v, scannerStateVersion)
	}

	n, buf, err := stats.DecodeUvarint(buf)
	if err != nil {
		return nil, err
	}
	if n > maxStateEntries {
		return nil, stats.ErrCorruptState
	}
	opens := make(map[trace.OpenID]*openState, n)
	for i := uint64(0); i < n; i++ {
		st := &openState{}
		sum := &st.summary
		var u int64
		var x uint64
		if x, buf, err = stats.DecodeUvarint(buf); err != nil {
			return nil, err
		}
		sum.OpenID = trace.OpenID(x)
		if x, buf, err = stats.DecodeUvarint(buf); err != nil {
			return nil, err
		}
		sum.File = trace.FileID(x)
		if x, buf, err = stats.DecodeUvarint(buf); err != nil {
			return nil, err
		}
		sum.User = trace.UserID(x)
		if x, buf, err = stats.DecodeUvarint(buf); err != nil {
			return nil, err
		}
		sum.Mode = trace.Mode(x)
		if sum.Created, buf, err = decodeBool(buf); err != nil {
			return nil, err
		}
		if u, buf, err = stats.DecodeVarint(buf); err != nil {
			return nil, err
		}
		sum.OpenTime = trace.Time(u)
		if u, buf, err = stats.DecodeVarint(buf); err != nil {
			return nil, err
		}
		sum.CloseTime = trace.Time(u)
		if sum.SizeAtOpen, buf, err = stats.DecodeVarint(buf); err != nil {
			return nil, err
		}
		if sum.SizeAtClose, buf, err = stats.DecodeVarint(buf); err != nil {
			return nil, err
		}
		if sum.Bytes, buf, err = stats.DecodeVarint(buf); err != nil {
			return nil, err
		}
		if u, buf, err = stats.DecodeVarint(buf); err != nil {
			return nil, err
		}
		sum.Runs = int(u)
		if u, buf, err = stats.DecodeVarint(buf); err != nil {
			return nil, err
		}
		sum.Seeks = int(u)
		if sum.WholeFile, buf, err = decodeBool(buf); err != nil {
			return nil, err
		}
		if sum.Sequential, buf, err = decodeBool(buf); err != nil {
			return nil, err
		}
		if st.pos, buf, err = stats.DecodeVarint(buf); err != nil {
			return nil, err
		}
		if u, buf, err = stats.DecodeVarint(buf); err != nil {
			return nil, err
		}
		st.lastEvent = trace.Time(u)
		if st.seenBytes, buf, err = decodeBool(buf); err != nil {
			return nil, err
		}
		if st.broken, buf, err = decodeBool(buf); err != nil {
			return nil, err
		}
		opens[sum.OpenID] = st
	}

	n, buf, err = stats.DecodeUvarint(buf)
	if err != nil {
		return nil, err
	}
	if n > maxStateEntries {
		return nil, stats.ErrCorruptState
	}
	sizes := make(map[trace.FileID]int64, n)
	for i := uint64(0); i < n; i++ {
		var f uint64
		var sz int64
		if f, buf, err = stats.DecodeUvarint(buf); err != nil {
			return nil, err
		}
		if sz, buf, err = stats.DecodeVarint(buf); err != nil {
			return nil, err
		}
		sizes[trace.FileID(f)] = sz
	}

	nerrs, buf, err := stats.DecodeUvarint(buf)
	if err != nil {
		return nil, err
	}
	if nerrs > 20 {
		return nil, stats.ErrCorruptState
	}
	s.opens = opens
	s.sizes = sizes
	s.errs = s.errs[:0]
	for i := uint64(0); i < nerrs; i++ {
		s.errs = append(s.errs, fmt.Errorf("xfer: error before checkpoint restore (detail not preserved)"))
	}
	return buf, nil
}
