package xfer

import (
	"sync"
	"testing"

	"bsdtrace/internal/trace"
)

// tapeTB builds small event streams for tape tests.
type tapeTB struct {
	events []trace.Event
	now    trace.Time
	nextID trace.OpenID
}

func (b *tapeTB) tick() trace.Time {
	b.now += 10 * trace.Millisecond
	return b.now
}

func (b *tapeTB) create(f trace.FileID, n int64) {
	id := b.nextID + 1
	b.nextID = id
	b.events = append(b.events,
		trace.Event{Time: b.tick(), Kind: trace.KindCreate, OpenID: id, File: f, User: 1, Mode: trace.WriteOnly},
		trace.Event{Time: b.tick(), Kind: trace.KindClose, OpenID: id, NewPos: n},
	)
}

func (b *tapeTB) read(f trace.FileID, sz int64) {
	id := b.nextID + 1
	b.nextID = id
	b.events = append(b.events,
		trace.Event{Time: b.tick(), Kind: trace.KindOpen, OpenID: id, File: f, User: 1, Mode: trace.ReadOnly, Size: sz},
		trace.Event{Time: b.tick(), Kind: trace.KindClose, OpenID: id, NewPos: sz},
	)
}

func mustTape(t *testing.T, events []trace.Event) *Tape {
	t.Helper()
	tape, err := NewTape(events)
	if err != nil {
		t.Fatal(err)
	}
	return tape
}

// countKinds tallies a tape's op kinds.
func countKinds(tape *Tape) map[OpKind]int {
	m := make(map[OpKind]int)
	for _, op := range tape.Ops {
		m[op.Kind]++
	}
	return m
}

func TestTapeMatchesScanner(t *testing.T) {
	b := &tapeTB{}
	b.create(1, 10000)
	b.read(1, 10000)
	b.events = append(b.events, trace.Event{Time: b.tick(), Kind: trace.KindTruncate, File: 1, Size: 4000})
	b.read(1, 4000)
	b.events = append(b.events, trace.Event{Time: b.tick(), Kind: trace.KindUnlink, File: 1})

	// The tape's transfers must be exactly what a scanner emits, in order.
	var want []Transfer
	sc := NewScanner()
	sc.OnTransfer = func(tr Transfer) { want = append(want, tr) }
	for _, e := range b.events {
		sc.Feed(e)
	}
	sc.Finish()

	tape := mustTape(t, b.events)
	if len(tape.Transfers) != len(want) {
		t.Fatalf("tape has %d transfers, scanner emitted %d", len(tape.Transfers), len(want))
	}
	for i := range want {
		if tape.Transfers[i] != want[i] {
			t.Errorf("transfer %d: tape %+v != scanner %+v", i, tape.Transfers[i], want[i])
		}
	}
	kinds := countKinds(tape)
	// create purges once (overwrite), truncate once, unlink once.
	if kinds[OpPurge] != 3 {
		t.Errorf("want 3 purges, got %d", kinds[OpPurge])
	}
	if kinds[OpTransfer] != len(want) {
		t.Errorf("want %d transfer ops, got %d", kinds[OpTransfer], len(want))
	}
}

func TestTapeTimesNondecreasing(t *testing.T) {
	b := &tapeTB{}
	for f := trace.FileID(1); f <= 5; f++ {
		b.create(f, 30000)
		b.read(f, 30000)
	}
	tape := mustTape(t, b.events)
	var last trace.Time
	for i, op := range tape.Ops {
		if op.Time < last {
			t.Fatalf("op %d time %v < previous %v", i, op.Time, last)
		}
		last = op.Time
	}
}

func TestTapeAdvanceCollapse(t *testing.T) {
	// Opens produce no transfer or purge; their clock motion must land in
	// OpAdvance ops, and consecutive ones must merge.
	b := &tapeTB{}
	id := trace.OpenID(1)
	b.events = append(b.events,
		trace.Event{Time: b.tick(), Kind: trace.KindOpen, OpenID: id, File: 1, User: 1, Mode: trace.ReadOnly, Size: 5000},
		trace.Event{Time: b.tick(), Kind: trace.KindSeek, OpenID: id, NewPos: 0},
		trace.Event{Time: b.tick(), Kind: trace.KindSeek, OpenID: id, NewPos: 0},
	)
	closeTime := b.tick()
	b.events = append(b.events, trace.Event{Time: closeTime, Kind: trace.KindClose, OpenID: id, NewPos: 5000})

	tape := mustTape(t, b.events)
	// open + seek + seek collapse to one advance; the close emits the
	// transfer. No other ops.
	kinds := countKinds(tape)
	if kinds[OpAdvance] != 1 || kinds[OpTransfer] != 1 || len(tape.Ops) != 2 {
		t.Fatalf("want [advance, transfer], got %v", tape.Ops)
	}
	// The merged advance carries the latest pre-close event time.
	if tape.Ops[0].Time >= closeTime {
		t.Errorf("advance time %v not before close %v", tape.Ops[0].Time, closeTime)
	}
}

func TestTapeOldSizes(t *testing.T) {
	b := &tapeTB{}
	b.create(1, 10000) // transfer 0: write while size 0
	b.read(1, 10000)   // transfer 1: size 10000
	// Reopen for write without create: rewrite first 2000 bytes.
	id := b.nextID + 1
	b.nextID = id
	b.events = append(b.events,
		trace.Event{Time: b.tick(), Kind: trace.KindOpen, OpenID: id, File: 1, User: 1, Mode: trace.WriteOnly, Size: 10000},
		trace.Event{Time: b.tick(), Kind: trace.KindClose, OpenID: id, NewPos: 2000},
	)
	tape := mustTape(t, b.events)
	if len(tape.OldSizes) != len(tape.Transfers) {
		t.Fatalf("OldSizes length %d != Transfers %d", len(tape.OldSizes), len(tape.Transfers))
	}
	want := []int64{0, 10000, 10000}
	for i, w := range want {
		if tape.OldSizes[i] != w {
			t.Errorf("OldSizes[%d] = %d, want %d", i, tape.OldSizes[i], w)
		}
	}
}

func TestTapeExecSynthesis(t *testing.T) {
	b := &tapeTB{}
	b.create(1, 8000)
	b.events = append(b.events, trace.Event{Time: b.tick(), Kind: trace.KindExec, File: 1, User: 1, Size: 8000})
	b.events = append(b.events, trace.Event{Time: b.tick(), Kind: trace.KindExec, File: 2, User: 1, Size: 0})
	tape := mustTape(t, b.events)
	kinds := countKinds(tape)
	if kinds[OpExec] != 1 {
		t.Fatalf("want 1 exec op (zero-size exec is an advance), got %d", kinds[OpExec])
	}
	for _, op := range tape.Ops {
		if op.Kind != OpExec {
			continue
		}
		tr := tape.Transfers[op.Xfer]
		if tr.File != 1 || tr.Offset != 0 || tr.Length != 8000 || tr.Write {
			t.Errorf("exec transfer wrong: %+v", tr)
		}
		if tape.OldSizes[op.Xfer] != 8000 {
			t.Errorf("exec OldSizes = %d, want 8000", tape.OldSizes[op.Xfer])
		}
	}
}

func TestTapeUnclosed(t *testing.T) {
	b := &tapeTB{}
	b.create(1, 1000)
	b.events = append(b.events,
		trace.Event{Time: b.tick(), Kind: trace.KindOpen, OpenID: 99, File: 2, User: 1, Mode: trace.ReadOnly, Size: 500})
	tape := mustTape(t, b.events)
	if tape.Unclosed != 1 {
		t.Errorf("Unclosed = %d, want 1", tape.Unclosed)
	}
}

func TestTapeRejectsMalformed(t *testing.T) {
	events := []trace.Event{
		{Time: 1, Kind: trace.KindClose, OpenID: 42, NewPos: 100}, // close of unknown open
	}
	if _, err := NewTape(events); err == nil {
		t.Fatal("malformed trace accepted")
	}
}

func TestTapeMemoSharesBuilds(t *testing.T) {
	tape := &Tape{}
	var builds int
	var mu sync.Mutex
	build := func() any {
		mu.Lock()
		builds++
		mu.Unlock()
		return builds
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if v := tape.Memo(4096, build); v.(int) != 1 {
				t.Errorf("Memo returned %v, want 1", v)
			}
		}()
	}
	wg.Wait()
	if builds != 1 {
		t.Errorf("build ran %d times, want 1", builds)
	}
	if v := tape.Memo(8192, build); v.(int) != 2 {
		t.Errorf("second key returned %v, want 2", v)
	}
}
