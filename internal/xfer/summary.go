package xfer

import "bsdtrace/internal/trace"

// Summary is the transfer-level digest of one tape: the numbers Table VI
// and VII's discussion rests on (how much data moved, how fast, in which
// direction), computable for any trace class. Where the Section-5
// analyzer interprets the logical structure between opens and closes, a
// Summary deliberately uses none of it, so it is the headline block a
// report can always render — including for foreign block and page traces
// whose open/close events are adapter scaffolding.
type Summary struct {
	// Duration is the time of the last tape operation.
	Duration trace.Time
	// Requests counts transfers by direction (exec reads count as
	// reads); Bytes* are the corresponding data volumes.
	ReadRequests  int64
	WriteRequests int64
	BytesRead     int64
	BytesWritten  int64
	// Execs counts synthesized whole-file exec reads among the reads.
	Execs int64
	// Purges counts data-death operations (unlinks, truncations,
	// overwriting creates).
	Purges int64
	// Files is the number of distinct files transferred to or from.
	Files int64
	// MaxRequest is the largest single transfer.
	MaxRequest int64
	// Unclosed is carried over from the tape: opens still outstanding at
	// the end of the trace.
	Unclosed int
}

// Requests returns the total transfer count.
func (s *Summary) Requests() int64 { return s.ReadRequests + s.WriteRequests }

// BytesTransferred returns the total data volume.
func (s *Summary) BytesTransferred() int64 { return s.BytesRead + s.BytesWritten }

// Throughput returns bytes per second over the tape's duration, or 0 for
// an instantaneous tape.
func (s *Summary) Throughput() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.BytesTransferred()) / s.Duration.Seconds()
}

// RequestRate returns transfers per second over the tape's duration, or
// 0 for an instantaneous tape.
func (s *Summary) RequestRate() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.Requests()) / s.Duration.Seconds()
}

// WriteFraction returns the fraction of bytes moved that were writes.
func (s *Summary) WriteFraction() float64 {
	if t := s.BytesTransferred(); t > 0 {
		return float64(s.BytesWritten) / float64(t)
	}
	return 0
}

// Summarize digests a tape. The tape is read-only throughout, so
// summarizing is safe alongside concurrent replays.
func Summarize(t *Tape) Summary {
	var s Summary
	s.Unclosed = t.Unclosed
	if n := len(t.Ops); n > 0 {
		s.Duration = t.Ops[n-1].Time
	}
	files := make(map[trace.FileID]bool)
	for _, op := range t.Ops {
		switch op.Kind {
		case OpPurge:
			s.Purges++
		case OpTransfer, OpExec:
			tr := t.Transfers[op.Xfer]
			if op.Kind == OpExec {
				s.Execs++
			}
			if tr.Write {
				s.WriteRequests++
				s.BytesWritten += tr.Length
			} else {
				s.ReadRequests++
				s.BytesRead += tr.Length
			}
			if tr.Length > s.MaxRequest {
				s.MaxRequest = tr.Length
			}
			files[tr.File] = true
		}
	}
	s.Files = int64(len(files))
	return s
}
