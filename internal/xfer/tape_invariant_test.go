package xfer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bsdtrace/internal/kernel"
	"bsdtrace/internal/trace"
	"bsdtrace/internal/vfs"
)

// The tape invariant consumers rely on: no transfer has zero (or
// negative) length. emitRun drops empty runs, NewTape drops zero-size
// execs, and block-span arithmetic downstream (CountTapeAccesses,
// resolve) divides (End()-1) by the block size — sound only if every
// run covers at least one byte. Drive a kernel through adversarial
// zero-length operations (zero-byte reads and writes, seeks to the
// current position, zero-byte creates, execs of empty files) and check
// every transfer on the resulting tape.
func TestTapeTransfersPositiveLength(t *testing.T) {
	f := func(seed int64, opsRaw []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var events []trace.Event
		var now trace.Time
		k := kernel.New(vfs.New(), func() trace.Time { return now },
			func(e trace.Event) { events = append(events, e) })
		p := k.NewProc(1)
		paths := []string{"/a", "/b", "/c"}
		var fds []int
		for _, op := range opsRaw {
			now += trace.Time(rng.Intn(500))
			switch op % 8 {
			case 0:
				if fd, err := p.Create(paths[rng.Intn(len(paths))], trace.WriteOnly); err == nil {
					fds = append(fds, fd)
				}
			case 1:
				if fd, err := p.Open(paths[rng.Intn(len(paths))], trace.Mode(rng.Intn(3))); err == nil {
					fds = append(fds, fd)
				}
			case 2: // read, often zero-length
				if len(fds) > 0 {
					p.Read(fds[rng.Intn(len(fds))], int64(rng.Intn(3)*rng.Intn(4000)))
				}
			case 3: // write, often zero-length
				if len(fds) > 0 {
					p.Write(fds[rng.Intn(len(fds))], int64(rng.Intn(3)*rng.Intn(4000)))
				}
			case 4: // seek, sometimes to the current position
				if len(fds) > 0 {
					fd := fds[rng.Intn(len(fds))]
					if rng.Intn(2) == 0 {
						p.SeekEnd(fd)
					} else {
						p.Seek(fd, int64(rng.Intn(2)*rng.Intn(20000)))
					}
				}
			case 5:
				if len(fds) > 0 {
					i := rng.Intn(len(fds))
					p.Close(fds[i])
					fds = append(fds[:i], fds[i+1:]...)
				}
			case 6:
				path := paths[rng.Intn(len(paths))]
				if rng.Intn(2) == 0 {
					p.Unlink(path)
				} else {
					p.Truncate(path, int64(rng.Intn(2)*rng.Intn(5000)))
				}
			case 7: // exec, including of empty files
				p.Exec(paths[rng.Intn(len(paths))])
			}
		}
		p.CloseAll()

		tape, err := NewTape(events)
		if err != nil {
			return false
		}
		for i, tr := range tape.Transfers {
			if tr.Length <= 0 {
				t.Logf("transfer %d has length %d: %+v", i, tr.Length, tr)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTapeTruncate(t *testing.T) {
	b := &tapeTB{}
	b.create(1, 10000)
	b.now = 90 * trace.Second
	b.read(1, 10000)
	tape := mustTape(t, b.events)
	end := tape.Ops[len(tape.Ops)-1].Time

	// Truncating at the trace end reproduces the whole tape, no trailing
	// advance needed.
	whole := tape.Truncate(end)
	if len(whole.Ops) != len(tape.Ops) {
		t.Errorf("Truncate(end) has %d ops, want %d", len(whole.Ops), len(tape.Ops))
	}

	// Truncating mid-trace keeps exactly the ops at or before the cut
	// and appends a clock advance to the cut instant.
	cut := 30 * trace.Second
	mid := tape.Truncate(cut)
	last := mid.Ops[len(mid.Ops)-1]
	if last.Kind != OpAdvance || last.Time != cut {
		t.Errorf("truncated tape ends with %+v, want advance to %v", last, cut)
	}
	for _, op := range mid.Ops {
		if op.Time > cut {
			t.Errorf("op %+v beyond the cut %v", op, cut)
		}
	}

	// Truncating before the first op leaves only the advance.
	early := tape.Truncate(trace.Millisecond)
	if len(early.Ops) != 1 || early.Ops[0].Kind != OpAdvance {
		t.Errorf("Truncate(1ms) ops: %+v", early.Ops)
	}

	// Truncating past the end extends the clock beyond the last op, so
	// time-driven machinery sees the post-trace idle time.
	late := tape.Truncate(end + trace.Hour)
	last = late.Ops[len(late.Ops)-1]
	if last.Kind != OpAdvance || last.Time != end+trace.Hour {
		t.Errorf("Truncate past end ends with %+v", last)
	}
	if len(late.Ops) != len(tape.Ops)+1 {
		t.Errorf("Truncate past end has %d ops, want %d", len(late.Ops), len(tape.Ops)+1)
	}

	// Transfers are shared, not copied.
	if len(mid.Transfers) != len(tape.Transfers) {
		t.Errorf("truncated tape has %d transfers, want the shared %d", len(mid.Transfers), len(tape.Transfers))
	}
}
