package xfer

import (
	"testing"

	"bsdtrace/internal/trace"
)

func TestSummarize(t *testing.T) {
	// Two files: one read sequentially, one created and written, then
	// unlinked; plus an exec.
	events := []trace.Event{
		{Time: 0, Kind: trace.KindOpen, OpenID: 1, File: 1, User: 1, Mode: trace.ReadOnly, Size: 8192},
		{Time: 100, Kind: trace.KindClose, OpenID: 1, NewPos: 8192},
		{Time: 200, Kind: trace.KindCreate, OpenID: 2, File: 2, User: 2, Mode: trace.WriteOnly},
		{Time: 300, Kind: trace.KindClose, OpenID: 2, NewPos: 4096},
		{Time: 400, Kind: trace.KindExec, File: 3, User: 1, Size: 1024},
		{Time: 500, Kind: trace.KindUnlink, File: 2},
	}
	tape, err := NewTape(events)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(tape)

	if s.Duration != 500 {
		t.Errorf("Duration = %v, want 500", s.Duration)
	}
	// Reads: the 8192 sequential read plus the 1024 exec.
	if s.ReadRequests != 2 || s.BytesRead != 8192+1024 {
		t.Errorf("reads = %d requests / %d bytes, want 2 / 9216", s.ReadRequests, s.BytesRead)
	}
	if s.Execs != 1 {
		t.Errorf("Execs = %d, want 1", s.Execs)
	}
	if s.WriteRequests != 1 || s.BytesWritten != 4096 {
		t.Errorf("writes = %d requests / %d bytes, want 1 / 4096", s.WriteRequests, s.BytesWritten)
	}
	// Purges: the overwriting create and the unlink.
	if s.Purges != 2 {
		t.Errorf("Purges = %d, want 2", s.Purges)
	}
	if s.Files != 3 {
		t.Errorf("Files = %d, want 3", s.Files)
	}
	if s.MaxRequest != 8192 {
		t.Errorf("MaxRequest = %d, want 8192", s.MaxRequest)
	}
	if s.Requests() != 3 || s.BytesTransferred() != 13312 {
		t.Errorf("totals = %d requests / %d bytes, want 3 / 13312", s.Requests(), s.BytesTransferred())
	}
	if got, want := s.Throughput(), 13312/0.5; got != want {
		t.Errorf("Throughput = %v, want %v", got, want)
	}
	if got, want := s.RequestRate(), 3/0.5; got != want {
		t.Errorf("RequestRate = %v, want %v", got, want)
	}
	if got, want := s.WriteFraction(), 4096.0/13312; got != want {
		t.Errorf("WriteFraction = %v, want %v", got, want)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	tape, err := NewTape(nil)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(tape)
	if s.Requests() != 0 || s.BytesTransferred() != 0 || s.Throughput() != 0 || s.RequestRate() != 0 || s.WriteFraction() != 0 {
		t.Errorf("empty tape summary not all-zero: %+v", s)
	}
}
