// Package xfer reconstructs data transfers from a logical-level trace.
//
// The tracer records no read or write events. Because file I/O in 4.2 BSD
// is implicitly sequential, the access position recorded at open (always
// zero), before and after every seek, and at close completely identifies
// the ranges of bytes that each open transferred: between two successive
// position-recording events the process moved sequentially from the first
// recorded position to the second's starting position. Each such maximal
// sequential range is a "run".
//
// Following the paper (§3.1), every run is billed at the time of the trace
// event that ends it — the next seek or close for that open file. The times
// are therefore loose upper bounds, which the paper shows is acceptable
// because most files are open well under a second.
//
// Both the Section-5 reference-pattern analyzer and the Section-6 cache
// simulator consume this package, so the two halves of the study agree on
// what was transferred.
package xfer

import (
	"fmt"

	"bsdtrace/internal/trace"
)

// Transfer is one reconstructed sequential run of bytes.
type Transfer struct {
	// Time is the bill time: the time of the seek or close event that
	// ended the run.
	Time trace.Time
	// Start is the time of the position-recording event that began the
	// run (the open, or the previous seek). The transfer happened
	// somewhere in [Start, Time]; the paper bills at Time, and the
	// billing-sensitivity ablation re-bills at Start.
	Start trace.Time
	// File is the file the bytes belong to.
	File trace.FileID
	// User is the account of the open that performed the transfer.
	User trace.UserID
	// OpenID identifies the open this run belongs to.
	OpenID trace.OpenID
	// Offset and Length delimit the byte range [Offset, Offset+Length).
	Offset, Length int64
	// Write reports the transfer direction. For read-only and write-only
	// opens the direction is the open mode. For read-write opens the
	// direction is inferred: a run that extends the file past its
	// previously known size must be (at least partly) a write, and is
	// classified as one; other read-write runs are classified as reads.
	Write bool
	// Mode is the access mode of the owning open.
	Mode trace.Mode
}

// End returns Offset+Length.
func (t Transfer) End() int64 { return t.Offset + t.Length }

// OpenSummary describes one completed open-close session.
type OpenSummary struct {
	OpenID trace.OpenID
	File   trace.FileID
	User   trace.UserID
	Mode   trace.Mode
	// Created reports whether the open was a create (new data).
	Created bool
	// OpenTime and CloseTime delimit the session.
	OpenTime, CloseTime trace.Time
	// SizeAtOpen is the file size recorded by the open event; zero for
	// creates. SizeAtClose is the size implied at close time (grown by
	// any writes that extended the file).
	SizeAtOpen, SizeAtClose int64
	// Bytes is the total bytes transferred; Runs is the number of
	// non-empty sequential runs.
	Bytes int64
	Runs  int
	// Seeks is the number of seek events during the open (including
	// zero-displacement seeks).
	Seeks int
	// WholeFile reports a single run covering the entire file from byte
	// zero: the file was read or written sequentially from beginning to
	// end (paper Table V).
	WholeFile bool
	// Sequential reports an access whose bytes form a single run: a
	// whole-file transfer, or one initial reposition followed by a
	// sequential transfer with no further repositioning (paper Table V).
	Sequential bool
}

// FileDeath describes data dying: the file was unlinked, truncated to
// zero, or overwritten by a new create of the same file. The lifetime
// analyses (paper Figure 4) consume these.
type FileDeath struct {
	Time trace.Time
	File trace.FileID
	// Reason is "unlink", "truncate", or "overwrite".
	Reason string
}

// Scanner consumes trace events in time order and emits reconstructed
// transfers, per-open summaries, and file deaths through callbacks. Any
// callback may be nil.
type Scanner struct {
	// OnTransfer is called for every non-empty run, in bill-time order.
	OnTransfer func(Transfer)
	// OnOpenEnd is called at each close with the session summary.
	OnOpenEnd func(OpenSummary)
	// OnDeath is called when a file's data dies.
	OnDeath func(FileDeath)
	// OnEventGap is called with the time since the previous event of the
	// same open, for every close and seek (the §3.1 measurement of how
	// tight the no-read-write time bounds are).
	OnEventGap func(gap trace.Time)

	opens map[trace.OpenID]*openState
	sizes map[trace.FileID]int64
	errs  []error
}

type openState struct {
	summary   OpenSummary
	pos       int64 // position at the last position-recording event
	lastEvent trace.Time
	seenBytes bool // any non-empty run recorded yet
	broken    bool // a seek happened after bytes moved, or >1 run
}

// NewScanner creates a Scanner.
func NewScanner() *Scanner {
	return &Scanner{
		opens: make(map[trace.OpenID]*openState),
		sizes: make(map[trace.FileID]int64),
	}
}

func (s *Scanner) errorf(format string, args ...any) {
	if len(s.errs) < 20 {
		s.errs = append(s.errs, fmt.Errorf(format, args...))
	}
}

// Errs returns malformed-stream complaints accumulated during scanning.
// A trace that passes trace.Validate produces none.
func (s *Scanner) Errs() []error { return s.errs }

// knownSize returns the current size estimate for a file. Sizes are
// learned from open events (which record size at open), create and
// truncate events, and writes that extend files.
func (s *Scanner) knownSize(f trace.FileID) int64 { return s.sizes[f] }

// emitRun records the run [st.pos, endPos) for the open, billed at now
// and started at the open's previous position-recording event.
func (s *Scanner) emitRun(st *openState, endPos int64, now trace.Time) {
	length := endPos - st.pos
	if length <= 0 {
		return
	}
	sum := &st.summary
	isWrite := false
	switch sum.Mode {
	case trace.WriteOnly:
		isWrite = true
	case trace.ReadWrite:
		// Inferred: extending the file means writing.
		isWrite = endPos > s.sizes[sum.File]
	}
	t := Transfer{
		Time:   now,
		Start:  st.lastEvent,
		File:   sum.File,
		User:   sum.User,
		OpenID: sum.OpenID,
		Offset: st.pos,
		Length: length,
		Write:  isWrite,
		Mode:   sum.Mode,
	}
	if isWrite && endPos > s.sizes[sum.File] {
		s.sizes[sum.File] = endPos
	}
	sum.Bytes += length
	sum.Runs++
	if st.seenBytes {
		st.broken = true // second run: not sequential
	}
	st.seenBytes = true
	if s.OnTransfer != nil {
		s.OnTransfer(t)
	}
}

// Feed processes one event. Events must arrive in time order.
func (s *Scanner) Feed(e trace.Event) {
	switch e.Kind {
	case trace.KindCreate, trace.KindOpen:
		if _, dup := s.opens[e.OpenID]; dup {
			s.errorf("t=%v: open id %d reused", e.Time, e.OpenID)
			return
		}
		if e.Kind == trace.KindCreate {
			// New data: anything previously in the file is overwritten.
			if old, ok := s.sizes[e.File]; ok && old > 0 && s.OnDeath != nil {
				s.OnDeath(FileDeath{Time: e.Time, File: e.File, Reason: "overwrite"})
			}
			s.sizes[e.File] = 0
		} else {
			s.sizes[e.File] = e.Size
		}
		s.opens[e.OpenID] = &openState{
			summary: OpenSummary{
				OpenID:     e.OpenID,
				File:       e.File,
				User:       e.User,
				Mode:       e.Mode,
				Created:    e.Kind == trace.KindCreate,
				OpenTime:   e.Time,
				SizeAtOpen: e.Size,
			},
			lastEvent: e.Time,
		}

	case trace.KindSeek:
		st, ok := s.opens[e.OpenID]
		if !ok {
			s.errorf("t=%v: seek on unknown open id %d", e.Time, e.OpenID)
			return
		}
		if s.OnEventGap != nil {
			s.OnEventGap(e.Time - st.lastEvent)
		}
		s.emitRun(st, e.OldPos, e.Time)
		st.lastEvent = e.Time
		// A trailing seek with no bytes after it does not break
		// sequentiality; only a second non-empty run does, and emitRun
		// marks that.
		st.summary.Seeks++
		st.pos = e.NewPos

	case trace.KindClose:
		st, ok := s.opens[e.OpenID]
		if !ok {
			s.errorf("t=%v: close of unknown open id %d", e.Time, e.OpenID)
			return
		}
		if s.OnEventGap != nil {
			s.OnEventGap(e.Time - st.lastEvent)
		}
		s.emitRun(st, e.NewPos, e.Time)
		delete(s.opens, e.OpenID)
		sum := &st.summary
		sum.CloseTime = e.Time
		sum.SizeAtClose = s.sizes[sum.File]
		sum.Sequential = !st.broken
		sum.WholeFile = sum.Sequential && sum.Runs == 1 && sum.Seeks == 0 &&
			sum.Bytes == sum.SizeAtClose && sum.SizeAtClose > 0
		if s.OnOpenEnd != nil {
			s.OnOpenEnd(*sum)
		}

	case trace.KindUnlink:
		if s.OnDeath != nil {
			s.OnDeath(FileDeath{Time: e.Time, File: e.File, Reason: "unlink"})
		}
		delete(s.sizes, e.File)

	case trace.KindTruncate:
		if e.Size == 0 {
			if old, ok := s.sizes[e.File]; ok && old > 0 && s.OnDeath != nil {
				s.OnDeath(FileDeath{Time: e.Time, File: e.File, Reason: "truncate"})
			}
		}
		s.sizes[e.File] = e.Size

	case trace.KindExec:
		// Execs carry no position information; the cache simulator's
		// paging mode synthesizes reads from them directly.

	default:
		s.errorf("t=%v: unknown event kind %d", e.Time, uint8(e.Kind))
	}
}

// OpenCount returns the number of opens still outstanding.
func (s *Scanner) OpenCount() int { return len(s.opens) }

// Finish discards outstanding opens (a live trace ends with some files
// open) and returns how many were discarded. Their partial transfers up to
// the last recorded position were already emitted; bytes between the last
// position event and the never-seen close are unknowable, exactly as they
// were for the paper's analyzers.
func (s *Scanner) Finish() int {
	n := len(s.opens)
	s.opens = make(map[trace.OpenID]*openState)
	return n
}

// Scan runs a complete trace through a scanner with the given callbacks
// and returns the number of unclosed opens discarded at the end.
func Scan(events []trace.Event, onTransfer func(Transfer), onOpenEnd func(OpenSummary), onDeath func(FileDeath)) (unclosed int, errs []error) {
	s := NewScanner()
	s.OnTransfer = onTransfer
	s.OnOpenEnd = onOpenEnd
	s.OnDeath = onDeath
	for _, e := range events {
		s.Feed(e)
	}
	return s.Finish(), s.Errs()
}
