package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// XY is one chart point.
type XY struct{ X, Y float64 }

// Series is a named line on a chart.
type Series struct {
	Name   string
	Points []XY
}

// Chart renders one or more series as an ASCII plot, standing in for the
// paper's figures. X may be log-scaled (file sizes and times span several
// decades); Y is linear, as all the paper's figures are percentages or
// counts.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Width and Height are the plot area in characters (default 64x20).
	Width, Height int
	// LogX plots x on a log10 scale.
	LogX bool
	// YMax forces the y-axis maximum (default: data maximum). YMin is
	// always 0, matching the paper's cumulative-percentage figures.
	YMax float64
}

var markers = []byte{'*', '+', 'o', 'x', '#', '@'}

// Render draws the chart.
func (c *Chart) Render(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 20
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymax := c.YMax
	for _, s := range c.Series {
		for _, p := range s.Points {
			x := p.X
			if c.LogX {
				if x <= 0 {
					continue
				}
				x = math.Log10(x)
			}
			xmin = math.Min(xmin, x)
			xmax = math.Max(xmax, x)
			if c.YMax == 0 {
				ymax = math.Max(ymax, p.Y)
			}
		}
	}
	if math.IsInf(xmin, 1) || ymax <= 0 {
		_, err := fmt.Fprintf(w, "%s\n  (no data)\n\n", c.Title)
		return err
	}
	if xmax == xmin {
		xmax = xmin + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	plot := func(x, y float64, m byte) {
		if c.LogX {
			if x <= 0 {
				return
			}
			x = math.Log10(x)
		}
		col := int((x - xmin) / (xmax - xmin) * float64(width-1))
		row := height - 1 - int(y/ymax*float64(height-1))
		if col < 0 || col >= width || row < 0 || row >= height {
			return
		}
		grid[row][col] = m
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		// Draw line segments by interpolating between points in screen
		// space so curves are readable, then overdraw markers.
		for i := 1; i < len(s.Points); i++ {
			a, b := s.Points[i-1], s.Points[i]
			const steps = 48
			for t := 0; t <= steps; t++ {
				f := float64(t) / steps
				var x float64
				if c.LogX && a.X > 0 && b.X > 0 {
					x = math.Pow(10, math.Log10(a.X)+f*(math.Log10(b.X)-math.Log10(a.X)))
				} else {
					x = a.X + f*(b.X-a.X)
				}
				y := a.Y + f*(b.Y-a.Y)
				plot(x, y, '.')
			}
		}
		for _, p := range s.Points {
			plot(p.X, p.Y, m)
		}
	}

	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s\n", c.Title)
	}
	yLab := c.YLabel
	for i, row := range grid {
		yv := ymax * float64(height-1-i) / float64(height-1)
		label := "        "
		switch {
		case i == 0, i == height-1, i == height/2:
			label = fmt.Sprintf("%7.4g ", yv)
		}
		sb.WriteString(label)
		sb.WriteString("|")
		sb.Write(row)
		sb.WriteByte('\n')
	}
	sb.WriteString("        +")
	sb.WriteString(strings.Repeat("-", width))
	sb.WriteByte('\n')
	// X-axis endpoints and midpoint.
	lo, hi := xmin, xmax
	mid := (lo + hi) / 2
	if c.LogX {
		lo, mid, hi = math.Pow(10, lo), math.Pow(10, mid), math.Pow(10, hi)
	}
	left := fmt.Sprintf("%.4g", lo)
	midS := fmt.Sprintf("%.4g", mid)
	right := fmt.Sprintf("%.4g", hi)
	axis := make([]byte, width+9)
	for i := range axis {
		axis[i] = ' '
	}
	copy(axis[9:], left)
	copy(axis[9+width/2-len(midS)/2:], midS)
	if 9+width-len(right) > 0 {
		copy(axis[9+width-len(right):], right)
	}
	sb.Write(axis)
	sb.WriteByte('\n')
	if c.XLabel != "" || yLab != "" {
		scale := ""
		if c.LogX {
			scale = " (log scale)"
		}
		fmt.Fprintf(&sb, "        x: %s%s   y: %s\n", c.XLabel, scale, yLab)
	}
	for si, s := range c.Series {
		fmt.Fprintf(&sb, "        %c %s\n", markers[si%len(markers)], s.Name)
	}
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}

// CDFSeries converts a stats-style CDF (fractions in [0,1]) into a chart
// series in percent, optionally dropping the censored tail above xCap.
func CDFSeries(name string, points []XY, xCap float64) Series {
	out := Series{Name: name}
	for _, p := range points {
		if xCap > 0 && p.X > xCap {
			continue
		}
		out.Points = append(out.Points, XY{X: p.X, Y: p.Y * 100})
	}
	return out
}
