package report

import (
	"fmt"

	"bsdtrace/internal/trace/adapt"
	"bsdtrace/internal/xfer"
)

// This file renders the transfer-level battery: the sections that remain
// meaningful for foreign block and page traces, whose open/close events
// are adapter scaffolding rather than observed logical behavior. The
// logical tables (III-V, the figures) stay with the paper builders and
// are gated by analyzer.LogicalMetrics.

// TransferSummaryTable renders one tape summary per trace: volume,
// direction, and rates — the headline block every trace class supports.
func TransferSummaryTable(names []string, sums []xfer.Summary) *Table {
	t := &Table{
		Title:  "Transfer summary.",
		Header: []string{"Item", "Total"},
		Note: "Reconstructed block traffic only; no logical open/close structure " +
			"is interpreted, so these rows are valid for foreign block and page " +
			"traces as well as native logical ones.",
	}
	if len(names) > 1 {
		t.Header = append([]string{"Item"}, names...)
	}
	row := func(item string, cell func(s xfer.Summary) string) {
		cells := []string{item}
		for _, s := range sums {
			cells = append(cells, cell(s))
		}
		t.AddRow(cells...)
	}
	row("Duration (seconds)", func(s xfer.Summary) string {
		return fmt.Sprintf("%.1f", s.Duration.Seconds())
	})
	row("Transfers (read / write)", func(s xfer.Summary) string {
		return fmt.Sprintf("%s / %s", Count(s.ReadRequests), Count(s.WriteRequests))
	})
	row("Bytes read", func(s xfer.Summary) string { return Count(s.BytesRead) })
	row("Bytes written", func(s xfer.Summary) string { return Count(s.BytesWritten) })
	row("Write fraction of bytes", func(s xfer.Summary) string { return Pct(s.WriteFraction()) })
	row("Throughput (bytes/sec)", func(s xfer.Summary) string {
		return fmt.Sprintf("%.0f", s.Throughput())
	})
	row("Transfers/sec", func(s xfer.Summary) string {
		return fmt.Sprintf("%.2f", s.RequestRate())
	})
	row("Distinct files", func(s xfer.Summary) string { return Count(s.Files) })
	row("Largest transfer", func(s xfer.Summary) string { return Count(s.MaxRequest) })
	row("Purges (unlink/truncate/overwrite)", func(s xfer.Summary) string { return Count(s.Purges) })
	return t
}

// AdapterStatsTable renders the import accounting of foreign traces:
// what each adapter consumed, emitted, and refused.
func AdapterStatsTable(names []string, stats []adapt.Stats) *Table {
	t := &Table{
		Title:  "Foreign-trace import.",
		Header: []string{"Item", "Total"},
		Note: "Per-adapter accounting: every input line is a record, a skip, or " +
			"a warmup-filtered read. Clamped times count foreign timestamps that " +
			"ran backwards and were pulled up to preserve trace order.",
	}
	if len(names) > 1 {
		t.Header = append([]string{"Item"}, names...)
	}
	row := func(item string, cell func(s adapt.Stats) string) {
		cells := []string{item}
		for _, s := range stats {
			cells = append(cells, cell(s))
		}
		t.AddRow(cells...)
	}
	row("Input lines", func(s adapt.Stats) string { return Count(s.Lines) })
	row("Records imported", func(s adapt.Stats) string { return Count(s.Records) })
	row("Events emitted", func(s adapt.Stats) string { return Count(s.Events) })
	row("Lines skipped", func(s adapt.Stats) string { return Count(s.Skipped) })
	row("Warmup reads dropped", func(s adapt.Stats) string { return Count(s.SkippedReads) })
	row("Timestamps clamped", func(s adapt.Stats) string { return Count(s.ClampedTimes) })
	return t
}
