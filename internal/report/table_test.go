package report

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func render(t *testing.T, tb *Table) string {
	t.Helper()
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestTableEmptyRows(t *testing.T) {
	out := render(t, &Table{
		Title:  "Empty.",
		Header: []string{"A", "B"},
	})
	if !strings.Contains(out, "Empty.") || !strings.Contains(out, "A") {
		t.Fatalf("empty table lost its title or header:\n%s", out)
	}
	// No header, no rows, no title: still terminates with the blank
	// separator line, never panics.
	if got := render(t, &Table{}); got != "\n" {
		t.Fatalf("zero-value table rendered %q, want a single blank line", got)
	}
}

func TestTableRowWiderThanHeader(t *testing.T) {
	tb := &Table{Header: []string{"only"}}
	tb.AddRow("a", "b", "c")
	tb.AddRow("d")
	out := render(t, tb)
	for _, cell := range []string{"a", "b", "c", "d"} {
		if !strings.Contains(out, cell) {
			t.Fatalf("overflow row cell %q missing:\n%s", cell, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want header + rule + 2 rows:\n%s", len(lines), out)
	}
}

func TestTableCellWidthOverflow(t *testing.T) {
	wide := strings.Repeat("x", 120)
	tb := &Table{Header: []string{"k", "v"}}
	tb.AddRow("a", wide)
	tb.AddRow("b", "1")
	out := render(t, tb)
	lines := strings.Split(out, "\n")
	// Both data rows end at the same column: the wide cell set the width.
	if utf8.RuneCountInString(lines[2]) != utf8.RuneCountInString(lines[3]) {
		t.Fatalf("rows misaligned under a %d-rune cell:\n%s", 120, out)
	}
	if !strings.Contains(out, wide) {
		t.Fatal("wide cell truncated")
	}
}

// TestTableNonASCIIAlignment pins the rune-width contract: multi-byte
// labels (µs, ±, Greek) occupy their rune count, not their byte count,
// so every row of a column grid ends at the same screen column.
func TestTableNonASCIIAlignment(t *testing.T) {
	tb := &Table{
		Title:  "Latency (µs ± σ).",
		Header: []string{"Stage", "Latency"},
	}
	tb.AddRow("αβγδε", "12 µs")
	tb.AddRow("ascii", "34 s")
	out := render(t, tb)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// lines: title, underline, header, rule, row, row.
	if len(lines) != 6 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	header, row1, row2 := lines[2], lines[4], lines[5]
	w := utf8.RuneCountInString(header)
	if utf8.RuneCountInString(row1) != w || utf8.RuneCountInString(row2) != w {
		t.Fatalf("non-ASCII rows misaligned (rune widths %d/%d/%d):\n%s",
			w, utf8.RuneCountInString(row1), utf8.RuneCountInString(row2), out)
	}
	// "αβγδε" and "ascii" are both 5 runes: their second columns must
	// start at the same rune offset.
	if strings.IndexRune(row1, '1') == -1 || row1[:strings.IndexRune(row1, '1')] == row1 {
		t.Fatalf("row %q lost its value cell", row1)
	}
	// The underline is capped at min(table width, title length) — both
	// measured in runes, not bytes (in bytes the title here is 21).
	want := utf8.RuneCountInString(lines[0])
	if w < want {
		want = w
	}
	if got := utf8.RuneCountInString(lines[1]); got != want {
		t.Fatalf("title underline is %d runes, want %d:\n%s", got, want, out)
	}
}

func TestCountFormatting(t *testing.T) {
	for _, tc := range []struct {
		n    int64
		want string
	}{{0, "0"}, {999, "999"}, {1000, "1,000"}, {1234567, "1,234,567"}, {-42, "-42"}} {
		if got := Count(tc.n); got != tc.want {
			t.Errorf("Count(%d) = %q, want %q", tc.n, got, tc.want)
		}
	}
}

func TestSizeFormatting(t *testing.T) {
	for _, tc := range []struct {
		n    int64
		want string
	}{
		{390 << 10, "390 kbytes"},
		{2 << 20, "2 Mbytes"},
		{3<<20 + 512<<10, "3.5 Mbytes"},
		{0, "0 kbytes"},
	} {
		if got := Size(tc.n); got != tc.want {
			t.Errorf("Size(%d) = %q, want %q", tc.n, got, tc.want)
		}
	}
}
