package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
)

// CSV export: every chart and table can be written as machine-readable
// data for external plotting tools. The ASCII renderings are for reading
// in a terminal; these files are for gnuplot and friends.

// WriteCSV writes a chart's series as long-format rows:
// series,x,y — one row per point.
func (c *Chart) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "x", "y"}); err != nil {
		return err
	}
	for _, s := range c.Series {
		for _, p := range s.Points {
			err := cw.Write([]string{
				s.Name,
				strconv.FormatFloat(p.X, 'g', -1, 64),
				strconv.FormatFloat(p.Y, 'g', -1, 64),
			})
			if err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV writes a table's header and rows. Cells keep their rendered
// formatting (percent signs, thousands separators) because the table is
// the presentation form; figures are where raw values live.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if len(t.Header) > 0 {
		if err := cw.Write(t.Header); err != nil {
			return err
		}
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// DataSet collects named charts and tables and writes them all as CSV
// files into a directory: <name>.csv per item.
type DataSet struct {
	items []dataItem
}

type dataItem struct {
	name  string
	chart *Chart
	table *Table
}

// AddChart registers a chart under a file name (without extension).
func (d *DataSet) AddChart(name string, c *Chart) {
	d.items = append(d.items, dataItem{name: name, chart: c})
}

// AddTable registers a table under a file name (without extension).
func (d *DataSet) AddTable(name string, t *Table) {
	d.items = append(d.items, dataItem{name: name, table: t})
}

// WriteDir writes every registered item to dir, creating it if needed,
// and returns the file paths written.
func (d *DataSet) WriteDir(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	for _, it := range d.items {
		path := filepath.Join(dir, it.name+".csv")
		f, err := os.Create(path)
		if err != nil {
			return paths, err
		}
		if it.chart != nil {
			err = it.chart.WriteCSV(f)
		} else if it.table != nil {
			err = it.table.WriteCSV(f)
		} else {
			err = fmt.Errorf("report: data item %q has no content", it.name)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return paths, fmt.Errorf("writing %s: %w", path, err)
		}
		paths = append(paths, path)
	}
	return paths, nil
}
