// Package report renders the reproduction's tables and figures as text:
// aligned tables in the style of the paper's Tables I-VII and ASCII line
// charts standing in for Figures 1-7. The builders in paper.go map
// analyzer and cachesim results onto the exact rows and series the paper
// reports.
package report

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Table is a titled, aligned text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Note is printed beneath the table, wrapped like the paper's table
	// captions.
	Note string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table. Columns are sized to their widest cell; the
// first column is left-aligned, the rest right-aligned (numbers).
func (t *Table) Render(w io.Writer) error {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	// Cells are measured in runes, not bytes, so non-ASCII labels (µs,
	// ±, box-drawing) keep the columns aligned.
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if n := utf8.RuneCountInString(c); n > widths[i] {
				widths[i] = n
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", min(total, utf8.RuneCountInString(t.Title))))
		b.WriteByte('\n')
	}
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			// Pad by rune count manually; fmt's %*s pads by bytes and
			// would misalign multi-byte cells.
			pad := widths[i] - utf8.RuneCountInString(c)
			if i == 0 {
				b.WriteString(c)
				b.WriteString(strings.Repeat(" ", pad+2))
			} else {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(c)
				b.WriteString("  ")
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		b.WriteString(strings.Repeat("-", total))
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	if t.Note != "" {
		b.WriteString(wrap(t.Note, 72))
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// wrap reflows text to the given width.
func wrap(s string, width int) string {
	words := strings.Fields(s)
	if len(words) == 0 {
		return ""
	}
	var b strings.Builder
	line := 0
	for i, w := range words {
		if i > 0 {
			if line+1+len(w) > width {
				b.WriteByte('\n')
				line = 0
			} else {
				b.WriteByte(' ')
				line++
			}
		}
		b.WriteString(w)
		line += len(w)
	}
	return b.String()
}

// Common cell formatters used by the builders.

// Pct formats a fraction as a percentage with one decimal.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// Count formats an integer with thousands separators, as the paper's
// tables print event counts.
func Count(n int64) string {
	s := fmt.Sprintf("%d", n)
	if n < 0 {
		return s
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	return strings.Join(parts, ",")
}

// Size formats a byte count in the paper's units (kbytes/Mbytes).
func Size(n int64) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%d Mbytes", n>>20)
	case n >= 1<<20:
		return fmt.Sprintf("%.1f Mbytes", float64(n)/(1<<20))
	default:
		return fmt.Sprintf("%d kbytes", n>>10)
	}
}

// MB formats a byte count as megabytes with one decimal.
func MB(n int64) string { return fmt.Sprintf("%.1f", float64(n)/(1<<20)) }
