package report

import (
	"strings"
	"testing"
)

func renderChart(t *testing.T, c *Chart) string {
	t.Helper()
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestChartNoData(t *testing.T) {
	for name, c := range map[string]*Chart{
		"no series":    {Title: "Void."},
		"empty series": {Title: "Void.", Series: []Series{{Name: "s"}}},
		"all zero y":   {Title: "Void.", Series: []Series{{Name: "s", Points: []XY{{1, 0}, {2, 0}}}}},
		"logx nonpositive x": {Title: "Void.", LogX: true,
			Series: []Series{{Name: "s", Points: []XY{{-1, 5}, {0, 5}}}}},
	} {
		out := renderChart(t, c)
		if !strings.Contains(out, "(no data)") {
			t.Errorf("%s: want the (no data) placeholder, got:\n%s", name, out)
		}
		if !strings.Contains(out, "Void.") {
			t.Errorf("%s: placeholder lost the title", name)
		}
	}
}

func TestChartRendersSeriesAndLegend(t *testing.T) {
	c := &Chart{
		Title:  "Two lines.",
		XLabel: "x",
		YLabel: "y",
		Width:  32,
		Height: 8,
		Series: []Series{
			{Name: "rise", Points: []XY{{0, 0}, {10, 100}}},
			{Name: "fall", Points: []XY{{0, 100}, {10, 0}}},
		},
	}
	out := renderChart(t, c)
	for _, want := range []string{"Two lines.", "* rise", "+ fall", "x: x", "y: y"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	// Plot rows are exactly Height, each Width wide after the axis gutter.
	var plotRows int
	for _, line := range strings.Split(out, "\n") {
		if i := strings.IndexByte(line, '|'); i >= 0 {
			plotRows++
			if got := len(line) - i - 1; got != c.Width {
				t.Fatalf("plot row %d chars wide, want %d: %q", got, c.Width, line)
			}
		}
	}
	if plotRows != c.Height {
		t.Fatalf("%d plot rows, want %d:\n%s", plotRows, c.Height, out)
	}
}

func TestChartSinglePointAndYMax(t *testing.T) {
	c := &Chart{Title: "Dot.", YMax: 100, Width: 16, Height: 4,
		Series: []Series{{Name: "s", Points: []XY{{5, 50}}}}}
	out := renderChart(t, c)
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not plotted:\n%s", out)
	}
	if !strings.Contains(out, "100") {
		t.Fatalf("forced YMax not on the axis:\n%s", out)
	}
}

func TestChartLogXDecades(t *testing.T) {
	c := &Chart{Title: "Log.", LogX: true, Width: 40, Height: 6,
		XLabel: "bytes",
		Series: []Series{{Name: "cdf", Points: []XY{{1, 10}, {1000, 90}}}}}
	out := renderChart(t, c)
	if !strings.Contains(out, "(log scale)") {
		t.Fatalf("log-x chart does not announce its scale:\n%s", out)
	}
	if !strings.Contains(out, "1000") {
		t.Fatalf("right axis endpoint missing:\n%s", out)
	}
}

func TestCDFSeries(t *testing.T) {
	s := CDFSeries("s", []XY{{1, 0.25}, {2, 0.5}, {100, 1}}, 10)
	if len(s.Points) != 2 {
		t.Fatalf("xCap kept %d points, want 2", len(s.Points))
	}
	if s.Points[0].Y != 25 || s.Points[1].Y != 50 {
		t.Fatalf("fractions not scaled to percent: %+v", s.Points)
	}
}
