package report

// The policy-zoo tables: the Figure 5-7 comparisons re-rendered with
// one column per replacement policy. The first column is always LRU,
// the paper's own policy, so the zoo tables line up with Table VI /
// Table VII values cell for cell.

import (
	"bsdtrace/internal/cachesim"
)

// zooHeader builds the shared header row: a label column followed by
// one column per policy in AllReplacements order.
func zooHeader(label string) []string {
	h := []string{label}
	for _, rp := range cachesim.AllReplacements() {
		h = append(h, rp.String())
	}
	return h
}

// ZooTable is the Figure 5 comparison across the zoo: miss ratio vs.
// cache size under delayed-write, one column per policy. res is indexed
// [cacheSize][policy] (cachesim.ZooSweepTape).
func ZooTable(cacheSizes []int64, res [][]*cachesim.Result) *Table {
	t := &Table{
		Title:  "Policy zoo: miss ratio vs. cache size (4-kbyte blocks, delayed-write, trace A5).",
		Header: zooHeader("Cache Size"),
		Note: "The Figure 5 experiment across every replacement policy. The lru column " +
			"is the paper's configuration and matches Table VI's delayed-write column; " +
			"the adaptive policies (arc, 2q, lirs, tinylfu) earn their keep on " +
			"scan-heavy traces, which this workload's whole-file reads approximate.",
	}
	for i, cs := range cacheSizes {
		label := Size(cs)
		if cs == cachesim.UnixCacheSize {
			label += " (UNIX)"
		}
		cells := []string{label}
		for _, r := range res[i] {
			cells = append(cells, Pct(r.MissRatio()))
		}
		t.AddRow(cells...)
	}
	return t
}

// ZooBlockTable is the Figure 6 comparison across the zoo: disk I/Os
// vs. block size at one cache size under delayed-write. res is indexed
// [blockSize][policy] (cachesim.ZooBlockSizeSweepTape).
func ZooBlockTable(blockSizes []int64, cacheSize int64, res [][]*cachesim.Result) *Table {
	t := &Table{
		Title:  "Policy zoo: disk I/Os vs. block size (" + Size(cacheSize) + " delayed-write cache, trace A5).",
		Header: zooHeader("Block Size"),
		Note: "The Figure 6 experiment across every replacement policy: total disk I/O " +
			"operations replaying the trace at each block size.",
	}
	for i, bs := range blockSizes {
		cells := []string{Size(bs)}
		for _, r := range res[i] {
			cells = append(cells, Count(r.DiskIOs()))
		}
		t.AddRow(cells...)
	}
	return t
}

// ZooPagingTable is the Figure 7 comparison across the zoo: miss ratio
// vs. cache size with program page-in simulated. res is indexed
// [cacheSize][policy] (cachesim.ZooPagingSweepTape).
func ZooPagingTable(cacheSizes []int64, res [][]*cachesim.Result) *Table {
	t := &Table{
		Title:  "Policy zoo: miss ratio with paging simulated (4-kbyte blocks, delayed-write, trace A5).",
		Header: zooHeader("Cache Size"),
		Note: "The Figure 7 experiment across every replacement policy: exec events add " +
			"synthetic page-in reads of the program text before each run.",
	}
	for i, cs := range cacheSizes {
		label := Size(cs)
		if cs == cachesim.UnixCacheSize {
			label += " (UNIX)"
		}
		cells := []string{label}
		for _, r := range res[i] {
			cells = append(cells, Pct(r.MissRatio()))
		}
		t.AddRow(cells...)
	}
	return t
}
