package report

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"bsdtrace/internal/analyzer"
	"bsdtrace/internal/cachesim"
	"bsdtrace/internal/trace"
	"bsdtrace/internal/workload"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "Table X. Test.",
		Header: []string{"Name", "Value"},
		Note:   "A note that should be wrapped if it runs long enough to need wrapping across lines.",
	}
	tab.AddRow("alpha", "1")
	tab.AddRow("beta", "22")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table X. Test.", "Name", "alpha", "22", "A note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	// Data rows align: "1" and "22" end at the same column.
	var a, b string
	for _, l := range lines {
		if strings.Contains(l, "alpha") {
			a = l
		}
		if strings.Contains(l, "beta") {
			b = l
		}
	}
	if len(strings.TrimRight(a, " ")) != len(strings.TrimRight(b, " ")) {
		t.Errorf("columns not aligned:\n%q\n%q", a, b)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tab := &Table{Header: []string{"A"}}
	tab.AddRow("x", "extra", "cells")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "extra") {
		t.Errorf("ragged row dropped cells")
	}
}

func TestFormatters(t *testing.T) {
	if got := Pct(0.1234); got != "12.3%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Count(1234567); got != "1,234,567" {
		t.Errorf("Count = %q", got)
	}
	if got := Count(42); got != "42" {
		t.Errorf("Count small = %q", got)
	}
	if got := Size(4096); got != "4 kbytes" {
		t.Errorf("Size KB = %q", got)
	}
	if got := Size(4 << 20); got != "4 Mbytes" {
		t.Errorf("Size MB = %q", got)
	}
	if got := Size(1536 << 10); got != "1.5 Mbytes" {
		t.Errorf("Size 1.5MB = %q", got)
	}
	if got := MB(1 << 20); got != "1.0" {
		t.Errorf("MB = %q", got)
	}
}

func TestChartRender(t *testing.T) {
	c := &Chart{
		Title:  "Test chart",
		XLabel: "x",
		YLabel: "y",
		YMax:   100,
		Series: []Series{
			{Name: "one", Points: []XY{{1, 10}, {10, 50}, {100, 90}}},
			{Name: "two", Points: []XY{{1, 90}, {100, 10}}},
		},
		LogX: true,
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Test chart", "one", "two", "*", "+", "log scale"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
}

func TestChartEmpty(t *testing.T) {
	c := &Chart{Title: "empty"}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no data") {
		t.Errorf("empty chart should say so")
	}
}

func TestChartSinglePoint(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "p", Points: []XY{{5, 5}}}}}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

// Integration: every paper builder renders non-trivially from a real
// generated trace.
func TestPaperBuilders(t *testing.T) {
	res, err := workload.Generate(workload.Config{Profile: "A5", Seed: 9, Duration: 30 * trace.Minute})
	if err != nil {
		t.Fatal(err)
	}
	a := analyzer.Analyze(res.Events, analyzer.Options{})
	tr := Traces{Names: []string{"A5"}, Analyses: []*analyzer.Analysis{a}}

	sizes := []int64{cachesim.UnixCacheSize, 1 << 20, 2 << 20, 4 << 20}
	pols := cachesim.PaperPolicies()
	policy, err := cachesim.PolicySweep(res.Events, 4096, sizes, pols)
	if err != nil {
		t.Fatal(err)
	}
	block, err := cachesim.BlockSizeSweep(res.Events, []int64{4096, 8192, 16384}, []int64{400 << 10, 2 << 20, 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	paging, err := cachesim.PagingSweep(res.Events, 4096, sizes)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	render := func(name string, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	render("I", TableI(a, policy, block).Render(&buf))
	render("III", TableIII(tr).Render(&buf))
	render("IV", TableIV(tr).Render(&buf))
	render("V", TableV(tr).Render(&buf))
	render("intervals", EventIntervalTable(tr).Render(&buf))
	render("sharing", SharingTable(tr).Render(&buf))
	render("VI", TableVI(sizes, pols, policy).Render(&buf))
	render("VII", TableVII(block).Render(&buf))
	for _, ch := range Figure1(tr) {
		render("fig1", ch.Render(&buf))
	}
	for _, ch := range Figure2(tr) {
		render("fig2", ch.Render(&buf))
	}
	render("fig3", Figure3(tr).Render(&buf))
	for _, ch := range Figure4(tr) {
		render("fig4", ch.Render(&buf))
	}
	render("fig5", Figure5(sizes, pols, policy).Render(&buf))
	render("fig6", Figure6(block).Render(&buf))
	render("fig7", Figure7(sizes, paging).Render(&buf))
	render("residency", ResidencyTable(policy[3][3]).Render(&buf))

	out := buf.String()
	for _, want := range []string{
		"Table I.", "Table III.", "Table IV.", "Table V.",
		"Table VI.", "Table VII.",
		"Figure 1(a)", "Figure 2(b)", "Figure 3.", "Figure 4(a)",
		"Figure 5.", "Figure 6.", "Figure 7.",
		"Write-Through", "Delayed Write", "A5", "Cross-user file sharing",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("combined report missing %q", want)
		}
	}
	if len(out) < 4000 {
		t.Errorf("report suspiciously short: %d bytes", len(out))
	}
}

func TestBestBlock(t *testing.T) {
	b := &cachesim.BlockSizeSweepResult{
		BlockSizes: []int64{4096, 8192},
		CacheSizes: []int64{1 << 20},
		Accesses:   []int64{100, 50},
		Results: [][]*cachesim.Result{
			{{DiskReads: 30}},
			{{DiskReads: 20}},
		},
	}
	if got := bestBlock(b, 0); got != 8192 {
		t.Errorf("bestBlock = %d, want 8192", got)
	}
}

func TestChartWriteCSV(t *testing.T) {
	c := &Chart{Series: []Series{
		{Name: "a", Points: []XY{{1, 10}, {2, 20}}},
		{Name: "b", Points: []XY{{1.5, 0.25}}},
	}}
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "series,x,y\na,1,10\na,2,20\nb,1.5,0.25\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestTableWriteCSV(t *testing.T) {
	tab := &Table{Header: []string{"k", "v"}}
	tab.AddRow("x", "1,5") // embedded comma must be quoted
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "k,v\nx,\"1,5\"\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestDataSetWriteDir(t *testing.T) {
	var d DataSet
	d.AddChart("fig", &Chart{Series: []Series{{Name: "s", Points: []XY{{1, 2}}}}})
	tab := &Table{Header: []string{"a"}}
	tab.AddRow("1")
	d.AddTable("tab", tab)
	dir := t.TempDir() + "/out"
	paths, err := d.WriteDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %v", paths)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil || len(data) == 0 {
			t.Errorf("%s: %v (%d bytes)", p, err, len(data))
		}
	}
}
