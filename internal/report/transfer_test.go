package report

import (
	"strings"
	"testing"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/trace/adapt"
	"bsdtrace/internal/xfer"
)

func TestTransferSummaryTable(t *testing.T) {
	tape, err := xfer.NewTape([]trace.Event{
		{Time: 0, Kind: trace.KindOpen, OpenID: 1, File: 1, User: 1, Mode: trace.ReadOnly, Size: 4096},
		{Time: 2000, Kind: trace.KindClose, OpenID: 1, NewPos: 4096},
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl := TransferSummaryTable([]string{"sample"}, []xfer.Summary{xfer.Summarize(tape)})
	var b strings.Builder
	tbl.Render(&b)
	out := b.String()
	for _, want := range []string{"Transfer summary.", "Bytes read", "4,096", "Throughput", "2048"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestAdapterStatsTable(t *testing.T) {
	tbl := AdapterStatsTable([]string{"sample"}, []adapt.Stats{{
		Lines: 12, Records: 9, Events: 27, Skipped: 2, SkippedReads: 1, ClampedTimes: 3,
	}})
	var b strings.Builder
	tbl.Render(&b)
	out := b.String()
	for _, want := range []string{"Foreign-trace import.", "Records imported", "27", "Warmup reads dropped", "Timestamps clamped"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
