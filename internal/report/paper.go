package report

import (
	"fmt"

	"bsdtrace/internal/analyzer"
	"bsdtrace/internal/cachesim"
	"bsdtrace/internal/fault"
	"bsdtrace/internal/stats"
	"bsdtrace/internal/trace"
)

// This file maps analysis and simulation results onto the paper's exact
// tables and figures. Each builder returns a Table or Chart ready to
// render; cmd/fsreport strings them together, and EXPERIMENTS.md records
// the outputs next to the paper's numbers.

// Traces pairs trace names with their analyses, in display order.
type Traces struct {
	Names    []string
	Analyses []*analyzer.Analysis
}

// TableI reproduces the paper's "Selected results" summary from one
// trace's analysis plus the Table VI and VII sweeps.
func TableI(a *analyzer.Analysis, policy [][]*cachesim.Result, block *cachesim.BlockSizeSweepResult) *Table {
	t := &Table{
		Title: "Table I. Selected results.",
		Note:  "Reproduction of the paper's headline summary; see the individual tables and figures for detail.",
	}
	t.AddRow(fmt.Sprintf("Bytes/sec per active user (10-min intervals): %.0f (paper: ~300-570)",
		a.Activity.Long.PerUserThroughput.Mean()))
	wfAcc := float64(a.Sequentiality.WholeFile[analyzer.ClassReadOnly]+
		a.Sequentiality.WholeFile[analyzer.ClassWriteOnly]+
		a.Sequentiality.WholeFile[analyzer.ClassReadWrite]) /
		float64(maxI64(a.Sequentiality.Accesses[0]+a.Sequentiality.Accesses[1]+a.Sequentiality.Accesses[2], 1))
	t.AddRow(fmt.Sprintf("Whole-file transfers: %s of accesses (paper: ~70%%)", Pct(wfAcc)))
	if a.Sequentiality.BytesTotal > 0 {
		t.AddRow(fmt.Sprintf("Bytes moved in whole-file transfers: %s (paper: ~50%%)",
			Pct(float64(a.Sequentiality.BytesWholeFile)/float64(a.Sequentiality.BytesTotal))))
	}
	t.AddRow(fmt.Sprintf("Files open < 0.5 sec: %s (paper: 75%%); < 10 sec: %s (paper: 90%%)",
		Pct(a.OpenTimes.FractionAtOrBelow(0.5)), Pct(a.OpenTimes.FractionAtOrBelow(10))))
	t.AddRow(fmt.Sprintf("New bytes dead within 30 sec: %s (paper: 20-30%%); within 5 min: %s (paper: ~50%%)",
		Pct(a.Lifetimes.ByBytes.FractionAtOrBelow(30)), Pct(a.Lifetimes.ByBytes.FractionAtOrBelow(300))))
	if len(policy) >= 4 && len(policy[3]) >= 4 {
		wt := policy[3][0].MissRatio()
		dw := policy[3][3].MissRatio()
		t.AddRow(fmt.Sprintf("4-Mbyte cache eliminates %s-%s of disk accesses by write policy (paper: 65-90%%)",
			Pct(1-wt), Pct(1-dw)))
	}
	if block != nil {
		t.AddRow(fmt.Sprintf("Optimal block size: %s at 400-kbyte cache (paper: 8 kbytes), %s at 4-Mbyte cache (paper: 16 kbytes)",
			Size(bestBlock(block, 0)), Size(bestBlock(block, 2))))
	}
	return t
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// bestBlock returns the block size minimizing disk I/Os at cache column j.
func bestBlock(b *cachesim.BlockSizeSweepResult, j int) int64 {
	best, bestIOs := int64(0), int64(-1)
	for i := range b.BlockSizes {
		ios := b.Results[i][j].DiskIOs()
		if bestIOs < 0 || ios < bestIOs {
			best, bestIOs = b.BlockSizes[i], ios
		}
	}
	return best
}

// TableIII reproduces the overall per-trace statistics.
func TableIII(tr Traces) *Table {
	t := &Table{
		Title:  "Table III. Overall statistics for the traces.",
		Header: append([]string{"Trace"}, tr.Names...),
		Note:   "Percentages are fractions of all events in that trace, as in the paper.",
	}
	row := func(label string, f func(a *analyzer.Analysis) string) {
		cells := []string{label}
		for _, a := range tr.Analyses {
			cells = append(cells, f(a))
		}
		t.AddRow(cells...)
	}
	row("Duration (hours)", func(a *analyzer.Analysis) string {
		return fmt.Sprintf("%.1f", a.Overall.Duration.Seconds()/3600)
	})
	row("Number of trace records", func(a *analyzer.Analysis) string {
		return Count(a.Overall.Counts.Total)
	})
	row("Size of trace file (Mbytes)", func(a *analyzer.Analysis) string {
		return MB(a.Overall.EncodedSize)
	})
	row("Total data transferred (Mbytes)", func(a *analyzer.Analysis) string {
		return MB(a.Overall.BytesTransferred)
	})
	for k := trace.KindCreate; k <= trace.KindExec; k++ {
		k := k
		row(fmt.Sprintf("%s events", k), func(a *analyzer.Analysis) string {
			return fmt.Sprintf("%s (%s)", Count(a.Overall.Counts.ByKind[k]), Pct(a.Overall.Counts.Fraction(k)))
		})
	}
	return t
}

// TableIV reproduces the system-activity measurements.
func TableIV(tr Traces) *Table {
	t := &Table{
		Title:  "Table IV. Some measurements of system activity.",
		Header: append([]string{""}, tr.Names...),
		Note: "The numbers in parentheses are standard deviations. A user is active in " +
			"an interval if there are any trace events for that user in the interval.",
	}
	row := func(label string, f func(a *analyzer.Analysis) string) {
		cells := []string{label}
		for _, a := range tr.Analyses {
			cells = append(cells, f(a))
		}
		t.AddRow(cells...)
	}
	row("Average throughput (bytes/sec over life of trace)", func(a *analyzer.Analysis) string {
		return fmt.Sprintf("%.0f", a.Activity.AvgThroughput)
	})
	row("Total number of different users", func(a *analyzer.Analysis) string {
		return fmt.Sprintf("%d", a.Activity.TotalUsers)
	})
	row("Greatest number of active users in a 10-minute interval", func(a *analyzer.Analysis) string {
		return fmt.Sprintf("%d", a.Activity.Long.MaxActiveUsers)
	})
	row("Average number of active users (10-minute intervals)", func(a *analyzer.Analysis) string {
		return a.Activity.Long.ActiveUsers.String()
	})
	row("Average throughput per active user (bytes/sec, 10-minute intervals)", func(a *analyzer.Analysis) string {
		return a.Activity.Long.PerUserThroughput.String()
	})
	row("Average number of active users (10-second intervals)", func(a *analyzer.Analysis) string {
		return a.Activity.Short.ActiveUsers.String()
	})
	row("Average throughput per active user (bytes/sec, 10-second intervals)", func(a *analyzer.Analysis) string {
		return a.Activity.Short.PerUserThroughput.String()
	})
	return t
}

// TableV reproduces the sequentiality measurements.
func TableV(tr Traces) *Table {
	t := &Table{
		Title:  "Table V. Data tends to be transferred sequentially.",
		Header: append([]string{""}, tr.Names...),
		Note: "Whole-file transfers read or wrote the file sequentially from beginning " +
			"to end. Sequential accesses include whole-file transfers plus those with a " +
			"single initial reposition. Only read-write accesses show significant " +
			"non-sequential use.",
	}
	row := func(label string, f func(a *analyzer.Analysis) string) {
		cells := []string{label}
		for _, a := range tr.Analyses {
			cells = append(cells, f(a))
		}
		t.AddRow(cells...)
	}
	row("Whole-file read transfers (% of read-only accesses)", func(a *analyzer.Analysis) string {
		return fmt.Sprintf("%s (%s)", Count(a.Sequentiality.WholeFile[analyzer.ClassReadOnly]),
			Pct(a.Sequentiality.WholeFileFraction(analyzer.ClassReadOnly)))
	})
	row("Whole-file write transfers (% of write-only accesses)", func(a *analyzer.Analysis) string {
		return fmt.Sprintf("%s (%s)", Count(a.Sequentiality.WholeFile[analyzer.ClassWriteOnly]),
			Pct(a.Sequentiality.WholeFileFraction(analyzer.ClassWriteOnly)))
	})
	row("Data transferred in whole-file transfers (Mbytes)", func(a *analyzer.Analysis) string {
		frac := 0.0
		if a.Sequentiality.BytesTotal > 0 {
			frac = float64(a.Sequentiality.BytesWholeFile) / float64(a.Sequentiality.BytesTotal)
		}
		return fmt.Sprintf("%s (%s)", MB(a.Sequentiality.BytesWholeFile), Pct(frac))
	})
	row("Sequential read-only accesses (%)", func(a *analyzer.Analysis) string {
		return fmt.Sprintf("%s (%s)", Count(a.Sequentiality.Sequential[analyzer.ClassReadOnly]),
			Pct(a.Sequentiality.SequentialFraction(analyzer.ClassReadOnly)))
	})
	row("Sequential write-only accesses (%)", func(a *analyzer.Analysis) string {
		return fmt.Sprintf("%s (%s)", Count(a.Sequentiality.Sequential[analyzer.ClassWriteOnly]),
			Pct(a.Sequentiality.SequentialFraction(analyzer.ClassWriteOnly)))
	})
	row("Sequential read-write accesses (%)", func(a *analyzer.Analysis) string {
		return fmt.Sprintf("%s (%s)", Count(a.Sequentiality.Sequential[analyzer.ClassReadWrite]),
			Pct(a.Sequentiality.SequentialFraction(analyzer.ClassReadWrite)))
	})
	row("Data transferred sequentially (Mbytes)", func(a *analyzer.Analysis) string {
		frac := 0.0
		if a.Sequentiality.BytesTotal > 0 {
			frac = float64(a.Sequentiality.BytesSequential) / float64(a.Sequentiality.BytesTotal)
		}
		return fmt.Sprintf("%s (%s)", MB(a.Sequentiality.BytesSequential), Pct(frac))
	})
	return t
}

func cdfToXY(c stats.CDF, xScale float64) []XY {
	out := make([]XY, 0, len(c))
	for _, p := range c {
		out = append(out, XY{X: p.X * xScale, Y: p.Fraction})
	}
	return out
}

// Figure1 reproduces the sequential-run-length distributions: (a) weighted
// by runs, (b) weighted by bytes. X is kilobytes as in the paper.
func Figure1(tr Traces) []*Chart {
	a := &Chart{
		Title:  "Figure 1(a). Cumulative distribution of sequential run lengths, weighted by runs.",
		XLabel: "kilobytes transferred", YLabel: "percent of runs", LogX: true, YMax: 100,
	}
	b := &Chart{
		Title:  "Figure 1(b). Same, weighted by bytes transferred.",
		XLabel: "kilobytes transferred", YLabel: "percent of bytes", LogX: true, YMax: 100,
	}
	for i, an := range tr.Analyses {
		a.Series = append(a.Series, CDFSeries(tr.Names[i], cdfToXY(an.RunLengthsByRuns, 1.0/1024), 0))
		b.Series = append(b.Series, CDFSeries(tr.Names[i], cdfToXY(an.RunLengthsByBytes, 1.0/1024), 0))
	}
	return []*Chart{a, b}
}

// Figure2 reproduces the dynamic file-size distributions at close.
func Figure2(tr Traces) []*Chart {
	a := &Chart{
		Title:  "Figure 2(a). File size at close, weighted by number of accesses.",
		XLabel: "file size (kilobytes)", YLabel: "percent of files", LogX: true, YMax: 100,
	}
	b := &Chart{
		Title:  "Figure 2(b). File size at close, weighted by bytes transferred.",
		XLabel: "file size (kilobytes)", YLabel: "percent of bytes", LogX: true, YMax: 100,
	}
	for i, an := range tr.Analyses {
		a.Series = append(a.Series, CDFSeries(tr.Names[i], cdfToXY(an.FileSizesByFiles, 1.0/1024), 0))
		b.Series = append(b.Series, CDFSeries(tr.Names[i], cdfToXY(an.FileSizesByBytes, 1.0/1024), 0))
	}
	return []*Chart{a, b}
}

// Figure3 reproduces the open-duration distribution.
func Figure3(tr Traces) *Chart {
	c := &Chart{
		Title:  "Figure 3. Distribution of times that files were open.",
		XLabel: "open time (seconds)", YLabel: "percent of files", LogX: true, YMax: 100,
	}
	for i, an := range tr.Analyses {
		c.Series = append(c.Series, CDFSeries(tr.Names[i], cdfToXY(an.OpenTimes, 1), 0))
	}
	return c
}

// Figure4 reproduces the file-lifetime distributions; the x-range is
// capped at 500 seconds like the paper's, which also hides the censored
// survivors bucket.
func Figure4(tr Traces) []*Chart {
	a := &Chart{
		Title:  "Figure 4(a). Lifetime of new files, weighted by files.",
		XLabel: "lifetime (seconds)", YLabel: "percent of files", YMax: 100,
	}
	b := &Chart{
		Title:  "Figure 4(b). Lifetime of new files, weighted by bytes created.",
		XLabel: "lifetime (seconds)", YLabel: "percent of bytes", YMax: 100,
	}
	for i, an := range tr.Analyses {
		a.Series = append(a.Series, CDFSeries(tr.Names[i], cdfToXY(an.Lifetimes.ByFiles, 1), 500))
		b.Series = append(b.Series, CDFSeries(tr.Names[i], cdfToXY(an.Lifetimes.ByBytes, 1), 500))
	}
	return []*Chart{a, b}
}

// EventIntervalTable reports the §3.1 measurement bounding transfer-time
// accuracy.
func EventIntervalTable(tr Traces) *Table {
	t := &Table{
		Title:  "Inter-event intervals for open files (paper §3.1).",
		Header: append([]string{"Interval <="}, tr.Names...),
		Note: "Intervals between successive trace events for the same open file bound " +
			"when transfers actually occurred. The paper measured 75% under 0.5 s, 90% " +
			"under 10 s, and 99% under 30 s.",
	}
	for _, bound := range []float64{0.5, 10, 30} {
		cells := []string{fmt.Sprintf("%g sec", bound)}
		for _, a := range tr.Analyses {
			cells = append(cells, Pct(a.EventIntervals.FractionAtOrBelow(bound)))
		}
		t.AddRow(cells...)
	}
	return t
}

// TableVI reproduces miss ratio as a function of cache size and write
// policy.
func TableVI(cacheSizes []int64, policies []cachesim.PolicySpec, res [][]*cachesim.Result) *Table {
	t := &Table{
		Title:  "Table VI. Miss ratio vs. cache size and write policy (4096-byte blocks).",
		Header: []string{"Cache Size"},
		Note: "Miss ratio is disk I/O operations divided by logical block accesses, " +
			"as in the paper's §6.1; the simulation replays the A5 trace.",
	}
	for _, p := range policies {
		t.Header = append(t.Header, p.Name)
	}
	for i, cs := range cacheSizes {
		label := Size(cs)
		if cs == cachesim.UnixCacheSize {
			label += " (UNIX)"
		}
		cells := []string{label}
		for j := range policies {
			cells = append(cells, Pct(res[i][j].MissRatio()))
		}
		t.AddRow(cells...)
	}
	return t
}

// Figure5 is the chart form of Table VI.
func Figure5(cacheSizes []int64, policies []cachesim.PolicySpec, res [][]*cachesim.Result) *Chart {
	c := &Chart{
		Title:  "Figure 5. Cache miss ratio vs. cache size and write policy (4-kbyte blocks, trace A5).",
		XLabel: "cache size (Mbytes)", YLabel: "miss ratio (percent)", LogX: true,
	}
	for j, p := range policies {
		s := Series{Name: p.Name}
		for i, cs := range cacheSizes {
			s.Points = append(s.Points, XY{X: float64(cs) / (1 << 20), Y: 100 * res[i][j].MissRatio()})
		}
		c.Series = append(c.Series, s)
	}
	return c
}

// TableVII reproduces disk I/Os as a function of block size and cache
// size under delayed-write.
func TableVII(b *cachesim.BlockSizeSweepResult) *Table {
	t := &Table{
		Title:  "Table VII. Disk I/Os vs. block size and cache size (delayed-write).",
		Header: []string{"Block Size", "No Cache (accesses)"},
		Note: "The first data column is the total number of logical block accesses at " +
			"each block size; the rest are disk I/Os with an LRU delayed-write cache.",
	}
	for _, cs := range b.CacheSizes {
		t.Header = append(t.Header, Size(cs)+" cache")
	}
	for i, bs := range b.BlockSizes {
		cells := []string{Size(bs), Count(b.Accesses[i])}
		for j := range b.CacheSizes {
			cells = append(cells, Count(b.Results[i][j].DiskIOs()))
		}
		t.AddRow(cells...)
	}
	return t
}

// Figure6 is the chart form of Table VII.
func Figure6(b *cachesim.BlockSizeSweepResult) *Chart {
	c := &Chart{
		Title:  "Figure 6. Disk traffic vs. block size and cache size (delayed-write, trace A5).",
		XLabel: "block size (kbytes)", YLabel: "disk I/Os", LogX: true,
	}
	for j, cs := range b.CacheSizes {
		s := Series{Name: Size(cs) + " cache"}
		for i, bs := range b.BlockSizes {
			s.Points = append(s.Points, XY{X: float64(bs) / 1024, Y: float64(b.Results[i][j].DiskIOs())})
		}
		c.Series = append(c.Series, s)
	}
	return c
}

// Figure7 reproduces the page-in experiment: miss ratios with exec-driven
// whole-file reads simulated versus ignored.
func Figure7(cacheSizes []int64, res [][2]*cachesim.Result) *Chart {
	c := &Chart{
		Title:  "Figure 7. Miss ratios with paging approximated by whole-file reads of executed programs (4-kbyte blocks, delayed-write, trace A5).",
		XLabel: "cache size (Mbytes)", YLabel: "miss ratio (percent)", LogX: true,
	}
	ignored := Series{Name: "Page-in ignored"}
	simulated := Series{Name: "Page-in simulated"}
	for i, cs := range cacheSizes {
		x := float64(cs) / (1 << 20)
		ignored.Points = append(ignored.Points, XY{X: x, Y: 100 * res[i][0].MissRatio()})
		simulated.Points = append(simulated.Points, XY{X: x, Y: 100 * res[i][1].MissRatio()})
	}
	c.Series = []Series{simulated, ignored}
	return c
}

// ResidencyTable reports the §6.2 delayed-write risk measurement.
func ResidencyTable(r *cachesim.Result) *Table {
	t := &Table{
		Title: "Block residency under delayed-write (paper §6.2).",
		Note: "The paper reports that with a 4-Mbyte delayed-write cache about 20% of " +
			"blocks stay in the cache longer than 20 minutes, so a crash could lose " +
			"substantial information.",
	}
	t.AddRow(fmt.Sprintf("Cache size: %s, block size %s", Size(r.Config.CacheSize), Size(r.Config.BlockSize)))
	t.AddRow(fmt.Sprintf("Blocks resident longer than %v: %s", r.Config.ResidencyThreshold, Pct(r.ResidencyOver)))
	t.AddRow(fmt.Sprintf("Dirty blocks never written (died in cache): %s", Pct(r.NeverWrittenFraction())))
	return t
}

// SharingTable reports cross-user file sharing (an extension beyond the
// paper's tables; its related work could not measure this directly).
func SharingTable(tr Traces) *Table {
	t := &Table{
		Title:  "Cross-user file sharing (extension).",
		Header: append([]string{""}, tr.Names...),
		Note: "A file is shared when more than one user (daemons included) opens or " +
			"executes it during the trace. Porcar (1977) could study only shared files, " +
			"under 10% of his system's; here the shared minority of files absorbs a " +
			"disproportionate share of accesses (headers, commands, administrative tables).",
	}
	row := func(label string, f func(a *analyzer.Analysis) string) {
		cells := []string{label}
		for _, a := range tr.Analyses {
			cells = append(cells, f(a))
		}
		t.AddRow(cells...)
	}
	row("Files accessed", func(a *analyzer.Analysis) string {
		return Count(a.Sharing.FilesAccessed)
	})
	row("Files shared between users", func(a *analyzer.Analysis) string {
		return fmt.Sprintf("%s (%s)", Count(a.Sharing.FilesShared), Pct(a.Sharing.SharedFileFraction()))
	})
	row("Accesses to shared files", func(a *analyzer.Analysis) string {
		return fmt.Sprintf("%s (%s)", Count(a.Sharing.AccessesToShared), Pct(a.Sharing.SharedAccessFraction()))
	})
	return t
}

// Reliability reports the crash-loss side of the write-policy trade:
// Table VI prices each policy in disk traffic, this table prices it in
// the data a crash would destroy. Reports come from internal/fault's
// single-pass crash sweep; policies and reports are parallel slices.
func Reliability(policies []cachesim.PolicySpec, reps []*fault.Report, cacheSize, blockSize int64, nPoints int) *Table {
	t := &Table{
		Title: fmt.Sprintf("Reliability. Data lost to a crash, by write policy (%s cache, %s blocks, %d sampled crash points).",
			Size(cacheSize), Size(blockSize), nPoints),
		Header: []string{"Policy", "Vulnerable", "Mean Loss", "Worst Loss", "Oldest Loss", "Disk Writes"},
		Note: "The paper adopts the 30-second flush-back because it keeps write traffic " +
			"near delayed-write levels while a crash loses at most one interval of dirty " +
			"data; write-through pays maximal disk writes for zero loss. \"Vulnerable\" is " +
			"the fraction of crash points that lose anything; \"Oldest Loss\" is how long " +
			"the most stale lost block had gone unwritten.",
	}
	for j, p := range policies {
		r := reps[j]
		worst := r.MaxLoss()
		t.AddRow(p.Name,
			Pct(r.VulnerableFraction()),
			Size(int64(r.MeanLossBytes())),
			Size(worst.Bytes),
			r.MaxAge().String(),
			Count(r.Result.DiskWrites),
		)
	}
	return t
}
