package analyzer

import (
	"bytes"
	"math"
	"testing"

	"bsdtrace/internal/trace"
)

// ev builders keep the test traces readable.
func open(t trace.Time, id trace.OpenID, f trace.FileID, u trace.UserID, m trace.Mode, size int64) trace.Event {
	return trace.Event{Time: t, Kind: trace.KindOpen, OpenID: id, File: f, User: u, Mode: m, Size: size}
}
func create(t trace.Time, id trace.OpenID, f trace.FileID, u trace.UserID) trace.Event {
	return trace.Event{Time: t, Kind: trace.KindCreate, OpenID: id, File: f, User: u, Mode: trace.WriteOnly}
}
func closeEv(t trace.Time, id trace.OpenID, pos int64) trace.Event {
	return trace.Event{Time: t, Kind: trace.KindClose, OpenID: id, NewPos: pos}
}
func seek(t trace.Time, id trace.OpenID, oldPos, newPos int64) trace.Event {
	return trace.Event{Time: t, Kind: trace.KindSeek, OpenID: id, OldPos: oldPos, NewPos: newPos}
}
func unlink(t trace.Time, f trace.FileID) trace.Event {
	return trace.Event{Time: t, Kind: trace.KindUnlink, File: f}
}

func TestOverallCountsAndBytes(t *testing.T) {
	events := []trace.Event{
		create(0, 1, 10, 1),
		closeEv(1*trace.Second, 1, 4096),
		open(2*trace.Second, 2, 10, 1, trace.ReadOnly, 4096),
		closeEv(3*trace.Second, 2, 4096),
		unlink(4*trace.Second, 10),
	}
	a := Analyze(events, Options{})
	if a.Overall.Counts.Total != 5 {
		t.Errorf("Total = %d", a.Overall.Counts.Total)
	}
	if a.Overall.BytesWritten != 4096 || a.Overall.BytesRead != 4096 {
		t.Errorf("bytes = %d written, %d read", a.Overall.BytesWritten, a.Overall.BytesRead)
	}
	if a.Overall.BytesTransferred != 8192 {
		t.Errorf("BytesTransferred = %d", a.Overall.BytesTransferred)
	}
	if a.Overall.Duration != 4*trace.Second {
		t.Errorf("Duration = %v", a.Overall.Duration)
	}
	if a.Overall.EncodedSize <= 0 {
		t.Errorf("EncodedSize = %d", a.Overall.EncodedSize)
	}
	if a.Overall.UnclosedOpens != 0 {
		t.Errorf("UnclosedOpens = %d", a.Overall.UnclosedOpens)
	}
}

func TestSequentialityClasses(t *testing.T) {
	events := []trace.Event{
		// Whole-file read.
		open(0, 1, 1, 1, trace.ReadOnly, 1000),
		closeEv(100, 1, 1000),
		// Partial sequential read (not whole-file).
		open(200, 2, 1, 1, trace.ReadOnly, 1000),
		closeEv(300, 2, 500),
		// Non-sequential read: two runs.
		open(400, 3, 1, 1, trace.ReadOnly, 1000),
		seek(450, 3, 200, 800),
		closeEv(500, 3, 900),
		// Whole-file write via create.
		create(600, 4, 2, 1),
		closeEv(700, 4, 2000),
		// Read-write append (sequential, not whole-file).
		open(800, 5, 2, 1, trace.ReadWrite, 2000),
		seek(850, 5, 0, 2000),
		closeEv(900, 5, 2500),
	}
	a := Analyze(events, Options{})
	s := &a.Sequentiality
	if s.Accesses[ClassReadOnly] != 3 || s.Accesses[ClassWriteOnly] != 1 || s.Accesses[ClassReadWrite] != 1 {
		t.Fatalf("accesses = %v", s.Accesses)
	}
	if s.WholeFile[ClassReadOnly] != 1 || s.WholeFile[ClassWriteOnly] != 1 || s.WholeFile[ClassReadWrite] != 0 {
		t.Errorf("whole-file = %v", s.WholeFile)
	}
	if s.Sequential[ClassReadOnly] != 2 || s.Sequential[ClassWriteOnly] != 1 || s.Sequential[ClassReadWrite] != 1 {
		t.Errorf("sequential = %v", s.Sequential)
	}
	if got := s.WholeFileFraction(ClassReadOnly); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("WholeFileFraction(ro) = %v", got)
	}
	if got := s.SequentialFraction(ClassReadOnly); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("SequentialFraction(ro) = %v", got)
	}
	wantBytes := int64(1000 + 500 + (200 + 100) + 2000 + 500)
	if s.BytesTotal != wantBytes {
		t.Errorf("BytesTotal = %d, want %d", s.BytesTotal, wantBytes)
	}
	if s.BytesWholeFile != 3000 {
		t.Errorf("BytesWholeFile = %d, want 3000", s.BytesWholeFile)
	}
}

func TestActivityThroughput(t *testing.T) {
	// One user transfers 1000 bytes in the first 10-second interval and
	// is silent for the rest of a 40-second trace; a second user is
	// active (opens a file) but transfers nothing.
	events := []trace.Event{
		open(0, 1, 1, 7, trace.ReadOnly, 1000),
		closeEv(1*trace.Second, 1, 1000),
		open(2*trace.Second, 2, 2, 8, trace.ReadOnly, 500),
		closeEv(11*trace.Second, 2, 0),
		unlink(39*trace.Second, 1),
	}
	a := Analyze(events, Options{})
	if a.Activity.TotalUsers != 2 {
		t.Errorf("TotalUsers = %d", a.Activity.TotalUsers)
	}
	// Whole-trace throughput: 1000 bytes over 39 seconds.
	if got, want := a.Activity.AvgThroughput, 1000.0/39; math.Abs(got-want) > 1e-9 {
		t.Errorf("AvgThroughput = %v, want %v", got, want)
	}
	sh := a.Activity.Short
	if sh.Interval != 10*trace.Second {
		t.Errorf("short interval = %v", sh.Interval)
	}
	// Interval 0 has users 7 and 8 active; interval 1 has user 8
	// (close at 11 s); intervals 2 and 3 have the unlink only (no user).
	if sh.MaxActiveUsers != 2 {
		t.Errorf("MaxActiveUsers = %d", sh.MaxActiveUsers)
	}
	// Per-user throughput samples: user7@i0 = 100 B/s, user8@i0 = 0,
	// user8@i1 = 0 -> mean 33.3.
	if got := sh.PerUserThroughput.N(); got != 3 {
		t.Errorf("per-user samples = %d, want 3", got)
	}
	if got, want := sh.PerUserThroughput.Mean(), 100.0/3; math.Abs(got-want) > 1e-9 {
		t.Errorf("per-user mean = %v, want %v", got, want)
	}
	// Long intervals: everything lands in one 10-minute bucket.
	lg := a.Activity.Long
	if lg.MaxActiveUsers != 2 || lg.ActiveUsers.N() != 1 {
		t.Errorf("long row: max=%d n=%d", lg.MaxActiveUsers, lg.ActiveUsers.N())
	}
}

func TestLifetimes(t *testing.T) {
	events := []trace.Event{
		// File 1: created, written, deleted after 60 s.
		create(0, 1, 1, 1),
		closeEv(1*trace.Second, 1, 1000),
		unlink(60*trace.Second, 1),
		// File 2: created, written, overwritten by re-create after 180 s.
		create(10*trace.Second, 2, 2, 1),
		closeEv(11*trace.Second, 2, 4000),
		create(190*trace.Second, 3, 2, 1),
		closeEv(191*trace.Second, 3, 100),
		// File 3: created and still alive at end of trace (censored).
		create(20*trace.Second, 4, 3, 1),
		closeEv(21*trace.Second, 4, 2000),
		// Pad the trace end out.
		unlink(400*trace.Second, 99),
	}
	a := Analyze(events, Options{})
	lt := a.Lifetimes
	// New files: 1, 2, 2 (re-created), 3 -> 4 births. Deaths: file1
	// unlink, file2 overwrite -> 2.
	if lt.NewFiles != 4 || lt.DeadFiles != 2 {
		t.Fatalf("NewFiles=%d DeadFiles=%d", lt.NewFiles, lt.DeadFiles)
	}
	// By files: 2 deaths (60 s, 180 s) + 2 survivors censored. Querying
	// at the death points (bucket boundaries) avoids the CDF's linear
	// interpolation between sparse points: at 60 s = 1/4; at 180 s = 2/4.
	if got := lt.ByFiles.FractionAtOrBelow(60); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("ByFiles(60s) = %v, want 0.25", got)
	}
	if got := lt.ByFiles.FractionAtOrBelow(180); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("ByFiles(180s) = %v, want 0.5", got)
	}
	// By bytes: dead bytes 1000 (60 s) + 4000 (180 s); survivors 2000 +
	// 100. Fraction at 60 s = 1000/7100.
	if got, want := lt.ByBytes.FractionAtOrBelow(60), 1000.0/7100; math.Abs(got-want) > 1e-9 {
		t.Errorf("ByBytes(60s) = %v, want %v", got, want)
	}
}

func TestTruncateToZeroBirthsAndKills(t *testing.T) {
	events := []trace.Event{
		create(0, 1, 1, 1),
		closeEv(1*trace.Second, 1, 1000),
		{Time: 30 * trace.Second, Kind: trace.KindTruncate, File: 1, Size: 0},
		// Write to the truncated file, then delete it.
		open(31*trace.Second, 2, 1, 1, trace.ReadWrite, 0),
		closeEv(32*trace.Second, 2, 500),
		unlink(90*trace.Second, 1),
	}
	a := Analyze(events, Options{})
	if a.Lifetimes.NewFiles != 2 || a.Lifetimes.DeadFiles != 2 {
		t.Fatalf("NewFiles=%d DeadFiles=%d", a.Lifetimes.NewFiles, a.Lifetimes.DeadFiles)
	}
	// Deaths at 30 s (truncate) and 60 s (unlink - truncate birth).
	if got := a.Lifetimes.ByFiles.FractionAtOrBelow(30); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("ByFiles(30s) = %v, want 0.5", got)
	}
	if got := a.Lifetimes.ByFiles.FractionAtOrBelow(60); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("ByFiles(60s) = %v, want 1", got)
	}
}

func TestOpenTimesCDF(t *testing.T) {
	events := []trace.Event{
		open(0, 1, 1, 1, trace.ReadOnly, 100),
		closeEv(100*trace.Millisecond, 1, 100), // 0.1 s
		open(1*trace.Second, 2, 1, 1, trace.ReadOnly, 100),
		closeEv(21*trace.Second, 2, 100), // 20 s
	}
	a := Analyze(events, Options{})
	if got := a.OpenTimes.FractionAtOrBelow(0.5); math.Abs(got-0.5) > 0.05 {
		t.Errorf("OpenTimes(0.5s) = %v, want ~0.5", got)
	}
	if got := a.OpenTimes.FractionAtOrBelow(100); got != 1 {
		t.Errorf("OpenTimes(100s) = %v, want 1", got)
	}
}

func TestRunLengthCDFs(t *testing.T) {
	// Nine short runs of 100 bytes and one long run of 100,000 bytes:
	// 90% of runs are short, but ~99% of bytes are in the long run.
	var events []trace.Event
	var id trace.OpenID = 1
	tm := trace.Time(0)
	for i := 0; i < 9; i++ {
		events = append(events,
			open(tm, id, trace.FileID(i+1), 1, trace.ReadOnly, 100),
			closeEv(tm+10, id, 100))
		id++
		tm += 100
	}
	events = append(events,
		open(tm, id, 99, 1, trace.ReadOnly, 100000),
		closeEv(tm+10, id, 100000))
	a := Analyze(events, Options{})
	if got := a.RunLengthsByRuns.FractionAtOrBelow(200); math.Abs(got-0.9) > 0.01 {
		t.Errorf("by runs at 200B = %v, want 0.9", got)
	}
	if got := a.RunLengthsByBytes.FractionAtOrBelow(200); got > 0.02 {
		t.Errorf("by bytes at 200B = %v, want ~0.009", got)
	}
}

func TestFileSizeCDFs(t *testing.T) {
	events := []trace.Event{
		// A small file accessed fully and a large file accessed barely.
		open(0, 1, 1, 1, trace.ReadOnly, 1000),
		closeEv(10, 1, 1000),
		open(100, 2, 2, 1, trace.ReadOnly, 1<<20),
		seek(110, 2, 0, 1<<19),
		closeEv(120, 2, 1<<19+100),
	}
	a := Analyze(events, Options{})
	// Half the accesses are to files <= 10 KB.
	if got := a.FileSizesByFiles.FractionAtOrBelow(10000); math.Abs(got-0.5) > 0.01 {
		t.Errorf("by files at 10KB = %v, want 0.5", got)
	}
	// Bytes: 1000 from the small file, 100 from the big one.
	if got, want := a.FileSizesByBytes.FractionAtOrBelow(10000), 1000.0/1100; math.Abs(got-want) > 0.01 {
		t.Errorf("by bytes at 10KB = %v, want %v", got, want)
	}
}

func TestEventIntervals(t *testing.T) {
	events := []trace.Event{
		open(0, 1, 1, 1, trace.ReadOnly, 1000),
		closeEv(100*trace.Millisecond, 1, 1000), // gap 0.1 s
		open(1*trace.Second, 2, 1, 1, trace.ReadOnly, 1000),
		closeEv(41*trace.Second, 2, 1000), // gap 40 s
	}
	a := Analyze(events, Options{})
	if got := a.EventIntervals.FractionAtOrBelow(0.5); math.Abs(got-0.5) > 0.05 {
		t.Errorf("gaps at 0.5s = %v, want 0.5", got)
	}
}

func TestAnalyzeReader(t *testing.T) {
	events := []trace.Event{
		open(0, 1, 1, 1, trace.ReadOnly, 100),
		closeEv(10, 1, 100),
	}
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := AnalyzeReader(r, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Overall.Counts.Total != 2 || a.Overall.BytesRead != 100 {
		t.Errorf("AnalyzeReader result wrong: %+v", a.Overall)
	}
}

func TestEmptyTrace(t *testing.T) {
	a := Analyze(nil, Options{})
	if a.Overall.Counts.Total != 0 || a.Activity.AvgThroughput != 0 {
		t.Errorf("empty trace not neutral: %+v", a.Overall)
	}
	if a.OpenTimes != nil {
		t.Errorf("empty trace produced CDFs")
	}
}

func TestUnclosedOpenCounted(t *testing.T) {
	events := []trace.Event{
		open(0, 1, 1, 1, trace.ReadOnly, 100),
	}
	a := Analyze(events, Options{})
	if a.Overall.UnclosedOpens != 1 {
		t.Errorf("UnclosedOpens = %d", a.Overall.UnclosedOpens)
	}
}

func TestModeClassString(t *testing.T) {
	if ClassReadOnly.String() != "read-only" || ClassReadWrite.String() != "read-write" {
		t.Errorf("class names wrong")
	}
	if ModeClass(9).String() != "unknown" {
		t.Errorf("unknown class name wrong")
	}
}

func TestSharing(t *testing.T) {
	events := []trace.Event{
		// File 1: two users read it -> shared.
		open(0, 1, 1, 10, trace.ReadOnly, 100),
		closeEv(10, 1, 100),
		open(20, 2, 1, 11, trace.ReadOnly, 100),
		closeEv(30, 2, 100),
		// File 2: one user, twice -> not shared.
		open(40, 3, 2, 10, trace.ReadOnly, 100),
		closeEv(50, 3, 100),
		open(60, 4, 2, 10, trace.ReadOnly, 100),
		closeEv(70, 4, 100),
		// File 3: exec by a second user makes it shared.
		open(80, 5, 3, 10, trace.ReadOnly, 100),
		closeEv(90, 5, 100),
		{Time: 100, Kind: trace.KindExec, File: 3, User: 12, Size: 100},
	}
	a := Analyze(events, Options{})
	sh := a.Sharing
	if sh.FilesAccessed != 3 || sh.FilesShared != 2 {
		t.Fatalf("sharing = %+v", sh)
	}
	if sh.AccessesTotal != 6 || sh.AccessesToShared != 4 {
		t.Errorf("accesses = %+v", sh)
	}
	if got := sh.SharedFileFraction(); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("SharedFileFraction = %v", got)
	}
	if got := sh.SharedAccessFraction(); math.Abs(got-4.0/6) > 1e-9 {
		t.Errorf("SharedAccessFraction = %v", got)
	}
	var empty Sharing
	if empty.SharedFileFraction() != 0 || empty.SharedAccessFraction() != 0 {
		t.Errorf("empty sharing fractions should be 0")
	}
}

func TestTopFiles(t *testing.T) {
	events := []trace.Event{
		// File 1: three opens by two users, 300 bytes.
		open(0, 1, 1, 10, trace.ReadOnly, 100),
		closeEv(10, 1, 100),
		open(20, 2, 1, 11, trace.ReadOnly, 100),
		closeEv(30, 2, 100),
		open(40, 3, 1, 10, trace.ReadOnly, 100),
		closeEv(50, 3, 100),
		// File 2: one exec.
		{Time: 60, Kind: trace.KindExec, File: 2, User: 10, Size: 5000},
		// File 3: one open, more bytes than file 2.
		open(70, 4, 3, 10, trace.ReadOnly, 900),
		closeEv(80, 4, 900),
	}
	top := TopFiles(events, 2)
	if len(top) != 2 {
		t.Fatalf("len = %d", len(top))
	}
	if top[0].File != 1 || top[0].Opens != 3 || top[0].Bytes != 300 || top[0].Users != 2 {
		t.Errorf("top[0] = %+v", top[0])
	}
	// Tie between files 2 and 3 on accesses; file 3 wins on bytes.
	if top[1].File != 3 || top[1].Bytes != 900 {
		t.Errorf("top[1] = %+v", top[1])
	}
	// Unlimited.
	all := TopFiles(events, 0)
	if len(all) != 3 {
		t.Errorf("all = %d files", len(all))
	}
	if all[2].File != 2 || all[2].Execs != 1 || all[2].LastSize != 5000 {
		t.Errorf("exec file stat = %+v", all[2])
	}
}
