package analyzer

import (
	"sort"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/xfer"
)

// FileStat summarizes one file's activity over a trace: the raw material
// for "which files are the hot ones" questions. The paper observed that a
// few megabyte-scale administrative files absorb almost 20% of all
// accesses (Figure 2); TopFiles makes such files visible individually.
// Traces carry only file identifiers, as the 1985 traces did, so files
// are reported by id plus their observable properties.
type FileStat struct {
	File trace.FileID
	// Opens counts opens and creates; Execs counts execve events.
	Opens int64
	Execs int64
	// Bytes is the total data transferred to or from the file.
	Bytes int64
	// LastSize is the file's size when last observed.
	LastSize int64
	// Users counts distinct users that touched the file (capped at 2
	// plus: 1 means private, 2 means shared).
	Users int
}

// Accesses returns opens plus execs.
func (f *FileStat) Accesses() int64 { return f.Opens + f.Execs }

// TopAccum accumulates per-file statistics one event at a time; its state
// is bounded by the number of distinct files, never the event count. Feed
// events in time order, then call Top.
type TopAccum struct {
	m  map[trace.FileID]*topAcc
	sc *xfer.Scanner
}

type topAcc struct {
	stat  FileStat
	first trace.UserID
}

// NewTopAccum creates an empty accumulator.
func NewTopAccum() *TopAccum {
	a := &TopAccum{m: make(map[trace.FileID]*topAcc), sc: xfer.NewScanner()}
	a.sc.OnTransfer = func(t xfer.Transfer) {
		a.get(t.File).stat.Bytes += t.Length
	}
	a.sc.OnOpenEnd = func(o xfer.OpenSummary) {
		a.get(o.File).stat.LastSize = o.SizeAtClose
	}
	return a
}

func (a *TopAccum) get(f trace.FileID) *topAcc {
	t := a.m[f]
	if t == nil {
		t = &topAcc{stat: FileStat{File: f}}
		a.m[f] = t
	}
	return t
}

func (a *TopAccum) seen(t *topAcc, u trace.UserID) {
	switch {
	case t.stat.Users == 0:
		t.stat.Users = 1
		t.first = u
	case t.stat.Users == 1 && u != t.first:
		t.stat.Users = 2
	}
}

// Feed tallies one event. Events must arrive in time order.
func (a *TopAccum) Feed(e trace.Event) {
	switch e.Kind {
	case trace.KindCreate, trace.KindOpen:
		t := a.get(e.File)
		t.stat.Opens++
		a.seen(t, e.User)
	case trace.KindExec:
		t := a.get(e.File)
		t.stat.Execs++
		a.seen(t, e.User)
		if e.Size > t.stat.LastSize {
			t.stat.LastSize = e.Size
		}
	}
	a.sc.Feed(e)
}

// Top finishes the accumulation and returns the n most-accessed files
// (opens + execs), ties broken by bytes then id for determinism.
func (a *TopAccum) Top(n int) []FileStat {
	a.sc.Finish()
	out := make([]FileStat, 0, len(a.m))
	for _, t := range a.m {
		out = append(out, t.stat)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Accesses() != out[j].Accesses() {
			return out[i].Accesses() > out[j].Accesses()
		}
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].File < out[j].File
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// TopFiles returns per-file statistics for the n most-accessed files of
// an in-memory trace. It is a TopAccum fed from a slice.
func TopFiles(events []trace.Event, n int) []FileStat {
	a := NewTopAccum()
	for _, e := range events {
		a.Feed(e)
	}
	return a.Top(n)
}
