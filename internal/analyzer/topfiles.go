package analyzer

import (
	"sort"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/xfer"
)

// FileStat summarizes one file's activity over a trace: the raw material
// for "which files are the hot ones" questions. The paper observed that a
// few megabyte-scale administrative files absorb almost 20% of all
// accesses (Figure 2); TopFiles makes such files visible individually.
// Traces carry only file identifiers, as the 1985 traces did, so files
// are reported by id plus their observable properties.
type FileStat struct {
	File trace.FileID
	// Opens counts opens and creates; Execs counts execve events.
	Opens int64
	Execs int64
	// Bytes is the total data transferred to or from the file.
	Bytes int64
	// LastSize is the file's size when last observed.
	LastSize int64
	// Users counts distinct users that touched the file (capped at 2
	// plus: 1 means private, 2 means shared).
	Users int
}

// Accesses returns opens plus execs.
func (f *FileStat) Accesses() int64 { return f.Opens + f.Execs }

// TopFiles returns per-file statistics for the n most-accessed files
// (opens + execs), ties broken by bytes then id for determinism.
func TopFiles(events []trace.Event, n int) []FileStat {
	type acc struct {
		stat  FileStat
		first trace.UserID
	}
	m := make(map[trace.FileID]*acc)
	get := func(f trace.FileID) *acc {
		a := m[f]
		if a == nil {
			a = &acc{stat: FileStat{File: f}}
			m[f] = a
		}
		return a
	}
	seen := func(a *acc, u trace.UserID) {
		switch {
		case a.stat.Users == 0:
			a.stat.Users = 1
			a.first = u
		case a.stat.Users == 1 && u != a.first:
			a.stat.Users = 2
		}
	}

	sc := xfer.NewScanner()
	sc.OnTransfer = func(t xfer.Transfer) {
		get(t.File).stat.Bytes += t.Length
	}
	sc.OnOpenEnd = func(o xfer.OpenSummary) {
		get(o.File).stat.LastSize = o.SizeAtClose
	}
	for _, e := range events {
		switch e.Kind {
		case trace.KindCreate, trace.KindOpen:
			a := get(e.File)
			a.stat.Opens++
			seen(a, e.User)
		case trace.KindExec:
			a := get(e.File)
			a.stat.Execs++
			seen(a, e.User)
			if e.Size > a.stat.LastSize {
				a.stat.LastSize = e.Size
			}
		}
		sc.Feed(e)
	}
	sc.Finish()

	out := make([]FileStat, 0, len(m))
	for _, a := range m {
		out = append(out, a.stat)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Accesses() != out[j].Accesses() {
			return out[i].Accesses() > out[j].Accesses()
		}
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].File < out[j].File
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
