package analyzer

import (
	"errors"
	"strings"
	"testing"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/trace/adapt"
)

func TestMetricSetClasses(t *testing.T) {
	cases := []struct {
		set   *MetricSet
		class trace.Class
		ok    bool
	}{
		{&LogicalMetrics, trace.ClassLogical, true},
		{&LogicalMetrics, trace.ClassBlock, false},
		{&LogicalMetrics, trace.ClassPage, false},
		{&TransferMetrics, trace.ClassLogical, true},
		{&TransferMetrics, trace.ClassBlock, true},
		{&TransferMetrics, trace.ClassPage, true},
	}
	for _, c := range cases {
		if got := c.set.Supports(c.class); got != c.ok {
			t.Errorf("%s.Supports(%v) = %v, want %v", c.set.Name, c.class, got, c.ok)
		}
		err := c.set.Check(c.class)
		if c.ok && err != nil {
			t.Errorf("%s.Check(%v) = %v, want nil", c.set.Name, c.class, err)
		}
		if !c.ok {
			if !errors.Is(err, ErrUnsupportedClass) {
				t.Errorf("%s.Check(%v) = %v, want ErrUnsupportedClass", c.set.Name, c.class, err)
			}
			var uce *UnsupportedClassError
			if !errors.As(err, &uce) || uce.Class != c.class {
				t.Errorf("%s.Check(%v) is not a typed UnsupportedClassError carrying the class", c.set.Name, c.class)
			}
		}
	}
}

func TestSectionOwnership(t *testing.T) {
	// Every section belongs to exactly one set, and the CLI's historical
	// -only names are all claimed.
	for _, s := range LogicalMetrics.Sections {
		if TransferMetrics.HasSection(s) {
			t.Errorf("section %q claimed by both metric sets", s)
		}
		if SectionMetrics(s) != &LogicalMetrics {
			t.Errorf("SectionMetrics(%q) is not LogicalMetrics", s)
		}
	}
	for _, s := range TransferMetrics.Sections {
		if SectionMetrics(s) != &TransferMetrics {
			t.Errorf("SectionMetrics(%q) is not TransferMetrics", s)
		}
	}
	if SectionMetrics("tableIX") != nil {
		t.Error("SectionMetrics invented an owner for an unknown section")
	}
	// Matching is case-insensitive, like the CLI's -only flag.
	if !LogicalMetrics.HasSection("TABLEV") {
		t.Error("section matching is case-sensitive")
	}
}

func TestCheckSection(t *testing.T) {
	if err := CheckSection("tableV", trace.ClassLogical); err != nil {
		t.Errorf("tableV on logical trace: %v", err)
	}
	if err := CheckSection("tableVI", trace.ClassBlock); err != nil {
		t.Errorf("tableVI on block trace: %v", err)
	}
	err := CheckSection("tableV", trace.ClassBlock)
	if !errors.Is(err, ErrUnsupportedClass) {
		t.Errorf("tableV on block trace = %v, want ErrUnsupportedClass", err)
	}
	if err := CheckSection("nonsense", trace.ClassLogical); err == nil || errors.Is(err, ErrUnsupportedClass) {
		t.Errorf("unknown section = %v, want a plain unknown-section error", err)
	}
}

// TestAnalyzeClassedGate feeds a real block-class adapter into the
// logical battery and demands the typed refusal, then confirms a logical
// source still analyzes.
func TestAnalyzeClassedGate(t *testing.T) {
	src, err := adapt.NewSource(adapt.FormatBlockCSV, strings.NewReader(
		"1000,host,0,Read,0,4096\n2000,host,0,Write,4096,4096\n"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = AnalyzeClassed(src, Options{})
	if !errors.Is(err, ErrUnsupportedClass) {
		t.Fatalf("AnalyzeClassed(block source) = %v, want ErrUnsupportedClass", err)
	}
	var uce *UnsupportedClassError
	if !errors.As(err, &uce) || uce.Class != trace.ClassBlock {
		t.Fatalf("error %v does not carry ClassBlock", err)
	}

	events := []trace.Event{
		{Time: 0, Kind: trace.KindOpen, OpenID: 1, File: 1, User: 1, Mode: trace.ReadOnly, Size: 100},
		{Time: 10, Kind: trace.KindClose, OpenID: 1, NewPos: 100},
	}
	an, err := AnalyzeClassed(trace.NewSliceSource(events), Options{})
	if err != nil {
		t.Fatalf("AnalyzeClassed(logical source) = %v", err)
	}
	if an.Overall.Counts.Total != 2 {
		t.Fatalf("analysis saw %d events, want 2", an.Overall.Counts.Total)
	}
}
