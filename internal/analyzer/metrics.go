package analyzer

import (
	"errors"
	"fmt"
	"strings"

	"bsdtrace/internal/trace"
)

// The paper's metric battery splits along the event vocabulary it needs.
// The logical metrics (Tables III-V, Figures 1-4, the §3.1 intervals, the
// sharing extension) interpret opens, closes, and the structure between
// them: open durations, access classes, whole-file sequentiality, file
// lifetimes. The transfer metrics (Tables VI-VII) only need the
// reconstructed block traffic. A foreign block or page trace re-encoded
// through the adapt package carries real transfers but fabricated
// open/close structure — every "open" is a single I/O request — so
// running a logical metric over it would produce numbers that look like
// the paper's tables and mean nothing. Metric sets make that distinction
// checkable: each set declares the trace classes whose semantics it
// respects, and consumers gate rendering on Check.

// ErrUnsupportedClass is the sentinel wrapped by every class-gating
// failure: the requested metric does not carry its intended meaning for
// the trace class at hand.
var ErrUnsupportedClass = errors.New("metric not supported for trace class")

// UnsupportedClassError reports which metric rejected which class.
// It unwraps to ErrUnsupportedClass.
type UnsupportedClassError struct {
	// Metric is the metric-set or section name that was requested.
	Metric string
	// Class is the class of the offending trace.
	Class trace.Class
}

func (e *UnsupportedClassError) Error() string {
	return fmt.Sprintf("analyzer: %s: %v (trace class %q has no %s semantics)",
		e.Metric, ErrUnsupportedClass, e.Class, e.Metric)
}

func (e *UnsupportedClassError) Unwrap() error { return ErrUnsupportedClass }

// MetricSet names one half of the battery: the report sections it owns
// and the trace classes whose semantics those sections respect.
type MetricSet struct {
	// Name identifies the set in error messages.
	Name string
	// Sections lists the report/CLI section names the set owns, in
	// rendering order. Matching is case-insensitive.
	Sections []string
	// Classes lists the trace classes the set supports.
	Classes []trace.Class
}

// LogicalMetrics is the open/close battery: it requires real logical
// structure and therefore accepts only logical traces.
var LogicalMetrics = MetricSet{
	Name: "logical metrics",
	Sections: []string{
		"tableIII", "tableIV", "tableV", "intervals", "sharing",
		"fig1", "fig2", "fig3", "fig4",
	},
	Classes: []trace.Class{trace.ClassLogical},
}

// TransferMetrics is the block-traffic battery: rates and cache sweeps
// are meaningful for any class, since every adapter produces faithful
// transfers.
var TransferMetrics = MetricSet{
	Name: "transfer metrics",
	Sections: []string{
		"transfers", "tableVI", "tableVII",
	},
	Classes: []trace.Class{trace.ClassLogical, trace.ClassBlock, trace.ClassPage},
}

// Supports reports whether the set's metrics are meaningful for class c.
func (m *MetricSet) Supports(c trace.Class) bool {
	for _, have := range m.Classes {
		if have == c {
			return true
		}
	}
	return false
}

// Check returns nil when the set supports class c, and an
// *UnsupportedClassError otherwise.
func (m *MetricSet) Check(c trace.Class) error {
	if m.Supports(c) {
		return nil
	}
	return &UnsupportedClassError{Metric: m.Name, Class: c}
}

// HasSection reports whether the set owns the named report section.
func (m *MetricSet) HasSection(name string) bool {
	for _, s := range m.Sections {
		if strings.EqualFold(s, name) {
			return true
		}
	}
	return false
}

// SectionMetrics returns the metric set owning the named section, or nil
// when no set claims it.
func SectionMetrics(section string) *MetricSet {
	switch {
	case LogicalMetrics.HasSection(section):
		return &LogicalMetrics
	case TransferMetrics.HasSection(section):
		return &TransferMetrics
	}
	return nil
}

// CheckSection gates one named section against a trace class: nil when
// the owning set supports the class, a typed *UnsupportedClassError when
// it does not, and an unknown-section error when no set owns the name.
func CheckSection(section string, c trace.Class) error {
	m := SectionMetrics(section)
	if m == nil {
		return fmt.Errorf("analyzer: unknown section %q", section)
	}
	if m.Supports(c) {
		return nil
	}
	return &UnsupportedClassError{Metric: section, Class: c}
}

// AnalyzeClassed runs the logical battery over a source, first checking
// that the source's declared class supports it: feeding a block or page
// trace through the Section-5 analysis would silently misread transfer
// triples as real open/close behavior, so the gate fails with a typed
// error instead.
func AnalyzeClassed(src trace.Source, opts Options) (*Analysis, error) {
	if err := LogicalMetrics.Check(trace.SourceClass(src)); err != nil {
		return nil, err
	}
	return AnalyzeSource(src, opts)
}
