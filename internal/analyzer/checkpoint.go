package analyzer

import (
	"errors"
	"fmt"
	"sort"

	"bsdtrace/internal/stats"
	"bsdtrace/internal/trace"
)

// Stream checkpoint serialization.
//
// MarshalBinary captures the complete incremental state of an unfinished
// Stream — histograms, activity accumulators, the open/live/share
// tables, the transfer scanner, and the encoder position that backs
// EncodedSize — and RestoreStream rebuilds a Stream from it. The restore
// invariant, pinned by TestStreamCheckpointRoundTrip, is byte-exactness:
// feeding events e(n+1)..e(N) into a Stream restored at position n and
// finishing produces an Analysis (and a rendered report) identical to
// feeding e(1)..e(N) into one Stream without interruption. Floating-point
// state round-trips through exact bit patterns, and all maps are
// serialized in sorted key order, so the blob itself is a deterministic
// function of the stream's state.
//
// The format is a versioned byte string read with bounds-checked
// decoders: RestoreStream never panics on corrupt input (fuzzed by
// FuzzRestoreStream), it returns an error.

const streamStateVersion = 1

// ErrFinished reports an attempt to checkpoint a Stream after Finish:
// finishing consumes the incremental state (censored lifetimes, flushed
// intervals), so a finished stream is not resumable.
var ErrFinished = errors.New("analyzer: cannot checkpoint a finished Stream")

func appendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func decodeBool(buf []byte) (bool, []byte, error) {
	if len(buf) < 1 {
		return false, nil, stats.ErrCorruptState
	}
	return buf[0] != 0, buf[1:], nil
}

func (a *activityAccum) appendState(buf []byte) []byte {
	buf = stats.AppendVarint(buf, int64(a.width))
	buf = stats.AppendVarint(buf, a.current)
	buf = appendBool(buf, a.started)
	buf = stats.AppendVarint(buf, int64(a.row.MaxActiveUsers))
	buf = a.row.ActiveUsers.AppendState(buf)
	buf = a.row.PerUserThroughput.AppendState(buf)
	buf = stats.AppendUvarint(buf, uint64(len(a.users)))
	ids := make([]trace.UserID, 0, len(a.users))
	for u := range a.users {
		ids = append(ids, u)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, u := range ids {
		buf = stats.AppendUvarint(buf, uint64(u))
		buf = stats.AppendVarint(buf, a.users[u])
	}
	return buf
}

func (a *activityAccum) decodeState(buf []byte) ([]byte, error) {
	w, buf, err := stats.DecodeVarint(buf)
	if err != nil {
		return nil, err
	}
	if trace.Time(w) != a.width {
		return nil, fmt.Errorf("analyzer: checkpoint interval %v, stream has %v", trace.Time(w), a.width)
	}
	if a.current, buf, err = stats.DecodeVarint(buf); err != nil {
		return nil, err
	}
	if a.started, buf, err = decodeBool(buf); err != nil {
		return nil, err
	}
	var x int64
	if x, buf, err = stats.DecodeVarint(buf); err != nil {
		return nil, err
	}
	a.row.MaxActiveUsers = int(x)
	if buf, err = a.row.ActiveUsers.DecodeState(buf); err != nil {
		return nil, err
	}
	if buf, err = a.row.PerUserThroughput.DecodeState(buf); err != nil {
		return nil, err
	}
	n, buf, err := stats.DecodeUvarint(buf)
	if err != nil {
		return nil, err
	}
	if n > 1<<28 {
		return nil, stats.ErrCorruptState
	}
	a.users = make(map[trace.UserID]int64, n)
	for i := uint64(0); i < n; i++ {
		var u uint64
		var b int64
		if u, buf, err = stats.DecodeUvarint(buf); err != nil {
			return nil, err
		}
		if b, buf, err = stats.DecodeVarint(buf); err != nil {
			return nil, err
		}
		a.users[trace.UserID(u)] = b
	}
	return buf, nil
}

// MarshalBinary serializes the stream's complete incremental state. It
// must be called from the feeding goroutine or with the same external
// synchronization as Feed. It fails on a finished stream.
func (s *Stream) MarshalBinary() ([]byte, error) {
	if s.finished {
		return nil, ErrFinished
	}
	// Drain the encoder so the byte counter is exact. This flushes an
	// internal buffer only; the encoding of later events is unaffected.
	if err := s.enc.Flush(); err != nil {
		return nil, err
	}

	buf := stats.AppendUvarint(nil, streamStateVersion)

	// Partial Analysis scalars (CDFs and finish-time fields are derived).
	an := s.an
	buf = stats.AppendVarint(buf, int64(an.Overall.Duration))
	for _, c := range an.Overall.Counts.ByKind {
		buf = stats.AppendVarint(buf, c)
	}
	buf = stats.AppendVarint(buf, an.Overall.Counts.Total)
	buf = stats.AppendVarint(buf, an.Overall.BytesTransferred)
	buf = stats.AppendVarint(buf, an.Overall.BytesRead)
	buf = stats.AppendVarint(buf, an.Overall.BytesWritten)
	for c := ModeClass(0); c < numClasses; c++ {
		buf = stats.AppendVarint(buf, an.Sequentiality.Accesses[c])
		buf = stats.AppendVarint(buf, an.Sequentiality.WholeFile[c])
		buf = stats.AppendVarint(buf, an.Sequentiality.Sequential[c])
	}
	buf = stats.AppendVarint(buf, an.Sequentiality.BytesTotal)
	buf = stats.AppendVarint(buf, an.Sequentiality.BytesWholeFile)
	buf = stats.AppendVarint(buf, an.Sequentiality.BytesSequential)
	buf = stats.AppendVarint(buf, an.Lifetimes.NewFiles)
	buf = stats.AppendVarint(buf, an.Lifetimes.DeadFiles)

	// Histograms, in the fixed field order of the struct.
	for _, h := range s.histograms() {
		buf = h.AppendState(buf)
	}

	// Activity accumulators (their widths pin the Options used).
	buf = s.longAcc.appendState(buf)
	buf = s.shortAcc.appendState(buf)

	// User / open / live-file / share tables, sorted.
	buf = stats.AppendUvarint(buf, uint64(len(s.usersSeen)))
	users := make([]trace.UserID, 0, len(s.usersSeen))
	for u := range s.usersSeen {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	for _, u := range users {
		buf = stats.AppendUvarint(buf, uint64(u))
	}

	buf = stats.AppendUvarint(buf, uint64(len(s.openUser)))
	opens := make([]trace.OpenID, 0, len(s.openUser))
	for o := range s.openUser {
		opens = append(opens, o)
	}
	sort.Slice(opens, func(i, j int) bool { return opens[i] < opens[j] })
	for _, o := range opens {
		buf = stats.AppendUvarint(buf, uint64(o))
		buf = stats.AppendUvarint(buf, uint64(s.openUser[o]))
	}

	buf = stats.AppendUvarint(buf, uint64(len(s.lives)))
	lives := make([]trace.FileID, 0, len(s.lives))
	for f := range s.lives {
		lives = append(lives, f)
	}
	sort.Slice(lives, func(i, j int) bool { return lives[i] < lives[j] })
	for _, f := range lives {
		st := s.lives[f]
		buf = stats.AppendUvarint(buf, uint64(f))
		buf = stats.AppendVarint(buf, int64(st.birth))
		buf = stats.AppendVarint(buf, st.bytes)
	}

	buf = stats.AppendUvarint(buf, uint64(len(s.shares)))
	shared := make([]trace.FileID, 0, len(s.shares))
	for f := range s.shares {
		shared = append(shared, f)
	}
	sort.Slice(shared, func(i, j int) bool { return shared[i] < shared[j] })
	for _, f := range shared {
		sh := s.shares[f]
		buf = stats.AppendUvarint(buf, uint64(f))
		buf = stats.AppendUvarint(buf, uint64(sh.first))
		buf = stats.AppendVarint(buf, int64(sh.users))
		buf = stats.AppendVarint(buf, sh.accesses)
	}

	// Transfer scanner.
	buf = s.sc.AppendState(buf)

	// Encoder position: byte count and delta base, so EncodedSize stays
	// continuous across a restore.
	buf = stats.AppendVarint(buf, s.counter.n)
	wst := s.enc.State()
	buf = stats.AppendVarint(buf, wst.Count)
	buf = stats.AppendVarint(buf, int64(wst.Prev))
	return appendBool(buf, wst.Begun), nil
}

// histograms returns the stream's histograms in serialization order.
func (s *Stream) histograms() []*stats.Histogram {
	return []*stats.Histogram{
		s.runLenRuns, s.runLenBytes, s.sizeFiles, s.sizeBytes,
		s.openTimes, s.lifeFiles, s.lifeBytes, s.gaps,
	}
}

// RestoreStream rebuilds a Stream from a MarshalBinary blob. The
// returned stream continues exactly where the original stopped: Feed the
// remaining events and Finish, and every result is byte-identical to an
// uninterrupted run. opts must equal the original stream's Options (the
// zero Options works for streams created with it); a mismatch is
// detected and reported.
func RestoreStream(data []byte, opts Options) (*Stream, error) {
	ver, buf, err := stats.DecodeUvarint(data)
	if err != nil {
		return nil, err
	}
	if ver != streamStateVersion {
		return nil, fmt.Errorf("analyzer: stream state version %d, want %d", ver, streamStateVersion)
	}
	s := NewStream(opts)
	an := s.an

	var x int64
	if x, buf, err = stats.DecodeVarint(buf); err != nil {
		return nil, err
	}
	an.Overall.Duration = trace.Time(x)
	for i := range an.Overall.Counts.ByKind {
		if an.Overall.Counts.ByKind[i], buf, err = stats.DecodeVarint(buf); err != nil {
			return nil, err
		}
	}
	if an.Overall.Counts.Total, buf, err = stats.DecodeVarint(buf); err != nil {
		return nil, err
	}
	if an.Overall.BytesTransferred, buf, err = stats.DecodeVarint(buf); err != nil {
		return nil, err
	}
	if an.Overall.BytesRead, buf, err = stats.DecodeVarint(buf); err != nil {
		return nil, err
	}
	if an.Overall.BytesWritten, buf, err = stats.DecodeVarint(buf); err != nil {
		return nil, err
	}
	for c := ModeClass(0); c < numClasses; c++ {
		if an.Sequentiality.Accesses[c], buf, err = stats.DecodeVarint(buf); err != nil {
			return nil, err
		}
		if an.Sequentiality.WholeFile[c], buf, err = stats.DecodeVarint(buf); err != nil {
			return nil, err
		}
		if an.Sequentiality.Sequential[c], buf, err = stats.DecodeVarint(buf); err != nil {
			return nil, err
		}
	}
	if an.Sequentiality.BytesTotal, buf, err = stats.DecodeVarint(buf); err != nil {
		return nil, err
	}
	if an.Sequentiality.BytesWholeFile, buf, err = stats.DecodeVarint(buf); err != nil {
		return nil, err
	}
	if an.Sequentiality.BytesSequential, buf, err = stats.DecodeVarint(buf); err != nil {
		return nil, err
	}
	if an.Lifetimes.NewFiles, buf, err = stats.DecodeVarint(buf); err != nil {
		return nil, err
	}
	if an.Lifetimes.DeadFiles, buf, err = stats.DecodeVarint(buf); err != nil {
		return nil, err
	}

	for _, h := range s.histograms() {
		if buf, err = h.DecodeState(buf); err != nil {
			return nil, err
		}
	}

	if buf, err = s.longAcc.decodeState(buf); err != nil {
		return nil, err
	}
	if buf, err = s.shortAcc.decodeState(buf); err != nil {
		return nil, err
	}

	n, buf, err := stats.DecodeUvarint(buf)
	if err != nil {
		return nil, err
	}
	if n > 1<<28 {
		return nil, stats.ErrCorruptState
	}
	s.usersSeen = make(map[trace.UserID]bool, n)
	for i := uint64(0); i < n; i++ {
		var u uint64
		if u, buf, err = stats.DecodeUvarint(buf); err != nil {
			return nil, err
		}
		s.usersSeen[trace.UserID(u)] = true
	}

	if n, buf, err = stats.DecodeUvarint(buf); err != nil {
		return nil, err
	}
	if n > 1<<28 {
		return nil, stats.ErrCorruptState
	}
	s.openUser = make(map[trace.OpenID]trace.UserID, n)
	for i := uint64(0); i < n; i++ {
		var o, u uint64
		if o, buf, err = stats.DecodeUvarint(buf); err != nil {
			return nil, err
		}
		if u, buf, err = stats.DecodeUvarint(buf); err != nil {
			return nil, err
		}
		s.openUser[trace.OpenID(o)] = trace.UserID(u)
	}

	if n, buf, err = stats.DecodeUvarint(buf); err != nil {
		return nil, err
	}
	if n > 1<<28 {
		return nil, stats.ErrCorruptState
	}
	s.lives = make(map[trace.FileID]*lifeState, n)
	for i := uint64(0); i < n; i++ {
		var f uint64
		var birth, bytes int64
		if f, buf, err = stats.DecodeUvarint(buf); err != nil {
			return nil, err
		}
		if birth, buf, err = stats.DecodeVarint(buf); err != nil {
			return nil, err
		}
		if bytes, buf, err = stats.DecodeVarint(buf); err != nil {
			return nil, err
		}
		s.lives[trace.FileID(f)] = &lifeState{birth: trace.Time(birth), bytes: bytes}
	}

	if n, buf, err = stats.DecodeUvarint(buf); err != nil {
		return nil, err
	}
	if n > 1<<28 {
		return nil, stats.ErrCorruptState
	}
	s.shares = make(map[trace.FileID]*fileShare, n)
	for i := uint64(0); i < n; i++ {
		var f, first uint64
		var users, accesses int64
		if f, buf, err = stats.DecodeUvarint(buf); err != nil {
			return nil, err
		}
		if first, buf, err = stats.DecodeUvarint(buf); err != nil {
			return nil, err
		}
		if users, buf, err = stats.DecodeVarint(buf); err != nil {
			return nil, err
		}
		if accesses, buf, err = stats.DecodeVarint(buf); err != nil {
			return nil, err
		}
		s.shares[trace.FileID(f)] = &fileShare{
			first: trace.UserID(first), users: int(users), accesses: accesses,
		}
	}

	if buf, err = s.sc.DecodeState(buf); err != nil {
		return nil, err
	}

	if s.counter.n, buf, err = stats.DecodeVarint(buf); err != nil {
		return nil, err
	}
	var wst trace.WriterState
	if wst.Count, buf, err = stats.DecodeVarint(buf); err != nil {
		return nil, err
	}
	if x, buf, err = stats.DecodeVarint(buf); err != nil {
		return nil, err
	}
	wst.Prev = trace.Time(x)
	if wst.Begun, buf, err = decodeBool(buf); err != nil {
		return nil, err
	}
	if err := s.enc.SetState(wst); err != nil {
		return nil, err
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("analyzer: %d trailing bytes after stream state", len(buf))
	}
	return s, nil
}

// Events returns the number of events fed so far (restored across a
// checkpoint): the stream's position in the trace.
func (s *Stream) Events() int64 { return s.an.Overall.Counts.Total }

// LastTime returns the time of the last event fed: the delta base a
// resumed encoder of the same stream must continue from.
func (s *Stream) LastTime() trace.Time { return s.an.Overall.Duration }
