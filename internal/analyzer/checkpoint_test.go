package analyzer

import (
	"bytes"
	"reflect"
	"testing"

	"bsdtrace/internal/trace"
)

// TestStreamCheckpointRoundTrip is the restore invariant: checkpoint a
// stream at position k, restore it, feed both the original and the
// restored copy the remaining events, and the finished analyses are
// identical — the restored run is indistinguishable from one that never
// stopped. Checked at several cut points including 0 (nothing fed) and
// the end (nothing left).
func TestStreamCheckpointRoundTrip(t *testing.T) {
	events := snapshotTrace(t)
	cuts := []int{0, 1, len(events) / 3, len(events) / 2, len(events) - 1, len(events)}
	for _, k := range cuts {
		orig := NewStream(Options{})
		for _, e := range events[:k] {
			orig.Feed(e)
		}
		blob, err := orig.MarshalBinary()
		if err != nil {
			t.Fatalf("cut %d: MarshalBinary: %v", k, err)
		}
		restored, err := RestoreStream(blob, Options{})
		if err != nil {
			t.Fatalf("cut %d: RestoreStream: %v", k, err)
		}
		if restored.Events() != int64(k) {
			t.Fatalf("cut %d: restored.Events() = %d", k, restored.Events())
		}
		for _, e := range events[k:] {
			orig.Feed(e)
			restored.Feed(e)
		}
		got := restored.Finish()
		want := orig.Finish()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cut %d: restored Finish differs from uninterrupted Finish", k)
		}
	}
}

// TestStreamCheckpointDeterministic: the blob is a pure function of
// stream state — marshalling twice yields identical bytes, and a
// restored stream re-marshals to the same blob.
func TestStreamCheckpointDeterministic(t *testing.T) {
	events := snapshotTrace(t)
	s := NewStream(Options{})
	for _, e := range events[:len(events)/2] {
		s.Feed(e)
	}
	a, err := s.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	b, err := s.MarshalBinary()
	if err != nil {
		t.Fatalf("second MarshalBinary: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("two marshals of the same stream differ")
	}
	restored, err := RestoreStream(a, Options{})
	if err != nil {
		t.Fatalf("RestoreStream: %v", err)
	}
	c, err := restored.MarshalBinary()
	if err != nil {
		t.Fatalf("restored MarshalBinary: %v", err)
	}
	if !bytes.Equal(a, c) {
		t.Fatalf("restored stream marshals differently from the original")
	}
}

// TestStreamCheckpointDoesNotDisturb: a stream checkpointed mid-run
// finishes with exactly the result of one that never was.
func TestStreamCheckpointDoesNotDisturb(t *testing.T) {
	events := snapshotTrace(t)
	plain := NewStream(Options{})
	ckpt := NewStream(Options{})
	for i, e := range events {
		plain.Feed(e)
		ckpt.Feed(e)
		if i%997 == 0 {
			if _, err := ckpt.MarshalBinary(); err != nil {
				t.Fatalf("MarshalBinary at %d: %v", i, err)
			}
		}
	}
	if !reflect.DeepEqual(ckpt.Finish(), plain.Finish()) {
		t.Fatalf("Finish after checkpoints differs from undisturbed Finish")
	}
}

// TestStreamCheckpointFinished: a finished stream refuses to checkpoint.
func TestStreamCheckpointFinished(t *testing.T) {
	s := NewStream(Options{})
	s.Finish()
	if _, err := s.MarshalBinary(); err != ErrFinished {
		t.Fatalf("MarshalBinary on finished stream: err = %v, want ErrFinished", err)
	}
}

// TestRestoreStreamOptionsMismatch: restoring under different interval
// options is detected, not silently mis-attributed.
func TestRestoreStreamOptionsMismatch(t *testing.T) {
	s := NewStream(Options{})
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	if _, err := RestoreStream(blob, Options{LongInterval: 7 * trace.Minute}); err == nil {
		t.Fatalf("RestoreStream with mismatched options succeeded")
	}
}

// TestRestoreStreamCorrupt: truncations and bit flips error out, never
// panic. (FuzzRestoreStream explores this space further.)
func TestRestoreStreamCorrupt(t *testing.T) {
	events := snapshotTrace(t)
	s := NewStream(Options{})
	for _, e := range events[:2000] {
		s.Feed(e)
	}
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	for cut := 0; cut < len(blob); cut += 37 {
		if _, err := RestoreStream(blob[:cut], Options{}); err == nil {
			t.Fatalf("RestoreStream accepted a %d-byte truncation of a %d-byte blob", cut, len(blob))
		}
	}
	if _, err := RestoreStream(nil, Options{}); err == nil {
		t.Fatalf("RestoreStream accepted nil")
	}
}

// FuzzRestoreStream: RestoreStream must never panic, whatever the bytes.
func FuzzRestoreStream(f *testing.F) {
	s := NewStream(Options{})
	for i := 0; i < 200; i++ {
		tm := trace.Time(i * 50)
		s.Feed(trace.Event{Time: tm, Kind: trace.KindOpen, OpenID: trace.OpenID(i), File: trace.FileID(i % 17), User: trace.UserID(i % 5), Mode: trace.ReadOnly, Size: 512})
		s.Feed(trace.Event{Time: tm + 10, Kind: trace.KindSeek, OpenID: trace.OpenID(i), File: trace.FileID(i % 17), User: trace.UserID(i % 5), OldPos: 0, NewPos: 128})
		s.Feed(trace.Event{Time: tm + 20, Kind: trace.KindClose, OpenID: trace.OpenID(i), File: trace.FileID(i % 17), User: trace.UserID(i % 5), Size: 512, NewPos: 512})
	}
	blob, err := s.MarshalBinary()
	if err != nil {
		f.Fatalf("MarshalBinary: %v", err)
	}
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := RestoreStream(data, Options{})
		if err == nil && st == nil {
			t.Fatalf("nil stream without error")
		}
	})
}
