package analyzer

import (
	"reflect"
	"testing"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/workload"
)

// snapshotTrace generates a small but realistic workload: every event
// kind, daemons, overlapping opens, births and deaths — the state the
// snapshot has to copy without disturbing.
func snapshotTrace(t *testing.T) []trace.Event {
	t.Helper()
	var events []trace.Event
	_, err := workload.GenerateStream(
		workload.Config{Profile: "A5", Seed: 7, Duration: 20 * trace.Minute},
		func(e trace.Event) error { events = append(events, e); return nil })
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if len(events) < 1000 {
		t.Fatalf("workload produced only %d events", len(events))
	}
	return events
}

// TestSnapshotEqualsTruncatedAnalyze: a snapshot after k events is the
// analysis of the k-event trace — identical to running the batch
// analyzer over the truncated slice. All byte and count weights are
// integer-valued floats, so the equality is exact, not approximate.
func TestSnapshotEqualsTruncatedAnalyze(t *testing.T) {
	events := snapshotTrace(t)
	cuts := []int{1, len(events) / 3, len(events) / 2, len(events)}
	s := NewStream(Options{})
	fed := 0
	for _, k := range cuts {
		for ; fed < k; fed++ {
			s.Feed(events[fed])
		}
		got := s.Snapshot()
		want := Analyze(events[:k], Options{})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Snapshot after %d events differs from Analyze of the truncated trace", k)
		}
	}
}

// TestSnapshotDoesNotDisturbFinish: a stream that was snapshotted along
// the way must finish with exactly the result of one that never was.
func TestSnapshotDoesNotDisturbFinish(t *testing.T) {
	events := snapshotTrace(t)
	plain := NewStream(Options{})
	snapped := NewStream(Options{})
	for i, e := range events {
		plain.Feed(e)
		snapped.Feed(e)
		if i%997 == 0 {
			snapped.Snapshot()
		}
	}
	snapped.Snapshot()
	got := snapped.Finish()
	want := plain.Finish()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Finish after Snapshots differs from undisturbed Finish")
	}
}

// TestSnapshotAfterFinish: once finished, Snapshot is the finished
// analysis itself.
func TestSnapshotAfterFinish(t *testing.T) {
	events := snapshotTrace(t)
	s := NewStream(Options{})
	for _, e := range events {
		s.Feed(e)
	}
	fin := s.Finish()
	if snap := s.Snapshot(); snap != fin {
		t.Fatalf("Snapshot after Finish returned a different Analysis")
	}
}
