// Package analyzer implements the reference-pattern analyses of Section 5
// of the paper: overall trace statistics (Table III), system activity and
// per-user throughput (Table IV), sequentiality of access (Table V),
// sequential run lengths (Figure 1), dynamic file sizes (Figure 2), open
// durations (Figure 3), and the lifetimes of newly written data (Figure 4).
// It also measures the inter-event intervals that bound the accuracy of the
// no-read-write tracing approach (§3.1).
//
// The analyzer consumes a time-ordered event stream; transfers are
// reconstructed by the xfer package, so the analyzer and the cache
// simulator agree about what was transferred and when.
package analyzer

import (
	"io"
	"sort"

	"bsdtrace/internal/stats"
	"bsdtrace/internal/trace"
	"bsdtrace/internal/xfer"
)

// Options configures an analysis. The zero value selects the paper's
// parameters.
type Options struct {
	// LongInterval is the activity bucketing used for the "active over
	// ten-minute intervals" rows of Table IV. Default 10 minutes.
	LongInterval trace.Time
	// ShortInterval is the fine activity bucketing. Default 10 seconds.
	ShortInterval trace.Time
}

func (o *Options) fill() {
	if o.LongInterval <= 0 {
		o.LongInterval = 10 * trace.Minute
	}
	if o.ShortInterval <= 0 {
		o.ShortInterval = 10 * trace.Second
	}
}

// Overall mirrors Table III: one trace's headline numbers.
type Overall struct {
	// Duration is the time of the last event.
	Duration trace.Time
	// Counts tallies events by kind.
	Counts trace.Counts
	// EncodedSize is the size of the trace in the binary format, the
	// analogue of the paper's "size of trace file" row.
	EncodedSize int64
	// BytesTransferred is the total reconstructed data volume, split by
	// direction in BytesRead and BytesWritten.
	BytesTransferred int64
	BytesRead        int64
	BytesWritten     int64
	// UnclosedOpens counts opens still outstanding at the end of trace.
	UnclosedOpens int
}

// ActivityRow is Table IV's measurements at one interval width.
type ActivityRow struct {
	// Interval is the bucketing width.
	Interval trace.Time
	// ActiveUsers summarizes the number of active users per interval
	// (mean ± sd across all intervals in the trace).
	ActiveUsers stats.Welford
	// MaxActiveUsers is the greatest number of users active in any one
	// interval.
	MaxActiveUsers int
	// PerUserThroughput summarizes bytes-per-second per active user,
	// across all (interval, active user) pairs.
	PerUserThroughput stats.Welford
}

// Activity mirrors Table IV.
type Activity struct {
	// TotalUsers is the number of distinct users over the life of the
	// trace.
	TotalUsers int
	// AvgThroughput is total bytes transferred divided by trace duration.
	AvgThroughput float64
	// Long and Short are the ten-minute and ten-second interval rows.
	Long, Short ActivityRow
}

// ModeClass indexes the three access classes of Table V.
type ModeClass int

// Access classes.
const (
	ClassReadOnly ModeClass = iota
	ClassWriteOnly
	ClassReadWrite
	numClasses
)

// String names the class as the paper does.
func (c ModeClass) String() string {
	switch c {
	case ClassReadOnly:
		return "read-only"
	case ClassWriteOnly:
		return "write-only"
	case ClassReadWrite:
		return "read-write"
	}
	return "unknown"
}

func classOf(m trace.Mode) ModeClass {
	switch m {
	case trace.ReadOnly:
		return ClassReadOnly
	case trace.WriteOnly:
		return ClassWriteOnly
	default:
		return ClassReadWrite
	}
}

// Sequentiality mirrors Table V: counts of whole-file and sequential
// accesses by access class, and the byte volumes moved by each kind.
type Sequentiality struct {
	// Accesses counts completed opens per class.
	Accesses [numClasses]int64
	// WholeFile counts accesses that transferred the entire file
	// sequentially from beginning to end, per class.
	WholeFile [numClasses]int64
	// Sequential counts accesses whose bytes form a single sequential
	// run (whole-file transfers plus one-initial-reposition accesses).
	Sequential [numClasses]int64
	// BytesTotal, BytesWholeFile, and BytesSequential are the data
	// volumes moved by all, whole-file, and sequential accesses.
	BytesTotal      int64
	BytesWholeFile  int64
	BytesSequential int64
}

// WholeFileFraction returns the fraction of class-c accesses that were
// whole-file transfers.
func (s *Sequentiality) WholeFileFraction(c ModeClass) float64 {
	if s.Accesses[c] == 0 {
		return 0
	}
	return float64(s.WholeFile[c]) / float64(s.Accesses[c])
}

// SequentialFraction returns the fraction of class-c accesses that were
// sequential.
func (s *Sequentiality) SequentialFraction(c ModeClass) float64 {
	if s.Accesses[c] == 0 {
		return 0
	}
	return float64(s.Sequential[c]) / float64(s.Accesses[c])
}

// Sharing measures cross-user file sharing, a question the paper's
// related-work section raises (Porcar studied only shared files, under 10%
// of his system's files). A file is shared when more than one user opens
// or executes it during the trace; daemons (user 0) count like any user.
type Sharing struct {
	// FilesAccessed counts distinct files opened, created, or executed;
	// FilesShared those touched by more than one user.
	FilesAccessed int64
	FilesShared   int64
	// AccessesTotal counts opens, creates, and execs; AccessesToShared
	// those landing on shared files.
	AccessesTotal    int64
	AccessesToShared int64
}

// SharedFileFraction returns the fraction of accessed files that were
// shared between users.
func (s *Sharing) SharedFileFraction() float64 {
	if s.FilesAccessed == 0 {
		return 0
	}
	return float64(s.FilesShared) / float64(s.FilesAccessed)
}

// SharedAccessFraction returns the fraction of accesses that went to
// shared files.
func (s *Sharing) SharedAccessFraction() float64 {
	if s.AccessesTotal == 0 {
		return 0
	}
	return float64(s.AccessesToShared) / float64(s.AccessesTotal)
}

// Lifetimes holds the Figure 4 results.
type Lifetimes struct {
	// ByFiles is the CDF of new-file lifetimes weighted by file count;
	// ByBytes weights each file by the bytes written to it. Files still
	// alive at the end of the trace are censored into the top bucket.
	ByFiles, ByBytes stats.CDF
	// NewFiles counts files born during the trace (created, or truncated
	// to zero); DeadFiles counts those that also died during the trace.
	NewFiles, DeadFiles int64
}

// Analysis bundles every Section-5 result for one trace.
type Analysis struct {
	Overall       Overall
	Activity      Activity
	Sequentiality Sequentiality

	// RunLengthsByRuns and RunLengthsByBytes are Figure 1: cumulative
	// distributions of sequential run length, weighted by run count and
	// by bytes moved.
	RunLengthsByRuns, RunLengthsByBytes stats.CDF
	// FileSizesByFiles and FileSizesByBytes are Figure 2: dynamic file
	// size at close, weighted by accesses and by bytes transferred.
	FileSizesByFiles, FileSizesByBytes stats.CDF
	// OpenTimes is Figure 3: how long files stay open.
	OpenTimes stats.CDF
	// Lifetimes is Figure 4.
	Lifetimes Lifetimes
	// EventIntervals is the §3.1 measurement: the gaps between
	// successive trace events for the same open file, which bound the
	// times at which transfers actually happened.
	EventIntervals stats.CDF
	// Sharing measures cross-user file sharing (an extension beyond the
	// paper's own tables).
	Sharing Sharing
}

// lifeState tracks one live "new file" for the lifetime analysis.
type lifeState struct {
	birth trace.Time
	bytes int64
}

// fileShare tracks whether a file was touched by more than one user
// without storing the full user set.
type fileShare struct {
	first    trace.UserID
	users    int // 1 or 2 ("more than one")
	accesses int64
}

type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// activityAccum buckets user activity at one interval width.
type activityAccum struct {
	width   trace.Time
	current int64                  // current interval index
	users   map[trace.UserID]int64 // bytes per user this interval; presence == active
	scratch []trace.UserID         // reused per-flush sort buffer
	row     ActivityRow
	started bool
}

func newActivityAccum(width trace.Time) *activityAccum {
	return &activityAccum{width: width, users: make(map[trace.UserID]int64), row: ActivityRow{Interval: width}}
}

func (a *activityAccum) interval(t trace.Time) int64 { return int64(t / a.width) }

// advance flushes completed intervals up to (not including) the interval
// containing t.
func (a *activityAccum) advance(t trace.Time) {
	idx := a.interval(t)
	if !a.started {
		a.current = idx
		a.started = true
		return
	}
	for a.current < idx {
		a.flush()
		a.current++
	}
}

func (a *activityAccum) flush() {
	n := len(a.users)
	a.row.ActiveUsers.Add(float64(n))
	if n > a.row.MaxActiveUsers {
		a.row.MaxActiveUsers = n
	}
	secs := a.width.Seconds()
	// Feed the accumulator in user order: float summation isn't
	// associative, so map-iteration order would make the resulting
	// moments differ bitwise from run to run.
	a.scratch = a.scratch[:0]
	for u := range a.users {
		a.scratch = append(a.scratch, u)
	}
	sort.Slice(a.scratch, func(i, j int) bool { return a.scratch[i] < a.scratch[j] })
	for _, u := range a.scratch {
		a.row.PerUserThroughput.Add(float64(a.users[u]) / secs)
		delete(a.users, u)
	}
}

func (a *activityAccum) active(t trace.Time, u trace.UserID) {
	a.advance(t)
	if _, ok := a.users[u]; !ok {
		a.users[u] = 0
	}
}

func (a *activityAccum) bytes(t trace.Time, u trace.UserID, n int64) {
	a.advance(t)
	a.users[u] += n
}

// finish flushes the final partial interval.
func (a *activityAccum) finish() {
	if a.started {
		a.flush()
	}
}

// clone returns an independent copy whose finish leaves the original
// untouched. The row's Welford accumulators are plain values and copy
// with the struct; the scratch buffer is per-instance and starts empty.
func (a *activityAccum) clone() *activityAccum {
	c := &activityAccum{
		width:   a.width,
		current: a.current,
		users:   make(map[trace.UserID]int64, len(a.users)),
		row:     a.row,
		started: a.started,
	}
	for u, b := range a.users {
		c.users[u] = b
	}
	return c
}

// Stream is the incremental form of the Section-5 analysis: feed it a
// time-ordered event stream one event at a time and call Finish once at
// the end. Its working state is bounded by the trace's live population —
// open files, files alive or shared, the fixed histograms — never by the
// event count, so a stream of any length analyzes in roughly constant
// memory. Analyze is exactly a Stream fed from a slice; the two produce
// identical results by construction, and the equivalence tests pin that.
type Stream struct {
	an *Analysis

	// Histograms behind the CDFs. Bounds span the ranges the paper's
	// figures cover, with log spacing (linear for lifetimes, where the
	// 180-second daemon spike needs 1-second resolution).
	runLenRuns  *stats.Histogram
	runLenBytes *stats.Histogram
	sizeFiles   *stats.Histogram
	sizeBytes   *stats.Histogram
	openTimes   *stats.Histogram
	lifeFiles   *stats.Histogram
	lifeBytes   *stats.Histogram
	gaps        *stats.Histogram

	longAcc   *activityAccum
	shortAcc  *activityAccum
	usersSeen map[trace.UserID]bool
	openUser  map[trace.OpenID]trace.UserID
	lives     map[trace.FileID]*lifeState
	shares    map[trace.FileID]*fileShare

	sc      *xfer.Scanner
	counter *countingWriter
	enc     *trace.Writer

	finished bool
}

// NewStream creates an incremental analyzer.
func NewStream(opts Options) *Stream {
	opts.fill()
	s := &Stream{
		an:          &Analysis{},
		runLenRuns:  stats.NewLogHistogram(64, 1.3, 60), // bytes: 64 B .. ~400 MB
		runLenBytes: stats.NewLogHistogram(64, 1.3, 60),
		sizeFiles:   stats.NewLogHistogram(64, 1.3, 60),
		sizeBytes:   stats.NewLogHistogram(64, 1.3, 60),
		openTimes:   stats.NewLogHistogram(0.01, 1.25, 70), // seconds: 10 ms .. ~60 ks
		lifeFiles:   stats.NewLinearHistogram(600, 1),      // seconds, 1 s bins to 10 min
		lifeBytes:   stats.NewLinearHistogram(600, 1),
		gaps:        stats.NewLogHistogram(0.01, 1.25, 70), // seconds
		longAcc:     newActivityAccum(opts.LongInterval),
		shortAcc:    newActivityAccum(opts.ShortInterval),
		usersSeen:   make(map[trace.UserID]bool),
		openUser:    make(map[trace.OpenID]trace.UserID),
		lives:       make(map[trace.FileID]*lifeState),
		shares:      make(map[trace.FileID]*fileShare),
		counter:     &countingWriter{},
	}
	s.enc = trace.NewWriter(s.counter)

	an := s.an
	s.sc = xfer.NewScanner()
	s.sc.OnTransfer = func(x xfer.Transfer) {
		an.Overall.BytesTransferred += x.Length
		if x.Write {
			an.Overall.BytesWritten += x.Length
		} else {
			an.Overall.BytesRead += x.Length
		}
		s.runLenRuns.Add(float64(x.Length), 1)
		s.runLenBytes.Add(float64(x.Length), float64(x.Length))
		s.longAcc.bytes(x.Time, x.User, x.Length)
		s.shortAcc.bytes(x.Time, x.User, x.Length)
		if x.Write {
			if st, ok := s.lives[x.File]; ok {
				st.bytes += x.Length
			}
		}
	}
	s.sc.OnOpenEnd = func(o xfer.OpenSummary) {
		c := classOf(o.Mode)
		seq := &an.Sequentiality
		seq.Accesses[c]++
		seq.BytesTotal += o.Bytes
		if o.WholeFile {
			seq.WholeFile[c]++
			seq.BytesWholeFile += o.Bytes
		}
		if o.Sequential {
			seq.Sequential[c]++
			seq.BytesSequential += o.Bytes
		}
		s.sizeFiles.Add(float64(o.SizeAtClose), 1)
		s.sizeBytes.Add(float64(o.SizeAtClose), float64(o.Bytes))
		s.openTimes.Add((o.CloseTime - o.OpenTime).Seconds(), 1)
	}
	s.sc.OnEventGap = func(g trace.Time) {
		s.gaps.Add(g.Seconds(), 1)
	}
	return s
}

// die closes out one live file for the lifetime analysis.
func (s *Stream) die(f trace.FileID, t trace.Time) {
	st, ok := s.lives[f]
	if !ok {
		return
	}
	age := (t - st.birth).Seconds()
	s.lifeFiles.Add(age, 1)
	s.lifeBytes.Add(age, float64(st.bytes))
	s.an.Lifetimes.DeadFiles++
	delete(s.lives, f)
}

// Feed analyzes one event. Events must arrive in time order.
func (s *Stream) Feed(e trace.Event) {
	an := s.an
	an.Overall.Counts.Add(e)
	if e.Time > an.Overall.Duration {
		an.Overall.Duration = e.Time
	}
	s.enc.Write(e)

	// Sharing: record which users touch which files.
	switch e.Kind {
	case trace.KindCreate, trace.KindOpen, trace.KindExec:
		sh := s.shares[e.File]
		if sh == nil {
			sh = &fileShare{first: e.User, users: 1}
			s.shares[e.File] = sh
		} else if sh.users == 1 && e.User != sh.first {
			sh.users = 2
		}
		sh.accesses++
	}

	// Attribute the event to a user for the activity analysis.
	var user trace.UserID
	hasUser := false
	switch e.Kind {
	case trace.KindCreate, trace.KindOpen:
		user, hasUser = e.User, true
		s.openUser[e.OpenID] = e.User
	case trace.KindExec:
		user, hasUser = e.User, true
	case trace.KindClose, trace.KindSeek:
		if u, ok := s.openUser[e.OpenID]; ok {
			user, hasUser = u, true
		}
		if e.Kind == trace.KindClose {
			delete(s.openUser, e.OpenID)
		}
	}
	if hasUser {
		s.usersSeen[user] = true
		s.longAcc.active(e.Time, user)
		s.shortAcc.active(e.Time, user)
	}

	// Lifetime state machine (Figure 4): births at create and
	// truncate-to-zero, deaths at unlink, overwrite, and truncation.
	switch e.Kind {
	case trace.KindCreate:
		s.die(e.File, e.Time) // overwrite of previous incarnation
		s.lives[e.File] = &lifeState{birth: e.Time}
		an.Lifetimes.NewFiles++
	case trace.KindTruncate:
		if e.Size == 0 {
			s.die(e.File, e.Time)
			s.lives[e.File] = &lifeState{birth: e.Time}
			an.Lifetimes.NewFiles++
		}
	case trace.KindUnlink:
		s.die(e.File, e.Time)
	}

	s.sc.Feed(e)
}

// Snapshot returns the analysis of the stream so far, as if the trace
// ended at the last event fed: open intervals are flushed, files still
// alive are censored into the top lifetime bucket, and every CDF is
// materialized — exactly what Finish would report right now. Unlike
// Finish it does not disturb the incremental state: Feed may continue
// afterwards, and a later Finish (or Snapshot) produces byte-identical
// results whether or not Snapshot was ever called. After Finish,
// Snapshot returns the finished Analysis. Like Feed, Snapshot must be
// called from the feeding goroutine or with external synchronization.
func (s *Stream) Snapshot() *Analysis {
	if s.finished {
		return s.an
	}
	an := *s.an
	an.Overall.UnclosedOpens = s.sc.OpenCount()
	// Flushing the encoder only drains its buffer into the byte counter;
	// the encoding of later events is unaffected.
	if err := s.enc.Flush(); err == nil {
		an.Overall.EncodedSize = s.counter.n
	}

	const censored = 1e18
	lifeFiles := s.lifeFiles.Clone()
	lifeBytes := s.lifeBytes.Clone()
	for _, st := range s.lives {
		lifeFiles.Add(censored, 1)
		lifeBytes.Add(censored, float64(st.bytes))
	}

	longAcc := s.longAcc.clone()
	shortAcc := s.shortAcc.clone()
	longAcc.finish()
	shortAcc.finish()
	an.Activity.Long = longAcc.row
	an.Activity.Short = shortAcc.row
	an.Activity.TotalUsers = len(s.usersSeen)
	if an.Overall.Duration > 0 {
		an.Activity.AvgThroughput = float64(an.Overall.BytesTransferred) / an.Overall.Duration.Seconds()
	}

	an.Sharing = Sharing{}
	for _, sh := range s.shares {
		an.Sharing.FilesAccessed++
		an.Sharing.AccessesTotal += sh.accesses
		if sh.users > 1 {
			an.Sharing.FilesShared++
			an.Sharing.AccessesToShared += sh.accesses
		}
	}

	an.RunLengthsByRuns = s.runLenRuns.CDF()
	an.RunLengthsByBytes = s.runLenBytes.CDF()
	an.FileSizesByFiles = s.sizeFiles.CDF()
	an.FileSizesByBytes = s.sizeBytes.CDF()
	an.OpenTimes = s.openTimes.CDF()
	an.Lifetimes.ByFiles = lifeFiles.CDF()
	an.Lifetimes.ByBytes = lifeBytes.CDF()
	an.EventIntervals = s.gaps.CDF()
	return &an
}

// Finish completes the analysis and returns it. Further Feed calls after
// Finish are invalid; calling Finish again returns the same Analysis.
func (s *Stream) Finish() *Analysis {
	if s.finished {
		return s.an
	}
	s.finished = true
	an := s.an
	an.Overall.UnclosedOpens = s.sc.Finish()
	if err := s.enc.Flush(); err == nil {
		an.Overall.EncodedSize = s.counter.n
	}

	// Censor survivors into the top bucket so the by-files and by-bytes
	// CDFs are normalized over all new files, as Figure 4 is.
	const censored = 1e18
	for _, st := range s.lives {
		s.lifeFiles.Add(censored, 1)
		s.lifeBytes.Add(censored, float64(st.bytes))
	}

	s.longAcc.finish()
	s.shortAcc.finish()
	an.Activity.Long = s.longAcc.row
	an.Activity.Short = s.shortAcc.row
	an.Activity.TotalUsers = len(s.usersSeen)
	if an.Overall.Duration > 0 {
		an.Activity.AvgThroughput = float64(an.Overall.BytesTransferred) / an.Overall.Duration.Seconds()
	}

	for _, sh := range s.shares {
		an.Sharing.FilesAccessed++
		an.Sharing.AccessesTotal += sh.accesses
		if sh.users > 1 {
			an.Sharing.FilesShared++
			an.Sharing.AccessesToShared += sh.accesses
		}
	}

	an.RunLengthsByRuns = s.runLenRuns.CDF()
	an.RunLengthsByBytes = s.runLenBytes.CDF()
	an.FileSizesByFiles = s.sizeFiles.CDF()
	an.FileSizesByBytes = s.sizeBytes.CDF()
	an.OpenTimes = s.openTimes.CDF()
	an.Lifetimes.ByFiles = s.lifeFiles.CDF()
	an.Lifetimes.ByBytes = s.lifeBytes.CDF()
	an.EventIntervals = s.gaps.CDF()
	return an
}

// Analyze runs the full Section-5 analysis over a time-ordered trace.
func Analyze(events []trace.Event, opts Options) *Analysis {
	s := NewStream(opts)
	for _, e := range events {
		s.Feed(e)
	}
	return s.Finish()
}

// AnalyzeSource pulls a time-ordered event stream to completion and
// analyzes it, one event at a time: the source's trace never needs to fit
// in memory. It is the entry point the command-line tools use on trace
// files (*trace.Reader is a Source) and merged shard streams.
func AnalyzeSource(src trace.Source, opts Options) (*Analysis, error) {
	s := NewStream(opts)
	buf := trace.GetBatch()
	defer trace.PutBatch(buf)
	for {
		n, err := trace.ReadBatch(src, buf)
		if n == 0 {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		for _, e := range buf[:n] {
			s.Feed(e)
		}
	}
	return s.Finish(), nil
}

// AnalyzeReader analyzes a binary trace stream. It is AnalyzeSource under
// its historical name.
func AnalyzeReader(r *trace.Reader, opts Options) (*Analysis, error) {
	return AnalyzeSource(r, opts)
}
