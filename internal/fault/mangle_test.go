package fault

import (
	"io"
	"testing"

	"bsdtrace/internal/analyzer"
	"bsdtrace/internal/cachesim"
	"bsdtrace/internal/trace"
	"bsdtrace/internal/workload"
	"bsdtrace/internal/xfer"
)

func genTrace(t *testing.T, d trace.Time) []trace.Event {
	t.Helper()
	res, err := workload.Generate(workload.Config{Profile: "A5", Seed: 1, Duration: d})
	if err != nil {
		t.Fatal(err)
	}
	return res.Events
}

func mangleAll(t *testing.T, events []trace.Event, cfg MangleConfig) ([]trace.Event, MangleStats) {
	t.Helper()
	m := NewTraceMangler(trace.NewSliceSource(events), cfg)
	out, err := trace.ReadSource(m)
	if err != nil {
		t.Fatal(err)
	}
	return out, m.Stats()
}

func TestManglerPassthrough(t *testing.T) {
	events := genTrace(t, 10*trace.Minute)
	out, stats := mangleAll(t, events, MangleConfig{Seed: 1})
	if len(out) != len(events) {
		t.Fatalf("passthrough changed event count: %d -> %d", len(events), len(out))
	}
	for i := range out {
		if out[i] != events[i] {
			t.Fatalf("passthrough changed event %d", i)
		}
	}
	if stats.Dropped+stats.Duplicated+stats.Flipped+stats.Jittered != 0 || stats.Truncated {
		t.Fatalf("passthrough inflicted damage: %+v", stats)
	}
}

func TestManglerDeterminism(t *testing.T) {
	events := genTrace(t, 10*trace.Minute)
	cfg := MangleConfig{Seed: 42, Drop: 0.05, Duplicate: 0.05, BitFlip: 0.05, Jitter: 0.05}
	a, as := mangleAll(t, events, cfg)
	b, bs := mangleAll(t, events, cfg)
	if as != bs {
		t.Fatalf("stats differ across runs: %+v vs %+v", as, bs)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs across identical runs", i)
		}
	}
	c, _ := mangleAll(t, events, MangleConfig{Seed: 43, Drop: 0.05, Duplicate: 0.05, BitFlip: 0.05, Jitter: 0.05})
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical damage")
	}
}

func TestManglerModes(t *testing.T) {
	events := genTrace(t, 10*trace.Minute)
	n := int64(len(events))

	out, stats := mangleAll(t, events, MangleConfig{Seed: 7, Drop: 0.1})
	if stats.Dropped == 0 || int64(len(out)) != n-stats.Dropped {
		t.Fatalf("drop mode: %d events, stats %+v", len(out), stats)
	}

	out, stats = mangleAll(t, events, MangleConfig{Seed: 7, Duplicate: 0.1})
	if stats.Duplicated == 0 || int64(len(out)) != n+stats.Duplicated {
		t.Fatalf("duplicate mode: %d events, stats %+v", len(out), stats)
	}

	out, stats = mangleAll(t, events, MangleConfig{Seed: 7, BitFlip: 0.1})
	if stats.Flipped == 0 || int64(len(out)) != n {
		t.Fatalf("bitflip mode: %d events, stats %+v", len(out), stats)
	}
	changed := 0
	for i := range out {
		if out[i] != events[i] {
			changed++
		}
	}
	if int64(changed) != stats.Flipped {
		t.Fatalf("bitflip mode: %d events changed, %d flips recorded", changed, stats.Flipped)
	}

	out, stats = mangleAll(t, events, MangleConfig{Seed: 7, Jitter: 0.1, JitterMax: trace.Second})
	if stats.Jittered == 0 {
		t.Fatalf("jitter mode: stats %+v", stats)
	}
	for i := range out {
		d := out[i].Time - events[i].Time
		if d < -trace.Second || d > trace.Second {
			t.Fatalf("jitter out of bounds: event %d moved %v", i, d)
		}
	}

	out, stats = mangleAll(t, events, MangleConfig{Seed: 7, TruncateAfter: 100})
	if len(out) != 100 || !stats.Truncated {
		t.Fatalf("truncate mode: %d events, stats %+v", len(out), stats)
	}
}

// TestMangledRecoveryValidates: mangle → recover must always yield a
// stream that passes the Validator, with the repair budget balancing.
func TestMangledRecoveryValidates(t *testing.T) {
	events := genTrace(t, 30*trace.Minute)
	cfgs := []MangleConfig{
		{Seed: 1, Drop: 0.01},
		{Seed: 2, Duplicate: 0.01},
		{Seed: 3, BitFlip: 0.01},
		{Seed: 4, Jitter: 0.01},
		{Seed: 5, TruncateAfter: int64(len(events) / 2)},
		{Seed: 6, Drop: 0.02, Duplicate: 0.02, BitFlip: 0.02, Jitter: 0.02},
	}
	for _, cfg := range cfgs {
		rec := trace.NewRecoverSource(NewTraceMangler(trace.NewSliceSource(events), cfg))
		v := trace.NewValidator(0)
		var emitted int64
		for {
			e, err := rec.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("%+v: %v", cfg, err)
			}
			v.Check(e)
			emitted++
		}
		if errs := v.Errs(); len(errs) != 0 {
			t.Fatalf("%+v: repaired stream fails validation: %v", cfg, errs[0])
		}
		st := rec.Stats()
		if st.Emitted != emitted || st.Emitted != st.Events-st.Dropped+st.Synthesized {
			t.Fatalf("%+v: accounting broken: %+v (emitted %d)", cfg, st, emitted)
		}
	}
}

// TestResilience8h is the issue's resilience invariant: every mangler
// mode at ≤1% fault rate on the 8h seed trace must flow through lenient
// ingestion — recovery, the analyzer, and the cache simulator — with no
// panic and an exactly-balancing repair budget. It generates the 8h
// trace once, so it is skipped in -short runs like the golden test.
func TestResilience8h(t *testing.T) {
	if testing.Short() {
		t.Skip("8h workload generation in -short mode")
	}
	events := genTrace(t, 8*trace.Hour)
	modes := []struct {
		name string
		cfg  MangleConfig
	}{
		{"drop", MangleConfig{Seed: 11, Drop: 0.01}},
		{"duplicate", MangleConfig{Seed: 12, Duplicate: 0.01}},
		{"bitflip", MangleConfig{Seed: 13, BitFlip: 0.01}},
		{"jitter", MangleConfig{Seed: 14, Jitter: 0.01}},
		{"truncate", MangleConfig{Seed: 15, TruncateAfter: int64(len(events) * 99 / 100)}},
	}
	for _, mode := range modes {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			t.Parallel()
			m := NewTraceMangler(trace.NewSliceSource(events), mode.cfg)
			rec := trace.NewRecoverSource(m)

			an := analyzer.NewStream(analyzer.Options{})
			tb := xfer.NewTapeBuilder()
			var emitted int64
			for {
				e, err := rec.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				an.Feed(e)
				tb.Add(e)
				emitted++
			}
			st := rec.Stats()
			if st.Emitted != emitted || st.Emitted != st.Events-st.Dropped+st.Synthesized {
				t.Fatalf("accounting broken: %+v (emitted %d)", st, emitted)
			}
			if a := an.Finish(); a == nil {
				t.Fatal("analyzer returned nil")
			}
			tape, err := tb.Finish()
			if err != nil {
				t.Fatalf("tape build failed on recovered stream: %v", err)
			}
			results, err := cachesim.MultiSimulate(tape, []cachesim.Config{
				{BlockSize: 4096, CacheSize: 2 << 20, Write: cachesim.WriteThrough},
				{BlockSize: 4096, CacheSize: 2 << 20, Write: cachesim.FlushBack, FlushInterval: 30 * trace.Second},
				{BlockSize: 4096, CacheSize: 2 << 20, Write: cachesim.DelayedWrite},
			})
			if err != nil {
				t.Fatalf("cache simulation failed on recovered stream: %v", err)
			}
			for _, r := range results {
				if r == nil {
					t.Fatal("nil simulation result")
				}
			}
		})
	}
}
