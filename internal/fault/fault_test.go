package fault

import (
	"math/rand"
	"reflect"
	"testing"

	"bsdtrace/internal/cachesim"
	"bsdtrace/internal/trace"
	"bsdtrace/internal/xfer"
)

// tb is a tiny trace builder, mirroring the cachesim tests'.
type tb struct {
	events []trace.Event
	now    trace.Time
	nextID trace.OpenID
}

func newTB() *tb { return &tb{nextID: 1} }

func (b *tb) tick() trace.Time {
	b.now += 10 * trace.Millisecond
	return b.now
}

func (b *tb) write(f trace.FileID, n int64) {
	id := b.nextID
	b.nextID++
	b.events = append(b.events,
		trace.Event{Time: b.tick(), Kind: trace.KindCreate, OpenID: id, File: f, User: 1, Mode: trace.WriteOnly},
		trace.Event{Time: b.tick(), Kind: trace.KindClose, OpenID: id, NewPos: n},
	)
}

func (b *tb) read(f trace.FileID, n int64) {
	id := b.nextID
	b.nextID++
	b.events = append(b.events,
		trace.Event{Time: b.tick(), Kind: trace.KindOpen, OpenID: id, File: f, User: 1, Mode: trace.ReadOnly, Size: n},
		trace.Event{Time: b.tick(), Kind: trace.KindClose, OpenID: id, NewPos: n},
	)
}

func (b *tb) unlink(f trace.FileID) {
	b.events = append(b.events, trace.Event{Time: b.tick(), Kind: trace.KindUnlink, File: f})
}

func (b *tb) truncate(f trace.FileID, n int64) {
	b.events = append(b.events, trace.Event{Time: b.tick(), Kind: trace.KindTruncate, File: f, Size: n})
}

// randomTrace mixes reads, writes, and data death with idle gaps long
// enough to span several 30-second flush intervals.
func randomTrace(seed int64, n int) []trace.Event {
	rng := rand.New(rand.NewSource(seed))
	b := newTB()
	for i := 0; i < n; i++ {
		f := trace.FileID(rng.Intn(30) + 1)
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			b.read(f, int64(rng.Intn(50000)+1))
		case 4, 5, 6, 7:
			b.write(f, int64(rng.Intn(50000)+1))
		case 8:
			b.unlink(f)
		case 9:
			b.truncate(f, int64(rng.Intn(10000)))
		}
		if rng.Intn(4) == 0 {
			b.now += trace.Time(rng.Intn(120 * int(trace.Second)))
		}
	}
	return b.events
}

func mustTape(t *testing.T, events []trace.Event) *xfer.Tape {
	t.Helper()
	tape, err := xfer.NewTape(events)
	if err != nil {
		t.Fatal(err)
	}
	return tape
}

// testConfigs exercises every write policy, at a cache small enough that
// evictions (and their write-backs) happen.
func testConfigs() []cachesim.Config {
	return []cachesim.Config{
		{BlockSize: 4096, CacheSize: 64 << 10, Write: cachesim.WriteThrough},
		{BlockSize: 4096, CacheSize: 64 << 10, Write: cachesim.FlushBack, FlushInterval: 30 * trace.Second},
		{BlockSize: 4096, CacheSize: 64 << 10, Write: cachesim.FlushBack, FlushInterval: 5 * trace.Minute},
		{BlockSize: 4096, CacheSize: 64 << 10, Write: cachesim.DelayedWrite},
		{BlockSize: 1024, CacheSize: 1 << 20, Write: cachesim.FlushBack, FlushInterval: 30 * trace.Second},
		{BlockSize: 8192, CacheSize: 1 << 20, Write: cachesim.DelayedWrite},
	}
}

// awkwardPoints returns crash instants chosen to hit ties: exact op
// times, exact flush boundaries, time zero, and past the end of the
// trace — plus an even spread.
func awkwardPoints(tape *xfer.Tape) []trace.Time {
	pts := Points(tape, 13)
	end := tape.Ops[len(tape.Ops)-1].Time
	pts = append(pts, 0, end, end+trace.Hour)
	for _, i := range []int{0, len(tape.Ops) / 3, 2 * len(tape.Ops) / 3} {
		pts = append(pts, tape.Ops[i].Time)
	}
	for b := 30 * trace.Second; b < end; b += 10 * trace.Minute {
		pts = append(pts, b)
	}
	return pts
}

// The single-pass sweep must agree with the obvious implementation: for
// each crash point, truncate the tape at that instant, replay from
// scratch, and count the blocks dirty at the end. This is both the
// correctness proof for the one-replay-per-configuration design and a
// regression test for the flush-clock fix — before it, a flush scan due
// during an idle gap ran with the caught-up clock, so a crash point
// inside the gap wrongly saw already-flushed blocks as dirty.
func TestCrashReplayMatchesTruncatedReplays(t *testing.T) {
	for _, seed := range []int64{3, 7, 11} {
		tape := mustTape(t, randomTrace(seed, 300))
		points := awkwardPoints(tape)
		for _, cfg := range testConfigs() {
			rep, err := CrashReplayTape(tape, cfg, points)
			if err != nil {
				t.Fatal(err)
			}
			full, err := cachesim.SimulateTape(tape, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rep.Result, full) {
				t.Errorf("seed %d cfg %+v: piggybacked Result differs from SimulateTape", seed, cfg)
			}
			for _, p := range rep.Points {
				trunc, err := cachesim.SimulateTape(tape.Truncate(p.Time), cfg)
				if err != nil {
					t.Fatal(err)
				}
				if p.Blocks != trunc.DirtyAtEnd {
					t.Errorf("seed %d cfg %+v crash at %v: single-pass loss %d blocks, truncated replay %d",
						seed, cfg, p.Time, p.Blocks, trunc.DirtyAtEnd)
				}
			}
		}
	}
}

// Write-through is the paper's reliability baseline: no block is ever
// dirty, so a crash at any instant loses nothing.
func TestWriteThroughLosesNothing(t *testing.T) {
	tape := mustTape(t, randomTrace(5, 400))
	cfg := cachesim.Config{BlockSize: 4096, CacheSize: 256 << 10, Write: cachesim.WriteThrough}
	rep, err := CrashReplayTape(tape, cfg, Points(tape, 50))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Points {
		if p.Blocks != 0 || p.Bytes != 0 || p.MaxAge != 0 {
			t.Fatalf("write-through loss at %v: %+v", p.Time, p)
		}
	}
	if rep.VulnerableFraction() != 0 || rep.MeanLossBytes() != 0 {
		t.Errorf("write-through vulnerable %v, mean loss %v", rep.VulnerableFraction(), rep.MeanLossBytes())
	}
}

// A flush-back cache bounds every crash's loss age by one interval:
// anything dirtied earlier was written by an intervening scan. This is
// the paper's argument for the 30-second flush — and it only holds
// because overdue scans execute at their scheduled boundaries.
func TestFlushBackAgeBoundedByInterval(t *testing.T) {
	for _, interval := range []trace.Time{30 * trace.Second, 5 * trace.Minute} {
		tape := mustTape(t, randomTrace(13, 400))
		cfg := cachesim.Config{BlockSize: 4096, CacheSize: 1 << 20, Write: cachesim.FlushBack, FlushInterval: interval}
		rep, err := CrashReplayTape(tape, cfg, Points(tape, 200))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range rep.Points {
			if p.MaxAge > interval {
				t.Errorf("interval %v: crash at %v would lose data aged %v", interval, p.Time, p.MaxAge)
			}
		}
		if rep.MaxAge() > interval {
			t.Errorf("interval %v: report MaxAge %v", interval, rep.MaxAge())
		}
	}
}

// The paper's qualitative ordering, pointwise: at every crash instant,
// write-through loses nothing, the 30-second flush no more than the
// 5-minute flush, and delayed write the most. The dirty sets are nested
// (cache contents and evictions are write-policy-independent; shorter
// intervals only clean earlier), so the ordering must hold at every
// sampled point, not just on average.
func TestPolicyLossOrdering(t *testing.T) {
	for _, seed := range []int64{17, 29} {
		tape := mustTape(t, randomTrace(seed, 500))
		reps, err := PolicySweepTape(tape, 4096, 256<<10, cachesim.PaperPolicies(), Points(tape, 100))
		if err != nil {
			t.Fatal(err)
		}
		wt, fb30, fb5m, dw := reps[0], reps[1], reps[2], reps[3]
		var anyLoss bool
		for i := range wt.Points {
			a, b, c, d := wt.Points[i].Bytes, fb30.Points[i].Bytes, fb5m.Points[i].Bytes, dw.Points[i].Bytes
			if a != 0 {
				t.Fatalf("seed %d point %d: write-through lost %d bytes", seed, i, a)
			}
			if b > c || c > d {
				t.Errorf("seed %d point %d: loss ordering violated: fb30=%d fb5m=%d dw=%d", seed, i, b, c, d)
			}
			anyLoss = anyLoss || d > 0
		}
		if !anyLoss {
			t.Fatalf("seed %d: delayed write never had anything at risk; trace too weak", seed)
		}
		if dw.MeanLossBytes() <= fb30.MeanLossBytes() {
			t.Errorf("seed %d: delayed-write mean loss %.0f not above 30s flush %.0f",
				seed, dw.MeanLossBytes(), fb30.MeanLossBytes())
		}
	}
}

// The two-level simulation's premise (twolevel.go): clients write through
// to the server, so a client crash loses nothing at any instant. Run the
// crash sweep over each machine's tape with the client-cache
// configuration the two-level simulator uses.
func TestTwoLevelClientCrashLosesNothing(t *testing.T) {
	machines := [][]trace.Event{randomTrace(31, 200), randomTrace(37, 200), randomTrace(41, 200)}
	clientCfg := cachesim.Config{BlockSize: 4096, CacheSize: 128 << 10, Write: cachesim.WriteThrough}
	for m, events := range machines {
		tape := mustTape(t, events)
		rep, err := CrashReplayTape(tape, clientCfg, Points(tape, 40))
		if err != nil {
			t.Fatal(err)
		}
		if f := rep.VulnerableFraction(); f != 0 {
			t.Errorf("machine %d: client vulnerable at %v of crash points", m, f)
		}
	}
}

func TestPoints(t *testing.T) {
	tape := mustTape(t, randomTrace(1, 50))
	end := tape.Ops[len(tape.Ops)-1].Time
	pts := Points(tape, 8)
	if len(pts) != 8 {
		t.Fatalf("got %d points", len(pts))
	}
	for i, p := range pts {
		if i > 0 && p <= pts[i-1] {
			t.Errorf("points not increasing at %d: %v", i, pts)
		}
	}
	if pts[7] != end {
		t.Errorf("last point %v, want trace end %v", pts[7], end)
	}
	if got := Points(tape, 0); got != nil {
		t.Errorf("Points(tape, 0) = %v", got)
	}
	if got := Points(&xfer.Tape{}, 5); got != nil {
		t.Errorf("Points(empty, 5) = %v", got)
	}
}

func TestSweepRejectsNegativePoint(t *testing.T) {
	tape := mustTape(t, randomTrace(1, 20))
	cfg := cachesim.Config{BlockSize: 4096, CacheSize: 1 << 20, Write: cachesim.DelayedWrite}
	if _, err := CrashReplayTape(tape, cfg, []trace.Time{-trace.Second}); err == nil {
		t.Fatal("negative crash point accepted")
	}
}

// Unsorted point lists are normalized; the report comes back in time
// order regardless.
func TestSweepSortsPoints(t *testing.T) {
	tape := mustTape(t, randomTrace(9, 100))
	cfg := cachesim.Config{BlockSize: 4096, CacheSize: 1 << 20, Write: cachesim.DelayedWrite}
	pts := Points(tape, 6)
	shuffled := []trace.Time{pts[3], pts[0], pts[5], pts[1], pts[4], pts[2]}
	a, err := CrashReplayTape(tape, cfg, pts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrashReplayTape(tape, cfg, shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Points) != len(b.Points) {
		t.Fatal("point counts differ")
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Errorf("point %d differs: %+v vs %+v", i, a.Points[i], b.Points[i])
		}
	}
}

// The age CDF's weight is the total number of dirty blocks over all
// snapshots — one histogram entry per (crash point, dirty block) pair.
func TestAgeCDFWeight(t *testing.T) {
	tape := mustTape(t, randomTrace(21, 300))
	cfg := cachesim.Config{BlockSize: 4096, CacheSize: 1 << 20, Write: cachesim.DelayedWrite}
	rep, err := CrashReplayTape(tape, cfg, Points(tape, 32))
	if err != nil {
		t.Fatal(err)
	}
	var blocks int64
	for _, p := range rep.Points {
		blocks += p.Blocks
	}
	if blocks == 0 {
		t.Fatal("trace too weak: no dirty blocks at any crash point")
	}
	if len(rep.AgeCDF) == 0 {
		t.Fatal("empty age CDF despite dirty blocks")
	}
	if got := rep.AgeCDF.FractionAtOrBelow(1e18); got != 1 {
		t.Errorf("CDF tail fraction %v, want 1", got)
	}
}
