package fault

import (
	"fmt"
	"math/rand"
	"time"
)

// Retry with seeded, jittered exponential backoff — the client half of
// fstraced's load-shedding protocol. When the daemon sheds an upload
// with 429 and a Retry-After hint, the caller passes the hint back
// through the attempt's return value and the backoff honors it; without
// a hint the delay doubles from Base up to Cap, with equal jitter so a
// fleet of shed clients does not retry in lockstep. The jitter comes
// from the config's seed, so a retry schedule is reproducible in tests.

// RetryConfig bounds a retry loop.
type RetryConfig struct {
	// Seed drives the jitter; equal seeds give equal schedules.
	Seed int64
	// Attempts is the maximum number of tries (min 1).
	Attempts int
	// Base is the first backoff delay (default 10ms).
	Base time.Duration
	// Cap bounds the grown delay (default 1s).
	Cap time.Duration
	// Sleep substitutes for time.Sleep in tests; nil means real sleep.
	Sleep func(time.Duration)
}

// Retry calls op until it returns a nil error or the attempt budget is
// spent, sleeping between attempts. op receives the attempt number
// (from 0) and returns a server-provided delay hint (0 for none — e.g.
// a parsed Retry-After header) alongside its error; a positive hint
// replaces the computed backoff for the next wait, jitter included.
// Retry returns nil on success, or the last error wrapped with the
// attempt count.
func Retry(cfg RetryConfig, op func(attempt int) (time.Duration, error)) error {
	if cfg.Attempts < 1 {
		cfg.Attempts = 1
	}
	if cfg.Base <= 0 {
		cfg.Base = 10 * time.Millisecond
	}
	if cfg.Cap <= 0 {
		cfg.Cap = time.Second
	}
	sleep := cfg.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	backoff := cfg.Base
	var err error
	for attempt := 0; attempt < cfg.Attempts; attempt++ {
		var hint time.Duration
		hint, err = op(attempt)
		if err == nil {
			return nil
		}
		if attempt == cfg.Attempts-1 {
			break
		}
		delay := backoff
		if hint > 0 {
			delay = hint
		}
		if delay > cfg.Cap {
			delay = cfg.Cap
		}
		// Equal jitter: half the delay fixed, half uniform, so retries
		// never synchronize but never collapse to zero either.
		delay = delay/2 + time.Duration(rng.Int63n(int64(delay/2)+1))
		sleep(delay)
		if backoff < cfg.Cap {
			backoff *= 2
		}
	}
	return fmt.Errorf("fault: gave up after %d attempts: %w", cfg.Attempts, err)
}
