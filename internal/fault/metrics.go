package fault

import "bsdtrace/internal/obs"

// PublishReports copies each crash-sweep report's loss totals into the
// registry as "<prefix>.<config label>.<counter>": sampled crash
// points, and the blocks and bytes a crash at each point would have
// destroyed, summed over the sweep. Crash points and replay are
// deterministic, so these counters belong to the manifest's canonical
// surface. No-op when reg is nil or disabled.
func PublishReports(reg *obs.Registry, prefix string, reps []*Report) {
	if !reg.Enabled() {
		return
	}
	for _, rep := range reps {
		if rep == nil {
			continue
		}
		p := prefix + "." + rep.Config.Label()
		var blocks, bytes int64
		for _, pt := range rep.Points {
			blocks += pt.Blocks
			bytes += pt.Bytes
		}
		reg.Counter(p + ".crash_points").Set(int64(len(rep.Points)))
		reg.Counter(p + ".lost_blocks_total").Set(blocks)
		reg.Counter(p + ".lost_bytes_total").Set(bytes)
	}
}

// PublishMangle copies a TraceMangler's damage accounting into counters
// under prefix — what the fault injector did to the stream, the other
// half of the repair budget PublishRepair records.
func PublishMangle(reg *obs.Registry, prefix string, st MangleStats) {
	if !reg.Enabled() {
		return
	}
	reg.Counter(prefix + ".seen").Set(st.Seen)
	reg.Counter(prefix + ".emitted").Set(st.Emitted)
	reg.Counter(prefix + ".dropped").Set(st.Dropped)
	reg.Counter(prefix + ".duplicated").Set(st.Duplicated)
	reg.Counter(prefix + ".flipped").Set(st.Flipped)
	reg.Counter(prefix + ".jittered").Set(st.Jittered)
}
