package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Network fault injection, for exercising fstraced's self-protection:
// a FaultyListener wraps a real listener and hands out connections that
// misbehave on a seeded, per-connection schedule — stalled reads,
// partial writes, abrupt resets, injected latency. The same seed
// produces the same schedule, so a chaos run that finds a bug is
// replayable. Zero-valued probabilities disable that fault, so a
// NetConfig{} wrapper is transparent.

// ErrInjectedReset is the error a faulted operation reports after the
// wrapper abruptly closes the connection.
var ErrInjectedReset = errors.New("fault: injected connection reset")

// NetConfig sets the per-operation fault probabilities of a wrapped
// connection. Probabilities are evaluated independently per Read/Write
// call on the connection's own seeded RNG.
type NetConfig struct {
	// Seed derives every connection's fault schedule; connection i of a
	// listener uses Seed+i, so schedules are deterministic per accept
	// order but differ across connections.
	Seed int64
	// StallRead is the probability that a Read first sleeps for Stall
	// (simulating a peer that stops sending mid-stream).
	StallRead float64
	// Stall is the stalled-read duration.
	Stall time.Duration
	// PartialWrite is the probability that a Write delivers only a
	// prefix of its buffer and then resets the connection — the
	// mid-write crash case. Per net.Conn's contract the short count is
	// returned with an error.
	PartialWrite float64
	// Reset is the probability that an operation abruptly closes the
	// connection before transferring anything.
	Reset float64
	// Latency, when positive, adds a uniform [0, Latency) delay to
	// every operation.
	Latency time.Duration
}

// zero reports whether the configuration injects nothing.
func (c NetConfig) zero() bool {
	return c.StallRead == 0 && c.PartialWrite == 0 && c.Reset == 0 && c.Latency == 0
}

// FaultyListener wraps a net.Listener so every accepted connection
// misbehaves per cfg. Use it in front of an HTTP server under test.
type FaultyListener struct {
	net.Listener
	cfg  NetConfig
	mu   sync.Mutex
	next int64
}

// NewFaultyListener wraps ln.
func NewFaultyListener(ln net.Listener, cfg NetConfig) *FaultyListener {
	return &FaultyListener{Listener: ln, cfg: cfg}
}

// Accept wraps the next connection with its own fault schedule.
func (l *FaultyListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	id := l.next
	l.next++
	l.mu.Unlock()
	return WrapConn(c, l.cfg, id), nil
}

// faultyConn injects faults into one connection. All fault decisions
// come from its own seeded RNG under mu, so concurrent Read/Write are
// safe and the schedule is a pure function of (cfg.Seed, id).
type faultyConn struct {
	net.Conn
	cfg NetConfig

	mu     sync.Mutex
	rng    *rand.Rand
	broken bool
}

// WrapConn wraps one connection with the fault schedule derived from
// cfg.Seed+id. A zero cfg returns the connection untouched.
func WrapConn(c net.Conn, cfg NetConfig, id int64) net.Conn {
	if cfg.zero() {
		return c
	}
	return &faultyConn{
		Conn: c,
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed + id)),
	}
}

// decide rolls the fault dice for one operation under mu.
type verdict struct {
	latency time.Duration
	stall   bool
	reset   bool
	partial bool
}

func (c *faultyConn) decide(read bool) (verdict, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return verdict{}, ErrInjectedReset
	}
	var v verdict
	if c.cfg.Latency > 0 {
		v.latency = time.Duration(c.rng.Int63n(int64(c.cfg.Latency)))
	}
	if read && c.cfg.StallRead > 0 && c.rng.Float64() < c.cfg.StallRead {
		v.stall = true
	}
	if !read && c.cfg.PartialWrite > 0 && c.rng.Float64() < c.cfg.PartialWrite {
		v.partial = true
	}
	if c.cfg.Reset > 0 && c.rng.Float64() < c.cfg.Reset {
		v.reset = true
	}
	return v, nil
}

// sever marks the connection dead and closes the underlying conn so
// the peer observes a real reset, not a polite FIN-after-flush.
func (c *faultyConn) sever() {
	c.mu.Lock()
	c.broken = true
	c.mu.Unlock()
	if tc, ok := c.Conn.(*net.TCPConn); ok {
		tc.SetLinger(0) // RST on close
	}
	c.Conn.Close()
}

func (c *faultyConn) Read(p []byte) (int, error) {
	v, err := c.decide(true)
	if err != nil {
		return 0, err
	}
	if v.latency > 0 {
		time.Sleep(v.latency)
	}
	if v.stall && c.cfg.Stall > 0 {
		time.Sleep(c.cfg.Stall)
	}
	if v.reset {
		c.sever()
		return 0, fmt.Errorf("read: %w", ErrInjectedReset)
	}
	return c.Conn.Read(p)
}

func (c *faultyConn) Write(p []byte) (int, error) {
	v, err := c.decide(false)
	if err != nil {
		return 0, err
	}
	if v.latency > 0 {
		time.Sleep(v.latency)
	}
	if v.reset {
		c.sever()
		return 0, fmt.Errorf("write: %w", ErrInjectedReset)
	}
	if v.partial && len(p) > 1 {
		n, _ := c.Conn.Write(p[:c.prefixLen(len(p))])
		c.sever()
		return n, fmt.Errorf("partial write after %d of %d bytes: %w", n, len(p), ErrInjectedReset)
	}
	return c.Conn.Write(p)
}

// prefixLen picks how much of a partial write to deliver: at least one
// byte, never the whole buffer.
func (c *faultyConn) prefixLen(n int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return 1 + c.rng.Intn(n-1)
}
