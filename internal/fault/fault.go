// Package fault measures the reliability half of the paper's write-policy
// trade by injecting crashes into the cache simulation.
//
// Section 6.2 weighs write policies by the disk traffic they generate,
// but the paper's argument for the 30-second flush-back (and against pure
// delayed writes) is about what a crash loses: write-through loses
// nothing, a flush-back cache loses at most the data dirtied since the
// last scan — bounded by one flush interval — and a delayed-write cache
// risks everything dirtied since a block's last eviction, potentially the
// whole trace. This package quantifies that: a crash at time t loses
// exactly the blocks dirty in the cache at t, and the age of each dirty
// block (time since it was dirtied) is how long the user believed that
// data was safe.
//
// The measurement follows the tape engine's reuse discipline: one replay
// per configuration, not one per crash point. A crash observer (the
// cachesim.Observer hookup) maintains a shadow dirty set with
// dirtied-since timestamps as the replay runs; because observer callbacks
// arrive in nondecreasing time order — overdue flush-back scans execute
// at their scheduled boundaries, not at the catching-up event's clock —
// the shadow set's state when the callback stream passes a sampled crash
// instant is exactly the cache's dirty set at that instant. N crash
// points therefore cost one replay plus N cheap snapshots, and the
// snapshots of one replay, laid end to end, are the configuration's
// vulnerability timeline over the trace. Equivalence with the obvious
// N-replay implementation (truncate the tape at each crash point, replay,
// count dirty blocks) is enforced by TestCrashReplayMatchesTruncatedReplays.
package fault

import (
	"fmt"
	"sort"

	"bsdtrace/internal/cachesim"
	"bsdtrace/internal/stats"
	"bsdtrace/internal/trace"
	"bsdtrace/internal/xfer"
)

// Loss is the data at risk at one sampled crash instant: the dirty
// blocks a crash at exactly Time would have destroyed. A block dirtied
// at or before Time counts; a flush scheduled at or before Time has
// already saved its blocks. Bytes is block-granular (Blocks times the
// configuration's block size), as the simulator is.
type Loss struct {
	Time   trace.Time
	Blocks int64
	Bytes  int64
	// MaxAge is the age of the oldest dirty block (how long ago it was
	// dirtied); MeanAge the mean over dirty blocks. Both are zero when
	// nothing would be lost. Under flush-back, MaxAge can never reach
	// the flush interval: anything older was written by an earlier scan.
	MaxAge  trace.Time
	MeanAge trace.Time
}

// Report is one configuration's crash exposure: the loss at every
// sampled crash point of one replay, in time order.
type Report struct {
	Config cachesim.Config
	// Result is the traffic side of the same replay — the crash sweep
	// piggybacks on a full simulation, so Table VI's numbers and the
	// reliability numbers come from one pass.
	Result *cachesim.Result
	Points []Loss
	// AgeCDF is the distribution of dirty-data ages in seconds across
	// all sampled crash points, weighted by block: "when a crash hits,
	// how stale is the data it destroys?"
	AgeCDF stats.CDF
}

// MeanLossBytes is the expected loss of a crash at a uniformly sampled
// point: the mean of Bytes over the crash points (0 for no points).
func (r *Report) MeanLossBytes() float64 {
	if len(r.Points) == 0 {
		return 0
	}
	var sum int64
	for _, p := range r.Points {
		sum += p.Bytes
	}
	return float64(sum) / float64(len(r.Points))
}

// MaxLoss returns the worst sampled crash point (the zero Loss for no
// points).
func (r *Report) MaxLoss() Loss {
	var max Loss
	for _, p := range r.Points {
		if p.Bytes > max.Bytes {
			max = p
		}
	}
	return max
}

// MaxAge returns the oldest would-be-lost data over all crash points.
func (r *Report) MaxAge() trace.Time {
	var max trace.Time
	for _, p := range r.Points {
		if p.MaxAge > max {
			max = p.MaxAge
		}
	}
	return max
}

// VulnerableFraction is the fraction of sampled crash points at which a
// crash loses anything at all.
func (r *Report) VulnerableFraction() float64 {
	if len(r.Points) == 0 {
		return 0
	}
	var n int
	for _, p := range r.Points {
		if p.Blocks > 0 {
			n++
		}
	}
	return float64(n) / float64(len(r.Points))
}

// Points samples n crash instants evenly across the tape's time span:
// k*end/n for k = 1..n, where end is the tape's last op time. An empty
// tape (or n <= 0) yields none. Evenly spaced points make the per-point
// losses a vulnerability timeline and the mean an unbiased estimate of a
// uniformly random crash's loss.
func Points(tape *xfer.Tape, n int) []trace.Time {
	if n <= 0 || len(tape.Ops) == 0 {
		return nil
	}
	end := tape.Ops[len(tape.Ops)-1].Time
	pts := make([]trace.Time, n)
	for k := 1; k <= n; k++ {
		pts[k-1] = end * trace.Time(k) / trace.Time(n)
	}
	return pts
}

// tracker is the crash observer: a shadow dirty set keyed by dense block
// ID, holding each block's dirtied-since time. Crash points are
// finalized lazily — when the first callback strictly after a point
// arrives, the shadow set is exactly the cache's dirty set at that
// point (callbacks at the point's own instant are part of the crash
// state, so ties wait).
type tracker struct {
	cfg    cachesim.Config
	points []trace.Time
	next   int
	dirty  map[int32]trace.Time
	losses []Loss
	ages   *stats.Histogram
}

func newTracker(cfg cachesim.Config, points []trace.Time) *tracker {
	return &tracker{
		cfg:    cfg,
		points: points,
		dirty:  make(map[int32]trace.Time),
		losses: make([]Loss, 0, len(points)),
		// Ages span well under a second to a whole trace, like residency.
		ages: stats.NewLogHistogram(0.01, 1.35, 60),
	}
}

// BlockDirtied and BlockCleaned implement cachesim.Observer.
func (t *tracker) BlockDirtied(id int32, now trace.Time) {
	t.catchUp(now)
	t.dirty[id] = now
}

func (t *tracker) BlockCleaned(id int32, now trace.Time, _ cachesim.CleanReason) {
	t.catchUp(now)
	delete(t.dirty, id)
}

// catchUp finalizes every crash point the callback stream has passed.
func (t *tracker) catchUp(now trace.Time) {
	for t.next < len(t.points) && t.points[t.next] < now {
		t.snapshot(t.points[t.next])
		t.next++
	}
}

// finish finalizes the points the callback stream never reached, given
// the trace's last op time. Points at or before the end see the final
// dirty set; points beyond it account for the flush schedule continuing
// past the last traced event — the first flush-back scan after the trace
// ends cleans everything, so a late-enough crash under flush-back loses
// nothing. (The replay itself ran every scan scheduled at or before end.)
func (t *tracker) finish(end trace.Time) {
	for t.next < len(t.points) {
		p := t.points[t.next]
		if p > end && t.cfg.Write == cachesim.FlushBack {
			nextScan := (end/t.cfg.FlushInterval + 1) * t.cfg.FlushInterval
			if p >= nextScan {
				for id := range t.dirty {
					delete(t.dirty, id)
				}
			}
		}
		t.snapshot(p)
		t.next++
	}
}

// snapshot records the loss of a crash at time at. Map iteration order
// is irrelevant: counts, sums, maxima, and histogram adds all commute.
func (t *tracker) snapshot(at trace.Time) {
	l := Loss{Time: at}
	var sum trace.Time
	for _, since := range t.dirty {
		age := at - since
		l.Blocks++
		sum += age
		if age > l.MaxAge {
			l.MaxAge = age
		}
		t.ages.Add(age.Seconds(), 1)
	}
	l.Bytes = l.Blocks * t.cfg.BlockSize
	if l.Blocks > 0 {
		l.MeanAge = sum / trace.Time(l.Blocks)
	}
	t.losses = append(t.losses, l)
}

func (t *tracker) report(end trace.Time, res *cachesim.Result) *Report {
	t.finish(end)
	return &Report{Config: t.cfg, Result: res, Points: t.losses, AgeCDF: t.ages.CDF()}
}

// checkPoints validates and normalizes a crash-point list: points must
// be non-negative; they are sorted ascending (the lazy finalization
// walks them in time order).
func checkPoints(points []trace.Time) ([]trace.Time, error) {
	pts := make([]trace.Time, len(points))
	copy(pts, points)
	sort.Slice(pts, func(i, j int) bool { return pts[i] < pts[j] })
	if len(pts) > 0 && pts[0] < 0 {
		return nil, fmt.Errorf("fault: negative crash point %v", pts[0])
	}
	return pts, nil
}

// CrashReplayTape replays one configuration over the tape once, sampling
// the dirty set at every crash point. The returned report's Result is a
// full traffic-side simulation result, identical to SimulateTape's.
func CrashReplayTape(tape *xfer.Tape, cfg cachesim.Config, points []trace.Time) (*Report, error) {
	rs, err := SweepTape(tape, []cachesim.Config{cfg}, points)
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// SweepTape runs the crash sweep for every configuration over one shared
// tape: each configuration costs one replay (on parallel workers, via
// cachesim.MultiSimulateObserved) regardless of how many crash points are
// sampled, and all configurations share the tape's per-block-size
// resolutions. Results are in configuration order and deterministic.
func SweepTape(tape *xfer.Tape, cfgs []cachesim.Config, points []trace.Time) ([]*Report, error) {
	pts, err := checkPoints(points)
	if err != nil {
		return nil, err
	}
	trackers := make([]*tracker, len(cfgs))
	results, err := cachesim.MultiSimulateObserved(tape, cfgs, func(i int) cachesim.Observer {
		trackers[i] = newTracker(cfgs[i], pts)
		return trackers[i]
	})
	if err != nil {
		return nil, err
	}
	var end trace.Time
	if len(tape.Ops) > 0 {
		end = tape.Ops[len(tape.Ops)-1].Time
	}
	out := make([]*Report, len(cfgs))
	for i, tr := range trackers {
		out[i] = tr.report(end, results[i])
	}
	return out, nil
}

// PolicySweepTape runs the crash sweep across write policies at one
// cache geometry — the reliability column the paper's Table VI implies
// but never measures. Results are in policy order.
func PolicySweepTape(tape *xfer.Tape, blockSize, cacheSize int64, policies []cachesim.PolicySpec, points []trace.Time) ([]*Report, error) {
	cfgs := make([]cachesim.Config, len(policies))
	for i, p := range policies {
		cfgs[i] = cachesim.Config{
			BlockSize:     blockSize,
			CacheSize:     cacheSize,
			Write:         p.Write,
			FlushInterval: p.Interval,
		}
	}
	return SweepTape(tape, cfgs, points)
}
