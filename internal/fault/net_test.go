package fault

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipeConns returns a connected TCP pair on the loopback, because
// net.Pipe lacks the deadline/linger surface the wrapper exercises.
func pipeConns(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			done <- nil
			return
		}
		done <- c
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	server = <-done
	if server == nil {
		t.FailNow()
	}
	return client, server
}

// TestWrapConnTransparent: a zero config must not wrap at all.
func TestWrapConnTransparent(t *testing.T) {
	c, s := pipeConns(t)
	defer c.Close()
	defer s.Close()
	if w := WrapConn(c, NetConfig{Seed: 42}, 0); w != c {
		t.Fatalf("zero config wrapped the connection")
	}
}

// TestFaultyConnReset: with Reset certain, the first operation fails
// with the injected error, the connection is closed for good, and every
// later operation reports the same.
func TestFaultyConnReset(t *testing.T) {
	c, s := pipeConns(t)
	defer s.Close()
	fc := WrapConn(c, NetConfig{Seed: 1, Reset: 1}, 0)
	if _, err := fc.Write([]byte("x")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("write on reset-everything conn: %v", err)
	}
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("read after injected reset: %v", err)
	}
}

// TestFaultyConnPartialWrite: a partial write delivers a strict, nonzero
// prefix and then kills the connection; the peer receives exactly that
// prefix.
func TestFaultyConnPartialWrite(t *testing.T) {
	c, s := pipeConns(t)
	defer s.Close()
	fc := WrapConn(c, NetConfig{Seed: 7, PartialWrite: 1}, 0)
	msg := []byte("0123456789abcdef")
	n, err := fc.Write(msg)
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("partial write err = %v", err)
	}
	if n < 1 || n >= len(msg) {
		t.Fatalf("partial write delivered %d of %d bytes, want a strict prefix", n, len(msg))
	}
	got, _ := io.ReadAll(s)
	if string(got) != string(msg[:n]) {
		t.Fatalf("peer got %q, want the %d-byte prefix", got, n)
	}
}

// TestFaultyConnDeterministic: two connections with the same seed and id
// make identical fault decisions.
func TestFaultyConnDeterministic(t *testing.T) {
	run := func() (resets int) {
		c, s := pipeConns(t)
		defer s.Close()
		fc := WrapConn(c, NetConfig{Seed: 99, Reset: 0.5}, 3)
		go io.Copy(io.Discard, s)
		for i := 0; i < 20; i++ {
			if _, err := fc.Write([]byte("payload")); err != nil {
				resets = i
				return
			}
		}
		return 20
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced different schedules: first failure at %d vs %d", a, b)
	}
}

// TestFaultyConnStallAndLatency: stalls and latency delay but do not
// corrupt; the bytes still arrive intact.
func TestFaultyConnStallAndLatency(t *testing.T) {
	c, s := pipeConns(t)
	defer s.Close()
	fc := WrapConn(c, NetConfig{Seed: 5, StallRead: 1, Stall: 20 * time.Millisecond, Latency: 5 * time.Millisecond}, 0)
	go func() {
		s.Write([]byte("hello"))
		s.Close()
	}()
	start := time.Now()
	got, err := io.ReadAll(fc)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(got) != "hello" {
		t.Fatalf("read %q through stalling conn", got)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatalf("stall did not delay the read")
	}
}

// TestFaultyListener: accepted connections carry distinct schedules but
// the listener remains a working listener.
func TestFaultyListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	fl := NewFaultyListener(ln, NetConfig{Seed: 11, Latency: time.Millisecond})
	defer fl.Close()
	go func() {
		for {
			c, err := fl.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c) // echo
			}(c)
		}
	}()
	for i := 0; i < 3; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		c.Write([]byte("ping"))
		buf := make([]byte, 4)
		if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "ping" {
			t.Fatalf("echo %d: %q, %v", i, buf, err)
		}
		c.Close()
	}
}

// TestRetryHonorsHintAndBackoff: the hint replaces the computed backoff,
// growth is exponential up to the cap, jitter keeps every delay within
// [d/2, d], and success stops the loop.
func TestRetryHonorsHintAndBackoff(t *testing.T) {
	var delays []time.Duration
	cfg := RetryConfig{
		Seed:     3,
		Attempts: 5,
		Base:     100 * time.Millisecond,
		Cap:      400 * time.Millisecond,
		Sleep:    func(d time.Duration) { delays = append(delays, d) },
	}
	calls := 0
	err := Retry(cfg, func(attempt int) (time.Duration, error) {
		calls++
		if attempt != calls-1 {
			t.Fatalf("attempt %d on call %d", attempt, calls)
		}
		switch attempt {
		case 1:
			return time.Second, errors.New("shed") // hint beyond cap: clamped
		case 3:
			return 0, nil // success
		default:
			return 0, errors.New("fail")
		}
	})
	if err != nil {
		t.Fatalf("Retry: %v", err)
	}
	if calls != 4 || len(delays) != 3 {
		t.Fatalf("calls = %d, sleeps = %d; want 4 and 3", calls, len(delays))
	}
	wantMax := []time.Duration{100 * time.Millisecond, 400 * time.Millisecond, 400 * time.Millisecond}
	for i, d := range delays {
		if d < wantMax[i]/2 || d > wantMax[i] {
			t.Fatalf("delay %d = %v, want within [%v, %v]", i, d, wantMax[i]/2, wantMax[i])
		}
	}
}

// TestRetryExhaustion: the budget is honored and the last error is
// wrapped in the failure.
func TestRetryExhaustion(t *testing.T) {
	calls := 0
	sentinel := errors.New("still down")
	err := Retry(RetryConfig{Attempts: 3, Sleep: func(time.Duration) {}},
		func(int) (time.Duration, error) { calls++; return 0, sentinel })
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}

// TestRetryDeterministicJitter: equal seeds, equal schedules.
func TestRetryDeterministicJitter(t *testing.T) {
	run := func() []time.Duration {
		var delays []time.Duration
		Retry(RetryConfig{Seed: 8, Attempts: 6, Sleep: func(d time.Duration) { delays = append(delays, d) }},
			func(int) (time.Duration, error) { return 0, errors.New("x") })
		return delays
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
