package fault

import (
	"io"
	"math/rand"

	"bsdtrace/internal/trace"
)

// TraceMangler is the trace-layer sibling of the crash injector: where
// the crash observer measures what a cache loses when the machine dies,
// the mangler measures what the analyses lose when the *trace* does. It
// wraps a trace.Source and deterministically damages the stream the way
// real tracers damage theirs — records dropped on kernel buffer
// overruns, streams truncated by mid-trace reboots, bits flipped by
// decaying media, records duplicated by logger retries, timestamps
// jittered by clock steps — so the recovery layer and the
// loss-sensitivity sweeps have a reproducible adversary.
//
// All damage is drawn from a seeded math/rand stream: the same
// MangleConfig over the same input produces the same damaged output,
// event for event.
type TraceMangler struct {
	src    trace.Source
	rng    *rand.Rand
	cfg    MangleConfig
	stats  MangleStats
	dup    trace.Event // pending duplicate
	hasDup bool
	done   bool
}

// MangleConfig sets the per-event damage probabilities. Rates are
// independent probabilities in [0,1]; an event can be both flipped and
// jittered, but a dropped event suffers nothing else.
type MangleConfig struct {
	// Seed fixes the damage pattern.
	Seed int64
	// Drop is the probability an event is silently discarded.
	Drop float64
	// Duplicate is the probability an event is emitted twice.
	Duplicate float64
	// BitFlip is the probability one random bit of one random field is
	// inverted. Flips stay in each field's plausible range (low bits) so
	// the damaged value is wrong-but-credible, the way a flipped varint
	// byte reads — not a position beyond the address space.
	BitFlip float64
	// Jitter is the probability a timestamp is perturbed by a uniform
	// offset in [-JitterMax, +JitterMax].
	Jitter float64
	// JitterMax bounds the perturbation; zero means DefaultJitterMax.
	JitterMax trace.Time
	// TruncateAfter, when positive, ends the stream after that many
	// events, as a reboot mid-trace would.
	TruncateAfter int64
}

// DefaultJitterMax is the timestamp perturbation bound: a few seconds,
// the scale of a clock step, well past the 1985 tracer's 10ms precision.
const DefaultJitterMax = 5 * trace.Second

// MangleStats tallies the damage inflicted.
type MangleStats struct {
	// Seen is the number of events consumed from the wrapped source.
	Seen int64
	// Emitted is the number of events passed downstream (duplicates
	// included, drops excluded).
	Emitted    int64
	Dropped    int64
	Duplicated int64
	Flipped    int64
	Jittered   int64
	// Truncated reports whether the stream was cut short.
	Truncated bool
}

// NewTraceMangler wraps src in a deterministic damage layer.
func NewTraceMangler(src trace.Source, cfg MangleConfig) *TraceMangler {
	if cfg.JitterMax <= 0 {
		cfg.JitterMax = DefaultJitterMax
	}
	return &TraceMangler{
		src: src,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		cfg: cfg,
	}
}

// Stats returns the damage tally so far; complete once Next returns
// io.EOF.
func (m *TraceMangler) Stats() MangleStats { return m.stats }

// Next returns the next (possibly damaged) event.
func (m *TraceMangler) Next() (trace.Event, error) {
	if m.hasDup {
		m.hasDup = false
		m.stats.Emitted++
		return m.dup, nil
	}
	for {
		if m.done {
			return trace.Event{}, io.EOF
		}
		if m.cfg.TruncateAfter > 0 && m.stats.Seen >= m.cfg.TruncateAfter {
			m.done = true
			m.stats.Truncated = true
			return trace.Event{}, io.EOF
		}
		e, err := m.src.Next()
		if err == io.EOF {
			m.done = true
		}
		if err != nil {
			return trace.Event{}, err
		}
		m.stats.Seen++
		if m.roll(m.cfg.Drop) {
			m.stats.Dropped++
			continue
		}
		if m.roll(m.cfg.BitFlip) {
			e = m.flip(e)
			m.stats.Flipped++
		}
		if m.roll(m.cfg.Jitter) {
			span := int64(m.cfg.JitterMax)
			e.Time += trace.Time(m.rng.Int63n(2*span+1) - span)
			m.stats.Jittered++
		}
		if m.roll(m.cfg.Duplicate) {
			m.dup, m.hasDup = e, true
			m.stats.Duplicated++
		}
		m.stats.Emitted++
		return e, nil
	}
}

func (m *TraceMangler) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	return m.rng.Float64() < p
}

// flip inverts one random low bit of one random field. Low bits keep the
// damage in-range: a flipped position stays a position the downstream
// block mapper can represent, a flipped time moves minutes rather than
// centuries, while kind and mode flips still exercise the
// invalid-discriminator paths.
func (m *TraceMangler) flip(e trace.Event) trace.Event {
	switch m.rng.Intn(8) {
	case 0:
		e.Time ^= trace.Time(1) << m.rng.Intn(24)
	case 1:
		e.Kind ^= trace.Kind(1) << m.rng.Intn(8)
	case 2:
		e.OpenID ^= trace.OpenID(1) << m.rng.Intn(24)
	case 3:
		e.File ^= trace.FileID(1) << m.rng.Intn(24)
	case 4:
		e.User ^= trace.UserID(1) << m.rng.Intn(16)
	case 5:
		e.Mode ^= trace.Mode(1) << m.rng.Intn(8)
	case 6:
		e.Size ^= int64(1) << m.rng.Intn(24)
	case 7:
		if m.rng.Intn(2) == 0 {
			e.OldPos ^= int64(1) << m.rng.Intn(24)
		} else {
			e.NewPos ^= int64(1) << m.rng.Intn(24)
		}
	}
	return e
}
