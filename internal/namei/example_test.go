package namei_test

import (
	"fmt"

	"bsdtrace/internal/namei"
)

// A cold pathname resolution pays "a minimum of two block accesses for
// each element in a file's pathname" (paper §3.2) plus the file's own
// i-node; a warm one costs nothing.
func ExampleSimulator_Resolve() {
	sim := namei.New(namei.Config{})
	sim.Resolve("/usr/include/stdio.h") // cold
	fmt.Printf("cold: %d metadata disk reads\n", sim.Stats.DiskReads())
	sim.Resolve("/usr/include/stdio.h") // warm
	fmt.Printf("warm: %d metadata disk reads (name cache hit ratio %.0f%%)\n",
		sim.Stats.DiskReads(), 100*sim.Stats.NameHitRatio())
	// Output:
	// cold: 5 metadata disk reads
	// warm: 5 metadata disk reads (name cache hit ratio 50%)
}
