// Package namei simulates the metadata machinery the paper's tracer could
// not see: pathname resolution through the 4.2 BSD directory (name) cache,
// the in-core i-node cache, and a small cache of directory content blocks.
//
// The paper's §3.2 lists three sources of disk I/O its analyses exclude —
// paging, i-nodes, and directories — and its conclusion estimates that
// "more than half of all disk block references could come from these other
// accesses", citing Leffler et al.'s measured 85% directory cache hit
// ratio. This package attaches to the simulated kernel as a MetaHook, so
// the same workload that produces the data trace also exercises name
// lookups, and reports the metadata disk I/O to set against the data-block
// I/O from the cache simulator.
//
// Model, following the paper's description: resolving a pathname costs, per
// component, a directory-cache probe; on a miss, the kernel reads the
// directory's descriptor (through the i-node cache) and the directory's
// contents (through a directory block cache) — "a minimum of two block
// accesses for each element in a file's pathname" when nothing is cached.
// Opening the file itself reads its i-node through the i-node cache, and
// operations that modify metadata (create, unlink, truncate, writes at
// close) write back the i-node and, for directory changes, the directory
// block.
package namei

import (
	"strings"
)

// Config sizes the three caches. Zero values select defaults comparable
// to a 1985 4.2 BSD kernel.
type Config struct {
	// NameEntries is the capacity of the name cache in (directory,
	// component) entries. 4.3 BSD shipped with a few hundred.
	NameEntries int
	// InodeEntries is the in-core i-node table size.
	InodeEntries int
	// DirBlocks is the number of directory content blocks cached.
	DirBlocks int
}

func (c *Config) fill() {
	if c.NameEntries <= 0 {
		c.NameEntries = 400
	}
	if c.InodeEntries <= 0 {
		c.InodeEntries = 200
	}
	if c.DirBlocks <= 0 {
		c.DirBlocks = 64
	}
}

// Stats is the simulator's outcome.
type Stats struct {
	// Resolves counts pathname resolutions; Components the directory
	// components examined (the file's final component is counted under
	// the i-node cache, not here).
	Resolves   int64
	Components int64
	// NameHits and NameMisses are directory-cache probes per component.
	NameHits   int64
	NameMisses int64
	// InodeHits and InodeMisses are i-node cache probes (directories on
	// name misses, plus every resolved file).
	InodeHits   int64
	InodeMisses int64
	// DirBlockHits and DirBlockMisses are directory-content reads on
	// name-cache misses.
	DirBlockHits   int64
	DirBlockMisses int64
	// InodeWrites and DirWrites are metadata write-backs.
	InodeWrites int64
	DirWrites   int64
}

// NameHitRatio returns the directory name cache hit ratio (Leffler et al.
// measured 85%).
func (s *Stats) NameHitRatio() float64 {
	total := s.NameHits + s.NameMisses
	if total == 0 {
		return 0
	}
	return float64(s.NameHits) / float64(total)
}

// InodeHitRatio returns the i-node cache hit ratio.
func (s *Stats) InodeHitRatio() float64 {
	total := s.InodeHits + s.InodeMisses
	if total == 0 {
		return 0
	}
	return float64(s.InodeHits) / float64(total)
}

// DiskReads returns metadata fetches from disk: i-node and directory
// block misses.
func (s *Stats) DiskReads() int64 { return s.InodeMisses + s.DirBlockMisses }

// DiskWrites returns metadata write-backs.
func (s *Stats) DiskWrites() int64 { return s.InodeWrites + s.DirWrites }

// DiskIOs returns all metadata disk operations.
func (s *Stats) DiskIOs() int64 { return s.DiskReads() + s.DiskWrites() }

// lruCache is a small string-keyed LRU used for all three caches.
type lruCache struct {
	cap   int
	items map[string]*lruNode
	head  *lruNode
	tail  *lruNode
}

type lruNode struct {
	key        string
	prev, next *lruNode
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, items: make(map[string]*lruNode, capacity)}
}

func (c *lruCache) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *lruCache) pushFront(n *lruNode) {
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

// touch probes the cache, returning whether key was present, and inserts
// or refreshes it either way.
func (c *lruCache) touch(key string) bool {
	if n, ok := c.items[key]; ok {
		c.unlink(n)
		c.pushFront(n)
		return true
	}
	if len(c.items) >= c.cap {
		victim := c.tail
		c.unlink(victim)
		delete(c.items, victim.key)
	}
	n := &lruNode{key: key}
	c.items[key] = n
	c.pushFront(n)
	return false
}

// drop removes a key if present.
func (c *lruCache) drop(key string) {
	if n, ok := c.items[key]; ok {
		c.unlink(n)
		delete(c.items, key)
	}
}

// Simulator implements kernel.MetaHook.
type Simulator struct {
	cfg    Config
	names  *lruCache // "dirpath\x00component"
	inodes *lruCache // path of file or directory
	dirs   *lruCache // directory path -> contents block
	Stats  Stats
}

// New creates a simulator.
func New(cfg Config) *Simulator {
	cfg.fill()
	return &Simulator{
		cfg:    cfg,
		names:  newLRU(cfg.NameEntries),
		inodes: newLRU(cfg.InodeEntries),
		dirs:   newLRU(cfg.DirBlocks),
	}
}

// Config returns the (default-filled) configuration.
func (s *Simulator) Config() Config { return s.cfg }

// Resolve walks the path through the caches (kernel.MetaHook).
func (s *Simulator) Resolve(path string) {
	s.Stats.Resolves++
	parts := strings.Split(strings.TrimPrefix(path, "/"), "/")
	dir := "/"
	for i, comp := range parts {
		if comp == "" {
			continue
		}
		if i == len(parts)-1 {
			// The final component: read the file's own i-node.
			if s.inodes.touch(path) {
				s.Stats.InodeHits++
			} else {
				s.Stats.InodeMisses++
			}
			break
		}
		s.Stats.Components++
		key := dir + "\x00" + comp
		if s.names.touch(key) {
			s.Stats.NameHits++
		} else {
			s.Stats.NameMisses++
			// Miss: read the directory's descriptor and contents.
			if s.inodes.touch(dir) {
				s.Stats.InodeHits++
			} else {
				s.Stats.InodeMisses++
			}
			if s.dirs.touch(dir) {
				s.Stats.DirBlockHits++
			} else {
				s.Stats.DirBlockMisses++
			}
		}
		if dir == "/" {
			dir = "/" + comp
		} else {
			dir = dir + "/" + comp
		}
	}
}

// InodeUpdate records an i-node write-back (kernel.MetaHook).
func (s *Simulator) InodeUpdate() { s.Stats.InodeWrites++ }

// DirUpdate records a directory modification (kernel.MetaHook): the
// directory block is rewritten and its cached contents stay valid (the
// cache holds the new version; the write still goes to disk, as 4.2 BSD
// wrote directories synchronously).
func (s *Simulator) DirUpdate(dir string) {
	s.Stats.DirWrites++
	s.dirs.touch(dir)
}
