package namei

import (
	"testing"

	"bsdtrace/internal/cachesim"
	"bsdtrace/internal/trace"
	"bsdtrace/internal/workload"
)

func TestResolveColdAndWarm(t *testing.T) {
	s := New(Config{})
	// Cold resolve of /usr/include/stdio.h: two directory components,
	// each missing (name, dir inode, dir block), plus the file's inode.
	s.Resolve("/usr/include/stdio.h")
	if s.Stats.Resolves != 1 || s.Stats.Components != 2 {
		t.Fatalf("stats after cold resolve: %+v", s.Stats)
	}
	if s.Stats.NameMisses != 2 || s.Stats.NameHits != 0 {
		t.Errorf("name cache: %+v", s.Stats)
	}
	if s.Stats.InodeMisses != 3 { // usr dir, include dir, file
		t.Errorf("inode misses = %d, want 3", s.Stats.InodeMisses)
	}
	if s.Stats.DirBlockMisses != 2 {
		t.Errorf("dir block misses = %d, want 2", s.Stats.DirBlockMisses)
	}
	// "a minimum of two block accesses for each element in a file's
	// pathname": 2 components x 2 + 1 file inode.
	if got := s.Stats.DiskReads(); got != 5 {
		t.Errorf("cold DiskReads = %d, want 5", got)
	}

	// Warm resolve: everything hits; only the name cache and file inode
	// are consulted.
	before := s.Stats.DiskReads()
	s.Resolve("/usr/include/stdio.h")
	if s.Stats.DiskReads() != before {
		t.Errorf("warm resolve cost disk reads")
	}
	if s.Stats.NameHits != 2 {
		t.Errorf("warm name hits = %d, want 2", s.Stats.NameHits)
	}
}

func TestRootFileResolve(t *testing.T) {
	s := New(Config{})
	s.Resolve("/vmunix")
	if s.Stats.Components != 0 {
		t.Errorf("root file should have no directory components: %+v", s.Stats)
	}
	if s.Stats.InodeMisses != 1 {
		t.Errorf("inode misses = %d, want 1", s.Stats.InodeMisses)
	}
}

func TestHitRatios(t *testing.T) {
	s := New(Config{})
	for i := 0; i < 10; i++ {
		s.Resolve("/a/b/file")
	}
	// First resolve misses twice, the rest hit twice each.
	if got := s.Stats.NameHitRatio(); got != 18.0/20 {
		t.Errorf("NameHitRatio = %v, want 0.9", got)
	}
	// Inode probes: 3 cold misses (a, b, file), then 9 warm file hits;
	// directory inodes are only consulted on name-cache misses.
	if got := s.Stats.InodeHitRatio(); got != 0.75 {
		t.Errorf("InodeHitRatio = %v, want 0.75", got)
	}
	var empty Stats
	if empty.NameHitRatio() != 0 || empty.InodeHitRatio() != 0 {
		t.Errorf("empty ratios should be 0")
	}
}

func TestCapacityEviction(t *testing.T) {
	s := New(Config{NameEntries: 2, InodeEntries: 2, DirBlocks: 2})
	s.Resolve("/d1/f")
	s.Resolve("/d2/f")
	s.Resolve("/d3/f") // evicts d1's entries
	missesBefore := s.Stats.NameMisses
	s.Resolve("/d1/f") // must miss again
	if s.Stats.NameMisses != missesBefore+1 {
		t.Errorf("evicted entry did not miss")
	}
}

func TestUpdates(t *testing.T) {
	s := New(Config{})
	s.InodeUpdate()
	s.DirUpdate("/tmp")
	if s.Stats.InodeWrites != 1 || s.Stats.DirWrites != 1 {
		t.Errorf("updates not counted: %+v", s.Stats)
	}
	if s.Stats.DiskWrites() != 2 || s.Stats.DiskIOs() != 2 {
		t.Errorf("write totals wrong: %+v", s.Stats)
	}
	// The rewritten directory block is now cached: resolving a component
	// *inside* /tmp misses the name cache but hits the dir block cache.
	s.Resolve("/tmp/x/y")
	if s.Stats.DirBlockHits != 1 {
		t.Errorf("dir update should warm the dir block cache: %+v", s.Stats)
	}
}

func TestConfigDefaults(t *testing.T) {
	s := New(Config{})
	c := s.Config()
	if c.NameEntries <= 0 || c.InodeEntries <= 0 || c.DirBlocks <= 0 {
		t.Errorf("defaults not filled: %+v", c)
	}
}

// Integration: the paper's conclusion experiment. Attach the metadata
// simulator to a real workload and compare metadata disk I/O with the
// data-block I/O of a UNIX-sized cache; the paper estimates metadata could
// be more than half of all disk block references, and Leffler et al.
// report an ~85% directory cache hit ratio.
func TestMetadataVersusDataIO(t *testing.T) {
	sim := New(Config{})
	res, err := workload.Generate(workload.Config{
		Profile: "A5", Seed: 4, Duration: 30 * trace.Minute, Meta: sim,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Stats.Resolves == 0 {
		t.Fatal("meta hook never called")
	}
	hit := sim.Stats.NameHitRatio()
	if hit < 0.70 || hit > 0.999 {
		t.Errorf("name cache hit ratio = %.3f, want high (Leffler: ~0.85)", hit)
	}
	data, err := cachesim.Simulate(res.Events, cachesim.Config{
		BlockSize: 4096, CacheSize: cachesim.UnixCacheSize,
		Write: cachesim.FlushBack, FlushInterval: 30 * trace.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	meta := sim.Stats.DiskIOs()
	if meta == 0 {
		t.Fatal("no metadata I/O")
	}
	frac := float64(meta) / float64(meta+data.DiskIOs())
	// The paper: "more than half of all disk block references could come
	// from these other accesses" (which also include paging). Metadata
	// alone should at least be a substantial fraction.
	if frac < 0.15 {
		t.Errorf("metadata fraction of disk I/O = %.2f, implausibly small", frac)
	}
	t.Logf("metadata %d vs data %d disk I/Os (%.0f%% metadata); name hit %.1f%%",
		meta, data.DiskIOs(), 100*frac, 100*hit)
}
