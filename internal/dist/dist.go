// Package dist provides the deterministic random samplers that drive the
// synthetic workload generator.
//
// Every source of randomness in the repository flows through a Source
// created from an explicit seed, so a given seed reproduces a byte-identical
// trace and therefore identical tables and figures. The samplers cover the
// distributions the workload model needs: exponential inter-arrival times,
// log-normal file sizes, Pareto tails for the occasional very large file,
// Zipf-like popularity for shared files and programs, and arbitrary
// empirical (weighted-choice) distributions for everything measured rather
// than modeled.
package dist

import (
	"math"
	"math/rand"
	"sort"
)

// Source is a deterministic random source. It is a thin wrapper around
// math/rand.Rand that exists so constructors can demand a seeded source and
// so helper samplers have one obvious home. Source is not safe for
// concurrent use; the simulator is single-goroutine by design.
type Source struct {
	rng *rand.Rand
}

// NewSource returns a Source seeded with the given value.
func NewSource(seed int64) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed))}
}

// Fork returns a new Source whose seed is derived from this source's
// stream. Forking gives each workload component an independent stream so
// adding draws to one component does not perturb the others.
func (s *Source) Fork() *Source {
	return NewSource(s.rng.Int63())
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform value in [0, n). It panics if n <= 0, matching
// math/rand.
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Int63n returns a uniform value in [0, n).
func (s *Source) Int63n(n int64) int64 { return s.rng.Int63n(n) }

// Bool returns true with probability p (clamped to [0, 1]).
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.rng.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
// A non-positive mean returns 0.
func (s *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return s.rng.ExpFloat64() * mean
}

// Normal returns a normally distributed value with the given mean and
// standard deviation.
func (s *Source) Normal(mean, sd float64) float64 {
	return s.rng.NormFloat64()*sd + mean
}

// LogNormal returns a log-normally distributed value parameterized by its
// median and the sigma of the underlying normal. File sizes and open
// durations in the traced systems are heavy-tailed with a small median,
// which a log-normal fits well.
func (s *Source) LogNormal(median, sigma float64) float64 {
	if median <= 0 {
		return 0
	}
	return median * math.Exp(s.rng.NormFloat64()*sigma)
}

// Pareto returns a Pareto-distributed value with the given minimum and
// shape alpha. Smaller alpha means a heavier tail; alpha <= 0 returns min.
func (s *Source) Pareto(min, alpha float64) float64 {
	if alpha <= 0 || min <= 0 {
		return min
	}
	u := s.rng.Float64()
	for u == 0 {
		u = s.rng.Float64()
	}
	return min / math.Pow(u, 1/alpha)
}

// Zipf draws from a Zipf distribution over [0, n) with exponent theta > 1
// being more skewed as theta grows. It is used for file and program
// popularity: a few shared headers and commands absorb most accesses.
type Zipf struct {
	z *rand.Zipf
	n int
}

// NewZipf creates a Zipf sampler over [0, n) with skew parameter sk > 1.
func NewZipf(s *Source, sk float64, n int) *Zipf {
	if n <= 0 {
		panic("dist: NewZipf needs n > 0")
	}
	if sk <= 1 {
		panic("dist: NewZipf needs skew > 1")
	}
	return &Zipf{z: rand.NewZipf(s.rng, sk, 1, uint64(n-1)), n: n}
}

// Draw returns the next index in [0, n).
func (z *Zipf) Draw() int { return int(z.z.Uint64()) }

// N returns the population size.
func (z *Zipf) N() int { return z.n }

// Weighted selects indexes with probability proportional to fixed weights.
type Weighted struct {
	cum []float64 // cumulative weights
}

// NewWeighted builds a weighted chooser. It panics on an empty or
// non-positive-total weight vector; negative weights are rejected.
func NewWeighted(weights []float64) *Weighted {
	if len(weights) == 0 {
		panic("dist: NewWeighted needs at least one weight")
	}
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			panic("dist: NewWeighted weight must be non-negative")
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		panic("dist: NewWeighted needs positive total weight")
	}
	return &Weighted{cum: cum}
}

// Draw returns an index chosen with probability weight[i]/sum(weights).
func (w *Weighted) Draw(s *Source) int {
	x := s.Float64() * w.cum[len(w.cum)-1]
	return sort.SearchFloat64s(w.cum, x)
}

// Empirical samples from a piecewise distribution described by (value,
// cumulative-fraction) breakpoints, interpolating log-uniformly between
// them. It turns a CDF read off one of the paper's figures directly into a
// sampler, which is how the workload calibration encodes the paper's
// measured distributions.
type Empirical struct {
	values []float64 // ascending
	cum    []float64 // ascending, last == 1
}

// NewEmpirical builds a sampler from breakpoints. values must be positive
// ascending; fractions must be ascending and end at 1.
func NewEmpirical(values, fractions []float64) *Empirical {
	if len(values) == 0 || len(values) != len(fractions) {
		panic("dist: NewEmpirical needs matching non-empty slices")
	}
	for i := range values {
		if values[i] <= 0 {
			panic("dist: NewEmpirical values must be positive")
		}
		if i > 0 && (values[i] <= values[i-1] || fractions[i] <= fractions[i-1]) {
			panic("dist: NewEmpirical breakpoints must be strictly ascending")
		}
	}
	if math.Abs(fractions[len(fractions)-1]-1) > 1e-9 {
		panic("dist: NewEmpirical fractions must end at 1")
	}
	v := make([]float64, len(values))
	f := make([]float64, len(fractions))
	copy(v, values)
	copy(f, fractions)
	return &Empirical{values: v, cum: f}
}

// Draw returns a sample. Within a segment the value is interpolated
// uniformly in log-space, which keeps small-value segments dense the way
// the paper's log-scale figures are.
func (e *Empirical) Draw(s *Source) float64 {
	u := s.Float64()
	i := sort.SearchFloat64s(e.cum, u)
	if i >= len(e.cum) {
		i = len(e.cum) - 1
	}
	hiV := e.values[i]
	hiF := e.cum[i]
	loV := hiV / 2 // implicit lower edge for the first segment
	loF := 0.0
	if i > 0 {
		loV = e.values[i-1]
		loF = e.cum[i-1]
	}
	if hiF == loF {
		return hiV
	}
	t := (u - loF) / (hiF - loF)
	return loV * math.Exp(t*math.Log(hiV/loV))
}
