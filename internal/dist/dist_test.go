package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSourceDeterminism(t *testing.T) {
	a := NewSource(42)
	b := NewSource(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	a := NewSource(1)
	fork1 := a.Fork()
	// Re-create and fork again: the fork must be reproducible.
	b := NewSource(1)
	fork2 := b.Fork()
	for i := 0; i < 10; i++ {
		if fork1.Float64() != fork2.Float64() {
			t.Fatalf("forks from same seed diverged at draw %d", i)
		}
	}
}

func TestBoolEdges(t *testing.T) {
	s := NewSource(1)
	for i := 0; i < 50; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if s.Bool(-0.5) {
			t.Fatal("Bool(negative) returned true")
		}
		if !s.Bool(1.5) {
			t.Fatal("Bool(>1) returned false")
		}
	}
}

func TestExpMean(t *testing.T) {
	s := NewSource(7)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exp(100)
	}
	mean := sum / n
	if math.Abs(mean-100) > 2 {
		t.Errorf("Exp(100) sample mean = %v, want ~100", mean)
	}
	if s.Exp(0) != 0 || s.Exp(-5) != 0 {
		t.Errorf("Exp of non-positive mean should be 0")
	}
}

func TestLogNormalMedian(t *testing.T) {
	s := NewSource(9)
	const n = 100001
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = s.LogNormal(1000, 1.5)
	}
	// The median of samples should be near the parameter.
	count := 0
	for _, x := range xs {
		if x <= 1000 {
			count++
		}
	}
	frac := float64(count) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("fraction below median = %v, want ~0.5", frac)
	}
	if s.LogNormal(0, 1) != 0 {
		t.Errorf("LogNormal with non-positive median should be 0")
	}
}

func TestParetoProperties(t *testing.T) {
	s := NewSource(11)
	for i := 0; i < 10000; i++ {
		x := s.Pareto(100, 1.2)
		if x < 100 {
			t.Fatalf("Pareto sample %v below min", x)
		}
	}
	if got := s.Pareto(100, 0); got != 100 {
		t.Errorf("Pareto with alpha<=0 = %v, want min", got)
	}
}

func TestZipfSkew(t *testing.T) {
	s := NewSource(13)
	z := NewZipf(s, 1.5, 100)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		idx := z.Draw()
		if idx < 0 || idx >= 100 {
			t.Fatalf("Zipf draw %d out of range", idx)
		}
		counts[idx]++
	}
	if counts[0] <= counts[50]*5 {
		t.Errorf("Zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	if z.N() != 100 {
		t.Errorf("N = %d, want 100", z.N())
	}
}

func TestZipfPanics(t *testing.T) {
	s := NewSource(1)
	for name, f := range map[string]func(){
		"zeroN":   func() { NewZipf(s, 2, 0) },
		"badSkew": func() { NewZipf(s, 1, 10) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			f()
		})
	}
}

func TestWeightedDraw(t *testing.T) {
	s := NewSource(17)
	w := NewWeighted([]float64{1, 0, 3})
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[w.Draw(s)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
}

func TestWeightedPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":    func() { NewWeighted(nil) },
		"negative": func() { NewWeighted([]float64{1, -1}) },
		"allZero":  func() { NewWeighted([]float64{0, 0}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			f()
		})
	}
}

func TestEmpiricalMatchesBreakpoints(t *testing.T) {
	s := NewSource(19)
	// 50% of values <= 1000, 90% <= 10000, 100% <= 1e6.
	e := NewEmpirical([]float64{1000, 10000, 1e6}, []float64{0.5, 0.9, 1.0})
	const n = 200000
	var below1k, below10k int
	for i := 0; i < n; i++ {
		x := e.Draw(s)
		if x <= 0 {
			t.Fatalf("non-positive sample %v", x)
		}
		if x > 1e6+1e-6 {
			t.Fatalf("sample %v above last breakpoint", x)
		}
		if x <= 1000 {
			below1k++
		}
		if x <= 10000 {
			below10k++
		}
	}
	if f := float64(below1k) / n; math.Abs(f-0.5) > 0.01 {
		t.Errorf("fraction <= 1000 = %v, want ~0.5", f)
	}
	if f := float64(below10k) / n; math.Abs(f-0.9) > 0.01 {
		t.Errorf("fraction <= 10000 = %v, want ~0.9", f)
	}
}

func TestEmpiricalPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":       func() { NewEmpirical(nil, nil) },
		"mismatch":    func() { NewEmpirical([]float64{1}, []float64{0.5, 1}) },
		"notAscValue": func() { NewEmpirical([]float64{2, 1}, []float64{0.5, 1}) },
		"notAscFrac":  func() { NewEmpirical([]float64{1, 2}, []float64{0.9, 0.5}) },
		"noEndAtOne":  func() { NewEmpirical([]float64{1, 2}, []float64{0.5, 0.9}) },
		"nonPositive": func() { NewEmpirical([]float64{0, 2}, []float64{0.5, 1}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			f()
		})
	}
}

// Property: Weighted.Draw always returns an index with positive weight.
func TestWeightedNeverPicksZero(t *testing.T) {
	f := func(seed int64, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		anyPositive := false
		for i, r := range raw {
			weights[i] = float64(r)
			if r > 0 {
				anyPositive = true
			}
		}
		if !anyPositive {
			return true
		}
		w := NewWeighted(weights)
		s := NewSource(seed)
		for i := 0; i < 100; i++ {
			idx := w.Draw(s)
			if idx < 0 || idx >= len(weights) || weights[idx] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
