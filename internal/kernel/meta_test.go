package kernel

import (
	"testing"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/vfs"
)

// recordingMeta counts hook invocations.
type recordingMeta struct {
	resolves     []string
	inodeUpdates int
	dirUpdates   []string
}

func (m *recordingMeta) Resolve(path string)  { m.resolves = append(m.resolves, path) }
func (m *recordingMeta) InodeUpdate()         { m.inodeUpdates++ }
func (m *recordingMeta) DirUpdate(dir string) { m.dirUpdates = append(m.dirUpdates, dir) }

func metaHarness() (*Kernel, *recordingMeta) {
	m := &recordingMeta{}
	k := New(vfs.New(), func() trace.Time { return 0 }, nil)
	k.SetMeta(m)
	k.FS().MkdirAll("/u/home")
	return k, m
}

func TestMetaResolveOnOpenAndExec(t *testing.T) {
	k, m := metaHarness()
	p := k.NewProc(1)
	fd, err := p.Create("/u/home/f", trace.WriteOnly)
	if err != nil {
		t.Fatal(err)
	}
	p.Close(fd)
	fd, _ = p.Open("/u/home/f", trace.ReadOnly)
	p.Close(fd)
	p.Exec("/u/home/f")
	want := []string{"/u/home/f", "/u/home/f", "/u/home/f"}
	if len(m.resolves) != 3 {
		t.Fatalf("resolves = %v, want %v", m.resolves, want)
	}
}

func TestMetaInodeUpdates(t *testing.T) {
	k, m := metaHarness()
	p := k.NewProc(1)

	// Create: one inode update (the new file) at create time.
	fd, _ := p.Create("/u/home/f", trace.WriteOnly)
	if m.inodeUpdates != 1 {
		t.Fatalf("after create: %d", m.inodeUpdates)
	}
	// Close of a written file: one more.
	p.Write(fd, 100)
	p.Close(fd)
	if m.inodeUpdates != 2 {
		t.Fatalf("after written close: %d", m.inodeUpdates)
	}
	// Close of a read-only fd: none.
	fd, _ = p.Open("/u/home/f", trace.ReadOnly)
	p.Read(fd, 10)
	p.Close(fd)
	if m.inodeUpdates != 2 {
		t.Fatalf("read-only close updated inode: %d", m.inodeUpdates)
	}
	// Truncate and unlink: one each.
	p.Truncate("/u/home/f", 10)
	p.Unlink("/u/home/f")
	if m.inodeUpdates != 4 {
		t.Fatalf("after truncate+unlink: %d", m.inodeUpdates)
	}
}

func TestMetaDirUpdates(t *testing.T) {
	k, m := metaHarness()
	p := k.NewProc(1)
	fd, _ := p.Create("/u/home/f", trace.WriteOnly)
	p.Close(fd)
	if len(m.dirUpdates) != 1 || m.dirUpdates[0] != "/u/home" {
		t.Fatalf("dirUpdates after create = %v", m.dirUpdates)
	}
	// Re-creating the same file truncates: no new directory entry.
	fd, _ = p.Create("/u/home/f", trace.WriteOnly)
	p.Close(fd)
	if len(m.dirUpdates) != 1 {
		t.Fatalf("re-create modified directory: %v", m.dirUpdates)
	}
	p.Unlink("/u/home/f")
	if len(m.dirUpdates) != 2 || m.dirUpdates[1] != "/u/home" {
		t.Fatalf("dirUpdates after unlink = %v", m.dirUpdates)
	}
	// Root-level files report "/".
	fd, _ = p.Create("/rootfile", trace.WriteOnly)
	p.Close(fd)
	if m.dirUpdates[len(m.dirUpdates)-1] != "/" {
		t.Fatalf("root dir update = %v", m.dirUpdates)
	}
}

func TestMetaNilHookSafe(t *testing.T) {
	k := New(vfs.New(), func() trace.Time { return 0 }, nil)
	p := k.NewProc(1)
	fd, err := p.Create("/f", trace.WriteOnly)
	if err != nil {
		t.Fatal(err)
	}
	p.Write(fd, 10)
	p.Close(fd)
	p.Unlink("/f")
	// Removing a hook mid-flight is also safe.
	k.SetMeta(&recordingMeta{})
	k.SetMeta(nil)
	fd, _ = p.Create("/g", trace.WriteOnly)
	p.Close(fd)
}

func TestParentDir(t *testing.T) {
	cases := map[string]string{
		"/a/b/c": "/a/b",
		"/a":     "/",
		"/":      "/",
		"":       "/",
	}
	for in, want := range cases {
		if got := parentDir(in); got != want {
			t.Errorf("parentDir(%q) = %q, want %q", in, got, want)
		}
	}
}
