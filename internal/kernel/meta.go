package kernel

// MetaHook observes the kernel's metadata activity: pathname resolutions,
// i-node updates, and directory modifications. The 1985 tracer did not
// record these (paper §3.2, "Missing Data"), and the paper's conclusion
// flags them as possibly more than half of all disk block references. The
// namei package implements this interface to simulate the 4.2 BSD
// directory and i-node caches over the same workload that produced the
// data trace.
//
// A nil hook (the default) costs nothing.
type MetaHook interface {
	// Resolve is called once per pathname the kernel resolves (open,
	// create, unlink, truncate, execve).
	Resolve(path string)
	// InodeUpdate is called when an operation dirties an i-node: file
	// creation, truncation, unlink, and the close of a descriptor that
	// was written.
	InodeUpdate()
	// DirUpdate is called when a directory's contents change (an entry
	// added by create or removed by unlink); dir is the directory path.
	DirUpdate(dir string)
}

// SetMeta installs a metadata hook; pass nil to remove it.
func (k *Kernel) SetMeta(m MetaHook) { k.meta = m }

func (k *Kernel) metaResolve(path string) {
	if k.meta != nil {
		k.meta.Resolve(path)
	}
}

func (k *Kernel) metaInodeUpdate() {
	if k.meta != nil {
		k.meta.InodeUpdate()
	}
}

func (k *Kernel) metaDirUpdate(path string) {
	if k.meta != nil {
		k.meta.DirUpdate(parentDir(path))
	}
}

// parentDir returns the directory part of an absolute path ("/a/b" ->
// "/a", "/a" -> "/").
func parentDir(path string) string {
	for i := len(path) - 1; i > 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "/"
}
