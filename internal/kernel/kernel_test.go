package kernel

import (
	"bytes"
	"errors"
	"testing"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/vfs"
)

// harness bundles a kernel with a captured event log and a settable clock.
type harness struct {
	k      *Kernel
	now    trace.Time
	events []trace.Event
}

func newHarness() *harness {
	h := &harness{}
	h.k = New(vfs.New(), func() trace.Time { return h.now },
		func(e trace.Event) { h.events = append(h.events, e) })
	return h
}

func (h *harness) lastEvent(t *testing.T) trace.Event {
	t.Helper()
	if len(h.events) == 0 {
		t.Fatal("no events recorded")
	}
	return h.events[len(h.events)-1]
}

func TestCreateWriteCloseTrace(t *testing.T) {
	h := newHarness()
	p := h.k.NewProc(7)
	h.now = 123 * trace.Millisecond
	fd, err := p.Create("/f", trace.WriteOnly)
	if err != nil {
		t.Fatal(err)
	}
	ev := h.lastEvent(t)
	if ev.Kind != trace.KindCreate || ev.User != 7 || ev.Size != 0 || ev.Mode != trace.WriteOnly {
		t.Errorf("create event wrong: %+v", ev)
	}
	if ev.Time != 120 { // quantized to 10 ms
		t.Errorf("event time = %v, want 120 (quantized)", ev.Time)
	}
	if n, err := p.Write(fd, 5000); err != nil || n != 5000 {
		t.Fatalf("Write: %d %v", n, err)
	}
	h.now = 456 * trace.Millisecond
	if err := p.Close(fd); err != nil {
		t.Fatal(err)
	}
	ev = h.lastEvent(t)
	if ev.Kind != trace.KindClose || ev.NewPos != 5000 || ev.Time != 450 {
		t.Errorf("close event wrong: %+v", ev)
	}
	// Only create and close were traced; the write was not.
	if len(h.events) != 2 {
		t.Errorf("%d events traced, want 2", len(h.events))
	}
}

func TestOpenRecordsSizeAtOpen(t *testing.T) {
	h := newHarness()
	p := h.k.NewProc(1)
	fd, _ := p.Create("/f", trace.WriteOnly)
	p.Write(fd, 4096)
	p.Close(fd)
	fd, err := p.Open("/f", trace.ReadOnly)
	if err != nil {
		t.Fatal(err)
	}
	ev := h.lastEvent(t)
	if ev.Kind != trace.KindOpen || ev.Size != 4096 || ev.Mode != trace.ReadOnly {
		t.Errorf("open event wrong: %+v", ev)
	}
	if n, _ := p.Read(fd, 10000); n != 4096 {
		t.Errorf("Read past EOF returned %d, want 4096", n)
	}
	p.Close(fd)
	if h.events[len(h.events)-1].NewPos != 4096 {
		t.Errorf("final position wrong")
	}
}

func TestImplicitSequentialPosition(t *testing.T) {
	h := newHarness()
	p := h.k.NewProc(1)
	fd, _ := p.Create("/f", trace.ReadWrite)
	p.Write(fd, 100)
	p.Write(fd, 200)
	if _, err := p.Seek(fd, 50); err != nil {
		t.Fatal(err)
	}
	ev := h.lastEvent(t)
	if ev.Kind != trace.KindSeek || ev.OldPos != 300 || ev.NewPos != 50 {
		t.Errorf("seek event wrong: %+v", ev)
	}
	if n, _ := p.Read(fd, 100); n != 100 {
		t.Errorf("read after seek = %d, want 100", n)
	}
	p.Close(fd)
	if ev := h.lastEvent(t); ev.NewPos != 150 {
		t.Errorf("close pos = %d, want 150", ev.NewPos)
	}
}

func TestSeekEnd(t *testing.T) {
	h := newHarness()
	p := h.k.NewProc(1)
	fd, _ := p.Create("/mbox", trace.ReadWrite)
	p.Write(fd, 1000)
	p.Close(fd)
	fd, _ = p.Open("/mbox", trace.WriteOnly)
	pos, err := p.SeekEnd(fd)
	if err != nil || pos != 1000 {
		t.Fatalf("SeekEnd = %d %v, want 1000", pos, err)
	}
	p.Write(fd, 50)
	p.Close(fd)
	n, _ := h.k.FS().Lookup("/mbox")
	if n.Size() != 1050 {
		t.Errorf("mailbox size = %d, want 1050", n.Size())
	}
}

func TestModeEnforcement(t *testing.T) {
	h := newHarness()
	p := h.k.NewProc(1)
	fd, _ := p.Create("/f", trace.WriteOnly)
	if _, err := p.Read(fd, 10); !errors.Is(err, ErrAccess) {
		t.Errorf("read on write-only = %v, want ErrAccess", err)
	}
	p.Close(fd)
	fd, _ = p.Open("/f", trace.ReadOnly)
	if _, err := p.Write(fd, 10); !errors.Is(err, ErrAccess) {
		t.Errorf("write on read-only = %v, want ErrAccess", err)
	}
}

func TestBadFD(t *testing.T) {
	h := newHarness()
	p := h.k.NewProc(1)
	if _, err := p.Read(42, 1); !errors.Is(err, ErrBadFD) {
		t.Errorf("Read bad fd = %v", err)
	}
	if _, err := p.Write(42, 1); !errors.Is(err, ErrBadFD) {
		t.Errorf("Write bad fd = %v", err)
	}
	if _, err := p.Seek(42, 0); !errors.Is(err, ErrBadFD) {
		t.Errorf("Seek bad fd = %v", err)
	}
	if err := p.Close(42); !errors.Is(err, ErrBadFD) {
		t.Errorf("Close bad fd = %v", err)
	}
	// Double close.
	fd, _ := p.Create("/f", trace.WriteOnly)
	p.Close(fd)
	if err := p.Close(fd); !errors.Is(err, ErrBadFD) {
		t.Errorf("double Close = %v", err)
	}
}

func TestNegativeCountsAndSeeks(t *testing.T) {
	h := newHarness()
	p := h.k.NewProc(1)
	fd, _ := p.Create("/f", trace.ReadWrite)
	if _, err := p.Read(fd, -1); err == nil {
		t.Errorf("negative read accepted")
	}
	if _, err := p.Write(fd, -1); err == nil {
		t.Errorf("negative write accepted")
	}
	if _, err := p.Seek(fd, -1); err == nil {
		t.Errorf("negative seek accepted")
	}
}

func TestUnlinkWhileOpen(t *testing.T) {
	h := newHarness()
	p := h.k.NewProc(1)
	fd, _ := p.Create("/tmp1", trace.WriteOnly)
	p.Write(fd, 100)
	if err := p.Unlink("/tmp1"); err != nil {
		t.Fatal(err)
	}
	ev := h.lastEvent(t)
	if ev.Kind != trace.KindUnlink {
		t.Errorf("unlink event wrong: %+v", ev)
	}
	// Writing through the surviving descriptor still works.
	if _, err := p.Write(fd, 100); err != nil {
		t.Errorf("write after unlink: %v", err)
	}
	p.Close(fd)
}

func TestTruncateEvent(t *testing.T) {
	h := newHarness()
	p := h.k.NewProc(1)
	fd, _ := p.Create("/f", trace.WriteOnly)
	p.Write(fd, 10000)
	p.Close(fd)
	if err := p.Truncate("/f", 100); err != nil {
		t.Fatal(err)
	}
	ev := h.lastEvent(t)
	if ev.Kind != trace.KindTruncate || ev.Size != 100 {
		t.Errorf("truncate event wrong: %+v", ev)
	}
	n, _ := h.k.FS().Lookup("/f")
	if n.Size() != 100 {
		t.Errorf("size = %d, want 100", n.Size())
	}
}

func TestExecEvent(t *testing.T) {
	h := newHarness()
	p := h.k.NewProc(3)
	if _, err := h.k.FS().Mkdir("/bin"); err != nil {
		t.Fatal(err)
	}
	fd, _ := p.Create("/bin/cc", trace.WriteOnly)
	p.Write(fd, 200000)
	p.Close(fd)
	if err := p.Exec("/bin/cc"); err != nil {
		t.Fatal(err)
	}
	ev := h.lastEvent(t)
	if ev.Kind != trace.KindExec || ev.Size != 200000 || ev.User != 3 {
		t.Errorf("exec event wrong: %+v", ev)
	}
	if err := p.Exec("/missing"); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("exec missing = %v", err)
	}
}

func TestOpenIDsUniqueAcrossProcs(t *testing.T) {
	h := newHarness()
	p1 := h.k.NewProc(1)
	p2 := h.k.NewProc(2)
	seen := map[trace.OpenID]bool{}
	for i := 0; i < 10; i++ {
		fd1, _ := p1.Create("/a", trace.WriteOnly)
		fd2, _ := p2.Create("/b", trace.WriteOnly)
		p1.Close(fd1)
		p2.Close(fd2)
	}
	for _, e := range h.events {
		if e.Kind == trace.KindCreate {
			if seen[e.OpenID] {
				t.Fatalf("open id %d reused", e.OpenID)
			}
			seen[e.OpenID] = true
		}
	}
}

func TestCloseAll(t *testing.T) {
	h := newHarness()
	p := h.k.NewProc(1)
	for i := 0; i < 5; i++ {
		if _, err := p.Create("/f", trace.WriteOnly); err != nil {
			t.Fatal(err)
		}
	}
	if p.OpenFDs() != 5 {
		t.Fatalf("OpenFDs = %d", p.OpenFDs())
	}
	p.CloseAll()
	if p.OpenFDs() != 0 {
		t.Errorf("OpenFDs after CloseAll = %d", p.OpenFDs())
	}
}

func TestDataVariants(t *testing.T) {
	h := newHarness()
	p := h.k.NewProc(1)
	fd, _ := p.Create("/f", trace.ReadWrite)
	msg := []byte("trace-driven analysis")
	if n, err := p.WriteData(fd, msg); err != nil || n != len(msg) {
		t.Fatalf("WriteData: %d %v", n, err)
	}
	if _, err := p.Seek(fd, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if n, err := p.ReadData(fd, buf); err != nil || n != len(msg) {
		t.Fatalf("ReadData: %d %v", n, err)
	}
	if !bytes.Equal(buf, msg) {
		t.Errorf("ReadData = %q", buf)
	}
	if h.k.Stats.BytesWritten != int64(len(msg)) || h.k.Stats.BytesRead != int64(len(msg)) {
		t.Errorf("byte stats wrong: %+v", h.k.Stats)
	}
}

func TestOpenDirFails(t *testing.T) {
	h := newHarness()
	h.k.FS().Mkdir("/d")
	p := h.k.NewProc(1)
	if _, err := p.Open("/d", trace.ReadOnly); !errors.Is(err, vfs.ErrIsDir) {
		t.Errorf("Open dir = %v", err)
	}
	if err := p.Exec("/d"); !errors.Is(err, ErrNotExec) {
		t.Errorf("Exec dir = %v", err)
	}
}

func TestNilSink(t *testing.T) {
	k := New(vfs.New(), func() trace.Time { return 0 }, nil)
	p := k.NewProc(1)
	fd, err := p.Create("/f", trace.WriteOnly)
	if err != nil {
		t.Fatal(err)
	}
	p.Write(fd, 10)
	if err := p.Close(fd); err != nil {
		t.Fatal(err)
	}
	if k.Stats.Creates != 1 || k.Stats.Closes != 1 {
		t.Errorf("stats not counted with nil sink: %+v", k.Stats)
	}
}

// The kernel's event stream must satisfy the trace validator: this is the
// integration point between the kernel and the analyses.
func TestKernelEmitsValidTrace(t *testing.T) {
	h := newHarness()
	p := h.k.NewProc(1)
	for i := 0; i < 50; i++ {
		h.now += 37 * trace.Millisecond
		fd, err := p.Create("/work", trace.WriteOnly)
		if err != nil {
			t.Fatal(err)
		}
		p.Write(fd, int64(1000*(i+1)))
		h.now += 13 * trace.Millisecond
		p.Close(fd)
		fd, err = p.Open("/work", trace.ReadOnly)
		if err != nil {
			t.Fatal(err)
		}
		p.Read(fd, 500)
		p.Seek(fd, 700)
		p.Read(fd, 100)
		h.now += 5 * trace.Millisecond
		p.Close(fd)
		if i%10 == 9 {
			p.Unlink("/work")
			fd, _ = p.Create("/work", trace.WriteOnly)
			p.Close(fd)
		}
	}
	errs, unclosed := trace.Validate(h.events)
	for _, err := range errs {
		t.Errorf("validator: %v", err)
	}
	if unclosed != 0 {
		t.Errorf("unclosed opens: %d", unclosed)
	}
}
