// Package kernel implements the system-call layer of the simulated
// timesharing system, including the trace instrumentation from the paper's
// Table II.
//
// The kernel sits between the workload (simulated users and programs) and
// the vfs package. It provides per-process file descriptor tables and the
// 4.2 BSD access-position semantics the trace format relies on: reads and
// writes are implicitly sequential, and only an explicit seek changes the
// access position. The tracer hooks record exactly what the 1985
// instrumentation recorded — open/create, close, seek, unlink, truncate and
// execve events with positions and sizes — and nothing else. In particular,
// Read and Write generate no trace events; the analyses must deduce
// transfers from positions, the same inference problem the paper solved.
//
// Trace timestamps are quantized to 10 ms, the accuracy the paper quotes
// for its tracer.
package kernel

import (
	"errors"
	"fmt"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/vfs"
)

// TimeQuantum is the tracer's timestamp granularity (paper Table II:
// "Time is accurate to approximately 10 milliseconds").
const TimeQuantum = 10 * trace.Millisecond

// Errors returned by system calls, in addition to the vfs errors which
// pass through unwrapped.
var (
	ErrBadFD   = errors.New("kernel: bad file descriptor")
	ErrAccess  = errors.New("kernel: operation not permitted by open mode")
	ErrNotExec = errors.New("kernel: not an executable file")
)

// Clock supplies the current virtual time; in the simulator it is
// sim.Engine.Now.
type Clock func() trace.Time

// Sink receives trace events as they are generated. A nil sink disables
// tracing (the kernel still runs, as on a machine without the trace
// package installed).
type Sink func(trace.Event)

// Stats counts kernel activity that the tracer does not record, used by
// tests and by the report tooling to sanity-check workloads.
type Stats struct {
	Opens        int64
	Creates      int64
	Closes       int64
	Seeks        int64
	Unlinks      int64
	Truncates    int64
	Execs        int64
	BytesRead    int64
	BytesWritten int64
}

// Kernel is the simulated operating system instance: one per traced
// machine.
type Kernel struct {
	fs    *vfs.FS
	clock Clock
	sink  Sink

	nextOpenID trace.OpenID
	nextPID    int
	meta       MetaHook
	Stats      Stats
}

// New creates a kernel over the given file system. clock must be non-nil;
// sink may be nil to disable tracing.
func New(fs *vfs.FS, clock Clock, sink Sink) *Kernel {
	if fs == nil || clock == nil {
		panic("kernel: New needs a file system and a clock")
	}
	return &Kernel{fs: fs, clock: clock, sink: sink, nextOpenID: 1, nextPID: 1}
}

// FS returns the underlying file system, for setup code that populates
// the namespace before the workload starts.
func (k *Kernel) FS() *vfs.FS { return k.fs }

// now returns the current time quantized to the tracer's granularity.
func (k *Kernel) now() trace.Time {
	t := k.clock()
	return t - t%TimeQuantum
}

func (k *Kernel) record(e trace.Event) {
	if k.sink != nil {
		k.sink(e)
	}
}

// Proc is a simulated process: a user identity plus a file descriptor
// table. Processes are cheap; workloads create one per simulated program
// run. Descriptors are dense small integers, so the table is a slice
// indexed by fd (nil = closed) rather than a map — processes are created
// at program-run rates and a map would cost an allocation each.
type Proc struct {
	k    *Kernel
	pid  int
	user trace.UserID
	fds  []*OpenFile
	open int
}

// NewProc creates a process owned by the given user.
func (k *Kernel) NewProc(user trace.UserID) *Proc {
	p := &Proc{k: k, pid: k.nextPID, user: user}
	k.nextPID++
	return p
}

// User returns the process's owning user.
func (p *Proc) User() trace.UserID { return p.user }

// OpenFile is one entry in the system open-file table: the object an open
// system call creates and a file descriptor names. It carries the access
// position that makes UNIX I/O implicitly sequential.
type OpenFile struct {
	openID  trace.OpenID
	inode   *vfs.Inode
	mode    trace.Mode
	pos     int64
	written bool
	closed  bool
}

// OpenID returns the unique identifier the tracer assigned to this open.
func (f *OpenFile) OpenID() trace.OpenID { return f.openID }

// Pos returns the current access position.
func (f *OpenFile) Pos() int64 { return f.pos }

// Inode returns the open file's inode.
func (f *OpenFile) Inode() *vfs.Inode { return f.inode }

func (p *Proc) install(of *OpenFile) int {
	p.fds = append(p.fds, of)
	p.open++
	return len(p.fds) - 1
}

func (p *Proc) lookupFD(fd int) (*OpenFile, error) {
	if fd < 0 || fd >= len(p.fds) || p.fds[fd] == nil {
		return nil, fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	return p.fds[fd], nil
}

// Open opens an existing file for access in the given mode and returns a
// file descriptor. It emits an open trace event recording the file's size
// at open time.
func (p *Proc) Open(path string, mode trace.Mode) (int, error) {
	n, err := p.k.fs.Lookup(path)
	if err != nil {
		return -1, err
	}
	p.k.metaResolve(path)
	if n.IsDir() {
		return -1, fmt.Errorf("%w: %q", vfs.ErrIsDir, path)
	}
	of := &OpenFile{openID: p.k.nextOpenID, inode: n, mode: mode}
	p.k.nextOpenID++
	p.k.Stats.Opens++
	p.k.record(trace.Event{
		Time: p.k.now(), Kind: trace.KindOpen,
		OpenID: of.openID, File: trace.FileID(n.Ino()), User: p.user,
		Mode: mode, Size: n.Size(),
	})
	return p.install(of), nil
}

// Create opens a file with O_CREAT|O_TRUNC semantics: the file is created
// if missing and truncated to zero length if present. Either way the data
// is new, so the tracer logs a create event (size zero). This is the
// operation behind the paper's "new files: files that did not exist before
// or that were truncated to zero length after being opened".
func (p *Proc) Create(path string, mode trace.Mode) (int, error) {
	n, created, err := p.k.fs.Create(path)
	if err != nil {
		return -1, err
	}
	p.k.metaResolve(path)
	p.k.metaInodeUpdate()
	if created {
		p.k.metaDirUpdate(path)
	}
	of := &OpenFile{openID: p.k.nextOpenID, inode: n, mode: mode}
	p.k.nextOpenID++
	p.k.Stats.Creates++
	p.k.record(trace.Event{
		Time: p.k.now(), Kind: trace.KindCreate,
		OpenID: of.openID, File: trace.FileID(n.Ino()), User: p.user,
		Mode: mode, Size: 0,
	})
	return p.install(of), nil
}

// Close closes a file descriptor, emitting a close event with the final
// access position.
func (p *Proc) Close(fd int) error {
	of, err := p.lookupFD(fd)
	if err != nil {
		return err
	}
	p.fds[fd] = nil
	p.open--
	of.closed = true
	if of.written {
		p.k.metaInodeUpdate()
	}
	p.k.Stats.Closes++
	p.k.record(trace.Event{
		Time: p.k.now(), Kind: trace.KindClose,
		OpenID: of.openID, NewPos: of.pos,
	})
	return nil
}

// CloseAll closes every open descriptor of the process in fd order, as
// process exit does. It is how workloads guarantee no descriptors leak at
// the end of a program run.
func (p *Proc) CloseAll() {
	for fd, of := range p.fds {
		if of != nil {
			// Close never fails for a live fd; errors are impossible here.
			p.Close(fd)
		}
	}
}

// OpenFDs returns the number of open descriptors.
func (p *Proc) OpenFDs() int { return p.open }

// Read advances the access position by up to n bytes, stopping at end of
// file, and returns the number of bytes read. No trace event is generated;
// reading is implicitly sequential.
func (p *Proc) Read(fd int, n int64) (int64, error) {
	of, err := p.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	if !of.mode.CanRead() {
		return 0, fmt.Errorf("%w: read on %v fd", ErrAccess, of.mode)
	}
	if n < 0 {
		return 0, fmt.Errorf("%w: negative count", vfs.ErrInvalid)
	}
	avail := of.inode.Size() - of.pos
	if avail < 0 {
		avail = 0
	}
	if n > avail {
		n = avail
	}
	of.pos += n
	p.k.Stats.BytesRead += n
	return n, nil
}

// Write advances the access position by n bytes, extending the file if the
// write passes end of file. Content is not materialized (see ReadData and
// WriteData for the content-carrying variants). No trace event is
// generated.
func (p *Proc) Write(fd int, n int64) (int64, error) {
	of, err := p.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	if !of.mode.CanWrite() {
		return 0, fmt.Errorf("%w: write on %v fd", ErrAccess, of.mode)
	}
	if n < 0 {
		return 0, fmt.Errorf("%w: negative count", vfs.ErrInvalid)
	}
	of.pos += n
	if of.pos > of.inode.Size() {
		of.inode.SetSize(of.pos)
	}
	of.written = true
	p.k.Stats.BytesWritten += n
	return n, nil
}

// ReadData reads real bytes at the access position. It behaves like Read
// but fills b.
func (p *Proc) ReadData(fd int, b []byte) (int, error) {
	of, err := p.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	if !of.mode.CanRead() {
		return 0, fmt.Errorf("%w: read on %v fd", ErrAccess, of.mode)
	}
	n, err := of.inode.ReadAt(b, of.pos)
	of.pos += int64(n)
	p.k.Stats.BytesRead += int64(n)
	return n, err
}

// WriteData writes real bytes at the access position, extending the file
// as needed.
func (p *Proc) WriteData(fd int, b []byte) (int, error) {
	of, err := p.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	if !of.mode.CanWrite() {
		return 0, fmt.Errorf("%w: write on %v fd", ErrAccess, of.mode)
	}
	n, err := of.inode.WriteAt(b, of.pos)
	of.pos += int64(n)
	if n > 0 {
		of.written = true
	}
	p.k.Stats.BytesWritten += int64(n)
	return n, err
}

// Seek repositions the file offset to pos (absolute). It emits a seek
// event recording the previous and new positions — the information the
// analyzer needs to reconstruct transferred byte ranges.
func (p *Proc) Seek(fd int, pos int64) (int64, error) {
	of, err := p.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	if pos < 0 {
		return 0, fmt.Errorf("%w: negative seek position", vfs.ErrInvalid)
	}
	old := of.pos
	of.pos = pos
	p.k.Stats.Seeks++
	p.k.record(trace.Event{
		Time: p.k.now(), Kind: trace.KindSeek,
		OpenID: of.openID, OldPos: old, NewPos: pos,
	})
	return pos, nil
}

// SeekEnd repositions to end of file (the mailbox-append idiom) and
// returns the new position.
func (p *Proc) SeekEnd(fd int) (int64, error) {
	of, err := p.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	return p.Seek(fd, of.inode.Size())
}

// Unlink removes a file's directory entry and emits an unlink event. The
// inode survives while open descriptors reference it.
func (p *Proc) Unlink(path string) error {
	n, err := p.k.fs.Unlink(path)
	if err != nil {
		return err
	}
	p.k.metaResolve(path)
	p.k.metaInodeUpdate()
	p.k.metaDirUpdate(path)
	p.k.Stats.Unlinks++
	p.k.record(trace.Event{
		Time: p.k.now(), Kind: trace.KindUnlink, File: trace.FileID(n.Ino()),
	})
	return nil
}

// Truncate shortens (or extends with a hole) the file at path and emits a
// truncate event with the new length.
func (p *Proc) Truncate(path string, size int64) error {
	n, err := p.k.fs.Truncate(path, size)
	if err != nil {
		return err
	}
	p.k.metaResolve(path)
	p.k.metaInodeUpdate()
	p.k.Stats.Truncates++
	p.k.record(trace.Event{
		Time: p.k.now(), Kind: trace.KindTruncate,
		File: trace.FileID(n.Ino()), Size: size,
	})
	return nil
}

// Exec records the demand-loading of a program: an execve event with the
// program file's size. The paper logged these to estimate paging traffic
// (§3.2) and used them for the Figure 7 page-in experiment. The kernel
// does not model the program's address space; the event is the product.
func (p *Proc) Exec(path string) error {
	n, err := p.k.fs.Lookup(path)
	if err != nil {
		return err
	}
	if n.IsDir() {
		return fmt.Errorf("%w: %q", ErrNotExec, path)
	}
	p.k.metaResolve(path)
	p.k.Stats.Execs++
	p.k.record(trace.Event{
		Time: p.k.now(), Kind: trace.KindExec,
		File: trace.FileID(n.Ino()), User: p.user, Size: n.Size(),
	})
	return nil
}
