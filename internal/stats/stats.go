// Package stats provides the small statistical toolkit used throughout the
// trace analyses: running mean/standard-deviation accumulators (Welford's
// method), weighted histograms with linear or logarithmic bucketing,
// cumulative distribution functions, and fixed-width time-interval buckets.
//
// The paper reports almost all of its results either as a mean with a
// standard deviation (Table IV) or as a cumulative distribution weighted by
// count or by bytes (Figures 1-4), so those two shapes are the core of this
// package.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates a running mean and variance using Welford's online
// algorithm. The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations added.
func (w *Welford) N() int64 { return w.n }

// Mean returns the arithmetic mean of the observations, or 0 if none.
func (w *Welford) Mean() float64 { return w.mean }

// Min returns the smallest observation, or 0 if none.
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation, or 0 if none.
func (w *Welford) Max() float64 { return w.max }

// Variance returns the population variance, or 0 with fewer than two
// observations.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// String formats the accumulator as "mean (± stddev)", the notation used in
// the paper's Table IV.
func (w *Welford) String() string {
	return fmt.Sprintf("%.1f (± %.1f)", w.Mean(), w.StdDev())
}

// Point is one point of a cumulative distribution: Fraction (in [0,1]) of
// the total weight lies at values <= X.
type Point struct {
	X        float64
	Fraction float64
}

// CDF is a cumulative distribution function represented as a non-decreasing
// sequence of points sorted by X.
type CDF []Point

// FractionAtOrBelow returns the fraction of weight at values <= x,
// interpolating linearly between points. It returns 0 below the first point
// and 1 at or above the last.
func (c CDF) FractionAtOrBelow(x float64) float64 {
	if len(c) == 0 {
		return 0
	}
	i := sort.Search(len(c), func(i int) bool { return c[i].X >= x })
	if i == len(c) {
		return 1
	}
	if c[i].X == x {
		return c[i].Fraction
	}
	if i == 0 {
		// Interpolate from an implicit origin at (0, 0) when the first
		// bucket starts above zero; otherwise clamp.
		if c[0].X > 0 && x > 0 {
			return c[0].Fraction * x / c[0].X
		}
		return 0
	}
	x0, f0 := c[i-1].X, c[i-1].Fraction
	x1, f1 := c[i].X, c[i].Fraction
	if x1 == x0 {
		return f1
	}
	return f0 + (f1-f0)*(x-x0)/(x1-x0)
}

// Quantile returns the smallest X such that at least fraction p of the
// weight lies at or below X. p is clamped to [0,1].
func (c CDF) Quantile(p float64) float64 {
	if len(c) == 0 {
		return 0
	}
	if p <= 0 {
		return c[0].X
	}
	if p >= 1 {
		return c[len(c)-1].X
	}
	i := sort.Search(len(c), func(i int) bool { return c[i].Fraction >= p })
	if i == len(c) {
		return c[len(c)-1].X
	}
	return c[i].X
}

// Histogram is a weighted histogram over float64 values with explicit
// bucket upper bounds. Values beyond the last bound accumulate in an
// overflow bucket whose nominal X is the largest value seen.
type Histogram struct {
	bounds  []float64 // sorted ascending; bucket i holds (bounds[i-1], bounds[i]]
	weights []float64 // len(bounds)+1; last is overflow
	total   float64
	maxSeen float64
	anySeen bool
}

// NewHistogram creates a histogram with the given ascending bucket upper
// bounds. It panics if bounds is empty or not strictly ascending, because a
// histogram with no buckets is always a programming error in this codebase.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("stats: NewHistogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: NewHistogram bounds must be strictly ascending")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, weights: make([]float64, len(b)+1)}
}

// NewLinearHistogram creates a histogram with n buckets of the given width,
// covering (0, n*width], plus an overflow bucket.
func NewLinearHistogram(n int, width float64) *Histogram {
	if n <= 0 || width <= 0 {
		panic("stats: NewLinearHistogram needs positive n and width")
	}
	bounds := make([]float64, n)
	for i := range bounds {
		bounds[i] = width * float64(i+1)
	}
	return NewHistogram(bounds)
}

// NewLogHistogram creates a histogram whose bucket bounds grow geometrically
// from first by the given ratio for n buckets. The paper's figures span four
// to six decades (bytes from 1 to 10^7, times from 10 ms to hours), so
// log-spaced buckets are the default for CDFs.
func NewLogHistogram(first, ratio float64, n int) *Histogram {
	if n <= 0 || first <= 0 || ratio <= 1 {
		panic("stats: NewLogHistogram needs positive first, ratio > 1, n > 0")
	}
	bounds := make([]float64, n)
	x := first
	for i := range bounds {
		bounds[i] = x
		x *= ratio
	}
	return NewHistogram(bounds)
}

// Clone returns an independent copy of the histogram: adding to either
// copy leaves the other untouched. Bucket bounds are immutable after
// construction and are shared, not copied.
func (h *Histogram) Clone() *Histogram {
	return &Histogram{
		bounds:  h.bounds,
		weights: append([]float64(nil), h.weights...),
		total:   h.total,
		maxSeen: h.maxSeen,
		anySeen: h.anySeen,
	}
}

// Add records one observation of value x with the given weight. Weight is
// typically 1 (count-weighted CDFs) or a byte count (byte-weighted CDFs).
func (h *Histogram) Add(x, weight float64) {
	if weight == 0 {
		return
	}
	if !h.anySeen || x > h.maxSeen {
		h.maxSeen = x
		h.anySeen = true
	}
	i := sort.SearchFloat64s(h.bounds, x)
	// SearchFloat64s returns the first index with bounds[i] >= x, which is
	// exactly the bucket for (bounds[i-1], bounds[i]]; x beyond the last
	// bound lands in the overflow bucket at index len(bounds).
	h.weights[i] += weight
	h.total += weight
}

// Total returns the total weight added.
func (h *Histogram) Total() float64 { return h.total }

// Bucket returns the upper bound and accumulated weight of bucket i.
// Buckets are indexed 0..NumBuckets()-1; the final bucket is overflow and
// its bound is the maximum value observed.
func (h *Histogram) Bucket(i int) (bound, weight float64) {
	if i < len(h.bounds) {
		return h.bounds[i], h.weights[i]
	}
	return h.maxSeen, h.weights[len(h.bounds)]
}

// NumBuckets returns the number of buckets including overflow.
func (h *Histogram) NumBuckets() int { return len(h.bounds) + 1 }

// CDF returns the cumulative distribution of the added weight. Empty
// buckets are skipped so the result is compact.
func (h *Histogram) CDF() CDF {
	if h.total == 0 {
		return nil
	}
	var out CDF
	cum := 0.0
	for i := 0; i < h.NumBuckets(); i++ {
		bound, w := h.Bucket(i)
		if w == 0 {
			continue
		}
		cum += w
		out = append(out, Point{X: bound, Fraction: cum / h.total})
	}
	return out
}

// FractionAtOrBelow reports the fraction of total weight in buckets whose
// upper bound is <= x. With fine bucketing this approximates the true CDF.
func (h *Histogram) FractionAtOrBelow(x float64) float64 {
	if h.total == 0 {
		return 0
	}
	cum := 0.0
	for i := 0; i < h.NumBuckets(); i++ {
		bound, w := h.Bucket(i)
		if bound > x {
			break
		}
		cum += w
	}
	return cum / h.total
}
