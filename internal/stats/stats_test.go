package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.StdDev() != 0 {
		t.Fatalf("zero value not neutral: %+v", w)
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d, want 8", w.N())
	}
	if got, want := w.Mean(), 5.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if got, want := w.StdDev(), 2.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", w.Min(), w.Max())
	}
}

func TestWelfordSingleObservation(t *testing.T) {
	var w Welford
	w.Add(42)
	if w.Mean() != 42 || w.StdDev() != 0 || w.Min() != 42 || w.Max() != 42 {
		t.Errorf("single observation: mean=%v sd=%v min=%v max=%v", w.Mean(), w.StdDev(), w.Min(), w.Max())
	}
}

func TestWelfordNegativeValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{-3, -1, 1, 3} {
		w.Add(x)
	}
	if w.Mean() != 0 {
		t.Errorf("Mean = %v, want 0", w.Mean())
	}
	if w.Min() != -3 || w.Max() != 3 {
		t.Errorf("Min/Max = %v/%v", w.Min(), w.Max())
	}
}

// Property: Welford's mean and variance match the naive two-pass
// computation for arbitrary inputs.
func TestWelfordMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				return true // skip pathological inputs
			}
		}
		var w Welford
		sum := 0.0
		for _, x := range xs {
			w.Add(x)
			sum += x
		}
		if len(xs) == 0 {
			return w.N() == 0
		}
		mean := sum / float64(len(xs))
		if math.Abs(w.Mean()-mean) > 1e-6*(1+math.Abs(mean)) {
			return false
		}
		varSum := 0.0
		for _, x := range xs {
			varSum += (x - mean) * (x - mean)
		}
		naive := varSum / float64(len(xs))
		return math.Abs(w.Variance()-naive) <= 1e-6*(1+naive)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30})
	h.Add(5, 1)   // bucket 0 (<=10)
	h.Add(10, 1)  // bucket 0 (boundary is inclusive)
	h.Add(11, 1)  // bucket 1
	h.Add(30, 1)  // bucket 2
	h.Add(100, 1) // overflow
	wantWeights := []float64{2, 1, 1, 1}
	for i, want := range wantWeights {
		if _, w := h.Bucket(i); w != want {
			t.Errorf("bucket %d weight = %v, want %v", i, w, want)
		}
	}
	if b, _ := h.Bucket(3); b != 100 {
		t.Errorf("overflow bound = %v, want 100 (max seen)", b)
	}
	if h.Total() != 5 {
		t.Errorf("Total = %v, want 5", h.Total())
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewLinearHistogram(10, 1)
	for i := 1; i <= 10; i++ {
		h.Add(float64(i), 1)
	}
	cdf := h.CDF()
	if len(cdf) != 10 {
		t.Fatalf("CDF has %d points, want 10", len(cdf))
	}
	if got := cdf.FractionAtOrBelow(5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("FractionAtOrBelow(5) = %v, want 0.5", got)
	}
	if got := cdf.Quantile(0.5); got != 5 {
		t.Errorf("Quantile(0.5) = %v, want 5", got)
	}
	if got := cdf.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v, want first bound 1", got)
	}
	if got := cdf.Quantile(1); got != 10 {
		t.Errorf("Quantile(1) = %v, want 10", got)
	}
}

func TestHistogramWeighted(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Add(1, 3)
	h.Add(2, 1)
	if got := h.FractionAtOrBelow(1); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("FractionAtOrBelow(1) = %v, want 0.75", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewLinearHistogram(5, 1)
	if h.CDF() != nil {
		t.Errorf("empty histogram CDF should be nil")
	}
	if h.FractionAtOrBelow(100) != 0 {
		t.Errorf("empty histogram fraction should be 0")
	}
}

func TestHistogramZeroWeightIgnored(t *testing.T) {
	h := NewLinearHistogram(5, 1)
	h.Add(3, 0)
	if h.Total() != 0 {
		t.Errorf("zero-weight add should not change total")
	}
}

func TestNewHistogramPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":         func() { NewHistogram(nil) },
		"descending":    func() { NewHistogram([]float64{2, 1}) },
		"duplicate":     func() { NewHistogram([]float64{1, 1}) },
		"linearZeroN":   func() { NewLinearHistogram(0, 1) },
		"logBadRatio":   func() { NewLogHistogram(1, 1, 5) },
		"logZeroFirst":  func() { NewLogHistogram(0, 2, 5) },
		"linearNegWide": func() { NewLinearHistogram(5, -1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		})
	}
}

func TestLogHistogramBounds(t *testing.T) {
	h := NewLogHistogram(1, 2, 4) // bounds 1,2,4,8
	h.Add(3, 1)
	if _, w := h.Bucket(2); w != 1 {
		t.Errorf("value 3 should land in bucket with bound 4")
	}
	b, _ := h.Bucket(3)
	if b != 8 {
		t.Errorf("bucket 3 bound = %v, want 8", b)
	}
}

func TestCDFInterpolation(t *testing.T) {
	c := CDF{{X: 10, Fraction: 0.5}, {X: 20, Fraction: 1.0}}
	if got := c.FractionAtOrBelow(15); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("interpolated fraction = %v, want 0.75", got)
	}
	if got := c.FractionAtOrBelow(5); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("below-first interpolation from origin = %v, want 0.25", got)
	}
	if got := c.FractionAtOrBelow(25); got != 1 {
		t.Errorf("beyond-last = %v, want 1", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if c.FractionAtOrBelow(1) != 0 || c.Quantile(0.5) != 0 {
		t.Errorf("empty CDF should return zeros")
	}
}

// Property: a histogram CDF is non-decreasing in both X and Fraction and
// ends at fraction 1.
func TestHistogramCDFMonotonic(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewLogHistogram(1, 2, 20)
		count := int(n%50) + 1
		for i := 0; i < count; i++ {
			h.Add(rng.Float64()*2e6, rng.Float64()*100+0.01)
		}
		cdf := h.CDF()
		if len(cdf) == 0 {
			return false
		}
		if math.Abs(cdf[len(cdf)-1].Fraction-1) > 1e-9 {
			return false
		}
		return sort.SliceIsSorted(cdf, func(i, j int) bool { return cdf[i].X < cdf[j].X }) &&
			sort.SliceIsSorted(cdf, func(i, j int) bool { return cdf[i].Fraction < cdf[j].Fraction })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Quantile and FractionAtOrBelow are approximate inverses on
// bucket boundaries.
func TestQuantileFractionInverse(t *testing.T) {
	h := NewLinearHistogram(100, 1)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		h.Add(rng.Float64()*100, 1)
	}
	cdf := h.CDF()
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		x := cdf.Quantile(p)
		f := cdf.FractionAtOrBelow(x)
		if f < p-1e-9 {
			t.Errorf("FractionAtOrBelow(Quantile(%v)) = %v < %v", p, f, p)
		}
	}
}
