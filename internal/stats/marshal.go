package stats

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary state serialization for the accumulator types, used by the
// online-analysis checkpoint (analyzer.Stream.MarshalBinary and the
// fstraced daemon state file). Floating-point state round-trips through
// math.Float64bits, so a restored accumulator is bit-identical to the
// original: every downstream mean, standard deviation, and CDF renders
// byte-for-byte the same. Decoders validate lengths and never panic on
// corrupt input; they return an error instead.

// ErrCorruptState reports a state blob that does not decode.
var ErrCorruptState = errors.New("stats: corrupt accumulator state")

// AppendFloat appends the exact bit pattern of f.
func AppendFloat(buf []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
}

// DecodeFloat decodes a float appended by AppendFloat.
func DecodeFloat(buf []byte) (float64, []byte, error) {
	if len(buf) < 8 {
		return 0, nil, ErrCorruptState
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf)), buf[8:], nil
}

// AppendUvarint appends x in unsigned varint encoding.
func AppendUvarint(buf []byte, x uint64) []byte {
	return binary.AppendUvarint(buf, x)
}

// DecodeUvarint decodes a value appended by AppendUvarint.
func DecodeUvarint(buf []byte) (uint64, []byte, error) {
	x, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, ErrCorruptState
	}
	return x, buf[n:], nil
}

// AppendVarint appends x in signed varint encoding.
func AppendVarint(buf []byte, x int64) []byte {
	return binary.AppendVarint(buf, x)
}

// DecodeVarint decodes a value appended by AppendVarint.
func DecodeVarint(buf []byte) (int64, []byte, error) {
	x, n := binary.Varint(buf)
	if n <= 0 {
		return 0, nil, ErrCorruptState
	}
	return x, buf[n:], nil
}

// AppendState appends the accumulator's complete state.
func (w *Welford) AppendState(buf []byte) []byte {
	buf = AppendVarint(buf, w.n)
	buf = AppendFloat(buf, w.mean)
	buf = AppendFloat(buf, w.m2)
	buf = AppendFloat(buf, w.min)
	return AppendFloat(buf, w.max)
}

// DecodeState replaces the accumulator's state with one appended by
// AppendState and returns the remaining bytes.
func (w *Welford) DecodeState(buf []byte) ([]byte, error) {
	var err error
	if w.n, buf, err = DecodeVarint(buf); err != nil {
		return nil, err
	}
	if w.mean, buf, err = DecodeFloat(buf); err != nil {
		return nil, err
	}
	if w.m2, buf, err = DecodeFloat(buf); err != nil {
		return nil, err
	}
	if w.min, buf, err = DecodeFloat(buf); err != nil {
		return nil, err
	}
	if w.max, buf, err = DecodeFloat(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// AppendState appends the histogram's mutable state: bucket weights,
// total, and the observed maximum. Bucket bounds are construction-time
// constants and are not serialized; DecodeState requires a histogram
// constructed with the same bounds, and the weight count pins that.
func (h *Histogram) AppendState(buf []byte) []byte {
	buf = AppendUvarint(buf, uint64(len(h.weights)))
	for _, w := range h.weights {
		buf = AppendFloat(buf, w)
	}
	buf = AppendFloat(buf, h.total)
	buf = AppendFloat(buf, h.maxSeen)
	if h.anySeen {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// DecodeState replaces the histogram's weights with state appended by
// AppendState. The receiver must have the same bucket structure as the
// histogram that produced the state.
func (h *Histogram) DecodeState(buf []byte) ([]byte, error) {
	n, buf, err := DecodeUvarint(buf)
	if err != nil {
		return nil, err
	}
	if int(n) != len(h.weights) {
		return nil, fmt.Errorf("%w: %d weights for a %d-bucket histogram", ErrCorruptState, n, len(h.weights))
	}
	for i := range h.weights {
		if h.weights[i], buf, err = DecodeFloat(buf); err != nil {
			return nil, err
		}
	}
	if h.total, buf, err = DecodeFloat(buf); err != nil {
		return nil, err
	}
	if h.maxSeen, buf, err = DecodeFloat(buf); err != nil {
		return nil, err
	}
	if len(buf) < 1 {
		return nil, ErrCorruptState
	}
	h.anySeen = buf[0] != 0
	return buf[1:], nil
}
