package workload

import (
	"fmt"

	"bsdtrace/internal/dist"
	"bsdtrace/internal/kernel"
	"bsdtrace/internal/trace"
)

// This file implements the application behaviors the traced machines ran:
// compiles, editor sessions, document formatting, CAD tool runs, mail, and
// the incessant small administrative lookups. Each behavior is expressed
// as real system calls against the simulated kernel, scheduled across
// virtual time, so open durations, seek patterns, and lifetimes all emerge
// from the mechanics rather than being sampled directly.

// xferDur models how long a transfer of n bytes keeps a file open: a small
// fixed per-open latency plus time proportional to size. The rate
// is tuned so that small files close within tens of milliseconds (the
// paper: 75% of opens last under half a second) while megabyte files take
// around a second.
func (g *generator) xferDur(src *dist.Source, n int64) trace.Time {
	const bytesPerSec = 1 << 20 // a 1985 disk+CPU moves ~1 MB/s
	ms := 8 + float64(n)*1000/bytesPerSec + src.Exp(6)
	return trace.Time(ms) * trace.Millisecond
}

// size returns the current size of path, or -1 if it does not exist.
func (g *generator) size(path string) int64 {
	n, err := g.k.FS().Lookup(path)
	if err != nil {
		return -1
	}
	return n.Size()
}

// readWhole opens path read-only now and reads it sequentially to the end,
// closing after a size-proportional delay. It returns the action duration
// (0 if the file is missing).
//
// A fraction of readers hold the file open while they compute — the
// compiler keeps the source open for the whole compilation, a pager sits
// on the file while a human reads — which produces the paper's Figure 3
// tail: most opens last well under half a second but ~10% exceed ten
// seconds.
func (g *generator) readWhole(src *dist.Source, p *kernel.Proc, path string) trace.Time {
	fd, err := p.Open(path, trace.ReadOnly)
	if err != nil {
		return 0
	}
	sz := g.size(path)
	// Not every reader finishes the file: pagers are quit after the
	// first screen, file(1) looks only at the magic number, grep -l
	// stops at the first match. These abandoned sequential reads are a
	// large share of the paper's non-whole-file accesses.
	amount := int64(1) << 40 // to end of file
	if sz > 1024 && src.Bool(0.22) {
		amount = sz * int64(10+src.Intn(80)) / 100
	}
	dur := g.xferDur(src, minI64(amount, sz))
	switch {
	case src.Bool(0.08):
		dur += trace.Time(src.Exp(25_000)) * trace.Millisecond
	case src.Bool(0.25):
		dur += trace.Time(src.Exp(2_500)) * trace.Millisecond
	}
	g.eng.After(dur, func() {
		p.Read(fd, amount)
		p.Close(fd)
	})
	return dur
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// readPart opens path read-only and reads just the first n bytes.
func (g *generator) readPart(src *dist.Source, p *kernel.Proc, path string, n int64) trace.Time {
	fd, err := p.Open(path, trace.ReadOnly)
	if err != nil {
		return 0
	}
	dur := g.xferDur(src, n)
	g.eng.After(dur, func() {
		p.Read(fd, n)
		p.Close(fd)
	})
	return dur
}

// writeWhole creates path (truncating any previous contents — new data)
// and writes n bytes sequentially.
func (g *generator) writeWhole(src *dist.Source, p *kernel.Proc, path string, n int64) trace.Time {
	fd, err := p.Create(path, trace.WriteOnly)
	if err != nil {
		return 0
	}
	dur := g.xferDur(src, n)
	g.eng.After(dur, func() {
		p.Write(fd, n)
		p.Close(fd)
	})
	return dur
}

// appendFile opens path write-only, seeks to the end, and writes n bytes:
// the mailbox/log idiom the paper gives as the canonical sequential-but-
// not-whole-file access.
func (g *generator) appendFile(src *dist.Source, p *kernel.Proc, path string, n int64) trace.Time {
	// Appenders split between write-only opens and the read-write opens
	// the paper describes for mailbox appends (its canonical sequential
	// read-write access).
	mode := trace.WriteOnly
	if src.Bool(0.30) {
		mode = trace.ReadWrite
	}
	fd, err := p.Open(path, mode)
	if err != nil {
		return 0
	}
	d1 := trace.Time(2+src.Intn(10)) * trace.Millisecond
	d2 := g.xferDur(src, n)
	g.eng.After(d1, func() {
		p.SeekEnd(fd)
		p.Write(fd, n)
		g.eng.After(d2, func() { p.Close(fd) })
	})
	return d1 + d2
}

// adminLookup models the positioned accesses to the big administrative
// files: open, then a handful of (seek to a position, transfer a little)
// pairs, then close. Table V's non-sequential read-write accesses and the
// 18-26% seek fraction of Table III both come from this pattern. With
// probability pWrite each positioned transfer is a write-in-place
// (updating a table entry), making the open read-write.
func (g *generator) adminLookup(src *dist.Source, p *kernel.Proc, path string, seeks int, pWrite float64) trace.Time {
	mode := trace.ReadOnly
	writes := src.Bool(pWrite)
	if writes {
		mode = trace.ReadWrite
		if seeks < 2 {
			seeks = 2 + src.Intn(6)
		}
	}
	fd, err := p.Open(path, mode)
	if err != nil {
		return 0
	}
	fileSize := g.size(path)
	if fileSize < 4096 {
		seeks = 1
	}
	var total trace.Time
	var step func(remaining int)
	step = func(remaining int) {
		if remaining == 0 {
			p.Close(fd)
			return
		}
		// Seek to an entry and transfer a few hundred bytes. Lookups
		// concentrate heavily on a hot region — recent logins in the
		// log, popular hosts in the network table — with an occasional
		// cold probe; this is what keeps the paper's moderate-sized
		// caches effective on these megabyte-scale files.
		span := maxi64(fileSize-2048, 1)
		var off int64
		if src.Bool(0.85) {
			off = int64(src.Exp(float64(span) / 24))
			if off >= span {
				off = span - 1
			}
		} else {
			off = src.Int63n(span)
		}
		p.Seek(fd, off)
		n := int64(src.LogNormal(900, 1.8))
		if n < 64 {
			n = 64
		}
		if n > 64<<10 {
			n = 64 << 10
		}
		if writes && src.Bool(0.5) {
			p.Write(fd, n)
		} else {
			p.Read(fd, n)
		}
		d := trace.Time(3+src.Intn(25)) * trace.Millisecond
		if src.Bool(0.2) {
			d += trace.Time(src.Exp(800)) * trace.Millisecond
		}
		g.eng.After(d, func() { step(remaining - 1) })
	}
	d0 := trace.Time(2+src.Intn(8)) * trace.Millisecond
	g.eng.After(d0, func() { step(seeks) })
	total = d0 + trace.Time(seeks*16)*trace.Millisecond
	return total
}

// adminSeeks draws the number of positioned transfers for one
// administrative-file access. Most are a single reposition followed by one
// transfer (the paper's dominant non-whole-file shape: Table V counts
// those as sequential); a minority walk the file with several seeks.
func adminSeeks(src *dist.Source) int {
	if src.Bool(0.34) {
		return 2 + src.Intn(8)
	}
	return 1
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// compile models one edit-compile cycle's compiler run: the canonical
// source of the paper's seconds-scale temp file lifetimes. The compiler
// reads the source and a few popular headers, writes an assembler temp
// file, the assembler reads it back and writes the object file, and the
// temp file is deleted as soon as it has been translated (paper §5.3).
func (g *generator) compile(src *dist.Source, uid trace.UserID, seqno int64) trace.Time {
	sources := g.img.srcFiles[uid]
	if len(sources) == 0 {
		sources = g.img.decks[uid] // CAD users compile decks' support code
	}
	if len(sources) == 0 {
		return 0
	}
	p := g.k.NewProc(uid)
	srcPath := sources[src.Intn(len(sources))]
	srcSize := g.size(srcPath)
	if srcSize < 0 {
		return 0
	}
	p.Exec(g.img.cc)

	var elapsed trace.Time
	// The preprocessor reads the source and headers.
	elapsed += g.readWhole(src, p, srcPath)
	nHdr := 3 + src.Intn(7)
	for i := 0; i < nHdr; i++ {
		h := g.img.headers[g.img.headerPick.Draw()]
		elapsed += g.readWhole(src, p, h)
	}

	tmp := fmt.Sprintf("/tmp/ctm%d.%d.s", uid, seqno)
	asmSize := srcSize*3/2 + int64(src.Intn(2048))
	after := elapsed + trace.Time(20+src.Intn(100))*trace.Millisecond
	g.eng.After(after, func() {
		p2 := g.k.NewProc(uid)
		p2.Exec(g.img.cc) // ccom pass
		d := g.writeWhole(src, p2, tmp, asmSize)
		g.eng.After(d+trace.Time(10+src.Intn(40))*trace.Millisecond, func() {
			// The assembler reads the temp and writes the object.
			p3 := g.k.NewProc(uid)
			p3.Exec(g.img.as)
			d2 := g.readWhole(src, p3, tmp)
			obj := objPath(srcPath)
			d3 := g.writeWhole(src, p3, obj, srcSize*5/4+int64(src.Intn(2048)))
			dd := maxt(d2, d3) + trace.Time(5+src.Intn(20))*trace.Millisecond
			g.eng.After(dd, func() {
				// Temp deleted seconds after creation: a short lifetime.
				p3.Unlink(tmp)
			})
		})
	})
	return after + trace.Time(500)*trace.Millisecond
}

func maxt(a, b trace.Time) trace.Time {
	if a > b {
		return a
	}
	return b
}

// objPath derives the object file path from a source path.
func objPath(srcPath string) string {
	if len(srcPath) > 2 && srcPath[len(srcPath)-2:] == ".c" {
		return srcPath[:len(srcPath)-2] + ".o"
	}
	return srcPath + ".o"
}

// link models an occasional ld run: reads the user's object files and
// parts of the libraries, writes the executable.
func (g *generator) link(src *dist.Source, uid trace.UserID) trace.Time {
	p := g.k.NewProc(uid)
	p.Exec(g.img.ld)
	var elapsed trace.Time
	for _, s := range g.img.srcFiles[uid] {
		obj := objPath(s)
		if g.size(obj) >= 0 && src.Bool(0.7) {
			elapsed += g.readWhole(src, p, obj)
		}
	}
	// Archives are consulted by offset, not read whole.
	lib := g.img.libs[src.Intn(len(g.img.libs))]
	elapsed += g.adminLookup(src, p, lib, adminSeeks(src), 0)
	out := g.img.homes[uid] + "/a.out"
	elapsed += g.writeWhole(src, p, out, 30<<10+int64(src.Intn(60<<10)))
	return elapsed
}

// runProgram executes the user's program, which reads a data file and
// writes an output file that is examined and deleted shortly after — the
// paper's "circuit simulator generates output listings that are examined
// and then deleted" pattern in miniature.
func (g *generator) runProgram(src *dist.Source, uid trace.UserID, seqno int64) trace.Time {
	bin := g.img.homes[uid] + "/a.out"
	if g.size(bin) < 0 {
		bin = g.img.commands[g.img.cmdPick.Draw()]
	}
	p := g.k.NewProc(uid)
	p.Exec(bin)
	out := fmt.Sprintf("/tmp/out%d.%d", uid, seqno)
	dur := g.writeWhole(src, p, out, int64(src.LogNormal(5000, 1.1)))
	g.eng.After(dur+trace.Time(src.Exp(8000))*trace.Millisecond, func() {
		// Examine the output, then delete it within seconds to minutes.
		p2 := g.k.NewProc(uid)
		p2.Exec(g.img.commands[2]) // ls-class pager
		d := g.readWhole(src, p2, out)
		g.eng.After(d+trace.Time(src.Exp(4000))*trace.Millisecond, func() {
			p2.Unlink(out)
		})
	})
	return dur
}

// editSession models the interactive editor: it reads the file, keeps a
// temp file open for the whole session (the paper's example of the rare
// long-open file), and finally writes the file back and deletes the temp.
func (g *generator) editSession(src *dist.Source, uid trace.UserID, path string, seqno int64) trace.Time {
	if g.size(path) < 0 {
		return 0
	}
	p := g.k.NewProc(uid)
	p.Exec(g.img.editor)
	g.readWhole(src, p, g.img.homes[uid]+"/.exrc")
	g.readWhole(src, p, path)

	// vi-style backup: remove the stale backup and write a fresh copy of
	// the file being edited. Together with the compiler temps this keeps
	// the trace's unlink count near its create count, as in Table III.
	bak := path + "~"
	oldSize := g.size(path)
	if src.Bool(0.4) {
		g.eng.After(trace.Time(200+src.Intn(800))*trace.Millisecond, func() {
			if g.size(bak) >= 0 {
				p.Unlink(bak)
			}
			g.writeWhole(src, p, bak, oldSize)
		})
	}

	tmp := fmt.Sprintf("/tmp/Ex%d.%d", uid, seqno)
	tfd, err := p.Create(tmp, trace.WriteOnly)
	if err != nil {
		return 0
	}
	// Editing time: seconds to a few minutes, with periodic writes into
	// the open temp file.
	editFor := trace.Time(src.Exp(90_000)) * trace.Millisecond
	if editFor < 2*trace.Second {
		editFor = 2 * trace.Second
	}
	var autosave func()
	autosave = func() {
		if p.OpenFDs() == 0 {
			return
		}
		p.Write(tfd, int64(200+src.Intn(2000)))
		g.eng.After(trace.Time(10+src.Exp(20))*trace.Second, autosave)
	}
	g.eng.After(10*trace.Second, autosave)

	g.eng.After(editFor, func() {
		// Write the file back: a whole-file write with a slightly
		// changed size, overwriting the old data (a create).
		newSize := int64(float64(g.size(path)) * (0.85 + src.Float64()*0.4))
		if newSize < 200 {
			newSize = 200
		}
		d := g.writeWhole(src, p, path, newSize)
		g.eng.After(d, func() {
			p.Close(tfd)
			p.Unlink(tmp)
		})
	})
	return editFor
}

// formatDoc models nroff + the print spooler: read the document, write a
// spool file, print (read) it, and delete it.
func (g *generator) formatDoc(src *dist.Source, uid trace.UserID, seqno int64) trace.Time {
	docs := g.img.docFiles[uid]
	if len(docs) == 0 {
		return 0
	}
	doc := docs[src.Intn(len(docs))]
	sz := g.size(doc)
	if sz < 0 {
		return 0
	}
	p := g.k.NewProc(uid)
	p.Exec(g.img.nroff)
	d := g.readWhole(src, p, doc)
	spool := fmt.Sprintf("/tmp/spool%d.%d", uid, seqno)
	d += g.writeWhole(src, p, spool, sz)
	g.eng.After(d+trace.Time(2+src.Intn(10))*trace.Second, func() {
		// The printer daemon picks the job up, prints, and removes it.
		p2 := g.k.NewProc(0) // daemon user
		p2.Exec(g.img.lpr)
		d2 := g.readWhole(src, p2, spool)
		g.eng.After(d2+trace.Time(src.Exp(20_000))*trace.Millisecond, func() {
			p2.Unlink(spool)
		})
	})
	return d
}

// cadRun models a circuit simulation: read the deck whole, write a large
// listing, examine it, and delete it before the next run.
func (g *generator) cadRun(src *dist.Source, uid trace.UserID, seqno int64) trace.Time {
	decks := g.img.decks[uid]
	if len(decks) == 0 {
		return 0
	}
	deck := decks[src.Intn(len(decks))]
	sz := g.size(deck)
	if sz < 0 {
		return 0
	}
	p := g.k.NewProc(uid)
	p.Exec(g.img.spice)
	d := g.readWhole(src, p, deck)
	listing := fmt.Sprintf("/tmp/sim%d.%d.lst", uid, seqno)
	lsz := sz*3 + int64(src.Intn(100<<10))
	if lsz > 1500<<10 {
		lsz = 1500 << 10
	}
	runFor := trace.Time(5+src.Exp(20)) * trace.Second
	g.eng.After(d+runFor, func() {
		d2 := g.writeWhole(src, p, listing, lsz)
		g.eng.After(d2+trace.Time(2+src.Exp(15))*trace.Second, func() {
			p2 := g.k.NewProc(uid)
			p2.Exec(g.img.commands[2])
			d3 := g.readWhole(src, p2, listing)
			g.eng.After(d3+trace.Time(src.Exp(60_000))*trace.Millisecond, func() {
				p2.Unlink(listing)
			})
		})
	})
	return d + runFor
}

// mailCheck reads the mailbox. Usually the reader seeks to where it left
// off and reads just the new messages (a positioned sequential read);
// sometimes it reads the whole box; occasionally it saves-and-empties the
// mailbox, truncating it — the trace's main source of truncate events.
func (g *generator) mailCheck(src *dist.Source, uid trace.UserID) trace.Time {
	p := g.k.NewProc(uid)
	p.Exec(g.img.mailer)
	if src.Bool(0.6) {
		g.readWhole(src, p, g.img.homes[uid]+"/.mailrc")
	}
	mbox := g.img.mailbox[uid]
	sz := g.size(mbox)
	if sz < 0 {
		return 0
	}
	var dur trace.Time
	if sz > 4096 && src.Bool(0.55) {
		// Read only the tail: seek to a saved offset, read to the end.
		fd, err := p.Open(mbox, trace.ReadOnly)
		if err != nil {
			return 0
		}
		off := sz * int64(50+src.Intn(45)) / 100
		d1 := trace.Time(2+src.Intn(10)) * trace.Millisecond
		d2 := g.xferDur(src, sz-off)
		g.eng.After(d1, func() {
			p.Seek(fd, off)
			p.Read(fd, 1<<40)
			g.eng.After(d2, func() { p.Close(fd) })
		})
		dur = d1 + d2
	} else {
		dur = g.readWhole(src, p, mbox)
	}
	if src.Bool(0.15) {
		// Save messages elsewhere and empty the box.
		g.eng.After(dur+trace.Time(100+src.Intn(2000))*trace.Millisecond, func() {
			p.Truncate(mbox, 0)
		})
	}
	return dur
}

// rwhoCheck models the rwho/ruptime readers: open and read each of a
// handful of the small host status files. It is the counterweight to the
// status daemon's writes and a large population of small whole-file reads
// (paper Figure 2: most accessed files are short).
func (g *generator) rwhoCheck(src *dist.Source, uid trace.UserID) trace.Time {
	p := g.k.NewProc(uid)
	p.Exec(g.img.commands[18]) // who
	n := 4 + src.Intn(10)
	var step func(i int)
	var total trace.Time
	step = func(i int) {
		if i >= n {
			return
		}
		d := g.readWhole(src, p, g.img.status[(i*7)%len(g.img.status)])
		g.eng.After(d+trace.Time(1+src.Intn(6))*trace.Millisecond, func() { step(i + 1) })
	}
	step(0)
	total = trace.Time(n*15) * trace.Millisecond
	return total
}

// debugSession models dbx-style positioned reads of a large binary: open
// the executable, seek around, and pull in symbol tables and code pages —
// big non-sequential read-only transfers (the paper's Table V shows a
// third of all bytes moving non-sequentially).
func (g *generator) debugSession(src *dist.Source, uid trace.UserID) trace.Time {
	bin := g.img.homes[uid] + "/a.out"
	if g.size(bin) < 0 {
		bin = g.img.commands[g.img.cmdPick.Draw()]
	}
	p := g.k.NewProc(uid)
	p.Exec("/bin/dbx")
	fd, err := p.Open(bin, trace.ReadOnly)
	if err != nil {
		return 0
	}
	sz := g.size(bin)
	n := 2 + src.Intn(4)
	var step func(i int)
	step = func(i int) {
		if i >= n {
			p.Close(fd)
			return
		}
		off := src.Int63n(maxi64(sz/4, 1))
		p.Seek(fd, off)
		chunk := int64(8<<10 + src.Intn(16<<10))
		p.Read(fd, chunk)
		g.eng.After(trace.Time(30+src.Intn(400))*trace.Millisecond, func() { step(i + 1) })
	}
	d0 := trace.Time(5+src.Intn(20)) * trace.Millisecond
	g.eng.After(d0, func() { step(0) })
	return d0 + trace.Time(n*200)*trace.Millisecond
}

// adminScan models accounting reports: a large positioned sequential read
// out of the login log (seek to yesterday's records, read tens to hundreds
// of kilobytes).
func (g *generator) adminScan(src *dist.Source, uid trace.UserID) trace.Time {
	path := g.img.loginLog
	sz := g.size(path)
	if sz < 65536 {
		return 0
	}
	p := g.k.NewProc(uid)
	p.Exec(g.img.commands[17]) // ps-class reporting tool
	fd, err := p.Open(path, trace.ReadOnly)
	if err != nil {
		return 0
	}
	off := src.Int63n(sz / 2)
	amount := 10<<10 + src.Int63n(30<<10)
	d1 := trace.Time(2+src.Intn(10)) * trace.Millisecond
	d2 := g.xferDur(src, amount)
	g.eng.After(d1, func() {
		p.Seek(fd, off)
		p.Read(fd, amount)
		g.eng.After(d2, func() { p.Close(fd) })
	})
	return d1 + d2
}

func (g *generator) mailDeliver(src *dist.Source, from trace.UserID, to trace.UserID) trace.Time {
	p := g.k.NewProc(from)
	return g.appendFile(src, p, g.img.mailbox[to], int64(1500+src.Intn(8000)))
}

// shellCommand models the constant background of small program runs: exec
// a popular command, read the user's startup file or a small file, and
// often consult an administrative table (who, finger, rwho all walk
// /etc/wtmp-style files by offset).
func (g *generator) shellCommand(src *dist.Source, uid trace.UserID) trace.Time {
	p := g.k.NewProc(uid)
	// Shell builtins and history lookups touch files without an exec.
	if src.Bool(0.32) {
		p.Exec(g.img.commands[g.img.cmdPick.Draw()])
	}
	var d trace.Time
	switch {
	case src.Bool(0.5):
		// Consult an administrative table by position.
		adm := g.img.admin[src.Intn(len(g.img.admin))]
		d = g.adminLookup(src, p, adm, adminSeeks(src), 0.15)
	case src.Bool(0.35):
		d = g.readWhole(src, p, g.img.homes[uid]+"/.profile")
		if src.Bool(0.4) {
			g.readWhole(src, p, g.img.homes[uid]+"/.login")
		}
	case src.Bool(0.55):
		// Page through part of a random source/doc file.
		if files := g.userFiles(uid); len(files) > 0 {
			f := files[src.Intn(len(files))]
			if sz := g.size(f); sz > 0 {
				n := sz
				if src.Bool(0.5) {
					n = sz/2 + 1
				}
				d = g.readPart(src, p, f, n)
			}
		}
	default:
		// Command ran without touching user files (date, ps, ...).
	}
	// Pipelines spill tiny scratch files into /tmp (sort temps, shell
	// heredocs) and remove them seconds later: the bulk of the trace's
	// unlink events and its shortest-lived files.
	if src.Bool(0.38) {
		scratch := fmt.Sprintf("/tmp/sh%d.%d", uid, g.k.Stats.Creates)
		sd := g.writeWhole(src, p, scratch, int64(100+src.Intn(3000)))
		g.eng.After(sd+trace.Time(200+src.Exp(4000))*trace.Millisecond, func() {
			p.Unlink(scratch)
		})
	}
	// Session activity also appends to the login log occasionally.
	if src.Bool(0.30) {
		g.appendFile(src, g.k.NewProc(uid), g.img.loginLog, int64(72))
	}
	return d + trace.Time(5+src.Intn(30))*trace.Millisecond
}

// browseArchive models the cold tail: reading a manual page or an old
// project file chosen nearly uniformly from a large, rarely-touched
// corpus. These are the compulsory misses that persist at any cache size.
func (g *generator) browseArchive(src *dist.Source, uid trace.UserID) trace.Time {
	if len(g.img.archive) == 0 {
		return 0
	}
	p := g.k.NewProc(uid)
	if src.Bool(0.5) {
		p.Exec(g.img.commands[34]) // man
	}
	n := 1 + src.Intn(2)
	var total trace.Time
	for i := 0; i < n; i++ {
		f := g.img.archive[src.Intn(len(g.img.archive))]
		total += g.readWhole(src, p, f)
	}
	return total
}

// userFiles returns whatever collection of personal files the user has.
func (g *generator) userFiles(uid trace.UserID) []string {
	if f := g.img.srcFiles[uid]; len(f) > 0 {
		return f
	}
	if f := g.img.docFiles[uid]; len(f) > 0 {
		return f
	}
	return g.img.decks[uid]
}
