package workload

import (
	"reflect"
	"testing"

	"bsdtrace/internal/namei"
	"bsdtrace/internal/trace"
)

func shardCfg(shards int) Config {
	return Config{Profile: "A5", Seed: 42, Duration: 20 * trace.Minute, Shards: shards}
}

// TestShardSeedIdentity: shard 0 keeps the configured seed, so a
// one-shard generation is bit-for-bit the unsharded generation; other
// shards get well-mixed distinct seeds.
func TestShardSeedIdentity(t *testing.T) {
	if got := shardSeed(42, 0); got != 42 {
		t.Fatalf("shardSeed(42, 0) = %d, want 42", got)
	}
	seen := map[int64]bool{42: true}
	for s := 1; s < 64; s++ {
		v := shardSeed(42, s)
		if seen[v] {
			t.Fatalf("shardSeed(42, %d) = %d collides", s, v)
		}
		seen[v] = true
	}
}

// TestShardsOneMatchesUnsharded is the determinism contract's anchor:
// Shards of 0 and 1 must not change the trace at all.
func TestShardsOneMatchesUnsharded(t *testing.T) {
	base, err := Generate(shardCfg(0))
	if err != nil {
		t.Fatal(err)
	}
	one, err := Generate(shardCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Events, one.Events) {
		t.Fatalf("Shards=1 changed the trace: %d vs %d events", len(base.Events), len(one.Events))
	}
	if base.KernelStats != one.KernelStats {
		t.Fatalf("Shards=1 changed kernel stats: %+v vs %+v", base.KernelStats, one.KernelStats)
	}
}

// TestShardDeterminism: the same seed and shard count produce the same
// merged trace, run after run, regardless of goroutine scheduling.
func TestShardDeterminism(t *testing.T) {
	first, err := Generate(shardCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	second, err := Generate(shardCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Events, second.Events) {
		t.Fatalf("sharded generation not deterministic: %d vs %d events",
			len(first.Events), len(second.Events))
	}
	if first.KernelStats != second.KernelStats {
		t.Fatalf("kernel stats not deterministic: %+v vs %+v", first.KernelStats, second.KernelStats)
	}
	if !reflect.DeepEqual(first.StaticSizes, second.StaticSizes) {
		t.Fatalf("static scan not deterministic")
	}
}

// TestShardedTraceValidates: a sharded fleet trace is time-ordered and
// structurally valid — the merge's remapping keeps every shard's
// open/close pairing intact.
func TestShardedTraceValidates(t *testing.T) {
	res, err := Generate(shardCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 {
		t.Fatal("sharded generation produced no events")
	}
	errs, _ := trace.Validate(res.Events)
	for _, e := range errs {
		t.Errorf("validator: %v", e)
	}
	for i := 1; i < len(res.Events); i++ {
		if res.Events[i].Time < res.Events[i-1].Time {
			t.Fatalf("event %d out of order", i)
		}
	}
}

// TestShardedStatsSumShards: the fleet's kernel stats are the sum of its
// shards' traffic — the merged event stream must account for every open
// and byte the shard kernels performed.
func TestShardedStatsSumShards(t *testing.T) {
	res, err := Generate(shardCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	var c trace.Counts
	for _, e := range res.Events {
		c.Add(e)
	}
	if got := res.KernelStats.Opens + res.KernelStats.Creates; got != c.ByKind[trace.KindOpen]+c.ByKind[trace.KindCreate] {
		t.Errorf("summed stats opens+creates = %d, trace has %d",
			got, c.ByKind[trace.KindOpen]+c.ByKind[trace.KindCreate])
	}
	if res.KernelStats.BytesRead == 0 || res.KernelStats.BytesWritten == 0 {
		t.Errorf("summed stats lost transfer bytes: %+v", res.KernelStats)
	}
}

// TestShardedPopulationGrows: sharding partitions the user population; it
// must not shrink it. With UserScale the per-shard populations stay
// disjoint and the fleet trace reflects the whole scaled population.
func TestShardedPopulationGrows(t *testing.T) {
	cfg := shardCfg(4)
	cfg.UserScale = 4
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	users := make(map[trace.UserID]bool)
	for _, e := range res.Events {
		users[e.User] = true
	}
	base, err := Generate(shardCfg(0))
	if err != nil {
		t.Fatal(err)
	}
	baseUsers := make(map[trace.UserID]bool)
	for _, e := range base.Events {
		baseUsers[e.User] = true
	}
	if len(users) < 2*len(baseUsers) {
		t.Errorf("4x sharded fleet has %d active users, unscaled trace has %d", len(users), len(baseUsers))
	}
}

// TestShardsRejectMeta: the metadata hook observes one kernel; a sharded
// fleet runs several, so the combination must be refused, not silently
// miscounted.
func TestShardsRejectMeta(t *testing.T) {
	cfg := shardCfg(2)
	cfg.Meta = namei.New(namei.Config{NameEntries: 40, InodeEntries: 20, DirBlocks: 8})
	if _, err := Generate(cfg); err == nil {
		t.Fatal("Generate with Meta and Shards>1 succeeded, want error")
	}
}

// TestNegativeShardsRejected.
func TestNegativeShardsRejected(t *testing.T) {
	cfg := shardCfg(-1)
	if _, err := Generate(cfg); err == nil {
		t.Fatal("Generate with Shards=-1 succeeded, want error")
	}
}

// TestGenerateStreamMatchesGenerate: the sink path and the collecting
// path see the same events in the same order.
func TestGenerateStreamMatchesGenerate(t *testing.T) {
	collected, err := Generate(shardCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	var streamed []trace.Event
	res, err := GenerateStream(shardCfg(2), func(e trace.Event) error {
		streamed = append(streamed, e)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(collected.Events, streamed) {
		t.Fatalf("GenerateStream diverges from Generate")
	}
	if res.Events != nil {
		t.Errorf("GenerateStream materialized %d events", len(res.Events))
	}
	if collected.KernelStats != res.KernelStats {
		t.Errorf("kernel stats differ between paths")
	}
}
