package workload

import (
	"fmt"

	"bsdtrace/internal/dist"
	"bsdtrace/internal/trace"
	"bsdtrace/internal/vfs"
)

// image is the file system population that exists before tracing begins:
// shared programs, headers, libraries, the big administrative files, and
// each user's home directory. It is built directly through the vfs (not
// the kernel) so that no trace events are generated for the setup, just as
// the 1985 traces began against an already-populated disk.
type image struct {
	// commands are the shared /bin programs, with a Zipf popularity
	// sampler: a few commands (the shell, the editor, ls, the compiler
	// passes) absorb most executions.
	commands []string
	cmdSizes map[string]int64
	cmdPick  *dist.Zipf

	// Specific tools the application models exec by name.
	cc, as, ld, editor, nroff, lpr, spice, shell, mailer string

	// headers are /usr/include files, Zipf-popular (stdio.h et al).
	headers    []string
	headerPick *dist.Zipf

	// libs are the link-time libraries.
	libs []string

	// admin are the megabyte-scale administrative files ("network
	// tables, a log of all logins"): accessed by seek + small transfer.
	admin      []string
	adminSizes map[string]int64

	// loginLog is append-mode: every session start appends to it.
	loginLog string

	// status are the host status files the network daemon rewrites.
	status []string

	// archive is the cold long tail: man pages and old project files,
	// touched rarely and roughly uniformly.
	archive []string

	// Per-user content, indexed by user id.
	srcFiles map[trace.UserID][]string
	docFiles map[trace.UserID][]string
	decks    map[trace.UserID][]string
	mailbox  map[trace.UserID]string
	homes    map[trace.UserID]string
}

// mkfile creates path with the given size; setup-time errors are
// programming errors, so they panic.
func mkfile(fs *vfs.FS, path string, size int64) {
	n, _, err := fs.Create(path)
	if err != nil {
		panic(fmt.Sprintf("workload: building image: %v", err))
	}
	n.SetSize(size)
}

func (g *generator) buildImage(fs *vfs.FS) {
	src := g.src.Fork()
	img := &g.img
	img.cmdSizes = make(map[string]int64)
	img.adminSizes = make(map[string]int64)
	img.srcFiles = make(map[trace.UserID][]string)
	img.docFiles = make(map[trace.UserID][]string)
	img.decks = make(map[trace.UserID][]string)
	img.mailbox = make(map[trace.UserID]string)
	img.homes = make(map[trace.UserID]string)

	for _, d := range []string{"/bin", "/lib", "/etc", "/tmp", "/usr/include", "/usr/spool/mail", "/u"} {
		if _, err := fs.MkdirAll(d); err != nil {
			panic(err)
		}
	}

	// Shared commands. Sizes are loosely modeled on 4.2 BSD binaries:
	// most utilities are tens of kilobytes, the compiler passes and the
	// CAD tools run to hundreds of kilobytes or more. The command list
	// is ordered by popularity for the Zipf sampler: the shell, the
	// editor, and ls dominate.
	type cmd struct {
		name string
		size int64
	}
	cmds := []cmd{
		{"sh", 60 << 10}, {"vi", 140 << 10}, {"ls", 25 << 10},
		{"cc", 90 << 10}, {"ccom", 180 << 10}, {"as", 70 << 10},
		{"ld", 80 << 10}, {"cpp", 50 << 10}, {"make", 65 << 10},
		{"cat", 12 << 10}, {"grep", 30 << 10}, {"mail", 55 << 10},
		{"nroff", 120 << 10}, {"lpr", 20 << 10}, {"rm", 10 << 10},
		{"cp", 12 << 10}, {"mv", 12 << 10}, {"ps", 45 << 10},
		{"who", 15 << 10}, {"finger", 35 << 10}, {"more", 30 << 10},
		{"diff", 40 << 10}, {"sort", 35 << 10}, {"awk", 75 << 10},
		{"sed", 30 << 10}, {"spice", 600 << 10}, {"magic", 900 << 10},
		{"drc", 350 << 10}, {"extract", 300 << 10}, {"dbx", 250 << 10},
		{"troff", 160 << 10}, {"eqn", 60 << 10}, {"tbl", 50 << 10},
		{"spell", 45 << 10}, {"man", 30 << 10}, {"date", 8 << 10},
		{"head", 10 << 10}, {"tail", 12 << 10}, {"wc", 10 << 10},
		{"uniq", 10 << 10},
	}
	for _, c := range cmds {
		path := "/bin/" + c.name
		mkfile(fs, path, c.size)
		img.commands = append(img.commands, path)
		img.cmdSizes[path] = c.size
	}
	img.cmdPick = dist.NewZipf(src, 1.4, len(img.commands))
	img.cc = "/bin/cc"
	img.as = "/bin/as"
	img.ld = "/bin/ld"
	img.editor = "/bin/vi"
	img.nroff = "/bin/nroff"
	img.lpr = "/bin/lpr"
	img.spice = "/bin/spice"
	img.shell = "/bin/sh"
	img.mailer = "/bin/mail"

	// Headers, Zipf-popular. A handful of system headers are read by
	// almost every compile.
	for i := 0; i < 80; i++ {
		path := fmt.Sprintf("/usr/include/h%02d.h", i)
		size := int64(src.LogNormal(2500, 0.9))
		if size < 200 {
			size = 200
		}
		mkfile(fs, path, size)
		img.headers = append(img.headers, path)
	}
	img.headerPick = dist.NewZipf(src, 1.5, len(img.headers))

	// Libraries.
	for _, l := range []struct {
		name string
		size int64
	}{{"libc.a", 500 << 10}, {"libm.a", 120 << 10}, {"libcurses.a", 180 << 10}} {
		path := "/lib/" + l.name
		mkfile(fs, path, l.size)
		img.libs = append(img.libs, path)
	}

	// The big administrative files: network tables and the login log,
	// each around a megabyte, accessed by position (paper Figure 2's
	// heavy tail).
	for _, a := range []struct {
		name string
		size int64
	}{{"nettab", 1100 << 10}, {"hosttab", 950 << 10}, {"wtmp", 1300 << 10}} {
		path := "/etc/" + a.name
		mkfile(fs, path, a.size)
		img.admin = append(img.admin, path)
		img.adminSizes[path] = a.size
	}
	img.loginLog = "/etc/wtmp"

	// The cold long tail: manual pages, old project trees, archived
	// data. A real 1985 disk held months of rarely-touched files; the
	// occasional access to one is a compulsory miss no cache size
	// avoids, and it is what keeps even a 16-Mbyte cache from a
	// near-zero miss ratio over a multi-day trace.
	for d := 0; d < 30; d++ {
		dir := fmt.Sprintf("/archive/a%02d", d)
		if _, err := fs.MkdirAll(dir); err != nil {
			panic(err)
		}
		for i := 0; i < 100; i++ {
			path := fmt.Sprintf("%s/f%02d", dir, i)
			size := int64(src.LogNormal(3500, 1.1))
			if size < 256 {
				size = 256
			}
			mkfile(fs, path, size)
			img.archive = append(img.archive, path)
		}
	}

	// Host status files, rewritten by the network daemon every three
	// minutes. They exist at trace start.
	for i := 0; i < g.prof.StatusFiles; i++ {
		path := fmt.Sprintf("/etc/status/host%02d", i)
		if i == 0 {
			if _, err := fs.MkdirAll("/etc/status"); err != nil {
				panic(err)
			}
		}
		mkfile(fs, path, 1800)
		img.status = append(img.status, path)
	}

	// Per-user homes. Every user gets a mailbox and a shell startup
	// file; developers get source trees, office users documents, CAD
	// users circuit decks. User ids start at 1.
	total := g.prof.Users()
	for u := 1; u <= total; u++ {
		uid := trace.UserID(u)
		home := fmt.Sprintf("/u/user%02d", u)
		if _, err := fs.MkdirAll(home); err != nil {
			panic(err)
		}
		img.homes[uid] = home
		mkfile(fs, home+"/.profile", 900)
		mkfile(fs, home+"/.login", 450)
		mkfile(fs, home+"/.exrc", 250)
		mkfile(fs, home+"/.mailrc", 300)

		mbox := fmt.Sprintf("/usr/spool/mail/user%02d", u)
		mkfile(fs, mbox, int64(src.LogNormal(4500, 0.8)))
		img.mailbox[uid] = mbox

		kind := g.userKind(uid)
		switch kind {
		case userDeveloper:
			if _, err := fs.MkdirAll(home + "/src"); err != nil {
				panic(err)
			}
			n := 16 + src.Intn(14)
			for i := 0; i < n; i++ {
				path := fmt.Sprintf("%s/src/mod%02d.c", home, i)
				mkfile(fs, path, sourceSize(src))
				img.srcFiles[uid] = append(img.srcFiles[uid], path)
			}
		case userOffice:
			if _, err := fs.MkdirAll(home + "/doc"); err != nil {
				panic(err)
			}
			n := 10 + src.Intn(10)
			for i := 0; i < n; i++ {
				path := fmt.Sprintf("%s/doc/memo%02d", home, i)
				mkfile(fs, path, docSize(src))
				img.docFiles[uid] = append(img.docFiles[uid], path)
			}
		case userCAD:
			if _, err := fs.MkdirAll(home + "/cad"); err != nil {
				panic(err)
			}
			n := 6 + src.Intn(6)
			for i := 0; i < n; i++ {
				path := fmt.Sprintf("%s/cad/deck%02d", home, i)
				mkfile(fs, path, deckSize(src))
				img.decks[uid] = append(img.decks[uid], path)
			}
		}
	}
}

// userKind assigns user ids to populations in profile order: developers
// first, then office users, then CAD users.
type userType int

const (
	userDeveloper userType = iota
	userOffice
	userCAD
)

func (g *generator) userKind(u trace.UserID) userType {
	n := int(u)
	switch {
	case n <= g.prof.Developers:
		return userDeveloper
	case n <= g.prof.Developers+g.prof.Office:
		return userOffice
	default:
		return userCAD
	}
}

// sourceSize draws a C source file size: median ~4 KB, occasionally tens
// of kilobytes. Short files dominate UNIX (paper Figure 2).
func sourceSize(src *dist.Source) int64 {
	s := int64(src.LogNormal(3000, 1.0))
	if s < 300 {
		s = 300
	}
	if s > 100<<10 {
		s = 100 << 10
	}
	return s
}

// docSize draws a document size: memos are a few kilobytes, reports tens.
func docSize(src *dist.Source) int64 {
	s := int64(src.LogNormal(4000, 1.0))
	if s < 500 {
		s = 500
	}
	if s > 300<<10 {
		s = 300 << 10
	}
	return s
}

// deckSize draws a CAD circuit description size: larger than source code.
func deckSize(src *dist.Source) int64 {
	s := int64(src.LogNormal(20000, 1.0))
	if s < 2000 {
		s = 2000
	}
	if s > 1<<20 {
		s = 1 << 20
	}
	return s
}
