package workload

import (
	"bsdtrace/internal/dist"
	"bsdtrace/internal/trace"
)

// user is one simulated person: a state machine that alternates idle
// periods with working sessions, and during a session performs actions at
// think-time intervals. Each user has a forked random stream so the
// populations are independent.
type user struct {
	g     *generator
	uid   trace.UserID
	kind  userType
	src   *dist.Source
	seqno int64
}

func (g *generator) startUsers() {
	total := g.prof.Users()
	for i := 1; i <= total; i++ {
		u := &user{
			g:    g,
			uid:  trace.UserID(i),
			kind: g.userKind(trace.UserID(i)),
			src:  g.src.Fork(),
		}
		// Stagger arrivals through the first hour.
		g.eng.At(trace.Time(u.src.Exp(20*60_000))*trace.Millisecond, u.startSession)
	}
}

// loadFactor returns the relative activity level at virtual time t: 1.0
// at the afternoon peak, near-zero in the small hours. Idle gaps are
// divided by it, so a user is ~8x less likely to be working at 4 a.m.
// than at 3 p.m.
func loadFactor(t trace.Time) float64 {
	hour := float64(t%(24*trace.Hour)) / float64(trace.Hour)
	switch {
	case hour < 6:
		return 0.10
	case hour < 9:
		return 0.10 + (hour-6)/3*0.7 // morning ramp
	case hour < 12:
		return 0.85
	case hour < 17:
		return 1.0 // afternoon peak
	case hour < 21:
		return 0.55
	default:
		return 0.25
	}
}

// startSession begins a working session: log in (append to the login
// log), then issue actions until the session length elapses.
func (u *user) startSession() {
	g := u.g
	g.appendFile(u.src, g.k.NewProc(u.uid), g.img.loginLog, 72)
	// Sessions last tens of minutes.
	length := trace.Time(u.src.Exp(25*60_000)) * trace.Millisecond
	if length < 2*trace.Minute {
		length = 2 * trace.Minute
	}
	end := g.eng.Now() + length
	u.act(end)
}

// act performs one action and schedules the next, or ends the session.
func (u *user) act(sessionEnd trace.Time) {
	g := u.g
	if g.eng.Now() >= sessionEnd {
		// Idle between sessions: typically an hour or so, stretched
		// overnight when the diurnal cycle is on.
		idle := trace.Time(u.src.Exp(70*60_000)) * trace.Millisecond
		if g.cfg.Diurnal {
			idle = trace.Time(float64(idle) / loadFactor(g.eng.Now()))
		}
		if idle < 5*trace.Minute {
			idle = 5 * trace.Minute
		}
		g.eng.After(idle, u.startSession)
		return
	}
	dur := u.action()
	// Think time between actions: a few seconds, bursty.
	think := trace.Time(u.src.Exp(11_000)) * trace.Millisecond
	g.eng.After(dur+think, func() { u.act(sessionEnd) })
}

// action runs one randomly chosen activity appropriate to the user type
// and returns roughly how long it occupies the user.
func (u *user) action() trace.Time {
	g := u.g
	u.seqno++
	src := u.src
	switch u.kind {
	case userDeveloper:
		switch pick(src, 26, 8, 6, 5, 10, 23, 3, 9, 16, 3, 3, 4) {
		case 0:
			return g.shellCommand(src, u.uid)
		case 1:
			return g.compile(src, u.uid, u.seqno)
		case 2:
			files := g.img.srcFiles[u.uid]
			if len(files) == 0 {
				return 0
			}
			return g.editSession(src, u.uid, files[src.Intn(len(files))], u.seqno)
		case 3:
			return g.runProgram(src, u.uid, u.seqno)
		case 4:
			return g.mailCheck(src, u.uid)
		case 5:
			adm := g.img.admin[src.Intn(len(g.img.admin))]
			return g.adminLookup(src, g.k.NewProc(u.uid), adm, adminSeeks(src), 0.35)
		case 6:
			return g.link(src, u.uid)
		case 7:
			return g.mailDeliver(src, u.uid, trace.UserID(1+src.Intn(g.prof.Users())))
		case 8:
			return g.rwhoCheck(src, u.uid)
		case 9:
			return g.debugSession(src, u.uid)
		case 10:
			return g.adminScan(src, u.uid)
		default:
			return g.browseArchive(src, u.uid)
		}
	case userOffice:
		switch pick(src, 22, 8, 7, 15, 25, 11, 16, 5, 4) {
		case 0:
			return g.shellCommand(src, u.uid)
		case 1:
			files := g.img.docFiles[u.uid]
			if len(files) == 0 {
				return 0
			}
			return g.editSession(src, u.uid, files[src.Intn(len(files))], u.seqno)
		case 2:
			return g.formatDoc(src, u.uid, u.seqno)
		case 3:
			return g.mailCheck(src, u.uid)
		case 4:
			adm := g.img.admin[src.Intn(len(g.img.admin))]
			return g.adminLookup(src, g.k.NewProc(u.uid), adm, adminSeeks(src), 0.35)
		case 5:
			return g.mailDeliver(src, u.uid, trace.UserID(1+src.Intn(g.prof.Users())))
		case 6:
			return g.rwhoCheck(src, u.uid)
		case 7:
			return g.adminScan(src, u.uid)
		default:
			return g.browseArchive(src, u.uid)
		}
	default: // userCAD
		switch pick(src, 18, 12, 8, 5, 9, 20, 11, 6, 3) {
		case 0:
			return g.shellCommand(src, u.uid)
		case 1:
			return g.cadRun(src, u.uid, u.seqno)
		case 2:
			files := g.img.decks[u.uid]
			if len(files) == 0 {
				return 0
			}
			return g.editSession(src, u.uid, files[src.Intn(len(files))], u.seqno)
		case 3:
			return g.compile(src, u.uid, u.seqno)
		case 4:
			return g.mailCheck(src, u.uid)
		case 5:
			adm := g.img.admin[src.Intn(len(g.img.admin))]
			return g.adminLookup(src, g.k.NewProc(u.uid), adm, adminSeeks(src), 0.35)
		case 6:
			return g.rwhoCheck(src, u.uid)
		case 7:
			return g.runProgram(src, u.uid, u.seqno)
		case 8:
			return g.debugSession(src, u.uid)
		default:
			return g.browseArchive(src, u.uid)
		}
	}
}

// pick chooses an index with the given relative weights.
func pick(src *dist.Source, weights ...float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := src.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
