package workload

import (
	"bsdtrace/internal/trace"
)

// startDaemons launches the system's background activity:
//
//   - the network status daemon, which rewrites each of ~20 host status
//     files every three minutes. This is the 4.2 BSD peculiarity behind
//     the paper's Figure 4 spike: 25-35% of all new files have lifetimes
//     of almost exactly 180 seconds, because each rewrite overwrites the
//     file written three minutes earlier;
//   - a cron-style accounting daemon that appends to the login log and
//     periodically scans an administrative table.
//
// Daemons run as user 0, which the activity analysis counts like any
// other user (as the 1985 tracer did — the daemons are visible in the
// paper's numbers).
func (g *generator) startDaemons() {
	src := g.src.Fork()

	// Status daemon: each cycle rewrites the status files, staggered a
	// few hundred milliseconds apart so events do not pile on one tick.
	g.eng.Every(g.prof.StatusInterval, g.prof.StatusInterval, func() bool {
		p := g.k.NewProc(0)
		for i, path := range g.img.status {
			path := path
			stagger := trace.Time(i*120+src.Intn(100)) * trace.Millisecond
			g.eng.After(stagger, func() {
				g.writeWhole(src, p, path, int64(1500+src.Intn(800)))
			})
		}
		return true
	})

	// Accounting daemon: every minute or so, append accounting records
	// and occasionally scan part of an administrative table.
	g.eng.Every(30*trace.Second, 55*trace.Second, func() bool {
		p := g.k.NewProc(0)
		g.appendFile(src, p, g.img.loginLog, int64(64+src.Intn(256)))
		if src.Bool(0.3) {
			adm := g.img.admin[src.Intn(len(g.img.admin))]
			g.adminLookup(src, g.k.NewProc(0), adm, 2+src.Intn(4), 0.1)
		}
		return true
	})
}
