package workload

import (
	"testing"

	"bsdtrace/internal/trace"
	"bsdtrace/internal/trace/sourcetest"
)

// TestShardStreamConformance runs the shard-boundary channel source
// through the shared pull-stream suite: the batched channel hop must be
// invisible to the merge that consumes it.
func TestShardStreamConformance(t *testing.T) {
	// Enough events to cross several channel batches.
	want := make([]trace.Event, 0, 3*trace.DefaultBatchSize+17)
	for i := 0; i < cap(want); i++ {
		want = append(want, trace.Event{
			Time: trace.Time(i), Kind: trace.KindOpen,
			OpenID: trace.OpenID(i + 1), File: trace.FileID(i%50 + 1), User: 1,
		})
	}

	mk := func(t *testing.T) trace.Source {
		s := &shardStream{ch: make(chan []trace.Event, shardChanBuffer), done: make(chan struct{})}
		abort := make(chan struct{})
		t.Cleanup(func() { close(abort) })
		go func() {
			defer close(s.ch)
			defer close(s.done)
			out := &batchingSink{ch: s.ch, abort: abort}
			for _, e := range want {
				if out.send(e) != nil {
					return
				}
			}
			if err := out.flush(); err != nil && err != errAborted {
				s.err = err
			}
		}()
		return s
	}
	sourcetest.Run(t, mk, want)
}
