package workload

import (
	"errors"
	"fmt"
	"io"

	"bsdtrace/internal/trace"
)

// Sharded generation: the scaled user population splits into disjoint
// sub-populations, each simulated as its own machine (own kernel, own
// file system, own daemons — a fleet), concurrently on all cores. The
// shard streams merge through trace.MergeSource into one time-ordered
// trace with the standard identifier remapping, so the merged fleet trace
// obeys the same contract as a multi-machine trace.Merge.
//
// Determinism contract: the merged stream is a pure function of (Config,
// Shards). Shard s seeds its random source from shardSeed(Seed, s), the
// merge orders events by (time, shard index), and the merge can only emit
// after it has the head event of every live shard — goroutine scheduling
// can change who waits for whom, never what comes out.

// shardChanBuffer is the per-shard channel capacity in event batches.
// Events cross the shard boundary trace.DefaultBatchSize at a time, so
// the per-event synchronization cost is one channel operation per batch
// — nothing — and the generator's memory stays bounded at
// O(Shards * shardChanBuffer * DefaultBatchSize) events while shard
// goroutines run ahead of the merge on other cores.
const shardChanBuffer = 16

// errAborted tells a shard goroutine the consumer stopped pulling.
var errAborted = errors.New("workload: generation aborted")

// shardSeed derives the random seed of shard s. Shard 0 keeps the
// configured seed, so a single-shard run is byte-identical to an unsharded
// one; the rest mix the shard index in with a splitmix64-style odd
// constant so sibling shards get decorrelated streams.
func shardSeed(seed int64, s int) int64 {
	if s == 0 {
		return seed
	}
	x := uint64(seed) + uint64(s)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	return int64(x)
}

// splitProfile deals prof's user classes across n shards: shard i gets
// count/n users of each class plus one of the remainder while it lasts.
// Every shard runs its own status daemons — each shard is one machine of
// the fleet, and the network status daemons run on every machine.
func splitProfile(prof Profile, n int) []Profile {
	share := func(count, i int) int {
		s := count / n
		if i < count%n {
			s++
		}
		return s
	}
	out := make([]Profile, n)
	for i := range out {
		p := prof
		p.Developers = share(prof.Developers, i)
		p.Office = share(prof.Office, i)
		p.CAD = share(prof.CAD, i)
		out[i] = p
	}
	return out
}

// shardStream is one shard's live output: a channel of pooled event
// batches plus the shard's Result and error, delivered after the channel
// closes.
type shardStream struct {
	ch   chan []trace.Event
	res  *Result
	err  error
	done chan struct{} // closed once res/err are set

	cur []trace.Event // batch being consumed
	pos int
}

// fill receives the next batch, returning false at end of stream (the
// shard's terminal error, if any, is in s.err after s.done closes).
func (s *shardStream) fill() bool {
	if s.cur != nil {
		trace.PutBatch(s.cur)
		s.cur, s.pos = nil, 0
	}
	b, ok := <-s.ch
	if !ok {
		<-s.done
		return false
	}
	s.cur = b
	return true
}

// Next makes a *shardStream a trace.Source for the merge. The closed
// channel becomes io.EOF — or the shard's terminal error, so generation
// failures surface through the merge. Between channel receives, Next is
// a slice index.
func (s *shardStream) Next() (trace.Event, error) {
	for s.pos >= len(s.cur) {
		if !s.fill() {
			if s.err != nil {
				return trace.Event{}, s.err
			}
			return trace.Event{}, io.EOF
		}
	}
	e := s.cur[s.pos]
	s.pos++
	return e, nil
}

// NextBatch hands over the pending events of the current batch in one
// copy.
func (s *shardStream) NextBatch(buf []trace.Event) (int, error) {
	if len(buf) == 0 {
		return 0, nil // a zero-length buffer is a no-op read
	}
	for s.pos >= len(s.cur) {
		if !s.fill() {
			if s.err != nil {
				return 0, s.err
			}
			return 0, io.EOF
		}
	}
	n := copy(buf, s.cur[s.pos:])
	s.pos += n
	return n, nil
}

// batchingSink groups a shard's events into pooled batches and sends
// them over the shard channel, watching abort so a stalled consumer
// cannot wedge the fleet.
type batchingSink struct {
	ch    chan<- []trace.Event
	abort <-chan struct{}
	buf   []trace.Event
}

func (b *batchingSink) send(e trace.Event) error {
	if b.buf == nil {
		b.buf = trace.GetBatch()[:0]
	}
	b.buf = append(b.buf, e)
	if len(b.buf) == cap(b.buf) {
		return b.flush()
	}
	return nil
}

func (b *batchingSink) flush() error {
	if len(b.buf) == 0 {
		return nil
	}
	select {
	case b.ch <- b.buf:
		b.buf = nil
		return nil
	case <-b.abort:
		return errAborted
	}
}

// generateSharded fans the population out over cfg.Shards concurrent
// machines and merges their streams into sink in deterministic time
// order. The returned Result aggregates the fleet: kernel stats are
// summed and the static size scans concatenate in shard order.
func generateSharded(cfg Config, sink Sink) (*Result, error) {
	n := cfg.Shards
	if cfg.Meta != nil {
		return nil, fmt.Errorf("workload: Meta hook requires Shards <= 1 (each shard runs its own kernel)")
	}
	full := scaledProfile(cfg)
	parts := splitProfile(full, n)

	abort := make(chan struct{})
	defer close(abort)

	shards := make([]*shardStream, n)
	sources := make([]trace.Source, n)
	for i := range shards {
		s := &shardStream{ch: make(chan []trace.Event, shardChanBuffer), done: make(chan struct{})}
		shards[i] = s
		sources[i] = s
		shardCfg := cfg
		shardCfg.Shards = 0
		shardCfg.Seed = shardSeed(cfg.Seed, i)
		prof := parts[i]
		go func() {
			defer close(s.ch)
			defer close(s.done)
			out := &batchingSink{ch: s.ch, abort: abort}
			s.res, s.err = generateProfile(shardCfg, prof, out.send)
			if s.err == nil {
				s.err = out.flush()
			}
			if s.err == errAborted {
				s.err = nil // the consumer aborted; its error wins
			}
		}()
	}

	merge := trace.NewMergeSource(sources...)
	buf := trace.GetBatch()
	defer trace.PutBatch(buf)
	for {
		k, err := trace.ReadBatch(merge, buf)
		if k == 0 {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		if sink != nil {
			for _, e := range buf[:k] {
				if err := sink(e); err != nil {
					return nil, err
				}
			}
		}
	}

	out := &Result{Profile: full}
	for _, s := range shards {
		<-s.done
		if s.err != nil {
			return nil, s.err
		}
		ks := s.res.KernelStats
		out.KernelStats.Opens += ks.Opens
		out.KernelStats.Creates += ks.Creates
		out.KernelStats.Closes += ks.Closes
		out.KernelStats.Seeks += ks.Seeks
		out.KernelStats.Unlinks += ks.Unlinks
		out.KernelStats.Truncates += ks.Truncates
		out.KernelStats.Execs += ks.Execs
		out.KernelStats.BytesRead += ks.BytesRead
		out.KernelStats.BytesWritten += ks.BytesWritten
		out.StaticSizes = append(out.StaticSizes, s.res.StaticSizes...)
	}
	return out, nil
}
