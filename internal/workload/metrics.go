package workload

import (
	"bsdtrace/internal/kernel"
	"bsdtrace/internal/obs"
)

// PublishStats copies a generation run's kernel system-call counters
// into the registry under prefix. The kernel's accounting is driven by
// the same seeded simulation that emits the trace, so every value is
// deterministic and belongs to the manifest's canonical surface. No-op
// when reg is nil or disabled.
func PublishStats(reg *obs.Registry, prefix string, st kernel.Stats) {
	if !reg.Enabled() {
		return
	}
	reg.Counter(prefix + ".opens").Set(st.Opens)
	reg.Counter(prefix + ".creates").Set(st.Creates)
	reg.Counter(prefix + ".closes").Set(st.Closes)
	reg.Counter(prefix + ".seeks").Set(st.Seeks)
	reg.Counter(prefix + ".unlinks").Set(st.Unlinks)
	reg.Counter(prefix + ".truncates").Set(st.Truncates)
	reg.Counter(prefix + ".execs").Set(st.Execs)
	reg.Counter(prefix + ".bytes_read").Set(st.BytesRead)
	reg.Counter(prefix + ".bytes_written").Set(st.BytesWritten)
}
