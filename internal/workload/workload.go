// Package workload generates synthetic traces that substitute for the
// paper's unavailable 1985 Berkeley traces (A5, E3, and C4).
//
// The original traces were recorded on three timeshared VAX-11/780s:
// Ucbarpa and Ucbernie (program development, document formatting, and
// administrative work) and Ucbcad (VLSI computer-aided design). Those trace
// files no longer exist, so this package reconstructs the *populations* the
// paper describes and lets them loose on the simulated kernel: developers
// running edit-compile-run cycles whose compiler temp files die within
// seconds; office users formatting documents into printer spool files;
// CAD users running circuit simulators that write large listings which are
// examined once and deleted; network status daemons that rewrite each of
// ~20 host files every 180 seconds (the source of the paper's striking
// 3-minute lifetime spike); and the handful of megabyte-scale
// administrative files that everything consults by seeking to a position
// and transferring a few hundred bytes.
//
// Everything is driven through the kernel's system-call interface, so the
// resulting events are produced by the same tracer hooks the analyses
// expect, not fabricated directly. All randomness flows from the config
// seed: the same configuration always yields a byte-identical trace.
//
// Calibration targets come from the paper's text rather than its exact
// counts; see DESIGN.md §2 for the list and EXPERIMENTS.md for how close
// the generated traces land.
package workload

import (
	"fmt"

	"bsdtrace/internal/dist"
	"bsdtrace/internal/kernel"
	"bsdtrace/internal/sim"
	"bsdtrace/internal/trace"
	"bsdtrace/internal/vfs"
)

// Config selects and scales a workload.
type Config struct {
	// Profile is "A5", "E3", or "C4".
	Profile string
	// Seed drives all randomness; equal configs generate equal traces.
	Seed int64
	// Duration is the simulated time span. Default 8 hours (the paper's
	// traces ran 2-3 days; the distributions stabilize well before 8
	// simulated hours).
	Duration trace.Time
	// UserScale multiplies the profile's user population (default 1.0).
	UserScale float64
	// Shards splits the (scaled) user population into this many
	// independent shards, each a disjoint sub-population on its own
	// kernel and file system — a fleet of machines rather than one.
	// Shards generate concurrently on all cores and their streams merge
	// into one time-ordered trace with identifier remapping (see
	// trace.MergeSource). 0 or 1 means a single machine, and is
	// byte-identical to what this package generated before sharding
	// existed. The output is a pure function of (Config, Shards): the
	// same seed and shard count always yield the same merged trace,
	// regardless of GOMAXPROCS or scheduling.
	Shards int
	// Meta, if non-nil, observes the kernel's metadata activity
	// (pathname resolutions, i-node and directory updates) during
	// generation; see kernel.MetaHook and the namei package.
	Meta kernel.MetaHook
	// Diurnal turns on a day/night load cycle: the virtual day starts at
	// midnight, activity ramps up through the morning, peaks in the
	// afternoon ("during the peak hours of the day, about 2-3 files were
	// opened per second"), and falls off overnight, with the daemons
	// running around the clock. Off by default: the calibrated defaults
	// model the paper's busiest-part-of-the-work-week traces, which were
	// effectively all-peak. Use with Duration of 24 hours or more.
	Diurnal bool
}

func (c *Config) fill() error {
	if c.Profile == "" {
		c.Profile = "A5"
	}
	if _, ok := profiles[c.Profile]; !ok {
		return fmt.Errorf("workload: unknown profile %q (want A5, E3, or C4)", c.Profile)
	}
	if c.Duration <= 0 {
		c.Duration = 8 * trace.Hour
	}
	if c.UserScale <= 0 {
		c.UserScale = 1.0
	}
	if c.Shards < 0 {
		return fmt.Errorf("workload: negative shard count %d", c.Shards)
	}
	return nil
}

// Profile describes one traced machine's population.
type Profile struct {
	// Name is the trace name the paper uses.
	Name string
	// Machine is the host the trace came from.
	Machine string
	// Developers, Office, and CAD are the user counts by type.
	Developers int
	Office     int
	CAD        int
	// StatusFiles is the number of host status files the network daemon
	// rewrites every StatusInterval.
	StatusFiles    int
	StatusInterval trace.Time
}

// Users returns the total user population.
func (p Profile) Users() int { return p.Developers + p.Office + p.CAD }

var profiles = map[string]Profile{
	// Ucbarpa: graduate students and staff, program development and
	// document formatting. 4 Mbytes of memory, load average 5-10.
	"A5": {
		Name: "A5", Machine: "Ucbarpa",
		Developers: 20, Office: 8, CAD: 0,
		StatusFiles: 20, StatusInterval: 180 * trace.Second,
	},
	// Ucbernie: like Ucbarpa plus substantial secretarial and
	// administrative work. 8 Mbytes of memory.
	"E3": {
		Name: "E3", Machine: "Ucbernie",
		Developers: 16, Office: 16, CAD: 0,
		StatusFiles: 20, StatusInterval: 180 * trace.Second,
	},
	// Ucbcad: electrical engineering students running VLSI CAD tools.
	// 16 Mbytes of memory, load average 2-3, about ten active users.
	"C4": {
		Name: "C4", Machine: "Ucbcad",
		Developers: 4, Office: 2, CAD: 8,
		StatusFiles: 20, StatusInterval: 180 * trace.Second,
	},
}

// Profiles returns the three machine profiles keyed by trace name.
func Profiles() map[string]Profile {
	out := make(map[string]Profile, len(profiles))
	for k, v := range profiles {
		out[k] = v
	}
	return out
}

// Result is a generated trace plus bookkeeping that tests and tools use.
type Result struct {
	// Events is the trace, in non-decreasing time order.
	Events []trace.Event
	// Profile is the population that generated it.
	Profile Profile
	// KernelStats counts the system calls the workload actually made.
	KernelStats kernel.Stats
	// StaticSizes holds the size of every live regular file when the
	// trace ended: a Satyanarayanan-style static disk scan, which the
	// paper compares its dynamic access measurements against (§5.2).
	StaticSizes []int64
}

// scaledProfile returns the named profile with its user population
// multiplied by cfg.UserScale. Each nonzero class keeps at least one user.
func scaledProfile(cfg Config) Profile {
	prof := profiles[cfg.Profile]
	scale := func(n int) int {
		s := int(float64(n)*cfg.UserScale + 0.5)
		if n > 0 && s < 1 {
			s = 1
		}
		return s
	}
	prof.Developers = scale(prof.Developers)
	prof.Office = scale(prof.Office)
	prof.CAD = scale(prof.CAD)
	return prof
}

// Generate produces a synthetic trace for the given configuration,
// materialized in memory. It is GenerateStream collecting into a slice;
// scale-sensitive callers should use GenerateStream and consume events as
// they are emitted instead.
func Generate(cfg Config) (*Result, error) {
	var events []trace.Event
	res, err := GenerateStream(cfg, func(e trace.Event) error {
		events = append(events, e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Events = events
	return res, nil
}

// Sink consumes generated events in non-decreasing time order. A sink
// error aborts emission and is returned from GenerateStream.
type Sink func(trace.Event) error

// GenerateStream produces a synthetic trace, delivering every event to
// sink in time order instead of materializing the trace. A nil sink
// discards the events (useful when only Result bookkeeping — kernel
// stats, the static size scan, an attached Meta hook — is wanted). The
// returned Result has a nil Events field.
//
// With cfg.Shards > 1 the population generates as that many concurrent
// independent shards whose streams merge (with identifier remapping)
// before reaching the sink; memory stays bounded by the per-shard channel
// buffers no matter how long the trace runs.
func GenerateStream(cfg Config, sink Sink) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if cfg.Shards > 1 {
		return generateSharded(cfg, sink)
	}
	return generateProfile(cfg, scaledProfile(cfg), sink)
}

// generateProfile runs one machine: the full event-driven simulation of
// prof's population against one kernel and file system.
func generateProfile(cfg Config, prof Profile, sink Sink) (*Result, error) {
	var sinkErr error
	emit := func(e trace.Event) {
		if sinkErr != nil || sink == nil {
			return
		}
		sinkErr = sink(e)
	}
	g := &generator{
		cfg:  cfg,
		prof: prof,
		eng:  sim.New(),
		src:  dist.NewSource(cfg.Seed),
	}
	fs := vfs.New()
	g.k = kernel.New(fs, g.eng.Now, emit)
	if cfg.Meta != nil {
		g.k.SetMeta(cfg.Meta)
	}
	g.buildImage(fs)
	g.startDaemons()
	g.startUsers()
	g.eng.Run(cfg.Duration)
	if sinkErr != nil {
		return nil, sinkErr
	}

	var static []int64
	fs.Walk(func(path string, n *vfs.Inode) {
		if !n.IsDir() {
			static = append(static, n.Size())
		}
	})

	return &Result{Profile: prof, KernelStats: g.k.Stats, StaticSizes: static}, nil
}

// generator holds the live state while a trace is being produced. Opens
// still outstanding when the run's deadline arrives are simply left open,
// as a live machine's trace also ends with a few files open.
type generator struct {
	cfg  Config
	prof Profile
	eng  *sim.Engine
	k    *kernel.Kernel
	src  *dist.Source
	img  image
}
